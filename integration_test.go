package sslic

// Integration tests across the repository's layers: the synthetic
// corpus, the three segmentation methods, the quality metrics, the
// LUT-based hardware color path and the functional accelerator pipeline
// must all tell one consistent story.

import (
	"testing"

	"sslic/internal/dataset"
	"sslic/internal/hw"
	"sslic/internal/imgio"
	"sslic/internal/lut"
	"sslic/internal/metrics"
	"sslic/internal/slic"
)

func corpusSample(t testing.TB, seed int64) *dataset.Sample {
	t.Helper()
	s, err := dataset.Generate(dataset.DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEndToEndAllMethodsOnCorpus runs the full public pipeline on a
// realistic scene for every method and checks the quality metrics stay
// in the regime the paper's evaluation operates in.
func TestEndToEndAllMethodsOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is slow")
	}
	s := corpusSample(t, 3)
	img := s.Image.ToGoImage()
	gt, err := NewGroundTruth(s.GT.W, s.GT.H, s.GT.Labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{SSLICPPA, SSLICCPA, SLIC} {
		opt := DefaultOptions(900)
		opt.Method = m
		seg, err := Segment(img, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		q, err := Evaluate(img, seg, gt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// The Berkeley-substitute regime: USE around 0.1-0.2, BR > 0.9,
		// ASA > 0.95 at K=900.
		if q.UndersegmentationError > 0.25 {
			t.Errorf("%v: USE %.3f out of regime", m, q.UndersegmentationError)
		}
		if q.BoundaryRecall < 0.9 {
			t.Errorf("%v: BR %.3f out of regime", m, q.BoundaryRecall)
		}
		if q.AchievableSegmentationAccuracy < 0.95 {
			t.Errorf("%v: ASA %.3f out of regime", m, q.AchievableSegmentationAccuracy)
		}
	}
}

// TestResidualsDecay checks the exposed convergence signal: residual
// center movement must shrink substantially from the first pass to the
// last on a converging scene.
func TestResidualsDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is slow")
	}
	s := corpusSample(t, 4)
	seg, err := Segment(s.Image.ToGoImage(), DefaultOptions(900))
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Residuals) < 2 {
		t.Fatalf("residual history too short: %v", seg.Residuals)
	}
	first := seg.Residuals[0]
	last := seg.Residuals[len(seg.Residuals)-1]
	if last > first/2 {
		t.Errorf("residuals barely decayed: %.3f → %.3f", first, last)
	}
}

// TestLUTConversionPreservesSegmentationQuality replaces the float64
// color conversion with the accelerator's LUT path and verifies the
// segmentation quality is statistically unchanged — the §6.1 claim at
// the color-conversion stage.
func TestLUTConversionPreservesSegmentationQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is slow")
	}
	s := corpusSample(t, 5)

	// Reference: float path through the normal pipeline.
	p := slic.DefaultParams(900)
	ref, err := slic.Segment(s.Image, p)
	if err != nil {
		t.Fatal(err)
	}
	refUSE, err := metrics.UndersegmentationError(ref.Labels, s.GT)
	if err != nil {
		t.Fatal(err)
	}

	// Hardware path: convert through the LUT unit, then segment the
	// Lab8-encoded planes *as if* they were the image (the Lab encoding
	// itself becomes the clustering space, which is what the silicon
	// clusters on).
	conv := lut.MustNewConverter(lut.DefaultSegments)
	lab8 := conv.ConvertImage(s.Image)
	lab := &slic.LabImage{W: lab8.W, H: lab8.H,
		L: bytesToFloats(lab8.C0), A: bytesToFloats(lab8.C1), B: bytesToFloats(lab8.C2)}
	centers := slic.InitCenters(lab, 900, true)
	labels := imgio.NewLabelMap(lab8.W, lab8.H)
	sgrid := slic.GridInterval(lab8.W, lab8.H, 900)
	invS2 := 100.0 / (sgrid * sgrid) * 100 / 100 // m=10 → m²/S²
	dist := make([]float64, lab.Pixels())
	for it := 0; it < 10; it++ {
		for i := range dist {
			dist[i] = 1e18
		}
		assignAll(lab, centers, labels, dist, sgrid, invS2)
		slic.UpdateCenters(lab, labels, centers)
	}
	slic.EnforceConnectivity(labels, int(sgrid*sgrid)/4)
	lutUSE, err := metrics.UndersegmentationError(labels, s.GT)
	if err != nil {
		t.Fatal(err)
	}

	if lutUSE > refUSE+0.03 {
		t.Errorf("LUT color path degrades USE: %.4f vs reference %.4f", lutUSE, refUSE)
	}
}

// assignAll is a minimal windowed assignment used by the LUT-path test.
func assignAll(lab *slic.LabImage, centers []slic.Center, labels *imgio.LabelMap, dist []float64, s, invS2 float64) {
	w, h := lab.W, lab.H
	for ci := range centers {
		c := &centers[ci]
		x0, x1 := clampInt(int(c.X-s), 0, w-1), clampInt(int(c.X+s), 0, w-1)
		y0, y1 := clampInt(int(c.Y-s), 0, h-1), clampInt(int(c.Y+s), 0, h-1)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				i := y*w + x
				d := slic.Distance5(lab.L[i], lab.A[i], lab.B[i], float64(x), float64(y), c, invS2)
				if d < dist[i] {
					dist[i] = d
					labels.Labels[i] = int32(ci)
				}
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func bytesToFloats(b []uint8) []float64 {
	out := make([]float64, len(b))
	for i, v := range b {
		out[i] = float64(v)
	}
	return out
}

// TestFacadeAndFunctionalSimAgree drives the same frame through the
// public software API and the bit-accurate hardware pipeline and checks
// the two segmentations share boundary structure — the repository-level
// hardware/software co-validation.
func TestFacadeAndFunctionalSimAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sim run is slow")
	}
	dcfg := dataset.DefaultConfig()
	dcfg.W, dcfg.H = 192, 128
	dcfg.Regions = 10
	s, err := dataset.Generate(dcfg, 6)
	if err != nil {
		t.Fatal(err)
	}

	cfg := hw.DefaultConfig()
	cfg.Width, cfg.Height, cfg.K = 192, 128, 96
	cfg.BufferBytesPerChannel = 1024
	fs, err := hw.NewFuncSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hwLabels, err := fs.Run(s.Image)
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions(96)
	opt.SubsampleRatio = 1
	opt.Iterations = cfg.Passes
	opt.FixedPointBits = 8
	sw, err := Segment(s.Image.ToGoImage(), opt)
	if err != nil {
		t.Fatal(err)
	}

	hwMask := hwLabels.BoundaryMask()
	swMask := sw.BoundaryMask()
	agree := 0
	for i := range hwMask {
		if hwMask[i] == swMask[i] {
			agree++
		}
	}
	// The facade path additionally perturbs initial centers by gradient
	// and runs connectivity enforcement, which the hardware pipeline does
	// not (§4.1: connectivity is not covered by the accelerator) — that
	// accounts for a few extra points of boundary divergence beyond the
	// quantization-path difference.
	if frac := float64(agree) / float64(len(hwMask)); frac < 0.72 {
		t.Fatalf("facade/hardware boundary agreement %.2f, want >= 0.72", frac)
	}
}

// TestDatasetCorpusIsStable pins the corpus generator against
// regressions: the same seed must keep producing the same first pixels
// and ground-truth regions across refactors (golden values).
func TestDatasetCorpusIsStable(t *testing.T) {
	s := corpusSample(t, 1)
	if s.GT.NumRegions() != dataset.DefaultConfig().Regions {
		t.Fatalf("seed-1 corpus has %d regions, config says %d",
			s.GT.NumRegions(), dataset.DefaultConfig().Regions)
	}
	// A few golden pixels; update deliberately if the generator changes.
	golden := []struct {
		x, y    int
		c0, gtl int32
	}{
		{0, 0, int32(s.Image.C0[0]), s.GT.Labels[0]},
	}
	for _, g := range golden {
		if int32(s.Image.C0[g.y*s.Image.W+g.x]) != g.c0 || s.GT.At(g.x, g.y) != g.gtl {
			t.Fatal("corpus generator no longer deterministic for seed 1")
		}
	}
}
