// Package degrade is the service's adaptive graceful-degradation layer:
// a small load controller that watches queue depth, tail latency and
// deadline misses, and steps the service through explicit quality
// levels instead of letting overload express itself as a wall of 429s.
//
// The levels trade segmentation quality for per-frame compute along the
// exact knobs the paper quantifies (Table 4: iteration count and
// subsampling ratio against boundary recall, §3.3: superpixel count
// against work per pass), so each step has a known, bounded quality
// cost and a known compute saving:
//
//	Level 0 — full quality: the request's parameters run untouched.
//	Level 1 — halved iterations (min 3): converged-enough centers; the
//	          paper's residual curves flatten well before iteration 10.
//	Level 2 — coarser subsampling (ratio halved, floor 0.25): the
//	          S-SLIC(0.25) datapoint the paper shows losing ~1% boundary
//	          recall for ~4× fewer distance computations.
//	Level 3 — fewer superpixels (K halved, floor 16): linearly less
//	          center-update and assignment work at coarser granularity.
//	Level 4 — shed: the request is refused outright (HTTP 503); the
//	          levels below exist so this one is rarely reached.
//
// Levels are cumulative: level 2 also applies level 1, and so on. The
// mapping is deterministic — a frame segmented at level L always
// produces the same labels as any other run of that frame at level L —
// so degraded outputs stay byte-reproducible, which is what lets the
// chaos suite golden-test them.
//
// The controller moves between levels with hysteresis (consecutive
// overloaded ticks to step up, a longer run of calm ticks to step
// down) so bursty load does not make the quality flap.
package degrade

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"sslic/internal/sslic"
	"sslic/internal/telemetry"
)

// Level is a degradation step. Higher is more degraded.
type Level int

const (
	// Full runs requests with their own parameters.
	Full Level = iota
	// HalfIters halves the iteration budget (floor 3).
	HalfIters
	// CoarseSubsample additionally halves the subsample ratio (floor 0.25).
	CoarseSubsample
	// FewerSuperpixels additionally halves K (floor 16).
	FewerSuperpixels
	// Shed refuses the request.
	Shed
	numLevels
)

// MaxLevel is the highest (most degraded) level.
const MaxLevel = Shed

func (l Level) String() string {
	switch l {
	case Full:
		return "full"
	case HalfIters:
		return "half-iters"
	case CoarseSubsample:
		return "coarse-subsample"
	case FewerSuperpixels:
		return "fewer-superpixels"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Apply maps segmentation parameters onto a degradation level. Levels
// are cumulative; Shed returns the level-3 parameters (the caller
// sheds before segmenting). Apply is pure: equal inputs give equal
// outputs, keeping degraded results deterministic.
func Apply(p sslic.Params, l Level) sslic.Params {
	if l >= HalfIters {
		if p.FullIters > 3 {
			p.FullIters = maxInt(3, p.FullIters/2)
		}
	}
	if l >= CoarseSubsample {
		if r := p.SubsampleRatio / 2; r >= 0.25 {
			p.SubsampleRatio = r
		} else if p.SubsampleRatio > 0.25 {
			p.SubsampleRatio = 0.25
		}
	}
	if l >= FewerSuperpixels {
		if p.K > 16 {
			p.K = maxInt(16, p.K/2)
		}
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Signals is one observation window of service load, fed to Tick.
type Signals struct {
	// QueueFill is the admission-queue fill fraction in [0, 1]
	// (depth / capacity).
	QueueFill float64
	// P95 is the window's 95th-percentile frame latency; zero when the
	// window had no frames.
	P95 time.Duration
	// DeadlineMisses counts requests that exceeded their deadline in
	// the window.
	DeadlineMisses int
	// Rejected counts admission rejections (saturation) in the window.
	Rejected int
	// BurnRate is the SLO engine's maximum fast-window error-budget
	// burn across objectives (1 = sustainable consumption); zero when
	// no SLO engine is wired.
	BurnRate float64
	// QualityCollapsed reports that the window's segmentation-quality
	// proxies (label churn, empty clusters, residual convergence) fell
	// below the configured floor; QualityObserved reports whether the
	// window carried any quality observation at all. Windows without
	// observations (idle service, quality tracking disabled) move
	// neither floor streak — the floor is a tri-state signal, not a
	// boolean. See internal/quality.
	QualityCollapsed bool
	QualityObserved  bool
}

// Config tunes a Controller. The zero value selects the defaults
// documented per field.
type Config struct {
	// Max bounds escalation; 0 selects Shed (the full ladder).
	Max Level
	// QueueHighFrac and QueueLowFrac are the queue-fill thresholds for
	// overload and calm; 0 selects 0.75 and 0.25.
	QueueHighFrac, QueueLowFrac float64
	// P95High marks the window overloaded when its p95 exceeds it;
	// P95Low is the calm threshold. 0 ignores latency in that
	// direction.
	P95High, P95Low time.Duration
	// StepUpHold is the consecutive overloaded ticks required to step
	// up a level; StepDownHold the consecutive calm ticks to step
	// down. 0 selects 2 and 5 — stepping down is deliberately slower
	// than stepping up, so recovery cannot oscillate against a load
	// edge.
	StepUpHold, StepDownHold int
	// BurnHigh marks the window overloaded when Signals.BurnRate
	// reaches it; calm additionally requires burn below BurnHigh/2
	// (the same high/low hysteresis band as the queue thresholds).
	// 0 ignores the SLO signal.
	BurnHigh float64
	// FloorHold is the consecutive quality-collapsed ticks that pin the
	// quality floor at the current level; FloorRelease the consecutive
	// quality-good ticks that release it. 0 selects 2 and 5 — the same
	// asymmetry as the load hysteresis, so the floor engages fast and
	// releases cautiously. The floor is the ladder's two-sided control:
	// while pinned, overload cannot step the level past it, so a blown
	// latency budget stops trading away quality the proxies say is
	// already gone. Ticks without a quality observation move neither
	// streak.
	FloorHold, FloorRelease int
	// Registry receives the controller's metrics; nil selects a
	// private one.
	Registry *telemetry.Registry
	// Logger, when set, logs level transitions.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Max <= 0 || c.Max >= numLevels {
		c.Max = Shed
	}
	if c.QueueHighFrac <= 0 {
		c.QueueHighFrac = 0.75
	}
	if c.QueueLowFrac <= 0 {
		c.QueueLowFrac = 0.25
	}
	if c.StepUpHold <= 0 {
		c.StepUpHold = 2
	}
	if c.StepDownHold <= 0 {
		c.StepDownHold = 5
	}
	if c.FloorHold <= 0 {
		c.FloorHold = 2
	}
	if c.FloorRelease <= 0 {
		c.FloorRelease = 5
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// Controller is the level state machine. Level is safe to read from
// any goroutine (the per-request hot path); Tick is called from one
// sampling loop.
type Controller struct {
	cfg Config

	mu         sync.Mutex
	level      Level
	upStreak   int
	downStreak int
	pinned     bool

	// Quality-floor state: while floorPinned, step-up stops at floor.
	floor       Level
	floorPinned bool
	badStreak   int
	goodStreak  int

	gauge      *telemetry.Gauge
	floorGauge *telemetry.Gauge
	ups        *telemetry.Counter
	downs      *telemetry.Counter
	floorPins  *telemetry.Counter
	floorFrees *telemetry.Counter
}

// New returns a controller at level 0.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	c := &Controller{
		cfg: cfg,
		gauge: reg.Gauge("sslic_degrade_level",
			"Current degradation level (0 full … 4 shed)."),
		ups: reg.Counter("sslic_degrade_transitions_total",
			"Degradation level transitions, by direction.",
			telemetry.Label{Name: "direction", Value: "up"}),
		downs: reg.Counter("sslic_degrade_transitions_total",
			"Degradation level transitions, by direction.",
			telemetry.Label{Name: "direction", Value: "down"}),
		floorGauge: reg.Gauge("sslic_degrade_quality_floor",
			"Quality-floor level escalation is capped at; -1 when unpinned."),
		floorPins: reg.Counter("sslic_degrade_floor_events_total",
			"Quality-floor transitions, by kind.",
			telemetry.Label{Name: "kind", Value: "pin"}),
		floorFrees: reg.Counter("sslic_degrade_floor_events_total",
			"Quality-floor transitions, by kind.",
			telemetry.Label{Name: "kind", Value: "release"}),
	}
	c.floorGauge.Set(-1)
	return c
}

// Level returns the current degradation level.
func (c *Controller) Level() Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Pin forces the level until Unpin — the operator override (and the
// chaos suite's way to hold a level while golden-testing its output).
func (c *Controller) Pin(l Level) {
	if l < Full {
		l = Full
	}
	if l > c.cfg.Max {
		l = c.cfg.Max
	}
	c.mu.Lock()
	c.setLevel(l)
	c.pinned = true
	c.upStreak, c.downStreak = 0, 0
	c.mu.Unlock()
}

// Unpin returns control to the signal loop from the pinned level.
func (c *Controller) Unpin() {
	c.mu.Lock()
	c.pinned = false
	c.mu.Unlock()
}

// Floor returns the quality-floor level and whether it is currently
// pinned. While pinned, Tick will not escalate past it.
func (c *Controller) Floor() (Level, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.floor, c.floorPinned
}

// tickFloor advances the quality-floor hysteresis from one window's
// quality signal. Ticks without an observation leave both streaks
// untouched, so an idle service neither pins nor releases. Caller
// holds mu.
func (c *Controller) tickFloor(s Signals) {
	if !s.QualityObserved {
		return
	}
	if s.QualityCollapsed {
		c.goodStreak = 0
		c.badStreak++
		if !c.floorPinned && c.badStreak >= c.cfg.FloorHold {
			c.floorPinned = true
			c.floor = c.level
			c.floorGauge.Set(float64(c.floor))
			c.floorPins.Inc()
			if c.cfg.Logger != nil {
				c.cfg.Logger.Warn("quality floor pinned",
					"level", c.floor.String())
			}
		}
		return
	}
	c.badStreak = 0
	c.goodStreak++
	if c.floorPinned && c.goodStreak >= c.cfg.FloorRelease {
		c.floorPinned = false
		c.goodStreak = 0
		c.floorGauge.Set(-1)
		c.floorFrees.Inc()
		if c.cfg.Logger != nil {
			c.cfg.Logger.Info("quality floor released")
		}
	}
}

// setLevel transitions and mirrors to telemetry. Caller holds mu.
func (c *Controller) setLevel(l Level) {
	if l == c.level {
		return
	}
	if l > c.level {
		c.ups.Inc()
	} else {
		c.downs.Inc()
	}
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("degradation level change",
			"from", c.level.String(), "to", l.String())
	}
	c.level = l
	c.gauge.Set(float64(l))
}

// Tick feeds one observation window to the state machine and returns
// the level in effect after it. Overload (queue past the high-water
// fraction, p95 past the high threshold, or any deadline miss /
// rejection) must persist for StepUpHold consecutive ticks to step up;
// calm must persist for StepDownHold ticks to step down. Mixed windows
// reset both streaks, holding the current level.
func (c *Controller) Tick(s Signals) Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tickFloor(s)
	if c.pinned {
		return c.level
	}
	overloaded := s.QueueFill >= c.cfg.QueueHighFrac ||
		(c.cfg.P95High > 0 && s.P95 >= c.cfg.P95High) ||
		(c.cfg.BurnHigh > 0 && s.BurnRate >= c.cfg.BurnHigh) ||
		s.DeadlineMisses > 0 || s.Rejected > 0
	calm := s.QueueFill <= c.cfg.QueueLowFrac &&
		(c.cfg.P95Low <= 0 || s.P95 <= c.cfg.P95Low) &&
		(c.cfg.BurnHigh <= 0 || s.BurnRate < c.cfg.BurnHigh/2) &&
		s.DeadlineMisses == 0 && s.Rejected == 0

	switch {
	case overloaded:
		c.downStreak = 0
		c.upStreak++
		// The quality floor is the ladder's second side: overload may
		// escalate only while escalation still buys latency at a
		// quality the proxies accept. A pinned floor caps step-up at
		// the level the collapse was detected at.
		atFloor := c.floorPinned && c.level >= c.floor
		if c.upStreak >= c.cfg.StepUpHold && c.level < c.cfg.Max && !atFloor {
			c.setLevel(c.level + 1)
			c.upStreak = 0
		}
	case calm:
		c.upStreak = 0
		c.downStreak++
		if c.downStreak >= c.cfg.StepDownHold && c.level > Full {
			c.setLevel(c.level - 1)
			c.downStreak = 0
		}
	default:
		c.upStreak, c.downStreak = 0, 0
	}
	return c.level
}

// Run drives the controller from a sampling function until ctx is
// done: every interval it calls sample and feeds the result to Tick.
// It blocks; callers run it in a goroutine.
func (c *Controller) Run(ctx context.Context, interval time.Duration, sample func() Signals) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Tick(sample())
		}
	}
}
