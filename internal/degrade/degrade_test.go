package degrade

import (
	"context"
	"testing"
	"time"

	"sslic/internal/sslic"
	"sslic/internal/telemetry"
)

func TestApplyLevelsAreCumulative(t *testing.T) {
	base := sslic.DefaultParams(900, 0.5)
	base.FullIters = 10

	l0 := Apply(base, Full)
	if l0.FullIters != base.FullIters || l0.SubsampleRatio != base.SubsampleRatio || l0.K != base.K {
		t.Fatalf("level 0 changed params: %+v", l0)
	}

	l1 := Apply(base, HalfIters)
	if l1.FullIters != 5 || l1.SubsampleRatio != 0.5 || l1.K != 900 {
		t.Fatalf("level 1 = iters %d ratio %g k %d, want 5/0.5/900",
			l1.FullIters, l1.SubsampleRatio, l1.K)
	}

	l2 := Apply(base, CoarseSubsample)
	if l2.FullIters != 5 || l2.SubsampleRatio != 0.25 || l2.K != 900 {
		t.Fatalf("level 2 = iters %d ratio %g k %d, want 5/0.25/900",
			l2.FullIters, l2.SubsampleRatio, l2.K)
	}

	l3 := Apply(base, FewerSuperpixels)
	if l3.FullIters != 5 || l3.SubsampleRatio != 0.25 || l3.K != 450 {
		t.Fatalf("level 3 = iters %d ratio %g k %d, want 5/0.25/450",
			l3.FullIters, l3.SubsampleRatio, l3.K)
	}
}

func TestApplyFloors(t *testing.T) {
	p := sslic.DefaultParams(20, 0.25)
	p.FullIters = 4
	out := Apply(p, FewerSuperpixels)
	if out.FullIters != 3 {
		t.Fatalf("iters floor: got %d, want 3", out.FullIters)
	}
	if out.SubsampleRatio != 0.25 {
		t.Fatalf("ratio floor: got %g, want 0.25", out.SubsampleRatio)
	}
	if out.K != 16 {
		t.Fatalf("k floor: got %d, want 16", out.K)
	}
	// Already at or below every floor: untouched.
	again := Apply(out, FewerSuperpixels)
	if again.FullIters != out.FullIters || again.SubsampleRatio != out.SubsampleRatio || again.K != out.K {
		t.Fatalf("degrading floored params changed them: %+v", again)
	}
}

func TestApplyIsDeterministic(t *testing.T) {
	p := sslic.DefaultParams(900, 0.5)
	for l := Full; l <= Shed; l++ {
		a, b := Apply(p, l), Apply(p, l)
		if a.FullIters != b.FullIters || a.SubsampleRatio != b.SubsampleRatio || a.K != b.K {
			t.Fatalf("level %v not deterministic", l)
		}
	}
}

func calmSignals() Signals { return Signals{QueueFill: 0} }

func hotSignals() Signals { return Signals{QueueFill: 1} }

func TestControllerHysteresis(t *testing.T) {
	c := New(Config{StepUpHold: 2, StepDownHold: 3})

	// One overloaded tick is not enough.
	if l := c.Tick(hotSignals()); l != Full {
		t.Fatalf("level after 1 hot tick = %v, want full", l)
	}
	if l := c.Tick(hotSignals()); l != HalfIters {
		t.Fatalf("level after 2 hot ticks = %v, want half-iters", l)
	}
	// The up-streak resets after a step: two more ticks for the next.
	if l := c.Tick(hotSignals()); l != HalfIters {
		t.Fatalf("level stepped up without a fresh streak: %v", l)
	}
	if l := c.Tick(hotSignals()); l != CoarseSubsample {
		t.Fatalf("level after 4 hot ticks = %v, want coarse-subsample", l)
	}

	// A calm tick amid recovery resets the down-streak.
	c.Tick(calmSignals())
	c.Tick(calmSignals())
	c.Tick(hotSignals()) // not enough to step up, but breaks the streak
	for i := 0; i < 2; i++ {
		if l := c.Tick(calmSignals()); l != CoarseSubsample {
			t.Fatalf("stepped down after broken streak at tick %d: %v", i, l)
		}
	}
	if l := c.Tick(calmSignals()); l != HalfIters {
		t.Fatalf("no step down after full calm streak: %v", l)
	}
}

func TestControllerMonotoneRecovery(t *testing.T) {
	c := New(Config{StepUpHold: 1, StepDownHold: 2})
	for i := 0; i < 10; i++ {
		c.Tick(Signals{QueueFill: 1, DeadlineMisses: 1})
	}
	if l := c.Level(); l != Shed {
		t.Fatalf("sustained overload reached %v, want shed", l)
	}
	// Under calm signals the level must fall one step at a time and
	// never rise.
	prev := c.Level()
	steps := 0
	for i := 0; i < 40 && c.Level() > Full; i++ {
		l := c.Tick(calmSignals())
		if l > prev {
			t.Fatalf("level rose during recovery: %v -> %v", prev, l)
		}
		if l < prev {
			if prev-l != 1 {
				t.Fatalf("recovery skipped levels: %v -> %v", prev, l)
			}
			steps++
		}
		prev = l
	}
	if c.Level() != Full {
		t.Fatalf("recovery stalled at %v", c.Level())
	}
	if steps != int(Shed) {
		t.Fatalf("recovery took %d steps, want %d", steps, int(Shed))
	}
}

func TestControllerPin(t *testing.T) {
	c := New(Config{StepUpHold: 1, StepDownHold: 1})
	c.Pin(CoarseSubsample)
	for i := 0; i < 5; i++ {
		if l := c.Tick(hotSignals()); l != CoarseSubsample {
			t.Fatalf("pinned level moved to %v", l)
		}
	}
	c.Unpin()
	if l := c.Tick(hotSignals()); l != FewerSuperpixels {
		t.Fatalf("unpinned controller did not resume: %v", l)
	}
}

func TestControllerMaxLevelBound(t *testing.T) {
	c := New(Config{Max: HalfIters, StepUpHold: 1})
	for i := 0; i < 10; i++ {
		c.Tick(hotSignals())
	}
	if l := c.Level(); l != HalfIters {
		t.Fatalf("level %v escaped Max %v", l, HalfIters)
	}
	c.Pin(Shed)
	if l := c.Level(); l != HalfIters {
		t.Fatalf("Pin bypassed Max: %v", l)
	}
}

func TestControllerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Config{Registry: reg, StepUpHold: 1, StepDownHold: 1})
	c.Tick(hotSignals())
	c.Tick(calmSignals())
	g := reg.Gauge("sslic_degrade_level", "")
	if g.Value() != 0 {
		t.Fatalf("gauge = %g after up+down, want 0", g.Value())
	}
	ups := reg.Counter("sslic_degrade_transitions_total", "", telemetry.Label{Name: "direction", Value: "up"})
	downs := reg.Counter("sslic_degrade_transitions_total", "", telemetry.Label{Name: "direction", Value: "down"})
	if ups.Value() != 1 || downs.Value() != 1 {
		t.Fatalf("transitions up/down = %g/%g, want 1/1", ups.Value(), downs.Value())
	}
}

func TestControllerRunStopsOnCancel(t *testing.T) {
	c := New(Config{StepUpHold: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		c.Run(ctx, time.Millisecond, hotSignals)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Level() == Full {
		if time.Now().After(deadline) {
			t.Fatal("Run never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestControllerBurnRateSignal(t *testing.T) {
	c := New(Config{StepUpHold: 1, StepDownHold: 1, BurnHigh: 10})

	// Burn at the threshold is overload even with an empty queue.
	if l := c.Tick(Signals{BurnRate: 10}); l != HalfIters {
		t.Fatalf("level after burn tick = %v, want half-iters", l)
	}
	// Elevated-but-subthreshold burn blocks calm (holds the level)
	// without stepping up.
	if l := c.Tick(Signals{BurnRate: 5}); l != HalfIters {
		t.Fatalf("level under residual burn = %v, want held half-iters", l)
	}
	// Burn fully cleared: calm steps back down.
	if l := c.Tick(Signals{}); l != Full {
		t.Fatalf("level after burn cleared = %v, want full", l)
	}
}

func TestControllerBurnRateIgnoredWhenDisabled(t *testing.T) {
	c := New(Config{StepUpHold: 1, StepDownHold: 1}) // BurnHigh unset
	if l := c.Tick(Signals{BurnRate: 1e9}); l != Full {
		t.Fatalf("burn signal acted on with BurnHigh=0: %v", l)
	}
}
