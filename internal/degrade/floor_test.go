package degrade

import (
	"testing"
)

// collapsed and goodQuality decorate a load signal with the quality
// tri-state; the bare signals (QualityObserved false) model ticks with
// no traffic or no quality tracking.
func collapsed(s Signals) Signals {
	s.QualityCollapsed, s.QualityObserved = true, true
	return s
}

func goodQuality(s Signals) Signals {
	s.QualityCollapsed, s.QualityObserved = false, true
	return s
}

func TestQualityFloorPinsAndBlocksStepUp(t *testing.T) {
	c := New(Config{StepUpHold: 2, FloorHold: 2, FloorRelease: 3})

	// Calm load but collapsing quality: FloorHold consecutive collapsed
	// ticks pin the floor at the current level (Full).
	c.Tick(collapsed(calmSignals()))
	if _, pinned := c.Floor(); pinned {
		t.Fatal("floor pinned after one collapsed tick, want hold of 2")
	}
	c.Tick(collapsed(calmSignals()))
	if floor, pinned := c.Floor(); !pinned || floor != Full {
		t.Fatalf("floor = %v pinned=%v, want pinned at full", floor, pinned)
	}

	// Overload while quality is collapsed: the pinned floor caps
	// escalation — the ladder must not trade away quality the proxies
	// say is already gone.
	for i := 0; i < 6; i++ {
		if l := c.Tick(collapsed(hotSignals())); l != Full {
			t.Fatalf("overloaded tick %d stepped to %v past the pinned floor", i, l)
		}
	}

	// Quality recovers: FloorRelease consecutive good ticks release the
	// floor, after which overload escalates normally again.
	for i := 0; i < 3; i++ {
		c.Tick(goodQuality(hotSignals()))
	}
	if _, pinned := c.Floor(); pinned {
		t.Fatal("floor still pinned after release streak")
	}
	c.Tick(goodQuality(hotSignals()))
	c.Tick(goodQuality(hotSignals()))
	if l := c.Level(); l == Full {
		t.Fatal("overload no longer steps up after floor release")
	}
}

func TestQualityFloorPinsAboveFull(t *testing.T) {
	c := New(Config{StepUpHold: 1, FloorHold: 1})
	// Escalate to level 2 on load alone, then collapse quality there:
	// the floor pins at the level the collapse was detected at, and
	// further overload holds rather than escalating.
	c.Tick(goodQuality(hotSignals()))
	c.Tick(goodQuality(hotSignals()))
	if l := c.Level(); l != CoarseSubsample {
		t.Fatalf("setup level = %v, want coarse-subsample", l)
	}
	c.Tick(collapsed(hotSignals()))
	if floor, pinned := c.Floor(); !pinned || floor != CoarseSubsample {
		t.Fatalf("floor = %v pinned=%v, want pinned at coarse-subsample", floor, pinned)
	}
	for i := 0; i < 4; i++ {
		if l := c.Tick(collapsed(hotSignals())); l != CoarseSubsample {
			t.Fatalf("tick %d escalated past the floor to %v", i, l)
		}
	}
	// Step-down remains allowed: the floor caps escalation only.
	for i := 0; i < 5; i++ {
		c.Tick(collapsed(calmSignals()))
	}
	if l := c.Level(); l >= CoarseSubsample {
		t.Fatalf("calm ticks did not step down below the floor: %v", l)
	}
}

func TestQualityFloorTriState(t *testing.T) {
	c := New(Config{FloorHold: 2, FloorRelease: 2})
	// Unobserved ticks move neither streak: a collapsed streak survives
	// an idle window in between.
	c.Tick(collapsed(calmSignals()))
	c.Tick(calmSignals()) // no quality observation
	c.Tick(collapsed(calmSignals()))
	if _, pinned := c.Floor(); !pinned {
		t.Fatal("idle tick broke the collapsed streak; tri-state signal must hold it")
	}
	// Same on release: idle ticks do not count as recovery.
	c.Tick(calmSignals())
	c.Tick(calmSignals())
	if _, pinned := c.Floor(); !pinned {
		t.Fatal("idle ticks released the floor without observed recovery")
	}
	c.Tick(goodQuality(calmSignals()))
	c.Tick(goodQuality(calmSignals()))
	if _, pinned := c.Floor(); pinned {
		t.Fatal("floor not released after two observed good ticks")
	}
}

func TestQualityFloorMetrics(t *testing.T) {
	c := New(Config{FloorHold: 1, FloorRelease: 1})
	if v := c.floorGauge.Value(); v != -1 {
		t.Fatalf("floor gauge starts at %g, want -1", v)
	}
	c.Tick(collapsed(calmSignals()))
	if v := c.floorGauge.Value(); v != 0 {
		t.Fatalf("floor gauge after pin = %g, want 0", v)
	}
	if v := c.floorPins.Value(); v != 1 {
		t.Fatalf("pin counter = %g, want 1", v)
	}
	c.Tick(goodQuality(calmSignals()))
	if v := c.floorGauge.Value(); v != -1 {
		t.Fatalf("floor gauge after release = %g, want -1", v)
	}
	if v := c.floorFrees.Value(); v != 1 {
		t.Fatalf("release counter = %g, want 1", v)
	}
}
