package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sslic/internal/imgio"
	"sslic/internal/pipeline"
	"sslic/internal/sslic"
)

// testFrame renders a deterministic scene with enough structure for
// segmentation to be meaningful.
func testFrame(w, h int) *imgio.Image {
	im := imgio.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			q := uint8(0)
			if x*2 > w {
				q = 120
			}
			if y*2 > h {
				q += 90
			}
			im.Set(x, y, uint8(x*3)+q, uint8(y*5), q)
		}
	}
	return im
}

func ppmBody(t *testing.T, im *imgio.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := imgio.EncodePPM(&buf, im); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func pngBody(t *testing.T, im *imgio.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := imgio.EncodePNG(&buf, im); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestSegmentGolden: labels returned over HTTP must byte-match an
// in-process sslic.Segment run with the server's own parameter mapping,
// for both input codecs and for the multipart path.
func TestSegmentGolden(t *testing.T) {
	im := testFrame(64, 48)
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})

	const query = "k=24&ratio=0.5&iters=4&format=labels"
	q, err := url.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := parseOptions(s.cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sslic.Segment(im, s.paramsFor(opts))
	if err != nil {
		t.Fatal(err)
	}
	var golden bytes.Buffer
	if err := imgio.EncodeLabelMap(&golden, want.Labels); err != nil {
		t.Fatal(err)
	}

	multipartBody, multipartCT := multipartFrame(t, pngBody(t, im))
	cases := []struct {
		name, contentType string
		body              []byte
	}{
		{"ppm", "", ppmBody(t, im)},
		{"png", "image/png", pngBody(t, im)},
		{"multipart-png", multipartCT, multipartBody},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/segment?"+query, tc.contentType, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}
			if resp.Header.Get("X-Sslic-Warm") != "false" {
				t.Fatalf("cold request marked warm")
			}
			if !bytes.Equal(got, golden.Bytes()) {
				t.Fatalf("%s: response labels differ from in-process golden (%d vs %d bytes)",
					tc.name, len(got), golden.Len())
			}
		})
	}
}

func multipartFrame(t *testing.T, frame []byte) (body []byte, contentType string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("frame", "frame.png")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), mw.FormDataContentType()
}

// TestSegmentWarmStream: two frames on one stream ID — the second must
// be warm and match the manual warm chain.
func TestSegmentWarmStream(t *testing.T) {
	im1 := testFrame(64, 48)
	im2 := testFrame(64, 48)
	for i := range im2.C0 {
		im2.C0[i] += 9
	}
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2, WarmIters: 2})

	post := func(im *imgio.Image) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/segment?k=24&iters=4&stream=camA", "", bytes.NewReader(ppmBody(t, im)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return resp, b
	}
	r1, _ := post(im1)
	if r1.Header.Get("X-Sslic-Warm") != "false" {
		t.Fatal("first frame of stream marked warm")
	}
	r2, got := post(im2)
	if r2.Header.Get("X-Sslic-Warm") != "true" {
		t.Fatal("second frame of stream not warm")
	}

	// Manual chain with the server's parameter mapping.
	q, _ := url.ParseQuery("k=24&iters=4")
	opts, err := parseOptions(s.cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	p := s.paramsFor(opts)
	cold, err := sslic.Segment(im1, p)
	if err != nil {
		t.Fatal(err)
	}
	wp := p
	wp.InitialCenters = cold.Centers
	wp.FullIters = 2
	want, err := sslic.Segment(im2, wp)
	if err != nil {
		t.Fatal(err)
	}
	var golden bytes.Buffer
	if err := imgio.EncodeLabelMap(&golden, want.Labels); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden.Bytes()) {
		t.Fatal("warm response differs from manual warm chain")
	}
}

// TestSegmentRenderFormats: overlay and mean-color outputs must decode
// as images of the frame's geometry in both encodings.
func TestSegmentRenderFormats(t *testing.T) {
	im := testFrame(48, 36)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	for _, format := range []string{"overlay", "mean"} {
		for _, enc := range []string{"ppm", "png"} {
			u := fmt.Sprintf("%s/v1/segment?k=12&iters=2&format=%s&encoding=%s", ts.URL, format, enc)
			resp, err := http.Post(u, "", bytes.NewReader(ppmBody(t, im)))
			if err != nil {
				t.Fatal(err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", format, enc, resp.StatusCode, b)
			}
			out, err := imgio.DecodeImage(bytes.NewReader(b))
			if err != nil {
				t.Fatalf("%s/%s: undecodable response: %v", format, enc, err)
			}
			if out.W != im.W || out.H != im.H {
				t.Fatalf("%s/%s: response %dx%d, want %dx%d", format, enc, out.W, out.H, im.W, im.H)
			}
		}
	}
}

// blockGate parks segment calls until released — the deterministic way
// to hold the pool at saturation or keep work in flight during a drain.
type blockGate struct {
	entered atomic.Int64
	release chan struct{}
}

func newBlockGate() *blockGate { return &blockGate{release: make(chan struct{})} }

func (b *blockGate) segment(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
	b.entered.Add(1)
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return sslic.SegmentContext(ctx, im, p)
}

// TestSegmentErrorTable drives every error path of the endpoint.
func TestSegmentErrorTable(t *testing.T) {
	frame := ppmBody(t, testFrame(32, 24))

	t.Run("basic", func(t *testing.T) {
		_, ts := newTestServer(t, Config{
			Workers: 1, QueueDepth: 1,
			MaxBodyBytes: 1 << 16,
			MaxPixels:    64 * 64,
		})
		big := ppmBody(t, testFrame(128, 128)) // 49KB body, 16K pixels > MaxPixels
		huge := make([]byte, 1<<16+64)         // over MaxBodyBytes
		copy(huge, ppmBody(t, testFrame(160, 140)))

		cases := []struct {
			name, method, query, contentType string
			body                             []byte
			wantCode                         int
		}{
			{"method not allowed", http.MethodGet, "", "", frame, http.StatusMethodNotAllowed},
			{"garbage body", http.MethodPost, "", "", []byte("not an image"), http.StatusBadRequest},
			{"empty body", http.MethodPost, "", "", nil, http.StatusBadRequest},
			{"truncated ppm", http.MethodPost, "", "", frame[:20], http.StatusBadRequest},
			{"bad k", http.MethodPost, "k=abc", "", frame, http.StatusBadRequest},
			{"k out of range", http.MethodPost, "k=0", "", frame, http.StatusBadRequest},
			{"k over pixels", http.MethodPost, "k=100000", "", frame, http.StatusBadRequest},
			{"bad ratio", http.MethodPost, "ratio=2", "", frame, http.StatusBadRequest},
			{"bad format", http.MethodPost, "format=jpeg", "", frame, http.StatusBadRequest},
			{"bad stream id", http.MethodPost, "stream=a%20b", "", frame, http.StatusBadRequest},
			{"long stream id", http.MethodPost, "stream=" + strings.Repeat("x", 65), "", frame, http.StatusBadRequest},
			{"bad timeout", http.MethodPost, "timeout_ms=-5", "", frame, http.StatusBadRequest},
			{"multipart no boundary", http.MethodPost, "", "multipart/form-data", frame, http.StatusBadRequest},
			{"multipart no frame part", http.MethodPost, "", "multipart/form-data; boundary=b", []byte("--b\r\nContent-Disposition: form-data; name=\"other\"\r\n\r\nx\r\n--b--\r\n"), http.StatusBadRequest},
			{"pixel budget", http.MethodPost, "", "", big, http.StatusRequestEntityTooLarge},
			{"body too large", http.MethodPost, "", "", huge, http.StatusRequestEntityTooLarge},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				req, err := http.NewRequest(tc.method, ts.URL+"/v1/segment?"+tc.query, bytes.NewReader(tc.body))
				if err != nil {
					t.Fatal(err)
				}
				if tc.contentType != "" {
					req.Header.Set("Content-Type", tc.contentType)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != tc.wantCode {
					t.Fatalf("status %d (%s), want %d", resp.StatusCode, bytes.TrimSpace(body), tc.wantCode)
				}
			})
		}
	})

	t.Run("saturated 429", func(t *testing.T) {
		gate := newBlockGate()
		s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Segment: gate.segment})

		waitFor := func(what string, cond func() bool) {
			t.Helper()
			deadline := time.Now().Add(5 * time.Second)
			for !cond() {
				if time.Now().After(deadline) {
					t.Fatal("timed out waiting for " + what)
				}
				time.Sleep(time.Millisecond)
			}
		}

		// Occupy the worker, then the single queue slot.
		errs := make(chan error, 2)
		post := func() {
			resp, err := http.Post(ts.URL+"/v1/segment?k=8", "", bytes.NewReader(frame))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			errs <- err
		}
		go post()
		waitFor("worker occupancy", func() bool { return gate.entered.Load() >= 1 })
		go post()
		waitFor("queue occupancy", func() bool { return s.pool.Queued() >= 1 })

		resp, err := http.Post(ts.URL+"/v1/segment?k=8", "", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated status %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}

		close(gate.release)
		for i := 0; i < 2; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("admitted request failed: %v", err)
			}
		}
	})

	t.Run("draining 503", func(t *testing.T) {
		s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
		s.Drain()
		resp, err := http.Post(ts.URL+"/v1/segment?k=8", "", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining status %d, want 503", resp.StatusCode)
		}

		hz, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, hz.Body)
		hz.Body.Close()
		if hz.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining healthz %d, want 503", hz.StatusCode)
		}
	})

	t.Run("deadline 504", func(t *testing.T) {
		gate := newBlockGate()
		defer close(gate.release)
		_, ts := newTestServer(t, Config{
			Workers: 1, QueueDepth: 1, Segment: gate.segment,
			RequestTimeout: 50 * time.Millisecond, MaxTimeout: time.Second,
		})
		resp, err := http.Post(ts.URL+"/v1/segment?k=8", "", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("deadline status %d, want 504", resp.StatusCode)
		}
	})
}

// TestHealthzAndMetrics: liveness plus the request series appearing on
// the shared registry after traffic.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hz.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/v1/segment?k=8", "", bytes.NewReader(ppmBody(t, testFrame(32, 24))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("segment %d", resp.StatusCode)
	}

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(m.Body)
	m.Body.Close()
	for _, series := range []string{
		`sslic_server_responses_total{code="200",endpoint="segment"}`,
		`sslic_server_request_seconds_bucket`,
		`sslic_pool_queue_depth`,
		`sslic_pool_jobs_admitted_total`,
	} {
		if !bytes.Contains(body, []byte(series)) {
			t.Fatalf("metrics missing %s\n%s", series, body)
		}
	}
}

// TestPanicIsolation: a panic on one frame (here from the backend, the
// deepest point a poisoned request reaches) must produce a 503 (the
// backend_panic classification the circuit breaker counts — transient
// from the client's view, so retryable) and leave the server —
// including the worker that hit it — serving.
func TestPanicIsolation(t *testing.T) {
	boom := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		panic("poisoned frame")
	}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Segment: boom})
	_ = s

	resp, err := http.Post(ts.URL+"/v1/segment?k=8", "", bytes.NewReader(ppmBody(t, testFrame(16, 16))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("panic status %d, want 503", resp.StatusCode)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatal("server dead after handler panic")
	}
}

// TestCloseIdempotent guards the shutdown path against double Close.
func TestCloseIdempotent(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, err := s.pool.Submit(context.Background(), pipeline.Job{Image: testFrame(8, 8), Params: sslic.DefaultParams(4, 0.5)}); !errors.Is(err, pipeline.ErrPoolClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}
