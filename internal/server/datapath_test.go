package server

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"testing"

	"sslic/internal/degrade"
	"sslic/internal/sslic"
)

// TestParseOptionsDatapath covers the two new request knobs: the
// datapath selector and the per-request tile-worker override.
func TestParseOptionsDatapath(t *testing.T) {
	cfg := Config{}
	cfg = cfg.withDefaults()
	parse := func(raw string) (options, error) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		return parseOptions(cfg, q)
	}
	o, err := parse("")
	if err != nil {
		t.Fatal(err)
	}
	if o.Datapath != sslic.Float64 || o.TileWorkers != -1 {
		t.Fatalf("defaults: datapath %v workers %d", o.Datapath, o.TileWorkers)
	}
	o, err = parse("datapath=fixed&tile_workers=4")
	if err != nil {
		t.Fatal(err)
	}
	if o.Datapath != sslic.Fixed || o.TileWorkers != 4 {
		t.Fatalf("parsed: datapath %v workers %d", o.Datapath, o.TileWorkers)
	}
	if _, err = parse("datapath=quantum"); err == nil {
		t.Fatal("unknown datapath accepted")
	}
	if _, err = parse("tile_workers=-3"); err == nil {
		t.Fatal("negative tile_workers accepted")
	}
	if _, err = parse("tile_workers=100000"); err == nil {
		t.Fatal("unbounded tile_workers accepted")
	}
	// A configured fixed default flows into requests that say nothing.
	cfgFixed := cfg
	cfgFixed.Datapath = sslic.Fixed
	q, _ := url.ParseQuery("")
	o, err = parseOptions(cfgFixed, q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Datapath != sslic.Fixed {
		t.Fatal("config default datapath ignored")
	}
	// ...and the request can override it back.
	q, _ = url.ParseQuery("datapath=float64")
	o, err = parseOptions(cfgFixed, q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Datapath != sslic.Float64 {
		t.Fatal("request datapath override ignored")
	}
}

// TestDegradePreservesDatapath pins the degrade-ladder interaction: the
// ladder trades iterations, subsampling and K for latency, but it must
// never silently switch arithmetic or band count — both knobs pass
// through every level unchanged.
func TestDegradePreservesDatapath(t *testing.T) {
	p := sslic.DefaultParams(900, 0.5)
	p.Datapath = sslic.Fixed
	p.TileWorkers = 4
	for l := degrade.Full; l <= degrade.MaxLevel; l++ {
		got := degrade.Apply(p, l)
		if got.Datapath != sslic.Fixed {
			t.Errorf("level %v: datapath degraded to %v", l, got.Datapath)
		}
		if got.TileWorkers != 4 {
			t.Errorf("level %v: tile workers changed to %d", l, got.TileWorkers)
		}
	}
}

// TestSegmentFixedDatapathEndToEnd drives the whole request path with
// ?datapath=fixed and checks the label payload is byte-identical across
// tile-worker counts — the server-level face of the determinism
// contract the sslic golden tests pin.
func TestSegmentFixedDatapathEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	frame := ppmBody(t, testFrame(64, 48))
	get := func(query string) []byte {
		resp, err := http.Post(ts.URL+"/v1/segment?k=24&iters=4&"+query, "",
			bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", query, resp.StatusCode, body)
		}
		return body
	}
	w1 := get("datapath=fixed&tile_workers=1")
	w3 := get("datapath=fixed&tile_workers=3")
	if !bytes.Equal(w1, w3) {
		t.Fatal("fixed-datapath labels differ across tile_workers")
	}
	flt := get("datapath=float64")
	if len(flt) != len(w1) {
		t.Fatalf("payload sizes differ between datapaths: %d vs %d", len(flt), len(w1))
	}
	if resp, err := http.Post(ts.URL+"/v1/segment?datapath=bogus", "",
		bytes.NewReader(frame)); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bogus datapath: status %d, want 400", resp.StatusCode)
		}
	} else {
		t.Fatal(err)
	}
}
