package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"sslic/internal/degrade"
	"sslic/internal/slo"
	"sslic/internal/telemetry"
)

// TestCostHeadersMatchTrace is the tentpole acceptance check: the
// X-Cost-* headers on a real request must agree with the flight
// recorder's events for the same X-Trace-Id — the ledger and the
// timeline price the same work.
func TestCostHeadersMatchTrace(t *testing.T) {
	fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Recorder: fr})

	const traceID = "cost-e2e-1"
	body := ppmBody(t, testFrame(64, 48))
	req, err := http.NewRequest("POST", ts.URL+"/v1/segment?k=24&ratio=0.5&iters=3", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	costHeader := func(name string) int64 {
		t.Helper()
		v := resp.Header.Get(name)
		if v == "" {
			t.Fatalf("response missing %s header", name)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("%s = %q not an integer: %v", name, v, err)
		}
		return n
	}
	cpuNs := costHeader("X-Cost-Cpu-Ns")
	allocBytes := costHeader("X-Cost-Alloc-Bytes")
	estPJ, err := strconv.ParseFloat(resp.Header.Get("X-Cost-Est-Pj"), 64)
	if err != nil || estPJ <= 0 {
		t.Fatalf("X-Cost-Est-Pj = %q, want positive number", resp.Header.Get("X-Cost-Est-Pj"))
	}

	td := fr.Lookup(traceID)
	if td == nil {
		t.Fatal("trace not in the flight recorder")
	}
	// The trace's "cost" instant carries the exact snapshot the headers
	// were stamped from (minus encode time, charged after the headers).
	var costArgs map[string]any
	var sslicNs int64
	for _, ev := range td.Events {
		if ev.Name == "cost" {
			costArgs = ev.Args
		}
		if ev.Track == "sslic" {
			sslicNs += int64(ev.Dur)
		}
	}
	if costArgs == nil {
		t.Fatal("trace has no cost instant")
	}
	if got := costArgs["cpu_ns"].(int64); got != cpuNs {
		t.Fatalf("cost instant cpu_ns = %d, header = %d", got, cpuNs)
	}
	if got := costArgs["alloc_bytes"].(int64); got != allocBytes {
		t.Fatalf("cost instant alloc_bytes = %d, header = %d", got, allocBytes)
	}
	if got := costArgs["est_pj"].(float64); math.Abs(got-estPJ) > 1 {
		t.Fatalf("cost instant est_pj = %g, header = %g", got, estPJ)
	}
	// The charged CPU time is the summed phase times, which the sslic
	// track's events also cover: the two views must agree within 10%.
	if sslicNs == 0 {
		t.Fatal("no sslic events in trace")
	}
	ratio := float64(cpuNs) / float64(sslicNs)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("header cpu %dns vs trace sslic %dns: ratio %.3f outside [0.9, 1.1]",
			cpuNs, sslicNs, ratio)
	}
	// Alloc covers at least decode planes (3×W×H) + label map (4×W×H).
	if want := int64(7 * 64 * 48); allocBytes < want {
		t.Fatalf("alloc = %d, want >= %d (decode planes + label map)", allocBytes, want)
	}
}

// TestErrorResponsesCarryTraceAndCost is satellite 2: rejections are
// the hardest requests to debug, so they too must name their trace and
// whatever cost they did accrue.
func TestErrorResponsesCarryTraceAndCost(t *testing.T) {
	frame := ppmBody(t, testFrame(32, 24))

	t.Run("draining 503", func(t *testing.T) {
		fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
		s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Recorder: fr})
		s.Drain()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/segment?k=8", bytes.NewReader(frame))
		req.Header.Set("X-Trace-Id", "drain-trace-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Trace-Id"); got != "drain-trace-1" {
			t.Fatalf("drain 503 X-Trace-Id = %q, want the request's ID", got)
		}
		if fr.Lookup("drain-trace-1") == nil {
			t.Fatal("drain rejection's trace not retained")
		}
	})

	t.Run("shed 503", func(t *testing.T) {
		fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
		s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Recorder: fr, DegradeInterval: -1})
		s.Degrade().Pin(degrade.Shed)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/segment?k=8", bytes.NewReader(frame))
		req.Header.Set("X-Trace-Id", "shed-trace-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Trace-Id"); got != "shed-trace-1" {
			t.Fatalf("shed 503 X-Trace-Id = %q", got)
		}
	})

	t.Run("bad request 400 keeps decode cost", func(t *testing.T) {
		fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
		_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Recorder: fr})
		// Valid frame, K beyond the frame's pixel count: decode
		// happened, then parameter validation failed — the decode
		// charge must still be reported.
		req, _ := http.NewRequest("POST", ts.URL+"/v1/segment?k=100000", bytes.NewReader(frame))
		req.Header.Set("X-Trace-Id", "bad-trace-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Trace-Id"); got != "bad-trace-1" {
			t.Fatalf("400 X-Trace-Id = %q", got)
		}
		if resp.Header.Get("X-Cost-Decode-Ns") == "" || resp.Header.Get("X-Cost-Alloc-Bytes") == "" {
			t.Fatalf("400 after decode lost its cost headers: %+v", resp.Header)
		}
	})
}

// TestSLOBurnEndToEnd drives the full burn path: a latency objective no
// real request can meet, windows closed manually, and then asserts the
// error budget drains, the burn feeds the degrade signal, and a pprof
// bundle is auto-captured with the burning objective as its reason.
func TestSLOBurnEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2,
		DegradeInterval: -1, // windows closed manually below
		SLOObjectives: []slo.Objective{
			{Name: "p99-latency", Kind: slo.KindLatency, Threshold: time.Nanosecond, Budget: 0.01},
		},
		SLOFastWindow: 1, SLOSlowWindow: 2,
		SLOBurnThreshold:   2,
		ProfileCPUDuration: 5 * time.Millisecond,
	})

	sig := s.SampleSignals() // seed the engine's baseline
	if sig.BurnRate != 0 {
		t.Fatalf("burn before any traffic = %g", sig.BurnRate)
	}

	frame := ppmBody(t, testFrame(48, 36))
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/segment?k=16&iters=2", "", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d", i, resp.StatusCode)
		}
	}

	// Closing the window sees 4 requests all slower than 1ns: burn
	// 100/budget, over threshold — the degrade signal carries it and
	// the capturer fires.
	sig = s.SampleSignals()
	if sig.BurnRate < 2 {
		t.Fatalf("burn after storm = %g, want >= threshold 2", sig.BurnRate)
	}

	st := s.SLOEngine().Status()
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives = %+v", st.Objectives)
	}
	obj := st.Objectives[0]
	if obj.BudgetRemaining >= 1 {
		t.Fatalf("budget remaining = %g, want < 1 after storm", obj.BudgetRemaining)
	}
	if !obj.Alerting {
		t.Fatal("objective not alerting after threshold crossing")
	}

	// /debug/slo serves the same state.
	rec := httptest.NewRecorder()
	slo.Handler(s.SLOEngine()).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var doc slo.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/slo not JSON: %v", err)
	}
	if len(doc.Objectives) != 1 || doc.Objectives[0].BudgetRemaining >= 1 {
		t.Fatalf("/debug/slo = %s", rec.Body.String())
	}

	// The burn-triggered capture runs async; wait for the bundle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if bs := s.Profiles().Bundles(); len(bs) > 0 {
			if bs[0].Reason != "burn:p99-latency" {
				t.Fatalf("bundle reason = %q, want burn:p99-latency", bs[0].Reason)
			}
			if len(bs[0].CPU) == 0 || len(bs[0].Heap) == 0 {
				t.Fatalf("bundle missing profiles")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no profile bundle captured after burn threshold crossing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// More bad windows with BurnHigh wired through: the degrade
	// controller steps up on the SLO signal alone.
	ctl := degrade.New(degrade.Config{StepUpHold: 1, BurnHigh: 2})
	if lvl := ctl.Tick(sig); lvl != degrade.HalfIters {
		t.Fatalf("degrade level on burn signal = %v, want half-iters", lvl)
	}
}

// TestStreamCostSeriesCapped guards the per-stream cardinality bound:
// minting unlimited stream IDs must not grow the registry without
// bound.
func TestStreamCostSeriesCapped(t *testing.T) {
	a := newCostAccountant(telemetry.NewRegistry(), 0)
	for i := 0; i < maxCostStreams; i++ {
		if got := a.streamLabel("", "s"+strconv.Itoa(i)); got != "s"+strconv.Itoa(i) {
			t.Fatalf("stream %d got label %q before the cap", i, got)
		}
	}
	if got := a.streamLabel("", "one-too-many"); got != "_other" {
		t.Fatalf("over-cap stream label = %q, want _other", got)
	}
	// Known streams keep their own label; anonymous requests pool.
	if got := a.streamLabel("", "s0"); got != "s0" {
		t.Fatalf("existing stream relabeled to %q", got)
	}
	if got := a.streamLabel("", ""); got != "_anon" {
		t.Fatalf("anonymous stream label = %q, want _anon", got)
	}
}

// TestStreamCostSeriesTenantSliced guards the multi-tenant budget rule:
// each tenant mints from its own slice and overflows into its own
// "<tenant>/_other", leaving other tenants' slices untouched.
func TestStreamCostSeriesTenantSliced(t *testing.T) {
	a := newCostAccountant(telemetry.NewRegistry(), 2)
	for _, want := range []string{"acme/s0", "acme/s1"} {
		if got := a.streamLabel("acme", want[5:]); got != want {
			t.Fatalf("got label %q, want %q", got, want)
		}
	}
	// acme's slice is spent: its new streams overflow into acme/_other…
	if got := a.streamLabel("acme", "s2"); got != "acme/_other" {
		t.Fatalf("over-slice label = %q, want acme/_other", got)
	}
	// …while another tenant still mints from its own slice, even for
	// the same bare stream ID.
	if got := a.streamLabel("beta", "s2"); got != "beta/s2" {
		t.Fatalf("beta label = %q, want beta/s2", got)
	}
	// Already-minted labels survive the overflow; anonymous requests
	// pool per tenant.
	if got := a.streamLabel("acme", "s0"); got != "acme/s0" {
		t.Fatalf("existing label remapped to %q", got)
	}
	if got := a.streamLabel("acme", ""); got != "acme/_anon" {
		t.Fatalf("anonymous label = %q, want acme/_anon", got)
	}
}
