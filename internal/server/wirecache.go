package server

import (
	"sync"

	"sslic/internal/imgio"
	"sslic/internal/telemetry"
)

// deltaCache holds each stream's previous slbl-delta response — the base
// the next delta on that stream is encoded against. It is the serving
// analogue of the paper's external-memory assignment copy: consecutive
// frames of a stream share most labels, so shipping only the changed
// runs approaches zero bytes for static scenes.
//
// Entries are taken OUT of the cache for the duration of an encode and
// restored (updated) afterwards, so two concurrent requests on one
// stream can never encode against — or mutate — the same base: the
// second request simply finds no entry and falls back to the empty
// base, declaring that via the X-Wire-Base response header. Either way
// every response is independently decodable from what its headers say.
//
// The map is bounded: beyond max streams the least-recently-updated
// entry is evicted and handed back to the caller for recycling.
type deltaCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*imgio.LabelMap
	order   []string // least- to most-recently-updated
	bytes   int64    // resident label bytes behind the gauge

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	resident  *telemetry.Gauge
}

func newDeltaCache(max int, reg *telemetry.Registry) *deltaCache {
	if max <= 0 {
		max = 64
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &deltaCache{
		max:     max,
		entries: make(map[string]*imgio.LabelMap),
		hits: reg.Counter("sslic_wirecache_hits_total",
			"Delta-base lookups that found the stream's previous labels."),
		misses: reg.Counter("sslic_wirecache_misses_total",
			"Delta-base lookups on a named stream that found no entry."),
		evictions: reg.Counter("sslic_wirecache_evictions_total",
			"Delta bases evicted to respect the stream cap."),
		resident: reg.Gauge("sslic_wirecache_resident_bytes",
			"Label bytes currently held as delta bases."),
	}
}

// entryBytes is a base's resident footprint for the gauge.
func entryBytes(lm *imgio.LabelMap) int64 { return int64(len(lm.Labels)) * 4 }

// take removes and returns the stream's base map, nil when absent (or
// the stream is anonymous). The caller owns the returned buffer.
func (c *deltaCache) take(id string) *imgio.LabelMap {
	if id == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	lm := c.entries[id]
	if lm == nil {
		c.misses.Inc()
		return nil
	}
	c.hits.Inc()
	delete(c.entries, id)
	for i, sid := range c.order {
		if sid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.bytes -= entryBytes(lm)
	c.resident.Set(float64(c.bytes))
	return lm
}

// put stores the stream's new base map, returning any buffer the caller
// should recycle: the entry displaced on this id, or an evicted LRU
// victim. Anonymous streams store nothing (lm itself is returned).
func (c *deltaCache) put(id string, lm *imgio.LabelMap) *imgio.LabelMap {
	if id == "" {
		return lm
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes += entryBytes(lm)
	if old := c.entries[id]; old != nil {
		// A concurrent request restored an entry since our take; keep
		// the newest.
		for i, sid := range c.order {
			if sid == id {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		c.entries[id] = lm
		c.order = append(c.order, id)
		c.bytes -= entryBytes(old)
		c.resident.Set(float64(c.bytes))
		return old
	}
	c.entries[id] = lm
	c.order = append(c.order, id)
	if len(c.order) > c.max {
		victim := c.order[0]
		c.order = c.order[1:]
		old := c.entries[victim]
		delete(c.entries, victim)
		c.evictions.Inc()
		c.bytes -= entryBytes(old)
		c.resident.Set(float64(c.bytes))
		return old
	}
	c.resident.Set(float64(c.bytes))
	return nil
}
