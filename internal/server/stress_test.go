package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sslic/internal/telemetry/testutil"
)

// TestServeUnderLoadWithCancelAndDrain is the service-grade race test:
// many concurrent clients, some of which cancel mid-flight, with a
// drain landing while requests are in the air. Run under -race it
// checks the full handler → pool → sslic path for data races; its own
// assertions check the accounting:
//
//   - every request gets exactly one terminal outcome (no lost or
//     duplicated responses),
//   - every 200 carries a well-formed label map for the posted frame,
//   - after the drain flips, segmentation answers 503, and
//   - Close returns (drain never deadlocks) within a hard bound.
func TestServeUnderLoadWithCancelAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	testutil.VerifyNoLeaks(t)
	im := testFrame(48, 36)
	frame := ppmBody(t, im)
	wantLabelBytes := labelMapLen(t, im.W, im.H)

	s, err := New(Config{Workers: 4, QueueDepth: 2, WarmIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients     = 8
		perClient   = 12
		cancelEvery = 3 // every third request gets a tight cancel window
	)
	var (
		ok, canceled, shed, drained atomic.Int64
		responses                   atomic.Int64 // terminal outcomes observed
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if i%cancelEvery == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3000))*time.Microsecond)
				}
				url := fmt.Sprintf("%s/v1/segment?k=16&iters=3&stream=cam%d", ts.URL, c)
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(frame))
				if err != nil {
					t.Error(err)
					cancel()
					return
				}
				resp, err := http.DefaultClient.Do(req)
				cancel()
				if err != nil {
					// Client-side cancellation is a terminal outcome too.
					if context.Cause(ctx) != nil {
						canceled.Add(1)
						responses.Add(1)
						continue
					}
					t.Errorf("client %d: %v", c, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					canceled.Add(1)
					responses.Add(1)
					continue
				}
				responses.Add(1)
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					if len(body) != wantLabelBytes {
						t.Errorf("client %d: 200 with %d-byte body, want %d", c, len(body), wantLabelBytes)
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusServiceUnavailable:
					drained.Add(1)
				case http.StatusGatewayTimeout, 499:
					canceled.Add(1)
				default:
					t.Errorf("client %d: unexpected status %d: %s", c, resp.StatusCode, body)
				}
			}
		}(c)
	}

	// Land the drain while traffic is in the air: after a quarter of the
	// responses, so at least one request is guaranteed to arrive
	// post-drain. Then Close with a deadlock bound.
	deadline := time.Now().Add(10 * time.Second)
	for responses.Load() < clients*perClient/4 {
		if time.Now().After(deadline) {
			t.Fatal("load never ramped")
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	wg.Wait()

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not finish within 30s (drain deadlock?)")
	}

	total := ok.Load() + canceled.Load() + shed.Load() + drained.Load()
	if responses.Load() != clients*perClient {
		t.Fatalf("lost responses: %d terminal outcomes for %d requests", responses.Load(), clients*perClient)
	}
	if total != clients*perClient {
		t.Fatalf("outcome accounting off: %d classified of %d", total, clients*perClient)
	}
	if drained.Load() == 0 {
		t.Error("drain landed mid-run but no request observed a 503")
	}
	t.Logf("ok=%d canceled=%d shed=%d drained=%d", ok.Load(), canceled.Load(), shed.Load(), drained.Load())

	// After Close the handler must still answer (503), not hang or panic.
	resp, err := http.Post(ts.URL+"/v1/segment?k=8", "", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close status %d, want 503", resp.StatusCode)
	}
}

// labelMapLen computes the encoded size of a label map for a w×h frame:
// the SLBL header (magic + w + h, 3×4 bytes) plus 4 bytes per pixel.
func labelMapLen(t *testing.T, w, h int) int {
	t.Helper()
	return 12 + 4*w*h
}
