package server

import (
	"sync"
	"time"

	"sslic/internal/degrade"
	"sslic/internal/pipeline"
	"sslic/internal/telemetry"
)

// signalSampler turns the registry series the service already
// maintains into the windowed degrade.Signals the load controller
// consumes. Each sample closes one observation window: latency
// percentiles and miss counts are computed from the delta since the
// previous sample, while queue fill is an instantaneous reading.
type signalSampler struct {
	pool *pipeline.Pool
	hist *telemetry.Histogram // segment endpoint request latency

	deadline  *telemetry.Counter // rejected{reason="deadline"}
	saturated *telemetry.Counter // rejected{reason="saturated"}

	mu            sync.Mutex
	prevHist      telemetry.HistogramSnapshot
	prevDeadline  float64
	prevSaturated float64
}

func newSignalSampler(pool *pipeline.Pool, reg *telemetry.Registry) *signalSampler {
	lbl := telemetry.Label{Name: "endpoint", Value: "segment"}
	return &signalSampler{
		pool: pool,
		// Same family+labels as the instrument middleware's span
		// histogram: re-registration returns the identical series.
		hist: reg.Histogram("sslic_server_request_seconds",
			"Per-request service time.", nil, lbl),
		deadline: reg.Counter("sslic_server_rejected_total",
			"Requests refused, by reason.",
			telemetry.Label{Name: "reason", Value: "deadline"}),
		saturated: reg.Counter("sslic_server_rejected_total",
			"Requests refused, by reason.",
			telemetry.Label{Name: "reason", Value: "saturated"}),
	}
}

// sample closes the current observation window.
func (s *signalSampler) sample() degrade.Signals {
	s.mu.Lock()
	defer s.mu.Unlock()

	cur := s.hist.Snapshot()
	win := cur.Sub(s.prevHist)
	s.prevHist = cur

	dl := s.deadline.Value()
	sat := s.saturated.Value()
	misses := int(dl - s.prevDeadline)
	rejected := int(sat - s.prevSaturated)
	s.prevDeadline, s.prevSaturated = dl, sat

	fill := 0.0
	if cap := s.pool.QueueCapacity(); cap > 0 {
		fill = float64(s.pool.Queued()) / float64(cap)
	}
	return degrade.Signals{
		QueueFill:      fill,
		P95:            time.Duration(win.Quantile(0.95) * float64(time.Second)),
		DeadlineMisses: misses,
		Rejected:       rejected,
	}
}
