package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"sslic/internal/degrade"
	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry/testutil"
)

// segmentOnce posts one frame and returns the response with its body
// drained (so the keep-alive connection is reusable).
func segmentOnce(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "image/x-portable-pixmap", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestDegradationHeaderLevel0: a healthy service serves at level 0 and
// says so on every response.
func TestDegradationHeaderLevel0(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", ppmBody(t, testFrame(32, 24)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Degradation-Level"); got != "0" {
		t.Fatalf("X-Degradation-Level = %q, want 0", got)
	}
}

// TestDegradedOutputDeterministic: a request served at a pinned level
// must return byte-identical labels to a direct sslic run with the
// level-mapped parameters — degraded mode stays golden-testable.
func TestDegradedOutputDeterministic(t *testing.T) {
	im := testFrame(64, 48)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, DegradeInterval: -1})
	s.Degrade().Pin(degrade.CoarseSubsample)

	resp, body := segmentOnce(t, ts.URL+"/v1/segment?k=32&iters=10", ppmBody(t, im))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Degradation-Level"); got != "2" {
		t.Fatalf("X-Degradation-Level = %q, want 2", got)
	}
	labels, err := imgio.DecodeLabelMap(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}

	params := sslic.DefaultParams(32, 0.5)
	params.FullIters = 10
	want, err := sslic.Segment(im, degrade.Apply(params, degrade.CoarseSubsample))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels.Labels {
		if labels.Labels[i] != want.Labels.Labels[i] {
			t.Fatalf("degraded label %d differs from direct level-2 run", i)
		}
	}
}

// TestShedLevelRefuses: level 4 answers 503 before decoding anything.
func TestShedLevelRefuses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, DegradeInterval: -1})
	s.Degrade().Pin(degrade.Shed)
	resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", ppmBody(t, testFrame(16, 16)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Degradation-Level") != "4" {
		t.Fatalf("shed response missing level header")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing Retry-After")
	}

	// Back to level 0, the service serves again.
	s.Degrade().Pin(degrade.Full)
	resp, _ = segmentOnce(t, ts.URL+"/v1/segment?k=8", ppmBody(t, testFrame(16, 16)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed status %d, want 200", resp.StatusCode)
	}
}

// TestBreakerOpensAndRecovers: sustained backend panics must open the
// circuit (fast 503s that never reach the backend), and after the
// cooldown a healthy probe must close it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var mu sync.Mutex
	healthy := false
	var backendCalls int
	backend := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		mu.Lock()
		backendCalls++
		ok := healthy
		mu.Unlock()
		if !ok {
			panic("poisoned model")
		}
		return sslic.SegmentContext(ctx, im, p)
	}
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, Segment: backend, DegradeInterval: -1,
		BreakerThreshold: 3, BreakerWindow: 10 * time.Second, BreakerCooldown: 50 * time.Millisecond,
	})

	body := ppmBody(t, testFrame(16, 16))
	// Three panics open the breaker; each answers 503 backend_panic.
	for i := 0; i < 3; i++ {
		resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("panic %d status %d, want 503", i, resp.StatusCode)
		}
	}
	mu.Lock()
	calls := backendCalls
	mu.Unlock()

	// Open: the next request fast-fails without touching the backend.
	resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status %d, want 503", resp.StatusCode)
	}
	mu.Lock()
	if backendCalls != calls {
		mu.Unlock()
		t.Fatal("open breaker let a request reach the backend")
	}
	healthy = true
	mu.Unlock()

	// After the cooldown, a probe goes through, succeeds, and closes
	// the circuit; subsequent requests are normal 200s.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; last status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, _ = segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d, want 200", resp.StatusCode)
	}
	if g := s.Registry().Counter("sslic_server_breaker_opens_total", "").Value(); g < 1 {
		t.Fatalf("breaker open count = %g, want >= 1", g)
	}
}

// TestBreakerDisabled: BreakerThreshold < 0 keeps every panic a plain
// per-request 503 with no fast-fail state.
func TestBreakerDisabled(t *testing.T) {
	boom := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		panic("always")
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Segment: boom, BreakerThreshold: -1, DegradeInterval: -1})
	body := ppmBody(t, testFrame(16, 16))
	for i := 0; i < 6; i++ {
		resp, data := segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d status %d, want 503 (%s)", i, resp.StatusCode, data)
		}
	}
}

// TestControllerStepsUpUnderRealSignals: drive the sampler with real
// rejected-by-saturation traffic and check the controller escalates —
// the end-to-end signal path (registry deltas → Signals → Tick).
func TestControllerStepsUpUnderRealSignals(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	blocked := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return sslic.SegmentContext(ctx, im, p)
	}
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, Segment: blocked, DegradeInterval: -1,
		Degrade: degrade.Config{StepUpHold: 2},
	})
	defer once.Do(func() { close(release) })

	// Saturate: one running + one queued, then a burst of rejections.
	body := ppmBody(t, testFrame(16, 16))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			segmentOnce(t, ts.URL+"/v1/segment?k=8&timeout_ms=4000", body)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated status %d, want 429", resp.StatusCode)
		}
	}

	// Two windows each observing rejections step the controller up.
	s.Degrade().Tick(s.SampleSignals())
	for i := 0; i < 3; i++ {
		resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated status %d, want 429", resp.StatusCode)
		}
	}
	if l := s.Degrade().Tick(s.SampleSignals()); l != degrade.HalfIters {
		t.Fatalf("controller at %v after sustained saturation, want half-iters", l)
	}
	once.Do(func() { close(release) })
	wg.Wait()

	// Calm windows recover to level 0 (StepDownHold defaults to 5).
	for i := 0; i < 10; i++ {
		s.Degrade().Tick(s.SampleSignals())
	}
	if l := s.Degrade().Level(); l != degrade.Full {
		t.Fatalf("controller stuck at %v after calm windows", l)
	}
}
