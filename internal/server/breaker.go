package server

import (
	"sync"
	"time"

	"sslic/internal/telemetry"
)

// breaker states, mirrored onto the sslic_server_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// breaker is the server's panic-rate circuit breaker. A segmentation
// backend that panics occasionally is isolated per-frame by the pool;
// one that panics at a sustained rate (a poisoned model, a corrupted
// shared buffer) burns a worker-restart's worth of work per request.
// When threshold panics land within window, the breaker opens and the
// segment endpoint fast-fails with 503 — no decode, no queueing —
// until a cooldown passes; then a single probe request is let through:
// success closes the circuit, a panic re-opens it, and any other
// terminal outcome releases the probe slot so the next request probes.
type breaker struct {
	threshold int
	window    time.Duration
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    int
	panics   []time.Time // panic times within the sliding window
	openedAt time.Time
	probing  bool   // a half-open probe is in flight
	probeGen uint64 // current probe's generation, guards stale releases

	stateGauge *telemetry.Gauge
	opens      *telemetry.Counter
	fastFails  *telemetry.Counter
}

// newBreaker wires a breaker onto the registry. now == nil selects the
// wall clock. labels distinguish multiple breakers on one registry —
// the multi-tenant server runs one breaker per tenant
// (tenant=<key>), so one tenant's poisoned frames can never fast-fail
// another tenant's traffic; the single-tenant server registers one
// unlabeled breaker.
func newBreaker(threshold int, window, cooldown time.Duration, reg *telemetry.Registry, now func() time.Time, labels ...telemetry.Label) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{
		threshold: threshold,
		window:    window,
		cooldown:  cooldown,
		now:       now,
		stateGauge: reg.Gauge("sslic_server_breaker_state",
			"Panic circuit breaker state (0 closed, 1 open, 2 half-open).", labels...),
		opens: reg.Counter("sslic_server_breaker_opens_total",
			"Times the panic circuit breaker opened.", labels...),
		fastFails: reg.Counter("sslic_server_breaker_fast_fails_total",
			"Requests refused by the open circuit breaker.", labels...),
	}
}

// allow reports whether a request may proceed. In the open state it
// returns false until the cooldown elapses, then lets exactly one
// probe through at a time. When the admitted request is that probe,
// probeDone is non-nil and the caller MUST invoke it when the request
// reaches any terminal outcome — otherwise a probe that ends without a
// success or a panic (bad request, saturation, deadline, client
// cancel, shed) would hold the probe slot forever and wedge the
// endpoint in permanent fast-fail.
func (b *breaker) allow() (ok bool, probeDone func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.fastFails.Inc()
			return false, nil
		}
		b.setState(breakerHalfOpen)
		return true, b.startProbe()
	default: // half-open
		if b.probing {
			b.fastFails.Inc()
			return false, nil
		}
		return true, b.startProbe()
	}
}

// startProbe marks a probe in flight and returns its release func.
// The release is idempotent and generation-guarded: it frees the probe
// slot only if this probe is still unresolved — recordSuccess and
// recordPanic settle the conclusive outcomes first, and a slot already
// handed to a newer probe is left alone. An inconclusive outcome says
// nothing about backend health, so the circuit stays half-open and the
// next request becomes a fresh probe. Caller holds mu.
func (b *breaker) startProbe() func() {
	b.probing = true
	b.probeGen++
	gen := b.probeGen
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.state == breakerHalfOpen && b.probing && b.probeGen == gen {
			b.probing = false
		}
	}
}

// recordPanic notes one backend panic. A panicking probe re-opens the
// circuit immediately; in the closed state the sliding window decides.
func (b *breaker) recordPanic() {
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.open(now)
		return
	}
	b.panics = append(b.panics, now)
	b.prune(now)
	if b.state == breakerClosed && len(b.panics) >= b.threshold {
		b.open(now)
	}
}

// recordSuccess notes one successfully segmented request. A successful
// probe closes the circuit and forgives the panic history.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.setState(breakerClosed)
		b.probing = false
		b.panics = nil
	}
}

// open transitions to open. Caller holds mu.
func (b *breaker) open(now time.Time) {
	b.setState(breakerOpen)
	b.openedAt = now
	b.probing = false
	b.panics = nil
	b.opens.Inc()
}

// prune drops panic records older than the window. Caller holds mu.
func (b *breaker) prune(now time.Time) {
	cut := now.Add(-b.window)
	i := 0
	for i < len(b.panics) && b.panics[i].Before(cut) {
		i++
	}
	b.panics = b.panics[i:]
}

// setState transitions and mirrors to telemetry. Caller holds mu.
func (b *breaker) setState(s int) {
	b.state = s
	b.stateGauge.Set(float64(s))
}
