package server

import (
	"bytes"
	"net/url"
	"strings"
	"testing"
	"time"

	"sslic/internal/imgio"
)

// fuzzConfig is the defaults-applied config the fuzz targets parse
// against, mirroring what New would hand to the handlers.
var fuzzConfig = Config{}.withDefaults()

// FuzzDecodeFrame drives the request-body decoder — the service's main
// untrusted-input surface — with arbitrary bytes and content types. It
// must never panic, and any accepted frame must be internally
// consistent. Seeds carry the imgio fuzz corpus shapes (valid and
// hostile PPM headers) plus PNG and multipart framings.
func FuzzDecodeFrame(f *testing.F) {
	// The imgio PPM corpus: valid minimal frames, truncations, hostile
	// dimensions, wrong magics.
	ppmSeeds := [][]byte{
		[]byte("P6\n2 2\n255\n0123456789AB"),
		[]byte("P3\n1 1\n255\n1 2 3"),
		[]byte("P6\n# comment\n1 1\n255\nabc"),
		[]byte("P6\n0 0\n255\n"),
		[]byte("P5\n2 2\n255\nabcd"),
		[]byte(""),
		[]byte("P6"),
		[]byte("P6\n99999999 99999999\n255\n"),
		[]byte("P3\n2 1\n255\n300 -4 12 1 2 3"),
		[]byte("P6\n2 2\n15\n0123456789AB"),
	}
	for _, s := range ppmSeeds {
		f.Add(s, "")
		f.Add(s, "image/x-portable-pixmap")
	}
	// A real PNG frame and truncations of it.
	var png bytes.Buffer
	im := imgio.NewImage(3, 2)
	for i := range im.C0 {
		im.C0[i] = uint8(i * 40)
	}
	if err := imgio.EncodePNG(&png, im); err != nil {
		f.Fatal(err)
	}
	f.Add(png.Bytes(), "image/png")
	f.Add(png.Bytes()[:8], "image/png")
	f.Add(png.Bytes()[:20], "")
	// Multipart framings: well-formed, missing frame part, broken
	// boundary, nested content type.
	mp := "--b\r\nContent-Disposition: form-data; name=\"frame\"; filename=\"f.ppm\"\r\n\r\n" +
		"P6\n1 1\n255\nabc\r\n--b--\r\n"
	f.Add([]byte(mp), "multipart/form-data; boundary=b")
	f.Add([]byte("--b\r\nContent-Disposition: form-data; name=\"other\"\r\n\r\nx\r\n--b--\r\n"),
		"multipart/form-data; boundary=b")
	f.Add([]byte(mp), "multipart/form-data")
	f.Add([]byte(mp), "multipart/form-data; boundary=\x00")
	f.Add([]byte("--b\r\n\r\n"), "multipart/form-data; boundary=b")

	f.Fuzz(func(t *testing.T, data []byte, contentType string) {
		if len(data) > 1<<16 {
			return
		}
		// A small budget keeps per-exec allocation cheap; the first fuzz
		// run of this target (with the unbounded decoder) stalled on
		// hostile PNG headers claiming gigapixel canvases, which is why
		// the budget is enforced from the header inside decodeFrame.
		const budget = 1 << 18
		im, err := decodeFrame(bytes.NewReader(data), contentType, budget, nil)
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 {
			t.Fatalf("decoder accepted dimensions %dx%d", im.W, im.H)
		}
		if im.Pixels() > budget {
			t.Fatalf("decoder accepted %d pixels over the %d budget", im.Pixels(), budget)
		}
		if len(im.C0) != im.W*im.H || len(im.C1) != im.W*im.H || len(im.C2) != im.W*im.H {
			t.Fatalf("plane sizes %d/%d/%d for %dx%d", len(im.C0), len(im.C1), len(im.C2), im.W, im.H)
		}
	})
}

// FuzzParseOptions drives the query-string decoder with arbitrary raw
// queries. It must never panic, and anything it accepts must be inside
// the documented bounds (otherwise a crafted query could smuggle
// un-validated parameters into the segmentation core).
func FuzzParseOptions(f *testing.F) {
	for _, s := range []string{
		"",
		"k=900&ratio=0.5&iters=10",
		"k=0", "k=-1", "k=99999999999999999999", "k=abc", "k=1&k=2",
		"ratio=NaN", "ratio=Inf", "ratio=1e309", "ratio=-0.5", "ratio=0",
		"compactness=0", "compactness=1e300",
		"iters=0", "iters=1001",
		"stream=camA", "stream=a%20b", "stream=" + strings.Repeat("x", 65),
		"stream=%ff", "stream=%00",
		"format=labels", "format=jpeg", "format=",
		"format=slbl", "format=slbl-rle", "format=slbl-delta&stream=cam0",
		"encoding=png", "encoding=bmp",
		"timeout_ms=0", "timeout_ms=-5", "timeout_ms=99999999",
		"timeout_ms=9223372036854775808",
		"unknown=ignored&k=4",
		"k=%32%34",
		";;;=&&&",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		if len(raw) > 1<<12 {
			return
		}
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		o, err := parseOptions(fuzzConfig, q)
		if err != nil {
			return
		}
		if o.K < 1 || o.K > 1<<20 {
			t.Fatalf("accepted k=%d", o.K)
		}
		if !(o.Ratio > 0 && o.Ratio <= 1) {
			t.Fatalf("accepted ratio=%g", o.Ratio)
		}
		if o.Iters < 1 || o.Iters > 1000 {
			t.Fatalf("accepted iters=%d", o.Iters)
		}
		if !(o.Compactness > 0 && o.Compactness <= 1e6) {
			t.Fatalf("accepted compactness=%g", o.Compactness)
		}
		if len(o.Stream) > maxStreamIDLen {
			t.Fatalf("accepted %d-byte stream id", len(o.Stream))
		}
		if err := validateStreamID(o.Stream); err != nil {
			t.Fatalf("accepted invalid stream id %q: %v", o.Stream, err)
		}
		switch o.Format {
		case formatLabels, formatOverlay, formatMean,
			formatSLBL, formatSLBLRLE, formatSLBLDelta:
		default:
			t.Fatalf("accepted format %q", o.Format)
		}
		switch o.Encoding {
		case encodingPPM, encodingPNG:
		default:
			t.Fatalf("accepted encoding %q", o.Encoding)
		}
		if o.Timeout < time.Millisecond || o.Timeout > fuzzConfig.MaxTimeout {
			t.Fatalf("accepted timeout %v", o.Timeout)
		}
	})
}
