package server

import (
	"fmt"
	"io"
	"math"
	"mime"
	"mime/multipart"
	"net/url"
	"strconv"
	"strings"
	"time"

	"sslic/internal/imgio"
	"sslic/internal/sslic"
)

// The two request decoders — frame payload and query options — are the
// service's entire untrusted-input surface, so both are pure functions
// of their inputs (no http types beyond the reader) and both carry fuzz
// targets in fuzz_test.go.

// Output formats and encodings. The slbl family is the binary wire
// layer (internal/wire): raw, run-length and frame-delta label maps.
const (
	formatLabels    = "labels"
	formatOverlay   = "overlay"
	formatMean      = "mean"
	formatSLBL      = "slbl"
	formatSLBLRLE   = "slbl-rle"
	formatSLBLDelta = "slbl-delta"

	encodingPPM = "ppm"
	encodingPNG = "png"
)

// options is the parsed, validated form of a segment request's query
// string.
type options struct {
	K           int
	Ratio       float64
	Iters       int
	Compactness float64
	Datapath    sslic.DatapathKind
	TileWorkers int // -1: use the server's configured SegWorkers
	Stream      string
	Format      string
	Encoding    string
	Timeout     time.Duration
}

// maxTileWorkers bounds the per-request intra-frame parallelism: the
// knob selects a band count, so values past any plausible core count
// only buy goroutine churn a client could use as an amplifier.
const maxTileWorkers = 64

// maxStreamIDLen bounds client stream identifiers: they key warm-state
// maps, so they must stay cheap to hash and impossible to abuse as a
// memory amplifier.
const maxStreamIDLen = 64

// parseOptions validates the query string against the server's
// configured defaults and bounds. Unknown keys are ignored (standard
// HTTP leniency); known keys with bad values are errors.
func parseOptions(cfg Config, q url.Values) (options, error) {
	o := options{
		K:           cfg.DefaultK,
		Ratio:       cfg.DefaultRatio,
		Iters:       cfg.DefaultIters,
		Compactness: cfg.DefaultCompactness,
		Datapath:    cfg.Datapath,
		TileWorkers: -1,
		Format:      formatLabels,
		Encoding:    encodingPPM,
		Timeout:     cfg.RequestTimeout,
	}
	var err error
	if o.K, err = intParam(q, "k", o.K, 1, 1<<20); err != nil {
		return o, err
	}
	if o.Iters, err = intParam(q, "iters", o.Iters, 1, 1000); err != nil {
		return o, err
	}
	if o.Ratio, err = floatParam(q, "ratio", o.Ratio, math.Nextafter(0, 1), 1); err != nil {
		return o, err
	}
	if o.Compactness, err = floatParam(q, "compactness", o.Compactness, math.Nextafter(0, 1), 1e6); err != nil {
		return o, err
	}
	if v := q.Get("datapath"); v != "" {
		switch v {
		case "float64":
			o.Datapath = sslic.Float64
		case "fixed":
			o.Datapath = sslic.Fixed
		default:
			return o, fmt.Errorf("server: unknown datapath %q (want float64 or fixed)", v)
		}
	}
	if o.TileWorkers, err = intParam(q, "tile_workers", o.TileWorkers, 0, maxTileWorkers); err != nil {
		return o, err
	}
	if v := q.Get("stream"); v != "" {
		if err := validateStreamID(v); err != nil {
			return o, err
		}
		o.Stream = v
	}
	if v := q.Get("format"); v != "" {
		switch v {
		case formatLabels, formatOverlay, formatMean,
			formatSLBL, formatSLBLRLE, formatSLBLDelta:
			o.Format = v
		default:
			return o, fmt.Errorf("server: unknown format %q (want labels, overlay, mean, slbl, slbl-rle or slbl-delta)", v)
		}
	}
	if v := q.Get("encoding"); v != "" {
		switch v {
		case encodingPPM, encodingPNG:
			o.Encoding = v
		default:
			return o, fmt.Errorf("server: unknown encoding %q (want ppm or png)", v)
		}
	}
	if v := q.Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 1 {
			return o, fmt.Errorf("server: invalid timeout_ms %q", v)
		}
		// Clamp in millisecond units BEFORE converting to a Duration: a
		// huge ms value overflows the multiplication into a negative
		// Duration, which would sail under the cap and hand the request
		// an already-expired context (found by FuzzParseOptions).
		d := cfg.MaxTimeout
		if ms < int64(cfg.MaxTimeout/time.Millisecond) {
			d = time.Duration(ms) * time.Millisecond
		}
		o.Timeout = d
	}
	return o, nil
}

func intParam(q url.Values, key string, def, lo, hi int) (int, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def, fmt.Errorf("server: invalid %s %q", key, v)
	}
	if n < lo || n > hi {
		return def, fmt.Errorf("server: %s = %d out of range [%d, %d]", key, n, lo, hi)
	}
	return n, nil
}

func floatParam(q url.Values, key string, def, lo, hi float64) (float64, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return def, fmt.Errorf("server: invalid %s %q", key, v)
	}
	if f < lo || f > hi {
		return def, fmt.Errorf("server: %s = %g out of range [%g, %g]", key, f, lo, hi)
	}
	return f, nil
}

// validateStreamID accepts short identifiers over a fixed alphabet.
func validateStreamID(id string) error {
	if len(id) > maxStreamIDLen {
		return fmt.Errorf("server: stream id longer than %d bytes", maxStreamIDLen)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-', c == ':':
		default:
			return fmt.Errorf("server: stream id contains %q (want [A-Za-z0-9._:-])", c)
		}
	}
	return nil
}

// decodeFrame reads one frame from a request body. A multipart/form-data
// content type selects the first part named "frame" (or carrying a file
// name); anything else is decoded directly, with the format sniffed from
// its magic bytes (PPM or PNG). The pixel budget is enforced inside the
// decoder — from the header, before pixel allocation — because a
// compressed format can claim a canvas thousands of times larger than
// its payload (a post-decode check would already have paid for it).
// alloc supplies the decode target (a pooled buffer on the zero-copy
// path); it only ever sees budget-validated dimensions.
func decodeFrame(body io.Reader, contentType string, maxPixels int, alloc imgio.ImageAlloc) (*imgio.Image, error) {
	mt, params, err := mime.ParseMediaType(contentType)
	if err == nil && strings.HasPrefix(mt, "multipart/") {
		boundary := params["boundary"]
		if boundary == "" {
			return nil, fmt.Errorf("server: multipart content type without boundary")
		}
		mr := multipart.NewReader(body, boundary)
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				return nil, fmt.Errorf("server: multipart body has no \"frame\" part")
			}
			if err != nil {
				return nil, fmt.Errorf("server: reading multipart body: %w", err)
			}
			if part.FormName() == "frame" || part.FileName() != "" {
				return imgio.DecodeImageLimitAlloc(part, maxPixels, alloc)
			}
		}
	}
	return imgio.DecodeImageLimitAlloc(body, maxPixels, alloc)
}
