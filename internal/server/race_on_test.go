//go:build race

package server

// raceEnabled reports whether the binary was built with -race; see
// race_off_test.go.
const raceEnabled = true
