package server

import (
	"net/http"
	"strconv"

	"sslic/internal/imgio"
	"sslic/internal/pipeline"
	"sslic/internal/quality"
	"sslic/internal/telemetry"
)

// observeQuality folds one successful segmentation into the quality
// tracker, stamps the X-Quality-* response headers, and emits the
// trace's "quality" instant. It runs after the cost ledger closes and
// before any body byte, so the headers are still mutable.
//
// The churn base is the stream's slbl-delta cache entry, taken out by
// the caller before the response is written — the same buffer the
// delta wire format would encode against, so churn costs one extra
// O(N) compare and no allocation.
// tenantID is the owning tenant's key ("" in single-tenant mode);
// opts.Stream is already tenant-scoped by the handler, so tenantID
// only drives the tracker's per-tenant label budget.
func (s *Server) observeQuality(h http.Header, opts options, tenantID string, im *imgio.Image, res *pipeline.JobResult, base *imgio.LabelMap, tr *telemetry.Trace, lvl int) {
	st := res.Result.Stats
	pixels := im.W * im.H
	churn := -1.0
	if base != nil {
		if changed, ok := quality.LabelChurn(res.Result.Labels, base); ok {
			churn = float64(changed) / float64(pixels)
		}
	}
	boundary := 0.0
	if pixels > 0 {
		boundary = float64(st.BoundaryPixels) / float64(pixels)
	}
	sample := quality.Sample{
		Stream:          opts.Stream,
		Tenant:          tenantID,
		TraceID:         tr.ID(),
		W:               im.W,
		H:               im.H,
		K:               opts.K,
		Level:           lvl,
		Warm:            res.Warm,
		WireFormat:      opts.Format,
		DeltaBase:       base != nil,
		Churn:           churn,
		EmptyClusters:   st.EmptyClusters,
		Clusters:        len(res.Result.Centers),
		ClusterSizeCV:   st.ClusterSizeCV,
		BoundaryDensity: boundary,
		Residual:        st.FinalResidual(),
		ResidualDecay:   st.ResidualDecay(),
		Converged:       st.Converged,
		Passes:          st.SubsetPasses,
	}
	s.quality.Observe(sample)

	if churn >= 0 {
		h.Set("X-Quality-Churn", strconv.FormatFloat(churn, 'f', 6, 64))
	}
	h.Set("X-Quality-Empty-Clusters", strconv.Itoa(st.EmptyClusters))
	h.Set("X-Quality-Boundary-Density", strconv.FormatFloat(boundary, 'f', 6, 64))
	h.Set("X-Quality-Residual", strconv.FormatFloat(st.FinalResidual(), 'g', -1, 64))

	tr.Instant("quality", "server", map[string]any{
		"churn":            churn,
		"empty_clusters":   st.EmptyClusters,
		"cluster_size_cv":  st.ClusterSizeCV,
		"boundary_density": boundary,
		"residual":         st.FinalResidual(),
		"residual_decay":   st.ResidualDecay(),
		"converged":        st.Converged,
	})
}

// Quality returns the tracker behind /debug/streams and the quality
// SLO sources, for tests and embedding callers.
func (s *Server) Quality() *quality.Tracker { return s.quality }

// StreamsHandler serves the per-stream quality introspection document.
// Mount it at /debug/streams on a telemetry server.
func (s *Server) StreamsHandler() http.Handler { return s.quality.Handler() }
