package server

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"context"

	"sslic/internal/degrade"
	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry/testutil"
)

// The chaos suite drives the full HTTP service under a seeded fault
// schedule and asserts the service-level robustness contract:
//
//   - every response is well-formed and in the allowed overload set
//     (2xx, 429, 499, 503, 504) — faults never leak as 400s or 500s;
//   - every 2xx carries labels byte-identical to a fault-free run of
//     that frame at the level the response was served at;
//   - the degradation controller recovers monotonically to level 0
//     once the faults stop;
//   - no goroutine leaks, no deadlock (bounded client timeouts).

// allowedChaosStatus is the response contract under faults: success,
// admission rejection, client cancel, or an explicitly retriable
// server-side failure. Anything else (400/500) means a fault leaked
// out misclassified.
func allowedChaosStatus(code int) bool {
	if code >= 200 && code < 300 {
		return true
	}
	switch code {
	case http.StatusTooManyRequests, 499,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// chaosPost posts one frame with a bounded client timeout (a hung
// response is a deadlock, not a test timeout) and drains the body.
func chaosPost(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "image/x-portable-pixmap", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestChaosSeededSchedule(t *testing.T) {
	testutil.VerifyNoLeaks(t)

	// Frames and parameters are fixed so every (frame, level) pair has
	// one golden output — computed before the injector goes live.
	frames := []*imgio.Image{testFrame(32, 24), testFrame(48, 40)}
	baseParams := func() sslic.Params {
		p := sslic.DefaultParams(16, 0.5)
		p.FullIters = 8
		return p
	}
	type goldenKey struct {
		frame int
		level degrade.Level
	}
	golden := map[goldenKey]*sslic.Result{}
	for fi, im := range frames {
		for _, lvl := range []degrade.Level{degrade.Full, degrade.CoarseSubsample} {
			res, err := sslic.Segment(im, degrade.Apply(baseParams(), lvl))
			if err != nil {
				t.Fatal(err)
			}
			golden[goldenKey{fi, lvl}] = res
		}
	}
	checkGolden := func(fi int, lvl degrade.Level, body []byte) {
		t.Helper()
		got, err := imgio.DecodeLabelMap(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("2xx response with undecodable labels: %v", err)
		}
		want := golden[goldenKey{fi, lvl}]
		if len(got.Labels) != len(want.Labels.Labels) {
			t.Fatalf("frame %d level %v: %d labels, want %d", fi, lvl, len(got.Labels), len(want.Labels.Labels))
		}
		for i := range want.Labels.Labels {
			if got.Labels[i] != want.Labels.Labels[i] {
				t.Fatalf("frame %d level %v: label %d differs from fault-free golden", fi, lvl, i)
			}
		}
	}

	// The seeded schedule: decode errors, admission latency jitter,
	// retryable worker faults, and two backend panics. Panic actions
	// live at sslic.pass and pool.run (both inside the pool's recover,
	// so they surface as ErrSegmentPanic 503s); a panic at imgio.decode
	// would instead be caught by the server middleware as a 500.
	inj := faults.New(42)
	inj.Set(faults.PointDecode, faults.PointConfig{Probability: 0.12, ErrMsg: "chaos: decode"})
	inj.Set(faults.PointPoolSubmit, faults.PointConfig{Every: 6, Latency: 2 * time.Millisecond})
	inj.Set(faults.PointPoolRun, faults.PointConfig{Probability: 0.25, ErrMsg: "chaos: worker"})
	inj.Set(faults.PointSubsetPass, faults.PointConfig{Every: 97, MaxFires: 2, Panic: true})
	faults.Enable(inj)
	t.Cleanup(faults.Disable)

	s, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 2, DegradeInterval: -1,
		Retries: 2, RetryBackoff: time.Millisecond,
	})
	client := &http.Client{Timeout: 30 * time.Second}
	url := ts.URL + "/v1/segment?k=16&iters=8"
	body := make([][]byte, len(frames))
	for i, im := range frames {
		body[i] = ppmBody(t, im)
	}

	counts := map[int]int{}
	storm := func(n int, lvl degrade.Level) {
		t.Helper()
		for i := 0; i < n; i++ {
			fi := i % len(frames)
			resp, data := chaosPost(t, client, url, body[fi])
			counts[resp.StatusCode]++
			if !allowedChaosStatus(resp.StatusCode) {
				t.Fatalf("request %d: status %d outside the chaos contract (%s)", i, resp.StatusCode, data)
			}
			if resp.StatusCode == http.StatusOK {
				if got := resp.Header.Get("X-Degradation-Level"); got != strconv.Itoa(int(lvl)) {
					t.Fatalf("request %d: X-Degradation-Level = %q, want %d", i, got, int(lvl))
				}
				checkGolden(fi, lvl, data)
			}
		}
	}

	// Phase 1: the storm at level 0.
	storm(30, degrade.Full)

	// Phase 2: synthetic overload windows escalate the controller two
	// levels (StepUpHold defaults to 2 ticks per step); the storm
	// continues at level 2 and its successes golden-match level 2.
	for i := 0; i < 4; i++ {
		s.Degrade().Tick(degrade.Signals{QueueFill: 1, Rejected: 3})
	}
	if l := s.Degrade().Level(); l != degrade.CoarseSubsample {
		t.Fatalf("controller at %v after 4 overloaded ticks, want coarse-subsample", l)
	}
	storm(16, degrade.CoarseSubsample)

	// The schedule must actually have fired, and some faults must have
	// surfaced — otherwise the contract above was tested vacuously.
	st := inj.Stats()
	if st[faults.PointDecode].Fires == 0 || st[faults.PointPoolRun].Fires == 0 {
		t.Fatalf("seeded schedule never fired: %+v", st)
	}
	if st[faults.PointSubsetPass].Fires != 2 {
		t.Fatalf("subset-pass panics fired %d times, want 2", st[faults.PointSubsetPass].Fires)
	}
	if counts[http.StatusOK] == 0 {
		t.Fatal("no request survived the storm — retry layer absorbed nothing")
	}
	if counts[http.StatusServiceUnavailable] == 0 {
		t.Fatal("no request failed under the storm — schedule too weak to test the contract")
	}

	// Phase 3: faults stop; calm windows walk the controller back down
	// monotonically (StepDownHold defaults to 5) until level 0.
	faults.Disable()
	s.SampleSignals() // close the storm window so recovery sees calm deltas
	prev := s.Degrade().Level()
	for tick := 0; prev != degrade.Full; tick++ {
		if tick > 40 {
			t.Fatalf("controller stuck at %v after %d calm ticks", prev, tick)
		}
		l := s.Degrade().Tick(s.SampleSignals())
		if l > prev {
			t.Fatalf("recovery not monotone: %v -> %v on a calm tick", prev, l)
		}
		prev = l
	}

	// Recovered: a clean request serves 200 at level 0, golden-exact.
	resp, data := chaosPost(t, client, url, body[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Degradation-Level"); got != "0" {
		t.Fatalf("post-recovery X-Degradation-Level = %q, want 0", got)
	}
	checkGolden(0, degrade.Full, data)

	// CI artifact: the full metric state after the storm (fault fires,
	// retries, panics, breaker and degradation series) for the chaos
	// job to upload.
	if path := os.Getenv("CHAOS_METRICS_OUT"); path != "" {
		var buf bytes.Buffer
		s.Registry().WritePrometheus(&buf)
		buf.WriteString("# chaos fault schedule (seed 42), calls/fires per point:\n")
		for _, pt := range faults.KnownPoints() {
			if ps, ok := st[pt]; ok {
				buf.WriteString("# " + pt + " calls=" + strconv.FormatInt(ps.Calls, 10) +
					" fires=" + strconv.FormatInt(ps.Fires, 10) + "\n")
			}
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Errorf("writing chaos metrics artifact: %v", err)
		}
	}
}

// TestChaosOverloadDegradedLevelShedsLess pins the service at level 0
// and at level 1 under the same offered load (arrivals faster than the
// level-0 service rate, slower than the level-1 rate) and checks the
// degraded level rejects strictly fewer requests — degradation buys
// admission capacity, which is the whole point of the ladder.
func TestChaosOverloadDegradedLevelShedsLess(t *testing.T) {
	if testing.Short() {
		t.Skip("overload timing test")
	}
	testutil.VerifyNoLeaks(t)

	run := func(lvl degrade.Level) (ok, rejected int) {
		// Service time scales with the iteration budget, like the real
		// backend: 40ms at level 0 (iters 10), 20ms at level 1 (iters 5).
		weighted := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
			select {
			case <-time.After(time.Duration(p.FullIters) * 4 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return sslic.SegmentContext(ctx, im, p)
		}
		s, ts := newTestServer(t, Config{
			Workers: 1, QueueDepth: 1, Segment: weighted, DegradeInterval: -1,
		})
		s.Degrade().Pin(lvl)
		body := ppmBody(t, testFrame(16, 16))
		client := &http.Client{Timeout: 30 * time.Second}

		// Open-loop arrivals: one request every 18ms, 50 requests.
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < 50; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, data := chaosPost(t, client, ts.URL+"/v1/segment?k=8", body)
				mu.Lock()
				defer mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
				case http.StatusTooManyRequests:
					rejected++
				default:
					t.Errorf("overload status %d (%s)", resp.StatusCode, data)
				}
			}()
			time.Sleep(18 * time.Millisecond)
		}
		wg.Wait()
		return ok, rejected
	}

	ok0, rej0 := run(degrade.Full)
	ok1, rej1 := run(degrade.HalfIters)
	t.Logf("level 0: %d ok / %d rejected; level 1: %d ok / %d rejected", ok0, rej0, ok1, rej1)
	if rej0 == 0 {
		t.Fatal("level 0 never saturated — offered load too low to compare")
	}
	if rej1 >= rej0 {
		t.Fatalf("level 1 rejected %d >= level 0's %d: degradation bought no capacity", rej1, rej0)
	}
}
