package server

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sslic/internal/bufpool"
	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/wire"
)

var update = flag.Bool("update", false, "rewrite wire-format golden files")

// testFrameShifted is testFrame with the columns rolled right by dx: the
// same scene one "camera pan" later, so consecutive-frame deltas have
// realistic overlap without being identical.
func testFrameShifted(w, h, dx int) *imgio.Image {
	src := testFrame(w, h)
	im := imgio.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx := (x + dx) % w
			i, j := y*w+x, y*w+sx
			im.C0[i], im.C1[i], im.C2[i] = src.C0[j], src.C1[j], src.C2[j]
		}
	}
	return im
}

// testFrameInverted is testFrame with every channel complemented — same
// dimensions, completely different pixel content, for aliasing tests.
func testFrameInverted(w, h int) *imgio.Image {
	im := testFrame(w, h)
	for i := range im.C0 {
		im.C0[i] = 255 - im.C0[i]
		im.C1[i] = 255 - im.C1[i]
		im.C2[i] = 255 - im.C2[i]
	}
	return im
}

// goldenLabels runs the server's own parameter mapping in-process on a
// cold state, which is what any stream-less HTTP request computes.
func goldenLabels(t *testing.T, s *Server, im *imgio.Image, query string) *imgio.LabelMap {
	t.Helper()
	q, err := url.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := parseOptions(s.cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sslic.Segment(im, s.paramsFor(opts))
	if err != nil {
		t.Fatal(err)
	}
	return res.Labels
}

func postFrame(t *testing.T, ts *httptest.Server, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/segment?"+query, "", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	return resp, got
}

// TestWireFormatGolden: each slbl-family response must byte-match both
// the in-process wire encoder over the server's own segmentation AND a
// committed golden file. The goldens pin the fixed datapath (bit-exact
// integer math on every architecture), so a byte drift means the wire
// framing or the fixed-point core changed, not the host's FPU.
func TestWireFormatGolden(t *testing.T) {
	im := testFrame(64, 48)
	body := ppmBody(t, im)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	const base = "k=24&ratio=0.5&iters=4&datapath=fixed"
	want := goldenLabels(t, s, im, base)

	cases := []struct {
		format string
		encode func(w io.Writer) error
	}{
		{formatSLBL, func(w io.Writer) error { return wire.EncodeRaw(w, want) }},
		{formatSLBLRLE, func(w io.Writer) error { return wire.EncodeRLE(w, want) }},
		{formatSLBLDelta, func(w io.Writer) error { return wire.EncodeDelta(w, want, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.format, func(t *testing.T) {
			resp, got := postFrame(t, ts, base+"&format="+tc.format, body)

			wf, ok := wire.ParseFormat(tc.format)
			if !ok {
				t.Fatalf("ParseFormat(%q) rejected a served format", tc.format)
			}
			if ct := resp.Header.Get("Content-Type"); ct != wf.ContentType() {
				t.Fatalf("Content-Type = %q, want %q", ct, wf.ContentType())
			}
			if hv := resp.Header.Get("X-Wire-Format"); hv != tc.format {
				t.Fatalf("X-Wire-Format = %q, want %q", hv, tc.format)
			}
			if tc.format == formatSLBLDelta {
				// No stream: there is never a cached base.
				if hv := resp.Header.Get("X-Wire-Base"); hv != "empty" {
					t.Fatalf("X-Wire-Base = %q, want \"empty\"", hv)
				}
			}

			var exp bytes.Buffer
			if err := tc.encode(&exp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, exp.Bytes()) {
				t.Fatalf("response bytes differ from in-process %s encoding (%d vs %d bytes)",
					tc.format, len(got), exp.Len())
			}

			// The response must decode back to the exact label map.
			dec, err := wire.Decode(bytes.NewReader(got), im.W*im.H, nil)
			if err != nil {
				t.Fatal(err)
			}
			if dec.W != want.W || dec.H != want.H || !int32Equal(dec.Labels, want.Labels) {
				t.Fatal("decoded response does not round-trip the segmentation")
			}

			golden := filepath.Join("testdata", "wire", tc.format+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Fatalf("response differs from committed golden %s (%d vs %d bytes)",
					golden, len(got), len(wantBytes))
			}
		})
	}

	// Interop: format=slbl is the same framing imgio has always written,
	// so it must equal the legacy format=labels body byte for byte.
	_, legacy := postFrame(t, ts, base+"&format=labels", body)
	_, slbl := postFrame(t, ts, base+"&format=slbl", body)
	if !bytes.Equal(legacy, slbl) {
		t.Fatal("format=slbl bytes differ from format=labels bytes")
	}
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWireDeltaStream drives a two-frame stream through slbl-delta and
// checks the client-visible contract: the first response declares the
// empty base and the second declares (and is decodable against) the
// previous response, reconstructing exactly the labels a parallel
// stream receives as raw slbl. A geometry change must reset the base.
func TestWireDeltaStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	f1 := ppmBody(t, testFrame(64, 48))
	f2 := ppmBody(t, testFrameShifted(64, 48, 8))
	const opts = "k=24&ratio=0.5&iters=4"

	// Stream "cam-raw" serves ground truth: the same frame sequence as
	// raw slbl. Warm-start evolution is per stream and both streams see
	// identical frames and parameters, so the label maps match.
	_, raw1 := postFrame(t, ts, opts+"&format=slbl&stream=cam-raw", f1)
	_, raw2 := postFrame(t, ts, opts+"&format=slbl&stream=cam-raw", f2)
	want1, err := wire.Decode(bytes.NewReader(raw1), 64*48, nil)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := wire.Decode(bytes.NewReader(raw2), 64*48, nil)
	if err != nil {
		t.Fatal(err)
	}

	resp1, d1 := postFrame(t, ts, opts+"&format=slbl-delta&stream=cam-delta", f1)
	if hv := resp1.Header.Get("X-Wire-Base"); hv != "empty" {
		t.Fatalf("first delta X-Wire-Base = %q, want \"empty\"", hv)
	}
	got1, err := wire.Decode(bytes.NewReader(d1), 64*48, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !int32Equal(got1.Labels, want1.Labels) {
		t.Fatal("first delta response does not decode to the raw labels")
	}

	resp2, d2 := postFrame(t, ts, opts+"&format=slbl-delta&stream=cam-delta", f2)
	if hv := resp2.Header.Get("X-Wire-Base"); hv != "prev" {
		t.Fatalf("second delta X-Wire-Base = %q, want \"prev\"", hv)
	}
	got2, err := wire.Decode(bytes.NewReader(d2), 64*48, got1)
	if err != nil {
		t.Fatal(err)
	}
	if !int32Equal(got2.Labels, want2.Labels) {
		t.Fatal("delta chain does not reconstruct the raw labels")
	}
	if len(d2) >= len(raw2) {
		t.Fatalf("delta frame (%d bytes) not smaller than raw frame (%d bytes)", len(d2), len(raw2))
	}

	// A resolution change invalidates the cached base: the response must
	// fall back to the empty base, not emit garbage against stale dims.
	f3 := ppmBody(t, testFrame(32, 24))
	resp3, d3 := postFrame(t, ts, opts+"&format=slbl-delta&stream=cam-delta", f3)
	if hv := resp3.Header.Get("X-Wire-Base"); hv != "empty" {
		t.Fatalf("post-resize delta X-Wire-Base = %q, want \"empty\"", hv)
	}
	if _, err := wire.Decode(bytes.NewReader(d3), 32*24, nil); err != nil {
		t.Fatalf("post-resize delta does not decode standalone: %v", err)
	}

	// Anonymous requests never seed a base for each other.
	_, _ = postFrame(t, ts, opts+"&format=slbl-delta", f1)
	respAnon, _ := postFrame(t, ts, opts+"&format=slbl-delta", f2)
	if hv := respAnon.Header.Get("X-Wire-Base"); hv != "empty" {
		t.Fatalf("anonymous delta X-Wire-Base = %q, want \"empty\"", hv)
	}
}

// TestPoolReuseNoAliasing hammers one server with back-to-back requests
// whose buffers recycle through the pool, checking every response
// byte-matches a cold in-process run on a fresh buffer: a stale pixel or
// label leaking out of a recycled plane shows up as a byte diff.
func TestPoolReuseNoAliasing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	const opts = "k=24&ratio=0.5&iters=4"

	frames := []*imgio.Image{
		testFrame(64, 48),
		testFrameInverted(64, 48), // same size class, opposite content
		testFrame(63, 47),         // same class, smaller dims: reslice path
		testFrame(32, 24),         // different class
		testFrame(64, 48),         // back to the first class
	}
	for i, im := range frames {
		want := goldenLabels(t, s, im, opts)
		var exp bytes.Buffer
		if err := imgio.EncodeLabelMap(&exp, want); err != nil {
			t.Fatal(err)
		}
		_, got := postFrame(t, ts, opts+"&format=labels", ppmBody(t, im))
		if !bytes.Equal(got, exp.Bytes()) {
			t.Fatalf("request %d (%dx%d): pooled response differs from cold golden", i, im.W, im.H)
		}
	}

	// The in-place overlay render writes into the recycled decode buffer;
	// the response must match a render over a fresh copy of the frame.
	im := testFrameInverted(64, 48)
	want := goldenLabels(t, s, im, opts)
	expIm := testFrameInverted(64, 48)
	imgio.OverlayInto(expIm, expIm, want, 255, 0, 0)
	var exp bytes.Buffer
	if err := imgio.EncodePPM(&exp, expIm); err != nil {
		t.Fatal(err)
	}
	_, got := postFrame(t, ts, opts+"&format=overlay&encoding=ppm", ppmBody(t, im))
	if !bytes.Equal(got, exp.Bytes()) {
		t.Fatal("pooled overlay response differs from fresh-buffer render")
	}
}

// TestCostAllocHeaderShrinks: the ledger charges measured pool bytes, so
// a steady-state pooled request — hitting recycled buffers for both the
// decode target and the label map — must report strictly fewer
// allocated bytes than its cold predecessor, while the unpooled server
// keeps charging the full per-request estimate every time.
func TestCostAllocHeaderShrinks(t *testing.T) {
	const w, h = 64, 48
	body := ppmBody(t, testFrame(w, h))
	const query = "k=24&ratio=0.5&iters=4&format=labels"

	allocBytes := func(resp *http.Response) int64 {
		hv := resp.Header.Get("X-Cost-Alloc-Bytes")
		if hv == "" {
			return 0 // stampCostHeaders omits zero-valued fields
		}
		n, err := strconv.ParseInt(hv, 10, 64)
		if err != nil {
			t.Fatalf("bad X-Cost-Alloc-Bytes %q: %v", hv, err)
		}
		return n
	}

	_, pooled := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	r1, _ := postFrame(t, pooled, query, body)
	r2, _ := postFrame(t, pooled, query, body)
	cold, warm := allocBytes(r1), allocBytes(r2)
	if cold <= 0 {
		t.Fatalf("cold pooled request reports %d alloc bytes, want > 0", cold)
	}
	if warm >= cold {
		t.Fatalf("steady-state pooled request reports %d alloc bytes, want < %d", warm, cold)
	}

	_, fresh := newTestServer(t, Config{Workers: 1, QueueDepth: 2, NoBufferPool: true})
	f1, _ := postFrame(t, fresh, query, body)
	f2, _ := postFrame(t, fresh, query, body)
	// Unpooled, every request allocates three image planes and a label
	// map: 3WH + 4WH bytes, charged identically on every request.
	const estimate = 7 * w * h
	if a, b := allocBytes(f1), allocBytes(f2); a != estimate || b != estimate {
		t.Fatalf("unpooled requests report %d and %d alloc bytes, want %d both", a, b, estimate)
	}
	if warm >= estimate {
		t.Fatalf("steady-state pooled request (%d bytes) not under the unpooled estimate (%d)", warm, estimate)
	}
}

// sink defeats dead-code elimination in the alloc gate.
var sink int64

// TestSteadyStateAllocs is the allocation-regression gate over the
// request path's hot core — decode into a pooled frame, segment into a
// pooled label map, encode straight to the wire — exactly what
// handleSegment runs between the HTTP layers. The ceiling has headroom
// over the measured steady state (see BENCH_report) but sits far below
// the unpooled path, so losing buffer reuse anywhere in the chain trips
// it immediately.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	pool := bufpool.New(bufpool.Config{})
	body := ppmBody(t, testFrame(160, 120))
	params := sslic.DefaultParams(48, 0.5)
	params.FullIters = 4
	params.TileWorkers = 1
	// One scratch per worker, exactly like the pool's worker loop: the
	// Lab planes, gradient map, accumulators and pass scratch all reuse
	// across frames.
	params.Scratch = pool.GetScratch()

	run := func() {
		im, err := decodeFrame(bytes.NewReader(body), "", 4<<20, pool.ImageAlloc(nil))
		if err != nil {
			t.Fatal(err)
		}
		lbuf, _ := pool.GetLabelMap(im.W, im.H)
		p := params
		p.LabelBuf = lbuf
		res, err := sslic.Segment(im, p)
		if err != nil {
			t.Fatal(err)
		}
		cw := countWriter{}
		if err := wire.EncodeRLE(&cw, res.Labels); err != nil {
			t.Fatal(err)
		}
		sink += cw.n
		pool.PutImage(im)
		pool.PutLabelMap(res.Labels)
	}
	run() // charge the pool before measuring

	allocs := testing.AllocsPerRun(20, run)
	t.Logf("steady-state allocs/op = %.1f", allocs)
	// Measured ~33 on the pooled path with a worker scratch (~41 without
	// one, where every frame reallocated the Lab planes, gradient map and
	// accumulators; pre-pool the segmentation alone ran 109). The
	// remaining allocations are deliberate: the centers slice escapes
	// into warm-start state, and the connectivity sweep sizes its queues
	// per frame. 48 gives drift headroom without letting the scratch or
	// any buffer fall out of reuse.
	if allocs > 48 {
		t.Fatalf("steady-state request core allocates %.1f objects/op, want <= 48", allocs)
	}
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
