package server

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"sslic/internal/degrade"
	"sslic/internal/quality"
	"sslic/internal/slo"
	"sslic/internal/telemetry"
)

// getStreams fetches and decodes the /debug/streams document straight
// from the server's handler.
func getStreams(t *testing.T, s *Server) quality.Status {
	t.Helper()
	rec := httptest.NewRecorder()
	s.StreamsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/streams", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/streams status %d: %s", rec.Code, rec.Body.String())
	}
	var st quality.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/debug/streams body not a Status document: %v\n%s", err, rec.Body.String())
	}
	return st
}

// TestStreamsEndpoint: two delta frames on one stream must produce one
// introspection row with the delta hit/miss split, the churn trend, and
// the X-Quality-* response headers (churn only once a base exists).
func TestStreamsEndpoint(t *testing.T) {
	fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Recorder: fr})
	const query = "k=24&ratio=0.5&iters=4&datapath=fixed&format=slbl-delta&stream=cam1"

	first, _ := postFrame(t, ts, query, ppmBody(t, testFrame(64, 48)))
	if got := first.Header.Get("X-Quality-Churn"); got != "" {
		t.Fatalf("first frame has no delta base, yet X-Quality-Churn = %q", got)
	}
	for _, h := range []string{"X-Quality-Empty-Clusters", "X-Quality-Boundary-Density", "X-Quality-Residual"} {
		if first.Header.Get(h) == "" {
			t.Fatalf("first frame missing %s header", h)
		}
	}

	second, _ := postFrame(t, ts, query, ppmBody(t, testFrameShifted(64, 48, 2)))
	churnHdr := second.Header.Get("X-Quality-Churn")
	if churnHdr == "" {
		t.Fatal("second frame has a delta base but no X-Quality-Churn header")
	}
	churn, err := strconv.ParseFloat(churnHdr, 64)
	if err != nil || churn < 0 || churn > 1 {
		t.Fatalf("X-Quality-Churn = %q, want a ratio in [0, 1]", churnHdr)
	}

	st := getStreams(t, s)
	if len(st.Streams) != 1 {
		t.Fatalf("got %d stream rows, want 1: %+v", len(st.Streams), st.Streams)
	}
	row := st.Streams[0]
	if row.Stream != "cam1" {
		t.Fatalf("row stream = %q, want cam1", row.Stream)
	}
	if row.Frames != 2 {
		t.Fatalf("row frames = %d, want 2", row.Frames)
	}
	if row.Width != 64 || row.Height != 48 || row.K != 24 {
		t.Fatalf("row geometry = %dx%d k=%d, want 64x48 k=24", row.Width, row.Height, row.K)
	}
	if row.WireFormat != "slbl-delta" {
		t.Fatalf("row wire format = %q, want slbl-delta", row.WireFormat)
	}
	if row.DeltaHits != 1 || row.DeltaMisses != 1 {
		t.Fatalf("delta hits/misses = %d/%d, want 1/1", row.DeltaHits, row.DeltaMisses)
	}
	// Trend is oldest-first: the cold frame's unknown churn (-1), then
	// the measured ratio the header reported (to its 6-decimal
	// rounding).
	if len(row.Quality.ChurnTrend) != 2 || row.Quality.ChurnTrend[0] != -1 ||
		math.Abs(row.Quality.ChurnTrend[1]-churn) > 1e-6 {
		t.Fatalf("churn trend = %v, want [-1 ~%g]", row.Quality.ChurnTrend, churn)
	}
	if row.Quality.BoundaryDensity <= 0 || row.Quality.BoundaryDensity >= 1 {
		t.Fatalf("boundary density = %g, want in (0, 1)", row.Quality.BoundaryDensity)
	}
	if len(row.LastTraces) != 2 {
		t.Fatalf("last traces = %v, want 2 entries", row.LastTraces)
	}
	if st.Frames != 2 {
		t.Fatalf("frames_total = %g, want 2", st.Frames)
	}
}

// TestStreamsEviction: the introspection table is bounded by
// MaxStreams; global totals survive evictions.
func TestStreamsEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxStreams: 2})
	body := ppmBody(t, testFrame(64, 48))
	for _, stream := range []string{"s1", "s2", "s3"} {
		postFrame(t, ts, "k=24&ratio=0.5&iters=4&format=labels&stream="+stream, body)
	}
	st := getStreams(t, s)
	if len(st.Streams) != 2 {
		t.Fatalf("got %d stream rows, want 2 after eviction", len(st.Streams))
	}
	for _, row := range st.Streams {
		if row.Stream == "s1" {
			t.Fatal("least-recently-seen stream s1 survived eviction")
		}
	}
	if st.Frames != 3 {
		t.Fatalf("frames_total = %g, want 3 (eviction must not reset totals)", st.Frames)
	}
}

// TestStreamsConcurrent hammers segmentation and the introspection
// endpoint at once; run under -race this is the endpoint's data-race
// gate.
func TestStreamsConcurrent(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MaxStreams: 4})
	body := ppmBody(t, testFrame(48, 32))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := "s" + strconv.Itoa(g)
			for i := 0; i < 5; i++ {
				postFrame(t, ts, "k=16&ratio=0.5&iters=3&format=slbl-delta&stream="+stream, body)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			getStreams(t, s)
			s.Quality().TickSignal()
		}
	}()
	wg.Wait()
	if st := getStreams(t, s); st.Frames != 20 {
		t.Fatalf("frames_total = %g, want 20", st.Frames)
	}
}

// TestQualityFloorEndToEnd is the chaos assertion: frames that fail the
// convergence proxy pin the degrade floor, overload then cannot walk
// the ladder past it, and both /debug/streams and /debug/slo reflect
// the state.
func TestQualityFloorEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2,
		DegradeInterval: -1, // drive the controller by hand
		// Any measurable residual ratio trips the proxy: every cold
		// frame below counts as collapsed.
		QualityMaxResidualDecay: 1e-12,
		SLOObjectives: []slo.Objective{
			{Kind: slo.KindQualityChurn, Max: 0.35, Budget: 0.05},
			{Kind: slo.KindQualityEmpty, Budget: 0.02},
		},
	})
	body := ppmBody(t, testFrame(64, 48))

	// Two controller windows of collapsed frames: FloorHold (default 2)
	// consecutive collapsed ticks pin the floor at the current level.
	// Stream-less requests stay cold, so the residual-decay check
	// applies to every one of them.
	for tick := 0; tick < 2; tick++ {
		postFrame(t, ts, "k=24&ratio=0.5&iters=4&format=labels", body)
		sig := s.SampleSignals()
		if !sig.QualityObserved || !sig.QualityCollapsed {
			t.Fatalf("tick %d: observed=%v collapsed=%v, want true/true",
				tick, sig.QualityObserved, sig.QualityCollapsed)
		}
		s.Degrade().Tick(sig)
	}
	floor, pinned := s.Degrade().Floor()
	if !pinned || floor != degrade.Full {
		t.Fatalf("floor = %v pinned=%v, want pinned at full", floor, pinned)
	}

	// A sustained latency/queue storm while quality stays collapsed:
	// the ladder must hold at the floor instead of shedding quality
	// that is already gone.
	for i := 0; i < 8; i++ {
		lvl := s.Degrade().Tick(degrade.Signals{
			QueueFill:        1,
			QualityCollapsed: true,
			QualityObserved:  true,
		})
		if lvl != degrade.Full {
			t.Fatalf("storm tick %d escalated to %v past the pinned floor", i, lvl)
		}
	}

	// Both debug surfaces report the pin.
	st := getStreams(t, s)
	if st.Floor == nil || !st.Floor.Pinned || st.Floor.Level != int(degrade.Full) {
		t.Fatalf("/debug/streams floor = %+v, want pinned at 0", st.Floor)
	}
	if st.CollapsedFrames < 2 {
		t.Fatalf("collapsed_frames_total = %g, want >= 2", st.CollapsedFrames)
	}

	s.SLOEngine().Tick() // seed baselines
	postFrame(t, ts, "k=24&ratio=0.5&iters=4&format=labels", body)
	s.SLOEngine().Tick()
	slost := s.SLOEngine().Status()
	kinds := map[slo.Kind]bool{}
	for _, o := range slost.Objectives {
		kinds[o.Kind] = true
	}
	if !kinds[slo.KindQualityChurn] || !kinds[slo.KindQualityEmpty] {
		t.Fatalf("/debug/slo objectives missing quality kinds: %+v", slost.Objectives)
	}
	_ = ts
}
