// Package server is the networked face of the S-SLIC reproduction: an
// HTTP segmentation service that accepts PPM/PNG frames, runs them
// through the pipeline.Pool worker layer, and returns label maps,
// boundary overlays or mean-color renders.
//
// The service is built for sustained load, not just functional
// correctness — the properties a real-time front end (the paper's 30 fps
// frame-budget argument, gSLICr's shared-service framing) actually
// needs:
//
//   - Admission control: the pool's bounded per-shard queues mean a
//     saturated service answers 429 + Retry-After immediately instead of
//     queueing unboundedly; in-flight memory is capped by
//     Workers × (QueueDepth+1) frames regardless of offered load.
//   - Deadlines: every request carries a context deadline (server
//     default, client-tightenable via ?timeout_ms=) that propagates
//     through the pool into sslic.SegmentContext, which aborts between
//     subset passes — an expired request stops consuming CPU within one
//     subset round.
//   - Warm starts: requests carrying ?stream= shard stickily by stream
//     ID, so consecutive frames of one client stream reuse the previous
//     frame's centers (fewer iterations, same quality — the video
//     pipeline's warm chains, keyed by client).
//   - Isolation: every handler runs behind panic-recovering middleware;
//     one poisoned request cannot take down the process.
//   - Drain: Drain stops admission (healthz flips to 503 for load
//     balancers) while queued and in-flight work completes; Close waits
//     for the workers.
//   - Observability: per-endpoint latency spans, response-code counters,
//     rejection counters by reason and the pool's queue-depth gauge all
//     live on one telemetry.Registry, shareable with the -telemetry-addr
//     server.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sslic/internal/bufpool"
	"sslic/internal/degrade"
	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/pipeline"
	"sslic/internal/quality"
	"sslic/internal/slo"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
	"sslic/internal/tenant"
	"sslic/internal/wire"
)

// Config sizes the service.
type Config struct {
	// Workers is the segmentation worker/shard count; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds each shard's admission queue; <= 0 selects 2.
	QueueDepth int
	// SegWorkers is the intra-frame parallelism (sslic.Params.TileWorkers)
	// of each request; 0 runs each frame serially, which keeps results
	// byte-deterministic across deployments on the float64 datapath (the
	// fixed datapath is byte-deterministic at every worker count).
	// Requests may override it with ?tile_workers=.
	SegWorkers int
	// Datapath is the default hot-loop arithmetic for requests that do
	// not pass ?datapath=: Float64 (zero value) or Fixed, the
	// accelerator's integer LUT datapath.
	Datapath sslic.DatapathKind
	// DefaultK, DefaultRatio, DefaultIters, DefaultCompactness are the
	// segmentation defaults when the request does not override them.
	// Zero values select 900, 0.5, 10 and 10 (the paper's evaluation
	// setup).
	DefaultK           int
	DefaultRatio       float64
	DefaultIters       int
	DefaultCompactness float64
	// WarmIters is the iteration budget for warm-started frames; <= 0
	// selects 3.
	WarmIters int
	// MaxStreams caps warm-start states kept per shard; <= 0 selects 64.
	MaxStreams int
	// MaxBodyBytes bounds the request body; exceeding it is a 413.
	// <= 0 selects 32 MiB.
	MaxBodyBytes int64
	// MaxPixels bounds the decoded frame size; exceeding it is a 413.
	// <= 0 selects 4 Mpixel (comfortably above the paper's 1080p rows).
	MaxPixels int
	// NoBufferPool disables the zero-copy buffer pool: every request
	// decodes into fresh planes and segments into a fresh label map,
	// and X-Cost-Alloc-Bytes falls back to deterministic size
	// estimates. The default (pooling on) recycles frame-sized buffers
	// across requests — the serving analogue of the accelerator's
	// resident scratchpads — and reports measured fresh bytes.
	NoBufferPool bool
	// RequestTimeout is the default per-request deadline; <= 0 selects
	// 10s. Clients may tighten (never extend) it via ?timeout_ms=,
	// capped at MaxTimeout (<= 0 selects 30s).
	RequestTimeout time.Duration
	MaxTimeout     time.Duration
	// Degrade tunes the graceful-degradation controller. Its Registry
	// and Logger fields are overridden with the server's own.
	Degrade degrade.Config
	// DegradeInterval is the load-controller sampling interval; 0
	// selects 250ms, < 0 disables the sampling loop (the controller
	// still exists and can be driven via Degrade().Tick or pinned —
	// how the chaos suite holds a level steady).
	DegradeInterval time.Duration
	// Retries, RetryBackoff and WatchdogGrace pass through to the
	// pool's fault-recovery layer (see pipeline.PoolConfig). The
	// watchdog defaults on at 2s grace; RetryBackoff defaults per the
	// pool.
	Retries       int
	RetryBackoff  time.Duration
	WatchdogGrace time.Duration
	// BreakerThreshold is the backend panic count within BreakerWindow
	// that opens the panic circuit breaker (the segment endpoint
	// fast-fails 503 until a cooldown probe succeeds). 0 selects 3;
	// < 0 disables the breaker. BreakerWindow and BreakerCooldown
	// default to 10s and 2s.
	BreakerThreshold int
	BreakerWindow    time.Duration
	BreakerCooldown  time.Duration
	// Segment overrides the segmentation backend; nil selects
	// sslic.SegmentContext.
	Segment pipeline.SegmentFunc
	// Registry receives all service metrics; nil selects a private one.
	// Pass the same registry to a telemetry.Server to expose the series
	// alongside pprof.
	Registry *telemetry.Registry
	// Recorder, when set, enables end-to-end request tracing: every
	// /v1/segment request gets a trace (accepting a client X-Trace-Id or
	// assigning one, echoed back in the response header) whose timeline
	// covers decode → admission queue wait → every S-SLIC subset pass →
	// encode. Finished traces are retained by the recorder's sampling —
	// client-supplied IDs always, errors and slow requests always, plus
	// a head-sampled fraction of the rest — and are fetchable from
	// /debug/trace?id= on a telemetry.Server sharing this recorder. nil
	// disables tracing.
	Recorder *telemetry.FlightRecorder
	// SLOObjectives, when non-empty, enables the embedded SLO engine:
	// the objectives are evaluated every DegradeInterval tick over the
	// same observation windows the degrade controller sees, exported on
	// the registry and at the SLOHandler, and (via Degrade.BurnHigh)
	// fed back into the degrade ladder.
	SLOObjectives []slo.Objective
	// SLOFastWindow and SLOSlowWindow are the burn-rate windows in
	// ticks; zero selects the engine's defaults (20 and 240 — 5s and
	// 60s at the default 250ms tick).
	SLOFastWindow, SLOSlowWindow int
	// SLOBurnThreshold is the fast-burn level that edge-triggers an
	// automatic profile capture and counts as a burn alert; <= 0
	// disables alerting (budgets and burn rates are still tracked).
	SLOBurnThreshold float64
	// QualityMaxChurn, QualityMaxEmptyFrac and QualityMaxResidualDecay
	// are the quality-floor thresholds (see quality.Config): a frame
	// trips the floor when any enabled check fails, and a tick whose
	// frames mostly tripped pins the degrade ladder at its current
	// level until quality recovers. <= 0 disables a check; all three
	// disabled means the ladder is governed by load signals alone.
	// Quality proxies are tracked and exported either way.
	QualityMaxChurn         float64
	QualityMaxEmptyFrac     float64
	QualityMaxResidualDecay float64
	// Tenants, when non-empty, turns on multi-tenant fairness: requests
	// resolve to a tenant by API key (X-API-Key header, ?tenant= query
	// fallback; keyless requests are "_anon", unknown keys "_other"),
	// pass that tenant's token bucket and in-flight quota, and enter a
	// weighted-fair (deficit-round-robin) admission queue in front of
	// the pool, so one tenant's storm cannot starve another. Tenant
	// classes bias the degrade ladder per request (free +1 level,
	// premium -1 and never ladder-shed), panics feed per-tenant circuit
	// breakers, and per-stream cost/quality series get per-tenant label
	// budgets. Empty (the default) keeps the single-tenant behavior:
	// one shared FIFO, one breaker, global stream namespaces.
	// Typically built with tenant.ParseSpec (the -tenants flag).
	Tenants []tenant.Config
	// ProfileCapacity, ProfileCPUDuration and ProfileCooldown tune the
	// burn-triggered profile capturer (zero values select 8 bundles,
	// 250ms CPU windows, 30s cooldown). The capturer always exists —
	// on-demand captures work without an SLO engine — but automatic
	// captures need SLOObjectives and SLOBurnThreshold.
	ProfileCapacity    int
	ProfileCPUDuration time.Duration
	ProfileCooldown    time.Duration
	// Logger, when set, logs request rejections and recovered panics.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.DefaultK <= 0 {
		c.DefaultK = 900
	}
	if c.DefaultRatio <= 0 || c.DefaultRatio > 1 {
		c.DefaultRatio = 0.5
	}
	if c.DefaultIters <= 0 {
		c.DefaultIters = 10
	}
	if c.DefaultCompactness <= 0 {
		c.DefaultCompactness = 10
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxPixels <= 0 {
		c.MaxPixels = 4 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DegradeInterval == 0 {
		c.DegradeInterval = 250 * time.Millisecond
	}
	if c.WatchdogGrace == 0 {
		c.WatchdogGrace = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Second
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// Server is the HTTP segmentation service. Construct with New, mount
// Handler on a listener, stop with Drain/Close.
type Server struct {
	cfg      Config
	pool     *pipeline.Pool
	mux      *http.ServeMux
	draining atomic.Bool

	degrade       *degrade.Controller
	sampler       *signalSampler
	brk           *breaker            // single-tenant breaker; nil when disabled or tenancy on
	tenants       *tenant.Registry    // nil when tenancy disabled
	brks          map[string]*breaker // per-tenant breakers; nil unless tenancy on and breakers enabled
	retrySeq      atomic.Uint64       // deterministic Retry-After jitter sequence
	degradeCancel context.CancelFunc
	degradeDone   chan struct{}

	costs    *costAccountant
	quality  *quality.Tracker
	slo      *slo.Engine // nil when no objectives configured
	capturer *telemetry.Capturer
	runtime  *telemetry.RuntimeMetrics

	bufs   *bufpool.Pool // nil when Config.NoBufferPool
	deltas *deltaCache   // per-stream slbl-delta bases

	inflightMu     sync.Mutex
	inflightTraces map[string]struct{} // trace IDs currently being served

	rejected *telemetry.Counter // base; per-reason series via reason()
	panics   *telemetry.Counter
}

// New builds the service and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxTimeout < cfg.RequestTimeout {
		return nil, fmt.Errorf("server: MaxTimeout %v below RequestTimeout %v", cfg.MaxTimeout, cfg.RequestTimeout)
	}
	s := &Server{cfg: cfg}
	if !cfg.NoBufferPool {
		s.bufs = bufpool.New(bufpool.Config{Registry: cfg.Registry})
	}
	s.pool = pipeline.NewPool(pipeline.PoolConfig{
		Workers:       cfg.Workers,
		QueueDepth:    cfg.QueueDepth,
		WarmIters:     cfg.WarmIters,
		MaxStreams:    cfg.MaxStreams,
		Retries:       cfg.Retries,
		RetryBackoff:  cfg.RetryBackoff,
		WatchdogGrace: cfg.WatchdogGrace,
		Buffers:       s.bufs,
		Segment:       cfg.Segment,
		Registry:      cfg.Registry,
		Logger:        cfg.Logger,
	})
	s.deltas = newDeltaCache(cfg.MaxStreams, cfg.Registry)
	s.panics = cfg.Registry.Counter("sslic_server_panics_total",
		"Handler panics recovered by the middleware.")
	s.inflightTraces = make(map[string]struct{})
	// With tenancy on, each tenant gets a fair slice of the per-stream
	// metric label budget (with its own _other overflow), so one tenant
	// minting stream IDs cannot exhaust the cardinality cap for everyone.
	tenantSlice := 0
	if len(cfg.Tenants) > 0 {
		// The fair queue sits in front of the pool and holds exactly as
		// many requests as the pool can: every admitted request either
		// runs or occupies pool queue space, so pool saturation (429
		// from a full shard) becomes rare — contention surfaces as fair
		// queue wait instead.
		capacity := s.pool.Workers() + s.pool.QueueCapacity()
		s.tenants = tenant.NewRegistry(cfg.Tenants, capacity, cfg.Registry, nil)
		tenantSlice = maxCostStreams / s.tenants.Len()
		if tenantSlice < 1 {
			tenantSlice = 1
		}
	}
	s.costs = newCostAccountant(cfg.Registry, tenantSlice)
	s.runtime = telemetry.NewRuntimeMetrics(cfg.Registry)
	s.capturer = telemetry.NewCapturer(telemetry.CaptureConfig{
		Capacity:    cfg.ProfileCapacity,
		CPUDuration: cfg.ProfileCPUDuration,
		Cooldown:    cfg.ProfileCooldown,
		TraceIDs:    s.tracesInFlight,
		Runtime:     s.runtime.Snapshot,
		Registry:    cfg.Registry,
	})

	dcfg := cfg.Degrade
	dcfg.Registry = cfg.Registry
	dcfg.Logger = cfg.Logger
	if dcfg.BurnHigh == 0 && len(cfg.SLOObjectives) > 0 {
		// An SLO engine feeds its max fast burn into the controller, so
		// a burning budget degrades quality before it exhausts.
		dcfg.BurnHigh = cfg.SLOBurnThreshold
	}
	s.degrade = degrade.New(dcfg)
	s.quality = quality.NewTracker(quality.Config{
		Registry:         cfg.Registry,
		MaxStreams:       cfg.MaxStreams,
		TenantSlice:      tenantSlice,
		MaxChurn:         cfg.QualityMaxChurn,
		MaxEmptyFrac:     cfg.QualityMaxEmptyFrac,
		MaxResidualDecay: cfg.QualityMaxResidualDecay,
		FloorFunc: func() (int, bool) {
			lvl, pinned := s.degrade.Floor()
			return int(lvl), pinned
		},
	})
	s.sampler = newSignalSampler(s.pool, cfg.Registry)
	if len(cfg.SLOObjectives) > 0 {
		eng, err := slo.New(slo.Config{
			Objectives: cfg.SLOObjectives,
			Sources: slo.Sources{
				Latency:  s.sampler.hist.Snapshot,
				Requests: s.costs.requestCounts,
				Energy:   s.costs.energyCounts,
				Churn:    s.quality.ChurnSnapshot,
				Quality:  s.quality.FrameCounts,
			},
			FastWindow:    cfg.SLOFastWindow,
			SlowWindow:    cfg.SLOSlowWindow,
			BurnThreshold: cfg.SLOBurnThreshold,
			OnBurn: func(objective string, fast, slow float64) {
				s.capturer.TryCapture("burn:" + objective)
			},
			Registry: cfg.Registry,
			Logger:   cfg.Logger,
		})
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.slo = eng
	}
	if cfg.BreakerThreshold > 0 {
		if s.tenants != nil {
			// One breaker per tenant: tenant A's poisoned frames open
			// A's circuit only — B's traffic never fast-fails for them.
			s.brks = make(map[string]*breaker, s.tenants.Len())
			for _, tn := range s.tenants.Tenants() {
				s.brks[tn.ID()] = newBreaker(cfg.BreakerThreshold, cfg.BreakerWindow,
					cfg.BreakerCooldown, cfg.Registry, nil,
					telemetry.Label{Name: "tenant", Value: tn.ID()})
			}
		} else {
			s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerWindow, cfg.BreakerCooldown, cfg.Registry, nil)
		}
	}
	if cfg.DegradeInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		s.degradeCancel = cancel
		s.degradeDone = make(chan struct{})
		go func() {
			defer close(s.degradeDone)
			s.degrade.Run(ctx, cfg.DegradeInterval, s.sampleSignals)
		}()
	}

	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/segment", s.instrument("segment", s.handleSegment))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return s, nil
}

// Degrade returns the load controller — the operator/override surface
// (Pin, Unpin) and the chaos suite's deterministic drive (Tick).
func (s *Server) Degrade() *degrade.Controller { return s.degrade }

// sampleSignals closes one load-observation window: the request-level
// signals from the sampler, a runtime-metrics sample, and an SLO engine
// tick whose maximum fast burn rides along as the controller's
// BurnRate input. One loop, one cadence, every window closed together.
func (s *Server) sampleSignals() degrade.Signals {
	sig := s.sampler.sample()
	s.runtime.Sample()
	sig.BurnRate = s.slo.Tick()
	sig.QualityCollapsed, sig.QualityObserved = s.quality.TickSignal()
	return sig
}

// SampleSignals closes one load-observation window and returns it —
// what the background sampling loop feeds the controller, exposed for
// tests that drive the controller manually.
func (s *Server) SampleSignals() degrade.Signals { return s.sampleSignals() }

// SLOEngine returns the embedded SLO engine, nil when no objectives
// are configured. Mount slo.Handler on a telemetry server to serve it.
func (s *Server) SLOEngine() *slo.Engine { return s.slo }

// Profiles returns the burn-triggered profile capturer. Mount
// telemetry.ProfilesHandler on a telemetry server to serve it.
func (s *Server) Profiles() *telemetry.Capturer { return s.capturer }

// tracesInFlight snapshots the trace IDs currently being served — the
// capturer's link between a profile bundle and the requests it
// overlapped with.
func (s *Server) tracesInFlight() []string {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	out := make([]string, 0, len(s.inflightTraces))
	for id := range s.inflightTraces {
		out = append(out, id)
	}
	return out
}

// Handler returns the service's HTTP handler (all endpoints behind the
// instrumenting, panic-isolating middleware).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the registry carrying the service metrics.
func (s *Server) Registry() *telemetry.Registry { return s.cfg.Registry }

// Drain flips the service into shedding mode: segmentation requests and
// health checks answer 503 (so load balancers stop routing here) while
// already-admitted work keeps running. Idempotent.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) && s.cfg.Logger != nil {
		s.cfg.Logger.Info("server draining: new requests shed, in-flight work finishing")
	}
}

// Close drains and then waits for every queued and in-flight job to
// finish, stopping the load-controller loop. Safe to call more than
// once.
func (s *Server) Close() {
	s.Drain()
	if s.degradeCancel != nil {
		s.degradeCancel()
		<-s.degradeDone
	}
	s.pool.Close()
}

// reject answers an error response and counts it by reason.
func (s *Server) reject(w http.ResponseWriter, reason string, code int, msg string) {
	s.cfg.Registry.Counter("sslic_server_rejected_total",
		"Requests refused, by reason.",
		telemetry.Label{Name: "reason", Value: reason}).Inc()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Debug("request rejected", "reason", reason, "code", code)
	}
	http.Error(w, msg, code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w)
}

// startTrace opens the request's flight-recorder trace. A valid client
// X-Trace-Id is honored and forces retention (the client asked for this
// exact flight); anything else gets a generated ID. The ID in effect is
// always echoed back in the X-Trace-Id response header so the client
// can fetch /debug/trace?id= afterwards. Returns nil when tracing is
// off — every Trace method no-ops on nil, so callers need no branches.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) *telemetry.Trace {
	if s.cfg.Recorder == nil {
		return nil
	}
	id := r.Header.Get("X-Trace-Id")
	forced := telemetry.ValidTraceID(id)
	if !forced {
		id = telemetry.NewTraceID()
	}
	w.Header().Set("X-Trace-Id", id)
	s.inflightMu.Lock()
	s.inflightTraces[id] = struct{}{}
	s.inflightMu.Unlock()
	return s.cfg.Recorder.StartTrace(id, forced)
}

// endTrace finishes the trace and drops it from the in-flight set.
func (s *Server) endTrace(tr *telemetry.Trace) {
	if tr == nil {
		return
	}
	s.inflightMu.Lock()
	delete(s.inflightTraces, tr.ID())
	s.inflightMu.Unlock()
	tr.Finish()
}

// handleSegment is the core endpoint: resolve tenant → admit →
// decode → segment → render.
func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	// Tenant identity resolves before anything else: the degrade level
	// offered, the breaker consulted and the admission queue entered
	// are all tenant-scoped. tn stays nil in single-tenant mode.
	var tn *tenant.Tenant
	if s.tenants != nil {
		tn = s.tenants.Resolve(tenantKey(r, q))
		w.Header().Set("X-Tenant", tn.ID())
		w.Header().Set("X-Tenant-Class", tn.Class().String())
	}
	// The degradation level is read once and governs the whole request:
	// every response — drain and breaker fast-fails included — names
	// the level it was served at, the invariant the chaos suite and
	// clients rely on. With tenancy on, the global level is biased by
	// the tenant's class (free +1 and sheds at global level 3 already;
	// premium -1 and never ladder-shed) — X-Degradation-Level always
	// carries the effective, per-request level.
	lvl := s.degrade.Level()
	if tn != nil {
		lvl = degrade.Level(tn.EffectiveLevel(int(lvl)))
	}
	w.Header().Set("X-Degradation-Level", strconv.Itoa(int(lvl)))
	// The trace opens before any rejection path — drain included — so
	// every response carries X-Trace-Id: failures are the requests an
	// operator most needs to look up afterwards.
	tr := s.startTrace(w, r)
	defer s.endTrace(tr)
	cost := telemetry.NewCost()
	// fail marks the trace failed (forcing tail retention — rejected
	// flights are the interesting ones), stamps whatever the request
	// did cost so far, and answers the error.
	fail := func(reason string, code int, msg string) {
		tr.SetError(fmt.Errorf("%s (HTTP %d): %s", reason, code, msg))
		stampCostHeaders(w.Header(), cost.Snapshot())
		s.reject(w, reason, code, msg)
	}
	if s.draining.Load() {
		s.setRetryAfter(w.Header(), 5)
		fail("draining", http.StatusServiceUnavailable, "service draining")
		return
	}
	// Shedding is decided before the breaker so a shed request never
	// consumes the half-open probe slot.
	if lvl >= degrade.Shed {
		s.setRetryAfter(w.Header(), 1)
		fail("shed", http.StatusServiceUnavailable, "service shedding load (degradation level 4)")
		return
	}
	brk := s.breakerFor(tn)
	if sr, ok := w.(*statusRecorder); ok {
		// Route panics the middleware recovers to this request's (per-
		// tenant) breaker instead of the global one.
		sr.brk = brk
	}
	if brk != nil {
		ok, probeDone := brk.allow()
		if !ok {
			s.setRetryAfter(w.Header(), 1)
			fail("breaker", http.StatusServiceUnavailable, "backend circuit breaker open")
			return
		}
		if probeDone != nil {
			// This request is the half-open probe. recordSuccess and
			// recordPanic settle the conclusive outcomes; this defer
			// settles every other exit (4xx, 429, 499, 504, faults) so
			// the probe slot can never leak.
			defer probeDone()
		}
	}
	opts, err := parseOptions(s.cfg, q)
	if err != nil {
		fail("bad_request", http.StatusBadRequest, err.Error())
		return
	}
	// Stream IDs are namespaced by tenant from here on: warm-start
	// centers in the pool and delta bases in the wire cache key off
	// opts.Stream, and two tenants both naming "cam0" must never share
	// either. The bare ID survives only as the tenant-relative metric
	// label.
	bareStream := opts.Stream
	if tn != nil && opts.Stream != "" {
		opts.Stream = tn.ID() + "/" + opts.Stream
	}
	// The request deadline starts before fair-queue admission: time
	// parked behind other tenants is request latency the client's
	// timeout budget must cover, exactly like pool queue wait.
	ctx, cancel := context.WithTimeout(
		telemetry.WithCost(telemetry.WithTrace(r.Context(), tr), cost), opts.Timeout)
	defer cancel()
	if tn != nil {
		t0 := time.Now()
		wait, err := s.tenants.Admit(ctx, tn)
		if err != nil {
			s.failAdmit(w, fail, err)
			return
		}
		defer s.tenants.Release(tn)
		if wait > 0 {
			cost.AddQueueWait(wait)
			if tr != nil {
				tr.Emit("admit", "server", t0, wait, map[string]any{"tenant": tn.ID()})
			}
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	t0 := time.Now()
	// On the pooled path the decode target comes from the buffer pool
	// and the ledger is charged the bytes the pool really allocated
	// (zero at steady state); the fresh path charges the full plane
	// size, which is exactly what NewImage allocates.
	var alloc imgio.ImageAlloc
	if s.bufs != nil {
		alloc = s.bufs.ImageAlloc(cost)
	}
	im, err := decodeFrame(body, r.Header.Get("Content-Type"), s.cfg.MaxPixels, alloc)
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			fail("too_large", http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		case errors.Is(err, imgio.ErrImageTooLarge):
			fail("too_large", http.StatusRequestEntityTooLarge,
				fmt.Sprintf("frame exceeds the %d-pixel budget", s.cfg.MaxPixels))
		case faults.IsTransient(err):
			// An injected decode fault is a backend problem, not a bad
			// request: 503 keeps chaos responses retriable.
			s.setRetryAfter(w.Header(), 1)
			fail("fault", http.StatusServiceUnavailable, "transient decode fault")
		default:
			fail("bad_request", http.StatusBadRequest, err.Error())
		}
		return
	}
	cost.AddDecode(time.Since(t0))
	if s.bufs == nil {
		cost.AddAlloc(int64(len(im.C0) + len(im.C1) + len(im.C2)))
	}
	if tr != nil {
		tr.Emit("decode", "server", t0, time.Since(t0),
			map[string]any{"width": im.W, "height": im.H})
	}
	params := degrade.Apply(s.paramsFor(opts), lvl)
	if err := params.Validate(im.W, im.H); err != nil {
		fail("bad_request", http.StatusBadRequest, err.Error())
		return
	}

	// The label buffer rides the job into the backend, which segments
	// straight into it (sslic's ledger charge for a fresh map is
	// skipped when LabelBuf is set — the pool's measured charge here
	// replaces the estimate).
	var lbuf *imgio.LabelMap
	if s.bufs != nil {
		var fresh int64
		lbuf, fresh = s.bufs.GetLabelMap(im.W, im.H)
		cost.AddAlloc(fresh)
	}

	res, err := s.pool.Submit(ctx, pipeline.Job{Image: im, Params: params, StreamID: opts.Stream, LabelBuf: lbuf})
	if err != nil {
		// The buffers are NOT recycled on any post-submit failure: a
		// watchdog-abandoned or canceled attempt's goroutine may still
		// be writing into them, so they are leaked to the garbage
		// collector rather than handed to the next request.
		switch {
		case errors.Is(err, pipeline.ErrSaturated):
			s.setRetryAfter(w.Header(), 1)
			fail("saturated", http.StatusTooManyRequests, "segmentation queue full")
		case errors.Is(err, pipeline.ErrPoolClosed):
			s.setRetryAfter(w.Header(), 5)
			fail("draining", http.StatusServiceUnavailable, "service draining")
		case errors.Is(err, pipeline.ErrWorkerStuck):
			fail("stuck", http.StatusGatewayTimeout, "backend abandoned past deadline")
		case errors.Is(err, pipeline.ErrSegmentPanic):
			if brk != nil {
				brk.recordPanic()
			}
			s.setRetryAfter(w.Header(), 1)
			fail("backend_panic", http.StatusServiceUnavailable, "segmentation backend crashed on this frame")
		case errors.Is(err, context.DeadlineExceeded):
			fail("deadline", http.StatusGatewayTimeout, "request deadline exceeded")
		case errors.Is(err, context.Canceled):
			// The client went away; 499 is the de-facto convention for
			// logging a client-closed request (nothing reads the body).
			fail("canceled", 499, "client canceled request")
		case faults.IsTransient(err):
			// An injected fault that survived the pool's retries:
			// transient by construction, so tell the client to try again.
			s.setRetryAfter(w.Header(), 1)
			fail("fault", http.StatusServiceUnavailable, "transient backend fault")
		default:
			fail("internal", http.StatusInternalServerError, err.Error())
		}
		return
	}
	if brk != nil {
		brk.recordSuccess()
	}
	// Close the ledger before any body bytes: the energy estimate runs
	// the hw analytic model for this exact workload, then the X-Cost-*
	// headers and the trace's "cost" instant carry the same snapshot.
	// Encode time is charged afterwards and lands in the trace and the
	// registry only — headers are immutable once the body starts.
	s.costs.chargeEnergy(cost, im, params, res, tr)
	snap := s.costs.finish(cost, tenantID(tn), bareStream, tr)
	stampCostHeaders(w.Header(), snap)
	// The stream's delta base is taken out once, before any body byte:
	// it is both the churn comparand for the quality proxies and (for
	// the delta wire format) the encode base. Non-delta responses put
	// it back untouched so the cache state is format-independent.
	// opts.Stream is tenant-scoped here, so the base can only ever be
	// this tenant's own previous frame.
	base := s.deltas.take(opts.Stream)
	s.observeQuality(w.Header(), opts, tenantID(tn), im, res, base, tr, int(lvl))
	s.writeResult(w, opts, im, res, tr, cost, base)
	// Success path: the response is fully written, no goroutine can
	// still touch these buffers — park them for the next request.
	if s.bufs != nil {
		s.bufs.PutImage(im)
		s.bufs.PutLabelMap(res.Result.Labels)
		if lbuf != nil && res.Result.Labels != lbuf {
			// The backend fell back to a fresh map (defensive: it only
			// would on a dimension mismatch); the untouched pooled
			// buffer is still clean to recycle.
			s.bufs.PutLabelMap(lbuf)
		}
	}
}

// recordPanic feeds the circuit breaker (when enabled).
func (s *Server) recordPanic() {
	if s.brk != nil {
		s.brk.recordPanic()
	}
}

// tenantKey extracts the request's API key: the X-API-Key header, or
// the ?tenant= query fallback for clients that cannot set headers.
// Empty means anonymous.
func tenantKey(r *http.Request, q url.Values) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return q.Get("tenant")
}

// tenantID is tn.ID() with a nil guard for single-tenant mode.
func tenantID(tn *tenant.Tenant) string {
	if tn == nil {
		return ""
	}
	return tn.ID()
}

// breakerFor selects the request's circuit breaker: the tenant's own
// in multi-tenant mode, the shared one otherwise, nil when disabled.
func (s *Server) breakerFor(tn *tenant.Tenant) *breaker {
	if tn != nil {
		return s.brks[tn.ID()] // nil map → nil: breakers disabled
	}
	return s.brk
}

// setRetryAfter stamps an adaptive Retry-After hint: a base by cause,
// raised by the current degrade level and pool queue fill, plus a
// deterministic 0-2s jitter from a rotating sequence so a burst of
// synchronized clients gets spread over three retry instants instead
// of re-converging into the same thundering herd. Clamped to [1, 30].
func (s *Server) setRetryAfter(h http.Header, base int) {
	secs := base + int(s.degrade.Level())
	if cap := s.pool.QueueCapacity(); cap > 0 {
		fill := float64(s.pool.Queued()) / float64(cap)
		secs += int(fill*3 + 0.5)
	}
	secs += int(s.retrySeq.Add(1) % 3)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	h.Set("Retry-After", strconv.Itoa(secs))
}

// failAdmit maps a fair-queue admission error onto a response. Rate
// refusals carry the token bucket's actual refill time as Retry-After
// — the one hint that is exactly right — while quota and queue
// refusals use the adaptive load-derived hint.
func (s *Server) failAdmit(w http.ResponseWriter, fail func(string, int, string), err error) {
	var rl *tenant.RateLimitedError
	switch {
	case errors.As(err, &rl):
		secs := int(rl.RetryAfter/time.Second) + 1
		if secs > 30 {
			secs = 30
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		fail("rate_limited", http.StatusTooManyRequests, "tenant rate limit exceeded")
	case errors.Is(err, tenant.ErrInFlightLimit):
		s.setRetryAfter(w.Header(), 1)
		fail("tenant_inflight", http.StatusTooManyRequests, "tenant in-flight quota exceeded")
	case errors.Is(err, tenant.ErrQueueFull):
		s.setRetryAfter(w.Header(), 1)
		fail("tenant_queue_full", http.StatusTooManyRequests, "tenant admission queue full")
	case errors.Is(err, context.DeadlineExceeded):
		fail("deadline", http.StatusGatewayTimeout, "request deadline exceeded while queued")
	case errors.Is(err, context.Canceled):
		fail("canceled", 499, "client canceled request")
	case faults.IsTransient(err):
		s.setRetryAfter(w.Header(), 1)
		fail("fault", http.StatusServiceUnavailable, "transient admission fault")
	default:
		fail("internal", http.StatusInternalServerError, err.Error())
	}
}

// writeResult renders the segmentation in the requested format. base
// is the stream's taken-out delta cache entry (nil when absent): the
// delta format encodes against and then replaces it; every other
// format restores it unchanged.
func (s *Server) writeResult(w http.ResponseWriter, opts options, im *imgio.Image, res *pipeline.JobResult, tr *telemetry.Trace, cost *telemetry.Cost, base *imgio.LabelMap) {
	labels := res.Result.Labels
	h := w.Header()
	h.Set("X-Sslic-Warm", strconv.FormatBool(res.Warm))
	h.Set("X-Sslic-Seconds", strconv.FormatFloat(res.Latency.Seconds(), 'f', 6, 64))
	t0 := time.Now()
	var err error
	switch opts.Format {
	case formatLabels:
		h.Set("Content-Type", "application/octet-stream")
		err = imgio.EncodeLabelMap(w, labels)
	case formatSLBL, formatSLBLRLE, formatSLBLDelta:
		wf, _ := wire.ParseFormat(opts.Format)
		h.Set("Content-Type", wf.ContentType())
		h.Set("X-Wire-Format", opts.Format)
		if wf == wire.Delta {
			err = s.writeDelta(w, opts.Stream, labels, base)
			base = nil // consumed (or recycled) by writeDelta
		} else {
			err = wire.Encode(w, wf, labels, nil)
		}
	case formatOverlay, formatMean:
		// Both renders draw in place into the decode buffer (the
		// encoders read it strictly behind the writes), so the render
		// target costs no allocation at all.
		if opts.Format == formatOverlay {
			imgio.OverlayInto(im, im, labels, 255, 0, 0)
		} else {
			imgio.MeanColorInto(im, im, labels)
		}
		if opts.Encoding == encodingPNG {
			h.Set("Content-Type", "image/png")
			err = imgio.EncodePNG(w, im)
		} else {
			h.Set("Content-Type", "image/x-portable-pixmap")
			err = imgio.EncodePPM(w, im)
		}
	}
	if base != nil {
		// Non-delta format on a stream with a cached base: restore it so
		// a later delta request still has its comparand.
		if old := s.deltas.put(opts.Stream, base); old != nil {
			s.putLabelBuf(old)
		}
	}
	cost.AddEncode(time.Since(t0))
	if tr != nil {
		tr.Emit("encode", "server", t0, time.Since(t0),
			map[string]any{"format": opts.Format, "warm": res.Warm})
	}
	if err != nil {
		tr.SetError(fmt.Errorf("response write failed: %w", err))
		if s.cfg.Logger != nil {
			// The status line is gone; all we can do is log the broken write.
			s.cfg.Logger.Debug("response write failed", "err", err)
		}
	}
}

// writeDelta encodes labels in the slbl-delta framing against the
// stream's cached previous response (already taken out by the caller),
// declaring the base actually used in X-Wire-Base ("prev" or "empty")
// so the response stays decodable even when a concurrent request on
// the same stream holds the base. Afterwards the stream's base becomes
// this response's labels.
func (s *Server) writeDelta(w http.ResponseWriter, stream string, labels, base *imgio.LabelMap) error {
	if base != nil && (base.W != labels.W || base.H != labels.H) {
		// The stream changed frame geometry; the old base is useless.
		s.putLabelBuf(base)
		base = nil
	}
	if base != nil {
		w.Header().Set("X-Wire-Base", "prev")
	} else {
		w.Header().Set("X-Wire-Base", "empty")
	}
	err := wire.EncodeDelta(w, labels, base)
	if stream == "" {
		return err
	}
	// Reuse the taken-out buffer as the new base when possible; labels
	// itself is recycled by the caller, so the cache keeps a copy.
	next := base
	if next == nil {
		next = s.newLabelBuf(labels.W, labels.H)
	}
	copy(next.Labels, labels.Labels)
	if old := s.deltas.put(stream, next); old != nil {
		s.putLabelBuf(old)
	}
	return err
}

// newLabelBuf and putLabelBuf wrap the buffer pool for internal label
// buffers (the delta cache), falling back to plain allocation when
// pooling is disabled.
func (s *Server) newLabelBuf(w, h int) *imgio.LabelMap {
	if s.bufs != nil {
		lm, _ := s.bufs.GetLabelMap(w, h)
		return lm
	}
	return &imgio.LabelMap{W: w, H: h, Labels: make([]int32, w*h)}
}

func (s *Server) putLabelBuf(lm *imgio.LabelMap) {
	if s.bufs != nil {
		s.bufs.PutLabelMap(lm)
	}
}

// paramsFor maps request options onto a full parameter set. Kept as a
// method so tests can build the exact params the server will run.
func (s *Server) paramsFor(o options) sslic.Params {
	p := sslic.DefaultParams(o.K, o.Ratio)
	p.FullIters = o.Iters
	p.Compactness = o.Compactness
	p.Datapath = o.Datapath
	p.TileWorkers = s.cfg.SegWorkers
	if o.TileWorkers >= 0 {
		p.TileWorkers = o.TileWorkers
	}
	return p
}

// instrument wraps a handler with the service middleware: a per-endpoint
// latency span (histogram + in-flight gauge), a response-code counter,
// and panic isolation.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	lbl := telemetry.Label{Name: "endpoint", Value: endpoint}
	spans := telemetry.NewSpans(s.cfg.Registry, "sslic_server_request",
		"Per-request service time.", nil, s.cfg.Logger, lbl)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		sp := spans.Start("method", r.Method, "path", r.URL.Path)
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				// Only segment-path panics feed the segment endpoint's
				// circuit breaker — a bug in /metrics or /healthz must
				// not fast-fail segmentation traffic. The handler
				// parks its (per-tenant) breaker on the recorder; a
				// panic before tenant resolution has no breaker to
				// blame, so only the global counter sees it.
				if endpoint == "segment" {
					if sr.brk != nil {
						sr.brk.recordPanic()
					} else if s.tenants == nil {
						s.recordPanic()
					}
				}
				sp.Abort()
				if s.cfg.Logger != nil {
					buf := make([]byte, 4096)
					buf = buf[:runtime.Stack(buf, false)]
					s.cfg.Logger.Error("handler panic recovered",
						"endpoint", endpoint, "panic", fmt.Sprint(p), "stack", string(buf))
				}
				if sr.code == 0 {
					http.Error(sr, "internal error", http.StatusInternalServerError)
				}
			} else {
				sp.End()
			}
			code := sr.code
			if code == 0 {
				code = http.StatusOK
			}
			s.cfg.Registry.Counter("sslic_server_responses_total",
				"Responses sent, by endpoint and status code.",
				lbl, telemetry.Label{Name: "code", Value: strconv.Itoa(code)}).Inc()
			if endpoint == "segment" {
				s.costs.observeResponse(code)
			}
		}()
		h(sr, r)
	})
}

// statusRecorder captures the response code for the metrics middleware
// and carries the request's breaker back to it, so a panic recovered
// by the middleware is charged to the tenant whose request it was.
type statusRecorder struct {
	http.ResponseWriter
	code int
	brk  *breaker
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}
