package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sslic/internal/degrade"
	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry/testutil"
	"sslic/internal/tenant"
)

// tenantPost posts one frame under an API key and drains the body.
func tenantPost(t *testing.T, client *http.Client, url, key string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "image/x-portable-pixmap")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func threeClassConfig() []tenant.Config {
	return []tenant.Config{
		{Key: "free1", Class: tenant.Free},
		{Key: "std1", Class: tenant.Standard},
		{Key: "prem1", Class: tenant.Premium},
	}
}

// TestTenantHeadersAndClassLevels pins the controller at each rung and
// checks the class bias end to end: every response names its tenant,
// class and the effective level; free sheds one global level early,
// standard sheds at Shed, premium is never ladder-shed (its ceiling is
// below Shed).
func TestTenantHeadersAndClassLevels(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DegradeInterval: -1,
		Tenants: threeClassConfig(),
	})
	client := &http.Client{Timeout: 30 * time.Second}
	body := ppmBody(t, testFrame(32, 24))
	url := ts.URL + "/v1/segment?k=8"

	post := func(key string) (*http.Response, []byte) {
		t.Helper()
		return tenantPost(t, client, url, key, body)
	}

	// Identity resolution: configured key, unknown key, no key.
	resp, _ := post("free1")
	if got := resp.Header.Get("X-Tenant"); got != "free1" {
		t.Fatalf("X-Tenant = %q, want free1", got)
	}
	if got := resp.Header.Get("X-Tenant-Class"); got != "free" {
		t.Fatalf("X-Tenant-Class = %q, want free", got)
	}
	resp, _ = post("never-configured")
	if got := resp.Header.Get("X-Tenant"); got != tenant.OtherID {
		t.Fatalf("unknown key X-Tenant = %q, want %q", got, tenant.OtherID)
	}
	resp, _ = post("")
	if got := resp.Header.Get("X-Tenant"); got != tenant.AnonID {
		t.Fatalf("keyless X-Tenant = %q, want %q", got, tenant.AnonID)
	}

	// Effective level per class at each pinned global level. -1 marks a
	// shed (503): the class's biased level reached Shed.
	cases := []struct {
		global          degrade.Level
		free, std, prem int
	}{
		{degrade.Full, 1, 0, 0},
		{degrade.HalfIters, 2, 1, 0},
		{degrade.FewerSuperpixels, -1, 3, 2},
		{degrade.Shed, -1, -1, 3},
	}
	for _, tc := range cases {
		s.Degrade().Pin(tc.global)
		for _, kc := range []struct {
			key  string
			want int
		}{{"free1", tc.free}, {"std1", tc.std}, {"prem1", tc.prem}} {
			resp, data := post(kc.key)
			lvl, err := strconv.Atoi(resp.Header.Get("X-Degradation-Level"))
			if err != nil {
				t.Fatalf("global %d %s: bad X-Degradation-Level %q", tc.global, kc.key, resp.Header.Get("X-Degradation-Level"))
			}
			if kc.want < 0 {
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("global %d %s: status %d, want 503 shed (%s)", tc.global, kc.key, resp.StatusCode, data)
				}
				if lvl != int(degrade.Shed) {
					t.Fatalf("global %d %s: shed at level %d, want %d", tc.global, kc.key, lvl, int(degrade.Shed))
				}
				if ra := resp.Header.Get("Retry-After"); ra == "" {
					t.Fatalf("global %d %s: shed response missing Retry-After", tc.global, kc.key)
				}
				continue
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("global %d %s: status %d, want 200 (%s)", tc.global, kc.key, resp.StatusCode, data)
			}
			if lvl != kc.want {
				t.Fatalf("global %d %s: effective level %d, want %d", tc.global, kc.key, lvl, kc.want)
			}
		}
	}
}

// TestTenantWarmAndDeltaIsolation is the cross-tenant state-bleed
// regression: two tenants naming the same stream ID must never share
// warm-start centers or slbl-delta bases. Before stream IDs were
// tenant-namespaced, tenant B's first frame warm-started from tenant
// A's centers and B's first delta was encoded against A's labels.
func TestTenantWarmAndDeltaIsolation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// One worker: both tenants land on the same shard, so a bare stream
	// key would collide in the worker's warm-state map.
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DegradeInterval: -1,
		Tenants: []tenant.Config{{Key: "acme"}, {Key: "beta"}},
	})
	client := &http.Client{Timeout: 30 * time.Second}
	body := ppmBody(t, testFrame(64, 48))

	// Warm-start isolation on stream "cam0".
	warmURL := ts.URL + "/v1/segment?k=24&stream=cam0"
	r1, _ := tenantPost(t, client, warmURL, "acme", body)
	if got := r1.Header.Get("X-Sslic-Warm"); got != "false" {
		t.Fatalf("acme frame 1 warm = %q, want false", got)
	}
	r2, _ := tenantPost(t, client, warmURL, "acme", body)
	if got := r2.Header.Get("X-Sslic-Warm"); got != "true" {
		t.Fatalf("acme frame 2 warm = %q, want true", got)
	}
	rb, _ := tenantPost(t, client, warmURL, "beta", body)
	if got := rb.Header.Get("X-Sslic-Warm"); got != "false" {
		t.Fatalf("beta's first cam0 frame warm = %q, want false — warm state bled across tenants", got)
	}

	// Delta-base isolation on stream "cam1".
	deltaURL := ts.URL + "/v1/segment?k=24&format=slbl-delta&stream=cam1"
	d1, _ := tenantPost(t, client, deltaURL, "acme", body)
	if got := d1.Header.Get("X-Wire-Base"); got != "empty" {
		t.Fatalf("acme delta 1 base = %q, want empty", got)
	}
	d2, _ := tenantPost(t, client, deltaURL, "acme", body)
	if got := d2.Header.Get("X-Wire-Base"); got != "prev" {
		t.Fatalf("acme delta 2 base = %q, want prev", got)
	}
	db, _ := tenantPost(t, client, deltaURL, "beta", body)
	if got := db.Header.Get("X-Wire-Base"); got != "empty" {
		t.Fatalf("beta's first cam1 delta base = %q, want empty — delta base bled across tenants", got)
	}
}

// widthPanicBackend panics on frames of one width and segments every
// other frame normally — a per-tenant poison pill.
func widthPanicBackend(poisonWidth int) func(context.Context, *imgio.Image, sslic.Params) (*sslic.Result, error) {
	return func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		if im.W == poisonWidth {
			panic("poisoned frame")
		}
		return sslic.SegmentContext(ctx, im, p)
	}
}

// TestTenantBreakerIsolation: one tenant's panics open only that
// tenant's breaker; the other tenant keeps being served through it.
func TestTenantBreakerIsolation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DegradeInterval: -1,
		Segment:          widthPanicBackend(32),
		BreakerThreshold: 2, BreakerWindow: time.Minute, BreakerCooldown: time.Minute,
		Tenants: []tenant.Config{{Key: "acme"}, {Key: "beta"}},
	})
	client := &http.Client{Timeout: 30 * time.Second}
	poison := ppmBody(t, testFrame(32, 24))
	clean := ppmBody(t, testFrame(48, 40))
	url := ts.URL + "/v1/segment?k=8"

	for i := 0; i < 2; i++ {
		resp, _ := tenantPost(t, client, url, "acme", poison)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("acme panic %d: status %d, want 503", i, resp.StatusCode)
		}
	}
	// acme's breaker is open: even a clean frame fast-fails.
	resp, data := tenantPost(t, client, url, "acme", clean)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("acme post-open status %d, want 503 (%s)", resp.StatusCode, data)
	}
	// beta sails through the same backend while acme's circuit is open.
	for i := 0; i < 3; i++ {
		resp, data := tenantPost(t, client, url, "beta", clean)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("beta request %d: status %d, want 200 (%s) — acme's breaker leaked", i, resp.StatusCode, data)
		}
	}

	// /debug/tenants agrees: acme open (1), beta closed (0).
	rec := httptest.NewRecorder()
	s.TenantsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/tenants", nil))
	var doc struct {
		Enabled bool `json:"enabled"`
		Tenants []struct {
			Key            string `json:"key"`
			BreakerState   int    `json:"breaker_state"`
			EffectiveLevel int    `json:"effective_level"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/tenants: %v", err)
	}
	if !doc.Enabled {
		t.Fatal("/debug/tenants reports tenancy disabled")
	}
	states := map[string]int{}
	for _, row := range doc.Tenants {
		states[row.Key] = row.BreakerState
	}
	if states["acme"] != breakerOpen {
		t.Fatalf("acme breaker state %d, want open (%d)", states["acme"], breakerOpen)
	}
	if states["beta"] != breakerClosed {
		t.Fatalf("beta breaker state %d, want closed (%d)", states["beta"], breakerClosed)
	}
	if _, ok := states[tenant.AnonID]; !ok {
		t.Fatalf("/debug/tenants missing reserved tenant %q", tenant.AnonID)
	}
}

// TestTenantRateLimitRetryAfter: a drained token bucket answers 429
// with a Retry-After derived from the bucket's actual refill rate.
func TestTenantRateLimitRetryAfter(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DegradeInterval: -1,
		Tenants: []tenant.Config{{Key: "metered", Rate: 0.25, Burst: 1}},
	})
	client := &http.Client{Timeout: 30 * time.Second}
	body := ppmBody(t, testFrame(32, 24))
	url := ts.URL + "/v1/segment?k=8"

	resp, data := tenantPost(t, client, url, "metered", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d, want 200 (%s)", resp.StatusCode, data)
	}
	resp, data = tenantPost(t, client, url, "metered", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained-bucket status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("rate")) {
		t.Fatalf("429 body %q does not name the rate limit", data)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("429 Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	// One token at 0.25/s refills in 4s; the hint must reflect that
	// (ceil of the true wait, capped at 30), not a hard-coded constant.
	if ra < 3 || ra > 5 {
		t.Fatalf("Retry-After = %d, want ~4s for a 0.25/s bucket", ra)
	}
}

// TestAdaptiveRetryAfter: shed responses carry a Retry-After derived
// from degrade level plus deterministic jitter — not the old hard-coded
// 1 — so synchronized clients desynchronize their retries.
func TestAdaptiveRetryAfter(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, DegradeInterval: -1})
	s.Degrade().Pin(degrade.Shed)
	client := &http.Client{Timeout: 30 * time.Second}
	body := ppmBody(t, testFrame(32, 24))

	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		resp, _ := tenantPost(t, client, ts.URL+"/v1/segment?k=8", "", body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("pinned-shed status %d, want 503", resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("shed Retry-After %q not an integer", resp.Header.Get("Retry-After"))
		}
		if ra < 1 || ra > 30 {
			t.Fatalf("Retry-After = %d outside [1, 30]", ra)
		}
		// Base 1 + level 4 + jitter {0,1,2} on an idle queue.
		if ra < 5 || ra > 7 {
			t.Fatalf("shed Retry-After = %d, want 5..7 (base+level+jitter)", ra)
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Fatalf("6 shed responses all carried Retry-After %v — jitter is not spreading retries", seen)
	}
}

// TestTenantFairnessStorm is the seeded fairness chaos test: a noisy
// free-class tenant floods the service while a premium tenant sends a
// steady trickle. With fair queuing the premium tenant rides through
// the storm (≥90% 2xx, bounded queue wait, never served above its
// class ceiling) while the noisy tenant absorbs the rejections; the
// control run with tenancy disabled shows the same storm starving the
// steady client — the difference is the fairness layer, not the load.
func TestTenantFairnessStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("overload timing test")
	}
	testutil.VerifyNoLeaks(t)

	// Service time is fixed per request so both runs see the same
	// offered-vs-service ratio.
	slow := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		select {
		case <-time.After(12 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return sslic.SegmentContext(ctx, im, p)
	}
	const (
		floodWorkers  = 10
		victimPosts   = 25
		victimFloor   = 23 // ≥90% of 25
		ctrlCeiling   = 15 // <60%: the control run must demonstrably starve
		victimWaitP99 = 2.0
	)
	body := ppmBody(t, testFrame(16, 16))

	run := func(fair bool) (victimOK int, victimLevels []int, snaps []tenant.Snapshot) {
		cfg := Config{
			Workers: 2, QueueDepth: 2, Segment: slow, DegradeInterval: -1,
		}
		if fair {
			cfg.Tenants = []tenant.Config{
				{Key: "noisy", Class: tenant.Free, Weight: 1, MaxQueue: 4},
				{Key: "victim", Class: tenant.Premium},
			}
		}
		s, ts := newTestServer(t, cfg)
		client := &http.Client{Timeout: 30 * time.Second}
		url := ts.URL + "/v1/segment?k=8"

		// The flood: closed-loop goroutines that re-post immediately,
		// with a short backoff after rejections so the control run
		// doesn't degenerate into a pure spin.
		var stop atomic.Bool
		var floodRejected atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < floodWorkers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					resp, _ := tenantPost(t, client, url, "noisy", body)
					if resp.StatusCode != http.StatusOK {
						floodRejected.Add(1)
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
		}
		// Let the flood saturate the slots before the victim starts.
		time.Sleep(50 * time.Millisecond)

		for i := 0; i < victimPosts; i++ {
			resp, _ := tenantPost(t, client, url, "victim", body)
			if resp.StatusCode == http.StatusOK {
				victimOK++
				lvl, _ := strconv.Atoi(resp.Header.Get("X-Degradation-Level"))
				victimLevels = append(victimLevels, lvl)
			}
		}
		stop.Store(true)
		wg.Wait()

		if fair {
			if floodRejected.Load() == 0 {
				t.Fatal("flood saw no rejections — storm too weak to test fairness")
			}
			snaps = s.Tenants().SnapshotAll()
		}
		return victimOK, victimLevels, snaps
	}

	fairOK, fairLevels, snaps := run(true)
	t.Logf("fair: victim %d/%d ok", fairOK, victimPosts)
	if fairOK < victimFloor {
		t.Fatalf("fair queue: victim served %d/%d, want >= %d", fairOK, victimPosts, victimFloor)
	}
	for _, lvl := range fairLevels {
		if lvl > tenant.Premium.Ceiling() {
			t.Fatalf("victim served at level %d above its class ceiling %d", lvl, tenant.Premium.Ceiling())
		}
	}
	for _, snap := range snaps {
		if snap.Key != "victim" {
			continue
		}
		if snap.QueueWaitP99 > victimWaitP99 {
			t.Fatalf("victim queue-wait p99 %.3fs exceeds %.1fs — fair queue not prioritizing premium", snap.QueueWaitP99, victimWaitP99)
		}
	}

	ctrlOK, _, _ := run(false)
	t.Logf("control: victim %d/%d ok", ctrlOK, victimPosts)
	if ctrlOK > ctrlCeiling {
		t.Fatalf("control (fairness off) served the victim %d/%d — storm too weak to show starvation", ctrlOK, victimPosts)
	}
	if ctrlOK >= fairOK {
		t.Fatalf("fairness bought nothing: %d ok with, %d ok without", fairOK, ctrlOK)
	}

	// CI artifact: the per-tenant admission state after the storm.
	if path := os.Getenv("TENANT_METRICS_OUT"); path != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snaps); err == nil {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Errorf("writing tenant metrics artifact: %v", err)
			}
		}
	}
}

// TestTenantShedOrdering: at global Shed, free-class flood traffic is
// refused by the ladder while premium traffic is still served — the
// class bias orders who sheds first.
func TestTenantShedOrdering(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DegradeInterval: -1,
		Tenants: []tenant.Config{
			{Key: "noisy", Class: tenant.Free},
			{Key: "victim", Class: tenant.Premium},
		},
	})
	s.Degrade().Pin(degrade.Shed)
	client := &http.Client{Timeout: 30 * time.Second}
	body := ppmBody(t, testFrame(32, 24))
	url := ts.URL + "/v1/segment?k=8"

	resp, _ := tenantPost(t, client, url, "noisy", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("free tenant at global shed: status %d, want 503", resp.StatusCode)
	}
	resp, _ = tenantPost(t, client, url, "victim", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("premium tenant at global shed: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Degradation-Level"); got != "3" {
		t.Fatalf("premium at global shed served at level %q, want 3 (ceiling)", got)
	}
}

// TestTenantAdmitCancelNoLeaks parks requests behind a saturated fair
// queue until their deadlines fire, then tears the server down: every
// parked waiter must unwind — no goroutine may outlive its request.
func TestTenantAdmitCancelNoLeaks(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	slow := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		select {
		case <-time.After(80 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return sslic.SegmentContext(ctx, im, p)
	}
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, Segment: slow, DegradeInterval: -1,
		Tenants: []tenant.Config{{Key: "acme"}},
	})
	client := &http.Client{Timeout: 30 * time.Second}
	body := ppmBody(t, testFrame(16, 16))
	url := ts.URL + "/v1/segment?k=8&timeout_ms=40"

	var deadlined atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := tenantPost(t, client, url, "acme", body)
			if resp.StatusCode == http.StatusGatewayTimeout {
				deadlined.Add(1)
			}
		}()
	}
	wg.Wait()
	if deadlined.Load() == 0 {
		t.Fatal("no request deadlined while parked — queue never saturated")
	}
	// Cleanup (ts.Close + s.Close) runs before VerifyNoLeaks's final
	// sweep; any waiter still parked in the fair queue shows up there.
}
