package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sslic/internal/telemetry"
)

// TestTraceEndToEnd drives a real request through the whole stack and
// replays its flight-recorder trace: the client-supplied X-Trace-Id
// must round-trip through the response header, and the stored timeline
// must cover decode → admission queue wait → every subset pass →
// encode, with exactly iters × subsets pass events.
func TestTraceEndToEnd(t *testing.T) {
	fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2, Recorder: fr})

	const (
		traceID = "e2e-trace-1"
		iters   = 3
		subsets = 2 // ratio=0.5
	)
	body := ppmBody(t, testFrame(64, 48))
	req, err := http.NewRequest("POST", ts.URL+"/v1/segment?k=24&ratio=0.5&iters=3", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id round-trip: got %q, want %q", got, traceID)
	}

	// The trace is finished by the handler before the response body is
	// closed, so it must be in the recorder now (forced retention).
	td := fr.Lookup(traceID)
	if td == nil {
		t.Fatal("client-forced trace not in the flight recorder")
	}
	if td.Status != "ok" {
		t.Fatalf("trace status %q err %q", td.Status, td.Err)
	}
	counts := map[string]int{}
	var passTrack string
	for _, ev := range td.Events {
		counts[ev.Name]++
		if ev.Name == "pass" {
			passTrack = ev.Track
			if ev.Args["arch"] != "PPA" {
				t.Fatalf("pass arch = %v", ev.Args["arch"])
			}
			if ev.Args["distance_calcs"] == nil || ev.Args["residual"] == nil {
				t.Fatalf("pass event missing attrs: %v", ev.Args)
			}
		}
	}
	if counts["pass"] != iters*subsets {
		t.Fatalf("pass events = %d, want iters×subsets = %d", counts["pass"], iters*subsets)
	}
	if passTrack != "sslic" {
		t.Fatalf("pass track = %q", passTrack)
	}
	for _, want := range []string{"decode", "queue_wait", "encode", "colorconv"} {
		if counts[want] != 1 {
			t.Fatalf("%s events = %d, want 1 (all: %v)", want, counts[want], counts)
		}
	}

	// The same timeline must come back over /debug/trace as valid Chrome
	// trace_event JSON with the same pass count.
	rec := newTraceRecorder(t, fr, traceID)
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec, &chrome); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	passes := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Name == "pass" {
			passes++
		}
	}
	if passes != iters*subsets {
		t.Fatalf("/debug/trace pass events = %d, want %d", passes, iters*subsets)
	}
}

// newTraceRecorder fetches one trace through the exported handler.
func newTraceRecorder(t *testing.T, fr *telemetry.FlightRecorder, id string) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	telemetry.TraceHandler(fr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id="+id, nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace status %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// TestTraceGeneratedID: without a client ID the server assigns one and
// echoes it; an invalid client ID is replaced, never echoed back.
func TestTraceGeneratedID(t *testing.T) {
	fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16, HeadRate: 1}, nil)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Recorder: fr})
	body := ppmBody(t, testFrame(32, 24))

	resp, err := http.Post(ts.URL+"/v1/segment?k=8&iters=1", "", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if !telemetry.ValidTraceID(id) {
		t.Fatalf("generated X-Trace-Id %q invalid", id)
	}
	if fr.Lookup(id) == nil {
		t.Fatalf("HeadRate 1 trace %q not retained", id)
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/segment?k=8&iters=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "bad id with spaces!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Trace-Id")
	if got == "bad id with spaces!" || !telemetry.ValidTraceID(got) {
		t.Fatalf("invalid client ID echoed as %q", got)
	}
}

// TestTraceRejectedRequest: rejected requests are errors, so they are
// tail-kept even without head sampling and record the rejection reason.
func TestTraceRejectedRequest(t *testing.T) {
	fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Recorder: fr})

	req, err := http.NewRequest("POST", ts.URL+"/v1/segment?k=notanumber",
		bytes.NewReader(ppmBody(t, testFrame(16, 16))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "rejected-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	td := fr.Lookup("rejected-1")
	if td == nil {
		t.Fatal("rejected request's trace missing")
	}
	if td.Status != "error" {
		t.Fatalf("status %q, want error", td.Status)
	}
	if td.Err == "" {
		t.Fatal("trace error message empty")
	}
}

// TestTraceDisabled: with no recorder the server must not set the
// header and must behave exactly as before.
func TestTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	resp, err := http.Post(ts.URL+"/v1/segment?k=8&iters=1", "",
		bytes.NewReader(ppmBody(t, testFrame(32, 24))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("X-Trace-Id %q set with tracing disabled", got)
	}
}

// TestTraceQueueWaitObservable: the pool's queue-wait interval must be
// attributed to the request's own timeline (not just the histogram), so
// a 429-adjacent latency spike is explainable per request after the
// fact.
func TestTraceQueueWaitObservable(t *testing.T) {
	fr := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Capacity: 16}, nil)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Recorder: fr})
	body := ppmBody(t, testFrame(64, 48))

	req, err := http.NewRequest("POST", ts.URL+"/v1/segment?k=24&iters=2", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "qw-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	td := fr.Lookup("qw-1")
	if td == nil {
		t.Fatal("trace missing")
	}
	var wait *time.Duration
	for _, ev := range td.Events {
		if ev.Name == "queue_wait" && ev.Track == "pool" {
			d := ev.Dur
			wait = &d
		}
	}
	if wait == nil {
		t.Fatalf("no pool queue_wait event on the timeline: %+v", td.Events)
	}
	if *wait < 0 || *wait > time.Minute {
		t.Fatalf("queue_wait duration %v implausible", *wait)
	}
}
