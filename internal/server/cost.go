package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"

	"sslic/internal/hw"
	"sslic/internal/imgio"
	"sslic/internal/pipeline"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
)

// maxCostStreams caps the per-stream cost series cardinality: registry
// series are never evicted, so an attacker (or an enthusiastic client)
// minting stream IDs must not grow /metrics without bound. Streams past
// the cap aggregate under "_other"; requests with no stream ID under
// "_anon".
const maxCostStreams = 32

// costAccountant folds finished request ledgers into the service-wide
// cost series and estimates per-frame accelerator energy through the hw
// analytic model. It also owns the cumulative counters the SLO engine
// differentiates: total/failed responses (availability) and
// frames/picojoules (energy budget).
type costAccountant struct {
	reg *telemetry.Registry
	hwm *hw.Metrics

	reqTotal  *telemetry.Counter
	reqFailed *telemetry.Counter
	frames    *telemetry.Counter
	estPJ     *telemetry.Counter

	// tenantSlice is each tenant's share of the stream label budget
	// (0: tenancy off, the global maxCostStreams cap applies). With
	// tenancy on, one tenant minting stream IDs exhausts only its own
	// slice — its streams overflow into "<tenant>/_other" while other
	// tenants keep minting from theirs.
	tenantSlice int

	mu        sync.Mutex
	streams   map[string]struct{} // stream labels already minted
	perTenant map[string]int      // labels minted per tenant
}

func newCostAccountant(reg *telemetry.Registry, tenantSlice int) *costAccountant {
	return &costAccountant{
		reg:         reg,
		hwm:         hw.NewMetrics(reg),
		tenantSlice: tenantSlice,
		perTenant:   make(map[string]int),
		reqTotal: reg.Counter("sslic_server_requests_total",
			"Segment requests answered (any status)."),
		reqFailed: reg.Counter("sslic_server_requests_failed_total",
			"Segment requests answered with a failure status (5xx or shed 429)."),
		frames: reg.Counter("sslic_server_cost_frames_total",
			"Frames with a closed cost ledger."),
		estPJ: reg.Counter("sslic_server_cost_est_pj_total",
			"Estimated accelerator energy charged to requests, picojoules."),
		streams: make(map[string]struct{}),
	}
}

// observeResponse feeds the availability counters (the SLO engine's
// Requests source). Shed 429s count as failures: from the client's
// side, the service was unavailable for that request.
func (a *costAccountant) observeResponse(code int) {
	a.reqTotal.Inc()
	if code >= 500 || code == http.StatusTooManyRequests {
		a.reqFailed.Inc()
	}
}

// requestCounts is the SLO engine's cumulative availability source.
func (a *costAccountant) requestCounts() (total, bad float64) {
	return a.reqTotal.Value(), a.reqFailed.Value()
}

// energyCounts is the SLO engine's cumulative energy source.
func (a *costAccountant) energyCounts() (frames, pj float64) {
	return a.frames.Value(), a.estPJ.Value()
}

// chargeEnergy runs the hw analytic model for the request's actual
// workload shape — resolution, superpixel count, subsample ratio, and
// the subset passes the run really executed — and charges the estimate
// to the ledger, the energy accumulator (per-component, via hw.Metrics)
// and the frame's trace. Model failure (a workload outside the model's
// domain) skips the charge rather than failing the request.
func (a *costAccountant) chargeEnergy(cost *telemetry.Cost, im *imgio.Image,
	params sslic.Params, res *pipeline.JobResult, tr *telemetry.Trace) {
	hwCfg := hw.DefaultConfig()
	hwCfg.Width, hwCfg.Height, hwCfg.K = im.W, im.H, params.K
	hwCfg.SubsampleRatio = params.SubsampleRatio
	hwCfg.Passes = res.Result.Stats.SubsetPasses
	if hwCfg.Passes <= 0 { // warm-started frame that converged instantly
		hwCfg.Passes = 1
	}
	report, err := hw.Simulate(hwCfg)
	if err != nil {
		return
	}
	a.hwm.ObserveReportCtx(telemetry.WithTrace(context.Background(), tr), report)
	cost.AddEnergyPJ(report.EnergyPerFrame * 1e12)
}

// finish closes a successful request's ledger: service-wide totals,
// capped per-stream series, and a "cost" instant on the trace so the
// ledger is readable from /debug/trace?id= next to the timeline it
// prices.
func (a *costAccountant) finish(cost *telemetry.Cost, tenant, stream string, tr *telemetry.Trace) telemetry.CostSnapshot {
	snap := cost.Snapshot()
	a.frames.Inc()
	a.estPJ.Add(snap.EstPJ)

	lbl := telemetry.Label{Name: "stream", Value: a.streamLabel(tenant, stream)}
	a.reg.Counter("sslic_server_stream_cost_cpu_seconds_total",
		"CPU time charged to requests, by stream.", lbl).Add(float64(snap.CPUNs) / 1e9)
	a.reg.Counter("sslic_server_stream_cost_alloc_bytes_total",
		"Buffer bytes charged to requests, by stream.", lbl).Add(float64(snap.AllocBytes))
	a.reg.Counter("sslic_server_stream_cost_est_pj_total",
		"Estimated accelerator energy charged to requests, by stream.", lbl).Add(snap.EstPJ)
	a.reg.Counter("sslic_server_stream_cost_frames_total",
		"Frames with a closed cost ledger, by stream.", lbl).Inc()

	tr.Instant("cost", "server", map[string]any{
		"cpu_ns":        snap.CPUNs,
		"alloc_bytes":   snap.AllocBytes,
		"queue_wait_ns": snap.QueueWaitNs,
		"decode_ns":     snap.DecodeNs,
		"segment_ns":    snap.SegmentNs,
		"encode_ns":     snap.EncodeNs,
		"est_pj":        snap.EstPJ,
	})
	return snap
}

// streamLabel maps a request's (tenant, stream) onto a bounded label
// set. Single-tenant mode keeps the original rule: named streams mint
// up to maxCostStreams labels, then aggregate under "_other". With a
// tenant, labels are "<tenant>/<stream>" drawn from the tenant's own
// slice of the budget, overflowing into "<tenant>/_other" — so one
// tenant's ID churn can never consume another tenant's labels.
func (a *costAccountant) streamLabel(tenant, stream string) string {
	if tenant == "" {
		if stream == "" {
			return "_anon"
		}
		a.mu.Lock()
		defer a.mu.Unlock()
		if _, ok := a.streams[stream]; ok {
			return stream
		}
		if len(a.streams) >= maxCostStreams {
			return "_other"
		}
		a.streams[stream] = struct{}{}
		return stream
	}
	if stream == "" {
		return tenant + "/_anon"
	}
	key := tenant + "/" + stream
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.streams[key]; ok {
		return key
	}
	if a.perTenant[tenant] >= a.tenantSlice {
		return tenant + "/_other"
	}
	a.perTenant[tenant]++
	a.streams[key] = struct{}{}
	return key
}

// stampCostHeaders writes the ledger's computable fields as X-Cost-*
// response headers. Zero fields are omitted — an early-rejected request
// has no segmentation cost to report, but whatever it did cost (decode
// time, queue wait) still reaches the client.
func stampCostHeaders(h http.Header, snap telemetry.CostSnapshot) {
	set := func(name string, v int64) {
		if v > 0 {
			h.Set(name, strconv.FormatInt(v, 10))
		}
	}
	set("X-Cost-Cpu-Ns", snap.CPUNs)
	set("X-Cost-Alloc-Bytes", snap.AllocBytes)
	set("X-Cost-Queue-Ns", snap.QueueWaitNs)
	set("X-Cost-Decode-Ns", snap.DecodeNs)
	if snap.EstPJ > 0 {
		h.Set("X-Cost-Est-Pj", strconv.FormatFloat(snap.EstPJ, 'f', 0, 64))
	}
}
