package server

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
	"sslic/internal/telemetry/testutil"
)

// toggleBackend panics until set(true), then segments normally.
type toggleBackend struct {
	mu sync.Mutex
	ok bool
}

func (b *toggleBackend) set(ok bool) {
	b.mu.Lock()
	b.ok = ok
	b.mu.Unlock()
}

func (b *toggleBackend) segment(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
	b.mu.Lock()
	ok := b.ok
	b.mu.Unlock()
	if !ok {
		panic("poisoned model")
	}
	return sslic.SegmentContext(ctx, im, p)
}

// TestBreakerProbeSlotReleases drives the probe lifecycle against a
// fake clock: a half-open probe that ends without a success or a panic
// must release the probe slot (so the next request probes), and a
// stale release must never free a newer probe's slot.
func TestBreakerProbeSlotReleases(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := newBreaker(1, 10*time.Second, time.Second, telemetry.NewRegistry(), clock)

	b.recordPanic() // threshold 1: opens immediately
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	now = now.Add(2 * time.Second)
	ok, probe1 := b.allow()
	if !ok || probe1 == nil {
		t.Fatal("cooldown elapsed: want the request admitted as the probe")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// The probe ends inconclusively (a 400, a 429, a client cancel…):
	// the slot must free so the next request becomes a fresh probe.
	probe1()
	ok, probe2 := b.allow()
	if !ok || probe2 == nil {
		t.Fatal("released probe slot: want a fresh probe admitted")
	}

	// A duplicate release of the finished probe is stale — it must not
	// free the slot now held by probe2.
	probe1()
	if ok, _ := b.allow(); ok {
		t.Fatal("stale release freed the live probe's slot")
	}

	b.recordSuccess() // probe2 succeeds: circuit closes
	if b.state != breakerClosed {
		t.Fatalf("state after successful probe = %d, want closed", b.state)
	}
	probe2() // stale release after close must not disturb the state
	if b.state != breakerClosed || b.probing {
		t.Fatal("stale release corrupted the closed breaker")
	}
	if ok, probe := b.allow(); !ok || probe != nil {
		t.Fatal("closed breaker should admit without a probe")
	}
}

// TestBreakerRecoversAfterInconclusiveProbe is the HTTP-level
// regression for the probe wedge: open the circuit with panics, let the
// cooldown probe be a request that fails before reaching the backend
// (garbage body, 400), and check the endpoint still recovers — before
// the fix the 400 probe held the slot forever and every later request
// fast-failed 503.
func TestBreakerRecoversAfterInconclusiveProbe(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	healthy := &toggleBackend{}
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, Segment: healthy.segment, DegradeInterval: -1,
		BreakerThreshold: 3, BreakerWindow: 10 * time.Second, BreakerCooldown: 50 * time.Millisecond,
	})

	body := ppmBody(t, testFrame(16, 16))
	for i := 0; i < 3; i++ {
		resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("panic %d status %d, want 503", i, resp.StatusCode)
		}
	}
	// Open: fast-fail 503s, which still carry the degradation header.
	resp, _ := segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Degradation-Level"); got != "0" {
		t.Fatalf("breaker fast-fail X-Degradation-Level = %q, want 0", got)
	}

	healthy.set(true)
	time.Sleep(100 * time.Millisecond) // past the cooldown

	// The probe request dies at decode with a 400 — an outcome that is
	// neither a segmentation success nor a panic.
	resp, _ = segmentOnce(t, ts.URL+"/v1/segment?k=8", []byte("not an image"))
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("garbage probe status %d, want 400 (or 503 if it raced the cooldown)", resp.StatusCode)
	}

	// The slot must have been released: a good request becomes the next
	// probe, succeeds, and closes the circuit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = segmentOnce(t, ts.URL+"/v1/segment?k=8", body)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered after inconclusive probe; last status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
