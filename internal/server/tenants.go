package server

import (
	"encoding/json"
	"net/http"
	"time"

	"sslic/internal/tenant"
)

// tenantsDoc is the /debug/tenants introspection document: one row per
// tenant with its quotas, live admission state, breaker state and the
// degrade level its class would be offered right now.
type tenantsDoc struct {
	Enabled bool `json:"enabled"`
	// GlobalLevel is the controller's current degradation level;
	// each tenant row carries the class-biased level derived from it.
	GlobalLevel int             `json:"global_level"`
	GeneratedAt time.Time       `json:"generated_at"`
	Tenants     []tenantsRowDoc `json:"tenants,omitempty"`
}

type tenantsRowDoc struct {
	tenant.Snapshot
	// EffectiveLevel is the degrade level this tenant's class maps the
	// current global level onto.
	EffectiveLevel int `json:"effective_level"`
	// BreakerState is the tenant's panic breaker (0 closed, 1 open,
	// 2 half-open); -1 when breakers are disabled.
	BreakerState int `json:"breaker_state"`
}

// Tenants returns the tenant registry, nil in single-tenant mode —
// the chaos suite's window into per-tenant admission state.
func (s *Server) Tenants() *tenant.Registry { return s.tenants }

// TenantsHandler serves the per-tenant health document. Mount it at
// /debug/tenants on a telemetry server, beside /debug/streams.
func (s *Server) TenantsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc := tenantsDoc{
			Enabled:     s.tenants != nil,
			GlobalLevel: int(s.degrade.Level()),
			GeneratedAt: time.Now().UTC(),
		}
		if s.tenants != nil {
			for _, snap := range s.tenants.SnapshotAll() {
				tn := s.tenants.Resolve(snap.Key)
				row := tenantsRowDoc{
					Snapshot:       snap,
					EffectiveLevel: tn.EffectiveLevel(doc.GlobalLevel),
					BreakerState:   -1,
				}
				if b := s.brks[snap.Key]; b != nil {
					b.mu.Lock()
					row.BreakerState = b.state
					b.mu.Unlock()
				}
				doc.Tenants = append(doc.Tenants, row)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}
