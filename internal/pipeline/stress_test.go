package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sslic/internal/imgio"
	"sslic/internal/sslic"
)

// TestStress hammers the pipeline with many small frames across every
// worker count up to NumCPU, cancelling at randomized points, to flush
// out ordering bugs, leaked goroutines and data races. It is designed to
// run under `go test -race`; `-short` skips it.
func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		w, h   = 48, 32
		frames = 40
	)
	// Synthetic render: a gradient that shifts with t, cheap enough that
	// the channels, not the work, dominate.
	render := func(ft int, img *imgio.Image, gt *imgio.LabelMap) error {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.Set(x, y, uint8(x*4+ft), uint8(y*8), uint8((x+y)*2))
				gt.Set(x, y, int32((x/8)+(y/8)*6))
			}
		}
		return nil
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	if maxWorkers > 8 {
		maxWorkers = 8
	}
	rng := rand.New(rand.NewSource(42))
	for workers := 1; workers <= maxWorkers; workers++ {
		for _, warm := range []bool{false, true} {
			for trial := 0; trial < 3; trial++ {
				// Cancel somewhere between "immediately" and "after the run
				// would have finished anyway".
				cancelAfter := time.Duration(rng.Intn(30)) * time.Millisecond
				name := fmt.Sprintf("workers=%d/warm=%v/trial=%d", workers, warm, trial)
				ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
				last := -1
				var pl *Pipeline
				pl, err := New(Config{
					Width: w, Height: h, Frames: frames,
					Workers: workers, QueueDepth: 1 + rng.Intn(4),
					Params: sslic.DefaultParams(8, 0.5),
					Warm:   warm, WarmIters: 2,
				}, render, func(r *Result) error {
					if r.Index <= last {
						return fmt.Errorf("out of order: %d after %d", r.Index, last)
					}
					if r.Index != last+1 {
						return fmt.Errorf("gap: %d after %d", r.Index, last)
					}
					last = r.Index
					pl.Recycle(r)
					return nil
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				done := make(chan error, 1)
				go func() { done <- pl.Run(ctx) }()
				select {
				case err := <-done:
					if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						t.Fatalf("%s: %v", name, err)
					}
				case <-time.After(30 * time.Second):
					t.Fatalf("%s: pipeline did not drain within 30s (deadlock?)", name)
				}
				cancel()
				st := pl.Stats()
				if st.Delivered != int64(last+1) {
					t.Fatalf("%s: delivered %d but last index %d", name, st.Delivered, last)
				}
				if st.Delivered+st.Dropped > int64(st.Source.FramesOut) {
					t.Fatalf("%s: delivered %d + dropped %d > sourced %d",
						name, st.Delivered, st.Dropped, st.Source.FramesOut)
				}
			}
		}
	}
}
