package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry/testutil"
)

func poolTestImage(w, h int) *imgio.Image {
	im := imgio.NewImage(w, h)
	for i := range im.C0 {
		im.C0[i] = uint8(i * 5)
		im.C1[i] = uint8(i * 11)
		im.C2[i] = uint8(i)
	}
	return im
}

// TestPoolMatchesDirectSegment: a cold Submit must return byte-identical
// labels to calling sslic.Segment directly with the same params.
func TestPoolMatchesDirectSegment(t *testing.T) {
	im := poolTestImage(48, 32)
	params := sslic.DefaultParams(12, 0.5)

	pool := NewPool(PoolConfig{Workers: 2, QueueDepth: 2})
	defer pool.Close()

	res, err := pool.Submit(context.Background(), Job{Image: im, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sslic.Segment(im, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm {
		t.Fatal("first job of a stream reported warm")
	}
	for i := range want.Labels.Labels {
		if res.Result.Labels.Labels[i] != want.Labels.Labels[i] {
			t.Fatalf("label %d differs from direct Segment", i)
		}
	}
}

// TestPoolWarmSticky: the second frame of a stream must warm-start from
// the first frame's centers and reproduce a manual warm-started run.
func TestPoolWarmSticky(t *testing.T) {
	im1 := poolTestImage(48, 32)
	im2 := poolTestImage(48, 32)
	for i := range im2.C0 { // shift the scene a little
		im2.C0[i] += 7
	}
	params := sslic.DefaultParams(12, 0.5)
	const warmIters = 2

	pool := NewPool(PoolConfig{Workers: 3, QueueDepth: 2, WarmIters: warmIters})
	defer pool.Close()

	r1, err := pool.Submit(context.Background(), Job{Image: im1, Params: params, StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pool.Submit(context.Background(), Job{Image: im2, Params: params, StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Warm || !r2.Warm {
		t.Fatalf("warm flags = %v, %v; want false, true", r1.Warm, r2.Warm)
	}

	// Reproduce by hand: frame 2 seeded with frame 1's centers.
	cold, err := sslic.Segment(im1, params)
	if err != nil {
		t.Fatal(err)
	}
	wp := params
	wp.InitialCenters = cold.Centers
	wp.FullIters = warmIters
	want, err := sslic.Segment(im2, wp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels.Labels {
		if r2.Result.Labels.Labels[i] != want.Labels.Labels[i] {
			t.Fatalf("warm label %d differs from manual warm chain", i)
		}
	}

	// A dimension change must fall back to cold, not error.
	r3, err := pool.Submit(context.Background(), Job{Image: poolTestImage(24, 16), Params: params, StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Warm {
		t.Fatal("geometry change reused stale centers")
	}
}

// blockingSegment is a SegmentFunc that parks until released, counting
// how many jobs entered.
type blockingSegment struct {
	entered atomic.Int64
	release chan struct{}
}

func (b *blockingSegment) fn(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
	b.entered.Add(1)
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return sslic.SegmentContext(ctx, im, p)
}

// TestPoolAdmissionControl: with every worker parked and every queue
// slot full, the next Submit must fail fast with ErrSaturated — and the
// parked work must still complete once released.
func TestPoolAdmissionControl(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const workers, depth = 2, 1
	blk := &blockingSegment{release: make(chan struct{})}
	pool := NewPool(PoolConfig{Workers: workers, QueueDepth: depth, Segment: blk.fn})
	defer pool.Close()

	im := poolTestImage(16, 16)
	params := sslic.DefaultParams(4, 0.5)

	var wg sync.WaitGroup
	results := make(chan error, workers*(depth+1))
	// Stream-less jobs spread round-robin, so submitting one at a time
	// (waiting for each to be absorbed) fills every shard to exactly
	// 1 running + depth queued.
	submitted := 0
	for submitted < workers*(depth+1) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := pool.Submit(context.Background(), Job{Image: im, Params: params})
			results <- err
		}()
		submitted++
		// Wait until the job is either running or queued before the next
		// submission, so round-robin fills every slot deterministically.
		deadline := time.Now().Add(5 * time.Second)
		for int(blk.entered.Load())+pool.Queued() < submitted {
			if time.Now().After(deadline) {
				t.Fatal("pool never absorbed submission")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Every slot is occupied: the next submission must be rejected.
	if _, err := pool.Submit(context.Background(), Job{Image: im, Params: params}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated Submit returned %v, want ErrSaturated", err)
	}

	close(blk.release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("admitted job failed: %v", err)
		}
	}
}

// TestPoolSubmitCanceled: a context canceled while the job is queued
// must release the caller with the context error, and never run it.
func TestPoolSubmitCanceled(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	blk := &blockingSegment{release: make(chan struct{})}
	pool := NewPool(PoolConfig{Workers: 1, QueueDepth: 4, Segment: blk.fn})
	defer pool.Close()

	im := poolTestImage(16, 16)
	params := sslic.DefaultParams(4, 0.5)

	// Park the single worker.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool.Submit(context.Background(), Job{Image: im, Params: params})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for blk.entered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue a job, then cancel it before the worker can reach it.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pool.Submit(ctx, Job{Image: im, Params: params})
		done <- err
	}()
	for pool.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Submit returned %v", err)
	}

	entered := blk.entered.Load()
	close(blk.release)
	wg.Wait()
	if entered != 1 {
		t.Fatalf("canceled job entered the backend (%d entries)", entered)
	}
}

// TestPoolCloseDrains: Close must let admitted jobs finish, reject new
// ones, and never deadlock — even called concurrently with submitters.
func TestPoolCloseDrains(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	pool := NewPool(PoolConfig{Workers: 2, QueueDepth: 4})
	im := poolTestImage(32, 24)
	params := sslic.DefaultParams(6, 0.5)

	const clients = 8
	var ok, rejected, closedErr atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := pool.Submit(context.Background(), Job{Image: im, Params: params, StreamID: fmt.Sprintf("s%d", c)})
				switch {
				case err == nil && res != nil:
					ok.Add(1)
				case errors.Is(err, ErrSaturated):
					rejected.Add(1)
				case errors.Is(err, ErrPoolClosed):
					closedErr.Add(1)
				default:
					t.Errorf("unexpected submit outcome: %v, %v", res, err)
				}
			}
		}(c)
	}
	time.Sleep(time.Duration(rand.Intn(10)) * time.Millisecond)

	done := make(chan struct{})
	go func() { pool.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain within 30s (deadlock?)")
	}
	wg.Wait()

	if _, err := pool.Submit(context.Background(), Job{Image: im, Params: params}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-Close Submit returned %v, want ErrPoolClosed", err)
	}
	if ok.Load() == 0 && rejected.Load() == 0 && closedErr.Load() == 0 {
		t.Fatal("no submissions observed")
	}
	t.Logf("ok=%d saturated=%d closed=%d", ok.Load(), rejected.Load(), closedErr.Load())
}
