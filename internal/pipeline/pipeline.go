// Package pipeline runs the inter-frame concurrency layer of the video
// path: a multi-stage source → segment → sink pipeline that overlaps
// frame rendering, S-SLIC segmentation and result consumption the way
// the accelerator overlaps its DMA and compute phases. The intra-frame
// parallelism of sslic.Params.Workers scales one frame across cores;
// this package scales the *stream*, which is what a real-time claim is
// about (gSLICr frames-per-second framing rather than seconds-per-image).
//
// Design:
//
//   - Stages are connected by bounded channels, so a slow sink
//     backpressures segmentation and a slow segmenter backpressures the
//     source. Nothing buffers unboundedly.
//   - A configurable worker pool runs the segment stage. Cold mode fans
//     frames out to any idle worker; warm mode shards the stream — frame
//     f belongs to shard f mod Workers and stays on that shard's sticky
//     worker, so each warm-start chain (frame f seeded with the centers
//     of frame f−Workers) is deterministic.
//   - Delivery order is restored by a reorder buffer keyed by frame
//     index before the sink runs, so temporal metrics (label consistency
//     between consecutive frames) and golden comparisons against the
//     sequential loop remain valid.
//   - Frame and label buffers cycle through sync.Pools; the steady-state
//     hot loop allocates no image-sized buffers. The sink calls Recycle
//     when it is done with a Result.
//   - Cancellation via context.Context drains gracefully: in-flight
//     frames finish or are recycled, every goroutine exits, and Run
//     returns the first error (or the context error).
//
// Per-stage counters (frames in/out, bounded-queue high-water mark,
// latency min/mean/max) are available from Stats at any time. They are
// backed by an internal/telemetry registry — pass one in Config.Registry
// to expose the same series live on a /metrics endpoint; Stats is a thin
// view over those series.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/slic"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
)

// RenderFunc fills caller-owned buffers with frame t of a stream. It is
// called from the single source goroutine, in frame order.
// (*video.Stream).FrameInto satisfies this signature.
type RenderFunc func(t int, img *imgio.Image, gt *imgio.LabelMap) error

// SinkFunc consumes results strictly in frame order, one call at a time.
// Returning an error cancels the pipeline. The sink owns the Result's
// buffers until it passes them to Pipeline.Recycle; holding a Result
// across calls (e.g. for temporal-consistency scoring against the
// previous frame) is fine.
type SinkFunc func(r *Result) error

// Config sizes the pipeline.
type Config struct {
	// Width, Height are the frame dimensions (they size the buffer pools).
	Width, Height int
	// Frames is the number of frames to pull from the source.
	Frames int
	// Workers is the segment-stage pool size; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds each inter-stage channel; <= 0 selects
	// 2 × Workers.
	QueueDepth int
	// Params is the base segmentation configuration for cold frames.
	Params sslic.Params
	// Warm enables warm-start chains: frame f seeds its centers from
	// frame f−Workers on the same sticky worker. The first frame of each
	// shard runs cold. With Workers = 1 this reproduces the sequential
	// warm loop exactly.
	Warm bool
	// WarmIters is FullIters for warm-started frames; <= 0 selects 3.
	WarmIters int
	// Registry receives the pipeline's metrics: per-stage frame counters,
	// service-time histograms (span families with in-flight gauges),
	// queue high-water gauges, and delivered/dropped counters. nil
	// selects a private registry so Stats always works; pass a shared
	// registry to expose the series on a /metrics endpoint. Sharing one
	// registry across concurrently running pipelines aggregates their
	// counters, so per-pipeline Stats are only meaningful with a
	// dedicated registry.
	Registry *telemetry.Registry
	// Recorder, when set, gives every frame its own flight-recorder
	// trace (ID "<run>-frame<index>"): render, queue waits, the segment
	// stage with its per-subset-pass events, and in-order delivery all
	// land on one timeline, fetchable from /debug/trace. The recorder's
	// sampling decides which frames are kept; nil disables per-frame
	// tracing entirely.
	Recorder *telemetry.FlightRecorder
	// Logger, when set, emits per-frame span trace events (stage
	// start/end with the frame index) at debug level.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.WarmIters <= 0 {
		c.WarmIters = 3
	}
	return c
}

// Result is one segmented frame, delivered to the sink in frame order.
type Result struct {
	Index   int
	Image   *imgio.Image
	GT      *imgio.LabelMap
	Labels  *imgio.LabelMap
	Centers []slic.Center
	// Warm reports whether the frame was warm-started.
	Warm bool
	// SegLatency is the segment-stage service time for this frame.
	SegLatency time.Duration
	// Trace is the frame's flight-recorder trace (nil without a
	// Config.Recorder). The sink may append events to it — e.g. the
	// hardware model's charging ticks via telemetry.WithTrace — and the
	// pipeline finishes it after the sink returns.
	Trace *telemetry.Trace

	enqueuedAt time.Time // when the result entered the sink queue
}

// task is a rendered frame travelling source → segment.
type task struct {
	index    int
	img      *imgio.Image
	gt       *imgio.LabelMap
	trace    *telemetry.Trace
	enqueued time.Time
}

// Pipeline is a single-use frame pipeline: construct with New, drive
// with Run, inspect with Stats.
type Pipeline struct {
	cfg    Config
	render RenderFunc
	sink   SinkFunc
	runID  string // prefix of per-frame trace IDs

	imgPool sync.Pool
	lblPool sync.Pool

	registry *telemetry.Registry
	srcStats *stageMetrics
	segStats *stageMetrics
	snkStats *stageMetrics

	reorderHW *telemetry.Gauge
	delivered *telemetry.Counter
	dropped   *telemetry.Counter

	errOnce  sync.Once
	firstErr error
	cancel   context.CancelFunc
}

// New validates the configuration and builds a pipeline.
func New(cfg Config, render RenderFunc, sink SinkFunc) (*Pipeline, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("pipeline: invalid frame size %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Frames < 0 {
		return nil, fmt.Errorf("pipeline: negative frame count %d", cfg.Frames)
	}
	if render == nil || sink == nil {
		return nil, fmt.Errorf("pipeline: nil render or sink func")
	}
	cfg = cfg.withDefaults()
	p := &Pipeline{cfg: cfg, render: render, sink: sink, runID: telemetry.NewTraceID()}
	w, h := cfg.Width, cfg.Height
	p.imgPool.New = func() any { return imgio.NewImage(w, h) }
	p.lblPool.New = func() any { return imgio.NewLabelMap(w, h) }

	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	p.registry = reg
	p.srcStats = newStageMetrics(reg, cfg.Logger, "source")
	p.segStats = newStageMetrics(reg, cfg.Logger, "segment")
	p.snkStats = newStageMetrics(reg, cfg.Logger, "sink")
	p.reorderHW = reg.Gauge("sslic_pipeline_reorder_high_water",
		"Most out-of-order results ever held awaiting in-order delivery.")
	p.delivered = reg.Counter("sslic_pipeline_frames_delivered_total",
		"Results the sink accepted.")
	p.dropped = reg.Counter("sslic_pipeline_frames_dropped_total",
		"Frames recycled during a cancellation drain.")
	return p, nil
}

// Registry returns the registry carrying the pipeline's metrics — the
// one from Config, or the private registry created when none was given.
func (p *Pipeline) Registry() *telemetry.Registry { return p.registry }

// Recycle returns a Result's buffers to the pipeline's pools. The Result
// and its buffers must not be used afterwards. Never recycling is safe —
// the pools just miss and allocate.
func (p *Pipeline) Recycle(r *Result) {
	if r == nil {
		return
	}
	if r.Image != nil {
		p.imgPool.Put(r.Image)
		r.Image = nil
	}
	if r.GT != nil {
		p.lblPool.Put(r.GT)
		r.GT = nil
	}
	if r.Labels != nil {
		p.lblPool.Put(r.Labels)
		r.Labels = nil
	}
	r.Centers = nil
}

func (p *Pipeline) recycleTask(tk *task) {
	p.imgPool.Put(tk.img)
	p.lblPool.Put(tk.gt)
}

// fail records the first error and cancels the run.
func (p *Pipeline) fail(err error) {
	p.errOnce.Do(func() {
		p.firstErr = err
		p.cancel()
	})
}

// Run executes the pipeline until all frames are delivered, the context
// is cancelled, or a stage fails. It blocks; the sink runs on the
// calling goroutine. Run must be called at most once.
func (p *Pipeline) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	p.cancel = cancel

	cfg := p.cfg
	// Cold mode shares one queue across the pool; warm mode gives every
	// shard its own queue so sticky workers preserve chain order.
	var queues []chan *task
	if cfg.Warm {
		queues = make([]chan *task, cfg.Workers)
		for i := range queues {
			queues[i] = make(chan *task, cfg.QueueDepth)
		}
	} else {
		queues = []chan *task{make(chan *task, cfg.QueueDepth)}
	}
	results := make(chan *Result, cfg.QueueDepth)

	// Source stage: render frames in order into pooled buffers.
	go func() {
		defer func() {
			for _, q := range queues {
				close(q)
			}
		}()
		for t := 0; t < cfg.Frames; t++ {
			if ctx.Err() != nil {
				return
			}
			img := p.imgPool.Get().(*imgio.Image)
			gt := p.lblPool.Get().(*imgio.LabelMap)
			// Each frame gets its own trace; the recorder's sampling decides
			// retention. The nil-recorder guard keeps the untraced hot path
			// free of the ID formatting allocation.
			var tr *telemetry.Trace
			if p.cfg.Recorder != nil {
				tr = p.cfg.Recorder.StartTrace(fmt.Sprintf("%s-frame%05d", p.runID, t), false)
			}
			tctx := telemetry.WithTrace(ctx, tr)
			p.srcStats.arrive(0)
			sp := p.srcStats.beginCtx(tctx, "frame", t)
			err := faults.Fire(faults.PointPipelineSource)
			if err == nil {
				err = p.render(t, img, gt)
			}
			if err != nil {
				sp.Abort()
				tr.SetError(err)
				tr.Finish()
				p.imgPool.Put(img)
				p.lblPool.Put(gt)
				p.fail(fmt.Errorf("pipeline: source frame %d: %w", t, err))
				return
			}
			sp.End()
			q := queues[0]
			if cfg.Warm {
				q = queues[t%cfg.Workers]
			}
			select {
			case q <- &task{index: t, img: img, gt: gt, trace: tr, enqueued: time.Now()}:
				p.srcStats.sent(len(q))
			case <-ctx.Done():
				tr.Finish()
				p.imgPool.Put(img)
				p.lblPool.Put(gt)
				return
			}
		}
	}()

	// Segment stage: the worker pool.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		in := queues[0]
		if cfg.Warm {
			in = queues[w]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// prevCenters is the warm-start chain state of this worker's
			// shard; only ever touched by this goroutine.
			var prevCenters []slic.Center
			for tk := range in {
				p.segStats.waited(tk.trace, tk.enqueued)
				if ctx.Err() != nil {
					// Drain mode: the run is over, return buffers and move on.
					tk.trace.Finish()
					p.recycleTask(tk)
					p.dropped.Inc()
					continue
				}
				p.segStats.arrive(0)
				params := cfg.Params
				warm := false
				if cfg.Warm && prevCenters != nil {
					params.InitialCenters = prevCenters
					params.FullIters = cfg.WarmIters
					warm = true
				}
				params.LabelBuf = p.lblPool.Get().(*imgio.LabelMap)
				tctx := telemetry.WithTrace(ctx, tk.trace)
				sp := p.segStats.beginCtx(tctx, "frame", tk.index, "warm", warm)
				var r *sslic.Result
				err := faults.Fire(faults.PointPipelineSegment)
				if err == nil {
					r, err = sslic.SegmentContext(tctx, tk.img, params)
				}
				if err != nil {
					sp.Abort()
					tk.trace.SetError(err)
					tk.trace.Finish()
					p.lblPool.Put(params.LabelBuf)
					p.recycleTask(tk)
					// A frame aborted by the run's cancellation is a drain
					// drop, not a pipeline failure; Run reports ctx.Err().
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						p.dropped.Inc()
						continue
					}
					p.fail(fmt.Errorf("pipeline: segment frame %d: %w", tk.index, err))
					continue
				}
				lat := sp.End()
				if cfg.Warm {
					prevCenters = r.Centers
				}
				res := &Result{
					Index:      tk.index,
					Image:      tk.img,
					GT:         tk.gt,
					Labels:     r.Labels,
					Centers:    r.Centers,
					Warm:       warm,
					SegLatency: lat,
					Trace:      tk.trace,
					enqueuedAt: time.Now(),
				}
				select {
				case results <- res:
					p.segStats.sent(len(results))
				case <-ctx.Done():
					res.Trace.Finish()
					p.Recycle(res)
					p.dropped.Inc()
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Sink stage: reorder by frame index, then deliver in order.
	pending := make(map[int]*Result)
	next := 0
	for res := range results {
		p.snkStats.waited(res.Trace, res.enqueuedAt)
		p.snkStats.arrive(len(results))
		pending[res.Index] = res
		p.reorderHW.SetMax(float64(len(pending)))
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if ctx.Err() != nil {
				r.Trace.Finish()
				p.Recycle(r)
				p.dropped.Inc()
				continue
			}
			sp := p.snkStats.beginCtx(telemetry.WithTrace(ctx, r.Trace), "frame", r.Index)
			tr := r.Trace // the sink may recycle r; finish the trace after
			err := faults.Fire(faults.PointPipelineSink)
			if err == nil {
				err = p.sink(r)
			}
			if err != nil {
				sp.Abort()
				tr.SetError(err)
				tr.Finish()
				p.fail(fmt.Errorf("pipeline: sink frame %d: %w", r.Index, err))
				continue
			}
			sp.End()
			tr.Finish()
			p.snkStats.sent(0)
			p.delivered.Inc()
		}
	}
	// Out-of-order leftovers only exist after cancellation.
	for _, r := range pending {
		r.Trace.Finish()
		p.Recycle(r)
		p.dropped.Inc()
	}

	if p.firstErr != nil {
		return p.firstErr
	}
	return ctx.Err()
}
