package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
	"sslic/internal/slic"
	"sslic/internal/sslic"
	"sslic/internal/telemetry/testutil"
	"sslic/internal/video"
)

// testStream builds a small deterministic stream shared by the tests.
func testStream(t testing.TB) *video.Stream {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 96, 64
	cfg.Regions = 8
	s, err := video.NewStream(cfg, 7, video.Pan, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testParams() sslic.Params { return sslic.DefaultParams(24, 0.5) }

// sequentialLabels reproduces the cmd/sslic-video frame loop: segment
// each frame in order, optionally warm-starting from the previous
// frame's centers, and collect the label maps.
func sequentialLabels(t *testing.T, s *video.Stream, frames int, warm bool, warmIters int) []*imgio.LabelMap {
	t.Helper()
	var out []*imgio.LabelMap
	var prev []slic.Center
	for f := 0; f < frames; f++ {
		img, _, err := s.Frame(f)
		if err != nil {
			t.Fatal(err)
		}
		p := testParams()
		if warm && prev != nil {
			p.InitialCenters = prev
			p.FullIters = warmIters
		}
		r, err := sslic.Segment(img, p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r.Labels)
		prev = r.Centers
	}
	return out
}

// runPipeline drives a pipeline over the stream and returns the label
// maps in delivery order (cloned, since the pipeline recycles buffers).
func runPipeline(t *testing.T, s *video.Stream, cfg Config) []*imgio.LabelMap {
	t.Helper()
	w, h := s.Size()
	cfg.Width, cfg.Height = w, h
	var got []*imgio.LabelMap
	var pl *Pipeline
	sink := func(r *Result) error {
		got = append(got, r.Labels.Clone())
		pl.Recycle(r)
		return nil
	}
	pl, err := New(cfg, s.FrameInto, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return got
}

func labelsEqual(a, b *imgio.LabelMap) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return true
}

// TestColdMatchesSequential is the golden parity contract: in cold mode
// every frame is independent, so any worker count must deliver labels
// byte-identical to the sequential frame loop, in frame order.
func TestColdMatchesSequential(t *testing.T) {
	s := testStream(t)
	const frames = 6
	want := sequentialLabels(t, s, frames, false, 0)
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		got := runPipeline(t, s, Config{Frames: frames, Workers: workers, Params: testParams()})
		if len(got) != frames {
			t.Fatalf("workers=%d: delivered %d frames, want %d", workers, len(got), frames)
		}
		for f := range want {
			if !labelsEqual(want[f], got[f]) {
				t.Fatalf("workers=%d: frame %d labels differ from sequential loop", workers, f)
			}
		}
	}
}

// TestWarmSingleWorkerMatchesSequential: one warm shard is exactly the
// sequential warm-start loop of cmd/sslic-video.
func TestWarmSingleWorkerMatchesSequential(t *testing.T) {
	s := testStream(t)
	const frames, warmIters = 5, 3
	want := sequentialLabels(t, s, frames, true, warmIters)
	got := runPipeline(t, s, Config{
		Frames: frames, Workers: 1, Params: testParams(),
		Warm: true, WarmIters: warmIters,
	})
	for f := range want {
		if !labelsEqual(want[f], got[f]) {
			t.Fatalf("frame %d labels differ from sequential warm loop", f)
		}
	}
}

// TestWarmShardedDeterministic: the same sharded warm configuration
// twice gives identical output, and each shard's first frame is cold.
func TestWarmShardedDeterministic(t *testing.T) {
	s := testStream(t)
	const frames, workers = 8, 3
	run := func() ([]*imgio.LabelMap, []bool) {
		w, h := s.Size()
		var labels []*imgio.LabelMap
		var warm []bool
		var pl *Pipeline
		pl, err := New(Config{
			Width: w, Height: h, Frames: frames, Workers: workers,
			Params: testParams(), Warm: true, WarmIters: 3,
		}, s.FrameInto, func(r *Result) error {
			labels = append(labels, r.Labels.Clone())
			warm = append(warm, r.Warm)
			pl.Recycle(r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return labels, warm
	}
	la, wa := run()
	lb, _ := run()
	for f := 0; f < frames; f++ {
		if !labelsEqual(la[f], lb[f]) {
			t.Fatalf("frame %d not repeatable under sharded warm start", f)
		}
		wantWarm := f >= workers // first frame of each shard is cold
		if wa[f] != wantWarm {
			t.Fatalf("frame %d warm=%v, want %v", f, wa[f], wantWarm)
		}
	}
}

// TestOrderedDelivery: the sink must see frame indices 0..N-1 strictly
// in order even with many workers racing.
func TestOrderedDelivery(t *testing.T) {
	s := testStream(t)
	const frames = 16
	w, h := s.Size()
	next := 0
	var pl *Pipeline
	pl, err := New(Config{
		Width: w, Height: h, Frames: frames, Workers: 4, QueueDepth: 2,
		Params: testParams(),
	}, s.FrameInto, func(r *Result) error {
		if r.Index != next {
			return fmt.Errorf("got frame %d, want %d", r.Index, next)
		}
		next++
		pl.Recycle(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if next != frames {
		t.Fatalf("delivered %d frames, want %d", next, frames)
	}
}

// TestCancellationDrains: cancelling mid-run returns context.Canceled,
// drains cleanly, and accounts for every started frame.
func TestCancellationDrains(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := testStream(t)
	w, h := s.Size()
	ctx, cancel := context.WithCancel(context.Background())
	var pl *Pipeline
	delivered := 0
	pl, err := New(Config{
		Width: w, Height: h, Frames: 64, Workers: 4, Params: testParams(),
	}, s.FrameInto, func(r *Result) error {
		delivered++
		if delivered == 3 {
			cancel()
		}
		pl.Recycle(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = pl.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	st := pl.Stats()
	if st.Delivered != int64(delivered) {
		t.Fatalf("stats delivered %d, sink saw %d", st.Delivered, delivered)
	}
	if st.Delivered+st.Dropped > st.Source.FramesOut {
		t.Fatalf("delivered %d + dropped %d exceeds sourced %d",
			st.Delivered, st.Dropped, st.Source.FramesOut)
	}
}

// TestSinkErrorCancels: a sink error aborts the run and surfaces.
func TestSinkErrorCancels(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := testStream(t)
	w, h := s.Size()
	boom := errors.New("boom")
	pl, err := New(Config{
		Width: w, Height: h, Frames: 32, Workers: 2, Params: testParams(),
	}, s.FrameInto, func(r *Result) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want wrapped boom", err)
	}
}

// TestSourceErrorCancels: a render error aborts the run and surfaces.
func TestSourceErrorCancels(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	boom := errors.New("render failed")
	render := func(tt int, img *imgio.Image, gt *imgio.LabelMap) error {
		if tt == 2 {
			return boom
		}
		return nil
	}
	pl, err := New(Config{
		Width: 32, Height: 32, Frames: 8, Workers: 2,
		Params: sslic.DefaultParams(4, 1),
	}, render, func(*Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want wrapped render error", err)
	}
}

// TestSegmentErrorCancels: invalid segmentation params fail the run.
func TestSegmentErrorCancels(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := testStream(t)
	w, h := s.Size()
	bad := testParams()
	bad.Compactness = -1
	pl, err := New(Config{
		Width: w, Height: h, Frames: 4, Workers: 2, Params: bad,
	}, s.FrameInto, func(r *Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); err == nil {
		t.Fatal("invalid params did not fail the run")
	}
}

// TestStatsCounters: a clean run accounts every frame through every
// stage and records latencies.
func TestStatsCounters(t *testing.T) {
	s := testStream(t)
	const frames = 10
	w, h := s.Size()
	var pl *Pipeline
	pl, err := New(Config{
		Width: w, Height: h, Frames: frames, Workers: 3, Params: testParams(),
	}, s.FrameInto, func(r *Result) error {
		time.Sleep(time.Millisecond) // give queues a chance to back up
		pl.Recycle(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	for name, stage := range map[string]StageStats{
		"source": st.Source, "segment": st.Segment, "sink": st.Sink,
	} {
		if stage.FramesIn != frames || stage.FramesOut != frames {
			t.Fatalf("%s: in=%d out=%d, want %d/%d", name, stage.FramesIn, stage.FramesOut, frames, frames)
		}
		if stage.LatencyMean <= 0 || stage.LatencyMax < stage.LatencyMean || stage.LatencyMean < stage.LatencyMin {
			t.Fatalf("%s: inconsistent latencies %v/%v/%v",
				name, stage.LatencyMin, stage.LatencyMean, stage.LatencyMax)
		}
	}
	if st.Delivered != frames || st.Dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d, want %d/0", st.Delivered, st.Dropped, frames)
	}
	if st.ReorderHighWater < 1 {
		t.Fatalf("reorder high water %d, want >= 1", st.ReorderHighWater)
	}
}

// TestNewValidation rejects broken configurations.
func TestNewValidation(t *testing.T) {
	render := func(int, *imgio.Image, *imgio.LabelMap) error { return nil }
	sink := func(*Result) error { return nil }
	if _, err := New(Config{Width: 0, Height: 4, Frames: 1}, render, sink); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(Config{Width: 4, Height: 4, Frames: -1}, render, sink); err == nil {
		t.Error("negative frames accepted")
	}
	if _, err := New(Config{Width: 4, Height: 4, Frames: 1}, nil, sink); err == nil {
		t.Error("nil render accepted")
	}
	if _, err := New(Config{Width: 4, Height: 4, Frames: 1}, render, nil); err == nil {
		t.Error("nil sink accepted")
	}
}

// TestZeroFrames completes immediately with empty stats.
func TestZeroFrames(t *testing.T) {
	pl, err := New(Config{Width: 8, Height: 8, Frames: 0, Params: sslic.DefaultParams(4, 1)},
		func(int, *imgio.Image, *imgio.LabelMap) error { return nil },
		func(*Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := pl.Stats(); st.Delivered != 0 || st.Source.FramesOut != 0 {
		t.Fatalf("unexpected stats for empty run: %+v", st)
	}
}
