package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry/testutil"
)

// TestPoolRetriesTransientFault: a transient injected fault on the
// pool.run point must be absorbed by the retry layer — the job
// succeeds, and its output is byte-identical to a fault-free run.
func TestPoolRetriesTransientFault(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	inj := faults.New(1)
	// Fail the first two attempts deterministically, then run clean.
	inj.Set(faults.PointPoolRun, faults.PointConfig{Every: 1, MaxFires: 2, ErrMsg: "flaky backend"})
	faults.Enable(inj)
	defer faults.Disable()

	im := poolTestImage(32, 24)
	params := sslic.DefaultParams(6, 0.5)
	pool := NewPool(PoolConfig{Workers: 1, QueueDepth: 2, Retries: 2, RetryBackoff: time.Millisecond})
	defer pool.Close()

	res, err := pool.Submit(context.Background(), Job{Image: im, Params: params})
	if err != nil {
		t.Fatalf("job with %d transient faults and %d retries failed: %v", 2, 2, err)
	}
	st := inj.Stats()[faults.PointPoolRun]
	if st.Fires != 2 || st.Calls != 3 {
		t.Fatalf("fault point saw calls=%d fires=%d, want 3/2", st.Calls, st.Fires)
	}

	faults.Disable()
	want, err := sslic.Segment(im, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels.Labels {
		if res.Result.Labels.Labels[i] != want.Labels.Labels[i] {
			t.Fatalf("label %d differs from fault-free run after retries", i)
		}
	}
}

// TestPoolRetryBudgetExhausted: a fault that outlives the retry budget
// must surface as the injected (transient) error, not hang or panic.
func TestPoolRetryBudgetExhausted(t *testing.T) {
	inj := faults.New(1)
	inj.Set(faults.PointPoolRun, faults.PointConfig{Every: 1, ErrMsg: "permanent"})
	faults.Enable(inj)
	defer faults.Disable()

	pool := NewPool(PoolConfig{Workers: 1, QueueDepth: 2, Retries: 1, RetryBackoff: time.Millisecond})
	defer pool.Close()

	_, err := pool.Submit(context.Background(),
		Job{Image: poolTestImage(16, 16), Params: sslic.DefaultParams(4, 0.5)})
	if !faults.IsTransient(err) {
		t.Fatalf("exhausted retries returned %v, want injected error", err)
	}
	if st := inj.Stats()[faults.PointPoolRun]; st.Calls != 2 {
		t.Fatalf("attempts = %d, want 2 (1 try + 1 retry)", st.Calls)
	}
}

// TestPoolRetriesDisabled: Retries < 0 must mean exactly one attempt.
func TestPoolRetriesDisabled(t *testing.T) {
	inj := faults.New(1)
	inj.Set(faults.PointPoolRun, faults.PointConfig{Every: 1, ErrMsg: "fail"})
	faults.Enable(inj)
	defer faults.Disable()

	pool := NewPool(PoolConfig{Workers: 1, QueueDepth: 2, Retries: -1})
	defer pool.Close()

	_, err := pool.Submit(context.Background(),
		Job{Image: poolTestImage(16, 16), Params: sslic.DefaultParams(4, 0.5)})
	if !faults.IsTransient(err) {
		t.Fatalf("got %v, want injected error", err)
	}
	if st := inj.Stats()[faults.PointPoolRun]; st.Calls != 1 {
		t.Fatalf("attempts = %d, want 1 (retries disabled)", st.Calls)
	}
}

// TestPoolWatchdogAbandonsStuckFrame: a backend that ignores its
// context must be abandoned at deadline+grace with ErrWorkerStuck —
// the caller gets an error instead of the shard hanging — and the
// worker must go on to serve the next job.
func TestPoolWatchdogAbandonsStuckFrame(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	release := make(chan struct{})
	defer close(release) // let the orphaned attempt exit
	var calls atomic.Int64
	stuckOnce := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		if calls.Add(1) == 1 {
			<-release // deliberately deaf to ctx
		}
		return sslic.SegmentContext(ctx, im, p)
	}

	pool := NewPool(PoolConfig{
		Workers: 1, QueueDepth: 2, Segment: stuckOnce,
		Retries: -1, WatchdogGrace: 20 * time.Millisecond,
	})
	defer pool.Close()

	im := poolTestImage(16, 16)
	params := sslic.DefaultParams(4, 0.5)

	// White-box: the attempt path must return ErrWorkerStuck at
	// deadline+grace. (Through Submit the caller's own ctx.Done fires
	// first at the bare deadline, so this is the only place the
	// sentinel is deterministically observable.)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := pool.runAttempt(ctx, im, params)
	if !errors.Is(err, ErrWorkerStuck) {
		t.Fatalf("stuck attempt returned %v, want ErrWorkerStuck", err)
	}
	if got := pool.stuck.Value(); got != 1 {
		t.Fatalf("stuck counter = %v, want 1", got)
	}

	// Black-box: a stuck frame must not wedge the shard. The caller
	// times out at its deadline; the watchdog then frees the worker,
	// and a healthy follow-up job completes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	calls.Store(0) // re-arm the stuck path
	if _, err := pool.Submit(ctx2, Job{Image: im, Params: params}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck job returned %v, want deadline exceeded", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := pool.Submit(context.Background(), Job{Image: im, Params: params})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("job after abandoned frame failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard wedged behind a stuck frame — watchdog never freed it")
	}
}

// TestPoolPanicSentinel: a backend panic must come back as an error
// wrapping ErrSegmentPanic (the circuit breaker's classifier), with
// the worker surviving.
func TestPoolPanicSentinel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var calls atomic.Int64
	panicOnce := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		if calls.Add(1) == 1 {
			panic("segfault at the corner case")
		}
		return sslic.SegmentContext(ctx, im, p)
	}
	pool := NewPool(PoolConfig{Workers: 1, QueueDepth: 2, Segment: panicOnce, Retries: -1})
	defer pool.Close()

	im := poolTestImage(16, 16)
	params := sslic.DefaultParams(4, 0.5)
	_, err := pool.Submit(context.Background(), Job{Image: im, Params: params})
	if !errors.Is(err, ErrSegmentPanic) {
		t.Fatalf("panicking job returned %v, want ErrSegmentPanic", err)
	}
	if err == nil || !strings.Contains(err.Error(), "corner case") {
		t.Fatalf("panic value lost from error: %v", err)
	}
	if res, err := pool.Submit(context.Background(), Job{Image: im, Params: params}); err != nil || res == nil {
		t.Fatalf("worker did not survive the panic: %v", err)
	}
}

// TestPoolHotStreamNeverEvictedMidFrame is the eviction regression
// test: when MaxStreams forces an eviction while the least-recently
// used stream still has a frame in flight (queued behind the job
// triggering the eviction), the victim must be the next idle stream —
// the hot stream keeps its warm state and its queued frame runs warm.
// Under strict LRU (the old policy) the hot stream would be evicted
// mid-frame and its queued frame would run cold.
func TestPoolHotStreamNeverEvictedMidFrame(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	step := make(chan struct{})
	var entered atomic.Int64
	gated := func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error) {
		entered.Add(1)
		<-step
		return sslic.SegmentContext(ctx, im, p)
	}
	pool := NewPool(PoolConfig{Workers: 1, QueueDepth: 4, MaxStreams: 2, Segment: gated})
	defer pool.Close()

	im := poolTestImage(32, 24)
	params := sslic.DefaultParams(6, 0.5)
	submit := func(stream string) chan *JobResult {
		out := make(chan *JobResult, 1)
		go func() {
			res, err := pool.Submit(context.Background(), Job{Image: im, Params: params, StreamID: stream})
			if err != nil {
				t.Errorf("stream %s: %v", stream, err)
			}
			out <- res
		}()
		return out
	}
	waitEntered := func(n int64) {
		deadline := time.Now().Add(5 * time.Second)
		for entered.Load() < n {
			if time.Now().After(deadline) {
				t.Fatalf("backend never reached %d entries", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitQueued := func(n int) {
		deadline := time.Now().Add(5 * time.Second)
		for pool.Queued() < n {
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d", n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Frame 1 of the hot stream completes: warm state stored, "hot" is
	// the least-recently-used (and only) stream.
	r1 := submit("hot")
	waitEntered(1)
	step <- struct{}{}
	if res := <-r1; res.Warm {
		t.Fatal("first hot frame reported warm")
	}

	// Park the worker on stream "a", then queue "b" and a second hot
	// frame behind it. The hot stream is now mid-frame: one admitted,
	// undequeued job.
	ra := submit("a")
	waitEntered(2)
	rb := submit("b")
	waitQueued(1)
	r2 := submit("hot")
	waitQueued(2)

	// Finish "a" (stores its state; two streams held, at the cap), then
	// "b" — storing b's state forces the eviction. LRU order is
	// [hot, a]; hot is mid-frame, so "a" must be the victim.
	step <- struct{}{}
	<-ra
	waitEntered(3)
	step <- struct{}{}
	<-rb

	// The queued hot frame runs next; its warm state must have survived.
	waitEntered(4)
	step <- struct{}{}
	if res := <-r2; !res.Warm {
		t.Fatal("hot stream was evicted mid-frame: queued frame ran cold")
	}

	// And the eviction did happen — "a" lost its state.
	ra2 := submit("a")
	waitEntered(5)
	step <- struct{}{}
	if res := <-ra2; res.Warm {
		t.Fatal("idle stream a kept its state — no eviction occurred")
	}
}
