package pipeline

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sslic/internal/bufpool"
	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/slic"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
)

// Pool is the request/response face of the segmentation layer: where
// Pipeline drives a known-length frame *stream* through staged
// channels, Pool accepts one frame at a time from many concurrent
// callers — the shape an HTTP serving front end needs.
//
// Admission control is explicit: every shard has a bounded queue, and
// Submit never blocks on a full one — it fails fast with ErrSaturated
// so the caller can shed load (a 429 at the HTTP layer) instead of
// queueing unboundedly. Memory is therefore bounded by
// Workers × (QueueDepth+1) in-flight frames regardless of offered load.
//
// Warm starts survive across submissions: jobs carrying a StreamID are
// sharded by a hash of that ID, so consecutive frames of one client
// stream land on the same worker, which keeps the stream's last centers
// and seeds the next frame with them (the same warm-start chain the
// streaming pipeline builds, keyed by client instead of frame index).
// Sharding also serializes each stream: two in-flight frames of one
// stream cannot race on its warm state.
//
// Cancellation: Submit honors its context both while queued (the job is
// discarded before it runs) and mid-run (the context reaches
// sslic.SegmentContext, which aborts between subset passes).
type Pool struct {
	cfg    PoolConfig
	shards []chan *poolReq
	rr     atomic.Uint64 // round-robin for jobs without a stream ID
	wg     sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	// inflight counts admitted-but-unfinished jobs per stream, so the
	// warm-state eviction can tell an idle stream from one with frames
	// still queued ("mid-frame") and never evict the latter.
	inflightMu sync.Mutex
	inflight   map[string]int

	depth      atomic.Int64 // authoritative queued-job count behind the gauges
	queueDepth *telemetry.Gauge
	queueHW    *telemetry.Gauge
	queueWait  *telemetry.Histogram
	admitted   *telemetry.Counter
	rejected   *telemetry.Counter
	warmJobs   *telemetry.Counter
	retries    *telemetry.Counter
	stuck      *telemetry.Counter
	evictions  *telemetry.Counter
	streams    *telemetry.Gauge
	spans      *telemetry.Spans
}

// SegmentFunc is the segmentation backend a Pool runs. The default is
// sslic.SegmentContext; tests and alternative backends substitute it.
type SegmentFunc func(ctx context.Context, im *imgio.Image, p sslic.Params) (*sslic.Result, error)

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Workers is the shard/worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds each shard's admission queue; <= 0 selects 2.
	// Total admitted-but-unstarted work is Workers × QueueDepth.
	QueueDepth int
	// WarmIters is FullIters for warm-started jobs; <= 0 selects 3.
	WarmIters int
	// MaxStreams caps the warm states kept per shard; the
	// least-recently-used stream without queued work is evicted beyond
	// it. <= 0 selects 64.
	MaxStreams int
	// Retries bounds per-job retries of transient faults (injected
	// failures per faults.IsTransient): the frame is re-run from scratch
	// after a doubling backoff, so a surviving retry still yields the
	// deterministic fault-free output. < 0 disables; 0 selects 2.
	Retries int
	// RetryBackoff is the first retry's backoff, doubling per attempt;
	// <= 0 selects 2ms. The backoff honors the job's context.
	RetryBackoff time.Duration
	// WatchdogGrace arms the stuck-worker watchdog: a job whose backend
	// has not returned by its context deadline plus this grace is failed
	// with ErrWorkerStuck (the caller gets an error, the worker moves
	// on) instead of wedging the shard forever. The abandoned attempt's
	// goroutine exits whenever the backend finally returns; its result
	// is discarded. 0 disables (jobs without a deadline are never
	// watched either way).
	WatchdogGrace time.Duration
	// Buffers, when set, hands every worker a reusable sslic.Scratch
	// from the shared buffer pool for its lifetime, so steady-state
	// frames segment without reallocating the Lab planes and
	// accumulators (~32 bytes/pixel). Workers are single-threaded and
	// streams shard stickily, so one scratch per worker is race-free; a
	// watchdog-abandoned frame poisons its scratch (the orphaned
	// attempt may still write into it) and the worker draws a fresh
	// one. nil disables scratch reuse.
	Buffers *bufpool.Pool
	// Segment is the backend; nil selects sslic.SegmentContext.
	Segment SegmentFunc
	// Registry receives the pool's metrics; nil selects a private one.
	Registry *telemetry.Registry
	// Logger, when set, emits per-job debug span events.
	Logger *slog.Logger
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2
	}
	if c.WarmIters <= 0 {
		c.WarmIters = 3
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 64
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.Segment == nil {
		c.Segment = sslic.SegmentContext
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// Job is one frame to segment.
type Job struct {
	// Image is the frame; required.
	Image *imgio.Image
	// Params is the full segmentation configuration for a cold run. The
	// pool overrides InitialCenters and FullIters when a warm state is
	// available for the stream.
	Params sslic.Params
	// StreamID identifies a client stream for warm-start stickiness.
	// Empty runs cold and spreads round-robin across shards. The ID is
	// an opaque key: callers multiplexing several principals over one
	// pool (the server's multi-tenant mode) must namespace it
	// ("tenant/stream"), because two jobs with equal StreamIDs share
	// warm centers.
	StreamID string
	// LabelBuf, when set, is the caller-owned label buffer the backend
	// segments into (sslic.Params.LabelBuf): the result's Labels alias
	// it, so the response can be encoded straight from the caller's
	// buffer with no intermediate copy. Ownership caveat: if Submit
	// fails after admission (deadline, cancel, watchdog abandon), an
	// orphaned attempt may still be writing into the buffer — the
	// caller must treat it as poisoned and leak it to the garbage
	// collector rather than recycle it.
	LabelBuf *imgio.LabelMap
}

// JobResult is the outcome of one Job.
type JobResult struct {
	// Result is the segmentation output. Its buffers are owned by the
	// caller; the pool keeps only the centers (for warm starts).
	Result *sslic.Result
	// Warm reports whether the job was seeded from its stream's
	// previous centers.
	Warm bool
	// Latency is the segment service time (queueing excluded).
	Latency time.Duration
}

// ErrSaturated is returned by Submit when the target shard's admission
// queue is full. Callers should shed the request (HTTP 429).
var ErrSaturated = errors.New("pipeline: admission queue full")

// ErrPoolClosed is returned by Submit after Close started draining.
var ErrPoolClosed = errors.New("pipeline: pool closed")

// ErrSegmentPanic wraps a panic recovered from the segmentation
// backend. Callers that track backend health (the server's panic-rate
// circuit breaker) match it with errors.Is.
var ErrSegmentPanic = errors.New("pipeline: segment backend panic")

// ErrWorkerStuck is returned for a job the watchdog abandoned: the
// backend ignored its deadline for longer than WatchdogGrace, so the
// frame fails instead of the shard hanging.
var ErrWorkerStuck = errors.New("pipeline: worker abandoned stuck frame")

// poolReq is one queued submission.
type poolReq struct {
	ctx      context.Context
	job      Job
	enqueued time.Time
	reply    chan poolReply
}

type poolReply struct {
	res *JobResult
	err error
}

// warmState is one stream's carry-over between frames. Centers are only
// reused when the frame geometry and K still match.
type warmState struct {
	centers []slic.Center
	w, h, k int
}

// NewPool starts the workers and returns a ready pool.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	p := &Pool{
		cfg:      cfg,
		shards:   make([]chan *poolReq, cfg.Workers),
		inflight: make(map[string]int),
		queueDepth: reg.Gauge("sslic_pool_queue_depth",
			"Jobs admitted but not yet started, across all shards."),
		queueHW: reg.Gauge("sslic_pool_queue_depth_high_water",
			"Deepest the admission queues ever got, across all shards — the after-the-fact explanation for 429s."),
		queueWait: reg.Histogram("sslic_pool_queue_wait_seconds",
			"Time a job spent admitted but not yet started.",
			[]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}),
		admitted: reg.Counter("sslic_pool_jobs_admitted_total",
			"Jobs accepted into a shard queue."),
		rejected: reg.Counter("sslic_pool_jobs_rejected_total",
			"Jobs refused because the shard queue was full."),
		warmJobs: reg.Counter("sslic_pool_warm_jobs_total",
			"Jobs seeded from their stream's previous centers."),
		retries: reg.Counter("sslic_pool_retries_total",
			"Segmentation attempts re-run after a transient fault."),
		stuck: reg.Counter("sslic_pool_stuck_frames_total",
			"Jobs the watchdog abandoned past their deadline plus grace."),
		evictions: reg.Counter("sslic_pool_stream_evictions_total",
			"Warm-start states evicted to respect MaxStreams."),
		streams: reg.Gauge("sslic_pool_streams",
			"Warm-start stream states currently held."),
		spans: telemetry.NewSpans(reg, "sslic_pool_job",
			"Per-job segment service time (queueing excluded).", nil, cfg.Logger),
	}
	for i := range p.shards {
		p.shards[i] = make(chan *poolReq, cfg.QueueDepth)
		p.wg.Add(1)
		go p.worker(p.shards[i])
	}
	return p
}

// Registry returns the registry carrying the pool's metrics.
func (p *Pool) Registry() *telemetry.Registry { return p.cfg.Registry }

// Queued reports the jobs admitted but not yet picked up by a worker,
// summed across shards. It is a point-in-time observation for tests and
// load probes; the authoritative series is the queue-depth gauge.
func (p *Pool) Queued() int {
	n := 0
	for _, sh := range p.shards {
		n += len(sh)
	}
	return n
}

// QueueCapacity reports the total admission-queue capacity
// (Workers × QueueDepth) — the denominator load controllers need to
// turn the queue-depth gauge into a fill fraction.
func (p *Pool) QueueCapacity() int {
	return p.cfg.Workers * p.cfg.QueueDepth
}

// Workers reports the resolved worker count — with QueueCapacity, the
// total number of jobs the pool can hold (queued plus running), which
// is what an upstream admission gate should size itself to.
func (p *Pool) Workers() int { return p.cfg.Workers }

// shardFor maps a stream ID onto a shard. Jobs without a stream spread
// round-robin; streams stick by FNV-1a hash.
func (p *Pool) shardFor(streamID string) chan *poolReq {
	if streamID == "" {
		return p.shards[p.rr.Add(1)%uint64(len(p.shards))]
	}
	h := fnv.New32a()
	h.Write([]byte(streamID))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

// Submit runs one job and blocks until its result, its context's
// cancellation, or an admission failure. It is safe from any number of
// goroutines. Exactly one of the results is non-nil.
func (p *Pool) Submit(ctx context.Context, job Job) (*JobResult, error) {
	if job.Image == nil {
		return nil, fmt.Errorf("pipeline: job without image")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faults.Fire(faults.PointPoolSubmit); err != nil {
		return nil, err
	}
	req := &poolReq{ctx: ctx, job: job, enqueued: time.Now(), reply: make(chan poolReply, 1)}

	// The stream's in-flight count is raised before the send so the
	// worker's matching decrement (at dequeue) can never run first.
	p.streamAdd(job.StreamID)

	// The RLock pairs with Close's Lock: it guarantees no Submit is
	// mid-send on a channel Close is about to close.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.streamDone(job.StreamID)
		return nil, ErrPoolClosed
	}
	select {
	case p.shardFor(job.StreamID) <- req:
		p.mu.RUnlock()
		p.admitted.Inc()
		d := float64(p.depth.Add(1))
		p.queueDepth.Set(d)
		p.queueHW.SetMax(d)
	default:
		p.mu.RUnlock()
		p.streamDone(job.StreamID)
		p.rejected.Inc()
		return nil, ErrSaturated
	}

	select {
	case rep := <-req.reply:
		return rep.res, rep.err
	case <-ctx.Done():
		// The job may still be queued (the worker will discard it) or
		// running (SegmentContext will abort it); either way the reply
		// lands in the buffered channel and is garbage collected.
		return nil, ctx.Err()
	}
}

// streamAdd raises a stream's in-flight count (no-op for anonymous
// jobs); streamDone lowers it, dropping the entry at zero so the map
// stays bounded by concurrent streams, not historical ones.
func (p *Pool) streamAdd(id string) {
	if id == "" {
		return
	}
	p.inflightMu.Lock()
	p.inflight[id]++
	p.inflightMu.Unlock()
}

func (p *Pool) streamDone(id string) {
	if id == "" {
		return
	}
	p.inflightMu.Lock()
	if n := p.inflight[id] - 1; n <= 0 {
		delete(p.inflight, id)
	} else {
		p.inflight[id] = n
	}
	p.inflightMu.Unlock()
}

// streamBusy reports whether the stream has admitted jobs not yet
// dequeued by its worker — the "mid-frame" state eviction must spare.
func (p *Pool) streamBusy(id string) bool {
	p.inflightMu.Lock()
	busy := p.inflight[id] > 0
	p.inflightMu.Unlock()
	return busy
}

// worker owns one shard: its queue and its streams' warm states.
func (p *Pool) worker(in chan *poolReq) {
	defer p.wg.Done()
	states := make(map[string]*warmState)
	var order []string // least- to most-recently-used, for eviction
	var scratch *sslic.Scratch
	if p.cfg.Buffers != nil {
		scratch = p.cfg.Buffers.GetScratch()
		defer func() { p.cfg.Buffers.PutScratch(scratch) }()
	}
	for req := range in {
		p.streamDone(req.job.StreamID)
		p.queueDepth.Set(float64(p.depth.Add(-1)))
		wait := time.Since(req.enqueued)
		p.queueWait.Observe(wait.Seconds())
		telemetry.CostFrom(req.ctx).AddQueueWait(wait)
		if tr := telemetry.TraceFrom(req.ctx); tr != nil {
			tr.Emit("queue_wait", "pool", req.enqueued, wait,
				map[string]any{"stream": req.job.StreamID})
		}
		if err := req.ctx.Err(); err != nil {
			req.reply <- poolReply{err: err}
			continue
		}
		params := req.job.Params
		if req.job.LabelBuf != nil {
			params.LabelBuf = req.job.LabelBuf
		}
		if scratch != nil {
			params.Scratch = scratch
		}
		warm := false
		if st := states[req.job.StreamID]; st != nil &&
			st.w == req.job.Image.W && st.h == req.job.Image.H && st.k == params.K {
			params.InitialCenters = st.centers
			params.FullIters = p.cfg.WarmIters
			warm = true
		}
		sp := p.spans.StartCtx(req.ctx, "stream", req.job.StreamID, "warm", warm)
		r, err := p.runJob(req.ctx, req.job.Image, params)
		if err != nil {
			if scratch != nil && errors.Is(err, ErrWorkerStuck) {
				// The abandoned attempt's goroutine may still be
				// writing into the scratch; leak it and draw a clean
				// one, exactly like the caller's poisoned LabelBuf.
				scratch = p.cfg.Buffers.GetScratch()
			}
			sp.Abort()
			req.reply <- poolReply{err: err}
			continue
		}
		lat := sp.End()
		if warm {
			p.warmJobs.Inc()
		}
		if req.job.StreamID != "" {
			order = p.storeState(states, order, req.job.StreamID, &warmState{
				centers: r.Centers, w: req.job.Image.W, h: req.job.Image.H, k: req.job.Params.K,
			})
		}
		req.reply <- poolReply{res: &JobResult{Result: r, Warm: warm, Latency: lat}}
	}
	p.streams.Add(-float64(len(states)))
}

// storeState records a stream's warm state, maintaining LRU order and
// evicting beyond MaxStreams. The victim is the least-recently-used
// stream with no in-flight work; only if every candidate is mid-frame
// does strict LRU apply — so a hot stream (steadily resubmitting) is
// never evicted between two of its queued frames.
func (p *Pool) storeState(states map[string]*warmState, order []string, id string, st *warmState) []string {
	if states[id] == nil {
		order = append(order, id)
		p.streams.Add(1)
		if len(order) > p.cfg.MaxStreams {
			victim := 0
			for i, sid := range order[:len(order)-1] { // the new id is last, never the victim
				if !p.streamBusy(sid) {
					victim = i
					break
				}
			}
			sid := order[victim]
			order = append(order[:victim], order[victim+1:]...)
			delete(states, sid)
			p.streams.Add(-1)
			p.evictions.Inc()
		}
	} else {
		for i, sid := range order { // LRU touch: move to back
			if sid == id {
				order = append(append(order[:i], order[i+1:]...), id)
				break
			}
		}
	}
	states[id] = st
	return order
}

// runJob is one job's full attempt chain: the injected-fault hook, the
// watchdog-guarded backend call, and bounded retry-with-backoff for
// transient faults. A retry re-runs the frame from scratch with the
// same parameters, so a job that eventually succeeds still produces
// the deterministic fault-free output for its configuration.
func (p *Pool) runJob(ctx context.Context, im *imgio.Image, params sslic.Params) (*sslic.Result, error) {
	var r *sslic.Result
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			backoff := p.cfg.RetryBackoff << (attempt - 1)
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			p.retries.Inc()
		}
		r, err = p.runAttempt(ctx, im, params)
		if err == nil || attempt >= p.cfg.Retries || !faults.IsTransient(err) || ctx.Err() != nil {
			return r, err
		}
	}
}

// runAttempt runs the backend once, under the stuck-worker watchdog
// when armed. The watchdog only engages for jobs with a deadline: a
// backend still running past deadline+grace is abandoned (the shard
// fails the frame and moves on; the orphaned goroutine's late result
// is discarded via its buffered channel).
func (p *Pool) runAttempt(ctx context.Context, im *imgio.Image, params sslic.Params) (*sslic.Result, error) {
	dl, hasDeadline := ctx.Deadline()
	if p.cfg.WatchdogGrace <= 0 || !hasDeadline {
		return p.runSegment(ctx, im, params)
	}
	type outcome struct {
		r   *sslic.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := p.runSegment(ctx, im, params)
		ch <- outcome{r, err}
	}()
	wd := time.NewTimer(time.Until(dl) + p.cfg.WatchdogGrace)
	defer wd.Stop()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-wd.C:
		p.stuck.Inc()
		return nil, fmt.Errorf("%w (grace %v past deadline)", ErrWorkerStuck, p.cfg.WatchdogGrace)
	}
}

// runSegment isolates the backend: a panic on one frame becomes that
// job's error instead of taking down the worker (and with it every
// stream sharded onto it). The pool.run injection point fires inside
// this recover so an injected panic simulates a crashing worker
// (ErrSegmentPanic) rather than killing the process, and an injected
// latency runs under the watchdog like real backend time.
func (p *Pool) runSegment(ctx context.Context, im *imgio.Image, params sslic.Params) (res *sslic.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: %v", ErrSegmentPanic, v)
		}
	}()
	if err := faults.Fire(faults.PointPoolRun); err != nil {
		return nil, err
	}
	return p.cfg.Segment(ctx, im, params)
}

// Close drains the pool: no new submissions are admitted, jobs already
// queued run to completion (their callers are still waiting on Submit),
// and Close returns when every worker has exited. Safe to call more
// than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for _, sh := range p.shards {
			close(sh)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}
