package pipeline

import (
	"context"
	"strings"
	"testing"

	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
)

// TestStageStatsCompleted pins the satellite fix: Completed lets a
// consumer distinguish "no frames yet" (count zero, latencies zero) from
// "very fast frames" (count positive, latencies possibly rounding to
// zero). Before the field existed, both cases read as all-zero stats.
func TestStageStatsCompleted(t *testing.T) {
	render := func(tt int, img *imgio.Image, gt *imgio.LabelMap) error {
		fillTestFrame(img, gt, tt)
		return nil
	}

	// Before Run: a fresh pipeline must report zero Completed everywhere.
	pl, err := New(Config{
		Width: 64, Height: 48, Frames: 3,
		Workers: 1, Params: sslic.DefaultParams(12, 0.5),
	}, render, func(r *Result) error { return nil })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := pl.Stats()
	for name, stage := range map[string]StageStats{"source": st.Source, "segment": st.Segment, "sink": st.Sink} {
		if stage.Completed != 0 {
			t.Fatalf("%s: Completed = %d before Run, want 0", name, stage.Completed)
		}
		if stage.LatencyMin != 0 || stage.LatencyMean != 0 || stage.LatencyMax != 0 {
			t.Fatalf("%s: nonzero latency before Run: %+v", name, stage)
		}
	}

	if err := pl.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st = pl.Stats()
	for name, stage := range map[string]StageStats{"source": st.Source, "segment": st.Segment, "sink": st.Sink} {
		if stage.Completed != 3 {
			t.Fatalf("%s: Completed = %d, want 3", name, stage.Completed)
		}
		if stage.FramesOut != 3 {
			t.Fatalf("%s: FramesOut = %d, want 3", name, stage.FramesOut)
		}
	}
}

// TestPipelineSharedRegistry runs the pipeline against a caller-supplied
// registry and checks the stage series surface in Prometheus exposition
// with live values matching Stats — the "Stats is a thin view over the
// registry" contract.
func TestPipelineSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	render := func(tt int, img *imgio.Image, gt *imgio.LabelMap) error {
		fillTestFrame(img, gt, tt)
		return nil
	}
	pl, err := New(Config{
		Width: 64, Height: 48, Frames: 2,
		Workers: 1, Params: sslic.DefaultParams(12, 0.5),
		Registry: reg,
	}, render, func(r *Result) error { return nil })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if pl.Registry() != reg {
		t.Fatalf("Registry() did not return the shared registry")
	}
	if err := pl.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`sslic_pipeline_frames_in_total{stage="source"} 2`,
		`sslic_pipeline_frames_out_total{stage="segment"} 2`,
		`sslic_pipeline_stage_seconds_count{stage="sink"} 2`,
		`sslic_pipeline_frames_delivered_total 2`,
		`sslic_pipeline_frames_dropped_total 0`,
		`sslic_pipeline_stage_in_flight{stage="segment"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}

	st := pl.Stats()
	if st.Segment.Completed != 2 || st.Delivered != 2 {
		t.Fatalf("stats view disagrees with registry: %+v", st)
	}
}

// fillTestFrame renders a deterministic two-band frame.
func fillTestFrame(img *imgio.Image, gt *imgio.LabelMap, t int) {
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			i := y*img.W + x
			if (x+t)%img.W < img.W/2 {
				img.C0[i], img.C1[i], img.C2[i] = 200, 40, 40
				gt.Labels[i] = 0
			} else {
				img.C0[i], img.C1[i], img.C2[i] = 40, 200, 40
				gt.Labels[i] = 1
			}
		}
	}
}
