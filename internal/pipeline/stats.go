package pipeline

import (
	"fmt"
	"sync"
	"time"
)

// StageStats is a snapshot of one stage's counters.
type StageStats struct {
	// FramesIn counts frames the stage started processing; FramesOut
	// counts frames it finished and handed downstream. In-flight work is
	// the difference.
	FramesIn, FramesOut int64
	// QueueHighWater is the deepest the stage's outgoing bounded queue
	// ever got — the backpressure indicator. The sink stage reports its
	// incoming queue instead (it has no outgoing one).
	QueueHighWater int
	// LatencyMin/Mean/Max summarize per-frame service time. Zero when no
	// frame completed.
	LatencyMin, LatencyMean, LatencyMax time.Duration
}

// String formats the stage for log lines.
func (s StageStats) String() string {
	return fmt.Sprintf("in=%d out=%d qhw=%d lat=%s/%s/%s",
		s.FramesIn, s.FramesOut, s.QueueHighWater,
		s.LatencyMin.Round(time.Microsecond),
		s.LatencyMean.Round(time.Microsecond),
		s.LatencyMax.Round(time.Microsecond))
}

// Stats is a consistent-enough snapshot of the whole pipeline, safe to
// call concurrently with Run.
type Stats struct {
	Source, Segment, Sink StageStats
	// ReorderHighWater is the most out-of-order results ever held while
	// waiting for the next in-order frame index.
	ReorderHighWater int
	// Delivered counts results the sink accepted; Dropped counts frames
	// recycled during a cancellation drain.
	Delivered, Dropped int64
}

// stageMetrics accumulates one stage's counters. Latencies funnel
// through one mutex per stage; at frame granularity this is noise next
// to a segmentation call.
type stageMetrics struct {
	mu        sync.Mutex
	in, out   int64
	queueHW   int
	total     time.Duration
	min, max  time.Duration
	completed int64
}

func (m *stageMetrics) noteIn(queueLen int) {
	m.mu.Lock()
	m.in++
	if queueLen > m.queueHW {
		m.queueHW = queueLen
	}
	m.mu.Unlock()
}

func (m *stageMetrics) noteOut(lat time.Duration, queueLen int) {
	m.mu.Lock()
	m.out++
	m.completed++
	m.total += lat
	if m.completed == 1 || lat < m.min {
		m.min = lat
	}
	if lat > m.max {
		m.max = lat
	}
	if queueLen > m.queueHW {
		m.queueHW = queueLen
	}
	m.mu.Unlock()
}

func (m *stageMetrics) snapshot() StageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := StageStats{
		FramesIn:       m.in,
		FramesOut:      m.out,
		QueueHighWater: m.queueHW,
		LatencyMin:     m.min,
		LatencyMax:     m.max,
	}
	if m.completed > 0 {
		s.LatencyMean = m.total / time.Duration(m.completed)
	}
	return s
}

// Stats returns a snapshot of all per-stage counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Source:           p.srcStats.snapshot(),
		Segment:          p.segStats.snapshot(),
		Sink:             p.snkStats.snapshot(),
		ReorderHighWater: int(p.reorderHW.Load()),
		Delivered:        p.delivered.Load(),
		Dropped:          p.dropped.Load(),
	}
}
