package pipeline

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"sslic/internal/telemetry"
)

// StageStats is a snapshot of one stage's counters.
type StageStats struct {
	// FramesIn counts frames the stage started processing; FramesOut
	// counts frames it finished and handed downstream. In-flight work is
	// the difference.
	FramesIn, FramesOut int64
	// Completed counts frames with a recorded service time — the sample
	// count behind the latency fields, so a consumer can tell "no frames
	// yet" (Completed == 0, latencies zero) from "very fast frames"
	// (Completed > 0, latencies legitimately near zero).
	Completed int64
	// QueueHighWater is the deepest the stage's outgoing bounded queue
	// ever got — the backpressure indicator. The sink stage reports its
	// incoming queue instead (it has no outgoing one).
	QueueHighWater int
	// LatencyMin/Mean/Max summarize per-frame service time. Zero when no
	// frame completed.
	LatencyMin, LatencyMean, LatencyMax time.Duration
}

// String formats the stage for log lines.
func (s StageStats) String() string {
	return fmt.Sprintf("in=%d out=%d qhw=%d lat=%s/%s/%s",
		s.FramesIn, s.FramesOut, s.QueueHighWater,
		s.LatencyMin.Round(time.Microsecond),
		s.LatencyMean.Round(time.Microsecond),
		s.LatencyMax.Round(time.Microsecond))
}

// Stats is a consistent-enough snapshot of the whole pipeline, safe to
// call concurrently with Run.
type Stats struct {
	Source, Segment, Sink StageStats
	// ReorderHighWater is the most out-of-order results ever held while
	// waiting for the next in-order frame index.
	ReorderHighWater int
	// Delivered counts results the sink accepted; Dropped counts frames
	// recycled during a cancellation drain.
	Delivered, Dropped int64
}

// stageMetrics is one stage's registry-backed instrumentation: counters
// for frames in/out, a high-water gauge for the bounded queue, and a
// span family whose histogram carries the service-time distribution.
// All writes are lock-free atomics; Stats is a thin view over the same
// series a /metrics scrape reads.
type stageMetrics struct {
	in, out   *telemetry.Counter
	queueHW   *telemetry.Gauge
	queueWait *telemetry.Histogram
	stage     string
	spans     *telemetry.Spans
}

func newStageMetrics(reg *telemetry.Registry, log *slog.Logger, stage string) *stageMetrics {
	lbl := telemetry.Label{Name: "stage", Value: stage}
	return &stageMetrics{
		in:      reg.Counter("sslic_pipeline_frames_in_total", "Frames a stage started processing.", lbl),
		out:     reg.Counter("sslic_pipeline_frames_out_total", "Frames a stage finished and handed downstream.", lbl),
		queueHW: reg.Gauge("sslic_pipeline_queue_high_water", "Deepest the stage's bounded queue ever got.", lbl),
		queueWait: reg.Histogram("sslic_pipeline_queue_wait_seconds",
			"Time a frame spent queued before the stage picked it up.",
			[]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}, lbl),
		stage: stage,
		spans: telemetry.NewSpans(reg, "sslic_pipeline_stage", "Per-frame stage service time.", nil, log, lbl),
	}
}

// arrive counts a frame entering the stage and samples the queue depth.
func (m *stageMetrics) arrive(queueLen int) {
	m.in.Inc()
	m.queueHW.SetMax(float64(queueLen))
}

// waited records how long a frame sat in the stage's incoming queue —
// into the queue-wait histogram and, for traced frames, as a
// queue_wait interval on the frame's timeline, so "slow frame" splits
// into "waited" vs "worked" after the fact.
func (m *stageMetrics) waited(tr *telemetry.Trace, enqueued time.Time) {
	wait := time.Since(enqueued)
	m.queueWait.Observe(wait.Seconds())
	if tr != nil {
		tr.Emit("queue_wait", "pipeline:"+m.stage, enqueued, wait, nil)
	}
}

// beginCtx opens the stage's service-time span for one frame, bound to
// the context's trace. End it when the work succeeds, Abort it on the
// error path.
func (m *stageMetrics) beginCtx(ctx context.Context, attrs ...any) telemetry.Span {
	return m.spans.StartCtx(ctx, attrs...)
}

// sent counts a frame handed downstream and samples the queue depth.
func (m *stageMetrics) sent(queueLen int) {
	m.out.Inc()
	m.queueHW.SetMax(float64(queueLen))
}

func (m *stageMetrics) snapshot() StageStats {
	h := m.spans.Snapshot()
	s := StageStats{
		FramesIn:       int64(m.in.Value()),
		FramesOut:      int64(m.out.Value()),
		Completed:      int64(h.Count),
		QueueHighWater: int(m.queueHW.Value()),
	}
	if h.Count > 0 {
		s.LatencyMin = secondsToDuration(h.Min)
		s.LatencyMean = secondsToDuration(h.Mean())
		s.LatencyMax = secondsToDuration(h.Max)
	}
	return s
}

// secondsToDuration converts a histogram's float seconds back to a
// Duration, rounding to the nanosecond.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}

// Stats returns a snapshot of all per-stage counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Source:           p.srcStats.snapshot(),
		Segment:          p.segStats.snapshot(),
		Sink:             p.snkStats.snapshot(),
		ReorderHighWater: int(p.reorderHW.Value()),
		Delivered:        int64(p.delivered.Value()),
		Dropped:          int64(p.dropped.Value()),
	}
}
