package imgio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"image/png"
	"io"

	"sslic/internal/faults"
)

// Streaming decode paths: the serving layer receives frames as request
// bodies, not files, so the format has to be sniffed from the leading
// bytes of a reader instead of dispatched on a path extension. The same
// header bounds that protect the netpbm codecs (maxHeaderDim,
// maxHeaderPixels) are enforced for PNG before the stdlib decoder
// allocates anything image-sized, so a hostile header cannot trigger a
// huge allocation from a tiny payload.

// pngSignature is the 8-byte PNG file signature.
var pngSignature = []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}

// ErrImageTooLarge reports an image whose claimed dimensions exceed the
// caller's pixel budget. It is detected from the header, before any
// pixel-sized allocation, so callers can map it to a "too large"
// response rather than a generic parse failure.
var ErrImageTooLarge = errors.New("imgio: image exceeds pixel budget")

// DecodeImage reads one image from r, sniffing the format from its
// magic bytes: the PNG signature selects the PNG decoder, "P6"/"P3"
// select the PPM codec. Anything else is an error.
func DecodeImage(r io.Reader) (*Image, error) {
	return DecodeImageLimit(r, maxHeaderPixels)
}

// DecodeImageLimit is DecodeImage with an explicit pixel budget: an
// image whose header claims more than maxPixels fails with
// ErrImageTooLarge before the pixel decoder allocates. This matters for
// compressed formats (PNG), where a tiny hostile payload can claim an
// enormous canvas.
func DecodeImageLimit(r io.Reader, maxPixels int) (*Image, error) {
	return DecodeImageLimitAlloc(r, maxPixels, nil)
}

// DecodeImageLimitAlloc is DecodeImageLimit with the decode target
// supplied by alloc (nil means fresh NewImage). alloc runs only after
// the header has passed both the format's own bounds and the pixel
// budget, so pooled targets are sized from trusted dimensions and every
// plane byte is overwritten before return.
func DecodeImageLimitAlloc(r io.Reader, maxPixels int, alloc ImageAlloc) (*Image, error) {
	// Fault hook: a failing/slow decoder is the first dependency a frame
	// meets, so chaos schedules start here. Free when injection is off.
	if err := faults.Fire(faults.PointDecode); err != nil {
		return nil, fmt.Errorf("imgio: decoding frame: %w", err)
	}
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("imgio: sniffing image format: %w", err)
	}
	switch {
	case magic[0] == pngSignature[0] && magic[1] == pngSignature[1]:
		return decodePNGLimitAlloc(br, maxPixels, alloc)
	case magic[0] == 'P' && (magic[1] == '6' || magic[1] == '3'):
		return decodePPMAlloc(br, maxPixels, alloc)
	default:
		return nil, fmt.Errorf("imgio: unrecognized image format (magic %q)", magic)
	}
}

// DecodePNG reads a PNG stream into a planar Image, discarding alpha.
// The IHDR dimensions are validated against the same bounds as the
// netpbm headers before the pixel decoder runs.
func DecodePNG(r io.Reader) (*Image, error) {
	return decodePNGLimitAlloc(bufio.NewReader(r), maxHeaderPixels, nil)
}

func decodePNGLimitAlloc(br *bufio.Reader, maxPixels int, alloc ImageAlloc) (*Image, error) {
	// The signature plus the complete IHDR chunk is 33 bytes; DecodeConfig
	// on that prefix yields the claimed dimensions without consuming br.
	hdr, err := br.Peek(33)
	if err != nil {
		return nil, fmt.Errorf("imgio: reading PNG header: %w", err)
	}
	cfg, err := png.DecodeConfig(bytes.NewReader(hdr))
	if err != nil {
		return nil, fmt.Errorf("imgio: PNG header: %w", err)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 ||
		cfg.Width > maxHeaderDim || cfg.Height > maxHeaderDim ||
		cfg.Width*cfg.Height > maxHeaderPixels {
		return nil, fmt.Errorf("imgio: invalid or oversized PNG dimensions %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Width*cfg.Height > maxPixels {
		return nil, fmt.Errorf("imgio: PNG %dx%d: %w", cfg.Width, cfg.Height, ErrImageTooLarge)
	}
	src, err := png.Decode(br)
	if err != nil {
		return nil, fmt.Errorf("imgio: decoding PNG: %w", err)
	}
	// The stdlib decoder owns its interleaved buffer; de-interleaving
	// into the caller-supplied planes is the copy that replaces a fresh
	// 3·W·H allocation.
	sb := src.Bounds()
	out := alloc.alloc(sb.Dx(), sb.Dy())
	FromGoImageInto(out, src)
	return out, nil
}

// EncodePNG writes im as a PNG stream, interpreting the channels as RGB.
func EncodePNG(w io.Writer, im *Image) error {
	return png.Encode(w, im.ToGoImage())
}
