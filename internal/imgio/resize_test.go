package imgio

import "testing"

func TestResizeIdentity(t *testing.T) {
	im := NewImage(8, 6)
	for i := range im.C0 {
		im.C0[i] = uint8(i * 5)
		im.C1[i] = uint8(i * 7)
		im.C2[i] = uint8(i * 11)
	}
	out, err := Resize(im, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.C0 {
		if out.C0[i] != im.C0[i] || out.C1[i] != im.C1[i] || out.C2[i] != im.C2[i] {
			t.Fatalf("identity resize changed pixel %d", i)
		}
	}
}

func TestResizeSolidStaysSolid(t *testing.T) {
	im := NewImage(10, 10)
	for i := range im.C0 {
		im.C0[i], im.C1[i], im.C2[i] = 120, 60, 30
	}
	for _, dims := range [][2]int{{5, 5}, {20, 20}, {13, 7}} {
		out, err := Resize(im, dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		for i := range out.C0 {
			if out.C0[i] != 120 || out.C1[i] != 60 || out.C2[i] != 30 {
				t.Fatalf("%v: solid color changed at %d: %d,%d,%d",
					dims, i, out.C0[i], out.C1[i], out.C2[i])
			}
		}
	}
}

func TestResizeDownUpPreservesStructure(t *testing.T) {
	// A left/right split must stay a left/right split through down+up.
	im := NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x < 16 {
				im.Set(x, y, 250, 0, 0)
			} else {
				im.Set(x, y, 0, 0, 250)
			}
		}
	}
	small, err := Resize(im, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Resize(small, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Far from the boundary the colors must be intact.
	if c0, _, _ := back.At(2, 16); c0 < 240 {
		t.Fatalf("left side degraded: %d", c0)
	}
	if _, _, c2 := back.At(29, 16); c2 < 240 {
		t.Fatalf("right side degraded: %d", c2)
	}
}

func TestResizeValidation(t *testing.T) {
	im := NewImage(4, 4)
	if _, err := Resize(im, 0, 4); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := ResizeLabels(NewLabelMap(4, 4), 4, -1); err == nil {
		t.Error("negative height accepted")
	}
}

func TestResizeLabelsNearest(t *testing.T) {
	lm := NewLabelMap(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			lm.Set(x, y, int32(x/2))
		}
	}
	out, err := ResizeLabels(lm, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Labels must remain exactly {0, 1} (no interpolation).
	for _, v := range out.Labels {
		if v != 0 && v != 1 {
			t.Fatalf("interpolated label %d", v)
		}
	}
	if out.At(0, 0) != 0 || out.At(7, 7) != 1 {
		t.Fatal("label structure lost")
	}
	// Region proportions preserved (half and half).
	sizes := out.RegionSizes()
	if sizes[0] != 32 || sizes[1] != 32 {
		t.Fatalf("sizes %v", sizes)
	}
}
