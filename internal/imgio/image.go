// Package imgio provides the image containers and file formats used
// throughout the S-SLIC reproduction: planar 8-bit RGB images, integer
// label maps, PPM/PGM codecs, PNG wrappers, and visualization helpers
// (boundary overlays, mean-color abstraction).
//
// The planar layout mirrors the accelerator's scratchpad organization,
// where the three color channels live in three separate channel memories
// and the superpixel indices in a fourth (paper §4.3).
package imgio

import (
	"fmt"
	"image"
	"image/color"
)

// Image is a planar 8-bit three-channel image. Channel semantics are up to
// the producer: R/G/B for input images, L/a/b (quantized to bytes) after
// color conversion. The planar layout matches the accelerator scratchpads.
type Image struct {
	W, H       int
	C0, C1, C2 []uint8 // planar channels, each W*H, row-major
}

// NewImage allocates a zeroed W×H planar image.
// It panics if either dimension is not positive.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgio: invalid dimensions %dx%d", w, h))
	}
	n := w * h
	return &Image{W: w, H: h, C0: make([]uint8, n), C1: make([]uint8, n), C2: make([]uint8, n)}
}

// ImageAlloc supplies decode targets: given validated header dimensions
// it returns a W×H image whose planes the decoder will fully overwrite.
// A buffer pool satisfies this with recycled backing; nil means NewImage.
// Decoders call it only after the header passes their size checks, so an
// implementation never sees hostile dimensions.
type ImageAlloc func(w, h int) *Image

// alloc resolves a possibly-nil ImageAlloc.
func (a ImageAlloc) alloc(w, h int) *Image {
	if a == nil {
		return NewImage(w, h)
	}
	return a(w, h)
}

// Pixels returns the number of pixels W*H.
func (im *Image) Pixels() int { return im.W * im.H }

// At returns the three channel values at (x, y).
func (im *Image) At(x, y int) (c0, c1, c2 uint8) {
	i := y*im.W + x
	return im.C0[i], im.C1[i], im.C2[i]
}

// Set stores the three channel values at (x, y).
func (im *Image) Set(x, y int, c0, c1, c2 uint8) {
	i := y*im.W + x
	im.C0[i], im.C1[i], im.C2[i] = c0, c1, c2
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.C0, im.C0)
	copy(out.C1, im.C1)
	copy(out.C2, im.C2)
	return out
}

// Bounds reports whether (x, y) lies inside the image.
func (im *Image) Bounds(x, y int) bool {
	return x >= 0 && x < im.W && y >= 0 && y < im.H
}

// FromGoImage converts any image.Image into a planar RGB Image,
// discarding alpha.
func FromGoImage(src image.Image) *Image {
	b := src.Bounds()
	out := NewImage(b.Dx(), b.Dy())
	FromGoImageInto(out, src)
	return out
}

// FromGoImageInto fills dst (already sized to src's bounds) from src,
// discarding alpha. *image.NRGBA and *image.RGBA take a direct-Pix fast
// path; everything else goes through the color interface. It panics if
// the dimensions disagree.
func FromGoImageInto(dst *Image, src image.Image) {
	b := src.Bounds()
	if dst.W != b.Dx() || dst.H != b.Dy() {
		panic("imgio: FromGoImageInto dimension mismatch")
	}
	switch s := src.(type) {
	case *image.NRGBA:
		fromPix(dst, s.Pix[s.PixOffset(b.Min.X, b.Min.Y):], s.Stride)
		return
	case *image.RGBA:
		// Alpha is discarded, so premultiplied RGBA samples are taken
		// as-is; fully opaque frames (the only kind our encoders emit)
		// are bit-identical either way.
		fromPix(dst, s.Pix[s.PixOffset(b.Min.X, b.Min.Y):], s.Stride)
		return
	}
	i := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := src.At(x, y).RGBA()
			dst.C0[i] = uint8(r >> 8)
			dst.C1[i] = uint8(g >> 8)
			dst.C2[i] = uint8(bl >> 8)
			i++
		}
	}
}

// fromPix de-interleaves 4-byte-per-pixel Pix data (already offset to
// the first pixel) into dst's planes.
func fromPix(dst *Image, pix []uint8, stride int) {
	i := 0
	for y := 0; y < dst.H; y++ {
		row := pix[y*stride : y*stride+dst.W*4]
		for x := 0; x < dst.W; x++ {
			dst.C0[i] = row[x*4+0]
			dst.C1[i] = row[x*4+1]
			dst.C2[i] = row[x*4+2]
			i++
		}
	}
}

// ToGoImage converts the planar image to an *image.RGBA, interpreting the
// channels as R, G, B.
func (im *Image) ToGoImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for i := 0; i < im.Pixels(); i++ {
		x, y := i%im.W, i/im.W
		out.SetRGBA(x, y, color.RGBA{im.C0[i], im.C1[i], im.C2[i], 0xff})
	}
	return out
}

// LabelMap assigns an integer label (e.g. a superpixel index) to every pixel.
type LabelMap struct {
	W, H   int
	Labels []int32 // W*H, row-major; negative means unassigned
}

// NewLabelMap allocates a label map with every pixel set to Unassigned.
func NewLabelMap(w, h int) *LabelMap {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgio: invalid dimensions %dx%d", w, h))
	}
	l := make([]int32, w*h)
	for i := range l {
		l[i] = Unassigned
	}
	return &LabelMap{W: w, H: h, Labels: l}
}

// Unassigned marks pixels that no superpixel has claimed yet.
const Unassigned int32 = -1

// At returns the label at (x, y).
func (lm *LabelMap) At(x, y int) int32 { return lm.Labels[y*lm.W+x] }

// Set stores a label at (x, y).
func (lm *LabelMap) Set(x, y int, v int32) { lm.Labels[y*lm.W+x] = v }

// Clone returns a deep copy of the label map.
func (lm *LabelMap) Clone() *LabelMap {
	out := &LabelMap{W: lm.W, H: lm.H, Labels: make([]int32, len(lm.Labels))}
	copy(out.Labels, lm.Labels)
	return out
}

// MaxLabel returns the largest label present, or -1 if all unassigned.
func (lm *LabelMap) MaxLabel() int32 {
	max := int32(-1)
	for _, v := range lm.Labels {
		if v > max {
			max = v
		}
	}
	return max
}

// NumRegions returns the number of distinct non-negative labels.
func (lm *LabelMap) NumRegions() int {
	seen := make(map[int32]struct{})
	for _, v := range lm.Labels {
		if v >= 0 {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// RegionSizes returns a map from label to pixel count.
func (lm *LabelMap) RegionSizes() map[int32]int {
	sizes := make(map[int32]int)
	for _, v := range lm.Labels {
		if v >= 0 {
			sizes[v]++
		}
	}
	return sizes
}

// IsBoundary reports whether the pixel at (x, y) has a 4-neighbor with a
// different label, i.e. lies on a region boundary.
func (lm *LabelMap) IsBoundary(x, y int) bool {
	v := lm.At(x, y)
	if x > 0 && lm.At(x-1, y) != v {
		return true
	}
	if x < lm.W-1 && lm.At(x+1, y) != v {
		return true
	}
	if y > 0 && lm.At(x, y-1) != v {
		return true
	}
	if y < lm.H-1 && lm.At(x, y+1) != v {
		return true
	}
	return false
}

// BoundaryMask returns a W*H bool slice marking boundary pixels.
func (lm *LabelMap) BoundaryMask() []bool {
	mask := make([]bool, lm.W*lm.H)
	for y := 0; y < lm.H; y++ {
		for x := 0; x < lm.W; x++ {
			if lm.IsBoundary(x, y) {
				mask[y*lm.W+x] = true
			}
		}
	}
	return mask
}
