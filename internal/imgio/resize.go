package imgio

import "fmt"

// Resize scales the image to w×h with bilinear interpolation — used to
// derive the 720p/VGA workloads of Table 4 from one source scene.
func Resize(im *Image, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imgio: invalid resize target %dx%d", w, h)
	}
	out := NewImage(w, h)
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(fy)
		if y0 < 0 {
			y0 = 0
		}
		y1 := y0 + 1
		if y1 >= im.H {
			y1 = im.H - 1
		}
		wy := fy - float64(y0)
		if wy < 0 {
			wy = 0
		}
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(fx)
			if x0 < 0 {
				x0 = 0
			}
			x1 := x0 + 1
			if x1 >= im.W {
				x1 = im.W - 1
			}
			wx := fx - float64(x0)
			if wx < 0 {
				wx = 0
			}
			for c, ch := range [][]uint8{im.C0, im.C1, im.C2} {
				v00 := float64(ch[y0*im.W+x0])
				v01 := float64(ch[y0*im.W+x1])
				v10 := float64(ch[y1*im.W+x0])
				v11 := float64(ch[y1*im.W+x1])
				v := (v00*(1-wx)+v01*wx)*(1-wy) + (v10*(1-wx)+v11*wx)*wy
				switch c {
				case 0:
					out.C0[y*w+x] = uint8(v + 0.5)
				case 1:
					out.C1[y*w+x] = uint8(v + 0.5)
				default:
					out.C2[y*w+x] = uint8(v + 0.5)
				}
			}
		}
	}
	return out, nil
}

// ResizeLabels scales a label map with nearest-neighbor sampling, the
// only valid interpolation for categorical data.
func ResizeLabels(lm *LabelMap, w, h int) (*LabelMap, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imgio: invalid resize target %dx%d", w, h)
	}
	out := NewLabelMap(w, h)
	for y := 0; y < h; y++ {
		sy := y * lm.H / h
		for x := 0; x < w; x++ {
			sx := x * lm.W / w
			out.Labels[y*w+x] = lm.Labels[sy*lm.W+sx]
		}
	}
	return out, nil
}
