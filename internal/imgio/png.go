package imgio

import (
	"os"
	"path/filepath"
	"strings"
)

// ReadImageFile loads an image from path, dispatching on the extension:
// .ppm → PPM codec, .png → PNG decoder (with the shared header bounds).
func ReadImageFile(path string) (*Image, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".png":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return DecodePNG(f)
	default:
		return ReadPPMFile(path)
	}
}

// WriteImageFile saves im to path, dispatching on the extension like
// ReadImageFile.
func WriteImageFile(path string, im *Image) error {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".png":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := EncodePNG(f, im); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	default:
		return WritePPMFile(path, im)
	}
}
