package imgio

import (
	"testing"
	"testing/quick"
)

func TestNewImageZeroed(t *testing.T) {
	im := NewImage(7, 5)
	if im.W != 7 || im.H != 5 || im.Pixels() != 35 {
		t.Fatalf("dims: got %dx%d (%d px)", im.W, im.H, im.Pixels())
	}
	for i := 0; i < im.Pixels(); i++ {
		if im.C0[i] != 0 || im.C1[i] != 0 || im.C2[i] != 0 {
			t.Fatalf("pixel %d not zeroed", i)
		}
	}
}

func TestNewImagePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 4}, {4, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewImage(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewImage(dims[0], dims[1])
		}()
	}
}

func TestImageSetAt(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 10, 20, 30)
	c0, c1, c2 := im.At(2, 1)
	if c0 != 10 || c1 != 20 || c2 != 30 {
		t.Fatalf("At(2,1) = %d,%d,%d", c0, c1, c2)
	}
	// Neighbors untouched.
	if a, b, c := im.At(1, 1); a != 0 || b != 0 || c != 0 {
		t.Fatal("neighbor modified")
	}
}

func TestImageCloneIndependent(t *testing.T) {
	im := NewImage(3, 3)
	im.Set(0, 0, 1, 2, 3)
	cp := im.Clone()
	cp.Set(0, 0, 9, 9, 9)
	if c0, _, _ := im.At(0, 0); c0 != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestImageBounds(t *testing.T) {
	im := NewImage(4, 3)
	cases := []struct {
		x, y int
		want bool
	}{
		{0, 0, true}, {3, 2, true}, {-1, 0, false}, {0, -1, false},
		{4, 0, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := im.Bounds(c.x, c.y); got != c.want {
			t.Errorf("Bounds(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestGoImageRoundTrip(t *testing.T) {
	im := NewImage(5, 4)
	for i := 0; i < im.Pixels(); i++ {
		im.C0[i] = uint8(i * 7)
		im.C1[i] = uint8(i * 13)
		im.C2[i] = uint8(i * 29)
	}
	back := FromGoImage(im.ToGoImage())
	if back.W != im.W || back.H != im.H {
		t.Fatalf("dims changed: %dx%d", back.W, back.H)
	}
	for i := 0; i < im.Pixels(); i++ {
		if back.C0[i] != im.C0[i] || back.C1[i] != im.C1[i] || back.C2[i] != im.C2[i] {
			t.Fatalf("pixel %d changed: %v vs %v", i,
				[3]uint8{back.C0[i], back.C1[i], back.C2[i]},
				[3]uint8{im.C0[i], im.C1[i], im.C2[i]})
		}
	}
}

func TestLabelMapUnassigned(t *testing.T) {
	lm := NewLabelMap(4, 4)
	for _, v := range lm.Labels {
		if v != Unassigned {
			t.Fatal("fresh label map must be all Unassigned")
		}
	}
	if lm.MaxLabel() != -1 {
		t.Fatalf("MaxLabel = %d, want -1", lm.MaxLabel())
	}
	if lm.NumRegions() != 0 {
		t.Fatalf("NumRegions = %d, want 0", lm.NumRegions())
	}
}

func TestLabelMapRegions(t *testing.T) {
	lm := NewLabelMap(4, 2)
	// Left half label 0, right half label 5.
	for y := 0; y < 2; y++ {
		for x := 0; x < 4; x++ {
			if x < 2 {
				lm.Set(x, y, 0)
			} else {
				lm.Set(x, y, 5)
			}
		}
	}
	if lm.NumRegions() != 2 {
		t.Fatalf("NumRegions = %d", lm.NumRegions())
	}
	if lm.MaxLabel() != 5 {
		t.Fatalf("MaxLabel = %d", lm.MaxLabel())
	}
	sizes := lm.RegionSizes()
	if sizes[0] != 4 || sizes[5] != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestBoundaryDetection(t *testing.T) {
	lm := NewLabelMap(4, 1)
	lm.Set(0, 0, 1)
	lm.Set(1, 0, 1)
	lm.Set(2, 0, 2)
	lm.Set(3, 0, 2)
	wants := []bool{false, true, true, false}
	for x, want := range wants {
		if got := lm.IsBoundary(x, 0); got != want {
			t.Errorf("IsBoundary(%d,0) = %v, want %v", x, got, want)
		}
	}
	mask := lm.BoundaryMask()
	for x, want := range wants {
		if mask[x] != want {
			t.Errorf("mask[%d] = %v, want %v", x, mask[x], want)
		}
	}
}

func TestUniformLabelMapHasNoBoundary(t *testing.T) {
	f := func(w8, h8 uint8) bool {
		w := int(w8%16) + 1
		h := int(h8%16) + 1
		lm := NewLabelMap(w, h)
		for i := range lm.Labels {
			lm.Labels[i] = 3
		}
		for _, b := range lm.BoundaryMask() {
			if b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelMapCloneIndependent(t *testing.T) {
	lm := NewLabelMap(2, 2)
	lm.Set(0, 0, 7)
	cp := lm.Clone()
	cp.Set(0, 0, 8)
	if lm.At(0, 0) != 7 {
		t.Fatal("clone aliases original")
	}
}
