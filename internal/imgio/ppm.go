package imgio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// The PPM/PGM codecs support the binary (P5/P6) and ASCII (P2/P3) variants
// of the netpbm formats with 8-bit samples. These are the interchange
// formats used by the example programs and the dataset generator; they keep
// the repository dependency-free while remaining viewable with standard
// tools.

// EncodePPM writes im as a binary PPM (P6) stream.
func EncodePPM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	row := make([]byte, im.W*3)
	for y := 0; y < im.H; y++ {
		base := y * im.W
		for x := 0; x < im.W; x++ {
			row[x*3+0] = im.C0[base+x]
			row[x*3+1] = im.C1[base+x]
			row[x*3+2] = im.C2[base+x]
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodePPM reads a PPM (P6 or P3) stream into a planar Image.
func DecodePPM(r io.Reader) (*Image, error) {
	return decodePPMAlloc(bufio.NewReader(r), maxHeaderPixels, nil)
}

// decodePPMAlloc parses a PPM stream, failing with ErrImageTooLarge
// before any pixel-sized allocation when the header claims more than
// maxPixels. The decode target comes from alloc (nil means NewImage).
// Binary pixel data is de-interleaved through a fixed-size chunk rather
// than a full 3·W·H staging buffer, so a steady-state decode into a
// pooled target allocates nothing image-sized.
func decodePPMAlloc(br *bufio.Reader, maxPixels int, alloc ImageAlloc) (*Image, error) {
	magic, err := readToken(br)
	if err != nil {
		return nil, fmt.Errorf("imgio: reading PPM magic: %w", err)
	}
	if magic != "P6" && magic != "P3" {
		return nil, fmt.Errorf("imgio: not a PPM file (magic %q)", magic)
	}
	w, h, maxv, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if w*h > maxPixels {
		return nil, fmt.Errorf("imgio: PPM %dx%d: %w", w, h, ErrImageTooLarge)
	}
	im := alloc.alloc(w, h)
	n := w * h
	if magic == "P6" {
		var chunk [3 * 1024]byte // whole pixels per chunk: none spans a boundary
		for i := 0; i < n; {
			m := n - i
			if m > 1024 {
				m = 1024
			}
			buf := chunk[:3*m]
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("imgio: short PPM pixel data: %w", err)
			}
			for j := 0; j < m; j++ {
				im.C0[i+j] = scale8(buf[j*3+0], maxv)
				im.C1[i+j] = scale8(buf[j*3+1], maxv)
				im.C2[i+j] = scale8(buf[j*3+2], maxv)
			}
			i += m
		}
		return im, nil
	}
	for i := 0; i < n; i++ {
		var v [3]int
		for c := 0; c < 3; c++ {
			v[c], err = readInt(br)
			if err != nil {
				return nil, fmt.Errorf("imgio: PPM ascii pixel %d: %w", i, err)
			}
		}
		im.C0[i] = scale8(uint8(clamp255(v[0])), maxv)
		im.C1[i] = scale8(uint8(clamp255(v[1])), maxv)
		im.C2[i] = scale8(uint8(clamp255(v[2])), maxv)
	}
	return im, nil
}

// EncodePGM writes a single-channel 8-bit PGM (P5). The values slice must
// hold w*h bytes in row-major order.
func EncodePGM(w io.Writer, width, height int, values []uint8) error {
	if len(values) != width*height {
		return fmt.Errorf("imgio: PGM size mismatch: %d values for %dx%d", len(values), width, height)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	if _, err := bw.Write(values); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePGM reads a PGM (P5 or P2) stream, returning width, height and the
// row-major sample slice.
func DecodePGM(r io.Reader) (int, int, []uint8, error) {
	br := bufio.NewReader(r)
	magic, err := readToken(br)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("imgio: reading PGM magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return 0, 0, nil, fmt.Errorf("imgio: not a PGM file (magic %q)", magic)
	}
	w, h, maxv, err := readHeader(br)
	if err != nil {
		return 0, 0, nil, err
	}
	n := w * h
	out := make([]uint8, n)
	if magic == "P5" {
		if _, err := io.ReadFull(br, out); err != nil {
			return 0, 0, nil, fmt.Errorf("imgio: short PGM pixel data: %w", err)
		}
		for i := range out {
			out[i] = scale8(out[i], maxv)
		}
		return w, h, out, nil
	}
	for i := 0; i < n; i++ {
		v, err := readInt(br)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("imgio: PGM ascii pixel %d: %w", i, err)
		}
		out[i] = scale8(uint8(clamp255(v)), maxv)
	}
	return w, h, out, nil
}

// WritePPMFile encodes im to path as binary PPM.
func WritePPMFile(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePPM(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPPMFile decodes the PPM file at path.
func ReadPPMFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodePPM(f)
}

// maxHeaderDim and maxHeaderPixels bound what a netpbm header may claim
// before any allocation happens, so hostile inputs cannot trigger huge
// or out-of-range allocations.
const (
	maxHeaderDim    = 1 << 20
	maxHeaderPixels = 1 << 28
)

func readHeader(br *bufio.Reader) (w, h, maxv int, err error) {
	if w, err = readInt(br); err != nil {
		return 0, 0, 0, fmt.Errorf("imgio: reading width: %w", err)
	}
	if h, err = readInt(br); err != nil {
		return 0, 0, 0, fmt.Errorf("imgio: reading height: %w", err)
	}
	if maxv, err = readInt(br); err != nil {
		return 0, 0, 0, fmt.Errorf("imgio: reading maxval: %w", err)
	}
	if w <= 0 || h <= 0 || w > maxHeaderDim || h > maxHeaderDim || w*h > maxHeaderPixels {
		return 0, 0, 0, fmt.Errorf("imgio: invalid or oversized dimensions %dx%d", w, h)
	}
	if maxv <= 0 || maxv > 255 {
		return 0, 0, 0, fmt.Errorf("imgio: unsupported maxval %d (only 8-bit)", maxv)
	}
	return w, h, maxv, nil
}

// readToken reads the next whitespace-delimited token, skipping '#' comments.
func readToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func readInt(br *bufio.Reader) (int, error) {
	tok, err := readToken(br)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("invalid integer %q", tok)
	}
	return v, nil
}

func scale8(v uint8, maxv int) uint8 {
	if maxv == 255 {
		return v
	}
	return uint8(int(v) * 255 / maxv)
}

func clamp255(v int) int {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
