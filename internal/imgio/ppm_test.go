package imgio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func randomImage(rng *rand.Rand, w, h int) *Image {
	im := NewImage(w, h)
	rng.Read(im.C0)
	rng.Read(im.C1)
	rng.Read(im.C2)
	return im
}

func imagesEqual(a, b *Image) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	return bytes.Equal(a.C0, b.C0) && bytes.Equal(a.C1, b.C1) && bytes.Equal(a.C2, b.C2)
}

func TestPPMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {64, 48}, {17, 1}} {
		im := randomImage(rng, dims[0], dims[1])
		var buf bytes.Buffer
		if err := EncodePPM(&buf, im); err != nil {
			t.Fatalf("encode %v: %v", dims, err)
		}
		back, err := DecodePPM(&buf)
		if err != nil {
			t.Fatalf("decode %v: %v", dims, err)
		}
		if !imagesEqual(im, back) {
			t.Fatalf("round trip altered %v image", dims)
		}
	}
}

func TestPPMRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(w8, h8 uint8) bool {
		w := int(w8%32) + 1
		h := int(h8%32) + 1
		im := randomImage(rng, w, h)
		var buf bytes.Buffer
		if err := EncodePPM(&buf, im); err != nil {
			return false
		}
		back, err := DecodePPM(&buf)
		if err != nil {
			return false
		}
		return imagesEqual(im, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePPMAscii(t *testing.T) {
	src := "P3\n# a comment\n2 1\n255\n255 0 0   0 255 0\n"
	im, err := DecodePPM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 1 {
		t.Fatalf("dims %dx%d", im.W, im.H)
	}
	if c0, c1, c2 := im.At(0, 0); c0 != 255 || c1 != 0 || c2 != 0 {
		t.Fatalf("pixel 0 = %d,%d,%d", c0, c1, c2)
	}
	if c0, c1, c2 := im.At(1, 0); c0 != 0 || c1 != 255 || c2 != 0 {
		t.Fatalf("pixel 1 = %d,%d,%d", c0, c1, c2)
	}
}

func TestDecodePPMMaxvalScaling(t *testing.T) {
	src := "P3\n1 1\n15\n15 0 7\n"
	im, err := DecodePPM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c0, c1, c2 := im.At(0, 0)
	if c0 != 255 || c1 != 0 {
		t.Fatalf("scaled pixel = %d,%d,%d", c0, c1, c2)
	}
	if c2 != uint8(7*255/15) {
		t.Fatalf("c2 = %d, want %d", c2, 7*255/15)
	}
}

func TestDecodePPMErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"P7\n1 1\n255\n",   // bad magic
		"P6\n0 1\n255\n",   // zero width
		"P6\n1 1\n70000\n", // 16-bit maxval unsupported
		"P6\n2 2\n255\nab", // truncated pixel data
		"P6\nx 1\n255\n",   // non-numeric width
	}
	for _, src := range cases {
		if _, err := DecodePPM(strings.NewReader(src)); err == nil {
			t.Errorf("DecodePPM(%q) succeeded, want error", src)
		}
	}
}

func TestPGMRoundTrip(t *testing.T) {
	vals := make([]uint8, 6*4)
	for i := range vals {
		vals[i] = uint8(i * 11)
	}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, 6, 4, vals); err != nil {
		t.Fatal(err)
	}
	w, h, back, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 || h != 4 || !bytes.Equal(vals, back) {
		t.Fatal("PGM round trip mismatch")
	}
}

func TestEncodePGMSizeMismatch(t *testing.T) {
	if err := EncodePGM(&bytes.Buffer{}, 2, 2, make([]uint8, 3)); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestDecodePGMAscii(t *testing.T) {
	src := "P2\n3 1\n255\n0 128 255\n"
	w, h, vals, err := DecodePGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 || h != 1 || vals[0] != 0 || vals[1] != 128 || vals[2] != 255 {
		t.Fatalf("got %dx%d %v", w, h, vals)
	}
}

func TestFileRoundTripPPMAndPNG(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	im := randomImage(rng, 20, 10)
	for _, name := range []string{"x.ppm", "x.png"} {
		path := filepath.Join(dir, name)
		if err := WriteImageFile(path, im); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		back, err := ReadImageFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !imagesEqual(im, back) {
			t.Fatalf("%s round trip altered image", name)
		}
	}
}

func TestOverlayDrawsBoundaries(t *testing.T) {
	im := NewImage(4, 1)
	lm := NewLabelMap(4, 1)
	lm.Set(0, 0, 0)
	lm.Set(1, 0, 0)
	lm.Set(2, 0, 1)
	lm.Set(3, 0, 1)
	out := Overlay(im, lm, 255, 0, 0)
	if c0, _, _ := out.At(1, 0); c0 != 255 {
		t.Fatal("boundary pixel not painted")
	}
	if c0, _, _ := out.At(0, 0); c0 != 0 {
		t.Fatal("interior pixel painted")
	}
	// Original untouched.
	if c0, _, _ := im.At(1, 0); c0 != 0 {
		t.Fatal("Overlay mutated input")
	}
}

func TestMeanColorUniformRegions(t *testing.T) {
	im := NewImage(4, 1)
	im.Set(0, 0, 10, 0, 0)
	im.Set(1, 0, 20, 0, 0)
	im.Set(2, 0, 100, 0, 0)
	im.Set(3, 0, 200, 0, 0)
	lm := NewLabelMap(4, 1)
	lm.Set(0, 0, 0)
	lm.Set(1, 0, 0)
	lm.Set(2, 0, 1)
	lm.Set(3, 0, 1)
	out := MeanColor(im, lm)
	if c0, _, _ := out.At(0, 0); c0 != 15 {
		t.Fatalf("region 0 mean = %d, want 15", c0)
	}
	if c0, _, _ := out.At(3, 0); c0 != 150 {
		t.Fatalf("region 1 mean = %d, want 150", c0)
	}
}

func TestMeanColorHandlesUnassigned(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, 40, 0, 0)
	im.Set(1, 0, 60, 0, 0)
	lm := NewLabelMap(2, 1) // all Unassigned
	out := MeanColor(im, lm)
	if c0, _, _ := out.At(0, 0); c0 != 50 {
		t.Fatalf("unassigned mean = %d, want 50", c0)
	}
}

func TestLabelColorsDeterministicAndDistinct(t *testing.T) {
	lm := NewLabelMap(2, 1)
	lm.Set(0, 0, 0)
	lm.Set(1, 0, 1)
	a := LabelColors(lm)
	b := LabelColors(lm)
	if !imagesEqual(a, b) {
		t.Fatal("LabelColors not deterministic")
	}
	a0, a1, a2 := a.At(0, 0)
	b0, b1, b2 := a.At(1, 0)
	if a0 == b0 && a1 == b1 && a2 == b2 {
		t.Fatal("adjacent labels rendered with identical colors")
	}
}

func TestOverlayPanicsOnDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched dims")
		}
	}()
	Overlay(NewImage(2, 2), NewLabelMap(3, 3), 0, 0, 0)
}
