package imgio

// Visualization helpers for segmentation results: boundary overlays and
// mean-color abstraction. These implement the classic superpixel
// renderings used in the paper's motivating figures and by the example
// programs.

// Overlay returns a copy of im with the boundaries of lm drawn in the
// given color. It panics if the dimensions disagree.
func Overlay(im *Image, lm *LabelMap, r, g, b uint8) *Image {
	mustMatch(im, lm)
	out := im.Clone()
	OverlayInto(out, im, lm, r, g, b)
	return out
}

// OverlayInto renders im with lm's boundaries in the given color into
// dst, which may alias im (the render target on the pooled path is the
// decode buffer itself). It panics if any dimensions disagree.
func OverlayInto(dst, im *Image, lm *LabelMap, r, g, b uint8) {
	mustMatch(im, lm)
	mustMatch(dst, lm)
	if dst != im {
		copy(dst.C0, im.C0)
		copy(dst.C1, im.C1)
		copy(dst.C2, im.C2)
	}
	for y := 0; y < lm.H; y++ {
		for x := 0; x < lm.W; x++ {
			if lm.IsBoundary(x, y) {
				dst.Set(x, y, r, g, b)
			}
		}
	}
}

// MeanColor renders each region of lm filled with the mean color of its
// member pixels in im — the "superpixel abstraction" that downstream
// vision stages consume instead of raw pixels.
func MeanColor(im *Image, lm *LabelMap) *Image {
	out := NewImage(im.W, im.H)
	MeanColorInto(out, im, lm)
	return out
}

// MeanColorInto renders the mean-color abstraction into dst, which may
// alias im: the per-region sums are accumulated before any pixel of dst
// is written. The K-sized sum table is still allocated per call — it is
// region-count-, not pixel-sized. Panics if any dimensions disagree.
func MeanColorInto(dst, im *Image, lm *LabelMap) {
	mustMatch(im, lm)
	mustMatch(dst, lm)
	max := lm.MaxLabel()
	sums := make([][4]int64, max+2) // c0, c1, c2, count; last slot for Unassigned
	for i, v := range lm.Labels {
		s := int(v)
		if v < 0 {
			s = int(max) + 1
		}
		sums[s][0] += int64(im.C0[i])
		sums[s][1] += int64(im.C1[i])
		sums[s][2] += int64(im.C2[i])
		sums[s][3]++
	}
	for i, v := range lm.Labels {
		s := int(v)
		if v < 0 {
			s = int(max) + 1
		}
		n := sums[s][3]
		if n == 0 {
			dst.C0[i], dst.C1[i], dst.C2[i] = im.C0[i], im.C1[i], im.C2[i]
			continue
		}
		dst.C0[i] = uint8(sums[s][0] / n)
		dst.C1[i] = uint8(sums[s][1] / n)
		dst.C2[i] = uint8(sums[s][2] / n)
	}
}

// LabelColors renders each region with a deterministic pseudo-random color,
// useful for inspecting label maps directly.
func LabelColors(lm *LabelMap) *Image {
	out := NewImage(lm.W, lm.H)
	for i, v := range lm.Labels {
		if v < 0 {
			continue
		}
		// A cheap integer hash gives stable, well-spread colors per label.
		h := uint32(v+1) * 2654435761
		out.C0[i] = uint8(h >> 8)
		out.C1[i] = uint8(h >> 16)
		out.C2[i] = uint8(h >> 24)
	}
	return out
}

func mustMatch(im *Image, lm *LabelMap) {
	if im.W != lm.W || im.H != lm.H {
		panic("imgio: image and label map dimensions differ")
	}
}
