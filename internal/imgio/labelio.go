package imgio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary label-map format for persisting segmentations between pipeline
// stages (the "final assignment ... stored in the external memory" of
// §4.3, as a file): a magic, the dimensions, then the row-major labels
// as little-endian int32.
const labelMagic = "SLBL"

// EncodeLabelMap writes lm in the binary label format. The labels are
// serialized through a fixed-size chunk with manual little-endian
// stores; binary.Write would reflect-copy the whole 4·W·H slice into a
// fresh buffer first, which is exactly the intermediate copy the
// zero-copy response path exists to avoid.
func EncodeLabelMap(w io.Writer, lm *LabelMap) error {
	if _, err := io.WriteString(w, labelMagic); err != nil {
		return err
	}
	var chunk [4 * 1024]byte
	binary.LittleEndian.PutUint32(chunk[0:], uint32(lm.W))
	binary.LittleEndian.PutUint32(chunk[4:], uint32(lm.H))
	if _, err := w.Write(chunk[:8]); err != nil {
		return err
	}
	for i := 0; i < len(lm.Labels); {
		m := len(lm.Labels) - i
		if m > 1024 {
			m = 1024
		}
		for j := 0; j < m; j++ {
			binary.LittleEndian.PutUint32(chunk[4*j:], uint32(lm.Labels[i+j]))
		}
		if _, err := w.Write(chunk[:4*m]); err != nil {
			return err
		}
		i += m
	}
	return nil
}

// DecodeLabelMap reads a binary label map.
func DecodeLabelMap(r io.Reader) (*LabelMap, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(labelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("imgio: reading label magic: %w", err)
	}
	if string(magic) != labelMagic {
		return nil, fmt.Errorf("imgio: not a label map (magic %q)", magic)
	}
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("imgio: reading label header: %w", err)
	}
	w, h := int(hdr[0]), int(hdr[1])
	if w <= 0 || h <= 0 || w > maxHeaderDim || h > maxHeaderDim || w*h > maxHeaderPixels {
		return nil, fmt.Errorf("imgio: invalid label dimensions %dx%d", w, h)
	}
	lm := NewLabelMap(w, h)
	var chunk [4 * 1024]byte
	for i := 0; i < len(lm.Labels); {
		m := len(lm.Labels) - i
		if m > 1024 {
			m = 1024
		}
		if _, err := io.ReadFull(br, chunk[:4*m]); err != nil {
			return nil, fmt.Errorf("imgio: reading labels: %w", err)
		}
		for j := 0; j < m; j++ {
			lm.Labels[i+j] = int32(binary.LittleEndian.Uint32(chunk[4*j:]))
		}
		i += m
	}
	return lm, nil
}

// WriteLabelMapFile encodes lm to path.
func WriteLabelMapFile(path string, lm *LabelMap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeLabelMap(f, lm); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLabelMapFile decodes the label map at path.
func ReadLabelMapFile(path string) (*LabelMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeLabelMap(f)
}
