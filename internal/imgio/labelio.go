package imgio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary label-map format for persisting segmentations between pipeline
// stages (the "final assignment ... stored in the external memory" of
// §4.3, as a file): a magic, the dimensions, then the row-major labels
// as little-endian int32.
const labelMagic = "SLBL"

// EncodeLabelMap writes lm in the binary label format.
func EncodeLabelMap(w io.Writer, lm *LabelMap) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(labelMagic); err != nil {
		return err
	}
	hdr := [2]uint32{uint32(lm.W), uint32(lm.H)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, lm.Labels); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeLabelMap reads a binary label map.
func DecodeLabelMap(r io.Reader) (*LabelMap, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(labelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("imgio: reading label magic: %w", err)
	}
	if string(magic) != labelMagic {
		return nil, fmt.Errorf("imgio: not a label map (magic %q)", magic)
	}
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("imgio: reading label header: %w", err)
	}
	w, h := int(hdr[0]), int(hdr[1])
	if w <= 0 || h <= 0 || w > maxHeaderDim || h > maxHeaderDim || w*h > maxHeaderPixels {
		return nil, fmt.Errorf("imgio: invalid label dimensions %dx%d", w, h)
	}
	lm := NewLabelMap(w, h)
	if err := binary.Read(br, binary.LittleEndian, lm.Labels); err != nil {
		return nil, fmt.Errorf("imgio: reading labels: %w", err)
	}
	return lm, nil
}

// WriteLabelMapFile encodes lm to path.
func WriteLabelMapFile(path string, lm *LabelMap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeLabelMap(f, lm); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLabelMapFile decodes the label map at path.
func ReadLabelMapFile(path string) (*LabelMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeLabelMap(f)
}
