package imgio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

func testPattern(w, h int) *Image {
	im := NewImage(w, h)
	for i := range im.C0 {
		im.C0[i] = uint8(i * 3)
		im.C1[i] = uint8(i * 7)
		im.C2[i] = uint8(255 - i)
	}
	return im
}

// TestDecodeImageSniff round-trips the same image through both stream
// codecs via the sniffing entry point and requires pixel equality.
func TestDecodeImageSniff(t *testing.T) {
	im := testPattern(13, 7)

	var ppm, png bytes.Buffer
	if err := EncodePPM(&ppm, im); err != nil {
		t.Fatal(err)
	}
	if err := EncodePNG(&png, im); err != nil {
		t.Fatal(err)
	}

	for name, buf := range map[string]*bytes.Buffer{"ppm": &ppm, "png": &png} {
		got, err := DecodeImage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.W != im.W || got.H != im.H {
			t.Fatalf("%s: decoded %dx%d, want %dx%d", name, got.W, got.H, im.W, im.H)
		}
		for i := range im.C0 {
			if got.C0[i] != im.C0[i] || got.C1[i] != im.C1[i] || got.C2[i] != im.C2[i] {
				t.Fatalf("%s: pixel %d differs", name, i)
			}
		}
	}
}

func TestDecodeImageRejectsUnknown(t *testing.T) {
	for _, data := range []string{"", "X", "GIF89a....", "P5\n1 1\n255\nx", "\x89Q"} {
		if _, err := DecodeImage(strings.NewReader(data)); err == nil {
			t.Fatalf("DecodeImage accepted %q", data)
		}
	}
}

// pngChunk assembles one PNG chunk with a correct CRC, so handcrafted
// headers get past the stdlib's integrity check and exercise our bounds.
func pngChunk(typ string, data []byte) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(len(data)))
	buf.WriteString(typ)
	buf.Write(data)
	crc := crc32.NewIEEE()
	crc.Write([]byte(typ))
	crc.Write(data)
	binary.Write(&buf, binary.BigEndian, crc.Sum32())
	return buf.Bytes()
}

// TestDecodePNGHeaderBounds: a valid PNG header claiming absurd
// dimensions must be rejected before any image-sized allocation.
func TestDecodePNGHeaderBounds(t *testing.T) {
	ihdr := func(w, h uint32) []byte {
		data := make([]byte, 13)
		binary.BigEndian.PutUint32(data[0:], w)
		binary.BigEndian.PutUint32(data[4:], h)
		data[8] = 8 // bit depth
		data[9] = 2 // color type: truecolor
		var buf bytes.Buffer
		buf.Write(pngSignature)
		buf.Write(pngChunk("IHDR", data))
		return buf.Bytes()
	}
	for _, tc := range []struct{ w, h uint32 }{
		{1 << 21, 1},       // width over maxHeaderDim
		{1, 1 << 21},       // height over maxHeaderDim
		{1 << 19, 1 << 19}, // pixel count over maxHeaderPixels
		{0, 4},             // zero width
	} {
		if _, err := DecodePNG(bytes.NewReader(ihdr(tc.w, tc.h))); err == nil {
			t.Fatalf("DecodePNG accepted %dx%d header", tc.w, tc.h)
		}
	}

	// A caller-supplied pixel budget must fail from the header alone —
	// the regression that the server fuzz target found: a tiny compressed
	// payload claiming a within-global-bounds canvas (here 1024×1024
	// against a 256-pixel budget) must yield ErrImageTooLarge, not an
	// image-sized allocation followed by a post-decode check.
	if _, err := DecodeImageLimit(bytes.NewReader(ihdr(1024, 1024)), 256); !errors.Is(err, ErrImageTooLarge) {
		t.Fatalf("DecodeImageLimit over-budget PNG returned %v, want ErrImageTooLarge", err)
	}
}

// TestDecodeImageLimitPPM: the budget applies to the uncompressed codec
// too, and an in-budget frame still decodes.
func TestDecodeImageLimitPPM(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodePPM(&buf, testPattern(8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeImageLimit(bytes.NewReader(buf.Bytes()), 16); !errors.Is(err, ErrImageTooLarge) {
		t.Fatalf("over-budget PPM returned %v, want ErrImageTooLarge", err)
	}
	if _, err := DecodeImageLimit(bytes.NewReader(buf.Bytes()), 64); err != nil {
		t.Fatalf("in-budget PPM rejected: %v", err)
	}
}
