package imgio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestLabelMapRoundTrip(t *testing.T) {
	lm := NewLabelMap(7, 5)
	for i := range lm.Labels {
		lm.Labels[i] = int32(i*13 - 3) // includes negatives (Unassigned-like)
	}
	var buf bytes.Buffer
	if err := EncodeLabelMap(&buf, lm); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeLabelMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 7 || back.H != 5 {
		t.Fatalf("dims %dx%d", back.W, back.H)
	}
	for i := range lm.Labels {
		if back.Labels[i] != lm.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestLabelMapRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prop := func(w8, h8 uint8) bool {
		w := int(w8%20) + 1
		h := int(h8%20) + 1
		lm := NewLabelMap(w, h)
		for i := range lm.Labels {
			lm.Labels[i] = rng.Int31n(1000) - 1
		}
		var buf bytes.Buffer
		if err := EncodeLabelMap(&buf, lm); err != nil {
			return false
		}
		back, err := DecodeLabelMap(&buf)
		if err != nil {
			return false
		}
		for i := range lm.Labels {
			if back.Labels[i] != lm.Labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeLabelMapErrors(t *testing.T) {
	cases := []string{
		"",
		"XXXX\x01\x00\x00\x00\x01\x00\x00\x00", // bad magic
		"SLBL",                                 // truncated header
		"SLBL\x00\x00\x00\x00\x01\x00\x00\x00", // zero width
		"SLBL\xff\xff\xff\x7f\xff\xff\xff\x7f", // absurd dims
		"SLBL\x02\x00\x00\x00\x02\x00\x00\x00\x01\x00", // truncated labels
	}
	for i, src := range cases {
		if _, err := DecodeLabelMap(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLabelMapFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	lm := NewLabelMap(8, 8)
	for i := range lm.Labels {
		lm.Labels[i] = int32(i % 5)
	}
	path := filepath.Join(dir, "seg.slbl")
	if err := WriteLabelMapFile(path, lm); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLabelMapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRegions() != 5 {
		t.Fatalf("regions %d", back.NumRegions())
	}
}
