package imgio

import (
	"bytes"
	"testing"
)

// FuzzDecodePPM drives the PPM parser with arbitrary bytes: it must
// never panic, and any successfully decoded image must re-encode.
// `go test` runs the seed corpus; `go test -fuzz=FuzzDecodePPM` explores.
func FuzzDecodePPM(f *testing.F) {
	seeds := [][]byte{
		[]byte("P6\n2 2\n255\n0123456789AB"),
		[]byte("P3\n1 1\n255\n1 2 3"),
		[]byte("P6\n# comment\n1 1\n255\nabc"),
		[]byte("P6\n0 0\n255\n"),
		[]byte("P5\n2 2\n255\nabcd"),
		[]byte(""),
		[]byte("P6"),
		[]byte("P6\n99999999 99999999\n255\n"),
		[]byte("P3\n2 1\n255\n300 -4 12 1 2 3"),
		[]byte("P6\n2 2\n15\n0123456789AB"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocations from hostile headers: the
		// decoder must reject anything it cannot back with actual data,
		// so a size cap on the input suffices.
		if len(data) > 1<<16 {
			return
		}
		im, err := DecodePPM(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded images must be internally consistent and re-encodable.
		if im.W <= 0 || im.H <= 0 {
			t.Fatalf("decoder accepted dimensions %dx%d", im.W, im.H)
		}
		if len(im.C0) != im.W*im.H {
			t.Fatalf("plane size %d for %dx%d", len(im.C0), im.W, im.H)
		}
		var buf bytes.Buffer
		if err := EncodePPM(&buf, im); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodePPM(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.W != im.W || back.H != im.H {
			t.Fatal("round trip changed dimensions")
		}
	})
}

// FuzzDecodeLabelMap drives the binary label-map parser with arbitrary
// bytes: malformed magics, truncated headers, zero/negative/huge
// dimensions and short payloads must all error, never panic, and any
// accepted map must be internally consistent and round-trip.
func FuzzDecodeLabelMap(f *testing.F) {
	valid := func(w, h int) []byte {
		lm := NewLabelMap(w, h)
		for i := range lm.Labels {
			lm.Labels[i] = int32(i % 5)
		}
		var buf bytes.Buffer
		if err := EncodeLabelMap(&buf, lm); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	seeds := [][]byte{
		valid(4, 3),
		valid(1, 1),
		valid(4, 3)[:7],  // truncated header
		valid(4, 3)[:20], // truncated payload
		[]byte("SLBX\x04\x00\x00\x00\x03\x00\x00\x00"), // bad magic
		[]byte("SLBL\x00\x00\x00\x00\x00\x00\x00\x00"), // zero dims
		[]byte("SLBL\xff\xff\xff\xff\x01\x00\x00\x00"), // dim wraps negative
		[]byte("SLBL\xff\xff\xff\x7f\xff\xff\xff\x7f"), // absurd dims
		[]byte(""),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		lm, err := DecodeLabelMap(bytes.NewReader(data))
		if err != nil {
			return
		}
		if lm.W <= 0 || lm.H <= 0 {
			t.Fatalf("decoder accepted dimensions %dx%d", lm.W, lm.H)
		}
		if len(lm.Labels) != lm.W*lm.H {
			t.Fatalf("label plane size %d for %dx%d", len(lm.Labels), lm.W, lm.H)
		}
		var buf bytes.Buffer
		if err := EncodeLabelMap(&buf, lm); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodeLabelMap(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.W != lm.W || back.H != lm.H {
			t.Fatal("round trip changed dimensions")
		}
		for i := range lm.Labels {
			if back.Labels[i] != lm.Labels[i] {
				t.Fatalf("round trip changed label %d", i)
			}
		}
	})
}

// FuzzResize drives Resize and ResizeLabels with arbitrary target
// dimensions: zero and negative targets must error, never panic, and
// accepted targets must produce exactly-sized output.
func FuzzResize(f *testing.F) {
	f.Add(4, 4, 8, 8)
	f.Add(16, 9, 1, 1)
	f.Add(3, 5, 0, 7)    // zero width
	f.Add(3, 5, 7, -2)   // negative height
	f.Add(1, 1, -1, -1)  // both negative
	f.Add(7, 3, 200, 10) // upscale
	f.Fuzz(func(t *testing.T, srcW, srcH, dstW, dstH int) {
		// The source must be a legal image (NewImage panics otherwise by
		// contract); the *target* dimensions are the attack surface.
		if srcW < 1 || srcH < 1 || srcW > 64 || srcH > 64 {
			return
		}
		// Cap accepted targets only to bound allocation, far above any
		// boundary case worth exploring.
		if dstW > 1<<12 || dstH > 1<<12 {
			return
		}
		im := NewImage(srcW, srcH)
		for i := range im.C0 {
			im.C0[i], im.C1[i], im.C2[i] = uint8(i), uint8(i*3), uint8(i*7)
		}
		out, err := Resize(im, dstW, dstH)
		if dstW <= 0 || dstH <= 0 {
			if err == nil {
				t.Fatalf("Resize accepted target %dx%d", dstW, dstH)
			}
		} else if err != nil {
			t.Fatalf("Resize rejected legal target %dx%d: %v", dstW, dstH, err)
		} else if out.W != dstW || out.H != dstH || len(out.C0) != dstW*dstH {
			t.Fatalf("Resize produced %dx%d (plane %d) for target %dx%d",
				out.W, out.H, len(out.C0), dstW, dstH)
		}

		lm := NewLabelMap(srcW, srcH)
		for i := range lm.Labels {
			lm.Labels[i] = int32(i % 9)
		}
		lout, err := ResizeLabels(lm, dstW, dstH)
		if dstW <= 0 || dstH <= 0 {
			if err == nil {
				t.Fatalf("ResizeLabels accepted target %dx%d", dstW, dstH)
			}
			return
		}
		if err != nil {
			t.Fatalf("ResizeLabels rejected legal target %dx%d: %v", dstW, dstH, err)
		}
		if lout.W != dstW || lout.H != dstH || len(lout.Labels) != dstW*dstH {
			t.Fatalf("ResizeLabels produced %dx%d for target %dx%d", lout.W, lout.H, dstW, dstH)
		}
	})
}

// FuzzDecodePGM mirrors FuzzDecodePPM for the single-channel codec.
func FuzzDecodePGM(f *testing.F) {
	for _, s := range [][]byte{
		[]byte("P5\n2 2\n255\nabcd"),
		[]byte("P2\n1 2\n255\n0 128"),
		[]byte("P5\n1 1\n0\nx"),
		[]byte("P2\n-1 1\n255\n"),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		w, h, vals, err := DecodePGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if w <= 0 || h <= 0 || len(vals) != w*h {
			t.Fatalf("inconsistent PGM decode: %dx%d, %d values", w, h, len(vals))
		}
	})
}
