package imgio

import (
	"bytes"
	"testing"
)

// FuzzDecodePPM drives the PPM parser with arbitrary bytes: it must
// never panic, and any successfully decoded image must re-encode.
// `go test` runs the seed corpus; `go test -fuzz=FuzzDecodePPM` explores.
func FuzzDecodePPM(f *testing.F) {
	seeds := [][]byte{
		[]byte("P6\n2 2\n255\n0123456789AB"),
		[]byte("P3\n1 1\n255\n1 2 3"),
		[]byte("P6\n# comment\n1 1\n255\nabc"),
		[]byte("P6\n0 0\n255\n"),
		[]byte("P5\n2 2\n255\nabcd"),
		[]byte(""),
		[]byte("P6"),
		[]byte("P6\n99999999 99999999\n255\n"),
		[]byte("P3\n2 1\n255\n300 -4 12 1 2 3"),
		[]byte("P6\n2 2\n15\n0123456789AB"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocations from hostile headers: the
		// decoder must reject anything it cannot back with actual data,
		// so a size cap on the input suffices.
		if len(data) > 1<<16 {
			return
		}
		im, err := DecodePPM(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded images must be internally consistent and re-encodable.
		if im.W <= 0 || im.H <= 0 {
			t.Fatalf("decoder accepted dimensions %dx%d", im.W, im.H)
		}
		if len(im.C0) != im.W*im.H {
			t.Fatalf("plane size %d for %dx%d", len(im.C0), im.W, im.H)
		}
		var buf bytes.Buffer
		if err := EncodePPM(&buf, im); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodePPM(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.W != im.W || back.H != im.H {
			t.Fatal("round trip changed dimensions")
		}
	})
}

// FuzzDecodePGM mirrors FuzzDecodePPM for the single-channel codec.
func FuzzDecodePGM(f *testing.F) {
	for _, s := range [][]byte{
		[]byte("P5\n2 2\n255\nabcd"),
		[]byte("P2\n1 2\n255\n0 128"),
		[]byte("P5\n1 1\n0\nx"),
		[]byte("P2\n-1 1\n255\n"),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		w, h, vals, err := DecodePGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if w <= 0 || h <= 0 || len(vals) != w*h {
			t.Fatalf("inconsistent PGM decode: %dx%d, %d values", w, h, len(vals))
		}
	})
}
