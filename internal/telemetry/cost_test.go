package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestCostAccumulatesAndSnapshots(t *testing.T) {
	c := NewCost()
	c.AddCPU(10 * time.Millisecond)
	c.AddCPU(5 * time.Millisecond)
	c.AddAlloc(1024)
	c.AddQueueWait(2 * time.Millisecond)
	c.AddDecode(time.Millisecond)
	c.AddSegment(12 * time.Millisecond)
	c.AddEncode(3 * time.Millisecond)
	c.AddEnergyPJ(1.5e9)
	c.AddEnergyPJ(0.5e9)

	s := c.Snapshot()
	if s.CPUNs != int64(15*time.Millisecond) {
		t.Fatalf("cpu = %d, want 15ms", s.CPUNs)
	}
	if s.AllocBytes != 1024 {
		t.Fatalf("alloc = %d, want 1024", s.AllocBytes)
	}
	if s.QueueWaitNs != int64(2*time.Millisecond) || s.DecodeNs != int64(time.Millisecond) ||
		s.SegmentNs != int64(12*time.Millisecond) || s.EncodeNs != int64(3*time.Millisecond) {
		t.Fatalf("stage times wrong: %+v", s)
	}
	if s.EstPJ != 2e9 {
		t.Fatalf("est_pj = %g, want 2e9", s.EstPJ)
	}
}

func TestCostNilSafe(t *testing.T) {
	var c *Cost
	// Every method must be callable on nil — the uninstrumented path.
	c.AddCPU(time.Second)
	c.AddAlloc(1)
	c.AddQueueWait(time.Second)
	c.AddDecode(time.Second)
	c.AddSegment(time.Second)
	c.AddEncode(time.Second)
	c.AddEnergyPJ(1)
	if s := c.Snapshot(); s != (CostSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}

func TestCostIgnoresNonPositive(t *testing.T) {
	c := NewCost()
	c.AddCPU(-time.Second)
	c.AddAlloc(-5)
	c.AddEnergyPJ(-1)
	if s := c.Snapshot(); s != (CostSnapshot{}) {
		t.Fatalf("negative charges recorded: %+v", s)
	}
}

func TestCostContextRoundTrip(t *testing.T) {
	c := NewCost()
	ctx := WithCost(context.Background(), c)
	if got := CostFrom(ctx); got != c {
		t.Fatalf("CostFrom returned %p, want %p", got, c)
	}
	if got := CostFrom(context.Background()); got != nil {
		t.Fatalf("CostFrom(empty ctx) = %p, want nil", got)
	}
	if got := CostFrom(nil); got != nil { //nolint:staticcheck // nil ctx is the contract under test
		t.Fatalf("CostFrom(nil) = %p, want nil", got)
	}
	// WithCost(nil) must not panic and must pass the context through.
	if got := WithCost(ctx, nil); got != ctx {
		t.Fatalf("WithCost(ctx, nil) replaced the context")
	}
}

func TestCostConcurrentCharges(t *testing.T) {
	c := NewCost()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddCPU(time.Microsecond)
				c.AddAlloc(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.CPUNs != 8*1000*int64(time.Microsecond) || s.AllocBytes != 8000 {
		t.Fatalf("concurrent totals = %d ns / %d bytes, want 8000us / 8000", s.CPUNs, s.AllocBytes)
	}
}
