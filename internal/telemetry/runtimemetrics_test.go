package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
)

func TestRuntimeMetricsSample(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	// Generate some heap and GC traffic so the cumulative series move.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	runtime.GC()
	_ = sink
	rm.Sample()

	if v := reg.Gauge("sslic_go_goroutines", "").Value(); v < 1 {
		t.Fatalf("goroutines gauge = %g, want >= 1", v)
	}
	if v := reg.Gauge("sslic_go_heap_bytes", "").Value(); v <= 0 {
		t.Fatalf("heap gauge = %g, want > 0", v)
	}
	if v := reg.Counter("sslic_go_alloc_bytes_total", "").Value(); v <= 0 {
		t.Fatalf("alloc counter = %g, want > 0", v)
	}
	if v := reg.Counter("sslic_go_gc_cycles_total", "").Value(); v < 1 {
		t.Fatalf("gc cycles counter = %g, want >= 1 after runtime.GC", v)
	}
}

func TestRuntimeMetricsCounterMonotone(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	alloc := reg.Counter("sslic_go_alloc_bytes_total", "")
	var last float64
	for i := 0; i < 3; i++ {
		_ = make([]byte, 1<<20)
		rm.Sample()
		if v := alloc.Value(); v < last {
			t.Fatalf("alloc counter went backwards: %g -> %g", last, v)
		} else {
			last = v
		}
	}
}

func TestRuntimeMetricsSnapshot(t *testing.T) {
	rm := NewRuntimeMetrics(NewRegistry())
	rm.Sample()
	snap := rm.Snapshot()
	for _, key := range []string{"goroutines", "heap_bytes", "alloc_bytes_total", "gc_cycles_total"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("snapshot missing %q: %v", key, snap)
		}
	}
	// Snapshot must be a copy, not a view of internal state.
	snap["goroutines"] = -1
	if rm.Snapshot()["goroutines"] == -1 {
		t.Fatalf("snapshot aliases internal state")
	}
	// Nil receiver is the disabled path.
	var nilRM *RuntimeMetrics
	nilRM.Sample()
	if nilRM.Snapshot() != nil {
		t.Fatalf("nil Snapshot should be nil")
	}
}

func TestHistQuantileRuntimeBuckets(t *testing.T) {
	// Runtime histograms carry ±Inf boundary buckets; the estimator
	// must stay finite.
	buckets := []float64{math.Inf(-1), 1e-9, 1e-6, 1e-3, math.Inf(1)}
	counts := []uint64{0, 5, 5, 0}
	if q := histQuantile(buckets, counts, 0.5); q <= 0 || q > 1e-6 {
		t.Fatalf("p50 = %g, want within (0, 1e-6]", q)
	}
	// Mass in the +Inf bucket returns the last finite bound.
	counts = []uint64{0, 0, 0, 3}
	if q := histQuantile(buckets, counts, 0.99); q != 1e-3 {
		t.Fatalf("overflow-bucket quantile = %g, want 1e-3", q)
	}
	if q := histQuantile(buckets, []uint64{0, 0, 0, 0}, 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestHistDeltaMismatchedPrev(t *testing.T) {
	// A runtime-side bucket layout change (different length) must reset
	// the delta to cur rather than mix layouts.
	cur := &metrics.Float64Histogram{
		Counts:  []uint64{3, 4},
		Buckets: []float64{0, 1, 2},
	}
	if d := histDelta(cur, []uint64{1}); d[0] != 3 || d[1] != 4 {
		t.Fatalf("mismatched delta = %v, want cur passthrough", d)
	}
	if d := histDelta(cur, []uint64{1, 1}); d[0] != 2 || d[1] != 3 {
		t.Fatalf("delta = %v, want {2,3}", d)
	}
	// A prev count larger than cur (layout reuse after reset) clamps
	// to cur instead of underflowing.
	if d := histDelta(cur, []uint64{5, 1}); d[0] != 3 || d[1] != 3 {
		t.Fatalf("wrapped delta = %v, want {3,3}", d)
	}
}
