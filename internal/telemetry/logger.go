package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// LoggerConfig configures a structured logger.
type LoggerConfig struct {
	// Output receives the log stream; nil selects os.Stderr.
	Output io.Writer
	// JSON selects slog's JSON handler instead of the text handler.
	JSON bool
	// Level is the default level for components without an override.
	Level slog.Level
}

// Logger is a log/slog front end with per-component levels: every
// subsystem gets its own named slog.Logger whose level can be raised or
// lowered independently at runtime (turn the pipeline to debug while the
// hw model stays at info).
type Logger struct {
	inner slog.Handler
	def   slog.Level

	mu     sync.Mutex
	levels map[string]*slog.LevelVar
}

// NewLogger builds a logger from the configuration.
func NewLogger(cfg LoggerConfig) *Logger {
	w := cfg.Output
	if w == nil {
		w = os.Stderr
	}
	// The inner handler passes everything; filtering happens per
	// component in componentHandler so levels stay independently tunable.
	opts := &slog.HandlerOptions{Level: slog.Level(-128)}
	var h slog.Handler
	if cfg.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return &Logger{inner: h, def: cfg.Level, levels: map[string]*slog.LevelVar{}}
}

// Component returns the named component's logger. Records carry a
// component attribute and are filtered by that component's level.
func (l *Logger) Component(name string) *slog.Logger {
	h := &componentHandler{inner: l.inner, level: l.levelVar(name)}
	return slog.New(h).With("component", name)
}

// SetLevel overrides one component's level at runtime.
func (l *Logger) SetLevel(component string, level slog.Level) {
	l.levelVar(component).Set(level)
}

func (l *Logger) levelVar(component string) *slog.LevelVar {
	l.mu.Lock()
	defer l.mu.Unlock()
	lv := l.levels[component]
	if lv == nil {
		lv = &slog.LevelVar{}
		lv.Set(l.def)
		l.levels[component] = lv
	}
	return lv
}

// componentHandler gates an inner handler on a component's LevelVar and
// stamps trace-context correlation onto every record.
type componentHandler struct {
	inner slog.Handler
	level *slog.LevelVar
}

func (h *componentHandler) Enabled(_ context.Context, lvl slog.Level) bool {
	return lvl >= h.level.Level()
}

// Handle appends trace_id when the record was logged under an active
// trace (a *Context logging call whose ctx carries one), so log lines
// and flight-recorder traces cross-reference both ways.
func (h *componentHandler) Handle(ctx context.Context, r slog.Record) error {
	if tr := TraceFrom(ctx); tr != nil {
		r.AddAttrs(slog.String("trace_id", tr.ID()))
	}
	return h.inner.Handle(ctx, r)
}

func (h *componentHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &componentHandler{inner: h.inner.WithAttrs(attrs), level: h.level}
}

func (h *componentHandler) WithGroup(name string) slog.Handler {
	return &componentHandler{inner: h.inner.WithGroup(name), level: h.level}
}

// ParseLevel maps the conventional level names (debug, info, warn,
// error, case-insensitive) to slog levels, for flag parsing.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}
