package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func startTestServer(t *testing.T) (*Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, reg
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv, reg := startTestServer(t)
	reg.Counter("demo_frames_total", "Frames.").Add(3)
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "demo_frames_total 3\n") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE demo_frames_total counter") {
		t.Fatalf("/metrics missing TYPE line:\n%s", body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "telemetry") {
		t.Fatalf("/debug/vars = %d, body %q", code, truncate(body))
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, body %q", code, truncate(body))
	}

	// A short trace proves the pprof suite is usable while metrics are
	// scraped (acceptance: /metrics and profiling simultaneously).
	code, _ = get(t, base+"/debug/pprof/trace?seconds=0.05")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/trace = %d", code)
	}
}

func TestServerContentType(t *testing.T) {
	srv, _ := startTestServer(t)
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	if !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q", ct)
	}
}

func TestServerRequiresRegistry(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatalf("nil registry accepted")
	}
}

func TestServerLiveUpdates(t *testing.T) {
	srv, reg := startTestServer(t)
	c := reg.Counter("live_total", "")
	base := "http://" + srv.Addr()
	for i := 1; i <= 3; i++ {
		c.Inc()
		_, body := get(t, base+"/metrics")
		want := fmt.Sprintf("live_total %d\n", i)
		if !strings.Contains(body, want) {
			t.Fatalf("scrape %d missing %q", i, want)
		}
	}
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "…"
	}
	return s
}
