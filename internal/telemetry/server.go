package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerConfig configures the telemetry HTTP server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":9090" or "127.0.0.1:0".
	Addr string
	// Registry backs /metrics; required.
	Registry *Registry
	// Recorder, when set, backs /debug/trace and /debug/traces so stored
	// flight-recorder traces are fetchable by ID.
	Recorder *FlightRecorder
	// SLO, when set, is mounted at /debug/slo (the slo package's
	// Handler — an http.Handler field keeps the import direction
	// telemetry ← slo).
	SLO http.Handler
	// Profiles, when set, is mounted at /debug/profiles
	// (ProfilesHandler over a Capturer).
	Profiles http.Handler
	// Streams, when set, is mounted at /debug/streams (the quality
	// tracker's per-stream introspection JSON; same import-direction
	// trick as SLO).
	Streams http.Handler
	// Tenants, when set, is mounted at /debug/tenants (the server's
	// per-tenant admission/quota/breaker health JSON).
	Tenants http.Handler
	// Logger, when set, logs server lifecycle events under the
	// "telemetry" component.
	Logger *Logger
}

// Server serves the observability endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       200 "ok" liveness probe
//	/debug/vars    expvar JSON (stdlib expvars plus the registry bridge)
//	/debug/pprof/  the full net/http/pprof suite (profile, heap, trace, …)
//	/debug/traces  recent flight-recorder traces (JSON summaries)
//	/debug/trace   one stored trace by ?id=, as Chrome trace_event JSON
//	               (loadable in chrome://tracing / Perfetto) or ?format=json
//	/debug/slo     SLO objectives, error budgets and burn rates (JSON),
//	               when an engine is wired
//	/debug/streams per-stream segmentation health: warm age, degrade
//	               level history, delta hit ratio, live quality proxies
//	               and the quality floor, when a tracker is wired
//	/debug/profiles  captured pprof bundles (list / fetch / on-demand
//	               capture), when a capturer is wired
//
// so a live stream can be scraped, CPU-profiled and trace-replayed at
// the same time.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// NewServer binds the listen address and returns a server ready to
// Serve. Binding eagerly (instead of inside Serve) lets callers use
// ":0" and read the resolved Addr before any request arrives.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("telemetry: server needs a registry")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", cfg.Addr, err)
	}
	cfg.Registry.PublishExpvar("telemetry")

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if cfg.Recorder != nil {
		mux.Handle("/debug/trace", TraceHandler(cfg.Recorder))
		mux.Handle("/debug/traces", TraceListHandler(cfg.Recorder))
	}
	if cfg.SLO != nil {
		mux.Handle("/debug/slo", cfg.SLO)
	}
	if cfg.Profiles != nil {
		mux.Handle("/debug/profiles", cfg.Profiles)
	}
	if cfg.Streams != nil {
		mux.Handle("/debug/streams", cfg.Streams)
	}
	if cfg.Tenants != nil {
		mux.Handle("/debug/tenants", cfg.Tenants)
	}
	// The pprof handlers are registered explicitly: this mux is private,
	// so nothing leaks onto http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	if cfg.Logger != nil {
		cfg.Logger.Component("telemetry").Info("telemetry server listening", "addr", s.Addr())
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve starts serving in a background goroutine and returns
// immediately.
func (s *Server) Serve() {
	go s.srv.Serve(s.ln)
}

// Close shuts the server down, allowing a short grace period for
// in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
