package telemetry

import (
	"context"
	"log/slog"
	"strings"
	"time"
)

// Spans is a per-frame span family: Start/End pairs feed a latency
// histogram plus an in-flight gauge and a started counter, and can
// optionally emit slog trace events. One Spans instance corresponds to
// one labeled series set (e.g. stage="segment"), so a stall in one
// pipeline stage is visible from the endpoint alone: its in-flight gauge
// sticks above zero while its completion count stops moving.
//
// Spans are trace-aware: StartCtx binds the span to the context's
// request trace, so ending it both appends an interval event to the
// flight recorder and stamps the histogram's exemplar when the span is
// the slowest traced observation so far — the link from a bad p99 on a
// scrape to the exact stored trace that caused it.
type Spans struct {
	hist     *Histogram
	inflight *Gauge
	started  *Counter
	log      *slog.Logger // nil disables trace events
	name     string
	track    string
}

// NewSpans registers the span family's metrics under name: a histogram
// <name>_seconds, a gauge <name>_in_flight and a counter
// <name>_started_total, all carrying the given labels. A nil log
// disables trace events; buckets nil selects DefBuckets.
func NewSpans(reg *Registry, name, help string, buckets []float64, log *slog.Logger, labels ...Label) *Spans {
	return &Spans{
		hist:     reg.Histogram(name+"_seconds", help, buckets, labels...),
		inflight: reg.Gauge(name+"_in_flight", "Spans started but not yet ended.", labels...),
		started:  reg.Counter(name+"_started_total", "Spans started.", labels...),
		log:      log,
		name:     name,
		track:    trackOf(name, labels),
	}
}

// trackOf derives the flight-recorder track from the metric name: the
// component token after the "sslic_" prefix ("sslic_pool_job" → "pool"),
// refined by a stage label when present so pipeline stages land on
// separate timeline rows.
func trackOf(name string, labels []Label) string {
	track := strings.TrimPrefix(name, "sslic_")
	if i := strings.IndexByte(track, '_'); i > 0 {
		track = track[:i]
	}
	for _, l := range labels {
		if l.Name == "stage" {
			track += ":" + l.Value
		}
	}
	return track
}

// Snapshot reads the underlying latency histogram.
func (s *Spans) Snapshot() HistogramSnapshot { return s.hist.Snapshot() }

// InFlight returns the number of open spans.
func (s *Spans) InFlight() float64 { return s.inflight.Value() }

// Span is one open interval. End or Abort it exactly once.
type Span struct {
	family *Spans
	t0     time.Time
	attrs  []any
	trace  *Trace
}

// Start opens an untraced span. The attrs are slog key-value pairs
// attached to the optional trace events only (e.g. "frame", 42) — they
// do not create metric series, so unbounded values like frame indices
// are safe.
func (s *Spans) Start(attrs ...any) Span {
	return s.StartCtx(context.Background(), attrs...)
}

// StartCtx opens a span bound to the context's trace (if any): ending
// it appends an interval event to that trace and carries the trace ID
// into slog lines and the histogram exemplar.
func (s *Spans) StartCtx(ctx context.Context, attrs ...any) Span {
	s.started.Inc()
	s.inflight.Add(1)
	if s.log != nil && s.log.Enabled(ctx, slog.LevelDebug) {
		s.log.DebugContext(ctx, "span start", append([]any{"span", s.name}, attrs...)...)
	}
	return Span{family: s, t0: time.Now(), attrs: attrs, trace: TraceFrom(ctx)}
}

// End closes the span, records its duration into the histogram (with
// the trace ID as exemplar for traced spans), emits the trace event,
// and returns the duration.
func (sp Span) End() time.Duration {
	d := time.Since(sp.t0)
	f := sp.family
	f.inflight.Add(-1)
	f.hist.ObserveExemplar(d.Seconds(), sp.trace.ID())
	if sp.trace != nil {
		sp.trace.Emit(f.name, f.track, sp.t0, d, attrsToArgs(sp.attrs))
	}
	if f.log != nil && f.log.Enabled(context.Background(), slog.LevelDebug) {
		ctx := WithTrace(context.Background(), sp.trace)
		f.log.DebugContext(ctx, "span end", append([]any{"span", f.name, "seconds", d.Seconds()}, sp.attrs...)...)
	}
	return d
}

// Abort closes the span without recording a duration — for error paths
// where the measured work did not complete. The in-flight gauge is
// decremented so it keeps reflecting open work; traced spans still emit
// the interval event, flagged aborted, so failed work stays visible on
// the timeline.
func (sp Span) Abort() {
	f := sp.family
	f.inflight.Add(-1)
	if sp.trace != nil {
		args := attrsToArgs(sp.attrs)
		if args == nil {
			args = map[string]any{}
		}
		args["aborted"] = true
		sp.trace.Emit(f.name, f.track, sp.t0, time.Since(sp.t0), args)
	}
	if f.log != nil && f.log.Enabled(context.Background(), slog.LevelDebug) {
		ctx := WithTrace(context.Background(), sp.trace)
		f.log.DebugContext(ctx, "span abort", append([]any{"span", f.name}, sp.attrs...)...)
	}
}

// attrsToArgs converts slog-style alternating key-value attrs into the
// trace event's args map. Returns nil for empty attrs so untraced spans
// allocate nothing.
func attrsToArgs(attrs []any) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(attrs)/2)
	for i := 0; i+1 < len(attrs); i += 2 {
		k, ok := attrs[i].(string)
		if !ok {
			continue
		}
		args[k] = attrs[i+1]
	}
	return args
}
