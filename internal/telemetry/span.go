package telemetry

import (
	"context"
	"log/slog"
	"time"
)

// Spans is a per-frame span family: Start/End pairs feed a latency
// histogram plus an in-flight gauge and a started counter, and can
// optionally emit slog trace events. One Spans instance corresponds to
// one labeled series set (e.g. stage="segment"), so a stall in one
// pipeline stage is visible from the endpoint alone: its in-flight gauge
// sticks above zero while its completion count stops moving.
type Spans struct {
	hist     *Histogram
	inflight *Gauge
	started  *Counter
	log      *slog.Logger // nil disables trace events
	name     string
}

// NewSpans registers the span family's metrics under name: a histogram
// <name>_seconds, a gauge <name>_in_flight and a counter
// <name>_started_total, all carrying the given labels. A nil log
// disables trace events; buckets nil selects DefBuckets.
func NewSpans(reg *Registry, name, help string, buckets []float64, log *slog.Logger, labels ...Label) *Spans {
	return &Spans{
		hist:     reg.Histogram(name+"_seconds", help, buckets, labels...),
		inflight: reg.Gauge(name+"_in_flight", "Spans started but not yet ended.", labels...),
		started:  reg.Counter(name+"_started_total", "Spans started.", labels...),
		log:      log,
		name:     name,
	}
}

// Snapshot reads the underlying latency histogram.
func (s *Spans) Snapshot() HistogramSnapshot { return s.hist.Snapshot() }

// InFlight returns the number of open spans.
func (s *Spans) InFlight() float64 { return s.inflight.Value() }

// Span is one open interval. End or Abort it exactly once.
type Span struct {
	family *Spans
	t0     time.Time
	attrs  []any
}

// Start opens a span. The attrs are slog key-value pairs attached to the
// optional trace events only (e.g. "frame", 42) — they do not create
// metric series, so unbounded values like frame indices are safe.
func (s *Spans) Start(attrs ...any) Span {
	s.started.Inc()
	s.inflight.Add(1)
	if s.log != nil && s.log.Enabled(context.Background(), slog.LevelDebug) {
		s.log.Debug("span start", append([]any{"span", s.name}, attrs...)...)
	}
	return Span{family: s, t0: time.Now(), attrs: attrs}
}

// End closes the span, records its duration into the histogram, and
// returns it.
func (sp Span) End() time.Duration {
	d := time.Since(sp.t0)
	f := sp.family
	f.inflight.Add(-1)
	f.hist.Observe(d.Seconds())
	if f.log != nil && f.log.Enabled(context.Background(), slog.LevelDebug) {
		f.log.Debug("span end", append([]any{"span", f.name, "seconds", d.Seconds()}, sp.attrs...)...)
	}
	return d
}

// Abort closes the span without recording a duration — for error paths
// where the measured work did not complete. The in-flight gauge is
// decremented so it keeps reflecting open work.
func (sp Span) Abort() {
	f := sp.family
	f.inflight.Add(-1)
	if f.log != nil && f.log.Enabled(context.Background(), slog.LevelDebug) {
		f.log.Debug("span abort", append([]any{"span", f.name}, sp.attrs...)...)
	}
}
