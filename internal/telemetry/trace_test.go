package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTraceLifecycle(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 8, SlowThreshold: time.Hour}, nil)
	tr := fr.StartTrace("req-1", true)
	if tr.ID() != "req-1" {
		t.Fatalf("ID = %q, want req-1", tr.ID())
	}
	t0 := time.Now()
	tr.Emit("decode", "server", t0, time.Millisecond, map[string]any{"width": 64})
	tr.Instant("dram_charge", "hw", nil)
	tr.Finish()
	tr.Finish() // idempotent

	td := fr.Lookup("req-1")
	if td == nil {
		t.Fatal("forced trace not retained")
	}
	if td.Status != "ok" || td.Err != "" {
		t.Fatalf("status = %q err = %q, want ok", td.Status, td.Err)
	}
	if len(td.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(td.Events))
	}
	if td.Events[0].Name != "decode" || td.Events[0].Track != "server" {
		t.Fatalf("event 0 = %+v", td.Events[0])
	}
	if td.Events[1].Dur != 0 {
		t.Fatalf("instant event has Dur %v", td.Events[1].Dur)
	}
	// Finishing twice must not double-record.
	if got := fr.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestTraceError(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 8, SlowThreshold: time.Hour}, nil)
	tr := fr.StartTrace("", false) // generated ID, head-sampled out (rate 0)
	tr.SetError(errors.New("decode failed"))
	tr.SetError(errors.New("second error ignored"))
	tr.Finish()
	td := fr.Lookup(tr.ID())
	if td == nil {
		t.Fatal("errored trace must be tail-kept even with HeadRate 0")
	}
	if td.Status != "error" || td.Err != "decode failed" {
		t.Fatalf("status = %q err = %q", td.Status, td.Err)
	}
}

func TestTraceSampling(t *testing.T) {
	// HeadRate 0 and a huge slow threshold: an ordinary ok trace is
	// discarded at Finish.
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 8, SlowThreshold: time.Hour}, nil)
	tr := fr.StartTrace("ordinary", false)
	tr.Finish()
	if fr.Lookup("ordinary") != nil {
		t.Fatal("ordinary trace kept despite HeadRate 0")
	}

	// A 1ns slow threshold tail-keeps everything.
	fr = NewFlightRecorder(FlightRecorderConfig{Capacity: 8, SlowThreshold: time.Nanosecond}, nil)
	tr = fr.StartTrace("slow", false)
	time.Sleep(10 * time.Microsecond)
	tr.Finish()
	if fr.Lookup("slow") == nil {
		t.Fatal("slow trace not tail-kept")
	}

	// HeadRate 1 keeps ordinary traces.
	fr = NewFlightRecorder(FlightRecorderConfig{Capacity: 8, HeadRate: 1, SlowThreshold: time.Hour}, nil)
	tr = fr.StartTrace("headkeep", false)
	tr.Finish()
	if fr.Lookup("headkeep") == nil {
		t.Fatal("HeadRate 1 trace not kept")
	}
}

func TestHeadSampleDeterministic(t *testing.T) {
	for _, id := range []string{"a", "b", "trace-123", "x:y.z"} {
		first := headSample(id, 0.5)
		for i := 0; i < 10; i++ {
			if headSample(id, 0.5) != first {
				t.Fatalf("headSample(%q) not deterministic", id)
			}
		}
	}
	// The hash should land roughly uniformly: over many IDs a 0.5 rate
	// keeps somewhere well inside (0, 1).
	kept := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if headSample(fmt.Sprintf("trace-%d", i), 0.5) {
			kept++
		}
	}
	if kept < n/4 || kept > 3*n/4 {
		t.Fatalf("headSample(0.5) kept %d of %d, badly non-uniform", kept, n)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 4, SlowThreshold: time.Hour}, nil)
	for i := 0; i < 10; i++ {
		tr := fr.StartTrace(fmt.Sprintf("t%d", i), true)
		tr.Finish()
	}
	if got := fr.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	for i := 0; i < 6; i++ {
		if fr.Lookup(fmt.Sprintf("t%d", i)) != nil {
			t.Fatalf("t%d survived wraparound", i)
		}
	}
	for i := 6; i < 10; i++ {
		if fr.Lookup(fmt.Sprintf("t%d", i)) == nil {
			t.Fatalf("t%d evicted too early", i)
		}
	}
	recent := fr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d, want 4", len(recent))
	}
	for i, want := range []string{"t9", "t8", "t7", "t6"} {
		if recent[i].ID != want {
			t.Fatalf("Recent[%d] = %s, want %s (newest first)", i, recent[i].ID, want)
		}
	}
	if got := fr.Recent(2); len(got) != 2 || got[0].ID != "t9" {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestTraceEventCap(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 2, SlowThreshold: time.Hour}, nil)
	tr := fr.StartTrace("big", true)
	for i := 0; i < maxEventsPerTrace+100; i++ {
		tr.Instant("tick", "test", nil)
	}
	tr.Finish()
	td := fr.Lookup("big")
	if td == nil {
		t.Fatal("trace missing")
	}
	if len(td.Events) != maxEventsPerTrace {
		t.Fatalf("got %d events, want cap %d", len(td.Events), maxEventsPerTrace)
	}
	if td.Dropped != 100 {
		t.Fatalf("Dropped = %d, want 100", td.Dropped)
	}
}

// TestTraceConcurrentWriters exercises the lock-light append path under
// the race detector: many goroutines emit into one live trace while
// others finish sibling traces and read the recorder.
func TestTraceConcurrentWriters(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 16, SlowThreshold: time.Hour}, nil)
	tr := fr.StartTrace("hot", true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit("ev", "test", time.Now(), time.Microsecond, map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	// Concurrent churn on the recorder itself.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sib := fr.StartTrace(fmt.Sprintf("sib-%d-%d", g, i), true)
				sib.Instant("tick", "test", nil)
				sib.Finish()
				fr.Lookup("hot")
				fr.Recent(4)
			}
		}(g)
	}
	wg.Wait()
	tr.Finish()
	td := fr.Lookup("hot")
	if td == nil {
		t.Fatal("hot trace missing")
	}
	if len(td.Events) != 8*200 {
		t.Fatalf("got %d events, want %d", len(td.Events), 8*200)
	}
}

func TestNilSafety(t *testing.T) {
	var fr *FlightRecorder
	tr := fr.StartTrace("x", true)
	if tr != nil {
		t.Fatal("nil recorder must return nil trace")
	}
	// Every method must no-op on the nil trace.
	tr.Emit("e", "t", time.Now(), time.Second, nil)
	tr.Instant("i", "t", nil)
	tr.SetError(errors.New("x"))
	tr.Finish()
	if tr.ID() != "" {
		t.Fatal("nil ID")
	}
	if fr.Lookup("x") != nil || fr.Recent(1) != nil || fr.Len() != 0 {
		t.Fatal("nil recorder reads must be empty")
	}
	ctx := context.Background()
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("WithTrace(nil) must return ctx unchanged")
	}
	if TraceFrom(ctx) != nil {
		t.Fatal("TraceFrom on plain ctx")
	}
}

func TestTraceContext(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{}, nil)
	tr := fr.StartTrace("ctx-1", true)
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %v, want the stored trace", got)
	}
}

func TestValidTraceID(t *testing.T) {
	good := []string{"a", "req-1", "A.b_c:d-9", strings.Repeat("x", 64)}
	for _, id := range good {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	bad := []string{"", strings.Repeat("x", 65), "has space", "semi;colon", "new\nline", "quote\"", "slash/"}
	for _, id := range bad {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("generated ID %q invalid", id)
		}
		if seen[id] {
			t.Fatalf("duplicate generated ID %q", id)
		}
		seen[id] = true
	}
}

func TestRecorderCounters(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 4, SlowThreshold: time.Hour}, reg)
	fr.StartTrace("keep", true).Finish()
	fr.StartTrace("drop", false).Finish()
	if got := fr.started.Value(); got != 2 {
		t.Fatalf("started = %v, want 2", got)
	}
	if got := fr.kept.Value(); got != 1 {
		t.Fatalf("kept = %v, want 1", got)
	}
	if got := fr.discards.Value(); got != 1 {
		t.Fatalf("discarded = %v, want 1", got)
	}
}

// goldenTraceData is a hand-built trace with fixed timestamps so the
// Chrome export is byte-stable.
func goldenTraceData() *TraceData {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(us int64) time.Time { return start.Add(time.Duration(us) * time.Microsecond) }
	return &TraceData{
		ID:     "golden-1",
		Start:  start,
		Dur:    5 * time.Millisecond,
		Status: "error",
		Err:    "deadline exceeded",
		Events: []TraceEvent{
			{Name: "decode", Track: "server", Start: at(100), Dur: 300 * time.Microsecond,
				Args: map[string]any{"width": 64, "height": 48}},
			{Name: "queue_wait", Track: "pool", Start: at(400), Dur: 50 * time.Microsecond},
			{Name: "pass", Track: "sslic", Start: at(500), Dur: 1200 * time.Microsecond,
				Args: map[string]any{"pass": 0, "subset": 0, "arch": "PPA", "distance_calcs": 9216}},
			{Name: "pass", Track: "sslic", Start: at(1800), Dur: 1100 * time.Microsecond,
				Args: map[string]any{"pass": 1, "subset": 1, "arch": "PPA", "distance_calcs": 9216}},
			{Name: "dram_charge", Track: "hw", Start: at(3000),
				Args: map[string]any{"bytes": 123456}},
			{Name: "encode", Track: "server", Start: at(3100), Dur: 900 * time.Microsecond},
		},
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTraceData()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrometrace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome export drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTraceData()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   *int64         `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	phases := map[string]int{}
	names := map[string]int{}
	tids := map[int]bool{}
	for _, ev := range out.TraceEvents {
		phases[ev.Phase]++
		names[ev.Name]++
		tids[ev.TID] = true
	}
	// 1 root X + 5 interval X; 1 instant; 5 tracks (trace, server, pool,
	// sslic, hw) → 5 thread_name metadata events.
	if phases["X"] != 6 || phases["i"] != 1 || phases["M"] != 5 {
		t.Fatalf("phase counts = %v", phases)
	}
	if names["pass"] != 2 {
		t.Fatalf("pass events = %d, want 2", names["pass"])
	}
	if len(tids) != 5 {
		t.Fatalf("distinct tids = %d, want 5 tracks", len(tids))
	}
	// The root interval carries the error annotation.
	root := out.TraceEvents[0]
	if root.Name != "trace golden-1" || root.TS != 0 || root.Dur == nil || *root.Dur != 5000 {
		t.Fatalf("root event = %+v", root)
	}
	if root.Args["status"] != "error" || root.Args["err"] != "deadline exceeded" {
		t.Fatalf("root args = %v", root.Args)
	}
}

func TestTraceHandler(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 4, SlowThreshold: time.Hour}, nil)
	tr := fr.StartTrace("web-1", true)
	tr.Emit("decode", "server", time.Now(), time.Millisecond, nil)
	tr.Finish()
	h := TraceHandler(fr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id=web-1", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"traceEvents"`) {
		t.Fatal("default rendering is not Chrome trace_event JSON")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id=web-1&format=json", nil))
	var td TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil {
		t.Fatalf("raw format: %v", err)
	}
	if td.ID != "web-1" || len(td.Events) != 1 {
		t.Fatalf("raw trace = %+v", td)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 400 {
		t.Fatalf("missing id status = %d, want 400", rec.Code)
	}
}

func TestTraceListHandler(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 8, SlowThreshold: time.Hour}, nil)
	for i := 0; i < 3; i++ {
		fr.StartTrace(fmt.Sprintf("list-%d", i), true).Finish()
	}
	h := TraceListHandler(fr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=2", nil))
	var out struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 2 || out.Traces[0].ID != "list-2" {
		t.Fatalf("traces = %+v", out.Traces)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=zero", nil))
	if rec.Code != 400 {
		t.Fatalf("invalid n status = %d, want 400", rec.Code)
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", "t.", []float64{0.1, 1})
	h.ObserveExemplar(0.5, "trace-a")
	h.ObserveExemplar(2.0, "trace-b")
	h.ObserveExemplar(1.0, "trace-c") // smaller than the max: must not displace
	h.Observe(5.0)                    // no trace: must not displace either
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Exemplar == nil || snap.Exemplar.TraceID != "trace-b" || snap.Exemplar.Value != 2.0 {
		t.Fatalf("exemplar = %+v, want trace-b at 2.0", snap.Exemplar)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `# exemplar test_seconds trace_id="trace-b"`) {
		t.Fatalf("exemplar comment missing from exposition:\n%s", buf.String())
	}
	h.ClearExemplar()
	if h.Snapshot().Exemplar != nil {
		t.Fatal("ClearExemplar left the exemplar")
	}
}

func TestLoggerTraceID(t *testing.T) {
	var buf bytes.Buffer
	logs := NewLogger(LoggerConfig{JSON: true, Level: slog.LevelDebug, Output: &buf})
	log := logs.Component("test")
	fr := NewFlightRecorder(FlightRecorderConfig{}, nil)
	tr := fr.StartTrace("log-1", true)
	ctx := WithTrace(context.Background(), tr)
	log.InfoContext(ctx, "traced line")
	log.Info("untraced line")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], `"trace_id":"log-1"`) {
		t.Fatalf("traced line missing trace_id: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Fatalf("untraced line has trace_id: %s", lines[1])
	}
}
