package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE header, series sorted by label key, histograms
// with cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", s.labels, "", s.c.Value())
			case kindGauge:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.g.Value()
				}
				writeSample(bw, f.name, "", s.labels, "", v)
			case kindHistogram:
				snap := s.h.Snapshot()
				var cum uint64
				for i, b := range snap.Bounds {
					cum += snap.Counts[i]
					writeSample(bw, f.name, "_bucket", s.labels, formatFloat(b), float64(cum))
				}
				cum += snap.Counts[len(snap.Bounds)]
				writeSample(bw, f.name, "_bucket", s.labels, "+Inf", float64(cum))
				writeSample(bw, f.name, "_sum", s.labels, "", snap.Sum)
				writeSample(bw, f.name, "_count", s.labels, "", float64(snap.Count))
				if ex := snap.Exemplar; ex != nil {
					// Rendered as a plain comment (the 0.0.4 text format has
					// no exemplar syntax): parsers skip it, humans and the
					// golden test read the slowest observation's trace ID.
					bw.WriteString("# exemplar ")
					bw.WriteString(f.name)
					bw.WriteString(` trace_id="`)
					bw.WriteString(escapeLabelValue(ex.TraceID))
					bw.WriteString(`" value=`)
					bw.WriteString(formatFloat(ex.Value))
					bw.WriteByte('\n')
				}
			}
		}
	}
	return bw.Flush()
}

// writeSample renders one line: name[suffix]{labels,le="bound"} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros, everything else in Go's shortest 'g' form, infinities
// as +Inf/-Inf per the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }
