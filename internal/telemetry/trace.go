package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing is the per-request half of the observability layer: where the
// registry answers "how is the fleet doing in aggregate", a trace
// answers "where inside THIS slow frame did the time go". Every request
// (or pipeline frame) carries a Trace through its context.Context; each
// layer it crosses — HTTP decode, admission queue, every S-SLIC subset
// pass, the hardware model's DRAM charging — appends timestamped events
// to it. Finished traces land in a FlightRecorder: an always-on,
// fixed-memory ring that overwrites the oldest trace, so the last N
// interesting requests are reconstructable after the fact without any
// external collector.
//
// Sampling is two-sided. Head sampling is decided at trace creation
// from a deterministic hash of the ID, so a fixed fraction of ordinary
// traffic is always retained. Tail sampling is decided at Finish:
// traces that errored or exceeded the slow threshold are kept
// regardless of the head decision — the whole point of a flight
// recorder is that the bad flight is on it. Client-forced traces
// (an explicit X-Trace-Id) are always kept.

// TraceEvent is one timestamped occurrence inside a trace. Dur == 0
// marks an instant event (a point annotation, e.g. a DRAM charge);
// Dur > 0 marks a completed interval.
type TraceEvent struct {
	// Name identifies the operation: "decode", "queue_wait", "pass", …
	Name string `json:"name"`
	// Track groups events onto one timeline row in the Chrome export:
	// "server", "pool", "sslic", "hw", …
	Track string `json:"track"`
	// Start is the event's wall-clock start.
	Start time.Time `json:"start"`
	// Dur is the interval length; 0 for instant events.
	Dur time.Duration `json:"dur_ns"`
	// Args carry event-specific attributes (pass index, byte counts, …).
	Args map[string]any `json:"args,omitempty"`
}

// maxEventsPerTrace bounds one trace's memory. A 1080p request at the
// paper's settings emits ~1 event per subset pass (≤ iters × subsets,
// typically ≤ 40) plus a handful of framing events, so 4096 leaves two
// orders of magnitude of headroom before dropping.
const maxEventsPerTrace = 4096

// Trace is one live request's event collector. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so instrumented code
// needs no "is tracing on" branches.
type Trace struct {
	id       string
	rec      *FlightRecorder
	start    time.Time
	forced   bool
	headKeep bool

	mu      sync.Mutex
	events  []TraceEvent
	dropped int
	errMsg  string

	finished atomic.Bool
}

// ID returns the trace identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Emit appends one interval event. Safe from any goroutine; silently
// drops (and counts) events beyond the per-trace cap.
func (t *Trace) Emit(name, track string, start time.Time, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= maxEventsPerTrace {
		t.dropped++
	} else {
		t.events = append(t.events, TraceEvent{Name: name, Track: track, Start: start, Dur: dur, Args: args})
	}
	t.mu.Unlock()
}

// Instant appends a zero-duration point event at the current time.
func (t *Trace) Instant(name, track string, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(name, track, time.Now(), 0, args)
}

// SetError marks the trace as failed, which forces tail retention.
func (t *Trace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	if t.errMsg == "" {
		t.errMsg = err.Error()
	}
	t.mu.Unlock()
}

// Finish seals the trace and hands it to the recorder, which decides
// whether to keep it. Idempotent; only the first call records.
func (t *Trace) Finish() {
	if t == nil || t.rec == nil {
		return
	}
	if !t.finished.CompareAndSwap(false, true) {
		return
	}
	t.rec.finish(t)
}

// traceKey is the context key carrying a *Trace.
type traceKey struct{}

// WithTrace returns a context carrying the trace. A nil trace returns
// ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's trace, or nil when untraced. The nil
// result is safe to use directly: every Trace method no-ops on nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// idRand is a per-process random prefix so trace IDs from different
// processes (or restarts) cannot collide; idSeq disambiguates within
// the process.
var (
	idRand = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	idSeq atomic.Uint64
)

// NewTraceID returns a process-unique 16-hex-digit trace identifier.
func NewTraceID() string {
	return fmt.Sprintf("%08x%08x", uint32(idRand), uint32(idSeq.Add(1))+uint32(idRand>>32))
}

// ValidTraceID reports whether a client-supplied trace ID is acceptable:
// 1–64 bytes over [A-Za-z0-9._:-], the same alphabet as stream IDs, so
// an ID is always safe to echo into headers, logs and label values.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-', c == ':':
		default:
			return false
		}
	}
	return true
}

// TraceData is a finished, immutable trace as stored by the recorder.
type TraceData struct {
	ID     string        `json:"id"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Status string        `json:"status"` // "ok" or "error"
	Err    string        `json:"err,omitempty"`
	// Dropped counts events lost to the per-trace cap.
	Dropped int          `json:"dropped,omitempty"`
	Events  []TraceEvent `json:"events"`
}

// TraceSummary is the listing row /debug/traces serves.
type TraceSummary struct {
	ID     string        `json:"id"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Status string        `json:"status"`
	Events int           `json:"events"`
}

// FlightRecorderConfig sizes a FlightRecorder.
type FlightRecorderConfig struct {
	// Capacity is the number of finished traces retained; the oldest is
	// overwritten beyond it. <= 0 selects 256.
	Capacity int
	// HeadRate is the fraction of ordinary (non-forced, non-slow,
	// non-error) traces kept, in [0, 1]. 0 keeps none of them; 1 keeps
	// all. The decision is a deterministic hash of the trace ID.
	HeadRate float64
	// SlowThreshold is the tail-sampling latency bound: finished traces
	// at or above it are always kept. <= 0 selects 100ms (a third of the
	// paper's 33ms frame budget would trace every frame; 100ms flags
	// clear outliers without flooding the ring on slow hosts).
	SlowThreshold time.Duration
}

func (c FlightRecorderConfig) withDefaults() FlightRecorderConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	return c
}

// FlightRecorder is the fixed-memory ring of finished traces. Event
// appends never touch the recorder lock (they take only the owning
// trace's mutex); the recorder lock is held briefly at Finish, Lookup
// and Recent.
type FlightRecorder struct {
	cfg FlightRecorderConfig

	mu   sync.Mutex
	ring []*TraceData // fixed capacity, nil until filled
	next int          // ring insertion cursor
	byID map[string]*TraceData

	started  *Counter
	kept     *Counter
	discards *Counter
}

// NewFlightRecorder builds a recorder. The optional registry receives
// its bookkeeping counters (traces started / kept / discarded); nil
// skips registration.
func NewFlightRecorder(cfg FlightRecorderConfig, reg *Registry) *FlightRecorder {
	cfg = cfg.withDefaults()
	fr := &FlightRecorder{
		cfg:  cfg,
		ring: make([]*TraceData, cfg.Capacity),
		byID: make(map[string]*TraceData, cfg.Capacity),
	}
	if reg != nil {
		fr.started = reg.Counter("sslic_trace_started_total",
			"Traces started by the flight recorder.")
		fr.kept = reg.Counter("sslic_trace_kept_total",
			"Finished traces retained in the flight-recorder ring.")
		fr.discards = reg.Counter("sslic_trace_discarded_total",
			"Finished traces dropped by head/tail sampling.")
	}
	return fr
}

// StartTrace opens a live trace under the given ID (empty generates
// one). forced marks the trace as always-keep — the path for explicit
// client-requested trace IDs. Safe on a nil recorder (returns nil, and
// every Trace method no-ops on nil).
func (fr *FlightRecorder) StartTrace(id string, forced bool) *Trace {
	if fr == nil {
		return nil
	}
	if id == "" {
		id = NewTraceID()
	}
	if fr.started != nil {
		fr.started.Inc()
	}
	return &Trace{
		id:       id,
		rec:      fr,
		start:    time.Now(),
		forced:   forced,
		headKeep: headSample(id, fr.cfg.HeadRate),
	}
}

// headSample hashes the ID onto [0, 1) and keeps it below rate — a
// deterministic per-trace coin flip (FNV-1a so no RNG state is shared).
func headSample(id string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return float64(h%(1<<20))/float64(1<<20) < rate
}

// finish seals a trace and applies the keep decision.
func (fr *FlightRecorder) finish(t *Trace) {
	dur := time.Since(t.start)
	t.mu.Lock()
	errMsg := t.errMsg
	events := t.events
	dropped := t.dropped
	t.events = nil // the recorder owns the slice now
	t.mu.Unlock()

	keep := t.forced || t.headKeep || errMsg != "" || dur >= fr.cfg.SlowThreshold
	if !keep {
		if fr.discards != nil {
			fr.discards.Inc()
		}
		return
	}
	status := "ok"
	if errMsg != "" {
		status = "error"
	}
	td := &TraceData{
		ID: t.id, Start: t.start, Dur: dur,
		Status: status, Err: errMsg, Dropped: dropped, Events: events,
	}
	fr.mu.Lock()
	if old := fr.ring[fr.next]; old != nil {
		delete(fr.byID, old.ID)
	}
	fr.ring[fr.next] = td
	fr.next = (fr.next + 1) % len(fr.ring)
	fr.byID[td.ID] = td
	fr.mu.Unlock()
	if fr.kept != nil {
		fr.kept.Inc()
	}
}

// Lookup returns the stored trace with the given ID, or nil.
func (fr *FlightRecorder) Lookup(id string) *TraceData {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.byID[id]
}

// Recent returns summaries of up to n stored traces, newest first.
// n <= 0 returns all.
func (fr *FlightRecorder) Recent(n int) []TraceSummary {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	cap := len(fr.ring)
	if n <= 0 || n > cap {
		n = cap
	}
	out := make([]TraceSummary, 0, n)
	// Walk backwards from the insertion cursor: newest first.
	for i := 1; i <= cap && len(out) < n; i++ {
		td := fr.ring[(fr.next-i+cap)%cap]
		if td == nil {
			continue
		}
		out = append(out, TraceSummary{
			ID: td.ID, Start: td.Start, Dur: td.Dur,
			Status: td.Status, Events: len(td.Events),
		})
	}
	return out
}

// Len reports the number of stored traces.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.byID)
}
