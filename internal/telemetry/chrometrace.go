package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace_event export: a stored trace rendered in the JSON format
// chrome://tracing and Perfetto load directly, so a full frame timeline
// (decode → queue wait → every subset pass → encode, with the hardware
// model's charging ticks) is visually inspectable without bespoke
// tooling. Format reference: the Trace Event Format document the
// Catapult project publishes; we emit the JSON-object form with
// "traceEvents" plus thread-name metadata, using complete ("X") events
// for intervals and instant ("i") events for point annotations.

// chromeEvent is one trace_event entry. Field order here fixes the JSON
// key order, which the golden test relies on.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds since trace start
	Dur   *int64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the stored trace as Chrome trace_event JSON.
// Timestamps are microseconds relative to the trace start; each Track
// becomes a named thread so Perfetto shows one row per layer (server,
// pool, sslic, hw). Events are ordered by start time, the trace's
// overall interval first.
func WriteChromeTrace(w io.Writer, td *TraceData) error {
	// Stable track → tid assignment: tracks sorted by first appearance
	// keep the export deterministic for golden comparison.
	tids := map[string]int{}
	var trackNames []string
	tidFor := func(track string) int {
		if track == "" {
			track = "trace"
		}
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		trackNames = append(trackNames, track)
		return id
	}

	events := append([]TraceEvent(nil), td.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start.Before(events[j].Start) })

	var out chromeTrace
	out.DisplayTimeUnit = "ms"

	// The whole-trace interval anchors the timeline on its own row.
	rootDur := td.Dur.Microseconds()
	rootArgs := map[string]any{"status": td.Status}
	if td.Err != "" {
		rootArgs["err"] = td.Err
	}
	if td.Dropped > 0 {
		rootArgs["dropped_events"] = td.Dropped
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "trace " + td.ID, Phase: "X", TS: 0, Dur: &rootDur,
		PID: 1, TID: tidFor("trace"), Args: rootArgs,
	})

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Track,
			TS:   ev.Start.Sub(td.Start).Microseconds(),
			PID:  1,
			TID:  tidFor(ev.Track),
			Args: ev.Args,
		}
		if ev.Dur > 0 {
			d := ev.Dur.Microseconds()
			ce.Phase = "X"
			ce.Dur = &d
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	// Thread-name metadata lines let the viewer label each row.
	for _, track := range trackNames {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tids[track],
			Args: map[string]any{"name": track},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
