// Package testutil holds test-only observability helpers. It lives in
// its own package (not telemetry proper) so production binaries never
// link the testing package.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks registers a cleanup that fails the test if the process
// goroutine count has not returned to (near) its value at the call, a
// cheap end-of-test tripwire for the leak class this repo actually
// risks: abandoned pool attempts, undained pipeline stages, and server
// handlers blocked past shutdown.
//
// Call it first in the test, before the code under test starts any
// goroutines. The check polls with a grace period, because legitimate
// teardown (http.Server.Shutdown, pool Close, watchdog-abandoned
// attempts finishing late) finishes asynchronously; only a count still
// elevated after the full grace is a failure. A small tolerance
// absorbs runtime-internal goroutines (GC workers, timer threads) that
// come and go on their own.
func VerifyNoLeaks(t *testing.T) {
	t.Helper()
	VerifyNoLeaksWithin(t, 5*time.Second)
}

// VerifyNoLeaksWithin is VerifyNoLeaks with an explicit grace period.
func VerifyNoLeaksWithin(t *testing.T, grace time.Duration) {
	t.Helper()
	const tolerance = 3
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base+tolerance {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d at start, %d after %v grace\n%s", base, n, grace, buf)
	})
}
