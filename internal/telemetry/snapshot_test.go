package telemetry

import (
	"math"
	"testing"
)

// The SLO engine differentiates histograms every tick, so the window
// algebra's edge cases — empty windows, single-bucket mass, wraparound
// (a prev snapshot "newer" than cur), all-zero deltas — are load-bearing
// in a way the happy-path tests don't cover.

func TestSnapshotSubEmptyWindow(t *testing.T) {
	h := NewRegistry().Histogram("sub_empty_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	prev := h.Snapshot()
	win := h.Snapshot().Sub(prev) // no observations between snapshots
	if win.Count != 0 || win.Sum != 0 {
		t.Fatalf("empty window count/sum = %d/%g, want 0/0", win.Count, win.Sum)
	}
	for i, c := range win.Counts {
		if c != 0 {
			t.Fatalf("empty window bucket %d = %d, want 0", i, c)
		}
	}
	if q := win.Quantile(0.99); q != 0 {
		t.Fatalf("quantile of empty window = %g, want 0", q)
	}
	if m := win.Mean(); m != 0 {
		t.Fatalf("mean of empty window = %g, want 0", m)
	}
}

func TestSnapshotSubSingleBucketMass(t *testing.T) {
	h := NewRegistry().Histogram("sub_single_seconds", "", []float64{1, 2, 4})
	h.Observe(0.1)
	prev := h.Snapshot()
	// All window mass lands in one interior bucket.
	for i := 0; i < 7; i++ {
		h.Observe(1.5)
	}
	win := h.Snapshot().Sub(prev)
	if win.Count != 7 {
		t.Fatalf("window count = %d, want 7", win.Count)
	}
	if win.Counts[0] != 0 || win.Counts[1] != 7 || win.Counts[2] != 0 {
		t.Fatalf("window buckets = %v, want mass only in bucket 1", win.Counts)
	}
	// Every quantile of a single-bucket window stays inside that
	// bucket's bounds.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		got := win.Quantile(q)
		if got < 1 || got > 2 {
			t.Fatalf("q%.2f = %g, escaped the (1,2] bucket", q, got)
		}
	}
	if got := win.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("q1 of single-bucket window = %g, want upper bound 2", got)
	}
}

func TestSnapshotSubWraparound(t *testing.T) {
	h := NewRegistry().Histogram("sub_wrap_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(0.5)
	stale := h.Snapshot()
	// Simulate a restarted/replaced histogram: cur has FEWER
	// observations than prev. Sub must treat the stale prev as empty
	// rather than produce underflowed uint64 counts.
	fresh := NewRegistry().Histogram("sub_wrap_seconds", "", []float64{1})
	fresh.Observe(0.25)
	win := fresh.Snapshot().Sub(stale)
	if win.Count != 1 {
		t.Fatalf("wraparound window count = %d, want cur's 1", win.Count)
	}
	if win.Counts[0] != 1 {
		t.Fatalf("wraparound window buckets = %v, want cur's counts", win.Counts)
	}
	if q := win.Quantile(0.5); q < 0 || q > 1 {
		t.Fatalf("wraparound quantile = %g, outside cur's range", q)
	}
}

func TestSnapshotSubMismatchedLayout(t *testing.T) {
	cur := NewRegistry().Histogram("sub_layout_a_seconds", "", []float64{1, 2})
	cur.Observe(0.5)
	prevH := NewRegistry().Histogram("sub_layout_b_seconds", "", []float64{1, 2, 4})
	prevH.Observe(0.5)
	win := cur.Snapshot().Sub(prevH.Snapshot())
	if win.Count != 1 || len(win.Counts) != 3 {
		t.Fatalf("mismatched-layout Sub = count %d / %d buckets, want cur passthrough (1 / 3)",
			win.Count, len(win.Counts))
	}
}

func TestSnapshotQuantileAllZeroDeltas(t *testing.T) {
	// A window whose Count is nonzero but whose bucket deltas are all
	// zero cannot happen from Sub on one histogram, but a hand-built
	// inconsistent snapshot must not loop or divide by zero.
	s := HistogramSnapshot{
		Count:  3,
		Bounds: []float64{1, 2},
		Counts: []uint64{0, 0, 0},
	}
	got := s.Quantile(0.5)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("all-zero-delta quantile = %g, want a finite value", got)
	}
	if got != 2 {
		t.Fatalf("all-zero-delta quantile = %g, want highest bound 2", got)
	}
}
