package telemetry

import (
	"context"
	"sync/atomic"
	"time"
)

// Cost is a per-request cost ledger: the request-scoped half of the
// cost-accounting layer, the same way Trace is the request-scoped half
// of tracing. It rides the request context through every layer; each
// layer charges what it spent (queue wait at the pool, CPU and buffer
// allocations in the segmentation core, decode/encode at the HTTP
// front), and the server folds the final ledger into X-Cost-* response
// headers, a trace event, and per-stream registry series.
//
// The paper argues in budgets — cycles, bytes and picojoules per frame
// (Table 4) — and this ledger is that budget evaluated per served
// request: how much CPU, allocation and estimated accelerator energy
// this exact frame cost.
//
// All methods are atomic, safe from any goroutine, and no-ops on a nil
// receiver, so instrumented code needs no "is accounting on" branches —
// the same contract as Trace.
type Cost struct {
	cpuNs       atomic.Int64
	allocBytes  atomic.Int64
	queueWaitNs atomic.Int64
	decodeNs    atomic.Int64
	segmentNs   atomic.Int64
	encodeNs    atomic.Int64
	estPJ       atomicFloat
}

// NewCost returns an empty ledger.
func NewCost() *Cost { return &Cost{} }

// AddCPU charges compute time: the busy time the request's work spent
// on-CPU (on the serial segmentation path this equals the summed phase
// wall times; tiled runs charge the per-band sum).
func (c *Cost) AddCPU(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.cpuNs.Add(int64(d))
}

// AddAlloc charges bytes of fresh buffer allocation attributable to the
// request (decoded planes, label maps, render buffers). Pooled reuse is
// deliberately not charged — the ledger reports what the request cost,
// not what it borrowed.
func (c *Cost) AddAlloc(bytes int64) {
	if c == nil || bytes <= 0 {
		return
	}
	c.allocBytes.Add(bytes)
}

// AddQueueWait charges time spent admitted but not yet running.
func (c *Cost) AddQueueWait(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.queueWaitNs.Add(int64(d))
}

// AddDecode, AddSegment and AddEncode charge per-stage wall time.
func (c *Cost) AddDecode(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.decodeNs.Add(int64(d))
}

// AddSegment charges segmentation wall time (queueing excluded).
func (c *Cost) AddSegment(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.segmentNs.Add(int64(d))
}

// AddEncode charges response-encoding wall time.
func (c *Cost) AddEncode(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.encodeNs.Add(int64(d))
}

// AddEnergyPJ charges estimated accelerator energy in picojoules (the
// hw analytic model's per-frame estimate).
func (c *Cost) AddEnergyPJ(pj float64) {
	if c == nil || pj <= 0 {
		return
	}
	c.estPJ.Add(pj)
}

// CostSnapshot is a point-in-time read of a ledger.
type CostSnapshot struct {
	// CPUNs is charged compute time in nanoseconds.
	CPUNs int64 `json:"cpu_ns"`
	// AllocBytes is charged fresh buffer allocation.
	AllocBytes int64 `json:"alloc_bytes"`
	// QueueWaitNs, DecodeNs, SegmentNs, EncodeNs are per-stage wall
	// times in nanoseconds.
	QueueWaitNs int64 `json:"queue_wait_ns"`
	DecodeNs    int64 `json:"decode_ns"`
	SegmentNs   int64 `json:"segment_ns"`
	EncodeNs    int64 `json:"encode_ns"`
	// EstPJ is the hw analytic model's estimated energy in picojoules.
	EstPJ float64 `json:"est_pj"`
}

// Snapshot reads the ledger. Zero on a nil receiver.
func (c *Cost) Snapshot() CostSnapshot {
	if c == nil {
		return CostSnapshot{}
	}
	return CostSnapshot{
		CPUNs:       c.cpuNs.Load(),
		AllocBytes:  c.allocBytes.Load(),
		QueueWaitNs: c.queueWaitNs.Load(),
		DecodeNs:    c.decodeNs.Load(),
		SegmentNs:   c.segmentNs.Load(),
		EncodeNs:    c.encodeNs.Load(),
		EstPJ:       c.estPJ.Load(),
	}
}

// costKey is the context key carrying a *Cost.
type costKey struct{}

// WithCost returns a context carrying the ledger. A nil ledger returns
// ctx unchanged.
func WithCost(ctx context.Context, c *Cost) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, costKey{}, c)
}

// CostFrom extracts the context's ledger, or nil when unaccounted. The
// nil result is safe to use directly: every Cost method no-ops on nil.
func CostFrom(ctx context.Context) *Cost {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(costKey{}).(*Cost)
	return c
}
