package telemetry

import (
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestSpanRecordsHistogram(t *testing.T) {
	reg := NewRegistry()
	spans := NewSpans(reg, "stage", "Stage time.", nil, nil, Label{"stage", "segment"})

	sp := spans.Start()
	if got := spans.InFlight(); got != 1 {
		t.Fatalf("in-flight = %g, want 1", got)
	}
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if got := spans.InFlight(); got != 0 {
		t.Fatalf("in-flight after End = %g", got)
	}
	snap := spans.Snapshot()
	if snap.Count != 1 || snap.Sum <= 0 {
		t.Fatalf("histogram count=%d sum=%g", snap.Count, snap.Sum)
	}

	// The metrics surface under the conventional names.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`stage_seconds_count{stage="segment"} 1`,
		`stage_in_flight{stage="segment"} 0`,
		`stage_started_total{stage="segment"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSpanAbort(t *testing.T) {
	reg := NewRegistry()
	spans := NewSpans(reg, "work", "", nil, nil)
	sp := spans.Start()
	sp.Abort()
	if got := spans.InFlight(); got != 0 {
		t.Fatalf("in-flight after Abort = %g", got)
	}
	if snap := spans.Snapshot(); snap.Count != 0 {
		t.Fatalf("aborted span recorded a duration")
	}
	if got := reg.Counter("work_started_total", "").Value(); got != 1 {
		t.Fatalf("started counter = %g, want 1", got)
	}
}

func TestSpanTraceEvents(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(LoggerConfig{Output: &b, Level: slog.LevelDebug})
	reg := NewRegistry()
	spans := NewSpans(reg, "frame", "", nil, lg.Component("pipeline"))

	spans.Start("frame", 42).End()
	out := b.String()
	if !strings.Contains(out, "span start") || !strings.Contains(out, "span end") {
		t.Fatalf("trace events missing: %q", out)
	}
	if !strings.Contains(out, "frame=42") {
		t.Fatalf("span attrs missing: %q", out)
	}

	// At info level, trace events are suppressed but metrics still flow.
	b.Reset()
	lg.SetLevel("pipeline", slog.LevelInfo)
	spans.Start().End()
	if b.Len() != 0 {
		t.Fatalf("trace events leaked at info: %q", b.String())
	}
	if snap := spans.Snapshot(); snap.Count != 2 {
		t.Fatalf("span count = %d, want 2", snap.Count)
	}
}
