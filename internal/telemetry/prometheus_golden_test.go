package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition output: family sort
// order, HELP/TYPE lines, label rendering and escaping, histogram bucket
// cumulativity with _sum/_count, and value formatting. Any format drift
// breaks real scrapers, so this is a byte-for-byte golden test.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()

	reg.Counter("sslic_frames_total", "Frames segmented.").Add(42)
	reg.Counter("sslic_stage_frames_total", "Per-stage frames.", Label{"stage", "source"}).Add(7)
	reg.Counter("sslic_stage_frames_total", "Per-stage frames.", Label{"stage", "segment"}).Add(5)
	reg.Gauge("sslic_residual", "Mean center movement.").Set(0.25)
	reg.Gauge("sslic_weird_label", "Escaping.", Label{"path", "a\\b\"c\nd"}).Set(1)
	reg.GaugeFunc("sslic_hit_ratio", "Derived ratio.", func() float64 { return 0.5 })

	h := reg.Histogram("sslic_latency_seconds", "Per-frame latency.", []float64{0.1, 0.5, 2})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(10)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}

	want := `# HELP sslic_frames_total Frames segmented.
# TYPE sslic_frames_total counter
sslic_frames_total 42
# HELP sslic_hit_ratio Derived ratio.
# TYPE sslic_hit_ratio gauge
sslic_hit_ratio 0.5
# HELP sslic_latency_seconds Per-frame latency.
# TYPE sslic_latency_seconds histogram
sslic_latency_seconds_bucket{le="0.1"} 2
sslic_latency_seconds_bucket{le="0.5"} 3
sslic_latency_seconds_bucket{le="2"} 3
sslic_latency_seconds_bucket{le="+Inf"} 4
sslic_latency_seconds_sum 10.4
sslic_latency_seconds_count 4
# HELP sslic_residual Mean center movement.
# TYPE sslic_residual gauge
sslic_residual 0.25
# HELP sslic_stage_frames_total Per-stage frames.
# TYPE sslic_stage_frames_total counter
sslic_stage_frames_total{stage="segment"} 5
sslic_stage_frames_total{stage="source"} 7
# HELP sslic_weird_label Escaping.
# TYPE sslic_weird_label gauge
sslic_weird_label{path="a\\b\"c\nd"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusHelpEscaping covers the HELP-line escaping rules, which
// differ from label-value escaping (no quote escaping).
func TestPrometheusHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "line one\nback\\slash \"quotes stay\"")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := "# HELP c_total line one\\nback\\\\slash \"quotes stay\"\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("help escaping:\n got %q\nwant substring %q", b.String(), want)
	}
}

// TestPrometheusLabeledHistogram checks that le composes with series
// labels and that per-series bucket counts stay independent.
func TestPrometheusLabeledHistogram(t *testing.T) {
	reg := NewRegistry()
	src := reg.Histogram("stage_seconds", "", []float64{1}, Label{"stage", "source"})
	snk := reg.Histogram("stage_seconds", "", []float64{1}, Label{"stage", "sink"})
	src.Observe(0.5)
	snk.Observe(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, line := range []string{
		`stage_seconds_bucket{stage="source",le="1"} 1`,
		`stage_seconds_bucket{stage="source",le="+Inf"} 1`,
		`stage_seconds_bucket{stage="sink",le="1"} 0`,
		`stage_seconds_bucket{stage="sink",le="+Inf"} 1`,
		`stage_seconds_sum{stage="sink"} 3`,
		`stage_seconds_count{stage="source"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		-3:      "-3",
		0.25:    "0.25",
		1.5e-9:  "1.5e-09",
		1e21:    "1e+21",
		2.5e+15: "2.5e+15",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}
