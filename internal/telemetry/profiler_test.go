package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func testCapturer(t *testing.T, cfg CaptureConfig) *Capturer {
	t.Helper()
	if cfg.CPUDuration == 0 {
		cfg.CPUDuration = 10 * time.Millisecond // keep tests fast
	}
	return NewCapturer(cfg)
}

func TestCaptureProducesBundle(t *testing.T) {
	reg := NewRegistry()
	c := testCapturer(t, CaptureConfig{
		Registry: reg,
		TraceIDs: func() []string { return []string{"t1", "t2"} },
		Runtime:  func() map[string]float64 { return map[string]float64{"goroutines": 7} },
	})
	b, err := c.Capture("on-demand")
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if b.ID != "p1" || b.Reason != "on-demand" {
		t.Fatalf("bundle id/reason = %s/%s", b.ID, b.Reason)
	}
	if len(b.CPU) == 0 || len(b.Heap) == 0 || len(b.Goroutine) == 0 {
		t.Fatalf("bundle missing profiles: cpu=%d heap=%d goroutine=%d",
			len(b.CPU), len(b.Heap), len(b.Goroutine))
	}
	if len(b.TraceIDs) != 2 || b.Runtime["goroutines"] != 7 {
		t.Fatalf("bundle context not linked: %+v", b)
	}
	if v := reg.Counter("sslic_profile_captures_total", "").Value(); v != 1 {
		t.Fatalf("capture counter = %g, want 1", v)
	}
	if got := c.Lookup("p1"); got != b {
		t.Fatalf("Lookup(p1) = %p, want %p", got, b)
	}
}

func TestCaptureRingBounded(t *testing.T) {
	c := testCapturer(t, CaptureConfig{Capacity: 2, CPUDuration: time.Millisecond})
	for i := 0; i < 4; i++ {
		if _, err := c.Capture("on-demand"); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	bs := c.Bundles()
	if len(bs) != 2 {
		t.Fatalf("ring holds %d bundles, want 2", len(bs))
	}
	if bs[0].ID != "p4" || bs[1].ID != "p3" {
		t.Fatalf("ring order = %s,%s, want p4,p3 (newest first)", bs[0].ID, bs[1].ID)
	}
	if c.Lookup("p1") != nil {
		t.Fatalf("evicted bundle still findable")
	}
}

func TestTryCaptureCooldown(t *testing.T) {
	c := testCapturer(t, CaptureConfig{Cooldown: time.Hour, CPUDuration: time.Millisecond})
	if !c.TryCapture("burn:p99") {
		t.Fatalf("first TryCapture refused")
	}
	// Within cooldown: refused without blocking.
	for i := 0; i < 3; i++ {
		if c.TryCapture("burn:p99") {
			t.Fatalf("TryCapture %d ignored the cooldown", i)
		}
	}
	waitForIdle(t, c)
	if got := len(c.Bundles()); got != 1 {
		t.Fatalf("%d bundles after cooldown-limited burst, want 1", got)
	}
	if c.Bundles()[0].Reason != "burn:p99" {
		t.Fatalf("reason = %s", c.Bundles()[0].Reason)
	}
}

func TestNilCapturerSafe(t *testing.T) {
	var c *Capturer
	if c.TryCapture("x") {
		t.Fatalf("nil TryCapture returned true")
	}
	if _, err := c.Capture("x"); err == nil {
		t.Fatalf("nil Capture returned no error")
	}
	if c.Bundles() != nil || c.Lookup("p1") != nil {
		t.Fatalf("nil accessors returned data")
	}
}

func TestProfilesHandler(t *testing.T) {
	c := testCapturer(t, CaptureConfig{CPUDuration: time.Millisecond})

	// Empty listing first.
	rec := httptest.NewRecorder()
	ProfilesHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 200 {
		t.Fatalf("list status = %d", rec.Code)
	}

	// On-demand capture via the handler.
	rec = httptest.NewRecorder()
	ProfilesHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?capture=1", nil))
	if rec.Code != 200 {
		t.Fatalf("capture status = %d: %s", rec.Code, rec.Body.String())
	}
	var b ProfileBundle
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatalf("capture response not JSON: %v", err)
	}
	if b.ID == "" {
		t.Fatalf("capture response has no bundle ID")
	}

	// Raw pprof payload fetch.
	rec = httptest.NewRecorder()
	ProfilesHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?id="+b.ID+"&kind=heap", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("heap fetch status/len = %d/%d", rec.Code, rec.Body.Len())
	}

	// Unknown bundle and bad kind.
	rec = httptest.NewRecorder()
	ProfilesHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?id=p999", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	ProfilesHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?id="+b.ID+"&kind=wibble", nil))
	if rec.Code != 400 {
		t.Fatalf("bad kind status = %d, want 400", rec.Code)
	}

	// Nil capturer (profiling disabled).
	rec = httptest.NewRecorder()
	ProfilesHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 404 {
		t.Fatalf("nil capturer status = %d, want 404", rec.Code)
	}
}

// waitForIdle blocks until the capturer's async capture finishes.
func waitForIdle(t *testing.T, c *Capturer) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.active.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("capture did not finish")
		}
		time.Sleep(time.Millisecond)
	}
}
