package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentScrape hammers one registry from many writer
// goroutines — counters, gauges, histograms, and late registrations —
// while readers scrape /metrics-style expositions and expvar snapshots
// the whole time. Run under -race in CI, this is the proof that metric
// writes are safe from any goroutine while a scrape walks the registry.
func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_frames_total", "")
	g := reg.Gauge("race_queue_depth", "")
	h := reg.Histogram("race_latency_seconds", "", []float64{0.001, 0.01, 0.1})
	reg.GaugeFunc("race_derived", "", func() float64 { return c.Value() / 2 })

	const (
		writers    = 8
		scrapers   = 4
		iterations = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				c.Inc()
				g.Set(float64(i % 16))
				g.SetMax(float64(i % 32))
				h.Observe(float64(i%100) / 1000)
				// Late registration of both fresh and existing series,
				// racing the scrapers' family walk.
				reg.Counter("race_late_total", "", Label{"writer", fmt.Sprint(w % 2)}).Inc()
			}
		}()
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations/10; i++ {
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				reg.expvarSnapshot()
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != writers*iterations {
		t.Fatalf("counter = %g, want %d", got, writers*iterations)
	}
	snap := h.Snapshot()
	if snap.Count != writers*iterations {
		t.Fatalf("histogram count = %d, want %d", snap.Count, writers*iterations)
	}
	var bucketTotal uint64
	for _, n := range snap.Counts {
		bucketTotal += n
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}

	// A final scrape must be internally consistent: every cumulative
	// bucket sequence non-decreasing and ending at the series count.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	if !strings.Contains(b.String(), "race_latency_seconds_bucket{le=\"+Inf\"} 16000") {
		t.Fatalf("final scrape missing settled histogram count:\n%s", b.String())
	}
}
