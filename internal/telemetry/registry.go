// Package telemetry is the repo's unified observability layer: a
// zero-dependency metrics registry (atomic counters, gauges and
// fixed-bucket histograms) with Prometheus text-format exposition and an
// expvar bridge, a log/slog-based structured logger with per-component
// levels, a lightweight span API for per-frame latency tracking, and an
// HTTP server exposing /metrics, /healthz, /debug/vars and net/http/pprof.
//
// The paper's whole argument is quantitative — ops/iteration,
// MB/iteration, energy per frame — and this package makes those same
// quantities observable live on a running stream instead of only in
// one-shot CLI printouts. Every layer (the S-SLIC core, the frame
// pipeline, the hardware model) registers its counters here, so the
// Table 2/3 quantities are scrapable gauges.
//
// Concurrency: metric writes (Add, Inc, Set, Observe) are lock-free
// atomics safe from any goroutine. Registration takes a registry lock;
// register once at setup, then hand the returned handles to hot loops.
// Exposition takes a snapshot that is consistent enough for monitoring:
// individual atomics are read without a global pause, so a scrape racing
// a writer can see a histogram whose sum trails its count by an
// in-flight observation.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// metric kinds for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// atomicFloat is a float64 updated with compare-and-swap on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Load() float64 {
	return math.Float64frombits(f.bits.Load())
}

func (f *atomicFloat) Store(v float64) {
	f.bits.Store(math.Float64bits(v))
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// storeMax raises the value to v if v is larger.
func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// storeMin lowers the value to v if v is smaller.
func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter. Negative deltas are a programming error and
// panic: a counter that goes down breaks every rate() over it.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: counter add of negative %g", v))
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomicFloat
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add shifts the value by a (possibly negative) delta.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation the pipeline's queue-depth gauges use.
func (g *Gauge) SetMax(v float64) { g.v.storeMax(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets and
// tracks sum, count, min and max. Bucket bounds are set at registration
// and immutable. Observations are lock-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
	ex     atomic.Pointer[Exemplar]
}

// Exemplar links a histogram's slowest observation to the trace that
// produced it, so a bad p99 on a scrape leads directly to a stored
// flight-recorder trace instead of a grep through logs.
type Exemplar struct {
	// Value is the observed value (seconds for latency histograms).
	Value float64
	// TraceID identifies the trace that produced the observation.
	TraceID string
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
	h.min.Store(math.Inf(1))
	h.max.Store(math.Inf(-1))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search buys nothing at this size.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// ObserveExemplar records v like Observe and, when traceID is non-empty
// and v is the largest exemplar-carrying observation so far, attaches
// it as the histogram's exemplar. The update is a CAS loop on a
// pointer, so the hot path stays lock-free.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	for {
		old := h.ex.Load()
		if old != nil && old.Value >= v {
			return
		}
		if h.ex.CompareAndSwap(old, &Exemplar{Value: v, TraceID: traceID}) {
			return
		}
	}
}

// ClearExemplar drops the stored exemplar (tests and counter resets).
func (h *Histogram) ClearExemplar() { h.ex.Store(nil) }

// HistogramSnapshot is a point-in-time read of a histogram.
type HistogramSnapshot struct {
	// Count and Sum are the observation count and value sum.
	Count uint64
	Sum   float64
	// Min and Max are the extreme observed values; both are zero when
	// Count is zero.
	Min, Max float64
	// Bounds are the bucket upper bounds; Counts the per-bucket
	// (non-cumulative) observation counts, with Counts[len(Bounds)]
	// holding the overflow (+Inf) bucket.
	Bounds []float64
	Counts []uint64
	// Exemplar is the slowest trace-linked observation, nil when no
	// traced observation has been recorded.
	Exemplar *Exemplar
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Sub returns the windowed difference s − prev: the observations that
// arrived between the two snapshots of the same (monotone) histogram.
// Min, Max and Exemplar are not differentiable and are left zero. A
// zero-valued or mismatched prev (different bucket layout) is treated
// as empty, so the first window of a sampling loop needs no special
// case.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: append([]uint64(nil), s.Counts...),
	}
	if len(prev.Counts) != len(s.Counts) || prev.Count > s.Count {
		out.Count = s.Count
		out.Sum = s.Sum
		return out
	}
	out.Count = s.Count - prev.Count
	out.Sum = s.Sum - prev.Sum
	for i := range out.Counts {
		out.Counts[i] -= prev.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts with linear interpolation inside the target bucket — the same
// estimate Prometheus's histogram_quantile computes. Observations in
// the overflow bucket are credited to the highest finite bound (or Max
// when the snapshot carries one), so the estimate is conservative but
// bounded. Returns 0 when the snapshot is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	lower := 0.0
	for i, b := range s.Bounds {
		c := float64(s.Counts[i])
		if c > 0 && cum+c >= rank {
			return lower + (b-lower)*(rank-cum)/c
		}
		cum += c
		lower = b
	}
	// Target falls in the +Inf bucket.
	if s.Max > lower {
		return s.Max
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return s.Max
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Counts[len(h.bounds)] = h.inf.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	s.Exemplar = h.ex.Load()
	return s
}

// DefBuckets are the default latency buckets in seconds, matching the
// conventional Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// series is one labeled instance within a family.
type series struct {
	labels []Label
	key    string // rendered label key for dedup and sort
	c      *Counter
	g      *Gauge
	fn     func() float64 // gauge func; nil otherwise
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name, help string
	kind       string
	bounds     []float64 // histogram families only
	series     []*series
	byKey      map[string]*series
}

// Registry holds metric families and hands out series handles.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or retrieves) the counter series with the given
// name and labels. Registering the same name with a different metric
// kind panics — that is a wiring error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, nil, nil, labels)
	return s.c
}

// Gauge registers (or retrieves) the gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, nil, nil, labels)
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for derived quantities like hit ratios.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, fn, nil, labels)
}

// Histogram registers (or retrieves) the histogram series. A nil or
// empty buckets slice selects DefBuckets. All series of one histogram
// family share the bounds given at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	s := r.register(name, help, kindHistogram, nil, buckets, labels)
	return s.h
}

func (r *Registry) register(name, help, kind string, fn func() float64, buckets []float64, labels []Label) *series {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabelName(l.Name)
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
		if kind == kindHistogram {
			b := append([]float64(nil), buckets...)
			sort.Float64s(b)
			f.bounds = b
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	if s := f.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: sorted, key: key}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		if fn != nil {
			s.fn = fn
		} else {
			s.g = &Gauge{}
		}
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	return s
}

// snapshotFamilies returns the families sorted by name with their series
// slices copied, so exposition can iterate without holding the lock.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		cp := &family{name: f.name, help: f.help, kind: f.kind, bounds: f.bounds}
		cp.series = append(cp.series, f.series...)
		out = append(out, cp)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func labelKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	k := ""
	for _, l := range sorted {
		k += l.Name + "\x00" + l.Value + "\x00"
	}
	return k
}

func mustValidName(name string) {
	if !validName(name, true) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func mustValidLabelName(name string) {
	if !validName(name, false) || name == "le" {
		panic(fmt.Sprintf("telemetry: invalid label name %q", name))
	}
}

// validName checks the Prometheus identifier grammar; colons are legal
// in metric names only.
func validName(name string, allowColon bool) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
