package telemetry

import (
	"math"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("frames_total", "Frames.")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	// Re-registration returns the same series.
	if c2 := reg.Counter("frames_total", "Frames."); c2 != c {
		t.Fatalf("re-registration returned a new counter")
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative counter add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "").Add(-1)
}

func TestGaugeSetMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("queue_high_water", "")
	g.SetMax(3)
	g.SetMax(1)
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax lowered the gauge: %g", got)
	}
	g.Set(-2)
	g.Add(1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %g, want -1", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 7.0
	reg.GaugeFunc("derived", "", func() float64 { return v })
	snap := reg.expvarSnapshot()
	if snap["derived"] != 7.0 {
		t.Fatalf("gauge func snapshot = %v", snap["derived"])
	}
	v = 8
	if snap := reg.expvarSnapshot(); snap["derived"] != 8.0 {
		t.Fatalf("gauge func not re-evaluated: %v", snap["derived"])
	}
}

func TestHistogramSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 14 {
		t.Fatalf("sum = %g, want 14", s.Sum)
	}
	if s.Min != 0.5 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g, want 0.5/9", s.Min, s.Max)
	}
	if got := s.Mean(); got != 3.5 {
		t.Fatalf("mean = %g, want 3.5", got)
	}
	want := []uint64{1, 1, 1, 1} // one per bucket incl. +Inf overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewRegistry().Histogram("empty_seconds", "", nil)
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if len(s.Bounds) != len(DefBuckets) {
		t.Fatalf("nil buckets did not select DefBuckets")
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("win_seconds", "", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)
	prev := h.Snapshot()
	h.Observe(1.5)
	h.Observe(9)
	win := h.Snapshot().Sub(prev)
	if win.Count != 2 || win.Sum != 10.5 {
		t.Fatalf("window count/sum = %d/%g, want 2/10.5", win.Count, win.Sum)
	}
	want := []uint64{0, 1, 0, 1} // only the post-prev observations
	for i, w := range want {
		if win.Counts[i] != w {
			t.Fatalf("window bucket %d = %d, want %d", i, win.Counts[i], w)
		}
	}
	// A zero prev (first window) passes the full snapshot through.
	full := h.Snapshot().Sub(HistogramSnapshot{})
	if full.Count != 4 {
		t.Fatalf("zero-prev window count = %d, want 4", full.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "", []float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	// Median rank 10 lands exactly at the first bucket's upper bound.
	if got := s.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p50 = %g, want 10", got)
	}
	// p75 interpolates halfway into the second bucket: 10 + 10*(15-10)/10.
	if got := s.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p75 = %g, want 15", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.95); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	// Overflow-bucket quantiles cap at the observed max.
	h.Observe(100)
	if got := h.Snapshot().Quantile(1); got != 100 {
		t.Fatalf("p100 with overflow = %g, want max 100", got)
	}
	// A windowed snapshot (no Max) caps at the highest finite bound.
	win := h.Snapshot().Sub(HistogramSnapshot{Counts: make([]uint64, 4), Bounds: []float64{10, 20, 40}})
	if got := win.Quantile(1); got != 40 {
		t.Fatalf("windowed p100 = %g, want last bound 40", got)
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewRegistry().Histogram("b_seconds", "", []float64{1})
	h.Observe(1) // le="1" is inclusive
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 0 {
		t.Fatalf("boundary observation landed in %v, want first bucket", s.Counts)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("stage_total", "", Label{"stage", "source"})
	b := reg.Counter("stage_total", "", Label{"stage", "sink"})
	if a == b {
		t.Fatalf("different labels returned the same series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatalf("label series share state")
	}
	// Label order does not matter for identity.
	x := reg.Counter("multi_total", "", Label{"a", "1"}, Label{"b", "2"})
	y := reg.Counter("multi_total", "", Label{"b", "2"}, Label{"a", "1"})
	if x != y {
		t.Fatalf("label order created a second series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("thing", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	reg.Gauge("thing", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"", "1abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
	// "le" is reserved for histogram buckets.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("label name le did not panic")
			}
		}()
		NewRegistry().Counter("ok_total", "", Label{"le", "x"})
	}()
}

func TestAtomicFloatExtremes(t *testing.T) {
	var f atomicFloat
	f.Store(math.Inf(1))
	f.storeMin(2)
	if f.Load() != 2 {
		t.Fatalf("storeMin from +Inf = %g", f.Load())
	}
	f.Store(math.Inf(-1))
	f.storeMax(3)
	if f.Load() != 3 {
		t.Fatalf("storeMax from -Inf = %g", f.Load())
	}
}
