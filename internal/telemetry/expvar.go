package telemetry

import "expvar"

// PublishExpvar exposes the registry under the given name in the
// process-wide expvar namespace, so /debug/vars shows the same metrics
// as /metrics. Each metric renders as name{labels} → value; histograms
// render their count, sum, min, max and mean.
//
// expvar names are process-global and permanent: publishing the same
// name twice is a no-op for the second registry (the first wins), which
// keeps repeated setup in tests from panicking inside expvar.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.expvarSnapshot() }))
}

func (r *Registry) expvarSnapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			key := f.name
			if len(s.labels) > 0 {
				key += "{"
				for i, l := range s.labels {
					if i > 0 {
						key += ","
					}
					key += l.Name + `="` + escapeLabelValue(l.Value) + `"`
				}
				key += "}"
			}
			switch f.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindGauge:
				if s.fn != nil {
					out[key] = s.fn()
				} else {
					out[key] = s.g.Value()
				}
			case kindHistogram:
				snap := s.h.Snapshot()
				out[key] = map[string]any{
					"count": snap.Count,
					"sum":   snap.Sum,
					"min":   snap.Min,
					"max":   snap.Max,
					"mean":  snap.Mean(),
				}
			}
		}
	}
	return out
}
