package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// HTTP faces of the flight recorder. They are exported as plain
// handlers (rather than only wired inside NewServer) so tests and
// embedders can mount them on any mux.

// TraceHandler serves one stored trace by ?id=. The default rendering
// is Chrome trace_event JSON — pasteable into chrome://tracing or
// Perfetto — because the point of fetching a single trace is to look at
// its timeline; ?format=json returns the raw stored form instead.
func TraceHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		td := fr.Lookup(id)
		if td == nil {
			http.Error(w, "trace not found (evicted, sampled out, or never recorded)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if r.URL.Query().Get("format") == "json" {
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(td)
			return
		}
		WriteChromeTrace(w, td)
	})
}

// TraceListHandler serves summaries of the recorder's stored traces,
// newest first; ?n= limits the count.
func TraceListHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 1 {
				http.Error(w, "invalid n parameter", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		summaries := fr.Recent(n)
		if summaries == nil {
			summaries = []TraceSummary{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(struct {
			Traces []TraceSummary `json:"traces"`
		}{summaries})
	})
}
