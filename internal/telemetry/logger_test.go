package telemetry

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerComponentAttr(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(LoggerConfig{Output: &b, Level: slog.LevelInfo})
	lg.Component("pipeline").Info("frame done", "frame", 3)
	out := b.String()
	if !strings.Contains(out, "component=pipeline") || !strings.Contains(out, "frame=3") {
		t.Fatalf("log line missing attrs: %q", out)
	}
}

func TestLoggerPerComponentLevels(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(LoggerConfig{Output: &b, Level: slog.LevelInfo})
	pipe := lg.Component("pipeline")
	hw := lg.Component("hw")

	pipe.Debug("suppressed")
	if b.Len() != 0 {
		t.Fatalf("debug leaked at info level: %q", b.String())
	}

	// Raise only the pipeline component to debug.
	lg.SetLevel("pipeline", slog.LevelDebug)
	pipe.Debug("pipeline debug")
	hw.Debug("hw debug")
	out := b.String()
	if !strings.Contains(out, "pipeline debug") {
		t.Fatalf("pipeline debug suppressed after SetLevel: %q", out)
	}
	if strings.Contains(out, "hw debug") {
		t.Fatalf("hw debug leaked, levels not independent: %q", out)
	}

	// SetLevel applies retroactively to already-created loggers.
	lg.SetLevel("hw", slog.LevelError)
	b.Reset()
	hw.Warn("hw warn")
	if b.Len() != 0 {
		t.Fatalf("warn leaked at error level: %q", b.String())
	}
}

func TestLoggerJSON(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(LoggerConfig{Output: &b, JSON: true})
	lg.Component("video").Info("start", "frames", 8)
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &rec); err != nil {
		t.Fatalf("not JSON: %v in %q", err, b.String())
	}
	if rec["component"] != "video" || rec["msg"] != "start" || rec["frames"] != 8.0 {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestParseLevel(t *testing.T) {
	good := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"Info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range good {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Errorf("ParseLevel accepted junk")
	}
}
