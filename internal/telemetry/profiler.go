package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Capturer is the burn-triggered continuous-profiling layer: a bounded
// ring of pprof bundles, each pairing CPU/heap/goroutine profiles with
// a runtime-metrics snapshot and the trace IDs in flight at capture
// time. When the SLO engine reports budget burn (or an operator asks
// via /debug/profiles?capture=1), the capturer grabs one bundle — so a
// burning objective yields trace + profile + cost ledger for the same
// moment, not a page telling an operator to go reproduce the problem.
//
// Captures are serialized (one at a time; the Go runtime allows only
// one CPU profile anyway) and rate-limited by a cooldown so a
// persistently burning SLO cannot turn the service into a profiler.
type Capturer struct {
	cfg CaptureConfig

	active atomic.Bool // a capture is in progress
	lastNs atomic.Int64

	mu      sync.Mutex
	ring    []*ProfileBundle // newest last, bounded by Capacity
	nextSeq int

	captures *Counter // base; per-reason series via reason label
	errs     *Counter
}

// CaptureConfig tunes a Capturer.
type CaptureConfig struct {
	// Capacity bounds the retained bundles; the oldest is dropped
	// beyond it. <= 0 selects 8.
	Capacity int
	// CPUDuration is how long the CPU profile samples; <= 0 selects
	// 250ms. Heap and goroutine profiles are instantaneous.
	CPUDuration time.Duration
	// Cooldown is the minimum spacing between burn-triggered captures;
	// <= 0 selects 30s. On-demand captures (force=true) ignore it.
	Cooldown time.Duration
	// TraceIDs, when set, supplies the trace IDs to link into the
	// bundle (the server passes its in-flight set plus recent keeps).
	TraceIDs func() []string
	// Runtime, when set, supplies the runtime-metrics snapshot embedded
	// in the bundle (RuntimeMetrics.Snapshot).
	Runtime func() map[string]float64
	// Registry receives the capture counters; nil skips registration.
	Registry *Registry
}

func (c CaptureConfig) withDefaults() CaptureConfig {
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 250 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// ProfileBundle is one capture: the three pprof profiles plus the
// runtime and trace context they were taken in.
type ProfileBundle struct {
	// ID identifies the bundle ("p1", "p2", …).
	ID string `json:"id"`
	// Reason names the trigger: "burn:<objective>" or "on-demand".
	Reason string `json:"reason"`
	// Start is the capture start time; CPUDurNs the CPU sampling window.
	Start    time.Time `json:"start"`
	CPUDurNs int64     `json:"cpu_dur_ns"`
	// TraceIDs are the flight-recorder traces in flight or recently
	// kept at capture time — the join key back to per-request
	// timelines and cost ledgers.
	TraceIDs []string `json:"trace_ids,omitempty"`
	// Runtime is the runtime-metrics snapshot at capture time.
	Runtime map[string]float64 `json:"runtime,omitempty"`
	// Err records a partial capture (e.g. the CPU profiler was busy);
	// the other profiles are still present.
	Err string `json:"err,omitempty"`

	// The raw gzipped pprof payloads (not serialized in listings).
	CPU       []byte `json:"-"`
	Heap      []byte `json:"-"`
	Goroutine []byte `json:"-"`
}

// NewCapturer builds a capturer.
func NewCapturer(cfg CaptureConfig) *Capturer {
	cfg = cfg.withDefaults()
	c := &Capturer{cfg: cfg}
	if cfg.Registry != nil {
		c.captures = cfg.Registry.Counter("sslic_profile_captures_total",
			"Profile bundles captured.")
		c.errs = cfg.Registry.Counter("sslic_profile_capture_errors_total",
			"Profile captures that failed or were partial.")
	}
	return c
}

// TryCapture starts an asynchronous capture if none is running and the
// cooldown has elapsed — the burn-threshold hook. Reports whether a
// capture was started.
func (c *Capturer) TryCapture(reason string) bool {
	if c == nil {
		return false
	}
	now := time.Now().UnixNano()
	last := c.lastNs.Load()
	if last != 0 && time.Duration(now-last) < c.cfg.Cooldown {
		return false
	}
	if !c.lastNs.CompareAndSwap(last, now) {
		return false // lost a race with another trigger
	}
	if !c.active.CompareAndSwap(false, true) {
		return false
	}
	go func() {
		defer c.active.Store(false)
		c.capture(reason)
	}()
	return true
}

// Capture runs one capture synchronously, ignoring the cooldown — the
// on-demand path. Returns the stored bundle.
func (c *Capturer) Capture(reason string) (*ProfileBundle, error) {
	if c == nil {
		return nil, fmt.Errorf("telemetry: nil capturer")
	}
	if !c.active.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("telemetry: a capture is already in progress")
	}
	defer c.active.Store(false)
	c.lastNs.Store(time.Now().UnixNano())
	return c.capture(reason), nil
}

// capture does the work: CPU sampling window, instantaneous heap and
// goroutine profiles, runtime snapshot, trace linkage, ring insert.
func (c *Capturer) capture(reason string) *ProfileBundle {
	b := &ProfileBundle{
		Reason:   reason,
		Start:    time.Now(),
		CPUDurNs: int64(c.cfg.CPUDuration),
	}
	if c.cfg.TraceIDs != nil {
		b.TraceIDs = c.cfg.TraceIDs()
	}
	if c.cfg.Runtime != nil {
		b.Runtime = c.cfg.Runtime()
	}
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		// Another profiler (e.g. /debug/pprof/profile) holds the CPU
		// profile; keep the instantaneous profiles rather than nothing.
		b.Err = fmt.Sprintf("cpu profile unavailable: %v", err)
		if c.errs != nil {
			c.errs.Inc()
		}
	} else {
		time.Sleep(c.cfg.CPUDuration)
		pprof.StopCPUProfile()
		b.CPU = cpu.Bytes()
	}
	var heap, gor bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		p.WriteTo(&heap, 0)
		b.Heap = heap.Bytes()
	}
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(&gor, 0)
		b.Goroutine = gor.Bytes()
	}

	c.mu.Lock()
	c.nextSeq++
	b.ID = fmt.Sprintf("p%d", c.nextSeq)
	c.ring = append(c.ring, b)
	if len(c.ring) > c.cfg.Capacity {
		c.ring = c.ring[len(c.ring)-c.cfg.Capacity:]
	}
	c.mu.Unlock()
	if c.captures != nil {
		c.captures.Inc()
	}
	return b
}

// Bundles returns the stored bundles, newest first.
func (c *Capturer) Bundles() []*ProfileBundle {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*ProfileBundle, 0, len(c.ring))
	for i := len(c.ring) - 1; i >= 0; i-- {
		out = append(out, c.ring[i])
	}
	return out
}

// Lookup returns the bundle with the given ID, or nil.
func (c *Capturer) Lookup(id string) *ProfileBundle {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.ring {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Handler serves the capture surface:
//
//	GET /debug/profiles                 JSON listing (newest first)
//	GET /debug/profiles?capture=1       synchronous on-demand capture
//	GET /debug/profiles?id=p3           one bundle's metadata (JSON)
//	GET /debug/profiles?id=p3&kind=cpu  raw pprof payload (cpu|heap|goroutine)
func ProfilesHandler(c *Capturer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c == nil {
			http.Error(w, "profiling disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		if q.Get("capture") != "" {
			b, err := c.Capture("on-demand")
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJSON(w, b)
			return
		}
		id := q.Get("id")
		if id == "" {
			writeJSON(w, c.Bundles())
			return
		}
		b := c.Lookup(id)
		if b == nil {
			http.Error(w, "no such profile bundle", http.StatusNotFound)
			return
		}
		switch kind := q.Get("kind"); kind {
		case "":
			writeJSON(w, b)
		case "cpu", "heap", "goroutine":
			var payload []byte
			switch kind {
			case "cpu":
				payload = b.CPU
			case "heap":
				payload = b.Heap
			case "goroutine":
				payload = b.Goroutine
			}
			if len(payload) == 0 {
				http.Error(w, "profile kind empty in this bundle", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%s-%s.pprof", id, kind))
			w.Write(payload)
		default:
			http.Error(w, "kind must be cpu, heap or goroutine", http.StatusBadRequest)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
