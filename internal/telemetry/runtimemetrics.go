package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
)

// RuntimeMetrics exports the Go runtime's own health signals — GC pause
// distribution, scheduler latency, goroutine count, heap size — as
// registry series, sampled from runtime/metrics. These are the "why is
// it slow" complements to the request-level series: a p99 regression
// with a flat queue-wait histogram and a spiky GC pause gauge points at
// the collector, not the workload.
//
// Sample is cheap (one metrics.Read over a fixed sample set) and is
// driven by whatever loop already closes observation windows — the
// server's signal sampler calls it once per degrade tick. Histogram
// quantiles are computed over the delta since the previous Sample, so
// the gauges describe the most recent window, not the process lifetime.
type RuntimeMetrics struct {
	goroutines   *Gauge
	heapBytes    *Gauge
	gcPauseP50   *Gauge
	gcPauseP99   *Gauge
	schedLatP50  *Gauge
	schedLatP99  *Gauge
	gcCycles     *Counter
	allocedBytes *Counter
	gcPauseTotal *Counter

	mu      sync.Mutex
	samples []metrics.Sample
	prev    map[string]prevHist
	last    map[string]float64 // latest scalar values, for Snapshot
}

// prevHist is the previous window's histogram state: counts copied out
// of the runtime's buffers (metrics.Read reuses them) keyed by bucket
// layout length so a runtime-side layout change resets the delta.
type prevHist struct {
	counts []uint64
}

// Runtime metric names sampled (see runtime/metrics documentation).
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// NewRuntimeMetrics registers the runtime series on the registry.
func NewRuntimeMetrics(reg *Registry) *RuntimeMetrics {
	names := []string{rmGoroutines, rmHeapBytes, rmAllocBytes, rmGCCycles, rmGCPauses, rmSchedLat}
	r := &RuntimeMetrics{
		goroutines: reg.Gauge("sslic_go_goroutines",
			"Live goroutines at the last runtime sample."),
		heapBytes: reg.Gauge("sslic_go_heap_bytes",
			"Heap bytes occupied by live objects at the last runtime sample."),
		gcPauseP50: reg.Gauge("sslic_go_gc_pause_seconds",
			"GC stop-the-world pause quantiles over the last sample window.",
			Label{Name: "quantile", Value: "0.5"}),
		gcPauseP99: reg.Gauge("sslic_go_gc_pause_seconds",
			"GC stop-the-world pause quantiles over the last sample window.",
			Label{Name: "quantile", Value: "0.99"}),
		schedLatP50: reg.Gauge("sslic_go_sched_latency_seconds",
			"Goroutine scheduling latency quantiles over the last sample window.",
			Label{Name: "quantile", Value: "0.5"}),
		schedLatP99: reg.Gauge("sslic_go_sched_latency_seconds",
			"Goroutine scheduling latency quantiles over the last sample window.",
			Label{Name: "quantile", Value: "0.99"}),
		gcCycles: reg.Counter("sslic_go_gc_cycles_total",
			"Completed GC cycles."),
		allocedBytes: reg.Counter("sslic_go_alloc_bytes_total",
			"Cumulative heap bytes allocated."),
		gcPauseTotal: reg.Counter("sslic_go_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause time."),
		samples: make([]metrics.Sample, len(names)),
		prev:    map[string]prevHist{},
		last:    map[string]float64{},
	}
	for i, n := range names {
		r.samples[i].Name = n
	}
	r.Sample() // seed the deltas so the first real window is correct
	return r
}

// Sample reads the runtime metrics and updates the registry series.
func (r *RuntimeMetrics) Sample() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	metrics.Read(r.samples)
	for _, s := range r.samples {
		switch s.Name {
		case rmGoroutines:
			v := float64(s.Value.Uint64())
			r.goroutines.Set(v)
			r.last["goroutines"] = v
		case rmHeapBytes:
			v := float64(s.Value.Uint64())
			r.heapBytes.Set(v)
			r.last["heap_bytes"] = v
		case rmAllocBytes:
			r.counterTo(r.allocedBytes, s, "alloc_bytes_total")
		case rmGCCycles:
			r.counterTo(r.gcCycles, s, "gc_cycles_total")
		case rmGCPauses:
			h := s.Value.Float64Histogram()
			if h == nil {
				continue
			}
			delta := histDelta(h, r.prev[s.Name].counts)
			r.gcPauseP50.Set(histQuantile(h.Buckets, delta, 0.5))
			r.gcPauseP99.Set(histQuantile(h.Buckets, delta, 0.99))
			r.gcPauseTotal.Add(histMassSeconds(h.Buckets, delta))
			r.prev[s.Name] = prevHist{counts: append([]uint64(nil), h.Counts...)}
			r.last["gc_pause_p99_seconds"] = r.gcPauseP99.Value()
		case rmSchedLat:
			h := s.Value.Float64Histogram()
			if h == nil {
				continue
			}
			delta := histDelta(h, r.prev[s.Name].counts)
			r.schedLatP50.Set(histQuantile(h.Buckets, delta, 0.5))
			r.schedLatP99.Set(histQuantile(h.Buckets, delta, 0.99))
			r.prev[s.Name] = prevHist{counts: append([]uint64(nil), h.Counts...)}
			r.last["sched_latency_p99_seconds"] = r.schedLatP99.Value()
		}
	}
}

// counterTo raises a monotonic registry counter to the runtime's
// cumulative value (the runtime total is authoritative; the counter
// tracks it by delta).
func (r *RuntimeMetrics) counterTo(c *Counter, s metrics.Sample, key string) {
	v := float64(s.Value.Uint64())
	if d := v - c.Value(); d > 0 {
		c.Add(d)
	}
	r.last[key] = v
}

// Snapshot returns the latest sampled values by short name — the
// runtime health block a profile bundle embeds next to its pprof data.
func (r *RuntimeMetrics) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.last))
	for k, v := range r.last {
		out[k] = v
	}
	return out
}

// histDelta returns cur minus prev bucket counts (cur's layout). A nil
// or mismatched prev yields cur's counts unchanged, so the first window
// needs no special case.
func histDelta(cur *metrics.Float64Histogram, prev []uint64) []uint64 {
	out := append([]uint64(nil), cur.Counts...)
	if len(prev) != len(out) {
		return out
	}
	for i := range out {
		if prev[i] <= out[i] {
			out[i] -= prev[i]
		}
	}
	return out
}

// histQuantile estimates the q-quantile from runtime histogram buckets
// (len(Buckets) == len(Counts)+1; boundaries may be ±Inf).
func histQuantile(buckets []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum >= rank && c > 0 {
			lo, hi := buckets[i], buckets[i+1]
			if math.IsInf(lo, -1) {
				lo = 0
			}
			if math.IsInf(hi, 1) {
				return lo
			}
			return hi
		}
	}
	last := buckets[len(buckets)-1]
	if math.IsInf(last, 1) {
		last = buckets[len(buckets)-2]
	}
	return last
}

// histMassSeconds approximates the summed value of the window's
// observations (each bucket's count at its upper boundary) — how the
// cumulative GC pause counter advances without a runtime-provided sum.
func histMassSeconds(buckets []float64, counts []uint64) float64 {
	var sum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		hi := buckets[i+1]
		if math.IsInf(hi, 1) {
			hi = buckets[i]
			if math.IsInf(hi, -1) {
				hi = 0
			}
		}
		sum += float64(c) * hi
	}
	return sum
}
