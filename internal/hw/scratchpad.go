package hw

import "fmt"

// Scratchpad models one of the accelerator's four on-chip memories
// (§4.3: three color channel memories plus the index memory), realized
// per §5 as synchronous RAM with separate read and write ports. The
// model enforces capacity and counts port activity so energy and
// bandwidth analyses can be driven from actual access streams.
type Scratchpad struct {
	name string
	data []uint8

	reads  int64
	writes int64
	fills  int64
	drains int64
}

// NewScratchpad allocates a scratchpad of the given capacity.
func NewScratchpad(name string, capacity int) (*Scratchpad, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("hw: scratchpad %q capacity %d", name, capacity)
	}
	return &Scratchpad{name: name, data: make([]uint8, capacity)}, nil
}

// Name returns the scratchpad's name.
func (sp *Scratchpad) Name() string { return sp.name }

// Capacity returns the size in bytes.
func (sp *Scratchpad) Capacity() int { return len(sp.data) }

// Read returns the byte at addr through the read port.
func (sp *Scratchpad) Read(addr int) (uint8, error) {
	if addr < 0 || addr >= len(sp.data) {
		return 0, fmt.Errorf("hw: scratchpad %q read at %d out of [0, %d)", sp.name, addr, len(sp.data))
	}
	sp.reads++
	return sp.data[addr], nil
}

// Write stores a byte at addr through the write port.
func (sp *Scratchpad) Write(addr int, v uint8) error {
	if addr < 0 || addr >= len(sp.data) {
		return fmt.Errorf("hw: scratchpad %q write at %d out of [0, %d)", sp.name, addr, len(sp.data))
	}
	sp.writes++
	sp.data[addr] = v
	return nil
}

// Fill bulk-loads a burst starting at addr (one scratchpad write per
// byte, as the fill port streams).
func (sp *Scratchpad) Fill(addr int, src []uint8) error {
	if addr < 0 || addr+len(src) > len(sp.data) {
		return fmt.Errorf("hw: scratchpad %q fill [%d, %d) out of [0, %d)",
			sp.name, addr, addr+len(src), len(sp.data))
	}
	copy(sp.data[addr:], src)
	sp.writes += int64(len(src))
	sp.fills++
	return nil
}

// Drain bulk-reads a burst starting at addr into dst.
func (sp *Scratchpad) Drain(addr int, dst []uint8) error {
	if addr < 0 || addr+len(dst) > len(sp.data) {
		return fmt.Errorf("hw: scratchpad %q drain [%d, %d) out of [0, %d)",
			sp.name, addr, addr+len(dst), len(sp.data))
	}
	copy(dst, sp.data[addr:])
	sp.reads += int64(len(dst))
	sp.drains++
	return nil
}

// Reads and Writes return the port activity counters.
func (sp *Scratchpad) Reads() int64  { return sp.reads }
func (sp *Scratchpad) Writes() int64 { return sp.writes }

// Fills and Drains count burst transfers — each is one round trip to
// external memory, so together they are the scratchpad "miss" count the
// telemetry hit-rate gauge divides by (port accesses being the hits).
func (sp *Scratchpad) Fills() int64  { return sp.fills }
func (sp *Scratchpad) Drains() int64 { return sp.drains }

// ResetCounters clears the activity counters (contents are kept).
func (sp *Scratchpad) ResetCounters() {
	sp.reads, sp.writes, sp.fills, sp.drains = 0, 0, 0, 0
}
