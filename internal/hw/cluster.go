// Package hw is the cycle-level model of the S-SLIC accelerator of §4.3:
// the FSM host controller, the LUT-based color conversion unit, the four
// scratchpad memories, the Cluster Update Unit with its configurable
// parallelism (Table 3), the Center Update Unit with an iterative
// divider, and the tile-by-tile dataflow against the external memory
// model of internal/dram. Timing, area and power come from the calibrated
// component models in internal/energy; the functional (bit-accurate)
// behavior of the same datapath lives in internal/lut and the
// fixed-point paths of internal/slic.
package hw

import (
	"fmt"

	"sslic/internal/energy"
)

// ClusterConfig selects the parallelism of the Cluster Update Unit's
// three functions (§6.2): the color distance calculators (1 iterative or
// 9 parallel), the minimum computation (1 compare ALU iterating 9 cycles
// or a 9:1 tree), and the sigma accumulation adders (1 time-multiplexed
// or 6 parallel).
type ClusterConfig struct {
	DistWays  int // 1 or 9
	MinWays   int // 1 or 9
	AdderWays int // 1 or 6
}

// The five configurations evaluated in Table 3.
var (
	Config111 = ClusterConfig{1, 1, 1}
	Config911 = ClusterConfig{9, 1, 1}
	Config191 = ClusterConfig{1, 9, 1}
	Config116 = ClusterConfig{1, 1, 6}
	Config996 = ClusterConfig{9, 9, 6}
)

// Table3Configs lists the five published configurations in table order.
func Table3Configs() []ClusterConfig {
	return []ClusterConfig{Config111, Config911, Config191, Config116, Config996}
}

// Validate reports whether the way counts are buildable options.
func (c ClusterConfig) Validate() error {
	if c.DistWays != 1 && c.DistWays != 9 {
		return fmt.Errorf("hw: distance calculator ways %d, want 1 or 9", c.DistWays)
	}
	if c.MinWays != 1 && c.MinWays != 9 {
		return fmt.Errorf("hw: minimum unit ways %d, want 1 or 9", c.MinWays)
	}
	if c.AdderWays != 1 && c.AdderWays != 6 {
		return fmt.Errorf("hw: adder ways %d, want 1 or 6", c.AdderWays)
	}
	return nil
}

// String names the configuration in the paper's w-w-w convention.
func (c ClusterConfig) String() string {
	return fmt.Sprintf("%d-%d-%d", c.DistWays, c.MinWays, c.AdderWays)
}

// LatencyCycles returns the per-pixel pipeline latency. The stage
// latencies reproduce Table 3 exactly: an iterative distance unit takes 9
// cycles against 1 pipelined; the iterative minimum takes 9 against a
// 2-cycle registered tree; the time-multiplexed adder takes 6 against 1;
// plus 3 cycles of fetch/select/writeback overhead.
func (c ClusterConfig) LatencyCycles() int {
	lat := 3
	if c.DistWays == 9 {
		lat++
	} else {
		lat += 9
	}
	if c.MinWays == 9 {
		lat += 2
	} else {
		lat += 9
	}
	if c.AdderWays == 6 {
		lat++
	} else {
		lat += 6
	}
	return lat
}

// InitiationInterval returns the sustained cycles per pixel: the maximum
// stage occupancy. Fully parallel stages accept a new pixel every cycle;
// iterative stages block for their iteration count.
func (c ClusterConfig) InitiationInterval() int {
	ii := 1
	if c.DistWays == 1 && ii < 9 {
		ii = 9
	}
	if c.MinWays == 1 && ii < 9 {
		ii = 9
	}
	if c.AdderWays == 1 && ii < 6 {
		ii = 6
	}
	return ii
}

// ThroughputPixelsPerCycle returns 1/II, the Table 3 throughput row.
func (c ClusterConfig) ThroughputPixelsPerCycle() float64 {
	return 1 / float64(c.InitiationInterval())
}

// AreaMM2 returns the unit's silicon area from the calibrated component
// sums (Table 3 row "Area").
func (c ClusterConfig) AreaMM2() float64 {
	a := energy.AreaClusterBase
	if c.DistWays == 9 {
		a += energy.AreaDist9Delta
	}
	if c.MinWays == 9 {
		a += energy.AreaMin9Delta
	}
	if c.AdderWays == 6 {
		a += energy.AreaAdd6Delta
	}
	return a
}

// PowerWatts returns the unit's active power: dynamic power proportional
// to sustained operations per cycle plus leakage proportional to area
// (Table 3 row "Power").
func (c ClusterConfig) PowerWatts(t energy.Tech) float64 {
	opsPerCycle := float64(energy.ClusterOpsPerPixel) / float64(c.InitiationInterval())
	return t.DynamicWatts(opsPerCycle) + t.LeakageWatts(c.AreaMM2())
}

// IterationTime returns the time to push one full iteration of an
// nPixels image through the unit (Table 3 row "Time" uses 1920×1080).
func (c ClusterConfig) IterationTime(t energy.Tech, nPixels int) float64 {
	cycles := float64(nPixels)*float64(c.InitiationInterval()) + float64(c.LatencyCycles())
	return cycles / t.ClockHz
}

// IterationEnergy returns power × time for one full iteration (Table 3
// row "Energy").
func (c ClusterConfig) IterationEnergy(t energy.Tech, nPixels int) float64 {
	return c.PowerWatts(t) * c.IterationTime(t, nPixels)
}
