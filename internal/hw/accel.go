package hw

import (
	"fmt"

	"sslic/internal/dram"
	"sslic/internal/energy"
)

// Config describes a complete accelerator instance plus the workload it
// runs. DefaultConfig reproduces the paper's best HD configuration
// (Table 4, first column).
type Config struct {
	// Width, Height, K describe the workload: image size and superpixel
	// count.
	Width, Height, K int
	// Cluster selects the Cluster Update Unit parallelism.
	Cluster ClusterConfig
	// BufferBytesPerChannel sizes each of the four scratchpads (three
	// color channels + index). One byte holds one pixel's channel value,
	// so this is also the tile size in pixels.
	BufferBytesPerChannel int
	// Passes is the number of cluster-update passes over the (sub)image.
	// The paper's §7 latency analysis runs 9.
	Passes int
	// SubsampleRatio scales the pixels visited per pass (S-SLIC); 1 means
	// every pass touches the whole image.
	SubsampleRatio float64
	// Cores multiplies cluster-update throughput (the DSE varies it; all
	// Table 4 designs use 1).
	Cores int
	// Tech supplies the technology constants.
	Tech energy.Tech
	// DividerCyclesPerField is the iterative divider latency for one
	// sigma field average (default 48: a serial divider on the wide
	// accumulators).
	DividerCyclesPerField int
	// CenterOverheadCycles is the per-center fixed cost in the Center
	// Update Unit (default 6).
	CenterOverheadCycles int
	// TileOverheadCycles is the per-tile FSM/center/sigma shuffling cost
	// in the cluster update (default 125).
	TileOverheadCycles int
}

// DefaultConfig returns the paper's best full-HD configuration: 9-9-6
// cluster unit, 4 kB channel buffers, K=5000, 9 passes, single core.
func DefaultConfig() Config {
	return Config{
		Width: 1920, Height: 1080, K: 5000,
		Cluster:               Config996,
		BufferBytesPerChannel: 4096,
		Passes:                9,
		SubsampleRatio:        1,
		Cores:                 1,
		Tech:                  energy.Default16nm(),
		DividerCyclesPerField: 48,
		CenterOverheadCycles:  6,
		TileOverheadCycles:    125,
	}
}

// Validate reports whether the configuration is simulatable.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("hw: invalid resolution %dx%d", c.Width, c.Height)
	}
	if c.K < 1 || c.K > c.Width*c.Height {
		return fmt.Errorf("hw: K = %d out of range", c.K)
	}
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.BufferBytesPerChannel < 256 {
		return fmt.Errorf("hw: buffer %d B too small (min 256)", c.BufferBytesPerChannel)
	}
	if c.Passes < 1 {
		return fmt.Errorf("hw: passes = %d", c.Passes)
	}
	if c.SubsampleRatio <= 0 || c.SubsampleRatio > 1 {
		return fmt.Errorf("hw: subsample ratio %g out of (0, 1]", c.SubsampleRatio)
	}
	if c.Cores < 1 {
		return fmt.Errorf("hw: cores = %d", c.Cores)
	}
	if c.Tech.ClockHz <= 0 {
		return fmt.Errorf("hw: clock %g Hz", c.Tech.ClockHz)
	}
	if c.DividerCyclesPerField < 1 || c.CenterOverheadCycles < 0 || c.TileOverheadCycles < 0 {
		return fmt.Errorf("hw: invalid cycle overheads")
	}
	return nil
}

// Report is the outcome of simulating one frame.
type Report struct {
	// Per-phase times in seconds (§7's latency decomposition).
	ColorConvTime      float64
	ClusterComputeTime float64
	ClusterMemTime     float64
	CenterUpdateTime   float64
	TotalTime          float64

	// FPS is 1/TotalTime; RealTime is FPS ≥ 30.
	FPS      float64
	RealTime bool
	// StreamFPS is the sustained frame rate when consecutive frames are
	// pipelined: the color conversion unit processes frame n+1 while the
	// cluster/center units work on frame n, so the steady-state period
	// is the slower of the two stages rather than their sum.
	StreamFPS float64

	// TrafficBytes is the external memory traffic per frame; Transfers
	// the number of bursts.
	TrafficBytes int64
	Transfers    int64
	// ScratchAccesses is the on-chip scratchpad port activity per frame
	// (reads + writes): 12 accesses per pixel in color conversion (fill,
	// read, write, drain across three channels) plus 4 per visited pixel
	// per cluster pass (three channel reads and an index write). Together
	// with Transfers (the burst/miss count) it drives the telemetry
	// hit-rate gauge.
	ScratchAccesses int64

	// Physical estimates.
	AreaMM2        float64
	PowerWatts     float64
	EnergyPerFrame float64
	OnChipBytes    int

	// PerfPerArea is FPS per mm² (Table 4's last row).
	PerfPerArea float64

	// PowerBreakdown itemizes the utilization-weighted power by unit
	// (watts): cluster update, color conversion, center update,
	// scratchpads, FSM, DRAM interface.
	PowerBreakdown PowerBreakdown
	// AreaBreakdown itemizes silicon area by unit (mm²).
	AreaBreakdown AreaBreakdown
}

// AreaBreakdown itemizes accelerator area by unit, in mm².
type AreaBreakdown struct {
	Cluster      float64
	Scratchpads  float64
	ColorConv    float64
	CenterUpdate float64
	FSM          float64
}

// Total sums the breakdown.
func (a AreaBreakdown) Total() float64 {
	return a.Cluster + a.Scratchpads + a.ColorConv + a.CenterUpdate + a.FSM
}

// PowerBreakdown itemizes accelerator power by unit, in watts.
type PowerBreakdown struct {
	Cluster       float64
	ColorConv     float64
	CenterUpdate  float64
	Scratchpads   float64
	FSM           float64
	DRAMInterface float64
}

// Total sums the breakdown.
func (p PowerBreakdown) Total() float64 {
	return p.Cluster + p.ColorConv + p.CenterUpdate + p.Scratchpads + p.FSM + p.DRAMInterface
}

// bytes moved per visited pixel per pass: Lab read (3 channels) plus index
// read and write.
const bytesPerVisitedPixel = 5

// bytesPerTileOverhead is the per-tile center/sigma traffic: 9 center
// descriptors in, 9 sigma accumulator sets in and out, new assignments of
// the tile's centers back.
const bytesPerTileOverhead = 500

// Simulate runs the analytic cycle model for one frame and returns the
// report. The model reproduces the paper's §7 decomposition on the
// default configuration: ≈1.4 ms color conversion, ≈20.3 ms cluster and
// center computation, ≈11.1 ms memory time, ≈32.8 ms total.
func Simulate(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := cfg.Tech
	n := cfg.Width * cfg.Height
	tilePixels := cfg.BufferBytesPerChannel
	numTiles := (n + tilePixels - 1) / tilePixels

	mem, err := dram.NewModel(dram.Config{
		BandwidthBytesPerSec: t.DRAMEffectiveBandwidth,
		LatencyCycles:        t.DRAMLatencyCycles,
		ClockHz:              t.ClockHz,
	})
	if err != nil {
		return nil, err
	}

	r := &Report{}

	// Phase 1: color conversion. The unit is pipelined at 1 pixel/cycle;
	// RGB streaming from DRAM overlaps with computation, so the phase
	// time is the maximum of the two plus the per-tile latency.
	ccCycles := float64(n) / float64(cfg.Cores)
	ccMem, _ := dram.NewModel(dram.Config{
		BandwidthBytesPerSec: t.DRAMEffectiveBandwidth,
		LatencyCycles:        t.DRAMLatencyCycles,
		ClockHz:              t.ClockHz,
	})
	for tile := 0; tile < numTiles; tile++ {
		px := tilePixels
		if tile == numTiles-1 {
			px = n - tile*tilePixels
		}
		ccMem.RecordBurst(int64(px*3), 0, 0)
	}
	ccTime := ccCycles / t.ClockHz
	if mt := ccMem.TransferTime(); mt > ccTime {
		ccTime = mt
	}
	ccTime += float64(t.DRAMLatencyCycles) / t.ClockHz // first-burst startup
	r.ColorConvTime = ccTime

	// Phase 2: cluster update passes. Per pass: every tile streams in,
	// the visited subset of its pixels flows through the Cluster Update
	// Unit at the configured initiation interval, and the index plane
	// streams back.
	ii := float64(cfg.Cluster.InitiationInterval())
	visitedPerPass := float64(n) * cfg.SubsampleRatio
	var clusterCycles float64
	for pass := 0; pass < cfg.Passes; pass++ {
		clusterCycles += visitedPerPass * ii / float64(cfg.Cores)
		clusterCycles += float64(numTiles) * float64(cfg.Cluster.LatencyCycles()+cfg.TileOverheadCycles)
		for tile := 0; tile < numTiles; tile++ {
			px := tilePixels
			if tile == numTiles-1 {
				px = n - tile*tilePixels
			}
			visited := int64(float64(px) * cfg.SubsampleRatio)
			mem.RecordBurst(visited*3, visited*2, bytesPerTileOverhead)
		}
	}
	r.ClusterComputeTime = clusterCycles / t.ClockHz
	r.ClusterMemTime = mem.TransferTime()

	// Phase 3: center updates after every pass. The Center Update Unit
	// averages six sigma fields per superpixel on an iterative divider.
	centerCycles := float64(cfg.Passes) * float64(cfg.K) *
		float64(6*cfg.DividerCyclesPerField+cfg.CenterOverheadCycles)
	r.CenterUpdateTime = centerCycles / t.ClockHz

	r.TotalTime = r.ColorConvTime + r.ClusterComputeTime + r.ClusterMemTime + r.CenterUpdateTime
	r.FPS = 1 / r.TotalTime
	r.RealTime = r.FPS >= 30
	stagePeriod := r.ClusterComputeTime + r.ClusterMemTime + r.CenterUpdateTime
	if r.ColorConvTime > stagePeriod {
		stagePeriod = r.ColorConvTime
	}
	r.StreamFPS = 1 / stagePeriod

	r.TrafficBytes = mem.TotalBytes() + ccMem.TotalBytes()
	r.Transfers = mem.Transfers() + ccMem.Transfers()
	r.ScratchAccesses = int64(12*n) + int64(float64(cfg.Passes)*visitedPerPass*4)

	// Physical estimates.
	r.OnChipBytes = 4 * cfg.BufferBytesPerChannel
	r.AreaBreakdown = AreaBreakdown{
		Cluster:      float64(cfg.Cores) * cfg.Cluster.AreaMM2(),
		Scratchpads:  t.SRAMAreaMM2(r.OnChipBytes),
		ColorConv:    energy.AreaColorConv,
		CenterUpdate: energy.AreaCenterUpdate,
		FSM:          energy.AreaFSM,
	}
	r.AreaMM2 = r.AreaBreakdown.Total()

	// Power: each unit's peak active power weighted by its duty cycle
	// (§6.3: "the power for each unit is computed using the peak active
	// power ... multiplying by the utilization"); the scratchpads and the
	// external memory interface are assumed at full utilization per the
	// same paragraph. The cluster unit stays clocked while tiles stream,
	// so its duty cycle spans compute and memory time.
	clusterUtil := (r.ClusterComputeTime + r.ClusterMemTime) / r.TotalTime
	ccUtil := r.ColorConvTime / r.TotalTime
	centerUtil := r.CenterUpdateTime / r.TotalTime
	r.PowerBreakdown = PowerBreakdown{
		Cluster:       float64(cfg.Cores) * cfg.Cluster.PowerWatts(t) * clusterUtil,
		ColorConv:     powerColorConv * ccUtil,
		CenterUpdate:  powerCenterUpdate * centerUtil,
		Scratchpads:   t.SRAMWatts(r.OnChipBytes),
		FSM:           powerFSM,
		DRAMInterface: powerDRAMInterface,
	}
	r.PowerWatts = r.PowerBreakdown.Total()
	r.EnergyPerFrame = r.PowerWatts * r.TotalTime
	r.PerfPerArea = r.FPS / r.AreaMM2
	return r, nil
}

// Unit active powers (watts), calibrated alongside the Table 4 total.
const (
	powerColorConv     = 4e-3
	powerCenterUpdate  = 5e-3
	powerFSM           = 2e-3
	powerDRAMInterface = 8e-3
)
