package hw

import (
	"context"

	"sslic/internal/energy"
	"sslic/internal/telemetry"
)

// Metrics is the hardware model's telemetry handle: the paper's
// Table-2/3 quantities as live series. Counters accumulate per observed
// frame (DRAM traffic, scratchpad activity, energy); gauges carry the
// latest model outputs (fps, power). Feed it from the analytic model
// with ObserveReport or from the bit-accurate simulator with
// ObserveFuncSim; a video pipeline calls one of them per frame so a
// scrape shows the accelerator-side cost of the stream so far.
type Metrics struct {
	Frames        *telemetry.Counter
	DRAMBytes     *telemetry.Counter
	DRAMTransfers *telemetry.Counter
	ScratchHits   *telemetry.Counter
	ScratchMisses *telemetry.Counter
	Energy        *energy.Accumulator

	ModelFPS   *telemetry.Gauge
	ModelPower *telemetry.Gauge
}

// NewMetrics registers the hardware-model metrics on the registry,
// including a derived sslic_hw_scratchpad_hit_ratio gauge computed at
// scrape time as hits / (hits + misses).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		Frames: reg.Counter("sslic_hw_frames_total",
			"Frames observed by the hardware model."),
		DRAMBytes: reg.Counter("sslic_hw_dram_bytes_total",
			"External memory traffic the model charges (Table 2's MB/iteration, accumulated)."),
		DRAMTransfers: reg.Counter("sslic_hw_dram_transfers_total",
			"External memory bursts (scratchpad fills/drains)."),
		ScratchHits: reg.Counter("sslic_hw_scratchpad_hits_total",
			"On-chip scratchpad port accesses served without a DRAM round trip."),
		ScratchMisses: reg.Counter("sslic_hw_scratchpad_misses_total",
			"Burst transfers to or from external memory."),
		Energy: energy.NewAccumulator(reg),
		ModelFPS: reg.Gauge("sslic_hw_model_fps",
			"Frame rate of the latest simulated configuration."),
		ModelPower: reg.Gauge("sslic_hw_model_power_watts",
			"Power of the latest simulated configuration."),
	}
	reg.GaugeFunc("sslic_hw_scratchpad_hit_ratio",
		"Fraction of scratchpad activity served on-chip: hits / (hits + misses).",
		func() float64 {
			hits, misses := m.ScratchHits.Value(), m.ScratchMisses.Value()
			if hits+misses == 0 {
				return 0
			}
			return hits / (hits + misses)
		})
	return m
}

// ObserveReport charges one analytically simulated frame: its DRAM
// traffic, scratchpad activity, and per-component energy (the power
// breakdown sustained for the frame's model time).
func (m *Metrics) ObserveReport(r *Report) {
	m.ObserveReportCtx(context.Background(), r)
}

// ObserveReportCtx is ObserveReport with trace tagging: when the
// context carries a request/frame trace, the charge lands on its
// timeline as two instant events — "dram_charge" (bytes, bursts) and
// "scratchpad_charge" (on-chip accesses, energy) — so the accelerator
// model's cost of exactly this frame is on the same Perfetto view as
// its software phases.
func (m *Metrics) ObserveReportCtx(ctx context.Context, r *Report) {
	if m == nil || r == nil {
		return
	}
	m.Frames.Inc()
	m.DRAMBytes.Add(float64(r.TrafficBytes))
	m.DRAMTransfers.Add(float64(r.Transfers))
	m.ScratchHits.Add(float64(r.ScratchAccesses))
	m.ScratchMisses.Add(float64(r.Transfers))
	m.chargeBreakdown(r.PowerBreakdown, r.TotalTime)
	m.ModelFPS.Set(r.FPS)
	m.ModelPower.Set(r.PowerWatts)
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		tr.Instant("dram_charge", "hw", map[string]any{
			"bytes": r.TrafficBytes, "transfers": r.Transfers,
			"model_fps": r.FPS,
		})
		tr.Instant("scratchpad_charge", "hw", map[string]any{
			"accesses": r.ScratchAccesses, "power_watts": r.PowerWatts,
			"model_seconds": r.TotalTime,
		})
	}
}

// chargeBreakdown charges a power breakdown sustained for one frame's
// model time, itemized per component.
func (m *Metrics) chargeBreakdown(p PowerBreakdown, seconds float64) {
	if seconds <= 0 {
		return
	}
	m.Energy.Add("cluster", p.Cluster*seconds)
	m.Energy.Add("colorconv", p.ColorConv*seconds)
	m.Energy.Add("centerupdate", p.CenterUpdate*seconds)
	m.Energy.Add("scratchpads", p.Scratchpads*seconds)
	m.Energy.Add("fsm", p.FSM*seconds)
	m.Energy.Add("dram", p.DRAMInterface*seconds)
}

// ObserveFuncSim charges one functionally simulated frame from the
// simulator's structural counters and resets them, so alternating Run /
// ObserveFuncSim accumulates per-frame deltas. Energy is charged as one
// bottom-up total under the "funcsim" component.
func (m *Metrics) ObserveFuncSim(fs *FuncSim) {
	m.ObserveFuncSimCtx(context.Background(), fs)
}

// ObserveFuncSimCtx is ObserveFuncSim with trace tagging (see
// ObserveReportCtx).
func (m *Metrics) ObserveFuncSimCtx(ctx context.Context, fs *FuncSim) {
	if m == nil || fs == nil {
		return
	}
	m.Frames.Inc()
	m.DRAMBytes.Add(float64(fs.DRAMBytes))
	m.ScratchHits.Add(float64(fs.ScratchReads + fs.ScratchWrites))
	var bursts int64
	pads := []*Scratchpad{fs.ch[0], fs.ch[1], fs.ch[2], fs.index}
	for _, sp := range pads {
		bursts += sp.Fills() + sp.Drains()
	}
	m.ScratchMisses.Add(float64(bursts))
	m.DRAMTransfers.Add(float64(bursts))
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		tr.Instant("dram_charge", "hw", map[string]any{
			"bytes": fs.DRAMBytes, "transfers": bursts,
		})
		tr.Instant("scratchpad_charge", "hw", map[string]any{
			"reads": fs.ScratchReads, "writes": fs.ScratchWrites,
		})
	}
	m.Energy.Add("funcsim", fs.EnergyJoules(fs.cfg.Tech))
	if t := fs.TimeSeconds(); t > 0 {
		m.ModelFPS.Set(1 / t)
	}
	fs.Cycles = 0
	fs.ScratchReads = 0
	fs.ScratchWrites = 0
	fs.DRAMBytes = 0
	fs.DistanceCalcs = 0
	fs.DividerOps = 0
	for _, sp := range pads {
		sp.ResetCounters()
	}
}
