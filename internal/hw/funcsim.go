package hw

import (
	"fmt"
	"math"

	"sslic/internal/energy"
	"sslic/internal/fixed"
	"sslic/internal/imgio"
	"sslic/internal/lut"
	"sslic/internal/sslic"
)

// FuncSim is the functional (bit-accurate) simulation of the
// accelerator: where Simulate is the analytic timing/energy model, a
// FuncSim actually pushes 8-bit pixels through the modeled pipeline —
// the LUT color conversion unit, the scratchpads, the Cluster Update
// Unit's integer distance/minimum/sigma datapath and the Center Update
// Unit's integer divider — exactly as the paper's synthesizable C model
// does under Catapult (§5). It produces the label map the silicon would
// produce, alongside cycle and access counts that cross-check the
// analytic model.
type FuncSim struct {
	cfg Config

	conv *lut.Converter
	fsm  *FSM

	// Scratchpads: three channel memories plus the index memory (§4.3),
	// modeled as synchronous RAMs with separate read/write ports (§5).
	ch    [3]*Scratchpad
	index *Scratchpad

	// Center registers (Lab8 color codes + 16-bit coordinates) and sigma
	// accumulators for every superpixel, streamed tile by tile.
	centers []centerReg
	sigmas  []sigmaReg

	// Counters.
	Cycles        int64
	ScratchReads  int64
	ScratchWrites int64
	DRAMBytes     int64
	DistanceCalcs int64
	DividerOps    int64
}

// centerReg mirrors the hardware's 5-field center descriptor.
type centerReg struct {
	l, a, b uint8
	x, y    int32
}

// sigmaReg mirrors the six accumulator fields the sigma registers hold:
// L, a, b, x, y sums and the member count.
type sigmaReg struct {
	l, a, b int64
	x, y    int64
	n       int64
}

// NewFuncSim builds a functional simulator for the configuration. Only
// single-core designs are functionally simulated.
func NewFuncSim(cfg Config) (*FuncSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores != 1 {
		return nil, fmt.Errorf("hw: functional simulation supports 1 core, got %d", cfg.Cores)
	}
	tile := cfg.BufferBytesPerChannel
	fs := &FuncSim{
		cfg:  cfg,
		conv: lut.MustNewConverter(lut.DefaultSegments),
		fsm:  NewFSM(),
	}
	names := [3]string{"ch1", "ch2", "ch3"}
	for i := range fs.ch {
		pad, err := NewScratchpad(names[i], tile)
		if err != nil {
			return nil, err
		}
		fs.ch[i] = pad
	}
	idx, err := NewScratchpad("index", tile)
	if err != nil {
		return nil, err
	}
	fs.index = idx
	return fs, nil
}

// distanceScale converts squared integer distances to the 8-bit distance
// code the Color Distance Calculator outputs: code = √d² · 255/448,
// matching the software datapath model in internal/slic.
const distanceFullScale = 448

// Run processes one frame through the pipeline and returns the label
// map. The image must match the configured resolution.
func (fs *FuncSim) Run(im *imgio.Image) (*imgio.LabelMap, error) {
	if im.W != fs.cfg.Width || im.H != fs.cfg.Height {
		return nil, fmt.Errorf("hw: image %dx%d does not match configured %dx%d",
			im.W, im.H, fs.cfg.Width, fs.cfg.Height)
	}
	w, h := im.W, im.H
	n := w * h

	// External memory image state: Lab8 planes + label plane, standing in
	// for DRAM contents.
	labL := make([]uint8, n)
	labA := make([]uint8, n)
	labB := make([]uint8, n)
	labels := imgio.NewLabelMap(w, h)

	// Phase 1: color conversion, tile by tile through the scratchpads.
	fs.fsm.mustTransition(StateLoadFrame)
	fs.fsm.mustTransition(StateColorConvert)
	if err := fs.colorConvert(im, labL, labA, labB); err != nil {
		return nil, err
	}

	// Static tiling and initial centers/assignments (precomputed offline
	// and stored in external memory per §4.3).
	tiling := sslic.NewTiling(w, h, fs.cfg.K)
	fs.initCenters(tiling, labL, labA, labB, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			labels.Labels[y*w+x] = tiling.OwnCenter(x, y)
		}
	}

	// Equation 5's spatial weight in fixed point: m²·2^8/S².
	s := math.Sqrt(float64(n) / float64(len(fs.centers)))
	const m = 10.0
	spatialMult := int64(math.Round(m * m * 256 / (s * s)))

	k := subsetsOf(fs.cfg.SubsampleRatio)
	bufferTiles := int64((n + fs.cfg.BufferBytesPerChannel - 1) / fs.cfg.BufferBytesPerChannel)
	for pass := 0; pass < fs.cfg.Passes; pass++ {
		subset := pass % k
		fs.resetSigmas()
		fs.clusterUpdatePass(tiling, labL, labA, labB, labels, spatialMult, subset, k)
		// Scratchpad refills: FSM setup and center/sigma shuffling per
		// buffer-sized tile, matching the analytic model's accounting.
		fs.Cycles += bufferTiles * int64(fs.cfg.TileOverheadCycles)
		fs.DRAMBytes += bufferTiles * bytesPerTileOverhead
		fs.fsm.mustTransition(StateCenterUpdate)
		fs.centerUpdate()
	}
	fs.fsm.mustTransition(StateDone)
	return labels, nil
}

// FSM exposes the host controller for inspection.
func (fs *FuncSim) FSM() *FSM { return fs.fsm }

func subsetsOf(ratio float64) int {
	if ratio >= 1 {
		return 1
	}
	return int(math.Round(1 / ratio))
}

// colorConvert streams RGB tiles into the channel memories, converts
// each pixel through the LUT unit at one pixel per cycle, and writes the
// Lab8 planes back to external memory. Every access goes through the
// structural scratchpad ports.
func (fs *FuncSim) colorConvert(im *imgio.Image, labL, labA, labB []uint8) error {
	n := im.Pixels()
	tile := fs.cfg.BufferBytesPerChannel
	for base := 0; base < n; base += tile {
		end := base + tile
		if end > n {
			end = n
		}
		// Tile fill: RGB from DRAM into the three channel memories.
		if err := fs.ch[0].Fill(0, im.C0[base:end]); err != nil {
			return err
		}
		if err := fs.ch[1].Fill(0, im.C1[base:end]); err != nil {
			return err
		}
		if err := fs.ch[2].Fill(0, im.C2[base:end]); err != nil {
			return err
		}
		fs.DRAMBytes += int64(end-base) * 3

		// Convert in place: read RGB from the scratchpads, write Lab back.
		for i := base; i < end; i++ {
			off := i - base
			r8, err := fs.ch[0].Read(off)
			if err != nil {
				return err
			}
			g8, err := fs.ch[1].Read(off)
			if err != nil {
				return err
			}
			b8v, err := fs.ch[2].Read(off)
			if err != nil {
				return err
			}
			l8, a8, b8 := fs.conv.Convert(r8, g8, b8v)
			if err := fs.ch[0].Write(off, l8); err != nil {
				return err
			}
			if err := fs.ch[1].Write(off, a8); err != nil {
				return err
			}
			if err := fs.ch[2].Write(off, b8); err != nil {
				return err
			}
			fs.Cycles++ // pipelined at 1 pixel/cycle
		}

		// Drain the tile to the external Lab planes.
		if err := fs.ch[0].Drain(0, labL[base:end]); err != nil {
			return err
		}
		if err := fs.ch[1].Drain(0, labA[base:end]); err != nil {
			return err
		}
		if err := fs.ch[2].Drain(0, labB[base:end]); err != nil {
			return err
		}
		fs.DRAMBytes += int64(end-base) * 3
	}
	fs.ScratchReads += fs.ch[0].Reads() + fs.ch[1].Reads() + fs.ch[2].Reads()
	fs.ScratchWrites += fs.ch[0].Writes() + fs.ch[1].Writes() + fs.ch[2].Writes()
	return nil
}

// initCenters loads the initial center registers from the grid cells'
// center pixels (the offline-precomputed values of §4.3).
func (fs *FuncSim) initCenters(tiling *sslic.Tiling, labL, labA, labB []uint8, w, h int) {
	nx, ny := tiling.NX, tiling.NY
	fs.centers = make([]centerReg, nx*ny)
	fs.sigmas = make([]sigmaReg, nx*ny)
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			x := (gx*w + w/2) / nx
			y := (gy*h + h/2) / ny
			if x >= w {
				x = w - 1
			}
			if y >= h {
				y = h - 1
			}
			i := y*w + x
			fs.centers[gy*nx+gx] = centerReg{
				l: labL[i], a: labA[i], b: labB[i],
				x: int32(x), y: int32(y),
			}
		}
	}
}

func (fs *FuncSim) resetSigmas() {
	for i := range fs.sigmas {
		fs.sigmas[i] = sigmaReg{}
	}
}

// clusterUpdatePass walks the image in S×S grid tiles (one per
// superpixel cell, so each tile shares one 9-candidate list), streaming
// each through the scratchpads and the Cluster Update Unit.
func (fs *FuncSim) clusterUpdatePass(tiling *sslic.Tiling, labL, labA, labB []uint8,
	labels *imgio.LabelMap, spatialMult int64, subset, k int) {

	w, h := labels.W, labels.H
	ii := int64(fs.cfg.Cluster.InitiationInterval())
	for ty := 0; ty < tiling.NY; ty++ {
		y0 := ty * h / tiling.NY
		y1 := (ty + 1) * h / tiling.NY
		for tx := 0; tx < tiling.NX; tx++ {
			cand := tiling.Candidates[ty*tiling.NX+tx]
			x0 := tx * w / tiling.NX
			x1 := (tx + 1) * w / tiling.NX

			// Tile sequencing through the host FSM.
			fs.fsm.mustTransition(StateLoadTile)
			fs.fsm.mustTransition(StateClusterUpdate)
			// Pipeline drain when the candidate center registers switch
			// to the next grid cell's list.
			fs.Cycles += int64(fs.cfg.Cluster.LatencyCycles())

			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if k > 1 && (x+y)%k != subset {
						continue
					}
					i := y*w + x
					// Pixel registers load from the channel memories.
					pl, pa, pb := labL[i], labA[i], labB[i]
					fs.ScratchReads += 3
					fs.DRAMBytes += 3 // tile streaming, amortized per visited pixel

					// Nine color distance calculators + 9:1 minimum.
					best := int32(-1)
					bestCode := int64(1 << 30)
					for _, ci := range cand {
						c := &fs.centers[ci]
						code := distanceCode(pl, pa, pb, x, y, c, spatialMult)
						fs.DistanceCalcs++
						if code < bestCode {
							bestCode = code
							best = ci
						}
					}

					// Sigma accumulation: six adds into the selected
					// register; index writeback to the index memory.
					sg := &fs.sigmas[best]
					sg.l += int64(pl)
					sg.a += int64(pa)
					sg.b += int64(pb)
					sg.x += int64(x)
					sg.y += int64(y)
					sg.n++
					labels.Labels[i] = best
					fs.ScratchWrites++
					fs.DRAMBytes += 2 // index read+write stream

					fs.Cycles += ii
				}
			}
			fs.fsm.mustTransition(StateStoreTile)
		}
	}
}

// distanceCode evaluates Equation 5 on the integer datapath and returns
// the 8-bit saturated distance code the minimum unit compares.
func distanceCode(pl, pa, pb uint8, x, y int, c *centerReg, spatialMult int64) int64 {
	dl := int64(pl) - int64(c.l)
	da := int64(pa) - int64(c.a)
	db := int64(pb) - int64(c.b)
	dx := int64(x) - int64(c.x)
	dy := int64(y) - int64(c.y)
	d2 := dl*dl + da*da + db*db + (dx*dx+dy*dy)*spatialMult>>8
	// Root, scale to the 8-bit code range, saturate.
	root, _ := fixed.Isqrt(d2)
	code := root * 255 / distanceFullScale
	if code > 255 {
		code = 255
	}
	return code
}

// centerUpdate averages every sigma register on the iterative serial
// divider and writes the new center registers.
func (fs *FuncSim) centerUpdate() {
	for ci := range fs.sigmas {
		sg := &fs.sigmas[ci]
		fs.Cycles += int64(fs.cfg.CenterOverheadCycles)
		if sg.n == 0 {
			// The divider still cycles through the six fields even for an
			// empty accumulator (the FSM does not branch per register).
			fs.Cycles += int64(6 * fs.cfg.DividerCyclesPerField)
			fs.DividerOps += 6
			continue
		}
		c := &fs.centers[ci]
		var cycles int
		c.l, cycles = div8(sg.l, sg.n, fs.cfg.DividerCyclesPerField)
		fs.Cycles += int64(cycles)
		c.a, cycles = div8(sg.a, sg.n, fs.cfg.DividerCyclesPerField)
		fs.Cycles += int64(cycles)
		c.b, cycles = div8(sg.b, sg.n, fs.cfg.DividerCyclesPerField)
		fs.Cycles += int64(cycles)
		rx := fixed.SerialDivide(sg.x, sg.n, 24)
		c.x = int32(rx.Quotient)
		ry := fixed.SerialDivide(sg.y, sg.n, 24)
		c.y = int32(ry.Quotient)
		// The configured per-field budget covers the 24-bit serial
		// divider; charge it uniformly so the timing model stays
		// comparable across divider widths.
		fs.Cycles += int64(2 * fs.cfg.DividerCyclesPerField)
		fs.Cycles += int64(fs.cfg.DividerCyclesPerField) // count field passthrough slot
		fs.DividerOps += 6
	}
	// New centers to external memory for the next pass (§4.3).
	fs.DRAMBytes += int64(len(fs.centers)) * 7 // 3 color + 2×2-byte coords
}

// div8 divides on the serial divider and clamps to a byte, charging the
// configured per-field cycle budget.
func div8(num, den int64, budget int) (uint8, int) {
	r := fixed.SerialDivide(num, den, 24)
	q := r.Quotient
	if q < 0 {
		q = 0
	}
	if q > 255 {
		q = 255
	}
	return uint8(q), budget
}

// TimeSeconds converts the accumulated cycle count to seconds at the
// configured clock.
func (fs *FuncSim) TimeSeconds() float64 {
	return float64(fs.Cycles) / fs.cfg.Tech.ClockHz
}

// EnergyJoules derives a bottom-up energy estimate from the functional
// counters: datapath operations at the calibrated op energy, divider
// work, scratchpad port activity, DRAM traffic at the interface energy
// share, and leakage over the simulated time. It cross-checks the
// top-down utilization-weighted power model of Simulate — the two are
// built from the same constants but opposite directions, so agreement
// within a small factor validates both.
func (fs *FuncSim) EnergyJoules(t energy.Tech) float64 {
	opE := float64(fs.DistanceCalcs) * 7 * t.EnergyPerOp // 7 ops per Eq-5 evaluation
	// Sigma accumulation: 6 adds per assigned pixel (one per 9 distance
	// calcs at full candidate fan-in).
	opE += float64(fs.DistanceCalcs) / 9 * 6 * t.EnergyPerOp
	// Serial divider: each division is ~DividerCyclesPerField single-bit
	// step operations.
	opE += float64(fs.DividerOps) * float64(fs.cfg.DividerCyclesPerField) * t.EnergyPerOp
	// Scratchpad ports: one op-equivalent per byte access.
	opE += float64(fs.ScratchReads+fs.ScratchWrites) * t.EnergyPerOp
	// DRAM interface energy share: the powerDRAMInterface constant over
	// the transfer-active time, approximated by bytes over bandwidth.
	dramTime := float64(fs.DRAMBytes) / t.DRAMEffectiveBandwidth
	dram := powerDRAMInterface * dramTime
	leak := t.LeakageWatts(AreaBreakdown{
		Cluster:      fs.cfg.Cluster.AreaMM2(),
		Scratchpads:  t.SRAMAreaMM2(4 * fs.cfg.BufferBytesPerChannel),
		ColorConv:    energy.AreaColorConv,
		CenterUpdate: energy.AreaCenterUpdate,
		FSM:          energy.AreaFSM,
	}.Total()) * fs.TimeSeconds()
	// Scratchpad static/background power over the run (full-utilization
	// assumption, as in the top-down model).
	sram := t.SRAMWatts(4*fs.cfg.BufferBytesPerChannel) * fs.TimeSeconds()
	return opE + dram + leak + sram
}
