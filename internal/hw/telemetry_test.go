package hw

import (
	"strings"
	"testing"

	"sslic/internal/telemetry"
)

func TestObserveReport(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)

	cfg := DefaultConfig()
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if r.ScratchAccesses <= 0 {
		t.Fatalf("report has no scratch accesses")
	}

	m.ObserveReport(r)
	m.ObserveReport(r)

	if got := m.Frames.Value(); got != 2 {
		t.Fatalf("frames = %g, want 2", got)
	}
	if got := m.DRAMBytes.Value(); got != float64(2*r.TrafficBytes) {
		t.Fatalf("dram bytes %g, want %d", got, 2*r.TrafficBytes)
	}
	if got := m.ScratchMisses.Value(); got != float64(2*r.Transfers) {
		t.Fatalf("misses %g, want %d", got, 2*r.Transfers)
	}
	// Energy: two frames at the model's per-frame energy, within float
	// tolerance, and positive.
	wantPJ := 2 * r.EnergyPerFrame * 1e12
	if got := m.Energy.TotalPicojoules(); got < wantPJ*0.999 || got > wantPJ*1.001 {
		t.Fatalf("energy %g pJ, want ≈%g", got, wantPJ)
	}
	if got := m.ModelFPS.Value(); got != r.FPS {
		t.Fatalf("fps gauge %g, want %g", got, r.FPS)
	}

	// The derived hit ratio is strictly between 0 and 1: the model does
	// far more port accesses than bursts.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, name := range []string{
		"sslic_hw_scratchpad_hit_ratio 0.9",
		"sslic_hw_dram_bytes_total",
		"sslic_energy_component_picojoules_total{component=\"dram\"}",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("exposition missing %q:\n%s", name, out)
		}
	}
}

func TestObserveReportNilSafe(t *testing.T) {
	var m *Metrics
	m.ObserveReport(&Report{})
	m.ObserveFuncSim(nil)
	reg := telemetry.NewRegistry()
	NewMetrics(reg).ObserveReport(nil)
}

func TestObserveFuncSim(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height, cfg.K = 64, 48, 12
	cfg.Passes = 2
	cfg.BufferBytesPerChannel = 256
	fs, err := NewFuncSim(cfg)
	if err != nil {
		t.Fatalf("NewFuncSim: %v", err)
	}
	im := funcTestImage(t, cfg.Width, cfg.Height)
	if _, err := fs.Run(im); err != nil {
		t.Fatalf("Run: %v", err)
	}

	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	wantBytes := float64(fs.DRAMBytes)
	m.ObserveFuncSim(fs)

	if got := m.DRAMBytes.Value(); got != wantBytes || got == 0 {
		t.Fatalf("dram bytes %g, want %g (nonzero)", got, wantBytes)
	}
	if m.ScratchHits.Value() == 0 || m.ScratchMisses.Value() == 0 {
		t.Fatalf("hits/misses = %g/%g, want both nonzero",
			m.ScratchHits.Value(), m.ScratchMisses.Value())
	}
	if m.Energy.TotalPicojoules() <= 0 {
		t.Fatalf("energy %g pJ, want > 0", m.Energy.TotalPicojoules())
	}

	// Counters were consumed: a second observe without a run adds ~nothing.
	m.ObserveFuncSim(fs)
	if got := m.DRAMBytes.Value(); got != wantBytes {
		t.Fatalf("second observe re-charged traffic: %g vs %g", got, wantBytes)
	}
}
