package hw

import (
	"math"
	"testing"

	"sslic/internal/energy"
)

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

// TestTable3Exact pins the latency/throughput rows of Table 3, which the
// stage model must reproduce exactly.
func TestTable3Exact(t *testing.T) {
	cases := []struct {
		cfg ClusterConfig
		lat int
		ii  int
	}{
		{Config111, 27, 9},
		{Config911, 19, 9},
		{Config191, 20, 9},
		{Config116, 22, 9},
		{Config996, 7, 1},
	}
	for _, c := range cases {
		if got := c.cfg.LatencyCycles(); got != c.lat {
			t.Errorf("%v latency = %d, want %d", c.cfg, got, c.lat)
		}
		if got := c.cfg.InitiationInterval(); got != c.ii {
			t.Errorf("%v II = %d, want %d", c.cfg, got, c.ii)
		}
	}
}

// TestTable3AreaPower checks the published area and power values within
// the calibration tolerance.
func TestTable3AreaPower(t *testing.T) {
	tech := energy.Default16nm()
	cases := []struct {
		cfg   ClusterConfig
		area  float64 // mm²
		power float64 // W
	}{
		{Config111, 0.0020, 3.3e-3},
		{Config911, 0.0149, 3.6e-3},
		{Config191, 0.0023, 3.2e-3},
		{Config116, 0.0025, 3.25e-3},
		{Config996, 0.0156, 30.9e-3},
	}
	for _, c := range cases {
		if relErr(c.cfg.AreaMM2(), c.area) > 0.02 {
			t.Errorf("%v area = %.4f mm², want %.4f", c.cfg, c.cfg.AreaMM2(), c.area)
		}
		if relErr(c.cfg.PowerWatts(tech), c.power) > 0.06 {
			t.Errorf("%v power = %.2f mW, want %.2f", c.cfg,
				c.cfg.PowerWatts(tech)*1e3, c.power*1e3)
		}
	}
}

// TestTable3TimeEnergy checks the 1080p per-iteration time and energy.
func TestTable3TimeEnergy(t *testing.T) {
	tech := energy.Default16nm()
	const n = 1920 * 1080
	cases := []struct {
		cfg    ClusterConfig
		timeMS float64
		enUJ   float64
	}{
		{Config111, 11.8, 38.9},
		{Config911, 11.8, 42.5},
		{Config191, 11.8, 37.5},
		{Config116, 11.8, 38.3},
		{Config996, 1.3, 40.6},
	}
	for _, c := range cases {
		if relErr(c.cfg.IterationTime(tech, n)*1e3, c.timeMS) > 0.03 {
			t.Errorf("%v time = %.2f ms, want %.1f", c.cfg, c.cfg.IterationTime(tech, n)*1e3, c.timeMS)
		}
		if relErr(c.cfg.IterationEnergy(tech, n)*1e6, c.enUJ) > 0.07 {
			t.Errorf("%v energy = %.1f µJ, want %.1f", c.cfg, c.cfg.IterationEnergy(tech, n)*1e6, c.enUJ)
		}
	}
}

// TestTable3Headline checks §6.2's stated ratios for 9-9-6 vs 1-1-1:
// 7.8× area, 9.4× power, 9× throughput, marginal energy increase.
func TestTable3Headline(t *testing.T) {
	tech := energy.Default16nm()
	areaRatio := Config996.AreaMM2() / Config111.AreaMM2()
	if areaRatio < 7 || areaRatio > 8.5 {
		t.Errorf("area ratio %.1f, want ~7.8", areaRatio)
	}
	powerRatio := Config996.PowerWatts(tech) / Config111.PowerWatts(tech)
	if powerRatio < 8.5 || powerRatio > 10 {
		t.Errorf("power ratio %.1f, want ~9.4", powerRatio)
	}
	tputRatio := Config996.ThroughputPixelsPerCycle() / Config111.ThroughputPixelsPerCycle()
	if tputRatio != 9 {
		t.Errorf("throughput ratio %.1f, want 9", tputRatio)
	}
	const n = 1920 * 1080
	enRatio := Config996.IterationEnergy(tech, n) / Config111.IterationEnergy(tech, n)
	if enRatio < 0.9 || enRatio > 1.15 {
		t.Errorf("energy ratio %.2f, want marginal (~1.04)", enRatio)
	}
}

func TestClusterConfigValidate(t *testing.T) {
	bad := []ClusterConfig{
		{0, 1, 1}, {2, 1, 1}, {1, 3, 1}, {1, 1, 9}, {1, 1, 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v accepted", c)
		}
	}
	for _, c := range Table3Configs() {
		if err := c.Validate(); err != nil {
			t.Errorf("%v rejected: %v", c, err)
		}
	}
}

func TestClusterConfigString(t *testing.T) {
	if Config996.String() != "9-9-6" || Config111.String() != "1-1-1" {
		t.Fatal("config naming")
	}
}

func TestImbalancedConfigsNoFaster(t *testing.T) {
	// §6.2: 9-1-1, 1-9-1 and 1-1-6 have imbalanced throughput — they pay
	// area without improving the initiation interval.
	for _, c := range []ClusterConfig{Config911, Config191, Config116} {
		if c.InitiationInterval() != Config111.InitiationInterval() {
			t.Errorf("%v II = %d, want same as 1-1-1", c, c.InitiationInterval())
		}
		if c.AreaMM2() <= Config111.AreaMM2() {
			t.Errorf("%v area not larger than 1-1-1", c)
		}
	}
}
