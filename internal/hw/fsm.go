package hw

import "fmt"

// State enumerates the host controller's states. The paper's §4.3 walks
// exactly this sequence: load RGB, color-convert through the scratchpads,
// then per tile load → cluster update → store, a center update after the
// full image, and loop until the pass budget is spent.
type State int

const (
	// StateIdle is the reset state.
	StateIdle State = iota
	// StateLoadFrame streams the RGB frame from external memory.
	StateLoadFrame
	// StateColorConvert runs the LUT conversion unit over the frame.
	StateColorConvert
	// StateLoadTile fills the scratchpads with one tile (Lab + indices +
	// the 9 candidate centers and their sigma accumulators).
	StateLoadTile
	// StateClusterUpdate drives the Cluster Update Unit over the tile.
	StateClusterUpdate
	// StateStoreTile drains the index memory and sigma state.
	StateStoreTile
	// StateCenterUpdate averages the sigma registers on the divider.
	StateCenterUpdate
	// StateDone holds the final assignment in external memory.
	StateDone
	numStates
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateLoadFrame:
		return "load-frame"
	case StateColorConvert:
		return "color-convert"
	case StateLoadTile:
		return "load-tile"
	case StateClusterUpdate:
		return "cluster-update"
	case StateStoreTile:
		return "store-tile"
	case StateCenterUpdate:
		return "center-update"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// legalTransitions encodes the controller's transition graph.
var legalTransitions = map[State][]State{
	StateIdle:          {StateLoadFrame},
	StateLoadFrame:     {StateColorConvert},
	StateColorConvert:  {StateLoadTile},
	StateLoadTile:      {StateClusterUpdate},
	StateClusterUpdate: {StateStoreTile},
	StateStoreTile:     {StateLoadTile, StateCenterUpdate},
	StateCenterUpdate:  {StateLoadTile, StateDone},
	StateDone:          {StateIdle},
}

// FSM is the host controller's state machine with transition-legality
// checking and per-state visit accounting.
type FSM struct {
	state  State
	visits [numStates]int64
}

// NewFSM returns a controller in StateIdle.
func NewFSM() *FSM {
	f := &FSM{state: StateIdle}
	f.visits[StateIdle] = 1
	return f
}

// State returns the current state.
func (f *FSM) State() State { return f.state }

// Visits returns how many times the controller entered the state.
func (f *FSM) Visits(s State) int64 {
	if s < 0 || s >= numStates {
		return 0
	}
	return f.visits[s]
}

// Transition moves to the target state if the transition graph allows
// it, and errors otherwise — catching sequencing bugs in the models that
// drive it.
func (f *FSM) Transition(to State) error {
	for _, legal := range legalTransitions[f.state] {
		if legal == to {
			f.state = to
			f.visits[to]++
			return nil
		}
	}
	return fmt.Errorf("hw: illegal FSM transition %v → %v", f.state, to)
}

// mustTransition is the internal driver used by the functional
// simulation, where an illegal transition is a programming error.
func (f *FSM) mustTransition(to State) {
	if err := f.Transition(to); err != nil {
		panic(err)
	}
}
