package hw

import (
	"math"
	"testing"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
	"sslic/internal/slic"
	"sslic/internal/sslic"
)

// funcTestConfig shrinks the default design to a small frame so the
// functional simulation stays fast.
func funcTestConfig(w, h, k int) Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height, cfg.K = w, h, k
	cfg.BufferBytesPerChannel = 1024
	return cfg
}

func funcTestImage(t testing.TB, w, h int) *imgio.Image {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.W, dcfg.H = w, h
	dcfg.Regions = 8
	s, err := dataset.Generate(dcfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	return s.Image
}

func TestFuncSimValidation(t *testing.T) {
	cfg := funcTestConfig(96, 64, 24)
	cfg.Cores = 2
	if _, err := NewFuncSim(cfg); err == nil {
		t.Error("multi-core functional sim accepted")
	}
	cfg = funcTestConfig(0, 64, 24)
	if _, err := NewFuncSim(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFuncSimRejectsWrongImageSize(t *testing.T) {
	fs, err := NewFuncSim(funcTestConfig(96, 64, 24))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Run(imgio.NewImage(50, 50)); err == nil {
		t.Error("mismatched image accepted")
	}
}

func TestFuncSimProducesFullLabeling(t *testing.T) {
	w, h, k := 96, 64, 24
	fs, err := NewFuncSim(funcTestConfig(w, h, k))
	if err != nil {
		t.Fatal(err)
	}
	im := funcTestImage(t, w, h)
	labels, err := fs.Run(im)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unlabeled", i)
		}
	}
	n := labels.NumRegions()
	if n < k/2 || n > k*2 {
		t.Fatalf("functional sim produced %d regions for K=%d", n, k)
	}
	if fs.DistanceCalcs == 0 || fs.Cycles == 0 || fs.DRAMBytes == 0 || fs.DividerOps == 0 {
		t.Fatal("counters not accumulating")
	}
}

func TestFuncSimDeterministic(t *testing.T) {
	w, h, k := 96, 64, 24
	im := funcTestImage(t, w, h)
	run := func() (*imgio.LabelMap, int64) {
		fs, err := NewFuncSim(funcTestConfig(w, h, k))
		if err != nil {
			t.Fatal(err)
		}
		labels, err := fs.Run(im)
		if err != nil {
			t.Fatal(err)
		}
		return labels, fs.Cycles
	}
	l1, c1 := run()
	l2, c2 := run()
	if c1 != c2 {
		t.Fatalf("cycle counts differ: %d vs %d", c1, c2)
	}
	for i := range l1.Labels {
		if l1.Labels[i] != l2.Labels[i] {
			t.Fatal("labels differ between runs")
		}
	}
}

// TestFuncSimAgreesWithSoftware checks the central fidelity property:
// the bit-accurate hardware pipeline and the software S-SLIC with the
// 8-bit datapath must produce closely matching segmentations. They
// quantize through different but equivalent paths (LUT unit vs float
// round-trip), so agreement is measured on boundary structure.
func TestFuncSimAgreesWithSoftware(t *testing.T) {
	w, h, k := 96, 64, 24
	im := funcTestImage(t, w, h)

	fs, err := NewFuncSim(funcTestConfig(w, h, k))
	if err != nil {
		t.Fatal(err)
	}
	hwLabels, err := fs.Run(im)
	if err != nil {
		t.Fatal(err)
	}

	p := sslic.DefaultParams(k, 1)
	p.FullIters = fs.cfg.Passes
	p.Quantization = slic.NewDatapath(8)
	p.PerturbCenters = false // hardware uses static grid centers
	p.EnforceConnectivity = false
	sw, err := sslic.Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}

	hwMask := hwLabels.BoundaryMask()
	swMask := sw.Labels.BoundaryMask()
	agree := 0
	for i := range hwMask {
		if hwMask[i] == swMask[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(hwMask)); frac < 0.85 {
		t.Fatalf("hardware/software boundary agreement %.2f, want >= 0.85", frac)
	}
}

// TestFuncSimCyclesMatchAnalyticModel cross-checks the functional
// simulation's cycle count against the analytic Simulate on the same
// configuration: the cluster + center compute cycles must agree within
// a few percent (the models differ only in per-grid-cell vs per-buffer
// drain accounting).
func TestFuncSimCyclesMatchAnalyticModel(t *testing.T) {
	w, h, k := 192, 128, 96
	cfg := funcTestConfig(w, h, k)
	fs, err := NewFuncSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im := funcTestImage(t, w, h)
	if _, err := fs.Run(im); err != nil {
		t.Fatal(err)
	}
	analytic, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic compute time (color conv pipeline + cluster + center) vs
	// functional cycles. The analytic color conversion phase is the max
	// of compute and streaming; compare against its compute component
	// (N cycles).
	n := float64(w * h)
	analyticCycles := n + // color conversion pipeline
		(analytic.ClusterComputeTime+analytic.CenterUpdateTime)*cfg.Tech.ClockHz
	got := float64(fs.Cycles)
	if r := math.Abs(got-analyticCycles) / analyticCycles; r > 0.06 {
		t.Fatalf("functional %.0f vs analytic %.0f cycles (%.1f%% apart)",
			got, analyticCycles, 100*r)
	}
}

// TestFuncSimSubsamplingCutsWork verifies that ratio 0.5 halves distance
// calculations and pixel traffic in the functional pipeline.
func TestFuncSimSubsamplingCutsWork(t *testing.T) {
	w, h, k := 96, 64, 24
	im := funcTestImage(t, w, h)
	run := func(ratio float64) *FuncSim {
		cfg := funcTestConfig(w, h, k)
		cfg.SubsampleRatio = ratio
		fs, err := NewFuncSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Run(im); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	full := run(1)
	half := run(0.5)
	ratio := float64(full.DistanceCalcs) / float64(half.DistanceCalcs)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("distance calc reduction %.2f, want ~2", ratio)
	}
	if half.DRAMBytes >= full.DRAMBytes {
		t.Error("subsampling did not reduce traffic")
	}
}

func TestDistanceCodeProperties(t *testing.T) {
	c := &centerReg{l: 100, a: 128, b: 128, x: 10, y: 10}
	// Distance to self is zero.
	if code := distanceCode(100, 128, 128, 10, 10, c, 256); code != 0 {
		t.Fatalf("self distance code %d", code)
	}
	// Code saturates at 255.
	if code := distanceCode(255, 0, 255, 1000, 1000, c, 2560); code != 255 {
		t.Fatalf("saturation code %d", code)
	}
	// Monotone in color difference.
	near := distanceCode(110, 128, 128, 10, 10, c, 256)
	far := distanceCode(200, 128, 128, 10, 10, c, 256)
	if far <= near {
		t.Fatalf("codes not monotone: near %d, far %d", near, far)
	}
}

// TestFuncSimClusterConfigScalesCycles verifies that the functional
// pipeline's cycle count scales with the configured initiation interval:
// iterative cluster units take ~9× the per-pixel cycles of the 9-9-6.
func TestFuncSimClusterConfigScalesCycles(t *testing.T) {
	w, h, k := 96, 64, 24
	im := funcTestImage(t, w, h)
	cycles := func(cl ClusterConfig) int64 {
		cfg := funcTestConfig(w, h, k)
		cfg.Cluster = cl
		fs, err := NewFuncSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Run(im); err != nil {
			t.Fatal(err)
		}
		return fs.Cycles
	}
	fast := cycles(Config996)
	slow := cycles(Config111)
	// Per-pixel cluster work is 9× slower; fixed costs (color conversion,
	// center update) dilute the ratio.
	if ratio := float64(slow) / float64(fast); ratio < 1.5 {
		t.Fatalf("1-1-1 only %.2f× slower than 9-9-6 in functional sim", ratio)
	}
	// Labels must be identical: parallelism changes timing, not values.
	cfgA := funcTestConfig(w, h, k)
	cfgA.Cluster = Config996
	fsA, _ := NewFuncSim(cfgA)
	la, _ := fsA.Run(im)
	cfgB := funcTestConfig(w, h, k)
	cfgB.Cluster = Config111
	fsB, _ := NewFuncSim(cfgB)
	lb, _ := fsB.Run(im)
	for i := range la.Labels {
		if la.Labels[i] != lb.Labels[i] {
			t.Fatal("cluster parallelism changed functional results")
		}
	}
}

// TestFuncSimTimeSeconds sanity-checks the cycle-to-time conversion.
func TestFuncSimTimeSeconds(t *testing.T) {
	cfg := funcTestConfig(96, 64, 24)
	fs, err := NewFuncSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im := funcTestImage(t, 96, 64)
	if _, err := fs.Run(im); err != nil {
		t.Fatal(err)
	}
	want := float64(fs.Cycles) / cfg.Tech.ClockHz
	if fs.TimeSeconds() != want {
		t.Fatalf("TimeSeconds %g, want %g", fs.TimeSeconds(), want)
	}
}

// TestPowerBreakdownConsistent checks that the itemized power sums to
// the reported total for several design points.
func TestPowerBreakdownConsistent(t *testing.T) {
	for _, buf := range []int{1024, 4096, 65536} {
		cfg := DefaultConfig()
		cfg.BufferBytesPerChannel = buf
		r, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(r.PowerBreakdown.Total(), r.PowerWatts) > 1e-12 {
			t.Fatalf("buf %d: breakdown %.4f != total %.4f", buf,
				r.PowerBreakdown.Total(), r.PowerWatts)
		}
		if r.PowerBreakdown.Scratchpads <= 0 || r.PowerBreakdown.Cluster <= 0 {
			t.Fatalf("buf %d: missing breakdown items: %+v", buf, r.PowerBreakdown)
		}
	}
}

// TestFuncSimEnergyCrossCheck: bottom-up (counter-driven) and top-down
// (utilization-weighted) energy estimates must agree within a small
// factor — they share calibration constants but opposite methodologies.
func TestFuncSimEnergyCrossCheck(t *testing.T) {
	w, h, k := 192, 128, 96
	cfg := funcTestConfig(w, h, k)
	fs, err := NewFuncSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im := funcTestImage(t, w, h)
	if _, err := fs.Run(im); err != nil {
		t.Fatal(err)
	}
	bottomUp := fs.EnergyJoules(cfg.Tech)
	analytic, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topDown := analytic.EnergyPerFrame
	ratio := bottomUp / topDown
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("bottom-up %.3g J vs top-down %.3g J (ratio %.2f) — models diverged",
			bottomUp, topDown, ratio)
	}
}
