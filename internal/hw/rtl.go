package hw

import "fmt"

// This file contains the structural (register-transfer-level) pipeline
// model of the Cluster Update Unit. Where ClusterConfig's LatencyCycles
// and InitiationInterval are closed-form, the structural model builds
// the actual stage pipeline — fetch, distance calculators, minimum,
// sigma select, adders, writeback — and simulates it cycle by cycle, so
// the Table 3 numbers are *derived* from structure rather than assumed.
// The analytic formulas are tested against this simulation.

// Stage is one pipeline stage: II is the initiation interval (cycles the
// stage stays busy per job), Latency the cycles until its result is
// available to the next stage. A fully pipelined stage has II 1; an
// iterative (time-multiplexed) unit has II equal to its iteration count.
type Stage struct {
	Name    string
	II      int
	Latency int
}

// Pipeline is an in-order chain of stages.
type Pipeline struct {
	Stages []Stage
}

// Validate reports whether every stage has positive II and latency and
// II ≤ Latency (a stage cannot free up before producing its result).
func (p *Pipeline) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("hw: empty pipeline")
	}
	for _, s := range p.Stages {
		if s.II < 1 || s.Latency < 1 {
			return fmt.Errorf("hw: stage %q has non-positive II/latency", s.Name)
		}
		if s.II > s.Latency {
			return fmt.Errorf("hw: stage %q II %d exceeds latency %d", s.Name, s.II, s.Latency)
		}
	}
	return nil
}

// PipelineReport is the outcome of a structural simulation.
type PipelineReport struct {
	// JobLatency is the cycle count from issue to completion of an
	// isolated job (Table 3's "Latency" row).
	JobLatency int
	// SteadyStateII is the asymptotic cycles between completions under
	// continuous issue (the inverse of Table 3's "Throughput" row).
	SteadyStateII float64
	// TotalCycles is the makespan of the simulated job batch.
	TotalCycles int
}

// Simulate pushes jobs through the pipeline cycle-accurately: a job
// enters stage j as soon as both its data is available and the stage is
// free, holds the stage for II cycles, and presents its result Latency
// cycles after entry.
func (p *Pipeline) Simulate(jobs int) (*PipelineReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if jobs < 1 {
		return nil, fmt.Errorf("hw: job count %d", jobs)
	}
	nextFree := make([]int, len(p.Stages))
	completions := make([]int, jobs)
	for job := 0; job < jobs; job++ {
		avail := 0 // cycle at which the job's data is ready for the next stage
		for j, s := range p.Stages {
			enter := avail
			if nextFree[j] > enter {
				enter = nextFree[j]
			}
			nextFree[j] = enter + s.II
			avail = enter + s.Latency
		}
		completions[job] = avail
	}
	r := &PipelineReport{
		JobLatency:  completions[0],
		TotalCycles: completions[jobs-1],
	}
	if jobs > 1 {
		// Measure the steady-state rate over the second half of the batch
		// to exclude fill effects.
		mid := jobs / 2
		r.SteadyStateII = float64(completions[jobs-1]-completions[mid]) / float64(jobs-1-mid)
	} else {
		r.SteadyStateII = float64(completions[0])
	}
	return r, nil
}

// ClusterPipeline builds the structural stage chain of the Cluster
// Update Unit for a parallelism configuration:
//
//	fetch → distance calculators → 9:1 minimum → sigma select →
//	sigma adders → index writeback
//
// Iterative units occupy their stage for one cycle per sub-operation
// (9 distances, 9 comparisons, 6 additions); parallel units are fully
// pipelined, with the 9:1 comparison tree registered over two levels.
func ClusterPipeline(c ClusterConfig) (*Pipeline, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	dist := Stage{Name: "distance", II: 9, Latency: 9}
	if c.DistWays == 9 {
		dist = Stage{Name: "distance", II: 1, Latency: 1}
	}
	min := Stage{Name: "minimum", II: 9, Latency: 9}
	if c.MinWays == 9 {
		min = Stage{Name: "minimum", II: 1, Latency: 2}
	}
	add := Stage{Name: "adders", II: 6, Latency: 6}
	if c.AdderWays == 6 {
		add = Stage{Name: "adders", II: 1, Latency: 1}
	}
	return &Pipeline{Stages: []Stage{
		{Name: "fetch", II: 1, Latency: 1},
		dist,
		min,
		{Name: "select", II: 1, Latency: 1},
		add,
		{Name: "writeback", II: 1, Latency: 1},
	}}, nil
}
