package hw

import (
	"math"
	"testing"
	"testing/quick"
)

// TestStructuralMatchesAnalytic is the cross-validation at the heart of
// the RTL model: for every buildable parallelism configuration, the
// cycle-accurate pipeline simulation must reproduce the closed-form
// latency and initiation interval the analytic model (and Table 3) use.
func TestStructuralMatchesAnalytic(t *testing.T) {
	for _, dw := range []int{1, 9} {
		for _, mw := range []int{1, 9} {
			for _, aw := range []int{1, 6} {
				cfg := ClusterConfig{DistWays: dw, MinWays: mw, AdderWays: aw}
				p, err := ClusterPipeline(cfg)
				if err != nil {
					t.Fatal(err)
				}
				r, err := p.Simulate(2000)
				if err != nil {
					t.Fatal(err)
				}
				if r.JobLatency != cfg.LatencyCycles() {
					t.Errorf("%v: structural latency %d, analytic %d",
						cfg, r.JobLatency, cfg.LatencyCycles())
				}
				if math.Abs(r.SteadyStateII-float64(cfg.InitiationInterval())) > 1e-9 {
					t.Errorf("%v: structural II %.3f, analytic %d",
						cfg, r.SteadyStateII, cfg.InitiationInterval())
				}
			}
		}
	}
}

// TestStructuralTable3Rows pins the five published configurations.
func TestStructuralTable3Rows(t *testing.T) {
	want := map[string][2]int{ // latency, II
		"1-1-1": {27, 9},
		"9-1-1": {19, 9},
		"1-9-1": {20, 9},
		"1-1-6": {22, 9},
		"9-9-6": {7, 1},
	}
	for _, cfg := range Table3Configs() {
		p, err := ClusterPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Simulate(1000)
		if err != nil {
			t.Fatal(err)
		}
		w := want[cfg.String()]
		if r.JobLatency != w[0] || int(math.Round(r.SteadyStateII)) != w[1] {
			t.Errorf("%v: latency %d / II %.1f, want %d / %d",
				cfg, r.JobLatency, r.SteadyStateII, w[0], w[1])
		}
	}
}

func TestPipelineValidate(t *testing.T) {
	bad := []Pipeline{
		{},
		{Stages: []Stage{{Name: "x", II: 0, Latency: 1}}},
		{Stages: []Stage{{Name: "x", II: 1, Latency: 0}}},
		{Stages: []Stage{{Name: "x", II: 5, Latency: 3}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pipeline %d accepted", i)
		}
		if _, err := p.Simulate(10); err == nil {
			t.Errorf("bad pipeline %d simulated", i)
		}
	}
}

func TestPipelineSimulateJobCount(t *testing.T) {
	p, _ := ClusterPipeline(Config996)
	if _, err := p.Simulate(0); err == nil {
		t.Error("zero jobs accepted")
	}
	r, err := p.Simulate(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.JobLatency != r.TotalCycles {
		t.Error("single-job latency must equal makespan")
	}
}

// TestPipelineInvariants checks two structural laws on random pipelines:
// isolated latency equals the sum of stage latencies, and steady-state
// II equals the maximum stage II.
func TestPipelineInvariants(t *testing.T) {
	prop := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		nStages := 1 + next(6)
		p := Pipeline{}
		sumLat, maxII := 0, 0
		for i := 0; i < nStages; i++ {
			ii := 1 + next(9)
			lat := ii + next(5)
			p.Stages = append(p.Stages, Stage{Name: "s", II: ii, Latency: lat})
			sumLat += lat
			if ii > maxII {
				maxII = ii
			}
		}
		r, err := p.Simulate(1500)
		if err != nil {
			return false
		}
		return r.JobLatency == sumLat && math.Abs(r.SteadyStateII-float64(maxII)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineThroughputTimesMatchesTable3Time confirms that pushing a
// full 1080p frame through the structural 9-9-6 pipeline takes the 1.3 ms
// Table 3 reports (and 11.8 ms for 1-1-1).
func TestPipelineThroughputTimesMatchesTable3Time(t *testing.T) {
	const n = 1920 * 1080
	const clock = 1.6e9
	check := func(cfg ClusterConfig, wantMS float64) {
		p, _ := ClusterPipeline(cfg)
		// Simulating 2M jobs individually is cheap (simple arithmetic per
		// stage), but extrapolate from the steady-state II instead to keep
		// the test fast: makespan ≈ latency + (n-1)·II.
		r, err := p.Simulate(5000)
		if err != nil {
			t.Fatal(err)
		}
		ms := (float64(r.JobLatency) + float64(n-1)*r.SteadyStateII) / clock * 1e3
		if math.Abs(ms-wantMS)/wantMS > 0.02 {
			t.Errorf("%v: %.2f ms per frame, want ~%.1f", cfg, ms, wantMS)
		}
	}
	check(Config996, 1.3)
	check(Config111, 11.7)
}

func TestClusterPipelineRejectsInvalidConfig(t *testing.T) {
	if _, err := ClusterPipeline(ClusterConfig{DistWays: 3, MinWays: 1, AdderWays: 1}); err == nil {
		t.Error("invalid config accepted")
	}
}
