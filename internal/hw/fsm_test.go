package hw

import "testing"

func TestFSMLegalSequence(t *testing.T) {
	f := NewFSM()
	seq := []State{
		StateLoadFrame, StateColorConvert,
		StateLoadTile, StateClusterUpdate, StateStoreTile,
		StateLoadTile, StateClusterUpdate, StateStoreTile,
		StateCenterUpdate,
		StateLoadTile, StateClusterUpdate, StateStoreTile,
		StateCenterUpdate, StateDone, StateIdle,
	}
	for i, to := range seq {
		if err := f.Transition(to); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if f.State() != StateIdle {
		t.Fatalf("final state %v", f.State())
	}
	if f.Visits(StateLoadTile) != 3 || f.Visits(StateCenterUpdate) != 2 {
		t.Fatalf("visit counts wrong: load-tile %d, center %d",
			f.Visits(StateLoadTile), f.Visits(StateCenterUpdate))
	}
}

func TestFSMIllegalTransitions(t *testing.T) {
	cases := []struct {
		path []State
		bad  State
	}{
		{nil, StateColorConvert},                 // idle → convert skips load
		{nil, StateDone},                         // idle → done
		{[]State{StateLoadFrame}, StateLoadTile}, // skip conversion
		{[]State{StateLoadFrame, StateColorConvert, StateLoadTile}, StateStoreTile}, // skip cluster update
	}
	for i, c := range cases {
		f := NewFSM()
		for _, to := range c.path {
			if err := f.Transition(to); err != nil {
				t.Fatalf("case %d setup: %v", i, err)
			}
		}
		if err := f.Transition(c.bad); err == nil {
			t.Errorf("case %d: illegal transition to %v accepted", i, c.bad)
		}
	}
}

func TestFSMStateStrings(t *testing.T) {
	names := map[State]string{
		StateIdle: "idle", StateLoadFrame: "load-frame",
		StateColorConvert: "color-convert", StateLoadTile: "load-tile",
		StateClusterUpdate: "cluster-update", StateStoreTile: "store-tile",
		StateCenterUpdate: "center-update", StateDone: "done",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state must render")
	}
}

func TestFuncSimEndsDone(t *testing.T) {
	cfg := funcTestConfig(96, 64, 24)
	fs, err := NewFuncSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im := funcTestImage(t, 96, 64)
	if _, err := fs.Run(im); err != nil {
		t.Fatal(err)
	}
	if fs.FSM().State() != StateDone {
		t.Fatalf("final FSM state %v, want done", fs.FSM().State())
	}
	// One tile sequence per grid cell per pass, one center update per
	// pass.
	wantTiles := int64(24 * cfg.Passes)
	if got := fs.FSM().Visits(StateLoadTile); got != wantTiles {
		t.Fatalf("load-tile visits %d, want %d", got, wantTiles)
	}
	if got := fs.FSM().Visits(StateCenterUpdate); got != int64(cfg.Passes) {
		t.Fatalf("center-update visits %d, want %d", got, cfg.Passes)
	}
}

func TestFSMVisitsOutOfRange(t *testing.T) {
	f := NewFSM()
	if f.Visits(State(-1)) != 0 || f.Visits(State(99)) != 0 {
		t.Fatal("out-of-range visits must be 0")
	}
}
