package hw

import "testing"

func TestScratchpadBasic(t *testing.T) {
	sp, err := NewScratchpad("ch1", 64)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "ch1" || sp.Capacity() != 64 {
		t.Fatal("metadata wrong")
	}
	if err := sp.Write(10, 42); err != nil {
		t.Fatal(err)
	}
	v, err := sp.Read(10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("read %d", v)
	}
	if sp.Reads() != 1 || sp.Writes() != 1 {
		t.Fatalf("counters %d/%d", sp.Reads(), sp.Writes())
	}
}

func TestScratchpadBounds(t *testing.T) {
	sp, _ := NewScratchpad("x", 16)
	if _, err := sp.Read(-1); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := sp.Read(16); err == nil {
		t.Error("overflow read accepted")
	}
	if err := sp.Write(16, 1); err == nil {
		t.Error("overflow write accepted")
	}
	if err := sp.Fill(10, make([]uint8, 10)); err == nil {
		t.Error("overflow fill accepted")
	}
	if err := sp.Drain(8, make([]uint8, 9)); err == nil {
		t.Error("overflow drain accepted")
	}
	if _, err := NewScratchpad("bad", 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestScratchpadBurstCounters(t *testing.T) {
	sp, _ := NewScratchpad("x", 32)
	src := []uint8{1, 2, 3, 4}
	if err := sp.Fill(4, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint8, 4)
	if err := sp.Drain(4, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("burst contents wrong")
		}
	}
	if sp.Writes() != 4 || sp.Reads() != 4 {
		t.Fatalf("burst counters %d/%d", sp.Reads(), sp.Writes())
	}
	sp.ResetCounters()
	if sp.Reads() != 0 || sp.Writes() != 0 {
		t.Fatal("reset incomplete")
	}
	// Contents preserved across counter reset.
	if v, _ := sp.Read(5); v != 2 {
		t.Fatal("reset clobbered contents")
	}
}
