package hw

import (
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.K = 1 << 30 },
		func(c *Config) { c.Cluster.DistWays = 5 },
		func(c *Config) { c.BufferBytesPerChannel = 64 },
		func(c *Config) { c.Passes = 0 },
		func(c *Config) { c.SubsampleRatio = 0 },
		func(c *Config) { c.SubsampleRatio = 2 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Tech.ClockHz = 0 },
		func(c *Config) { c.DividerCyclesPerField = 0 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Simulate(c); err == nil {
			t.Errorf("mutation %d simulated", i)
		}
	}
}

// TestSection7Decomposition pins the paper's §7 latency analysis for the
// default HD configuration: color conversion ≈1.4 ms, cluster update
// computation ≈20.3 ms (cluster pipeline + center updates), memory
// ≈11.1 ms, total ≈32.8 ms at ≥30 fps.
func TestSection7Decomposition(t *testing.T) {
	r, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if relErr(r.ColorConvTime, 1.4e-3) > 0.12 {
		t.Errorf("color conversion %.2f ms, want ~1.4", r.ColorConvTime*1e3)
	}
	compute := r.ClusterComputeTime + r.CenterUpdateTime
	if relErr(compute, 20.3e-3) > 0.05 {
		t.Errorf("cluster+center compute %.2f ms, want ~20.3", compute*1e3)
	}
	if relErr(r.ClusterMemTime, 11.1e-3) > 0.05 {
		t.Errorf("memory time %.2f ms, want ~11.1", r.ClusterMemTime*1e3)
	}
	if relErr(r.TotalTime, 32.8e-3) > 0.03 {
		t.Errorf("total %.2f ms, want ~32.8", r.TotalTime*1e3)
	}
	if !r.RealTime {
		t.Error("default HD configuration must be real-time")
	}
}

// TestTable4HDRow pins the physical summary of Table 4's HD column.
func TestTable4HDRow(t *testing.T) {
	r, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if relErr(r.AreaMM2, 0.066) > 0.03 {
		t.Errorf("area %.4f mm², want ~0.066", r.AreaMM2)
	}
	if relErr(r.PowerWatts, 49e-3) > 0.05 {
		t.Errorf("power %.1f mW, want ~49", r.PowerWatts*1e3)
	}
	if relErr(r.EnergyPerFrame, 1.6e-3) > 0.05 {
		t.Errorf("energy %.2f mJ/frame, want ~1.6", r.EnergyPerFrame*1e3)
	}
	if relErr(r.PerfPerArea, 461) > 0.03 {
		t.Errorf("perf/area %.0f fps/mm², want ~461", r.PerfPerArea)
	}
	if r.OnChipBytes != 16384 {
		t.Errorf("on-chip bytes %d, want 16384", r.OnChipBytes)
	}
}

// TestFigure6RealTimeCrossing checks §6.3: 1-2 kB buffers miss real time,
// 4 kB and above make it, and larger buffers yield only slightly better
// frame times.
func TestFigure6RealTimeCrossing(t *testing.T) {
	frameTime := func(bufBytes int) float64 {
		cfg := DefaultConfig()
		cfg.BufferBytesPerChannel = bufBytes
		r, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalTime
	}
	if fps := 1 / frameTime(1024); fps >= 30 {
		t.Errorf("1 kB buffer reaches %.1f fps, want < 30", fps)
	}
	if fps := 1 / frameTime(2048); fps >= 30 {
		t.Errorf("2 kB buffer reaches %.1f fps, want < 30", fps)
	}
	if fps := 1 / frameTime(4096); fps < 30 {
		t.Errorf("4 kB buffer reaches only %.1f fps, want >= 30", fps)
	}
	// Monotone improvement with diminishing returns.
	prev := frameTime(1024)
	for _, kb := range []int{2, 4, 8, 16, 32, 64, 128} {
		cur := frameTime(kb * 1024)
		if cur > prev {
			t.Errorf("frame time increased at %d kB", kb)
		}
		prev = cur
	}
	if gain := frameTime(4096) - frameTime(128*1024); gain > 2e-3 {
		t.Errorf("4→128 kB saves %.2f ms; paper says only slightly better", gain*1e3)
	}
}

// TestFigure6MemoryFraction checks §6.3's "memory access takes 35% of
// total execution time" at the 4 kB design point.
func TestFigure6MemoryFraction(t *testing.T) {
	r, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	frac := r.ClusterMemTime / r.TotalTime
	if frac < 0.30 || frac > 0.40 {
		t.Errorf("memory fraction %.2f, want ~0.35", frac)
	}
}

// TestResolutionScaling checks the Table 4 trend: smaller frames mean
// lower latency, higher fps, lower energy per frame.
func TestResolutionScaling(t *testing.T) {
	resolutions := []struct{ w, h int }{{1920, 1080}, {1280, 768}, {640, 480}}
	prevLat, prevEn := 1e9, 1e9
	for _, res := range resolutions {
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = res.w, res.h
		cfg.BufferBytesPerChannel = 1024
		r, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalTime >= prevLat {
			t.Errorf("%dx%d latency did not drop", res.w, res.h)
		}
		if r.EnergyPerFrame >= prevEn {
			t.Errorf("%dx%d energy did not drop", res.w, res.h)
		}
		prevLat, prevEn = r.TotalTime, r.EnergyPerFrame
	}
}

// TestSubsamplingReducesTrafficAndTime verifies that a ratio-0.5 run
// moves roughly half the pixel traffic per pass and shortens cluster
// compute time.
func TestSubsamplingReducesTrafficAndTime(t *testing.T) {
	full, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SubsampleRatio = 0.5
	half, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(full.TrafficBytes) / float64(half.TrafficBytes)
	// Pixel traffic halves; per-tile center/sigma overhead doesn't, so
	// the factor lands a bit under 2 — the abstract's 1.8×.
	if ratio < 1.7 || ratio > 2.0 {
		t.Errorf("traffic reduction %.2f, want ~1.8-2.0", ratio)
	}
	if half.ClusterComputeTime >= full.ClusterComputeTime {
		t.Error("subsampling did not reduce cluster compute time")
	}
	if half.CenterUpdateTime != full.CenterUpdateTime {
		t.Error("center update cost must not depend on the pixel subset")
	}
}

// TestMoreCoresFaster verifies the cores knob of the DSE.
func TestMoreCoresFaster(t *testing.T) {
	one, _ := Simulate(DefaultConfig())
	cfg := DefaultConfig()
	cfg.Cores = 2
	two, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if two.ClusterComputeTime >= one.ClusterComputeTime {
		t.Error("2 cores not faster than 1")
	}
	if two.AreaMM2 <= one.AreaMM2 {
		t.Error("2 cores must cost more area")
	}
}

// TestSlowerClusterConfigsSlower confirms the iterative configurations
// miss real time at HD, motivating the 9-9-6 choice (§6.2).
func TestSlowerClusterConfigsSlower(t *testing.T) {
	for _, cl := range []ClusterConfig{Config111, Config911, Config191, Config116} {
		cfg := DefaultConfig()
		cfg.Cluster = cl
		r, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.RealTime {
			t.Errorf("%v reaches real time at HD; only 9-9-6 should", cl)
		}
	}
}

// TestReportInternallyConsistent cross-checks derived fields.
func TestReportInternallyConsistent(t *testing.T) {
	r, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := r.ColorConvTime + r.ClusterComputeTime + r.ClusterMemTime + r.CenterUpdateTime
	if relErr(sum, r.TotalTime) > 1e-9 {
		t.Error("phase times do not sum to total")
	}
	if relErr(r.FPS, 1/r.TotalTime) > 1e-9 {
		t.Error("FPS inconsistent")
	}
	if relErr(r.EnergyPerFrame, r.PowerWatts*r.TotalTime) > 1e-9 {
		t.Error("energy inconsistent")
	}
	if r.Transfers <= 0 || r.TrafficBytes <= 0 {
		t.Error("traffic accounting empty")
	}
}

// TestStreamFPSPipelinesColorConversion: streaming throughput must beat
// single-frame latency by overlapping the color conversion stage, and
// never exceed the cluster-stage bound.
func TestStreamFPSPipelinesColorConversion(t *testing.T) {
	r, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.StreamFPS <= r.FPS {
		t.Fatalf("stream fps %.2f not above frame fps %.2f", r.StreamFPS, r.FPS)
	}
	bound := 1 / (r.ClusterComputeTime + r.ClusterMemTime + r.CenterUpdateTime)
	if relErr(r.StreamFPS, bound) > 1e-9 {
		t.Fatalf("stream fps %.2f, want stage bound %.2f", r.StreamFPS, bound)
	}
}

// TestAreaBreakdownConsistent mirrors the power breakdown check.
func TestAreaBreakdownConsistent(t *testing.T) {
	r, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if relErr(r.AreaBreakdown.Total(), r.AreaMM2) > 1e-12 {
		t.Fatal("area breakdown does not sum to total")
	}
	if r.AreaBreakdown.Scratchpads <= r.AreaBreakdown.FSM {
		t.Fatal("16 kB of SRAM must outweigh the FSM")
	}
}
