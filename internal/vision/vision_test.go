package vision

import (
	"math"
	"testing"

	"sslic/internal/imgio"
)

// twoRegionScene builds a 16×8 image split vertically: left solid red,
// right solid blue, with the matching label map.
func twoRegionScene() (*imgio.Image, *imgio.LabelMap) {
	im := imgio.NewImage(16, 8)
	lm := imgio.NewLabelMap(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			if x < 8 {
				im.Set(x, y, 200, 10, 10)
				lm.Set(x, y, 0)
			} else {
				im.Set(x, y, 10, 10, 200)
				lm.Set(x, y, 1)
			}
		}
	}
	return im, lm
}

func TestExtractFeaturesBasic(t *testing.T) {
	im, lm := twoRegionScene()
	feats, err := ExtractFeatures(im, lm)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 2 {
		t.Fatalf("%d features", len(feats))
	}
	f0 := feats[0]
	if f0.Area != 64 {
		t.Errorf("area %d, want 64", f0.Area)
	}
	if f0.MeanColor != [3]float64{200, 10, 10} {
		t.Errorf("mean color %v", f0.MeanColor)
	}
	for c, v := range f0.ColorVar {
		if v != 0 {
			t.Errorf("solid region channel %d variance %g", c, v)
		}
	}
	if math.Abs(f0.CentroidX-3.5) > 1e-9 || math.Abs(f0.CentroidY-3.5) > 1e-9 {
		t.Errorf("centroid (%g,%g), want (3.5,3.5)", f0.CentroidX, f0.CentroidY)
	}
	if f0.MinX != 0 || f0.MaxX != 7 || f0.MinY != 0 || f0.MaxY != 7 {
		t.Errorf("bbox [%d,%d]x[%d,%d]", f0.MinX, f0.MaxX, f0.MinY, f0.MaxY)
	}
	if f0.Perimeter != 8 { // only the boundary column x=7 faces region 1
		t.Errorf("perimeter %d, want 8", f0.Perimeter)
	}
}

func TestExtractFeaturesVariance(t *testing.T) {
	im := imgio.NewImage(2, 1)
	im.Set(0, 0, 0, 100, 50)
	im.Set(1, 0, 200, 100, 50)
	lm := imgio.NewLabelMap(2, 1)
	lm.Set(0, 0, 0)
	lm.Set(1, 0, 0)
	feats, err := ExtractFeatures(im, lm)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0: values {0, 200} → mean 100, variance 10000.
	if math.Abs(feats[0].ColorVar[0]-10000) > 1e-6 {
		t.Errorf("variance %g, want 10000", feats[0].ColorVar[0])
	}
	if feats[0].ColorVar[1] != 0 {
		t.Errorf("constant channel variance %g", feats[0].ColorVar[1])
	}
}

func TestExtractFeaturesErrors(t *testing.T) {
	im := imgio.NewImage(4, 4)
	if _, err := ExtractFeatures(im, imgio.NewLabelMap(5, 4)); err == nil {
		t.Error("size mismatch accepted")
	}
	lm := imgio.NewLabelMap(4, 4) // all Unassigned
	if _, err := ExtractFeatures(im, lm); err == nil {
		t.Error("unassigned labels accepted")
	}
}

func TestBuildGraph(t *testing.T) {
	im, lm := twoRegionScene()
	feats, err := ExtractFeatures(im, lm)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(feats, lm)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRegions != 2 || len(g.Edges) != 1 {
		t.Fatalf("graph %d regions, %d edges", g.NumRegions, len(g.Edges))
	}
	e := g.Edges[0]
	if e.A != 0 || e.B != 1 {
		t.Fatalf("edge %d-%d", e.A, e.B)
	}
	want := math.Sqrt(190*190 + 0 + 190*190)
	if math.Abs(e.Weight-want) > 1e-9 {
		t.Fatalf("weight %g, want %g", e.Weight, want)
	}
}

func TestBuildGraphEdgesSorted(t *testing.T) {
	// Three stripes: 0 (dark), 1 (medium), 2 (bright). Edge 0-1 and 1-2
	// are closer in color than... construct so weights differ.
	im := imgio.NewImage(9, 3)
	lm := imgio.NewLabelMap(9, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 9; x++ {
			switch {
			case x < 3:
				im.Set(x, y, 0, 0, 0)
				lm.Set(x, y, 0)
			case x < 6:
				im.Set(x, y, 50, 50, 50)
				lm.Set(x, y, 1)
			default:
				im.Set(x, y, 250, 250, 250)
				lm.Set(x, y, 2)
			}
		}
	}
	feats, _ := ExtractFeatures(im, lm)
	g, err := BuildGraph(feats, lm)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 2 {
		t.Fatalf("%d edges, want 2 (stripes touch only neighbors)", len(g.Edges))
	}
	if g.Edges[0].Weight > g.Edges[1].Weight {
		t.Fatal("edges not sorted by weight")
	}
	// The 0-1 edge (Δ50) must sort before 1-2 (Δ200).
	if g.Edges[0].A != 0 || g.Edges[0].B != 1 {
		t.Fatalf("first edge %d-%d, want 0-1", g.Edges[0].A, g.Edges[0].B)
	}
}

func TestGreedyMergeThreshold(t *testing.T) {
	im := imgio.NewImage(9, 3)
	lm := imgio.NewLabelMap(9, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 9; x++ {
			switch {
			case x < 3:
				im.Set(x, y, 0, 0, 0)
				lm.Set(x, y, 0)
			case x < 6:
				im.Set(x, y, 30, 30, 30)
				lm.Set(x, y, 1)
			default:
				im.Set(x, y, 250, 250, 250)
				lm.Set(x, y, 2)
			}
		}
	}
	feats, _ := ExtractFeatures(im, lm)
	g, _ := BuildGraph(feats, lm)
	mr, err := GreedyMerge(g, feats, MergeParams{Threshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	// 0 and 1 merge (Δ≈52), 2 stays (Δ≈381 from 1).
	if mr.Num != 2 {
		t.Fatalf("proposals %d, want 2", mr.Num)
	}
	if mr.Proposal[0] != mr.Proposal[1] || mr.Proposal[0] == mr.Proposal[2] {
		t.Fatalf("merge table %v", mr.Proposal)
	}
	if mr.MergesApplied != 1 {
		t.Fatalf("merges %d, want 1", mr.MergesApplied)
	}
}

func TestGreedyMergeMinRegionsFloor(t *testing.T) {
	im, lm := twoRegionScene()
	feats, _ := ExtractFeatures(im, lm)
	g, _ := BuildGraph(feats, lm)
	mr, err := GreedyMerge(g, feats, MergeParams{Threshold: 1e9, MinRegions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Num != 2 {
		t.Fatalf("floor ignored: %d proposals", mr.Num)
	}
}

func TestGreedyMergeAdaptive(t *testing.T) {
	// With the FH criterion and a large K, similar stripes merge; with a
	// tiny K nothing merges.
	im := imgio.NewImage(9, 3)
	lm := imgio.NewLabelMap(9, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 9; x++ {
			lvl := uint8(40 * (x / 3))
			im.Set(x, y, lvl, lvl, lvl)
			lm.Set(x, y, int32(x/3))
		}
	}
	feats, _ := ExtractFeatures(im, lm)
	g, _ := BuildGraph(feats, lm)
	big, err := GreedyMerge(g, feats, MergeParams{AdaptiveK: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if big.Num != 1 {
		t.Fatalf("large K should merge everything, got %d", big.Num)
	}
	small, err := GreedyMerge(g, feats, MergeParams{AdaptiveK: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if small.Num != 3 {
		t.Fatalf("tiny K should merge nothing, got %d", small.Num)
	}
}

func TestGreedyMergeValidation(t *testing.T) {
	if _, err := GreedyMerge(nil, nil, MergeParams{Threshold: 1}); err == nil {
		t.Error("nil graph accepted")
	}
	g := &Graph{NumRegions: 2}
	if _, err := GreedyMerge(g, nil, MergeParams{}); err == nil {
		t.Error("missing criterion accepted")
	}
}

func TestApplyMerge(t *testing.T) {
	im, lm := twoRegionScene()
	feats, _ := ExtractFeatures(im, lm)
	g, _ := BuildGraph(feats, lm)
	mr, _ := GreedyMerge(g, feats, MergeParams{Threshold: 1e9})
	out, err := ApplyMerge(lm, mr)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRegions() != 1 {
		t.Fatalf("applied map has %d regions, want 1", out.NumRegions())
	}
	// Original untouched.
	if lm.NumRegions() != 2 {
		t.Fatal("ApplyMerge mutated its input")
	}
}
