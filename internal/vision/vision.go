// Package vision implements the downstream stages the paper's
// introduction motivates superpixels with: "object classification, depth
// estimation, and region segmentation" all consume superpixels instead
// of raw pixels to cut later-pipeline complexity. The package provides
// per-region feature extraction, a weighted region adjacency graph, and
// graph-based region merging — enough to build the classic
// superpixel-then-merge segmentation pipeline on top of any label map.
package vision

import (
	"fmt"
	"math"
	"sort"

	"sslic/internal/imgio"
)

// Features summarizes one superpixel for downstream consumption.
type Features struct {
	Label int32
	// Area is the pixel count.
	Area int
	// MeanColor is the per-channel mean.
	MeanColor [3]float64
	// ColorVar is the per-channel variance — a cheap texture statistic.
	ColorVar [3]float64
	// CentroidX, CentroidY locate the region.
	CentroidX, CentroidY float64
	// MinX, MinY, MaxX, MaxY is the bounding box.
	MinX, MinY, MaxX, MaxY int
	// Perimeter counts boundary edge segments.
	Perimeter int
}

// ExtractFeatures computes Features for every region of lm over im.
// The result is indexed by label; labels must be dense in [0, n).
func ExtractFeatures(im *imgio.Image, lm *imgio.LabelMap) ([]Features, error) {
	if im.W != lm.W || im.H != lm.H {
		return nil, fmt.Errorf("vision: image %dx%d vs labels %dx%d", im.W, im.H, lm.W, lm.H)
	}
	n := int(lm.MaxLabel()) + 1
	if n <= 0 {
		return nil, fmt.Errorf("vision: label map has no regions")
	}
	feats := make([]Features, n)
	for i := range feats {
		feats[i] = Features{Label: int32(i), MinX: im.W, MinY: im.H, MaxX: -1, MaxY: -1}
	}
	// First pass: sums.
	type acc struct {
		s, s2 [3]float64
		x, y  float64
	}
	accs := make([]acc, n)
	for y := 0; y < lm.H; y++ {
		for x := 0; x < lm.W; x++ {
			i := y*lm.W + x
			v := lm.Labels[i]
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("vision: label %d at (%d,%d) out of range [0,%d)", v, x, y, n)
			}
			f := &feats[v]
			a := &accs[v]
			f.Area++
			for c, ch := range [][]uint8{im.C0, im.C1, im.C2} {
				val := float64(ch[i])
				a.s[c] += val
				a.s2[c] += val * val
			}
			a.x += float64(x)
			a.y += float64(y)
			if x < f.MinX {
				f.MinX = x
			}
			if x > f.MaxX {
				f.MaxX = x
			}
			if y < f.MinY {
				f.MinY = y
			}
			if y > f.MaxY {
				f.MaxY = y
			}
			if lm.IsBoundary(x, y) {
				f.Perimeter++
			}
		}
	}
	for i := range feats {
		f := &feats[i]
		if f.Area == 0 {
			continue
		}
		fn := float64(f.Area)
		for c := 0; c < 3; c++ {
			mean := accs[i].s[c] / fn
			f.MeanColor[c] = mean
			f.ColorVar[c] = accs[i].s2[c]/fn - mean*mean
			if f.ColorVar[c] < 0 {
				f.ColorVar[c] = 0 // numerical floor
			}
		}
		f.CentroidX = accs[i].x / fn
		f.CentroidY = accs[i].y / fn
	}
	return feats, nil
}

// Edge is a weighted adjacency between two regions; the weight is the
// Euclidean distance of the mean colors.
type Edge struct {
	A, B   int32
	Weight float64
}

// Graph is the weighted region adjacency graph.
type Graph struct {
	NumRegions int
	Edges      []Edge // sorted by ascending weight
}

// BuildGraph constructs the RAG of lm with color-distance weights from
// the features.
func BuildGraph(feats []Features, lm *imgio.LabelMap) (*Graph, error) {
	n := len(feats)
	if n == 0 {
		return nil, fmt.Errorf("vision: no features")
	}
	seen := make(map[[2]int32]bool)
	var edges []Edge
	add := func(a, b int32) error {
		if a == b {
			return nil
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int32{a, b}
		if seen[key] {
			return nil
		}
		seen[key] = true
		if int(b) >= n {
			return fmt.Errorf("vision: label %d outside feature table", b)
		}
		edges = append(edges, Edge{A: a, B: b, Weight: colorDistance(feats[a].MeanColor, feats[b].MeanColor)})
		return nil
	}
	for y := 0; y < lm.H; y++ {
		for x := 0; x < lm.W; x++ {
			v := lm.At(x, y)
			if x+1 < lm.W {
				if err := add(v, lm.At(x+1, y)); err != nil {
					return nil, err
				}
			}
			if y+1 < lm.H {
				if err := add(v, lm.At(x, y+1)); err != nil {
					return nil, err
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight < edges[j].Weight
		}
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return &Graph{NumRegions: n, Edges: edges}, nil
}

func colorDistance(a, b [3]float64) float64 {
	var d2 float64
	for c := 0; c < 3; c++ {
		d := a[c] - b[c]
		d2 += d * d
	}
	return math.Sqrt(d2)
}

// MergeParams configure GreedyMerge.
type MergeParams struct {
	// Threshold is the maximum mean-color distance at which two adjacent
	// regions merge.
	Threshold float64
	// MinRegions stops merging when this many proposals remain (0 = no
	// floor).
	MinRegions int
	// AdaptiveK, when positive, switches to the Felzenszwalb-Huttenlocher
	// criterion: regions a and b merge if the edge weight is below
	// min(int(a)+K/|a|, int(b)+K/|b|), where int(·) is the largest weight
	// already absorbed into the component. Threshold is ignored.
	AdaptiveK float64
}

// MergeResult maps every input region to its proposal and reports the
// proposal count.
type MergeResult struct {
	Proposal      []int32 // indexed by input label, values dense in [0, Num)
	Num           int
	MergesApplied int
}

// GreedyMerge clusters the graph's regions into proposals by ascending
// edge weight — the classic superpixel merging stage.
func GreedyMerge(g *Graph, feats []Features, p MergeParams) (*MergeResult, error) {
	if g == nil || g.NumRegions == 0 {
		return nil, fmt.Errorf("vision: empty graph")
	}
	if p.Threshold <= 0 && p.AdaptiveK <= 0 {
		return nil, fmt.Errorf("vision: merge needs Threshold or AdaptiveK")
	}
	parent := make([]int32, g.NumRegions)
	size := make([]int, g.NumRegions)
	internal := make([]float64, g.NumRegions)
	for i := range parent {
		parent[i] = int32(i)
		if i < len(feats) {
			size[i] = feats[i].Area
		} else {
			size[i] = 1
		}
	}
	var find func(int32) int32
	find = func(v int32) int32 {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	remaining := g.NumRegions
	merges := 0
	for _, e := range g.Edges {
		if p.MinRegions > 0 && remaining <= p.MinRegions {
			break
		}
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			continue
		}
		ok := false
		if p.AdaptiveK > 0 {
			ta := internal[ra] + p.AdaptiveK/float64(size[ra])
			tb := internal[rb] + p.AdaptiveK/float64(size[rb])
			ok = e.Weight <= math.Min(ta, tb)
		} else {
			ok = e.Weight <= p.Threshold
		}
		if !ok {
			continue
		}
		parent[rb] = ra
		size[ra] += size[rb]
		if e.Weight > internal[ra] {
			internal[ra] = e.Weight
		}
		remaining--
		merges++
	}
	// Dense renumbering.
	remap := make(map[int32]int32)
	out := make([]int32, g.NumRegions)
	for i := range out {
		root := find(int32(i))
		id, ok := remap[root]
		if !ok {
			id = int32(len(remap))
			remap[root] = id
		}
		out[i] = id
	}
	return &MergeResult{Proposal: out, Num: len(remap), MergesApplied: merges}, nil
}

// ApplyMerge relabels lm in place according to the merge result,
// returning the proposal label map.
func ApplyMerge(lm *imgio.LabelMap, mr *MergeResult) (*imgio.LabelMap, error) {
	out := imgio.NewLabelMap(lm.W, lm.H)
	for i, v := range lm.Labels {
		if v < 0 || int(v) >= len(mr.Proposal) {
			return nil, fmt.Errorf("vision: label %d outside merge table", v)
		}
		out.Labels[i] = mr.Proposal[v]
	}
	return out, nil
}
