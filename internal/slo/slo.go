// Package slo evaluates declarative service-level objectives over the
// telemetry registry's windowed histogram and counter deltas, turning
// them into error budgets and multi-window burn rates.
//
// The paper argues in budgets — cycles, bytes and picojoules per frame
// (Table 4) — and an SLO is exactly that framing applied to the running
// service: "99% of segmentations under 50ms", "99.9% of requests
// served", "mean energy under N pJ/frame". The engine tracks, per
// objective, how much of the allowed badness (the error budget) has
// been consumed and how fast it is currently being consumed (the burn
// rate), over a fast window (paging signal) and a slow window (trend).
// A burn-rate threshold crossing is edge-triggered into a callback —
// the server points it at the profile capturer so a burning objective
// automatically yields pprof evidence — and the maximum fast burn is
// exported as an input signal to the degrade controller.
package slo

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sslic/internal/telemetry"
)

// Kind names what an objective measures.
type Kind string

const (
	// KindLatency counts requests slower than Threshold as bad, from
	// the request-latency histogram's window deltas.
	KindLatency Kind = "latency"
	// KindAvailability counts failed requests (5xx and shed 429s) as
	// bad, from response-counter deltas.
	KindAvailability Kind = "availability"
	// KindEnergy counts a window's frames as bad when the window's mean
	// estimated energy per frame exceeds TargetPJ.
	KindEnergy Kind = "energy"
	// KindQualityChurn counts frames whose inter-frame label churn ratio
	// exceeds Max as bad, from the quality tracker's churn histogram.
	KindQualityChurn Kind = "quality.churn"
	// KindQualityEmpty counts frames with at least one empty cluster as
	// bad — an availability objective over segmentation usefulness.
	KindQualityEmpty Kind = "quality.empty"
)

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in exports; defaults to the kind.
	Name string `json:"name"`
	// Kind selects the measurement.
	Kind Kind `json:"kind"`
	// Threshold is the latency cut for KindLatency.
	Threshold time.Duration `json:"threshold,omitempty"`
	// TargetPJ is the per-frame energy budget for KindEnergy.
	TargetPJ float64 `json:"target_pj,omitempty"`
	// Max is the churn-ratio cut for KindQualityChurn.
	Max float64 `json:"max,omitempty"`
	// Budget is the allowed bad fraction (e.g. 0.01 → 99% objective).
	Budget float64 `json:"budget"`
}

func (o Objective) validate() error {
	if o.Budget <= 0 || o.Budget >= 1 {
		return fmt.Errorf("slo %q: budget must be in (0, 1), got %g", o.Name, o.Budget)
	}
	switch o.Kind {
	case KindLatency:
		if o.Threshold <= 0 {
			return fmt.Errorf("slo %q: latency objective needs threshold > 0", o.Name)
		}
	case KindAvailability:
	case KindEnergy:
		if o.TargetPJ <= 0 {
			return fmt.Errorf("slo %q: energy objective needs target_pj > 0", o.Name)
		}
	case KindQualityChurn:
		if o.Max <= 0 || o.Max >= 1 {
			return fmt.Errorf("slo %q: quality.churn objective needs max in (0, 1)", o.Name)
		}
	case KindQualityEmpty:
	default:
		return fmt.Errorf("slo %q: unknown kind %q", o.Name, o.Kind)
	}
	return nil
}

// Sources are the cumulative measurements the engine differentiates
// into windows each tick. All are optional; an objective whose source
// is missing simply observes empty windows.
type Sources struct {
	// Latency returns the cumulative request-latency histogram
	// (seconds) — the engine windows it with HistogramSnapshot.Sub.
	Latency func() telemetry.HistogramSnapshot
	// Requests returns cumulative (total, bad) response counts.
	Requests func() (total, bad float64)
	// Energy returns cumulative (frames, picojoules) charged.
	Energy func() (frames, pj float64)
	// Churn returns the cumulative inter-frame label-churn histogram
	// (ratio in [0, 1]) — windowed like Latency.
	Churn func() telemetry.HistogramSnapshot
	// Quality returns cumulative (frames, emptyClusterFrames) counts.
	Quality func() (frames, emptyFrames float64)
}

// Config tunes an Engine.
type Config struct {
	Objectives []Objective
	Sources    Sources
	// FastWindow and SlowWindow are burn-rate window lengths in ticks
	// (the caller owns the tick cadence). <= 0 selects 20 and 240 —
	// 5s and 60s at the server's 250ms degrade tick.
	FastWindow, SlowWindow int
	// BurnThreshold is the fast-burn level that edge-triggers OnBurn;
	// <= 0 disables alerting. Burn 1.0 = consuming budget exactly at
	// the sustainable rate; a paging threshold is typically 8–14.
	BurnThreshold float64
	// OnBurn fires once per threshold crossing (cleared when fast burn
	// falls below half the threshold).
	OnBurn func(objective string, fastBurn, slowBurn float64)
	// Registry receives the SLO series; nil skips registration.
	Registry *telemetry.Registry
	Logger   *slog.Logger
}

// window is one tick's (total, bad) observation.
type window struct{ total, bad float64 }

// objState is an objective's accumulated evaluation state.
type objState struct {
	obj Objective

	prevHist  telemetry.HistogramSnapshot
	prevTotal float64
	prevBad   float64
	seeded    bool

	cumTotal float64
	cumBad   float64

	ring []window // last SlowWindow ticks, ring[head] oldest
	head int
	fill int

	alerting bool

	budgetGauge *telemetry.Gauge
	fastGauge   *telemetry.Gauge
	slowGauge   *telemetry.Gauge
	badCtr      *telemetry.Counter
	alertCtr    *telemetry.Counter
}

// Engine evaluates objectives. Tick it from the loop that closes
// observation windows (the server's signal sampler).
type Engine struct {
	cfg Config
	log *slog.Logger

	mu   sync.Mutex
	objs []*objState
}

// New builds an engine; invalid objectives are rejected.
func New(cfg Config) (*Engine, error) {
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 20
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 240
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = cfg.FastWindow
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	e := &Engine{cfg: cfg, log: log}
	for _, o := range cfg.Objectives {
		if o.Name == "" {
			o.Name = string(o.Kind)
		}
		if err := o.validate(); err != nil {
			return nil, err
		}
		st := &objState{obj: o, ring: make([]window, cfg.SlowWindow)}
		if reg := cfg.Registry; reg != nil {
			lbl := telemetry.Label{Name: "objective", Value: o.Name}
			st.budgetGauge = reg.Gauge("sslic_slo_error_budget_remaining",
				"Fraction of the objective's error budget left (1 = untouched, <=0 = exhausted).", lbl)
			st.budgetGauge.Set(1)
			st.fastGauge = reg.Gauge("sslic_slo_burn_rate",
				"Error-budget burn rate (1 = sustainable consumption).",
				lbl, telemetry.Label{Name: "window", Value: "fast"})
			st.slowGauge = reg.Gauge("sslic_slo_burn_rate",
				"Error-budget burn rate (1 = sustainable consumption).",
				lbl, telemetry.Label{Name: "window", Value: "slow"})
			st.badCtr = reg.Counter("sslic_slo_bad_total",
				"Objective-violating events observed.", lbl)
			st.alertCtr = reg.Counter("sslic_slo_burn_alerts_total",
				"Burn-rate threshold crossings.", lbl)
		}
		e.objs = append(e.objs, st)
	}
	return e, nil
}

// Objectives returns the configured objectives.
func (e *Engine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	out := make([]Objective, 0, len(e.objs))
	for _, st := range e.objs {
		out = append(out, st.obj)
	}
	return out
}

// Tick closes one observation window: reads the sources, differentiates
// against the previous tick, updates budgets and burn rates, and fires
// burn alerts on rising edges. Returns the maximum fast burn across
// objectives — the degrade controller's input signal.
func (e *Engine) Tick() float64 {
	if e == nil {
		return 0
	}
	type alert struct {
		name       string
		fast, slow float64
	}
	var alerts []alert
	e.mu.Lock()
	var maxFast float64
	for _, st := range e.objs {
		total, bad := e.observe(st)
		if !st.seeded {
			// First tick only establishes the baseline; counting the
			// process-lifetime cumulative as one window would charge
			// pre-engine history against the budget.
			st.seeded = true
			continue
		}
		st.cumTotal += total
		st.cumBad += bad
		if st.badCtr != nil && bad > 0 {
			st.badCtr.Add(bad)
		}
		st.ring[st.head] = window{total: total, bad: bad}
		st.head = (st.head + 1) % len(st.ring)
		if st.fill < len(st.ring) {
			st.fill++
		}
		fast := st.burn(e.cfg.FastWindow)
		slow := st.burn(e.cfg.SlowWindow)
		if st.fastGauge != nil {
			st.fastGauge.Set(fast)
			st.slowGauge.Set(slow)
			st.budgetGauge.Set(st.budgetRemaining())
		}
		if fast > maxFast {
			maxFast = fast
		}
		if th := e.cfg.BurnThreshold; th > 0 {
			switch {
			case !st.alerting && fast >= th:
				st.alerting = true
				if st.alertCtr != nil {
					st.alertCtr.Inc()
				}
				alerts = append(alerts, alert{name: st.obj.Name, fast: fast, slow: slow})
			case st.alerting && fast < th/2:
				st.alerting = false
			}
		}
	}
	e.mu.Unlock()
	// Fire callbacks outside the lock: OnBurn may call back into
	// anything (profiler, logger) and must not deadlock Status readers.
	for _, a := range alerts {
		e.log.Warn("slo burn threshold crossed",
			"objective", a.name, "fast_burn", a.fast, "slow_burn", a.slow,
			"threshold", e.cfg.BurnThreshold)
		if e.cfg.OnBurn != nil {
			e.cfg.OnBurn(a.name, a.fast, a.slow)
		}
	}
	return maxFast
}

// observe reads one objective's window (total, bad) from the sources.
func (e *Engine) observe(st *objState) (total, bad float64) {
	switch st.obj.Kind {
	case KindLatency:
		if e.cfg.Sources.Latency == nil {
			return 0, 0
		}
		cur := e.cfg.Sources.Latency()
		win := cur.Sub(st.prevHist)
		st.prevHist = cur
		return float64(win.Count), badAbove(win, st.obj.Threshold.Seconds())
	case KindAvailability:
		if e.cfg.Sources.Requests == nil {
			return 0, 0
		}
		t, b := e.cfg.Sources.Requests()
		dt, db := t-st.prevTotal, b-st.prevBad
		st.prevTotal, st.prevBad = t, b
		if dt < 0 || db < 0 { // counter reset
			return 0, 0
		}
		return dt, db
	case KindEnergy:
		if e.cfg.Sources.Energy == nil {
			return 0, 0
		}
		f, pj := e.cfg.Sources.Energy()
		df, dpj := f-st.prevTotal, pj-st.prevBad
		st.prevTotal, st.prevBad = f, pj
		if df <= 0 || dpj < 0 {
			return 0, 0
		}
		if dpj/df > st.obj.TargetPJ {
			return df, df // every frame in an over-budget window is bad
		}
		return df, 0
	case KindQualityChurn:
		if e.cfg.Sources.Churn == nil {
			return 0, 0
		}
		cur := e.cfg.Sources.Churn()
		win := cur.Sub(st.prevHist)
		st.prevHist = cur
		return float64(win.Count), badAbove(win, st.obj.Max)
	case KindQualityEmpty:
		if e.cfg.Sources.Quality == nil {
			return 0, 0
		}
		f, ef := e.cfg.Sources.Quality()
		df, def := f-st.prevTotal, ef-st.prevBad
		st.prevTotal, st.prevBad = f, ef
		if df < 0 || def < 0 { // counter reset
			return 0, 0
		}
		return df, def
	}
	return 0, 0
}

// badAbove counts the window's observations above the threshold
// (seconds), linearly apportioning the bucket the threshold falls in —
// the mirror image of Quantile's interpolation.
func badAbove(win telemetry.HistogramSnapshot, threshold float64) float64 {
	if win.Count == 0 {
		return 0
	}
	var bad float64
	lower := 0.0
	for i, b := range win.Bounds {
		c := float64(win.Counts[i])
		switch {
		case threshold <= lower:
			bad += c
		case threshold < b:
			bad += c * (b - threshold) / (b - lower)
		}
		lower = b
	}
	// Overflow bucket: only known to exceed the highest finite bound,
	// so count it as bad pessimistically — an SLO should overcount,
	// not undercount, unclassifiable observations.
	bad += float64(win.Counts[len(win.Counts)-1])
	return bad
}

// burn computes the budget-normalized bad fraction over the last n
// ticks: 1.0 means the budget is being consumed exactly at the
// sustainable rate, k means k× too fast.
func (st *objState) burn(n int) float64 {
	if n > st.fill {
		n = st.fill
	}
	if n == 0 {
		return 0
	}
	var total, bad float64
	idx := st.head // head is one past the newest entry
	for i := 0; i < n; i++ {
		idx--
		if idx < 0 {
			idx += len(st.ring)
		}
		total += st.ring[idx].total
		bad += st.ring[idx].bad
	}
	if total == 0 {
		return 0
	}
	return (bad / total) / st.obj.Budget
}

// budgetRemaining is the cumulative error budget left in [−∞, 1]:
// 1 − cumBad / (cumTotal × Budget). Negative means overspent.
func (st *objState) budgetRemaining() float64 {
	if st.cumTotal == 0 {
		return 1
	}
	return 1 - st.cumBad/(st.cumTotal*st.obj.Budget)
}

// ObjectiveStatus is one objective's exported evaluation state.
type ObjectiveStatus struct {
	Name            string  `json:"name"`
	Kind            Kind    `json:"kind"`
	Target          string  `json:"target"`
	Budget          float64 `json:"budget"`
	CumTotal        float64 `json:"cum_total"`
	CumBad          float64 `json:"cum_bad"`
	BudgetRemaining float64 `json:"budget_remaining"`
	FastBurn        float64 `json:"fast_burn"`
	SlowBurn        float64 `json:"slow_burn"`
	Alerting        bool    `json:"alerting"`
}

// Status is the /debug/slo document.
type Status struct {
	FastWindowTicks int               `json:"fast_window_ticks"`
	SlowWindowTicks int               `json:"slow_window_ticks"`
	BurnThreshold   float64           `json:"burn_threshold,omitempty"`
	Objectives      []ObjectiveStatus `json:"objectives"`
}

// Status reports every objective's current evaluation state.
func (e *Engine) Status() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Status{
		FastWindowTicks: e.cfg.FastWindow,
		SlowWindowTicks: e.cfg.SlowWindow,
		BurnThreshold:   e.cfg.BurnThreshold,
	}
	for _, st := range e.objs {
		var target string
		switch st.obj.Kind {
		case KindLatency:
			target = st.obj.Threshold.String()
		case KindEnergy:
			target = fmt.Sprintf("%g pJ/frame", st.obj.TargetPJ)
		case KindAvailability:
			target = "non-error responses"
		case KindQualityChurn:
			target = fmt.Sprintf("churn <= %g", st.obj.Max)
		case KindQualityEmpty:
			target = "frames without empty clusters"
		}
		out.Objectives = append(out.Objectives, ObjectiveStatus{
			Name:            st.obj.Name,
			Kind:            st.obj.Kind,
			Target:          target,
			Budget:          st.obj.Budget,
			CumTotal:        st.cumTotal,
			CumBad:          st.cumBad,
			BudgetRemaining: st.budgetRemaining(),
			FastBurn:        st.burn(e.cfg.FastWindow),
			SlowBurn:        st.burn(e.cfg.SlowWindow),
			Alerting:        st.alerting,
		})
	}
	sort.Slice(out.Objectives, func(i, j int) bool {
		return out.Objectives[i].Name < out.Objectives[j].Name
	})
	return out
}

// Handler serves the engine's status as JSON at /debug/slo.
func Handler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e == nil {
			http.Error(w, "slo engine disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(e.Status())
	})
}

// ParseObjectives parses the -slo flag grammar: semicolon-separated
// objective specs, each a comma-separated kind plus key=value options:
//
//	latency,threshold=50ms,budget=0.01
//	availability,budget=0.001,name=api-availability
//	energy,target_pj=9e9,budget=0.05
//	quality.churn,max=0.35,budget=0.05
//	quality.empty,budget=0.02
//
// Budget defaults to 0.01 when omitted.
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		o := Objective{Kind: Kind(strings.TrimSpace(fields[0])), Budget: 0.01}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("slo spec %q: option %q is not key=value", part, f)
			}
			var err error
			switch k {
			case "name":
				o.Name = v
			case "threshold":
				o.Threshold, err = time.ParseDuration(v)
			case "target_pj":
				o.TargetPJ, err = strconv.ParseFloat(v, 64)
			case "max":
				o.Max, err = strconv.ParseFloat(v, 64)
			case "budget":
				o.Budget, err = strconv.ParseFloat(v, 64)
			default:
				return nil, fmt.Errorf("slo spec %q: unknown option %q", part, k)
			}
			if err != nil {
				return nil, fmt.Errorf("slo spec %q: bad %s: %v", part, k, err)
			}
		}
		if o.Name == "" {
			o.Name = string(o.Kind)
		}
		if err := o.validate(); err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}
