package slo

import (
	"math"
	"testing"
	"time"

	"sslic/internal/telemetry"
)

// fakeLatency is a mutable cumulative histogram source.
type fakeLatency struct {
	hist *telemetry.Histogram
}

func newFakeLatency(t *testing.T) *fakeLatency {
	t.Helper()
	reg := telemetry.NewRegistry()
	return &fakeLatency{hist: reg.Histogram("lat", "", []float64{0.01, 0.05, 0.1, 0.5})}
}

func engineFor(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestLatencyBudgetBurn(t *testing.T) {
	lat := newFakeLatency(t)
	e := engineFor(t, Config{
		Objectives: []Objective{{Kind: KindLatency, Threshold: 50 * time.Millisecond, Budget: 0.01}},
		Sources:    Sources{Latency: func() telemetry.HistogramSnapshot { return lat.hist.Snapshot() }},
		FastWindow: 2, SlowWindow: 4,
	})
	e.Tick() // seed baseline

	// Window 1: 100 fast requests — no burn.
	for i := 0; i < 100; i++ {
		lat.hist.Observe(0.005)
	}
	e.Tick()
	st := e.Status().Objectives[0]
	if st.FastBurn != 0 {
		t.Fatalf("fast burn after good window = %g, want 0", st.FastBurn)
	}
	if st.BudgetRemaining != 1 {
		t.Fatalf("budget after good window = %g, want 1", st.BudgetRemaining)
	}

	// Window 2: 10 of 20 requests slow — 50% bad vs 1% budget = burn 50
	// over that window; fast window (2 ticks) dilutes with the 100 good.
	for i := 0; i < 10; i++ {
		lat.hist.Observe(0.005)
		lat.hist.Observe(0.2)
	}
	e.Tick()
	st = e.Status().Objectives[0]
	wantFast := (10.0 / 120.0) / 0.01
	if math.Abs(st.FastBurn-wantFast) > 1e-9 {
		t.Fatalf("fast burn = %g, want %g", st.FastBurn, wantFast)
	}
	if st.BudgetRemaining >= 1 {
		t.Fatalf("budget remaining = %g, want < 1 after bad window", st.BudgetRemaining)
	}
	wantBudget := 1 - 10.0/(120.0*0.01)
	if math.Abs(st.BudgetRemaining-wantBudget) > 1e-9 {
		t.Fatalf("budget remaining = %g, want %g", st.BudgetRemaining, wantBudget)
	}
}

func TestBurnAlertEdgeTriggered(t *testing.T) {
	lat := newFakeLatency(t)
	var fired []string
	e := engineFor(t, Config{
		Objectives: []Objective{{Name: "p99", Kind: KindLatency, Threshold: 50 * time.Millisecond, Budget: 0.01}},
		Sources:    Sources{Latency: func() telemetry.HistogramSnapshot { return lat.hist.Snapshot() }},
		FastWindow: 1, SlowWindow: 2,
		BurnThreshold: 10,
		OnBurn:        func(name string, fast, slow float64) { fired = append(fired, name) },
	})
	e.Tick() // seed

	// Two consecutive all-bad windows: alert must fire exactly once.
	for w := 0; w < 2; w++ {
		for i := 0; i < 10; i++ {
			lat.hist.Observe(0.2)
		}
		e.Tick()
	}
	if len(fired) != 1 || fired[0] != "p99" {
		t.Fatalf("OnBurn fired %v, want exactly once for p99", fired)
	}
	if !e.Status().Objectives[0].Alerting {
		t.Fatalf("objective should be alerting")
	}

	// Recovery below half threshold clears the latch; a new storm
	// re-fires.
	for w := 0; w < 3; w++ {
		for i := 0; i < 100; i++ {
			lat.hist.Observe(0.005)
		}
		e.Tick()
	}
	if e.Status().Objectives[0].Alerting {
		t.Fatalf("objective should have cleared after good windows")
	}
	for i := 0; i < 10; i++ {
		lat.hist.Observe(0.2)
	}
	e.Tick()
	if len(fired) != 2 {
		t.Fatalf("OnBurn fired %d times after second storm, want 2", len(fired))
	}
}

func TestAvailabilityObjective(t *testing.T) {
	var total, bad float64
	e := engineFor(t, Config{
		Objectives: []Objective{{Kind: KindAvailability, Budget: 0.1}},
		Sources:    Sources{Requests: func() (float64, float64) { return total, bad }},
		FastWindow: 1, SlowWindow: 1,
	})
	e.Tick() // seed
	total, bad = 100, 20
	if burn := e.Tick(); math.Abs(burn-2.0) > 1e-9 {
		t.Fatalf("availability burn = %g, want 2.0 (20%% bad vs 10%% budget)", burn)
	}
	// Counter reset must not poison the window.
	total, bad = 5, 0
	if burn := e.Tick(); burn != 0 {
		t.Fatalf("burn after counter reset = %g, want 0", burn)
	}
}

func TestEnergyObjective(t *testing.T) {
	var frames, pj float64
	e := engineFor(t, Config{
		Objectives: []Objective{{Kind: KindEnergy, TargetPJ: 1000, Budget: 0.5}},
		Sources:    Sources{Energy: func() (float64, float64) { return frames, pj }},
		FastWindow: 1, SlowWindow: 1,
	})
	e.Tick()              // seed
	frames, pj = 10, 5000 // 500 pJ/frame, under target
	if burn := e.Tick(); burn != 0 {
		t.Fatalf("burn under energy target = %g, want 0", burn)
	}
	frames, pj = 20, 25000 // window: 10 frames at 2000 pJ/frame, over
	if burn := e.Tick(); math.Abs(burn-2.0) > 1e-9 {
		t.Fatalf("burn over energy target = %g, want 2.0 (100%% bad / 50%% budget)", burn)
	}
	st := e.Status().Objectives[0]
	if st.CumBad != 10 || st.CumTotal != 20 {
		t.Fatalf("cum bad/total = %g/%g, want 10/20", st.CumBad, st.CumTotal)
	}
}

func TestBadAboveInterpolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("x", "", []float64{0.1, 0.2})
	for i := 0; i < 10; i++ {
		h.Observe(0.15) // all in the (0.1, 0.2] bucket
	}
	win := h.Snapshot()
	// Threshold at 0.15 bisects the bucket: half the mass is bad.
	if bad := badAbove(win, 0.15); math.Abs(bad-5) > 1e-9 {
		t.Fatalf("badAbove mid-bucket = %g, want 5", bad)
	}
	// Threshold below all buckets: everything is bad.
	if bad := badAbove(win, 0.05); math.Abs(bad-10) > 1e-9 {
		t.Fatalf("badAbove below = %g, want 10", bad)
	}
	// Threshold above the highest bound: only overflow would count.
	if bad := badAbove(win, 0.5); bad != 0 {
		t.Fatalf("badAbove above = %g, want 0", bad)
	}
	h.Observe(5) // overflow bucket
	if bad := badAbove(h.Snapshot(), 0.5); bad != 1 {
		t.Fatalf("badAbove overflow = %g, want 1", bad)
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("latency,threshold=50ms,budget=0.01; availability,budget=0.001,name=avail ;energy,target_pj=9e9,budget=0.05")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if len(objs) != 3 {
		t.Fatalf("parsed %d objectives, want 3", len(objs))
	}
	if objs[0].Kind != KindLatency || objs[0].Threshold != 50*time.Millisecond || objs[0].Name != "latency" {
		t.Fatalf("latency objective parsed wrong: %+v", objs[0])
	}
	if objs[1].Name != "avail" || objs[1].Budget != 0.001 {
		t.Fatalf("availability objective parsed wrong: %+v", objs[1])
	}
	if objs[2].TargetPJ != 9e9 {
		t.Fatalf("energy objective parsed wrong: %+v", objs[2])
	}

	for _, bad := range []string{
		"latency,budget=0.01",                 // missing threshold
		"latency,threshold=50ms,budget=2",     // budget out of range
		"wibble,budget=0.01",                  // unknown kind
		"latency,threshold=50ms,frobnicate=1", // unknown option
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted, want error", bad)
		}
	}
}

func TestRegistrySeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	lat := newFakeLatency(t)
	e := engineFor(t, Config{
		Objectives: []Objective{{Name: "p99", Kind: KindLatency, Threshold: 50 * time.Millisecond, Budget: 0.01}},
		Sources:    Sources{Latency: func() telemetry.HistogramSnapshot { return lat.hist.Snapshot() }},
		FastWindow: 1, SlowWindow: 1,
		Registry: reg,
	})
	e.Tick()
	for i := 0; i < 10; i++ {
		lat.hist.Observe(0.2)
	}
	e.Tick()
	lbl := telemetry.Label{Name: "objective", Value: "p99"}
	if v := reg.Gauge("sslic_slo_error_budget_remaining", "", lbl).Value(); v >= 1 {
		t.Fatalf("budget gauge = %g, want < 1", v)
	}
	if v := reg.Counter("sslic_slo_bad_total", "", lbl).Value(); v != 10 {
		t.Fatalf("bad counter = %g, want 10", v)
	}
	fast := reg.Gauge("sslic_slo_burn_rate", "", lbl, telemetry.Label{Name: "window", Value: "fast"})
	if fast.Value() != 100 {
		t.Fatalf("fast burn gauge = %g, want 100", fast.Value())
	}
}
