package bench

// The perf harness is the repo's benchmark trajectory: RunPerf measures
// a fixed matrix of segmentation configurations with testing.Benchmark
// and emits a machine-comparable JSON report (one BENCH_<stamp>.json
// per run, written by cmd/sslic-bench -json). cmd/sslic-benchdiff
// compares two reports and fails on regressions, so the performance
// story of the codebase is a first-class, diffable artifact rather than
// numbers pasted into commit messages. Wall-time metrics vary across
// hosts; allocations and distance calculations are deterministic, which
// is what CI gates on (benchdiff -skip-time).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"

	"sslic/internal/bufpool"
	"sslic/internal/dataset"
	"sslic/internal/degrade"
	"sslic/internal/hw"
	"sslic/internal/imgio"
	"sslic/internal/metrics"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
	"sslic/internal/wire"
)

// PerfSchema identifies the report format; bump on breaking changes so
// benchdiff can refuse apples-to-oranges comparisons.
const PerfSchema = "sslic-bench-perf/v1"

// PerfResult is one configuration's measurement.
type PerfResult struct {
	// Name identifies the configuration ("ppa_r050" = PPA at ratio 0.5).
	Name string `json:"name"`
	// NsPerOp and FramesPerSec are wall-time (host-dependent).
	NsPerOp      int64   `json:"ns_per_op"`
	FramesPerSec float64 `json:"frames_per_sec"`
	// AllocsPerOp, BytesPerOp and DistanceCalcsPerFrame are deterministic
	// for a given codebase — the metrics CI gates on.
	AllocsPerOp           int64 `json:"allocs_per_op"`
	BytesPerOp            int64 `json:"bytes_per_op"`
	DistanceCalcsPerFrame int64 `json:"distance_calcs_per_frame"`
	// Iterations is testing.Benchmark's b.N (how much signal is behind
	// the wall-time numbers).
	Iterations int `json:"iterations"`
	// BoundaryRecall is the configuration's quality proxy against the
	// synthetic scene's exact ground truth; only the degrade_* pair
	// fills it (the quality cost of the overload ladder's compute
	// saving). Not gated by ComparePerf — higher is better, unlike
	// every compared metric.
	BoundaryRecall float64 `json:"boundary_recall,omitempty"`
	// Cost is the per-frame cost ledger for this configuration — the
	// same accounting the serving layer stamps on X-Cost-* headers,
	// evaluated offline so benchdiff can gate on cost regressions.
	Cost *PerfCost `json:"cost,omitempty"`
	// Quality is the deterministic slice of the live quality proxies
	// (the /debug/streams block), evaluated offline so benchdiff can
	// gate on segmentation-quality regressions alongside perf and cost.
	Quality *PerfQuality `json:"quality,omitempty"`
}

// PerfQuality mirrors the serving layer's per-frame quality proxies for
// one benchmark configuration. All fields derive from the final
// labeling, which is deterministic for a given codebase and config.
type PerfQuality struct {
	// EmptyClusters and ClusterSizeCV are gated (lower is better): a
	// change that starves clusters or skews superpixel sizes is a
	// quality regression even when it speeds the run up.
	EmptyClusters int     `json:"empty_clusters"`
	ClusterSizeCV float64 `json:"cluster_size_cv"`
	// BoundaryPixels documents the labeling's boundary complexity. A
	// shift signals behavioral change but has no better/worse
	// direction, so it is reported, never gated.
	BoundaryPixels int `json:"boundary_pixels"`
	// FinalResidual is the last pass's mean center movement. Float
	// summation makes it architecture-sensitive, so like wall time it
	// is context, not a gate.
	FinalResidual float64 `json:"final_residual"`
}

// PerfCost mirrors the service's per-request ledger for one benchmark
// configuration.
type PerfCost struct {
	// CPUNs is the summed segmentation phase time per frame — the
	// ledger's AddCPU charge. Host-dependent (wall clocks), so it is a
	// time-based metric that -skip-time excludes.
	CPUNs int64 `json:"cpu_ns"`
	// AllocBytes is the ledger's deterministic buffer-footprint charge
	// per frame (the label map this workload allocates).
	AllocBytes int64 `json:"alloc_bytes"`
	// EstPJ is the hw analytic model's energy estimate for this exact
	// workload shape (resolution, K, ratio, measured subset passes) in
	// picojoules per frame. Host-independent and gated: a change that
	// alters the pass count or subsampling mapping moves the frame's
	// energy budget, and the diff catches it in the paper's own units.
	EstPJ float64 `json:"est_pj"`
}

// PerfReport is one full harness run.
type PerfReport struct {
	Schema    string `json:"schema"`
	Stamp     string `json:"stamp,omitempty"` // RFC3339, filled by the caller
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Width, Height, K document the workload so reports from different
	// settings never diff silently.
	Width  int  `json:"width"`
	Height int  `json:"height"`
	K      int  `json:"k"`
	Quick  bool `json:"quick,omitempty"`

	Results []PerfResult `json:"results"`

	// Speedups are derived wall-time ratios between named result pairs
	// (e.g. the fixed tiled datapath against the float64 serial
	// baseline). Host-dependent like every wall-time number — reported
	// for the speedup-table artifact, never gated by ComparePerf.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

// perfConfig is one cell of the measurement matrix: the paper's two
// dataflow architectures crossed with the subsampling ratios its
// energy/quality trade-off sweeps (§6's r = 1, 1/2, 1/4), plus the
// service's degraded-mode pair — the same parameters at degradation
// level 0 and level 2, quantifying what the overload ladder trades
// (latency and distance calcs down, boundary recall slightly down).
type perfConfig struct {
	name     string
	arch     sslic.Arch
	ratio    float64
	level    degrade.Level
	quality  bool // also record the boundary-recall proxy
	workers  int  // sslic.Params.TileWorkers (-1 = GOMAXPROCS)
	datapath sslic.DatapathKind
}

func perfConfigs() []perfConfig {
	return []perfConfig{
		{name: "ppa_r100", arch: sslic.PPA, ratio: 1.0},
		{name: "ppa_r050", arch: sslic.PPA, ratio: 0.5},
		{name: "ppa_r025", arch: sslic.PPA, ratio: 0.25},
		{name: "cpa_r050", arch: sslic.CPA, ratio: 0.5},
		{name: "degrade_l0", arch: sslic.PPA, ratio: 0.5, level: degrade.Full, quality: true},
		{name: "degrade_l2", arch: sslic.PPA, ratio: 0.5, level: degrade.CoarseSubsample, quality: true},
		// The in-frame tiling sweep on the float64 datapath: same work,
		// 1/4/8 row bands. Wall time scales with the host's cores; the
		// deterministic metrics must NOT move across the sweep — that
		// invariance is itself a gated property.
		{name: "tiled_w1", arch: sslic.PPA, ratio: 0.5, workers: 1},
		{name: "tiled_w4", arch: sslic.PPA, ratio: 0.5, workers: 4},
		{name: "tiled_w8", arch: sslic.PPA, ratio: 0.5, workers: 8},
		// The integer LUT datapath, serial and at eight bands — the
		// degrade_l0-equivalent workload on the paper's arithmetic, with
		// the boundary-recall proxy recorded so the speedup is visibly
		// at quality parity. The band count is pinned (not -1) so the
		// deterministic metrics stay host-independent for the CI gate.
		{name: "fixed_w1", arch: sslic.PPA, ratio: 0.5, datapath: sslic.Fixed, workers: 1, quality: true},
		{name: "fixed_w8", arch: sslic.PPA, ratio: 0.5, datapath: sslic.Fixed, workers: 8, quality: true},
	}
}

// RunPerf measures every configuration against one deterministic
// synthetic frame (dataset.DefaultConfig at seed 1 — the Berkeley-sized
// scene the quality experiments use). quick shrinks the frame and K for
// CI-speed runs; quick and full reports are marked and benchdiff
// refuses to compare across the flag.
func RunPerf(quick bool) (*PerfReport, error) {
	cfg := dataset.DefaultConfig()
	k := 256
	if quick {
		cfg.W, cfg.H = 240, 160
		k = 64
	}
	sample, err := dataset.Generate(cfg, 1)
	if err != nil {
		return nil, fmt.Errorf("bench: generating perf frame: %w", err)
	}

	rep := &PerfReport{
		Schema:    PerfSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Width:     cfg.W,
		Height:    cfg.H,
		K:         k,
		Quick:     quick,
	}
	for _, c := range perfConfigs() {
		p := sslic.DefaultParams(k, c.ratio)
		p.Arch = c.arch
		p.TileWorkers = c.workers
		p.Datapath = c.datapath
		p = degrade.Apply(p, c.level) // level 0 is the identity
		var calcs int64
		var stats sslic.Stats
		var benchErr error
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sslic.Segment(sample.Image, p)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				calcs = res.Stats.DistanceCalcs
				stats = res.Stats
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("bench: perf config %s: %w", c.name, benchErr)
		}
		ns := br.NsPerOp()
		fps := 0.0
		if ns > 0 {
			fps = 1e9 / float64(ns)
		}
		pr := PerfResult{
			Name:                  c.name,
			NsPerOp:               ns,
			FramesPerSec:          fps,
			AllocsPerOp:           br.AllocsPerOp(),
			BytesPerOp:            br.AllocedBytesPerOp(),
			DistanceCalcsPerFrame: calcs,
			Iterations:            br.N,
		}
		if c.quality {
			res, err := sslic.Segment(sample.Image, p)
			if err != nil {
				return nil, fmt.Errorf("bench: quality run %s: %w", c.name, err)
			}
			recall, err := metrics.BoundaryRecall(res.Labels, sample.GT, 2)
			if err != nil {
				return nil, fmt.Errorf("bench: boundary recall %s: %w", c.name, err)
			}
			pr.BoundaryRecall = recall
		}
		pr.Cost = perfCost(cfg.W, cfg.H, k, p, stats)
		pr.Quality = perfQuality(stats)
		rep.Results = append(rep.Results, pr)
	}
	// The end-to-end pair measures the request core the serving layer
	// runs between the HTTP layers — decode a PPM body, segment, encode
	// the slbl-rle response — with and without the buffer pool. The
	// allocs_per_op gap between the two IS the zero-copy claim, stated
	// as a gated, diffable number.
	for _, pooled := range []bool{false, true} {
		pr, err := runE2E(sample.Image, k, pooled)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, pr)
	}
	rep.Speedups = speedups(rep.Results)
	return rep, nil
}

// runE2E benchmarks decode → segment → encode over one frame. The
// pooled variant recycles its buffers exactly as the server's success
// path does, so after the warm-up iteration its allocations are the
// steady-state request cost; the fresh variant allocates every plane
// per op, which is what the service did before the buffer pool.
func runE2E(im *imgio.Image, k int, pooled bool) (PerfResult, error) {
	name := "e2e_fresh"
	var pool *bufpool.Pool
	if pooled {
		name = "e2e_pooled"
		pool = bufpool.New(bufpool.Config{})
	}
	var body bytes.Buffer
	if err := imgio.EncodePPM(&body, im); err != nil {
		return PerfResult{}, fmt.Errorf("bench: encoding e2e frame: %w", err)
	}
	p := sslic.DefaultParams(k, 0.5)
	p.TileWorkers = 1 // deterministic alloc counts are the point here
	var calcs int64
	var freshBytes int64
	var stats sslic.Stats
	var benchErr error
	run := func() error {
		var alloc imgio.ImageAlloc
		ledger := telemetry.NewCost()
		if pool != nil {
			alloc = pool.ImageAlloc(ledger)
		}
		frame, err := imgio.DecodeImageLimitAlloc(bytes.NewReader(body.Bytes()), im.W*im.H, alloc)
		if err != nil {
			return err
		}
		pp := p
		if pool != nil {
			lbuf, fresh := pool.GetLabelMap(frame.W, frame.H)
			pp.LabelBuf = lbuf
			freshBytes = ledger.Snapshot().AllocBytes + fresh
		} else {
			freshBytes = int64(3*len(frame.C0)) + int64(4*frame.W*frame.H)
		}
		res, err := sslic.Segment(frame, pp)
		if err != nil {
			return err
		}
		calcs = res.Stats.DistanceCalcs
		stats = res.Stats
		if err := wire.EncodeRLE(io.Discard, res.Labels); err != nil {
			return err
		}
		if pool != nil {
			pool.PutImage(frame)
			pool.PutLabelMap(res.Labels)
		}
		return nil
	}
	if err := run(); err != nil { // warm the pool before measuring
		return PerfResult{}, fmt.Errorf("bench: e2e config %s: %w", name, err)
	}
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return PerfResult{}, fmt.Errorf("bench: e2e config %s: %w", name, benchErr)
	}
	ns := br.NsPerOp()
	fps := 0.0
	if ns > 0 {
		fps = 1e9 / float64(ns)
	}
	pr := PerfResult{
		Name:                  name,
		NsPerOp:               ns,
		FramesPerSec:          fps,
		AllocsPerOp:           br.AllocsPerOp(),
		BytesPerOp:            br.AllocedBytesPerOp(),
		DistanceCalcsPerFrame: calcs,
		Iterations:            br.N,
	}
	pr.Cost = perfCost(im.W, im.H, k, p, stats)
	pr.Quality = perfQuality(stats)
	// The ledger charge is measured, not estimated: the pool's fresh
	// bytes for the steady-state iteration (zero once warm) versus the
	// full three-plane + label-map footprint on the fresh path.
	pr.Cost.AllocBytes = freshBytes
	return pr, nil
}

// perfCost prices one configuration's frame with the same ledger the
// serving layer uses per request: summed phase time as the CPU charge,
// the label-map footprint as the deterministic allocation charge, and
// the hw analytic model for the energy estimate (the config's actual
// resolution, K, subsample ratio, and the subset passes the measured
// run executed). An energy-model failure leaves EstPJ zero rather than
// failing the harness — the other cost fields are still comparable.
func perfCost(w, h, k int, p sslic.Params, stats sslic.Stats) *PerfCost {
	pc := &PerfCost{
		CPUNs:      int64(stats.Total()),
		AllocBytes: int64(4 * w * h), // one int32 label per pixel
	}
	hwCfg := hw.DefaultConfig()
	hwCfg.Width, hwCfg.Height, hwCfg.K = w, h, k
	hwCfg.SubsampleRatio = p.SubsampleRatio
	hwCfg.Passes = stats.SubsetPasses
	if hwCfg.Passes <= 0 {
		hwCfg.Passes = 1
	}
	if report, err := hw.Simulate(hwCfg); err == nil {
		pc.EstPJ = report.EnergyPerFrame * 1e12
	}
	return pc
}

// perfQuality extracts the deterministic quality-proxy block from one
// measured run's stats — the same values the live tracker would fold in
// for this frame.
func perfQuality(stats sslic.Stats) *PerfQuality {
	return &PerfQuality{
		EmptyClusters:  stats.EmptyClusters,
		ClusterSizeCV:  stats.ClusterSizeCV,
		BoundaryPixels: stats.BoundaryPixels,
		FinalResidual:  stats.FinalResidual(),
	}
}

// speedups derives the headline wall-time ratios: the tiling sweep
// against its own single-band run, and the fixed datapath against the
// float64 serial baseline (degrade_l0 — the same workload, reference
// arithmetic, no bands).
func speedups(results []PerfResult) map[string]float64 {
	ns := make(map[string]int64, len(results))
	for _, r := range results {
		ns[r.Name] = r.NsPerOp
	}
	ratio := func(base, cur string) (float64, bool) {
		b, c := ns[base], ns[cur]
		if b <= 0 || c <= 0 {
			return 0, false
		}
		return float64(b) / float64(c), true
	}
	out := map[string]float64{}
	for name, pair := range map[string][2]string{
		"tiled_w4_vs_w1":        {"tiled_w1", "tiled_w4"},
		"tiled_w8_vs_w1":        {"tiled_w1", "tiled_w8"},
		"fixed_vs_float_serial": {"degrade_l0", "fixed_w1"},
		"fixed_w8_vs_float":     {"degrade_l0", "fixed_w8"},
	} {
		if v, ok := ratio(pair[0], pair[1]); ok {
			out[name] = v
		}
	}
	return out
}

// WritePerf serializes a report as indented JSON.
func WritePerf(w io.Writer, r *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadPerf reads a report file and validates its schema.
func LoadPerf(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != PerfSchema {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, PerfSchema)
	}
	return &r, nil
}

// PerfDelta is one metric's base-vs-current comparison.
type PerfDelta struct {
	Config string  // configuration name
	Metric string  // "ns_per_op", "allocs_per_op", ...
	Base   float64 // baseline value
	Cur    float64 // current value
	Ratio  float64 // Cur / Base (regressions are > 1 + tolerance)
}

func (d PerfDelta) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g (%+.1f%%)",
		d.Config, d.Metric, d.Base, d.Cur, (d.Ratio-1)*100)
}

// ComparePerf diffs two reports. It returns every per-config metric
// delta, the subset that regressed beyond the tolerance (Cur/Base >
// 1+tol; lower is better for every compared metric), and configs
// present in the baseline but missing now (a silently dropped config
// must fail the diff — it is how coverage erodes). skipTime excludes
// the host-dependent wall-time metrics, leaving only the deterministic
// ones — the mode CI runs in.
func ComparePerf(base, cur *PerfReport, tol float64, skipTime bool) (all, regressions []PerfDelta, missing []string, err error) {
	if base.Schema != cur.Schema {
		return nil, nil, nil, fmt.Errorf("bench: schema mismatch: %q vs %q", base.Schema, cur.Schema)
	}
	if base.Quick != cur.Quick {
		return nil, nil, nil, fmt.Errorf("bench: quick-mode mismatch: baseline quick=%v, current quick=%v", base.Quick, cur.Quick)
	}
	curBy := make(map[string]PerfResult, len(cur.Results))
	for _, r := range cur.Results {
		curBy[r.Name] = r
	}
	for _, b := range base.Results {
		c, ok := curBy[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		type perfMetric struct {
			name      string
			base, cur float64
			timeBased bool
		}
		metrics := []perfMetric{
			{"ns_per_op", float64(b.NsPerOp), float64(c.NsPerOp), true},
			{"allocs_per_op", float64(b.AllocsPerOp), float64(c.AllocsPerOp), false},
			{"bytes_per_op", float64(b.BytesPerOp), float64(c.BytesPerOp), false},
			{"distance_calcs_per_frame", float64(b.DistanceCalcsPerFrame), float64(c.DistanceCalcsPerFrame), false},
		}
		// The cost ledger joined the report after v1 baselines were cut;
		// compare it only when both sides carry it so old reports still
		// diff on the original metrics.
		if b.Cost != nil && c.Cost != nil {
			metrics = append(metrics,
				perfMetric{"cost.cpu_ns", float64(b.Cost.CPUNs), float64(c.Cost.CPUNs), true},
				perfMetric{"cost.alloc_bytes", float64(b.Cost.AllocBytes), float64(c.Cost.AllocBytes), false},
				perfMetric{"cost.est_pj", b.Cost.EstPJ, c.Cost.EstPJ, false},
			)
		}
		// Same vintage rule for the quality block: only diff it when
		// both reports carry it. BoundaryPixels and FinalResidual stay
		// out of the gate — they have no regression direction.
		if b.Quality != nil && c.Quality != nil {
			metrics = append(metrics,
				perfMetric{"quality.empty_clusters", float64(b.Quality.EmptyClusters), float64(c.Quality.EmptyClusters), false},
				perfMetric{"quality.cluster_size_cv", b.Quality.ClusterSizeCV, c.Quality.ClusterSizeCV, false},
			)
		}
		for _, m := range metrics {
			if skipTime && m.timeBased {
				continue
			}
			d := PerfDelta{Config: b.Name, Metric: m.name, Base: m.base, Cur: m.cur}
			switch {
			case m.base == 0 && m.cur == 0:
				d.Ratio = 1
			case m.base == 0:
				d.Ratio = math.Inf(1)
			default:
				d.Ratio = m.cur / m.base
			}
			all = append(all, d)
			if d.Ratio > 1+tol {
				regressions = append(regressions, d)
			}
		}
	}
	return all, regressions, missing, nil
}
