package bench

import (
	"fmt"
	"time"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
	"sslic/internal/metrics"
	"sslic/internal/slic"
	"sslic/internal/sslic"
)

// Figure 2 workload: K=900 superpixels on the Berkeley-substitute corpus.
const fig2K = 900

func init() {
	register(Runner{
		ID:          "fig2a",
		Description: "Undersegmentation error vs runtime: SLIC, S-SLIC(0.5), S-SLIC(0.25)",
		Run:         func(o Options) (*Table, error) { return figure2(o, "fig2a") },
	})
	register(Runner{
		ID:          "fig2b",
		Description: "Boundary recall vs runtime: SLIC, S-SLIC(0.5), S-SLIC(0.25)",
		Run:         func(o Options) (*Table, error) { return figure2(o, "fig2b") },
	})
	register(Runner{
		ID:          "table1",
		Description: "Phase time breakdown of SLIC and S-SLIC",
		Run:         table1,
	})
	register(Runner{
		ID:          "bitwidth",
		Description: "§6.1 bit-width exploration: USE/BR delta vs float64",
		Run:         bitWidth,
	})
}

// corpus builds the experiment corpus.
func corpus(o Options) ([]*dataset.Sample, error) {
	n := o.CorpusSize
	if n < 1 {
		n = 1
	}
	return dataset.Corpus(dataset.DefaultConfig(), n, o.Seed)
}

// qualityPoint is one (variant, iterations) measurement averaged over the
// corpus.
type qualityPoint struct {
	variant       string
	iters         int
	timeMS        float64
	use, br       float64
	useStd, brStd float64
}

// runQualitySweep produces the Figure 2 curves.
func runQualitySweep(o Options) ([]qualityPoint, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	iterSweep := []int{2, 3, 5, 8, 10, 14}
	if o.Quick {
		iterSweep = []int{2, 5, 10}
	}
	type variant struct {
		name  string
		ratio float64
	}
	variants := []variant{
		{"SLIC", 0}, // ratio 0 marks the reference CPA SLIC
		{"S-SLIC(0.5)", 0.5},
		{"S-SLIC(0.25)", 0.25},
	}
	var points []qualityPoint
	for _, v := range variants {
		for _, iters := range iterSweep {
			var totalTime time.Duration
			var useAgg, brAgg metrics.Aggregate
			for _, s := range samples {
				var labels *imgio.LabelMap
				t0 := time.Now()
				if v.ratio == 0 {
					p := slic.DefaultParams(fig2K)
					p.MaxIters = iters
					r, err := slic.Segment(s.Image, p)
					if err != nil {
						return nil, err
					}
					labels = r.Labels
				} else {
					p := sslic.DefaultParams(fig2K, v.ratio)
					p.FullIters = iters
					r, err := sslic.Segment(s.Image, p)
					if err != nil {
						return nil, err
					}
					labels = r.Labels
				}
				totalTime += time.Since(t0)
				u, err := metrics.UndersegmentationError(labels, s.GT)
				if err != nil {
					return nil, err
				}
				b, err := metrics.BoundaryRecall(labels, s.GT, 2)
				if err != nil {
					return nil, err
				}
				useAgg.Add(u)
				brAgg.Add(b)
			}
			n := float64(len(samples))
			points = append(points, qualityPoint{
				variant: v.name,
				iters:   iters,
				timeMS:  float64(totalTime.Milliseconds()) / n,
				use:     useAgg.Mean(),
				br:      brAgg.Mean(),
				useStd:  useAgg.Std(),
				brStd:   brAgg.Std(),
			})
		}
	}
	return points, nil
}

func figure2(o Options, id string) (*Table, error) {
	points, err := runQualitySweep(o)
	if err != nil {
		return nil, err
	}
	metric := "USE"
	title := "Undersegmentation error vs runtime (K=900)"
	if id == "fig2b" {
		metric = "BoundaryRecall"
		title = "Boundary recall vs runtime (K=900)"
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"variant", "full-iters", "time(ms)", metric, "±std"},
		Notes: []string{
			"corpus: synthetic Berkeley substitute (see DESIGN.md); absolute times are host-dependent",
			"paper shape: S-SLIC reaches SLIC's quality at ~15-25% less runtime",
		},
	}
	for _, p := range points {
		val, std := p.use, p.useStd
		if id == "fig2b" {
			val, std = p.br, p.brStd
		}
		t.AddRow(p.variant, fmt.Sprintf("%d", p.iters), f1(p.timeMS), f4(val), f4(std))
	}
	return t, nil
}

func table1(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	iters := 10
	if o.Quick {
		iters = 4
	}
	sumPhases := func(st slic.Stats) (cc, assign, update, other, total float64) {
		cc = st.ColorConvTime.Seconds()
		assign = st.AssignTime.Seconds()
		update = st.UpdateTime.Seconds()
		other = st.OtherTime.Seconds() + st.InitTime.Seconds()
		total = cc + assign + update + other
		return cc, assign, update, other, total
	}
	// Both rows are profiled under the PPA dataflow so that subsampling
	// is the only difference: the "SLIC" row is the non-subsampled
	// (ratio 1.0, gSLIC-style) formulation the accelerator targets, the
	// S-SLIC row runs ratio 0.5. Both use the paper's CPU software
	// organization, where the center update is a separate full pass
	// after every subset pass — that is why its share grows under
	// subsampling (the paper measures 10.2% → 17.9%).
	run := func(ratio float64) ([5]float64, error) {
		var ph [5]float64
		for _, s := range samples {
			p := sslic.DefaultParams(fig2K, ratio)
			p.FullIters = iters
			p.SoftwareCenterUpdate = true
			r, err := sslic.Segment(s.Image, p)
			if err != nil {
				return ph, err
			}
			cc, a, u, ot, tot := sumPhases(r.Stats.Stats)
			ph[0] += cc
			ph[1] += a
			ph[2] += u
			ph[3] += ot
			ph[4] += tot
		}
		return ph, nil
	}
	slicPhases, err := run(1)
	if err != nil {
		return nil, err
	}
	ssPhases, err := run(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table1",
		Title:   "Time breakdown of SLIC and S-SLIC implementations",
		Columns: []string{"variant", "ColorConversion", "Distance+Min", "CenterUpdate", "Other"},
		Notes: []string{
			"paper: SLIC 23.4/65.9/10.2/0.5%%; S-SLIC 18.7/59.7/17.9/3.7%%",
			"shape to match: Distance+Min dominates; CenterUpdate share grows under subsampling",
			"both rows profiled under the PPA dataflow (SLIC = ratio 1.0) with the separate-pass center update the paper's software uses",
		},
	}
	pct := func(v, tot float64) string { return fmt.Sprintf("%.1f%%", 100*v/tot) }
	t.AddRow("SLIC", pct(slicPhases[0], slicPhases[4]), pct(slicPhases[1], slicPhases[4]),
		pct(slicPhases[2], slicPhases[4]), pct(slicPhases[3], slicPhases[4]))
	t.AddRow("S-SLIC", pct(ssPhases[0], ssPhases[4]), pct(ssPhases[1], ssPhases[4]),
		pct(ssPhases[2], ssPhases[4]), pct(ssPhases[3], ssPhases[4]))
	return t, nil
}

func bitWidth(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	widths := []int{16, 12, 10, 8, 7, 6, 5, 4}
	if o.Quick {
		widths = []int{12, 8, 5}
	}
	iters := 10
	if o.Quick {
		iters = 4
	}
	run := func(s *dataset.Sample, bits int) (float64, float64, error) {
		p := sslic.DefaultParams(fig2K, 0.5)
		p.FullIters = iters
		if bits > 0 {
			p.Quantization = slic.NewDatapath(bits)
		}
		r, err := sslic.Segment(s.Image, p)
		if err != nil {
			return 0, 0, err
		}
		u, err := metrics.UndersegmentationError(r.Labels, s.GT)
		if err != nil {
			return 0, 0, err
		}
		b, err := metrics.BoundaryRecall(r.Labels, s.GT, 2)
		return u, b, err
	}
	// float64 baseline.
	var baseUSE, baseBR float64
	for _, s := range samples {
		u, b, err := run(s, 0)
		if err != nil {
			return nil, err
		}
		baseUSE += u
		baseBR += b
	}
	n := float64(len(samples))
	baseUSE /= n
	baseBR /= n

	t := &Table{
		ID:      "bitwidth",
		Title:   "§6.1 bit-width exploration (S-SLIC(0.5), K=900)",
		Columns: []string{"width", "USE", "ΔUSE vs float64", "BR", "ΔBR vs float64"},
		Notes: []string{
			"paper: at 8-bit fixed point, USE grows by only 0.003 and BR drops by only 0.001",
			"paper: below 7 bits the error increase becomes noticeable",
		},
	}
	t.AddRow("float64", f4(baseUSE), "-", f4(baseBR), "-")
	for _, w := range widths {
		var use, br float64
		for _, s := range samples {
			u, b, err := run(s, w)
			if err != nil {
				return nil, err
			}
			use += u
			br += b
		}
		use /= n
		br /= n
		t.AddRow(fmt.Sprintf("%d-bit", w), f4(use), f4(use-baseUSE), f4(br), f4(br-baseBR))
	}
	return t, nil
}
