package bench

import (
	"fmt"

	"sslic/internal/energy"
	"sslic/internal/gpumodel"
	"sslic/internal/hw"
	"sslic/internal/sslic"
)

func init() {
	register(Runner{
		ID:          "table2",
		Description: "CPA vs PPA: memory bandwidth and operation count per 1080p iteration",
		Run:         table2,
	})
	register(Runner{
		ID:          "table3",
		Description: "Cluster Update Unit configurations: area/power/latency/throughput/time/energy",
		Run:         table3,
	})
	register(Runner{
		ID:          "fig6",
		Description: "Frame time vs channel buffer size (HD, K=5000, 9-9-6)",
		Run:         fig6,
	})
	register(Runner{
		ID:          "table4",
		Description: "Best accelerator configurations at 1080p/720p/VGA",
		Run:         table4,
	})
	register(Runner{
		ID:          "table5",
		Description: "Tesla K20 / Tegra K1 / S-SLIC accelerator comparison",
		Run:         table5,
	})
}

func table2(o Options) (*Table, error) {
	cpa := sslic.Analyze(sslic.CPA, 1920, 1080, 1)
	ppa := sslic.Analyze(sslic.PPA, 1920, 1080, 1)
	t := &Table{
		ID:      "table2",
		Title:   "Analysis of CPA and PPA implementations (1920×1080, per iteration)",
		Columns: []string{"", "CPA", "PPA"},
		Notes: []string{
			"paper: CPA 318 MB + 58M ops; PPA 100 MB + 130M ops per iteration",
			fmt.Sprintf("bandwidth ratio %.2f× (paper ~3×), op ratio %.2f× (paper 2.25×)",
				cpa.TrafficMB()/ppa.TrafficMB(), ppa.OpsM()/cpa.OpsM()),
		},
	}
	t.AddRow("Memory Bandwidth", f0(cpa.TrafficMB())+" MB/iteration", f0(ppa.TrafficMB())+" MB/iteration")
	t.AddRow("Operation count", f0(cpa.OpsM())+"M OPs/iteration", f0(ppa.OpsM())+"M OPs/iteration")

	// §4.2 energy model: per-iteration energy under the 8b-add/2500×DRAM
	// assumption, the reason the design adopts the PPA.
	tech := energy.Default16nm()
	cpaE := float64(cpa.Ops)*tech.Add8Energy + tech.DRAMEnergy(cpa.TrafficBytes)
	ppaE := float64(ppa.Ops)*tech.Add8Energy + tech.DRAMEnergy(ppa.TrafficBytes)
	t.AddRow("Model energy (§4.2)", fmt.Sprintf("%.1f mJ/iteration", cpaE*1e3), fmt.Sprintf("%.1f mJ/iteration", ppaE*1e3))
	return t, nil
}

func table3(o Options) (*Table, error) {
	tech := energy.Default16nm()
	const n = 1920 * 1080
	t := &Table{
		ID:    "table3",
		Title: "Cluster Update Unit configurations (1 iteration of 1920×1080 at 1.6 GHz)",
		Columns: []string{"config", "area(mm²)", "power(mW)", "latency(cyc)", "throughput(px/cyc)",
			"time(ms)", "energy(µJ)"},
		Notes: []string{
			"paper row order: 1-1-1, 9-1-1, 1-9-1, 1-1-6, 9-9-6",
			"paper: 9-9-6 is 7.8× area and 9.4× power of 1-1-1 for 9× throughput at marginal energy",
		},
	}
	for _, c := range hw.Table3Configs() {
		t.AddRow(
			c.String(),
			f4(c.AreaMM2()),
			f1(c.PowerWatts(tech)*1e3),
			fmt.Sprintf("%d", c.LatencyCycles()),
			fmt.Sprintf("1/%d", c.InitiationInterval()),
			f1(c.IterationTime(tech, n)*1e3),
			f1(c.IterationEnergy(tech, n)*1e6),
		)
	}
	return t, nil
}

func fig6(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Frame time vs channel buffer size (1080p, K=5000, 9-9-6)",
		Columns: []string{"buffer/channel", "frame time(ms)", "fps", "real-time(≥30fps)", "mem fraction"},
		Notes: []string{
			"paper: real time needs ≥4 kB; larger buffers give only slightly better frame time",
			"paper: at 4 kB, memory access is 35% of execution time",
		},
	}
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := hw.DefaultConfig()
		cfg.BufferBytesPerChannel = kb * 1024
		r, err := hw.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%dkB", kb),
			fmt.Sprintf("%.2f", r.TotalTime*1e3),
			f1(r.FPS),
			fmt.Sprintf("%v", r.RealTime),
			fmt.Sprintf("%.0f%%", 100*r.ClusterMemTime/r.TotalTime),
		)
	}
	return t, nil
}

// table4Rows defines the three published design points. The paper notes
// the architecture "can scale gracefully down to lower resolution image
// streams by reducing the buffer sizes and ultimately reducing the clock
// rate"; the sub-HD rows therefore run at reduced clocks, chosen to match
// the published latencies.
var table4Rows = []struct {
	name    string
	w, h    int
	buffer  int
	clockHz float64
}{
	{"1920×1080", 1920, 1080, 4096, 1.6e9},
	{"1280×768", 1280, 768, 1024, 1.25e9},
	{"640×480", 640, 480, 1024, 0.9e9},
}

func table4(o Options) (*Table, error) {
	t := &Table{
		ID:      "table4",
		Title:   "Performance summary of best S-SLIC configurations (K=5000)",
		Columns: []string{"resolution", "buffer", "area(mm²)", "power(mW)", "latency(ms)", "fps", "energy(mJ/frame)", "fps/mm²"},
		Notes: []string{
			"paper: 32.8ms/30.5fps/1.6mJ (HD), 25.4ms/39fps/1.17mJ (720p), 19.7ms/50.3fps/0.98mJ (VGA)",
			"sub-HD rows run at reduced clock per §6.3's graceful scale-down; see EXPERIMENTS.md",
		},
	}
	for _, row := range table4Rows {
		cfg := hw.DefaultConfig()
		cfg.Width, cfg.Height = row.w, row.h
		cfg.BufferBytesPerChannel = row.buffer
		cfg.Tech.ClockHz = row.clockHz
		r, err := hw.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			row.name,
			fmt.Sprintf("%dkB", row.buffer/1024),
			f3(r.AreaMM2),
			f0(r.PowerWatts*1e3),
			f1(r.TotalTime*1e3),
			f1(r.FPS),
			fmt.Sprintf("%.2f", r.EnergyPerFrame*1e3),
			f0(r.PerfPerArea),
		)
	}
	return t, nil
}

func table5(o Options) (*Table, error) {
	accel, err := hw.Simulate(hw.DefaultConfig())
	if err != nil {
		return nil, err
	}
	devices := []gpumodel.Device{gpumodel.TeslaK20(), gpumodel.TegraK1()}
	t := &Table{
		ID:      "table5",
		Title:   "GPU, mobile GPU, and S-SLIC accelerator (1920×1080, K=5000)",
		Columns: []string{"", "Tesla K20", "TK1", "This Work"},
		Notes: []string{
			"GPU rows from the calibrated analytic device models (see DESIGN.md substitutions)",
		},
	}
	lat := make([]float64, 2)
	normE := make([]float64, 2)
	for i, d := range devices {
		if lat[i], err = d.Latency(1920, 1080); err != nil {
			return nil, err
		}
		if normE[i], err = d.NormalizedEnergyPerFrame(1920, 1080); err != nil {
			return nil, err
		}
	}
	t.AddRow("Algorithm", "SLIC", "SLIC", "S-SLIC")
	t.AddRow("Technology", "28nm (0.81V)", "28nm (0.81V)", "16nm (0.72V)")
	t.AddRow("On-chip memory", "6320kB", "368kB", fmt.Sprintf("%dkB", (accel.OnChipBytes+4096)/1024))
	t.AddRow("Core count", "2496", "192", "1")
	t.AddRow("Average power", "86W", "332mW", f0(accel.PowerWatts*1e3)+"mW")
	t.AddRow("Power (normalized)",
		f0(devices[0].NormalizedPower())+"W",
		f0(devices[1].NormalizedPower()*1e3)+"mW",
		f0(accel.PowerWatts*1e3)+"mW")
	t.AddRow("Latency", f1(lat[0]*1e3)+"ms", f0(lat[1]*1e3)+"ms", f1(accel.TotalTime*1e3)+"ms")
	t.AddRow("Energy/frame (normalized)",
		f0(normE[0]*1e3)+"mJ", f0(normE[1]*1e3)+"mJ",
		fmt.Sprintf("%.1fmJ", accel.EnergyPerFrame*1e3))
	t.Notes = append(t.Notes,
		fmt.Sprintf("energy-efficiency ratios: %.0f× vs K20, %.0f× vs TK1 (paper: >500×, >250×)",
			normE[0]/accel.EnergyPerFrame, normE[1]/accel.EnergyPerFrame))
	return t, nil
}
