package bench

import (
	"time"

	"sslic/internal/metrics"
	slicpkg "sslic/internal/slic"
	"sslic/internal/sslic"
)

// Ablation experiments for the design choices DESIGN.md calls out: the
// subsampling scheme (§3's "different subsampling mechanisms"), the
// architecture choice (§4.2's accuracy claim), and the Preemptive-SLIC
// composition the paper leaves as future work (§8).

func init() {
	register(Runner{
		ID:          "ablation-schemes",
		Description: "Subsampling scheme ablation: interleaved vs rows vs blocks vs hashed",
		Run:         ablationSchemes,
	})
	register(Runner{
		ID:          "ablation-arch",
		Description: "PPA vs CPA segmentation quality at equal iterations",
		Run:         ablationArch,
	})
	register(Runner{
		ID:          "ablation-preemptive",
		Description: "Preemptive S-SLIC: work saved vs quality cost",
		Run:         ablationPreemptive,
	})
}

func ablationSchemes(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	iters := 10
	if o.Quick {
		iters = 4
	}
	t := &Table{
		ID:      "ablation-schemes",
		Title:   "Subsampling scheme ablation (S-SLIC(0.25), K=900)",
		Columns: []string{"scheme", "USE", "BoundaryRecall"},
		Notes: []string{
			"§3: choosing the proper subsampling strategy is fundamental to convergence",
			"expected: spatially uniform subsets (interleaved/rows/hashed) beat contiguous blocks",
		},
	}
	for _, scheme := range []sslic.Scheme{sslic.Interleaved, sslic.Rows, sslic.Blocks, sslic.Hashed} {
		var use, br float64
		for _, s := range samples {
			p := sslic.DefaultParams(fig2K, 0.25)
			p.FullIters = iters
			p.Scheme = scheme
			r, err := sslic.Segment(s.Image, p)
			if err != nil {
				return nil, err
			}
			u, err := metrics.UndersegmentationError(r.Labels, s.GT)
			if err != nil {
				return nil, err
			}
			b, err := metrics.BoundaryRecall(r.Labels, s.GT, 2)
			if err != nil {
				return nil, err
			}
			use += u
			br += b
		}
		n := float64(len(samples))
		t.AddRow(scheme.String(), f4(use/n), f4(br/n))
	}
	return t, nil
}

func ablationArch(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	iters := 10
	if o.Quick {
		iters = 4
	}
	t := &Table{
		ID:      "ablation-arch",
		Title:   "PPA vs CPA quality (ratio 1.0, K=900)",
		Columns: []string{"arch", "USE", "BoundaryRecall", "distance calcs(M)"},
		Notes: []string{
			"§4.2: the PPA shows almost the same but slightly better accuracy than the CPA",
		},
	}
	for _, arch := range []sslic.Arch{sslic.PPA, sslic.CPA} {
		var use, br float64
		var calcs int64
		for _, s := range samples {
			p := sslic.DefaultParams(fig2K, 1)
			p.FullIters = iters
			p.Arch = arch
			r, err := sslic.Segment(s.Image, p)
			if err != nil {
				return nil, err
			}
			u, err := metrics.UndersegmentationError(r.Labels, s.GT)
			if err != nil {
				return nil, err
			}
			b, err := metrics.BoundaryRecall(r.Labels, s.GT, 2)
			if err != nil {
				return nil, err
			}
			use += u
			br += b
			calcs += r.Stats.DistanceCalcs
		}
		n := float64(len(samples))
		t.AddRow(arch.String(), f4(use/n), f4(br/n), f1(float64(calcs)/n/1e6))
	}
	return t, nil
}

func ablationPreemptive(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	iters := 12
	if o.Quick {
		iters = 5
	}
	t := &Table{
		ID:      "ablation-preemptive",
		Title:   "Preemptive S-SLIC(0.5) composition (K=900)",
		Columns: []string{"variant", "USE", "BoundaryRecall", "distance calcs(M)", "time(ms)"},
		Notes: []string{
			"§8: Preemptive SLIC is orthogonal to S-SLIC; \"the two techniques could be combined\"",
		},
	}
	for _, preemptive := range []bool{false, true} {
		var use, br float64
		var calcs int64
		var tt time.Duration
		for _, s := range samples {
			p := sslic.DefaultParams(fig2K, 0.5)
			p.FullIters = iters
			p.Preemptive = preemptive
			// Subset sampling makes converged centers jitter by a
			// fraction of a pixel between passes; a 1-pixel settle
			// threshold freezes genuinely stable regions.
			p.PreemptThreshold = 1.0
			t0 := time.Now()
			r, err := sslic.Segment(s.Image, p)
			if err != nil {
				return nil, err
			}
			tt += time.Since(t0)
			u, err := metrics.UndersegmentationError(r.Labels, s.GT)
			if err != nil {
				return nil, err
			}
			b, err := metrics.BoundaryRecall(r.Labels, s.GT, 2)
			if err != nil {
				return nil, err
			}
			use += u
			br += b
			calcs += r.Stats.DistanceCalcs
		}
		n := float64(len(samples))
		name := "S-SLIC(0.5)"
		if preemptive {
			name = "preemptive S-SLIC(0.5)"
		}
		t.AddRow(name, f4(use/n), f4(br/n), f1(float64(calcs)/n/1e6),
			f1(float64(tt.Milliseconds())/n))
	}
	return t, nil
}

func init() {
	register(Runner{
		ID:          "ablation-slico",
		Description: "SLIC vs SLICO (adaptive compactness): quality and shape regularity",
		Run:         ablationSLICO,
	})
}

func ablationSLICO(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	iters := 10
	if o.Quick {
		iters = 4
	}
	t := &Table{
		ID:      "ablation-slico",
		Title:   "SLIC vs SLICO (K=900)",
		Columns: []string{"variant", "USE", "BoundaryRecall", "Compactness"},
		Notes: []string{
			"SLICO normalizes each cluster's color distance by its own observed scale, removing the m parameter;",
			"on this corpus of fairly homogeneous regions it costs some USE/BR — its benefit is shape uniformity",
			"across texture levels (asserted in internal/slic's TestSLICOEqualizesCompactness), not global quality",
		},
	}
	for _, adaptive := range []bool{false, true} {
		var use, br, co float64
		for _, s := range samples {
			p := slicpkg.DefaultParams(fig2K)
			p.MaxIters = iters
			p.AdaptiveCompactness = adaptive
			r, err := slicpkg.Segment(s.Image, p)
			if err != nil {
				return nil, err
			}
			u, err := metrics.UndersegmentationError(r.Labels, s.GT)
			if err != nil {
				return nil, err
			}
			b, err := metrics.BoundaryRecall(r.Labels, s.GT, 2)
			if err != nil {
				return nil, err
			}
			use += u
			br += b
			co += metrics.Compactness(r.Labels)
		}
		n := float64(len(samples))
		name := "SLIC (m=10)"
		if adaptive {
			name = "SLICO (adaptive)"
		}
		t.AddRow(name, f4(use/n), f4(br/n), f4(co/n))
	}
	return t, nil
}
