// Package bench regenerates every table and figure of the paper's
// evaluation (§3, §6, §7). Each experiment is a named function returning
// a typed Table; cmd/sslic-bench renders them as text or CSV, and
// EXPERIMENTS.md records the paper-vs-measured comparison. The
// experiment IDs match DESIGN.md's per-experiment index.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Options control experiment cost.
type Options struct {
	// CorpusSize is the number of synthetic images for quality
	// experiments (the paper uses 100-200 Berkeley images).
	CorpusSize int
	// Seed makes the corpus reproducible.
	Seed int64
	// Quick trims sweeps for CI-speed runs.
	Quick bool
}

// DefaultOptions mirror the paper-scale settings.
func DefaultOptions() Options {
	return Options{CorpusSize: 20, Seed: 1}
}

// QuickOptions are for tests and smoke runs.
func QuickOptions() Options {
	return Options{CorpusSize: 2, Seed: 1, Quick: true}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes document paper-vs-model caveats inline.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Runner is one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Options) (*Table, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.ID]; dup {
		panic("bench: duplicate experiment " + r.ID)
	}
	registry[r.ID] = r
}

// Experiments lists all registered experiments sorted by ID.
func Experiments() []Runner {
	out := make([]Runner, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// Markdown renders the table as GitHub-flavored markdown, with notes as
// a trailing blockquote — the format EXPERIMENTS.md embeds.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + esc(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, cell := range row {
			b.WriteString(" " + esc(cell) + " |")
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}
