package bench

import (
	"fmt"

	"sslic/internal/dataset"
	"sslic/internal/energy"
	"sslic/internal/hw"
	"sslic/internal/imgio"
	metricspkg "sslic/internal/metrics"
	sslicpkg "sslic/internal/sslic"
)

// Extension experiments beyond the paper's published tables: the knobs
// §5 says the parameterized design exposes ("number of cores, number of
// SIMD ways, memory size, and bit-widths") plus a functional-vs-analytic
// model cross-check. DESIGN.md lists these as the DSE ablations.

func init() {
	register(Runner{
		ID:          "ext-dvfs",
		Description: "Clock/voltage scaling at HD: where does real time break?",
		Run:         extDVFS,
	})
	register(Runner{
		ID:          "ext-bandwidth",
		Description: "DRAM bandwidth sensitivity of the HD design",
		Run:         extBandwidth,
	})
	register(Runner{
		ID:          "ext-multicore",
		Description: "Core-count scaling (Amdahl limit from the serial center update)",
		Run:         extMulticore,
	})
	register(Runner{
		ID:          "ext-funcsim",
		Description: "Functional (bit-accurate) pipeline vs analytic model cross-check",
		Run:         extFuncSim,
	})
}

// dvfsPoints pairs clocks with the roughly linear voltage scaling a
// 16nm process sustains over this range.
var dvfsPoints = []struct {
	ghz float64
	v   float64
}{
	{0.8, 0.58}, {1.0, 0.62}, {1.2, 0.65}, {1.4, 0.69}, {1.6, 0.72}, {1.8, 0.76}, {2.0, 0.80},
}

func extDVFS(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-dvfs",
		Title:   "DVFS sweep of the HD design (K=5000, 9-9-6, 4kB buffers)",
		Columns: []string{"clock", "voltage", "latency(ms)", "fps", "real-time", "power(mW)", "energy(mJ/frame)"},
		Notes: []string{
			"§6.3: the architecture scales gracefully down by reducing buffers and ultimately the clock",
			"expected: real time breaks just below the 1.6 GHz synthesis target at HD",
		},
	}
	for _, p := range dvfsPoints {
		cfg := hw.DefaultConfig()
		cfg.Tech = energy.Default16nm().Scaled(p.ghz*1e9, p.v)
		r, err := hw.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.1fGHz", p.ghz),
			fmt.Sprintf("%.2fV", p.v),
			fmt.Sprintf("%.2f", r.TotalTime*1e3),
			f1(r.FPS),
			fmt.Sprintf("%v", r.RealTime),
			f1(r.PowerWatts*1e3),
			fmt.Sprintf("%.2f", r.EnergyPerFrame*1e3),
		)
	}
	return t, nil
}

func extBandwidth(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-bandwidth",
		Title:   "DRAM bandwidth sensitivity (HD, K=5000, 9-9-6, 4kB buffers)",
		Columns: []string{"bandwidth", "latency(ms)", "fps", "real-time", "mem fraction"},
		Notes: []string{
			"the calibration point is ~8.5 GB/s sustained (LPDDR class); the HD design has essentially no bandwidth headroom — any sustained loss breaks real time, which is why the paper sizes buffers to keep the interface streaming",
		},
	}
	for _, gbps := range []float64{4, 6, 7, 8.5, 10, 12, 17} {
		cfg := hw.DefaultConfig()
		cfg.Tech.DRAMEffectiveBandwidth = gbps * 1e9
		r, err := hw.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.1fGB/s", gbps),
			fmt.Sprintf("%.2f", r.TotalTime*1e3),
			f1(r.FPS),
			fmt.Sprintf("%v", r.RealTime),
			fmt.Sprintf("%.0f%%", 100*r.ClusterMemTime/r.TotalTime),
		)
	}
	return t, nil
}

func extMulticore(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-multicore",
		Title:   "Core-count scaling (HD, K=5000, 9-9-6, 4kB buffers/core)",
		Columns: []string{"cores", "latency(ms)", "fps", "speedup", "area(mm²)", "power(mW)", "fps/mm²"},
		Notes: []string{
			"§5 lists core count among the DSE parameters; the serial center update and the memory time bound the speedup (Amdahl)",
		},
	}
	var base float64
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := hw.DefaultConfig()
		cfg.Cores = cores
		r, err := hw.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		if cores == 1 {
			base = r.TotalTime
		}
		t.AddRow(
			fmt.Sprintf("%d", cores),
			fmt.Sprintf("%.2f", r.TotalTime*1e3),
			f1(r.FPS),
			fmt.Sprintf("%.2f×", base/r.TotalTime),
			f4(r.AreaMM2),
			f1(r.PowerWatts*1e3),
			f0(r.PerfPerArea),
		)
	}
	return t, nil
}

func extFuncSim(o Options) (*Table, error) {
	// A small frame keeps the bit-accurate pipeline fast while still
	// exercising every unit.
	const w, h, k = 192, 128, 96
	dcfg := dataset.DefaultConfig()
	dcfg.W, dcfg.H = w, h
	dcfg.Regions = 10
	sample, err := dataset.Generate(dcfg, o.Seed)
	if err != nil {
		return nil, err
	}
	cfg := hw.DefaultConfig()
	cfg.Width, cfg.Height, cfg.K = w, h, k
	cfg.BufferBytesPerChannel = 1024

	fs, err := hw.NewFuncSim(cfg)
	if err != nil {
		return nil, err
	}
	labels, err := fs.Run(sample.Image)
	if err != nil {
		return nil, err
	}
	analytic, err := hw.Simulate(cfg)
	if err != nil {
		return nil, err
	}

	analyticCycles := float64(w*h) +
		(analytic.ClusterComputeTime+analytic.CenterUpdateTime)*cfg.Tech.ClockHz
	t := &Table{
		ID:      "ext-funcsim",
		Title:   fmt.Sprintf("Functional vs analytic model (%dx%d, K=%d)", w, h, k),
		Columns: []string{"quantity", "functional (bit-accurate)", "analytic model"},
		Notes: []string{
			"the functional pipeline runs real pixels through the LUT conversion and integer cluster datapath",
		},
	}
	t.AddRow("compute cycles", fmt.Sprintf("%d", fs.Cycles), f0(analyticCycles))
	t.AddRow("distance calcs", fmt.Sprintf("%d", fs.DistanceCalcs), fmt.Sprintf("%d", int64(float64(w*h)*9*float64(cfg.Passes))))
	t.AddRow("DRAM traffic (B)", fmt.Sprintf("%d", fs.DRAMBytes), fmt.Sprintf("%d", analytic.TrafficBytes))
	t.AddRow("superpixels", fmt.Sprintf("%d", labels.NumRegions()), fmt.Sprintf("%d (requested)", k))
	return t, nil
}

func init() {
	register(Runner{
		ID:          "ext-convergence",
		Description: "Residual decay per subsampling scheme (the §3 convergence argument)",
		Run:         extConvergence,
	})
}

func extConvergence(o Options) (*Table, error) {
	dcfg := dataset.DefaultConfig()
	sample, err := dataset.Generate(dcfg, o.Seed)
	if err != nil {
		return nil, err
	}
	iters := 8
	if o.Quick {
		iters = 4
	}
	t := &Table{
		ID:      "ext-convergence",
		Title:   "Mean center movement per pass (S-SLIC(0.25), K=900)",
		Columns: []string{"scheme", "pass 1", "pass 4", "pass 8", "final", "passes"},
		Notes: []string{
			"§3: the subsets are traversed round-robin to guarantee all pixels are considered;",
			"spatially uniform schemes decay monotonically, contiguous blocks oscillate",
		},
	}
	for _, scheme := range []sslicpkg.Scheme{sslicpkg.Interleaved, sslicpkg.Rows, sslicpkg.Blocks, sslicpkg.Hashed} {
		p := sslicpkg.DefaultParams(fig2K, 0.25)
		p.FullIters = iters
		p.Scheme = scheme
		r, err := sslicpkg.Segment(sample.Image, p)
		if err != nil {
			return nil, err
		}
		hist := r.Stats.MoveHistory
		at := func(i int) string {
			if i < len(hist) {
				return f3(hist[i])
			}
			return "-"
		}
		t.AddRow(scheme.String(), at(0), at(3), at(7), f3(hist[len(hist)-1]),
			fmt.Sprintf("%d", len(hist)))
	}
	return t, nil
}

func init() {
	register(Runner{
		ID:          "ext-power",
		Description: "Per-unit power breakdown of the Table 4 design points",
		Run:         extPower,
	})
}

func extPower(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-power",
		Title:   "Utilization-weighted power breakdown (K=5000)",
		Columns: []string{"design", "cluster", "colorconv", "center", "scratchpads", "FSM", "DRAM if", "total"},
		Notes: []string{
			"§6.3: scratchpads and external memory assumed at full utilization; the cluster unit and the scratchpads dominate",
		},
	}
	mw := func(v float64) string { return fmt.Sprintf("%.1fmW", v*1e3) }
	for _, row := range table4Rows {
		cfg := hw.DefaultConfig()
		cfg.Width, cfg.Height = row.w, row.h
		cfg.BufferBytesPerChannel = row.buffer
		cfg.Tech.ClockHz = row.clockHz
		r, err := hw.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		b := r.PowerBreakdown
		t.AddRow(row.name, mw(b.Cluster), mw(b.ColorConv), mw(b.CenterUpdate),
			mw(b.Scratchpads), mw(b.FSM), mw(b.DRAMInterface), mw(b.Total()))
	}
	return t, nil
}

func init() {
	register(Runner{
		ID:          "ext-resolution-quality",
		Description: "Segmentation quality of one scene across the Table 4 resolutions",
		Run:         extResolutionQuality,
	})
}

func extResolutionQuality(o Options) (*Table, error) {
	// Render the master scene at HD-class proportions, then derive the
	// smaller workloads by bilinear downscale (labels by nearest) — the
	// same stream Table 4's accelerator rows would see.
	dcfg := dataset.DefaultConfig()
	dcfg.W, dcfg.H = 960, 540 // HD aspect at a tractable software size
	dcfg.Regions = 40
	sample, err := dataset.Generate(dcfg, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-resolution-quality",
		Title:   "Quality across resolutions (S-SLIC(0.5), K scaled with pixel count)",
		Columns: []string{"resolution", "K", "USE", "BoundaryRecall", "ASA"},
		Notes: []string{
			"downscaling pushes fine ground-truth structure below the superpixel grid, so USE grows as resolution drops:",
			"the low-power VGA mode of §6.3 trades boundary fidelity for energy — the quantified cost of graceful scale-down",
		},
	}
	iters := 10
	if o.Quick {
		iters = 4
	}
	for _, res := range []struct{ w, h int }{{960, 540}, {640, 360}, {320, 240}} {
		img, err := imgio.Resize(sample.Image, res.w, res.h)
		if err != nil {
			return nil, err
		}
		gt, err := imgio.ResizeLabels(sample.GT, res.w, res.h)
		if err != nil {
			return nil, err
		}
		// Constant superpixel density: S ≈ 13 px at every resolution.
		k := res.w * res.h / 170
		p := sslicpkg.DefaultParams(k, 0.5)
		p.FullIters = iters
		r, err := sslicpkg.Segment(img, p)
		if err != nil {
			return nil, err
		}
		use, err := metricspkg.UndersegmentationError(r.Labels, gt)
		if err != nil {
			return nil, err
		}
		br, err := metricspkg.BoundaryRecall(r.Labels, gt, 2)
		if err != nil {
			return nil, err
		}
		asa, err := metricspkg.AchievableSegmentationAccuracy(r.Labels, gt)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dx%d", res.w, res.h), fmt.Sprintf("%d", k),
			f4(use), f4(br), f4(asa))
	}
	return t, nil
}

func init() {
	register(Runner{
		ID:          "ext-subsample-hw",
		Description: "Accelerator cost vs subsampling ratio: the abstract's 1.8× bandwidth claim",
		Run:         extSubsampleHW,
	})
}

func extSubsampleHW(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	iters := 9
	if o.Quick {
		iters = 4
	}
	t := &Table{
		ID:      "ext-subsample-hw",
		Title:   "Hardware cost and software quality vs subsampling ratio (HD model, 9 passes / K=900 quality)",
		Columns: []string{"ratio", "traffic(MB)", "mem time(ms)", "latency(ms)", "energy(mJ)", "USE (sw, equal passes)"},
		Notes: []string{
			"equal pass count: lower ratios do less work per pass, so traffic and energy drop while",
			"the ordered-subsets update keeps quality close — the abstract's \"1.8× bandwidth\" effect",
		},
	}
	for _, ratio := range []float64{1, 0.5, 0.25} {
		cfg := hw.DefaultConfig()
		cfg.SubsampleRatio = ratio
		r, err := hw.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		// Software quality at the equivalent pass budget.
		var use float64
		for _, s := range samples {
			p := sslicpkg.DefaultParams(fig2K, ratio)
			p.FullIters = maxIntBench(1, iters/p.Subsets())
			res, err := sslicpkg.Segment(s.Image, p)
			if err != nil {
				return nil, err
			}
			u, err := metricspkg.UndersegmentationError(res.Labels, s.GT)
			if err != nil {
				return nil, err
			}
			use += u
		}
		use /= float64(len(samples))
		t.AddRow(
			fmt.Sprintf("%.2f", ratio),
			f1(float64(r.TrafficBytes)/1e6),
			fmt.Sprintf("%.2f", r.ClusterMemTime*1e3),
			fmt.Sprintf("%.2f", r.TotalTime*1e3),
			fmt.Sprintf("%.2f", r.EnergyPerFrame*1e3),
			f4(use),
		)
	}
	return t, nil
}

func maxIntBench(a, b int) int {
	if a > b {
		return a
	}
	return b
}
