package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func perfFixture(ns, allocs, calcs int64) *PerfReport {
	return &PerfReport{
		Schema: PerfSchema, GoVersion: "go0.0", GOOS: "linux", GOARCH: "amd64",
		Width: 240, Height: 160, K: 64, Quick: true,
		Results: []PerfResult{
			{Name: "ppa_r050", NsPerOp: ns, FramesPerSec: 1e9 / float64(ns),
				AllocsPerOp: allocs, BytesPerOp: 1 << 20, DistanceCalcsPerFrame: calcs, Iterations: 10},
		},
	}
}

func TestPerfRoundTrip(t *testing.T) {
	rep := perfFixture(1e6, 100, 5e5)
	rep.Stamp = "2026-08-05T00:00:00Z"
	var buf bytes.Buffer
	if err := WritePerf(&buf, rep); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPerf(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stamp != rep.Stamp || len(got.Results) != 1 || got.Results[0] != rep.Results[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadPerfRejectsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, []byte(`{"schema":"other/v9"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPerf(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestComparePerf(t *testing.T) {
	base := perfFixture(1_000_000, 100, 500_000)

	// Identical report: no regressions.
	_, reg, missing, err := ComparePerf(base, perfFixture(1_000_000, 100, 500_000), 0.10, false)
	if err != nil || len(reg) != 0 || len(missing) != 0 {
		t.Fatalf("identical diff: reg=%v missing=%v err=%v", reg, missing, err)
	}

	// 50% slower: ns_per_op regresses, deterministic metrics do not.
	_, reg, _, err = ComparePerf(base, perfFixture(1_500_000, 100, 500_000), 0.10, false)
	if err != nil || len(reg) != 1 || reg[0].Metric != "ns_per_op" {
		t.Fatalf("slow diff: %v err=%v", reg, err)
	}
	// ... and -skip-time ignores it.
	_, reg, _, err = ComparePerf(base, perfFixture(1_500_000, 100, 500_000), 0.10, true)
	if err != nil || len(reg) != 0 {
		t.Fatalf("skip-time diff: %v err=%v", reg, err)
	}

	// Alloc and distance-calc growth regress even with -skip-time.
	_, reg, _, err = ComparePerf(base, perfFixture(1_000_000, 150, 600_000), 0.10, true)
	if err != nil || len(reg) != 2 {
		t.Fatalf("deterministic regressions: %v err=%v", reg, err)
	}

	// An improvement is never a regression.
	_, reg, _, err = ComparePerf(base, perfFixture(500_000, 50, 400_000), 0.10, false)
	if err != nil || len(reg) != 0 {
		t.Fatalf("improvement flagged: %v err=%v", reg, err)
	}

	// A config present in base but absent now is reported missing.
	cur := perfFixture(1_000_000, 100, 500_000)
	cur.Results[0].Name = "renamed"
	_, _, missing, err = ComparePerf(base, cur, 0.10, false)
	if err != nil || len(missing) != 1 || missing[0] != "ppa_r050" {
		t.Fatalf("missing = %v err=%v", missing, err)
	}

	// Quick and full reports must refuse to diff.
	full := perfFixture(1_000_000, 100, 500_000)
	full.Quick = false
	if _, _, _, err := ComparePerf(base, full, 0.10, false); err == nil {
		t.Fatal("quick/full mismatch accepted")
	}
}

func withCost(r *PerfReport, cpuNs, allocBytes int64, estPJ float64) *PerfReport {
	r.Results[0].Cost = &PerfCost{CPUNs: cpuNs, AllocBytes: allocBytes, EstPJ: estPJ}
	return r
}

func TestComparePerfCostLedger(t *testing.T) {
	base := withCost(perfFixture(1_000_000, 100, 500_000), 900_000, 1<<20, 5e9)

	// Identical ledgers: clean.
	_, reg, _, err := ComparePerf(base,
		withCost(perfFixture(1_000_000, 100, 500_000), 900_000, 1<<20, 5e9), 0.10, false)
	if err != nil || len(reg) != 0 {
		t.Fatalf("identical cost diff: %v err=%v", reg, err)
	}

	// Energy growth beyond tolerance regresses even with -skip-time —
	// est_pj is host-independent, the whole point of the ledger gate.
	_, reg, _, err = ComparePerf(base,
		withCost(perfFixture(1_000_000, 100, 500_000), 900_000, 1<<20, 6e9), 0.10, true)
	if err != nil || len(reg) != 1 || reg[0].Metric != "cost.est_pj" {
		t.Fatalf("energy regression: %v err=%v", reg, err)
	}

	// CPU ledger growth is time-based: gated without -skip-time, ignored with.
	slow := withCost(perfFixture(1_000_000, 100, 500_000), 2_000_000, 1<<20, 5e9)
	_, reg, _, err = ComparePerf(base, slow, 0.10, false)
	if err != nil || len(reg) != 1 || reg[0].Metric != "cost.cpu_ns" {
		t.Fatalf("cpu regression: %v err=%v", reg, err)
	}
	_, reg, _, err = ComparePerf(base, slow, 0.10, true)
	if err != nil || len(reg) != 0 {
		t.Fatalf("cpu regression not skipped: %v err=%v", reg, err)
	}

	// A baseline without a ledger diffs only the original metrics.
	all, reg, _, err := ComparePerf(perfFixture(1_000_000, 100, 500_000),
		withCost(perfFixture(1_000_000, 100, 500_000), 900_000, 1<<20, 5e9), 0.10, false)
	if err != nil || len(reg) != 0 {
		t.Fatalf("legacy baseline diff: %v err=%v", reg, err)
	}
	for _, d := range all {
		if d.Metric == "cost.est_pj" || d.Metric == "cost.cpu_ns" || d.Metric == "cost.alloc_bytes" {
			t.Fatalf("cost metric compared against legacy baseline: %v", d)
		}
	}
}

func withQuality(r *PerfReport, empty int, cv float64) *PerfReport {
	r.Results[0].Quality = &PerfQuality{
		EmptyClusters: empty, ClusterSizeCV: cv,
		BoundaryPixels: 4000, FinalResidual: 0.02,
	}
	return r
}

func TestComparePerfQualityProxies(t *testing.T) {
	base := withQuality(perfFixture(1_000_000, 100, 500_000), 0, 0.25)

	// Identical proxies: clean.
	_, reg, _, err := ComparePerf(base,
		withQuality(perfFixture(1_000_000, 100, 500_000), 0, 0.25), 0.10, false)
	if err != nil || len(reg) != 0 {
		t.Fatalf("identical quality diff: %v err=%v", reg, err)
	}

	// A change that starves clusters regresses even with -skip-time —
	// the gate exists so a speedup cannot silently buy its time with
	// collapsed superpixels.
	_, reg, _, err = ComparePerf(base,
		withQuality(perfFixture(1_000_000, 100, 500_000), 2, 0.25), 0.10, true)
	if err != nil || len(reg) != 1 || reg[0].Metric != "quality.empty_clusters" {
		t.Fatalf("empty-cluster regression: %v err=%v", reg, err)
	}

	// Size-distribution skew beyond tolerance regresses too.
	_, reg, _, err = ComparePerf(base,
		withQuality(perfFixture(1_000_000, 100, 500_000), 0, 0.40), 0.10, true)
	if err != nil || len(reg) != 1 || reg[0].Metric != "quality.cluster_size_cv" {
		t.Fatalf("size-cv regression: %v err=%v", reg, err)
	}

	// A baseline from before the quality block diffs only the older
	// metrics.
	all, reg, _, err := ComparePerf(perfFixture(1_000_000, 100, 500_000),
		withQuality(perfFixture(1_000_000, 100, 500_000), 3, 0.9), 0.10, false)
	if err != nil || len(reg) != 0 {
		t.Fatalf("legacy baseline diff: %v err=%v", reg, err)
	}
	for _, d := range all {
		if d.Metric == "quality.empty_clusters" || d.Metric == "quality.cluster_size_cv" {
			t.Fatalf("quality metric compared against legacy baseline: %v", d)
		}
	}
}

func TestRunPerfQuickEmitsCost(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick benchmark matrix")
	}
	rep, err := RunPerf(true)
	if err != nil {
		t.Fatal(err)
	}
	var sawFresh, sawPooled bool
	var freshAllocs, pooledAllocs int64
	for _, r := range rep.Results {
		if r.Cost == nil {
			t.Fatalf("%s: no cost ledger", r.Name)
		}
		if r.Cost.CPUNs <= 0 || r.Cost.EstPJ <= 0 {
			t.Fatalf("%s: cost = %+v, want positive cpu_ns and est_pj", r.Name, r.Cost)
		}
		if r.Quality == nil || r.Quality.BoundaryPixels <= 0 {
			t.Fatalf("%s: quality = %+v, want proxies with boundary pixels", r.Name, r.Quality)
		}
		// The e2e pair carries measured buffer-pool bytes; the pure
		// segmentation configs still charge the label-map estimate.
		switch r.Name {
		case "e2e_fresh":
			sawFresh = true
			freshAllocs = r.AllocsPerOp
			if want := int64(7 * rep.Width * rep.Height); r.Cost.AllocBytes != want {
				t.Fatalf("%s: alloc_bytes = %d, want the unpooled %d", r.Name, r.Cost.AllocBytes, want)
			}
		case "e2e_pooled":
			sawPooled = true
			pooledAllocs = r.AllocsPerOp
			if r.Cost.AllocBytes != 0 {
				t.Fatalf("%s: alloc_bytes = %d, want 0 at steady state", r.Name, r.Cost.AllocBytes)
			}
		default:
			if want := int64(4 * rep.Width * rep.Height); r.Cost.AllocBytes != want {
				t.Fatalf("%s: alloc_bytes = %d, want %d", r.Name, r.Cost.AllocBytes, want)
			}
		}
	}
	if !sawFresh || !sawPooled {
		t.Fatal("report is missing the e2e_fresh/e2e_pooled pair")
	}
	// The zero-copy headline, in two parts. Pooling must beat the fresh
	// path outright; and the steady-state request core must stay under
	// half the pre-pool request cost (the committed quick baseline
	// before the buffer pool landed measured 109 allocs/op for the
	// segmentation alone, before decode and encode were even counted).
	if pooledAllocs >= freshAllocs {
		t.Fatalf("e2e_pooled allocs/op = %d, not below e2e_fresh %d", pooledAllocs, freshAllocs)
	}
	const prePoolBaseline = 109
	if pooledAllocs*2 > prePoolBaseline {
		t.Fatalf("e2e_pooled allocs/op = %d, not <= half the pre-pool baseline %d", pooledAllocs, prePoolBaseline)
	}
}
