package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func perfFixture(ns, allocs, calcs int64) *PerfReport {
	return &PerfReport{
		Schema: PerfSchema, GoVersion: "go0.0", GOOS: "linux", GOARCH: "amd64",
		Width: 240, Height: 160, K: 64, Quick: true,
		Results: []PerfResult{
			{Name: "ppa_r050", NsPerOp: ns, FramesPerSec: 1e9 / float64(ns),
				AllocsPerOp: allocs, BytesPerOp: 1 << 20, DistanceCalcsPerFrame: calcs, Iterations: 10},
		},
	}
}

func TestPerfRoundTrip(t *testing.T) {
	rep := perfFixture(1e6, 100, 5e5)
	rep.Stamp = "2026-08-05T00:00:00Z"
	var buf bytes.Buffer
	if err := WritePerf(&buf, rep); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPerf(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stamp != rep.Stamp || len(got.Results) != 1 || got.Results[0] != rep.Results[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadPerfRejectsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, []byte(`{"schema":"other/v9"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPerf(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestComparePerf(t *testing.T) {
	base := perfFixture(1_000_000, 100, 500_000)

	// Identical report: no regressions.
	_, reg, missing, err := ComparePerf(base, perfFixture(1_000_000, 100, 500_000), 0.10, false)
	if err != nil || len(reg) != 0 || len(missing) != 0 {
		t.Fatalf("identical diff: reg=%v missing=%v err=%v", reg, missing, err)
	}

	// 50% slower: ns_per_op regresses, deterministic metrics do not.
	_, reg, _, err = ComparePerf(base, perfFixture(1_500_000, 100, 500_000), 0.10, false)
	if err != nil || len(reg) != 1 || reg[0].Metric != "ns_per_op" {
		t.Fatalf("slow diff: %v err=%v", reg, err)
	}
	// ... and -skip-time ignores it.
	_, reg, _, err = ComparePerf(base, perfFixture(1_500_000, 100, 500_000), 0.10, true)
	if err != nil || len(reg) != 0 {
		t.Fatalf("skip-time diff: %v err=%v", reg, err)
	}

	// Alloc and distance-calc growth regress even with -skip-time.
	_, reg, _, err = ComparePerf(base, perfFixture(1_000_000, 150, 600_000), 0.10, true)
	if err != nil || len(reg) != 2 {
		t.Fatalf("deterministic regressions: %v err=%v", reg, err)
	}

	// An improvement is never a regression.
	_, reg, _, err = ComparePerf(base, perfFixture(500_000, 50, 400_000), 0.10, false)
	if err != nil || len(reg) != 0 {
		t.Fatalf("improvement flagged: %v err=%v", reg, err)
	}

	// A config present in base but absent now is reported missing.
	cur := perfFixture(1_000_000, 100, 500_000)
	cur.Results[0].Name = "renamed"
	_, _, missing, err = ComparePerf(base, cur, 0.10, false)
	if err != nil || len(missing) != 1 || missing[0] != "ppa_r050" {
		t.Fatalf("missing = %v err=%v", missing, err)
	}

	// Quick and full reports must refuse to diff.
	full := perfFixture(1_000_000, 100, 500_000)
	full.Quick = false
	if _, _, _, err := ComparePerf(base, full, 0.10, false); err == nil {
		t.Fatal("quick/full mismatch accepted")
	}
}
