package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-arch", "ablation-preemptive", "ablation-schemes", "ablation-slico",
		"bitwidth", "ext-bandwidth", "ext-convergence", "ext-dvfs", "ext-funcsim", "ext-ksweep", "ext-multicore", "ext-power", "ext-resolution-quality", "ext-subsample-hw", "ext-temporal",
		"fig2a", "fig2b", "fig6",
		"table1", "table2", "table3", "table4", "table5",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, r.ID, want[i])
		}
		if r.Description == "" || r.Run == nil {
			t.Errorf("experiment %q incomplete", r.ID)
		}
	}
	if _, ok := Lookup("table3"); !ok {
		t.Error("Lookup failed for table3")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup succeeded for unknown ID")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Notes:   []string{"hello"},
	}
	tbl.AddRow("1", "2")
	out := tbl.Render()
	for _, want := range []string{"== x: demo ==", "a", "bee", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("x,y", `q"z`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""z"`) {
		t.Fatalf("CSV escaping wrong: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("CSV header wrong: %q", csv)
	}
}

// cell parses a numeric cell, tolerating suffixes like "MB/iteration".
func cell(t *testing.T, s string) float64 {
	t.Helper()
	fields := strings.Fields(s)
	num := strings.TrimSuffix(strings.TrimSuffix(fields[0], "%"), "×")
	for _, suffix := range []string{"MB/iteration", "kB", "ms", "mW", "mJ", "W"} {
		num = strings.TrimSuffix(num, suffix)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", s, err)
	}
	return v
}

func TestTable2Experiment(t *testing.T) {
	tbl, err := run(t, "table2")
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: bandwidth CPA vs PPA; CPA must be ~3× PPA.
	cpaBW := cell(t, tbl.Rows[0][1])
	ppaBW := cell(t, tbl.Rows[0][2])
	if ratio := cpaBW / ppaBW; ratio < 2.8 || ratio > 3.5 {
		t.Errorf("bandwidth ratio %.2f", ratio)
	}
	// Row 2: §4.2 energy model must favor PPA.
	cpaE := cell(t, tbl.Rows[2][1])
	ppaE := cell(t, tbl.Rows[2][2])
	if ppaE >= cpaE {
		t.Errorf("PPA model energy %.1f not below CPA %.1f", ppaE, cpaE)
	}
}

func TestTable3Experiment(t *testing.T) {
	tbl, err := run(t, "table3")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tbl.Rows))
	}
	if tbl.Rows[4][0] != "9-9-6" {
		t.Fatalf("last row %q, want 9-9-6", tbl.Rows[4][0])
	}
	// 9-9-6 time must be ~1/9 of 1-1-1 time.
	t111 := cell(t, tbl.Rows[0][5])
	t996 := cell(t, tbl.Rows[4][5])
	if r := t111 / t996; r < 8.5 || r > 9.5 {
		t.Errorf("time ratio %.1f, want ~9", r)
	}
}

func TestFig6Experiment(t *testing.T) {
	tbl, err := run(t, "fig6")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(tbl.Rows))
	}
	// Real-time column flips from false to true at 4 kB and stays true.
	sawTrue := false
	for _, row := range tbl.Rows {
		rt := row[3] == "true"
		if sawTrue && !rt {
			t.Error("real-time regressed at larger buffer")
		}
		if rt {
			sawTrue = true
		}
	}
	if tbl.Rows[0][3] != "false" || tbl.Rows[2][3] != "true" {
		t.Error("real-time crossing not at 4 kB")
	}
}

func TestTable4Experiment(t *testing.T) {
	tbl, err := run(t, "table4")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tbl.Rows))
	}
	// Latency decreases, fps and fps/mm² increase down the table.
	for i := 1; i < 3; i++ {
		if cell(t, tbl.Rows[i][4]) >= cell(t, tbl.Rows[i-1][4]) {
			t.Error("latency not decreasing with resolution")
		}
		if cell(t, tbl.Rows[i][5]) <= cell(t, tbl.Rows[i-1][5]) {
			t.Error("fps not increasing with resolution")
		}
	}
	// All rows real-time.
	for _, row := range tbl.Rows {
		if cell(t, row[5]) < 30 {
			t.Errorf("%s below 30 fps", row[0])
		}
	}
}

func TestTable5Experiment(t *testing.T) {
	tbl, err := run(t, "table5")
	if err != nil {
		t.Fatal(err)
	}
	// Find the normalized-energy row and check the headline ratios.
	var k20, tk1, acc float64
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "Energy/frame") {
			k20 = cell(t, row[1])
			tk1 = cell(t, row[2])
			acc = cell(t, row[3])
		}
	}
	if k20 == 0 || tk1 == 0 || acc == 0 {
		t.Fatal("energy row missing")
	}
	if r := k20 / acc; r < 400 {
		t.Errorf("K20 efficiency ratio %.0f, paper says >500", r)
	}
	if r := tk1 / acc; r < 200 {
		t.Errorf("TK1 efficiency ratio %.0f, paper says >250", r)
	}
}

func run(t *testing.T, id string) (*Table, error) {
	t.Helper()
	r, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return r.Run(QuickOptions())
}

func TestQualityExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quality experiments are slow")
	}
	for _, id := range []string{"fig2a", "fig2b", "table1", "bitwidth"} {
		tbl, err := run(t, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := run(t, "fig2a")
	if err != nil {
		t.Fatal(err)
	}
	// Per variant, USE at the largest iteration count must not exceed USE
	// at the smallest (quality improves or holds with more work).
	first := map[string]float64{}
	last := map[string]float64{}
	for _, row := range tbl.Rows {
		v := row[0]
		use := cell(t, row[3])
		if _, ok := first[v]; !ok {
			first[v] = use
		}
		last[v] = use
	}
	for v := range first {
		if last[v] > first[v]*1.05 {
			t.Errorf("%s USE worsened with iterations: %.4f → %.4f", v, first[v], last[v])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := run(t, "table1")
	if err != nil {
		t.Fatal(err)
	}
	// Distance+Min dominates both variants; center update share grows
	// under subsampling (paper: 10.2% → 17.9%).
	slicDist := cell(t, tbl.Rows[0][2])
	ssDist := cell(t, tbl.Rows[1][2])
	slicUpd := cell(t, tbl.Rows[0][3])
	ssUpd := cell(t, tbl.Rows[1][3])
	if slicDist < 30 || ssDist < 30 {
		t.Errorf("distance+min not dominant: %.1f%% / %.1f%%", slicDist, ssDist)
	}
	if ssUpd <= slicUpd {
		t.Errorf("center update share did not grow: %.1f%% → %.1f%%", slicUpd, ssUpd)
	}
}

func TestBitWidthShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := QuickOptions()
	o.Quick = false // need the full width sweep for the shape
	o.CorpusSize = 2
	r, _ := Lookup("bitwidth")
	tbl, err := r.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is float64; find 8-bit and 4-bit rows.
	deltas := map[string]float64{}
	for _, row := range tbl.Rows[1:] {
		deltas[row[0]] = cell(t, row[2])
	}
	if d8, ok := deltas["8-bit"]; !ok || d8 > 0.02 {
		t.Errorf("8-bit ΔUSE = %.4f, want small (paper: 0.003)", d8)
	}
	if d4 := deltas["4-bit"]; d4 <= deltas["8-bit"] {
		t.Errorf("4-bit ΔUSE %.4f not worse than 8-bit %.4f", d4, deltas["8-bit"])
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b|c"},
		Notes:   []string{"note one"},
	}
	tbl.AddRow("1", "2|3")
	md := tbl.Markdown()
	for _, want := range []string{"### x — demo", "| a | b\\|c |", "| 1 | 2\\|3 |", "> note one"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
