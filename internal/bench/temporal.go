package bench

import (
	"fmt"
	"time"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
	"sslic/internal/metrics"
	"sslic/internal/slic"
	"sslic/internal/sslic"
	"sslic/internal/video"
)

func init() {
	register(Runner{
		ID:          "ext-temporal",
		Description: "Warm-started S-SLIC on a 30 fps stream: time, quality, temporal consistency",
		Run:         extTemporal,
	})
	register(Runner{
		ID:          "ext-ksweep",
		Description: "Quality vs superpixel count K (the classic evaluation curve)",
		Run:         extKSweep,
	})
}

func extTemporal(o Options) (*Table, error) {
	cfg := dataset.DefaultConfig()
	stream, err := video.NewStream(cfg, o.Seed, video.Pan, 3)
	if err != nil {
		return nil, err
	}
	frames := 6
	if o.Quick {
		frames = 3
	}
	t := &Table{
		ID:      "ext-temporal",
		Title:   "Frame stream: cold vs warm-started S-SLIC(0.5) (K=900, pan 3 px/frame)",
		Columns: []string{"frame", "mode", "time(ms)", "USE", "temporal consistency"},
		Notes: []string{
			"warm frames reuse the previous centers and run 3 iterations instead of 10 — the",
			"temporal-coherence mode a real 30 fps pipeline uses on the accelerator's host side",
		},
	}
	var prevCenters []slic.Center
	var prevLabels *imgio.LabelMap
	for f := 0; f < frames; f++ {
		img, gt, err := stream.Frame(f)
		if err != nil {
			return nil, err
		}
		p := sslic.DefaultParams(fig2K, 0.5)
		mode := "cold"
		if prevCenters != nil {
			p.InitialCenters = prevCenters
			p.FullIters = 3
			mode = "warm"
		}
		t0 := time.Now()
		r, err := sslic.Segment(img, p)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		use, err := metrics.UndersegmentationError(r.Labels, gt)
		if err != nil {
			return nil, err
		}
		tcCell := "-"
		if prevLabels != nil {
			dxc, dyc := stream.Displacement(f)
			dxp, dyp := stream.Displacement(f - 1)
			tc, err := video.TemporalConsistency(prevLabels, r.Labels, dxc-dxp, dyc-dyp)
			if err != nil {
				return nil, err
			}
			tcCell = f3(tc)
		}
		t.AddRow(fmt.Sprintf("%d", f), mode,
			f1(float64(elapsed.Microseconds())/1000), f4(use), tcCell)
		prevCenters = r.Centers
		prevLabels = r.Labels
	}
	return t, nil
}

func extKSweep(o Options) (*Table, error) {
	samples, err := corpus(o)
	if err != nil {
		return nil, err
	}
	ks := []int{300, 600, 900, 1800, 3600}
	if o.Quick {
		ks = []int{300, 900, 3600}
	}
	iters := 10
	if o.Quick {
		iters = 4
	}
	t := &Table{
		ID:      "ext-ksweep",
		Title:   "Quality vs superpixel count (S-SLIC(0.5))",
		Columns: []string{"K", "USE", "BoundaryRecall", "BoundaryPrecision", "ContourDensity"},
		Notes: []string{
			"more superpixels buy recall and lower USE at the cost of contour density and precision —",
			"the trade the paper's K=900 (Fig 2) and K=5000 (accelerator) operating points sit on",
		},
	}
	for _, k := range ks {
		var use, br, bp, cd float64
		for _, s := range samples {
			p := sslic.DefaultParams(k, 0.5)
			p.FullIters = iters
			r, err := sslic.Segment(s.Image, p)
			if err != nil {
				return nil, err
			}
			u, err := metrics.UndersegmentationError(r.Labels, s.GT)
			if err != nil {
				return nil, err
			}
			b, err := metrics.BoundaryRecall(r.Labels, s.GT, 2)
			if err != nil {
				return nil, err
			}
			pr, err := metrics.BoundaryPrecision(r.Labels, s.GT, 2)
			if err != nil {
				return nil, err
			}
			use += u
			br += b
			bp += pr
			cd += metrics.ContourDensity(r.Labels)
		}
		n := float64(len(samples))
		t.AddRow(fmt.Sprintf("%d", k), f4(use/n), f4(br/n), f4(bp/n), f4(cd/n))
	}
	return t, nil
}
