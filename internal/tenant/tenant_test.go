package tenant

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"sslic/internal/telemetry"
	"sslic/internal/telemetry/testutil"
)

func TestParseSpec(t *testing.T) {
	cfgs, err := ParseSpec("acme:class=premium,rate=200,burst=50;hobby:class=free,rate=5,inflight=4,queue=8;plain:")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("got %d tenants, want 3", len(cfgs))
	}
	acme := cfgs[0]
	if acme.Key != "acme" || acme.Class != Premium || acme.Rate != 200 || acme.Burst != 50 {
		t.Errorf("acme parsed wrong: %+v", acme)
	}
	hobby := cfgs[1]
	if hobby.Class != Free || hobby.MaxInFlight != 4 || hobby.MaxQueue != 8 {
		t.Errorf("hobby parsed wrong: %+v", hobby)
	}
	if cfgs[2].Class != Standard {
		t.Errorf("bare entry should default to standard, got %v", cfgs[2].Class)
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"",                            // empty
		"a",                           // no colon
		":class=free",                 // empty key
		"a:class=gold",                // unknown class
		"a:speed=9",                   // unknown field
		"a:rate=0",                    // non-positive rate
		"a:rate=-3",                   // negative rate
		"a:rate=nan",                  // NaN
		"a:rate=+inf",                 // infinite
		"a:rate=2e12",                 // over MaxRate
		"a:weight=0",                  // below range
		"a:weight=999",                // above range
		"a:burst=0",                   // below range
		"a:inflight=5000",             // above range
		"a:queue=-1",                  // below range
		"a:;a:",                       // duplicate key
		"bad/key:class=free",          // '/' not in key alphabet
		strings.Repeat("k", 65) + ":", // key too long
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", spec)
		}
	}
}

func TestParseSpecTenantCap(t *testing.T) {
	var entries []string
	for i := 0; i <= MaxTenants; i++ {
		entries = append(entries, fmt.Sprintf("t%d:", i))
	}
	if _, err := ParseSpec(strings.Join(entries, ";")); err == nil {
		t.Fatalf("spec with %d tenants should exceed the %d cap", MaxTenants+1, MaxTenants)
	}
}

// Defaults must always be finite: an absent field can never mean an
// unlimited quota.
func TestDefaultsAreFinite(t *testing.T) {
	cfg := Config{Key: "x"}.withDefaults()
	if cfg.MaxInFlight <= 0 || cfg.MaxInFlight > MaxInFlightBound {
		t.Errorf("default inflight %d not in (0, %d]", cfg.MaxInFlight, MaxInFlightBound)
	}
	if cfg.MaxQueue <= 0 || cfg.MaxQueue > MaxQueueBound {
		t.Errorf("default queue %d not in (0, %d]", cfg.MaxQueue, MaxQueueBound)
	}
	if cfg.Weight < 1 || cfg.Weight > MaxWeight {
		t.Errorf("default weight %d not in [1, %d]", cfg.Weight, MaxWeight)
	}
}

func TestClassLevelMapping(t *testing.T) {
	cases := []struct {
		class  Class
		global int
		want   int
	}{
		{Free, 0, 1}, {Free, 3, 4}, {Free, 4, 4},
		{Standard, 0, 0}, {Standard, 4, 4},
		{Premium, 0, 0}, {Premium, 3, 2}, {Premium, 4, 3}, // never shed by the ladder
	}
	for _, c := range cases {
		if got := c.class.EffectiveLevel(c.global); got != c.want {
			t.Errorf("%v.EffectiveLevel(%d) = %d, want %d", c.class, c.global, got, c.want)
		}
	}
}

func TestBucketRefill(t *testing.T) {
	b := newBucket(10, 2) // 10/sec, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := b.allow(now)
	if ok {
		t.Fatal("third token granted from a burst-2 bucket")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms] at 10 tokens/sec", retry)
	}
	if ok, _ := b.allow(now.Add(retry)); !ok {
		t.Fatal("token refused after the hinted refill time")
	}
}

func newTestRegistry(t *testing.T, spec string, capacity int) *Registry {
	t.Helper()
	cfgs, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return NewRegistry(cfgs, capacity, telemetry.NewRegistry(), nil)
}

func TestResolve(t *testing.T) {
	r := newTestRegistry(t, "acme:class=premium", 4)
	if got := r.Resolve("acme").ID(); got != "acme" {
		t.Errorf("Resolve(acme) = %s", got)
	}
	if got := r.Resolve("").ID(); got != AnonID {
		t.Errorf("Resolve(\"\") = %s, want %s", got, AnonID)
	}
	if got := r.Resolve("never-configured").ID(); got != OtherID {
		t.Errorf("Resolve(unknown) = %s, want %s", got, OtherID)
	}
	if got := r.Resolve(strings.Repeat("x", 4096)).ID(); got != OtherID {
		t.Errorf("Resolve(huge key) = %s, want %s", got, OtherID)
	}
	// Unknown keys collapse onto ONE tenant: no state growth per key.
	if r.Resolve("k1") != r.Resolve("k2") {
		t.Error("distinct unknown keys resolved to distinct tenants")
	}
}

// TestDRRWeightedShare drives two tenants through a saturated gate and
// checks the admission ratio tracks their weights.
func TestDRRWeightedShare(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r := newTestRegistry(t, "heavy:weight=4,queue=500;light:weight=1,queue=500", 1)
	q := r.Queue()
	heavy, light := r.Resolve("heavy"), r.Resolve("light")

	// Occupy the only slot so everything below parks.
	if _, err := q.Admit(context.Background(), light); err != nil {
		t.Fatal(err)
	}

	const n = 100
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	admit := func(tn *Tenant) {
		defer wg.Done()
		if _, err := q.Admit(context.Background(), tn); err != nil {
			t.Errorf("admit %s: %v", tn.ID(), err)
			return
		}
		mu.Lock()
		order = append(order, tn.ID())
		mu.Unlock()
		q.Release(tn)
	}
	wg.Add(2 * n)
	for i := 0; i < n; i++ {
		go admit(heavy)
		go admit(light)
	}
	// Let every goroutine park before starting the drain, so the DRR
	// schedule (not arrival order) decides service order.
	deadline := time.Now().Add(5 * time.Second)
	for {
		q.mu.Lock()
		parked := q.waiters
		q.mu.Unlock()
		if parked == 2*n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters parked", parked, 2*n)
		}
		time.Sleep(time.Millisecond)
	}
	q.Release(light) // open the floodgate; grants chain via Release
	wg.Wait()

	// In the first 50 grants, heavy (weight 4) should get ~4× light's
	// share. Allow slack for the serve-order boundary.
	hw := 0
	for _, id := range order[:50] {
		if id == "heavy" {
			hw++
		}
	}
	if hw < 35 || hw > 45 {
		t.Errorf("heavy got %d of first 50 grants, want ~40 (weight 4:1)", hw)
	}
}

// TestFastPathNoContention: with free slots and nobody parked,
// admission must be immediate and FIFO-free.
func TestFastPathNoContention(t *testing.T) {
	r := newTestRegistry(t, "a:", 8)
	a := r.Resolve("a")
	for i := 0; i < 8; i++ {
		wait, err := r.Admit(context.Background(), a)
		if err != nil || wait != 0 {
			t.Fatalf("fast-path admit %d: wait=%v err=%v", i, wait, err)
		}
	}
	for i := 0; i < 8; i++ {
		r.Release(a)
	}
}

// TestAdmitFastPathAllocs: the uncontended admit/release cycle must
// not allocate — it sits on the request hot path under the repo's
// steady-state alloc gate.
func TestAdmitFastPathAllocs(t *testing.T) {
	r := newTestRegistry(t, "a:rate=1000000,burst=1000000", 4)
	a := r.Resolve("a")
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.Admit(ctx, a); err != nil {
			t.Fatal(err)
		}
		r.Release(a)
	})
	if allocs > 0 {
		t.Errorf("fast-path admit/release allocates %.1f/op, want 0", allocs)
	}
}

// TestContendedAdmitSteadyStateAllocs: after warm-up, parked
// admissions reuse freelisted waiters — the contended path settles to
// zero allocations per cycle too.
func TestContendedAdmitSteadyStateAllocs(t *testing.T) {
	r := newTestRegistry(t, "a:", 1)
	a := r.Resolve("a")
	ctx := context.Background()
	if _, err := r.Admit(ctx, a); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	cycle := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Admit(ctx, a); err == nil {
				r.Release(a)
			}
		}()
		time.Sleep(2 * time.Millisecond) // parks behind the held slot
		r.Release(a)
		wg.Wait()
		if _, err := r.Admit(ctx, a); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the freelist
	allocs := testing.AllocsPerRun(20, cycle)
	r.Release(a)
	// The spawned goroutine itself may cost a stack allocation; the
	// queue machinery (waiter, channel, list nodes) must not add to it.
	if allocs > 4 {
		t.Errorf("contended admit cycle allocates %.1f/op, want <=4 (goroutine overhead only)", allocs)
	}
}

func TestRateLimitRefusal(t *testing.T) {
	r := newTestRegistry(t, "a:rate=1,burst=1", 8)
	a := r.Resolve("a")
	if _, err := r.Admit(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	r.Release(a)
	_, err := r.Admit(context.Background(), a)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("got %v, want ErrRateLimited", err)
	}
	var rl *RateLimitedError
	if !errors.As(err, &rl) || rl.RetryAfter <= 0 {
		t.Fatalf("rate refusal carries no positive retry hint: %v", err)
	}
}

func TestInFlightQuota(t *testing.T) {
	r := newTestRegistry(t, "a:inflight=2", 8)
	a := r.Resolve("a")
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.Admit(ctx, a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Admit(ctx, a); !errors.Is(err, ErrInFlightLimit) {
		t.Fatalf("got %v, want ErrInFlightLimit", err)
	}
	r.Release(a)
	if _, err := r.Admit(ctx, a); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r.Release(a)
	r.Release(a)
}

func TestQueueCapRefusal(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r := newTestRegistry(t, "a:queue=2", 1)
	a := r.Resolve("a")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := r.Admit(ctx, a); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Admit(ctx, a) // parks until cancel
		}()
	}
	waitParked(t, r.Queue(), 2)
	if _, err := r.Admit(ctx, a); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	cancel()
	wg.Wait()
	r.Release(a)
}

func waitParked(t *testing.T, q *FairQueue, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		q.mu.Lock()
		parked := q.waiters
		q.mu.Unlock()
		if parked >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters parked", parked, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelWhileParked: canceled waiters leave no goroutines, no
// slots, and no queue residue; subsequent admissions proceed.
func TestCancelWhileParked(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r := newTestRegistry(t, "a:;b:", 2)
	a, b := r.Resolve("a"), r.Resolve("b")
	bg := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.Admit(bg, a); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(bg)
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := r.Admit(ctx, b)
			errs <- err
		}()
	}
	waitParked(t, r.Queue(), 3)
	cancel()
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("parked admit returned %v, want context.Canceled", err)
		}
	}
	// The canceled waiters must not have consumed slots or queue cap.
	r.Release(a)
	r.Release(a)
	if wait, err := r.Admit(bg, b); err != nil || wait != 0 {
		t.Fatalf("admit after cancels: wait=%v err=%v", wait, err)
	}
	r.Release(b)

	q := r.Queue()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.used != 0 || q.waiters != 0 || b.qlen != 0 || b.qhead != nil || len(q.active) != 0 {
		t.Errorf("queue residue after cancel/drain: used=%d waiters=%d qlen=%d active=%d",
			q.used, q.waiters, b.qlen, len(q.active))
	}
}

// TestCancelGrantRace hammers the cancel/grant race: a context that
// expires at the same moment the slot frees. Whatever side wins, slots
// must be conserved.
func TestCancelGrantRace(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r := newTestRegistry(t, "a:queue=64", 1)
	a := r.Resolve("a")
	bg := context.Background()
	for i := 0; i < 200; i++ {
		if _, err := r.Admit(bg, a); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(bg)
		done := make(chan error, 1)
		go func() {
			_, err := r.Admit(ctx, a)
			done <- err
		}()
		waitParked(t, r.Queue(), 1)
		go cancel()
		r.Release(a) // races the cancel
		if err := <-done; err == nil {
			r.Release(a) // waiter won: it owns a slot
		}
		cancel()
	}
	q := r.Queue()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.used != 0 || q.waiters != 0 {
		t.Fatalf("slot leak after race hammer: used=%d waiters=%d", q.used, q.waiters)
	}
}

// TestDeficitResetOnIdle: a tenant that goes idle must not bank DRR
// credit for later — its deficit resets when its segment empties.
func TestDeficitResetOnIdle(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r := newTestRegistry(t, "a:weight=256", 1)
	a := r.Resolve("a")
	bg := context.Background()
	if _, err := r.Admit(bg, a); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.Admit(bg, a)
		close(done)
	}()
	waitParked(t, r.Queue(), 1)
	r.Release(a)
	<-done
	r.Release(a)
	q := r.Queue()
	q.mu.Lock()
	defer q.mu.Unlock()
	if a.active || a.deficit != 0 {
		t.Errorf("idle tenant kept scheduler state: active=%v deficit=%v", a.active, a.deficit)
	}
}

// FuzzParseSpec: hostile spec input must neither panic nor produce a
// config with unlimited or out-of-range quotas.
func FuzzParseSpec(f *testing.F) {
	f.Add("acme:class=premium,rate=200,burst=50;hobby:class=free,rate=5")
	f.Add("a:weight=1;b:weight=256")
	f.Add("_anon:class=standard;_other:rate=0.5")
	f.Add(";;;:::,,,===")
	f.Add("a:rate=1e308")
	f.Add("a:rate=-0;b:burst=+99")
	f.Add(strings.Repeat("x:;", 80))
	f.Fuzz(func(t *testing.T, spec string) {
		cfgs, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if len(cfgs) == 0 || len(cfgs) > MaxTenants {
			t.Fatalf("accepted spec with %d tenants", len(cfgs))
		}
		seen := map[string]bool{}
		for _, raw := range cfgs {
			if !ValidKey(raw.Key) {
				t.Fatalf("accepted invalid key %q", raw.Key)
			}
			if seen[raw.Key] {
				t.Fatalf("accepted duplicate key %q", raw.Key)
			}
			seen[raw.Key] = true
			cfg := raw.withDefaults()
			if cfg.Weight < 1 || cfg.Weight > MaxWeight {
				t.Fatalf("weight %d out of bounds for %q", cfg.Weight, cfg.Key)
			}
			if math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) || cfg.Rate < 0 || cfg.Rate > MaxRate {
				t.Fatalf("rate %v out of bounds for %q", cfg.Rate, cfg.Key)
			}
			if cfg.Rate > 0 && (cfg.Burst < 1 || cfg.Burst > MaxBurst) {
				t.Fatalf("burst %d out of bounds for %q", cfg.Burst, cfg.Key)
			}
			if cfg.MaxInFlight < 1 || cfg.MaxInFlight > MaxInFlightBound {
				t.Fatalf("inflight %d out of bounds for %q", cfg.MaxInFlight, cfg.Key)
			}
			if cfg.MaxQueue < 1 || cfg.MaxQueue > MaxQueueBound {
				t.Fatalf("queue %d out of bounds for %q", cfg.MaxQueue, cfg.Key)
			}
		}
	})
}
