// Package tenant is the service's multi-tenant fairness layer: API-key
// scoped identity, per-tenant rate limits and in-flight quotas, and a
// weighted-fair (deficit-round-robin) admission queue in front of the
// segmentation pool.
//
// The motivating failure is starvation: the pool's admission queue is
// a shared FIFO, so one hot client can keep it permanently full and
// every other caller sees nothing but 429s. A real-time superpixel
// engine is pitched as shared infrastructure — gSLICr's 250 Hz exists
// so many downstream vision consumers can ride one segmenter — which
// makes fairness under contention a correctness property, not a
// nicety. The layer enforces it at three rings:
//
//   - Rate: each tenant owns a token bucket (rate= tokens/sec, burst=
//     bucket depth). A tenant past its refill rate is refused before
//     any work is done, with a Retry-After hint derived from the
//     bucket's actual refill time.
//   - Concurrency: each tenant has an in-flight quota (inflight=) and
//     a bounded private wait queue (queue=); both refuse fast instead
//     of queueing unboundedly, preserving the service's bounded-memory
//     guarantee per tenant.
//   - Order: admitted work is dispatched by deficit round robin across
//     the tenants with waiters, weighted by class (or an explicit
//     weight=), so a storm from one tenant costs the others at most
//     one round of service, never the whole queue.
//
// Identity is deliberately simple: the tenant name in the -tenants
// spec IS the API key (X-API-Key header, or ?tenant= for clients that
// cannot set headers). Unknown keys all collapse onto one shared
// "_other" tenant and keyless requests onto "_anon", so hostile key
// minting can neither grow state nor mint metric series.
//
// Classes map onto the degrade ladder (internal/degrade): under
// pressure free-tier requests are offered a more degraded level (and
// shed a level earlier), while premium requests are offered a less
// degraded level and are never shed by the ladder at all — the
// serving translation of partitioning the paper's fixed per-frame
// cycle/energy budget across consumers by priority.
package tenant

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Class is a tenant's priority tier. It decides the default DRR
// weight and how the global degradation level is offered to the
// tenant's requests.
type Class int

const (
	// Standard is the default tier: the global level applies as-is.
	Standard Class = iota
	// Free degrades first: requests are offered one level past the
	// global one, so free traffic sheds while paid traffic still runs.
	Free
	// Premium sheds last: requests are offered one level below the
	// global one and are capped below the shed level — the ladder never
	// refuses premium work (drain and breakers still can).
	Premium
)

func (c Class) String() string {
	switch c {
	case Free:
		return "free"
	case Standard:
		return "standard"
	case Premium:
		return "premium"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass reads a class name from the spec grammar.
func ParseClass(s string) (Class, error) {
	switch s {
	case "free":
		return Free, nil
	case "standard":
		return Standard, nil
	case "premium":
		return Premium, nil
	default:
		return Standard, fmt.Errorf("tenant: unknown class %q (want free, standard or premium)", s)
	}
}

// shedLevel mirrors degrade.Shed without importing the package (tenant
// is below degrade in the dependency order; the mapping is asserted
// against the real constants in the server tests).
const shedLevel = 4

// Offset is the class's level bias: how many levels past (positive) or
// before (negative) the global degradation level this class is offered.
func (c Class) Offset() int {
	switch c {
	case Free:
		return 1
	case Premium:
		return -1
	default:
		return 0
	}
}

// Ceiling is the most degraded level the class may ever be offered.
// Free and Standard may be shed (level 4); Premium is capped at level
// 3, so the ladder itself never refuses premium work.
func (c Class) Ceiling() int {
	if c == Premium {
		return shedLevel - 1
	}
	return shedLevel
}

// DefaultWeight is the class's DRR quantum when the spec does not set
// weight= explicitly: premium tenants drain 4× standard and 16× free
// per fairness round.
func (c Class) DefaultWeight() int {
	switch c {
	case Free:
		return 1
	case Premium:
		return 16
	default:
		return 4
	}
}

// EffectiveLevel maps the global degradation level onto the level this
// class is offered: global + Offset, clamped to [0, Ceiling]. A free
// request sheds at global level 3 already; a premium request at global
// level 4 is still served (at level 3).
func (c Class) EffectiveLevel(global int) int {
	l := global + c.Offset()
	if l < 0 {
		l = 0
	}
	if ceil := c.Ceiling(); l > ceil {
		l = ceil
	}
	return l
}

// Reserved tenant IDs: AnonID identifies keyless requests, OtherID the
// shared identity every unknown API key collapses onto. Both are
// configurable in the spec (as template entries) but cannot be used as
// ordinary tenant names beyond that.
const (
	AnonID  = "_anon"
	OtherID = "_other"
)

// Bounds on the spec grammar. Every parsed quota is finite and within
// these ranges — the fuzz target's invariant: hostile input can make
// Parse fail, never make it admit an unlimited or negative quota.
const (
	// MaxTenants bounds the configured tenant count: tenants mint
	// telemetry series and fair-queue state, so the spec itself must
	// not be a cardinality amplifier.
	MaxTenants = 64
	// MaxKeyLen bounds tenant names / API keys.
	MaxKeyLen = 64
	// MaxWeight bounds the DRR quantum.
	MaxWeight = 256
	// MaxRate bounds the token refill rate (tokens/sec).
	MaxRate = 1e9
	// MaxBurst bounds the token bucket depth.
	MaxBurst = 1 << 20
	// MaxInFlightBound and MaxQueueBound cap the per-tenant concurrency
	// and wait-queue quotas.
	MaxInFlightBound = 4096
	MaxQueueBound    = 4096
)

// Config is one tenant's parsed configuration.
type Config struct {
	// Key is the tenant's identity: the X-API-Key value that selects
	// it (and its metric label). The reserved keys AnonID and OtherID
	// configure keyless and unknown-key traffic respectively.
	Key string
	// Class is the priority tier; it decides degrade-level mapping and
	// the default Weight.
	Class Class
	// Weight is the DRR quantum in requests per fairness round; 0
	// selects the class default.
	Weight int
	// Rate is the token-bucket refill in requests/sec; 0 disables rate
	// limiting for this tenant.
	Rate float64
	// Burst is the bucket depth; 0 selects max(1, ceil(Rate)).
	Burst int
	// MaxInFlight caps the tenant's concurrently admitted requests;
	// 0 selects DefaultInFlight.
	MaxInFlight int
	// MaxQueue caps the tenant's fair-queue waiters; 0 selects
	// DefaultQueue.
	MaxQueue int
}

// Default per-tenant quotas when the spec leaves them unset. Both are
// deliberately finite: an absent field must never mean "unlimited".
const (
	DefaultInFlight = 64
	DefaultQueue    = 128
)

// withDefaults fills the derived fields.
func (c Config) withDefaults() Config {
	if c.Weight <= 0 {
		c.Weight = c.Class.DefaultWeight()
	}
	if c.Burst <= 0 && c.Rate > 0 {
		c.Burst = int(math.Ceil(c.Rate))
		if c.Burst < 1 {
			c.Burst = 1
		}
		if c.Burst > MaxBurst {
			c.Burst = MaxBurst
		}
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultInFlight
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultQueue
	}
	return c
}

// ValidKey reports whether id is acceptable as a tenant key: short and
// over the stream-ID alphabet, so tenant-scoped stream keys
// ("tenant/stream") stay unambiguous ('/' is in neither half).
func ValidKey(id string) bool {
	if id == "" || len(id) > MaxKeyLen {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-', c == ':':
		default:
			return false
		}
	}
	return true
}

// ParseSpec reads a tenant spec of the form
//
//	key:field=value[,field=value...][;key:...]
//
// where key is the tenant's API key (or the reserved _anon/_other
// identities) and each field is one of
//
//	class=free|standard|premium   priority tier (default standard)
//	weight=N                      DRR quantum, [1, 256] (default per class)
//	rate=F                        token refill, requests/sec (default unlimited)
//	burst=N                       bucket depth, [1, 1048576] (default ceil(rate))
//	inflight=N                    concurrent-request quota, [1, 4096] (default 64)
//	queue=N                       fair-queue waiter cap, [1, 4096] (default 128)
//
// Example:
//
//	acme:class=premium,rate=200,burst=50;hobby:class=free,rate=5,inflight=4
//
// Duplicate keys, unknown fields, out-of-range values and non-finite
// rates are errors — a malformed spec must fail at startup, never
// silently become an unlimited quota.
func ParseSpec(spec string) ([]Config, error) {
	seen := map[string]bool{}
	var out []Config
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, fields, ok := strings.Cut(entry, ":")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("tenant: entry %q: want key:field=value[,...]", entry)
		}
		if !ValidKey(key) {
			return nil, fmt.Errorf("tenant: invalid key %q (want 1-%d chars of [A-Za-z0-9._:-])", key, MaxKeyLen)
		}
		if seen[key] {
			return nil, fmt.Errorf("tenant: duplicate key %q", key)
		}
		seen[key] = true
		cfg := Config{Key: key}
		for _, f := range strings.Split(fields, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			name, val, _ := strings.Cut(f, "=")
			var err error
			switch name {
			case "class":
				cfg.Class, err = ParseClass(val)
			case "weight":
				cfg.Weight, err = boundedInt(val, 1, MaxWeight)
			case "rate":
				cfg.Rate, err = strconv.ParseFloat(val, 64)
				if err == nil && (math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) ||
					cfg.Rate <= 0 || cfg.Rate > MaxRate) {
					err = fmt.Errorf("out of (0, %g]", float64(MaxRate))
				}
			case "burst":
				cfg.Burst, err = boundedInt(val, 1, MaxBurst)
			case "inflight":
				cfg.MaxInFlight, err = boundedInt(val, 1, MaxInFlightBound)
			case "queue":
				cfg.MaxQueue, err = boundedInt(val, 1, MaxQueueBound)
			default:
				err = fmt.Errorf("unknown field")
			}
			if err != nil {
				return nil, fmt.Errorf("tenant: key %s: field %q: %v", key, f, err)
			}
		}
		out = append(out, cfg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tenant: empty spec")
	}
	if len(out) > MaxTenants {
		return nil, fmt.Errorf("tenant: %d tenants exceeds the %d cap", len(out), MaxTenants)
	}
	return out, nil
}

func boundedInt(val string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("invalid integer %q", val)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("%d out of [%d, %d]", n, lo, hi)
	}
	return n, nil
}

// bucket is a token-bucket rate limiter. Tokens refill continuously at
// rate/sec up to burst; each admission spends one. It is small and
// lock-based — one bucket per tenant, touched once per request.
type bucket struct {
	rate  float64 // tokens per second
	burst float64

	// Guarded by the owning FairQueue's mutex (the bucket is only
	// touched inside Admit, which already holds it).
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// allow spends one token when available. When refused, retry is how
// long until one token will have refilled — the honest Retry-After
// hint.
func (b *bucket) allow(now time.Time) (ok bool, retry time.Duration) {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
