package tenant

import (
	"context"
	"sort"
	"time"

	"sslic/internal/telemetry"
)

// Tenant is one resolved identity: its parsed quota configuration plus
// the live admission state the FairQueue schedules over. All mutable
// fields are guarded by the owning FairQueue's mutex.
type Tenant struct {
	cfg Config

	// Admission state (guarded by FairQueue.mu).
	bucket   *bucket
	inflight int
	qlen     int
	qhead    *waiter
	qtail    *waiter
	deficit  float64
	active   bool

	// Telemetry (atomic; safe without the lock).
	admitted         *telemetry.Counter
	rejectedRate     *telemetry.Counter
	rejectedQueue    *telemetry.Counter
	rejectedInFlight *telemetry.Counter
	canceled         *telemetry.Counter
	queueWait        *telemetry.Histogram
}

// ID returns the tenant's key (API key / metric label).
func (t *Tenant) ID() string { return t.cfg.Key }

// Class returns the tenant's priority tier.
func (t *Tenant) Class() Class { return t.cfg.Class }

// Config returns the tenant's effective (defaults-applied) config.
func (t *Tenant) Config() Config { return t.cfg }

// EffectiveLevel maps the global degradation level onto this tenant's
// class: free is offered global+1 (sheds first), premium global-1
// capped below shed (the ladder never refuses it).
func (t *Tenant) EffectiveLevel(global int) int {
	return t.cfg.Class.EffectiveLevel(global)
}

// Registry resolves API keys to tenants and owns the shared fair
// queue. The tenant set is fixed at construction: unknown keys all
// collapse onto the reserved "_other" tenant and keyless requests onto
// "_anon", so the set of tenants (and thus metric series and queue
// segments) is bounded by the -tenants spec, never by traffic.
type Registry struct {
	byKey map[string]*Tenant
	anon  *Tenant
	other *Tenant
	all   []*Tenant // spec order; reserved identities appended if implicit
	queue *FairQueue
}

// NewRegistry builds the tenant set from parsed configs and a fair
// queue with the given slot capacity. The reserved identities are
// always present: a spec entry named "_anon" or "_other" configures
// them, otherwise they default to the free class (unauthenticated and
// unknown-key traffic is lowest-priority by default). treg may be nil
// to discard telemetry; now may be nil for time.Now.
func NewRegistry(cfgs []Config, capacity int, treg *telemetry.Registry, now func() time.Time) *Registry {
	if treg == nil {
		treg = telemetry.NewRegistry()
	}
	r := &Registry{
		byKey: make(map[string]*Tenant, len(cfgs)+2),
		queue: NewFairQueue(capacity, now),
	}
	for _, cfg := range cfgs {
		if _, dup := r.byKey[cfg.Key]; dup {
			continue // ParseSpec rejects duplicates; be lenient on hand-built slices
		}
		t := newTenant(cfg, treg)
		r.byKey[cfg.Key] = t
		r.all = append(r.all, t)
	}
	if r.byKey[AnonID] == nil {
		t := newTenant(Config{Key: AnonID, Class: Free}, treg)
		r.byKey[AnonID] = t
		r.all = append(r.all, t)
	}
	if r.byKey[OtherID] == nil {
		t := newTenant(Config{Key: OtherID, Class: Free}, treg)
		r.byKey[OtherID] = t
		r.all = append(r.all, t)
	}
	r.anon = r.byKey[AnonID]
	r.other = r.byKey[OtherID]
	return r
}

func newTenant(cfg Config, treg *telemetry.Registry) *Tenant {
	cfg = cfg.withDefaults()
	t := &Tenant{cfg: cfg}
	if cfg.Rate > 0 {
		t.bucket = newBucket(cfg.Rate, cfg.Burst)
	}
	lbl := telemetry.Label{Name: "tenant", Value: cfg.Key}
	t.admitted = treg.Counter("sslic_tenant_admitted_total",
		"Requests admitted through the fair queue, by tenant.", lbl)
	t.rejectedRate = treg.Counter("sslic_tenant_rejected_total",
		"Requests refused at admission, by tenant and reason.",
		lbl, telemetry.Label{Name: "reason", Value: "rate"})
	t.rejectedQueue = treg.Counter("sslic_tenant_rejected_total",
		"Requests refused at admission, by tenant and reason.",
		lbl, telemetry.Label{Name: "reason", Value: "queue"})
	t.rejectedInFlight = treg.Counter("sslic_tenant_rejected_total",
		"Requests refused at admission, by tenant and reason.",
		lbl, telemetry.Label{Name: "reason", Value: "inflight"})
	t.canceled = treg.Counter("sslic_tenant_canceled_total",
		"Admissions abandoned while parked (context canceled), by tenant.", lbl)
	t.queueWait = treg.Histogram("sslic_tenant_queue_wait_seconds",
		"Fair-queue park time before admission, by tenant.", nil, lbl)
	return t
}

// Resolve maps an API key to its tenant: "" is the anonymous tenant,
// configured keys their own, and everything else — including hostile
// or oversized keys — the shared "_other" tenant. Resolution never
// mints state, so key-guessing cannot grow memory or metric series.
func (r *Registry) Resolve(key string) *Tenant {
	if key == "" {
		return r.anon
	}
	if len(key) <= MaxKeyLen {
		if t, ok := r.byKey[key]; ok {
			return t
		}
	}
	return r.other
}

// Queue returns the shared fair queue.
func (r *Registry) Queue() *FairQueue { return r.queue }

// Admit and Release delegate to the shared fair queue.
func (r *Registry) Admit(ctx context.Context, t *Tenant) (time.Duration, error) {
	return r.queue.Admit(ctx, t)
}

// Release returns t's slot.
func (r *Registry) Release(t *Tenant) { r.queue.Release(t) }

// Tenants returns the configured tenants in spec order (reserved
// identities last when implicit).
func (r *Registry) Tenants() []*Tenant { return r.all }

// Len returns the number of distinct tenants (including _anon/_other).
func (r *Registry) Len() int { return len(r.all) }

// Snapshot is one tenant's point-in-time state for /debug/tenants.
type Snapshot struct {
	Key         string  `json:"key"`
	Class       string  `json:"class"`
	Weight      int     `json:"weight"`
	Rate        float64 `json:"rate,omitempty"`
	Burst       int     `json:"burst,omitempty"`
	MaxInFlight int     `json:"max_inflight"`
	MaxQueue    int     `json:"max_queue"`

	InFlight int `json:"inflight"`
	Queued   int `json:"queued"`

	Admitted         float64 `json:"admitted"`
	RejectedRate     float64 `json:"rejected_rate"`
	RejectedQueue    float64 `json:"rejected_queue"`
	RejectedInFlight float64 `json:"rejected_inflight"`
	Canceled         float64 `json:"canceled"`

	QueueWaitP50 float64 `json:"queue_wait_p50_seconds"`
	QueueWaitP99 float64 `json:"queue_wait_p99_seconds"`
}

// SnapshotAll captures every tenant, sorted by key.
func (r *Registry) SnapshotAll() []Snapshot {
	out := make([]Snapshot, 0, len(r.all))
	r.queue.mu.Lock()
	type live struct{ inflight, queued int }
	states := make([]live, len(r.all))
	for i, t := range r.all {
		states[i] = live{t.inflight, t.qlen}
	}
	r.queue.mu.Unlock()
	for i, t := range r.all {
		hs := t.queueWait.Snapshot()
		out = append(out, Snapshot{
			Key:              t.cfg.Key,
			Class:            t.cfg.Class.String(),
			Weight:           t.cfg.Weight,
			Rate:             t.cfg.Rate,
			Burst:            t.cfg.Burst,
			MaxInFlight:      t.cfg.MaxInFlight,
			MaxQueue:         t.cfg.MaxQueue,
			InFlight:         states[i].inflight,
			Queued:           states[i].queued,
			Admitted:         t.admitted.Value(),
			RejectedRate:     t.rejectedRate.Value(),
			RejectedQueue:    t.rejectedQueue.Value(),
			RejectedInFlight: t.rejectedInFlight.Value(),
			Canceled:         t.canceled.Value(),
			QueueWaitP50:     hs.Quantile(0.5),
			QueueWaitP99:     hs.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
