package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sslic/internal/faults"
)

// Admission errors. The server maps rate/quota refusals to 429 with a
// Retry-After hint and fault-injected failures to 503.
var (
	// ErrRateLimited: the tenant's token bucket is empty. The concrete
	// error is a *RateLimitedError carrying the refill hint.
	ErrRateLimited = errors.New("tenant: rate limited")
	// ErrQueueFull: the tenant's private fair-queue segment is at its
	// queue= cap.
	ErrQueueFull = errors.New("tenant: admission queue full")
	// ErrInFlightLimit: the tenant is at its inflight= concurrency cap.
	ErrInFlightLimit = errors.New("tenant: in-flight quota exceeded")
)

// RateLimitedError is the concrete ErrRateLimited, carrying how long
// until the tenant's bucket refills one token — the honest Retry-After.
type RateLimitedError struct {
	RetryAfter time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("tenant: rate limited (retry in %s)", e.RetryAfter.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrRateLimited) match.
func (e *RateLimitedError) Is(target error) bool { return target == ErrRateLimited }

// waiter is one parked admission. Waiters are freelisted so the
// contended path does not allocate per request; the channel is buffered
// and reused across parks.
type waiter struct {
	t     *Tenant
	ch    chan struct{}
	next  *waiter
	state int8
}

const (
	wWaiting int8 = iota
	wGranted
	wCanceled
)

// FairQueue is the weighted-fair admission gate in front of the
// segmentation pool: a fixed budget of concurrency slots handed out by
// deficit round robin across the tenants that have waiters.
//
// Invariants:
//   - used ≤ cap; a request holds exactly one slot from grant (or
//     fast-path admit) until Release.
//   - waiters exist only while all slots are taken (the fast path
//     admits immediately whenever nobody is parked), so FCFS applies
//     under light load and DRR only under contention.
//   - no background goroutines: grants happen inline on Release (and
//     on Admit, for the cancel-undo race), so the leak checker has
//     nothing to wait for.
//
// DRR: the scheduler visits parked tenants in a round-robin ring; a
// visit either tops up the tenant's deficit by its weight (and moves
// on) or spends one deficit to grant one request. A tenant therefore
// drains up to `weight` requests per rotation — tenant A flooding its
// own segment cannot take more than its weighted share of slots from
// tenant B.
type FairQueue struct {
	mu      sync.Mutex
	cap     int
	used    int
	waiters int // parked, still-live waiters across all tenants

	active []*Tenant // tenants with (possibly) non-empty segments, ring order
	rr     int       // next ring index to visit

	free *waiter // waiter freelist

	now func() time.Time
}

// NewFairQueue returns a gate with the given slot budget (the server
// passes the pool's worker count plus queue capacity, so the gate
// saturates exactly when the pool would have).
func NewFairQueue(capacity int, now func() time.Time) *FairQueue {
	if capacity < 1 {
		capacity = 1
	}
	if now == nil {
		now = time.Now
	}
	return &FairQueue{cap: capacity, now: now}
}

// Capacity returns the slot budget.
func (q *FairQueue) Capacity() int { return q.cap }

// Admit reserves one concurrency slot for tenant t, blocking in t's
// fair-queue segment when the gate is saturated. On success the caller
// owns one slot and must call Release(t) exactly once. wait is how
// long the request was parked (0 on the fast path).
//
// Refusals are immediate, never queued: an empty token bucket, a full
// per-tenant queue, or an exhausted in-flight quota returns the
// matching error without touching the ring. Context cancellation while
// parked returns ctx.Err() and releases nothing.
func (q *FairQueue) Admit(ctx context.Context, t *Tenant) (wait time.Duration, err error) {
	if err := faults.Fire(faults.PointTenantAdmit); err != nil {
		return 0, err
	}
	q.mu.Lock()
	start := q.now()
	if t.bucket != nil {
		if ok, retry := t.bucket.allow(start); !ok {
			t.rejectedRate.Inc()
			q.mu.Unlock()
			return 0, &RateLimitedError{RetryAfter: retry}
		}
	}
	if t.inflight >= t.cfg.MaxInFlight {
		t.rejectedInFlight.Inc()
		q.mu.Unlock()
		return 0, ErrInFlightLimit
	}
	if q.waiters == 0 && q.used < q.cap {
		q.used++
		t.inflight++
		t.admitted.Inc()
		q.mu.Unlock()
		return 0, nil
	}
	if t.qlen >= t.cfg.MaxQueue {
		t.rejectedQueue.Inc()
		q.mu.Unlock()
		return 0, ErrQueueFull
	}
	w := q.getWaiterLocked(t)
	t.pushLocked(w)
	q.waiters++
	q.activateLocked(t)
	q.grantLocked() // a slot may be free (e.g. freed by a cancel undo)
	q.mu.Unlock()

	select {
	case <-w.ch:
		wait = q.now().Sub(start)
		t.queueWait.Observe(wait.Seconds())
		t.admitted.Inc()
		q.mu.Lock()
		q.putWaiterLocked(w)
		q.mu.Unlock()
		return wait, nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.state == wGranted {
			// Grant raced the cancel: the slot is ours, hand it on.
			q.used--
			t.inflight--
			q.grantLocked()
		} else {
			t.unlinkLocked(w)
			q.waiters--
			if t.qlen == 0 {
				q.deactivateLocked(t)
			}
		}
		t.canceled.Inc()
		q.putWaiterLocked(w)
		q.mu.Unlock()
		return 0, ctx.Err()
	}
}

// Release returns tenant t's slot to the gate and hands it to the next
// waiter in DRR order, inline.
func (q *FairQueue) Release(t *Tenant) {
	q.mu.Lock()
	q.used--
	t.inflight--
	q.grantLocked()
	q.mu.Unlock()
}

// grantLocked hands free slots to parked waiters in DRR order.
func (q *FairQueue) grantLocked() {
	for q.used < q.cap && q.waiters > 0 {
		if q.rr >= len(q.active) {
			q.rr = 0
		}
		t := q.active[q.rr]
		if t.qlen == 0 {
			q.deactivateLocked(t)
			continue
		}
		if t.deficit < 1 {
			t.deficit += float64(t.cfg.Weight)
			q.rr++
			continue
		}
		t.deficit--
		w := t.popLocked()
		q.waiters--
		q.used++
		t.inflight++
		w.state = wGranted
		w.ch <- struct{}{}
		if t.qlen == 0 {
			q.deactivateLocked(t)
		}
	}
}

// activateLocked adds t to the scheduling ring (idempotent).
func (q *FairQueue) activateLocked(t *Tenant) {
	if t.active {
		return
	}
	t.active = true
	t.deficit = 0
	q.active = append(q.active, t)
}

// deactivateLocked removes t from the ring and resets its deficit, so
// an idle tenant cannot bank credit across quiet periods.
func (q *FairQueue) deactivateLocked(t *Tenant) {
	for i, a := range q.active {
		if a == t {
			copy(q.active[i:], q.active[i+1:])
			q.active[len(q.active)-1] = nil
			q.active = q.active[:len(q.active)-1]
			if q.rr > i {
				q.rr--
			}
			break
		}
	}
	t.active = false
	t.deficit = 0
}

func (q *FairQueue) getWaiterLocked(t *Tenant) *waiter {
	w := q.free
	if w != nil {
		q.free = w.next
		w.next = nil
	} else {
		w = &waiter{ch: make(chan struct{}, 1)}
	}
	w.t = t
	w.state = wWaiting
	return w
}

func (q *FairQueue) putWaiterLocked(w *waiter) {
	select { // drain a grant that lost the cancel race
	case <-w.ch:
	default:
	}
	w.t = nil
	w.state = wWaiting
	w.next = q.free
	q.free = w
}

// Per-tenant FIFO segment (intrusive singly-linked list, guarded by
// the queue mutex).

func (t *Tenant) pushLocked(w *waiter) {
	if t.qtail != nil {
		t.qtail.next = w
	} else {
		t.qhead = w
	}
	t.qtail = w
	t.qlen++
}

func (t *Tenant) popLocked() *waiter {
	w := t.qhead
	t.qhead = w.next
	if t.qhead == nil {
		t.qtail = nil
	}
	w.next = nil
	t.qlen--
	return w
}

// unlinkLocked removes w from t's segment (cancel path; O(qlen), cold).
func (t *Tenant) unlinkLocked(w *waiter) {
	var prev *waiter
	for n := t.qhead; n != nil; n = n.next {
		if n == w {
			if prev == nil {
				t.qhead = n.next
			} else {
				prev.next = n.next
			}
			if t.qtail == n {
				t.qtail = prev
			}
			n.next = nil
			t.qlen--
			return
		}
		prev = n
	}
}
