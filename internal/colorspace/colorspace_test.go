package colorspace

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSRGBGammaKnownPoints(t *testing.T) {
	// Below the knee the curve is linear.
	if got := SRGBToLinear(0.04045); !near(got, 0.04045/12.92, 1e-12) {
		t.Fatalf("knee value = %g", got)
	}
	if got := SRGBToLinear(0); got != 0 {
		t.Fatalf("SRGBToLinear(0) = %g", got)
	}
	// White maps to 1 (within float rounding of the standard constants).
	if got := SRGBToLinear(1); !near(got, 1, 1e-9) {
		t.Fatalf("SRGBToLinear(1) = %g", got)
	}
}

func TestSRGBGammaRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		x := math.Abs(math.Mod(v, 1))
		return near(LinearToSRGB(SRGBToLinear(x)), x, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSRGBGammaMonotone(t *testing.T) {
	prev := -1.0
	for i := 0; i <= 1000; i++ {
		x := float64(i) / 1000
		y := SRGBToLinear(x)
		if y <= prev {
			t.Fatalf("not strictly increasing at x=%g", x)
		}
		prev = y
	}
}

func TestXYZMatrixRoundTrip(t *testing.T) {
	f := func(r, g, b float64) bool {
		r = math.Abs(math.Mod(r, 1))
		g = math.Abs(math.Mod(g, 1))
		b = math.Abs(math.Mod(b, 1))
		x, y, z := RGBToXYZ(r, g, b)
		r2, g2, b2 := XYZToRGB(x, y, z)
		return near(r, r2, 1e-5) && near(g, g2, 1e-5) && near(b, b2, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWhitePointMapsToWhite(t *testing.T) {
	// Linear RGB (1,1,1) must map to the D65 white, whose Lab is (100,0,0).
	x, y, z := RGBToXYZ(1, 1, 1)
	if !near(x, WhiteX, 1e-4) || !near(y, WhiteY, 1e-4) || !near(z, WhiteZ, 1e-4) {
		t.Fatalf("white XYZ = %g,%g,%g", x, y, z)
	}
	l, a, b := XYZToLab(x, y, z)
	if !near(l, 100, 0.01) || !near(a, 0, 0.1) || !near(b, 0, 0.1) {
		t.Fatalf("white Lab = %g,%g,%g", l, a, b)
	}
}

func TestBlackMapsToLZero(t *testing.T) {
	l, a, b := SRGB8ToLab(0, 0, 0)
	if !near(l, 0, 0.2) || !near(a, 0, 0.2) || !near(b, 0, 0.2) {
		t.Fatalf("black Lab = %g,%g,%g", l, a, b)
	}
}

func TestKnownLabValues(t *testing.T) {
	// Reference values computed with the standard sRGB D65 pipeline.
	cases := []struct {
		r, g, b  uint8
		l, a, bb float64
	}{
		{255, 255, 255, 100, 0, 0},
		{255, 0, 0, 53.24, 80.09, 67.20},
		{0, 255, 0, 87.74, -86.18, 83.18},
		{0, 0, 255, 32.30, 79.19, -107.86},
		{128, 128, 128, 53.59, 0, 0},
	}
	for _, c := range cases {
		l, a, b := SRGB8ToLab(c.r, c.g, c.b)
		if !near(l, c.l, 0.3) || !near(a, c.a, 0.5) || !near(b, c.bb, 0.5) {
			t.Errorf("SRGB8ToLab(%d,%d,%d) = %.2f,%.2f,%.2f; want %.2f,%.2f,%.2f",
				c.r, c.g, c.b, l, a, b, c.l, c.a, c.bb)
		}
	}
}

func TestLabRoundTrip(t *testing.T) {
	// Every representable sRGB color must survive RGB→Lab→RGB within
	// quantization error. Sample the cube on a coarse grid.
	for r := 0; r < 256; r += 17 {
		for g := 0; g < 256; g += 17 {
			for b := 0; b < 256; b += 17 {
				l, a, bb := SRGB8ToLab(uint8(r), uint8(g), uint8(b))
				r2, g2, b2 := LabToSRGB8(l, a, bb)
				if absInt(int(r2)-r) > 1 || absInt(int(g2)-g) > 1 || absInt(int(b2)-b) > 1 {
					t.Fatalf("round trip (%d,%d,%d) -> (%d,%d,%d)", r, g, b, r2, g2, b2)
				}
			}
		}
	}
}

func TestLabFContinuityAtKnee(t *testing.T) {
	// Equation 4's two branches must agree at the knee t = 0.008856.
	const knee = 0.008856
	lo := labF(knee * 0.999999)
	hi := labF(knee * 1.000001)
	if !near(lo, hi, 1e-4) {
		t.Fatalf("labF discontinuous at knee: %g vs %g", lo, hi)
	}
}

func TestLabFInverse(t *testing.T) {
	f := func(v float64) bool {
		tt := math.Abs(math.Mod(v, 1))
		return near(labFInv(labF(tt)), tt, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLab8QuantizationRoundTrip(t *testing.T) {
	// Quantization to bytes and back must stay within one step.
	for _, c := range [][3]float64{{0, 0, 0}, {100, 0, 0}, {50, -30, 40}, {75.5, 100, -100}} {
		l8, a8, b8 := Lab8(c[0], c[1], c[2])
		l, a, b := Lab8ToFloat(l8, a8, b8)
		if !near(l, c[0], 100.0/255+1e-9) || !near(a, c[1], 1.01) || !near(b, c[2], 1.01) {
			t.Errorf("Lab8 round trip %v -> %g,%g,%g", c, l, a, b)
		}
	}
}

func TestConvertImageToLab(t *testing.T) {
	r := []uint8{255, 0}
	g := []uint8{255, 0}
	b := []uint8{255, 0}
	l, _, _ := ConvertImageToLab(r, g, b)
	if !near(l[0], 100, 0.1) || !near(l[1], 0, 0.2) {
		t.Fatalf("L = %v", l)
	}
}

func TestLabLIsMonotoneInGray(t *testing.T) {
	prev := -1.0
	for v := 0; v < 256; v++ {
		l, _, _ := SRGB8ToLab(uint8(v), uint8(v), uint8(v))
		if l < prev {
			t.Fatalf("L not monotone at gray %d", v)
		}
		prev = l
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
