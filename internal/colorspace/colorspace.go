// Package colorspace implements the reference floating-point color
// conversions from the paper's §2 (Equations 1-4): sRGB gamma expansion,
// the linear RGB→XYZ matrix, and the XYZ→CIELAB transform with a D65
// reference white. It also provides the inverse transforms, used by the
// synthetic dataset generator and by tests that validate the accelerator's
// LUT-based fixed-point datapath against this reference.
package colorspace

import "math"

// D65 reference white in XYZ, normalized so that Y = 1, as used by the
// standard sRGB→CIELAB conversion (and by the original SLIC code).
const (
	WhiteX = 0.950456
	WhiteY = 1.0
	WhiteZ = 1.088754
)

// rgbToXYZ is the sRGB (ITU-R BT.709 primaries, D65 white) linear RGB→XYZ
// matrix M from Equation 2.
var rgbToXYZ = [3][3]float64{
	{0.412453, 0.357580, 0.180423},
	{0.212671, 0.715160, 0.072169},
	{0.019334, 0.119193, 0.950227},
}

// xyzToRGB is the inverse of rgbToXYZ.
var xyzToRGB = [3][3]float64{
	{3.240479, -1.537150, -0.498535},
	{-0.969256, 1.875992, 0.041556},
	{0.055648, -0.204043, 1.057311},
}

// SRGBToLinear applies the sRGB gamma expansion of Equation 1 to a
// component in [0, 1].
func SRGBToLinear(x float64) float64 {
	if x <= 0.04045 {
		return x / 12.92
	}
	return math.Pow((x+0.055)/1.055, 2.4)
}

// LinearToSRGB is the inverse of SRGBToLinear.
func LinearToSRGB(x float64) float64 {
	if x <= 0.0031308 {
		return x * 12.92
	}
	return 1.055*math.Pow(x, 1/2.4) - 0.055
}

// labF is the CIELAB forward nonlinearity of Equation 4: a cube root above
// the 0.008856 knee and a linear segment below it.
func labF(t float64) float64 {
	if t > 0.008856 {
		return math.Cbrt(t)
	}
	return (903.3*t + 16) / 116
}

// labFInv inverts labF.
func labFInv(f float64) float64 {
	t3 := f * f * f
	if t3 > 0.008856 {
		return t3
	}
	return (116*f - 16) / 903.3
}

// RGBToXYZ converts linear RGB components to XYZ via Equation 2.
func RGBToXYZ(r, g, b float64) (x, y, z float64) {
	x = rgbToXYZ[0][0]*r + rgbToXYZ[0][1]*g + rgbToXYZ[0][2]*b
	y = rgbToXYZ[1][0]*r + rgbToXYZ[1][1]*g + rgbToXYZ[1][2]*b
	z = rgbToXYZ[2][0]*r + rgbToXYZ[2][1]*g + rgbToXYZ[2][2]*b
	return x, y, z
}

// XYZToRGB converts XYZ back to linear RGB.
func XYZToRGB(x, y, z float64) (r, g, b float64) {
	r = xyzToRGB[0][0]*x + xyzToRGB[0][1]*y + xyzToRGB[0][2]*z
	g = xyzToRGB[1][0]*x + xyzToRGB[1][1]*y + xyzToRGB[1][2]*z
	b = xyzToRGB[2][0]*x + xyzToRGB[2][1]*y + xyzToRGB[2][2]*z
	return r, g, b
}

// XYZToLab converts XYZ to CIELAB (Equation 3), normalizing against the
// D65 reference white.
func XYZToLab(x, y, z float64) (l, a, b float64) {
	fx := labF(x / WhiteX)
	fy := labF(y / WhiteY)
	fz := labF(z / WhiteZ)
	l = 116*fy - 16
	a = 500 * (fx - fy)
	b = 200 * (fy - fz)
	return l, a, b
}

// LabToXYZ inverts XYZToLab.
func LabToXYZ(l, a, b float64) (x, y, z float64) {
	fy := (l + 16) / 116
	fx := fy + a/500
	fz := fy - b/200
	return labFInv(fx) * WhiteX, labFInv(fy) * WhiteY, labFInv(fz) * WhiteZ
}

// gamma8 caches SRGBToLinear for all 256 8-bit codes. Because the input
// is quantized, the table is exact — it changes speed, not results.
var gamma8 = func() [256]float64 {
	var t [256]float64
	for i := range t {
		t[i] = SRGBToLinear(float64(i) / 255)
	}
	return t
}()

// SRGB8ToLab converts 8-bit sRGB values to CIELAB through the full
// Equation 1-4 chain. L is in [0, 100]; a and b roughly in [-128, 127].
func SRGB8ToLab(r, g, b uint8) (l, aa, bb float64) {
	x, y, z := RGBToXYZ(gamma8[r], gamma8[g], gamma8[b])
	return XYZToLab(x, y, z)
}

// LabToSRGB8 converts CIELAB back to 8-bit sRGB, clamping out-of-gamut
// values.
func LabToSRGB8(l, a, b float64) (r, g, bb uint8) {
	x, y, z := LabToXYZ(l, a, b)
	rl, gl, bl := XYZToRGB(x, y, z)
	return clamp8(LinearToSRGB(rl)), clamp8(LinearToSRGB(gl)), clamp8(LinearToSRGB(bl))
}

// Lab8 quantizes a CIELAB triple to the byte encoding used by the
// accelerator scratchpads: L in [0,100] → [0,255]; a, b offset by 128 and
// clamped. The inverse is Lab8ToFloat.
func Lab8(l, a, b float64) (uint8, uint8, uint8) {
	return clamp8(l / 100), clamp8((a + 128) / 255), clamp8((b + 128) / 255)
}

// Lab8ToFloat undoes the Lab8 quantization (up to rounding error).
func Lab8ToFloat(l8, a8, b8 uint8) (l, a, b float64) {
	return float64(l8) * 100 / 255, float64(a8) - 128, float64(b8) - 128
}

// ConvertImageToLab converts a whole packed-slice triple of 8-bit sRGB
// channels into float64 Lab planes. The slices must have equal length.
func ConvertImageToLab(r, g, b []uint8) (l, aa, bb []float64) {
	n := len(r)
	l = make([]float64, n)
	aa = make([]float64, n)
	bb = make([]float64, n)
	ConvertImageToLabInto(r, g, b, l, aa, bb)
	return l, aa, bb
}

// ConvertImageToLabInto is ConvertImageToLab writing into caller-owned
// planes, each at least len(r) long, so steady-state pipelines can
// recycle the ~24 bytes/pixel of Lab planes instead of reallocating
// them every frame. Every written element is fully overwritten; prior
// contents never leak into the result.
func ConvertImageToLabInto(r, g, b []uint8, l, aa, bb []float64) {
	n := len(r)
	l, aa, bb = l[:n], aa[:n], bb[:n]
	for i := 0; i < n; i++ {
		l[i], aa[i], bb[i] = SRGB8ToLab(r[i], g[i], b[i])
	}
}

func clamp8(v float64) uint8 {
	v = math.Round(v * 255)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
