package energy

import (
	"strings"
	"testing"

	"sslic/internal/telemetry"
)

func TestAccumulator(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := NewAccumulator(reg)

	// Exactly representable values, so the scraped text is exact too.
	a.Add("cluster", 1)    // 1 J = 1e12 pJ
	a.Add("dram", 0.5)     // 5e11 pJ
	a.Add("cluster", 0.25) // accumulate on the same component
	a.Add("dram", 0)       // zero charge is a no-op
	a.Add("dram", -1)      // negative charge is a no-op, not a panic

	if got := a.TotalPicojoules(); got != 1.75e12 {
		t.Fatalf("total = %g pJ, want 1.75e12", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`sslic_energy_picojoules_total 1750000000000`,
		`sslic_energy_component_picojoules_total{component="cluster"} 1250000000000`,
		`sslic_energy_component_picojoules_total{component="dram"} 500000000000`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAccumulatorNilSafe(t *testing.T) {
	var a *Accumulator
	a.Add("cluster", 1)
	if a.TotalPicojoules() != 0 {
		t.Fatalf("nil accumulator total nonzero")
	}
}
