package energy

import (
	"sync"

	"sslic/internal/telemetry"
)

// picojoulesPerJoule converts the SI joules every model function returns
// into the picojoule unit the paper's per-frame tables use.
const picojoulesPerJoule = 1e12

// Accumulator sums estimated energy into telemetry counters, itemized by
// component — the live version of the paper's per-frame energy columns.
// Counters are monotonic: each Add charges more consumed energy, so a
// scraper can rate() them into watts.
type Accumulator struct {
	total *telemetry.Counter

	mu  sync.Mutex
	reg *telemetry.Registry
	by  map[string]*telemetry.Counter
}

// NewAccumulator registers the energy counters on the registry:
// sslic_energy_picojoules_total, plus one labeled series per component
// as components are first charged.
func NewAccumulator(reg *telemetry.Registry) *Accumulator {
	return &Accumulator{
		total: reg.Counter("sslic_energy_picojoules_total",
			"Estimated accelerator energy consumed, all components."),
		reg: reg,
		by:  map[string]*telemetry.Counter{},
	}
}

// Add charges joules of consumed energy to a component (e.g. "cluster",
// "dram"). Component names become label values on
// sslic_energy_component_picojoules_total.
func (a *Accumulator) Add(component string, joules float64) {
	if a == nil || joules <= 0 {
		return
	}
	a.component(component).Add(joules * picojoulesPerJoule)
	a.total.Add(joules * picojoulesPerJoule)
}

// TotalPicojoules returns the accumulated total.
func (a *Accumulator) TotalPicojoules() float64 {
	if a == nil {
		return 0
	}
	return a.total.Value()
}

func (a *Accumulator) component(name string) *telemetry.Counter {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.by[name]
	if c == nil {
		c = a.reg.Counter("sslic_energy_component_picojoules_total",
			"Estimated energy consumed per accelerator component.",
			telemetry.Label{Name: "component", Value: name})
		a.by[name] = c
	}
	return c
}
