package energy

import (
	"math"
	"testing"
)

func TestDefault16nmSane(t *testing.T) {
	tech := Default16nm()
	if tech.ClockHz != 1.6e9 {
		t.Errorf("clock %g, want 1.6 GHz (paper §5)", tech.ClockHz)
	}
	if tech.DRAMEnergyPerByte != 2500*tech.Add8Energy {
		t.Error("DRAM energy must be 2500× the 8-bit add (paper §4.2)")
	}
	if tech.EnergyPerOp <= 0 || tech.LeakagePerMM2 <= 0 {
		t.Error("non-positive constants")
	}
}

func TestGPUNormalization(t *testing.T) {
	// §7: 1.25 for voltage² × 1.75 for capacitance ≈ 2.2.
	if math.Abs(GPUNormalization28to16()-2.1875) > 1e-9 {
		t.Fatalf("normalization %g, want 2.1875", GPUNormalization28to16())
	}
}

func TestDynamicWattsLinear(t *testing.T) {
	tech := Default16nm()
	p1 := tech.DynamicWatts(10)
	p2 := tech.DynamicWatts(20)
	if math.Abs(p2-2*p1) > 1e-12 {
		t.Fatal("dynamic power must be linear in ops/cycle")
	}
}

func TestLeakageWatts(t *testing.T) {
	tech := Default16nm()
	if got := tech.LeakageWatts(1); math.Abs(got-tech.LeakagePerMM2) > 1e-15 {
		t.Fatalf("leakage(1mm²) = %g", got)
	}
	if tech.LeakageWatts(0) != 0 {
		t.Fatal("leakage(0) != 0")
	}
}

func TestSRAMScaling(t *testing.T) {
	tech := Default16nm()
	if tech.SRAMWatts(2048) != 2*tech.SRAMWatts(1024) {
		t.Fatal("SRAM power must scale linearly")
	}
	if tech.SRAMAreaMM2(2048) != 2*tech.SRAMAreaMM2(1024) {
		t.Fatal("SRAM area must scale linearly")
	}
}

func TestDRAMEnergyDominance(t *testing.T) {
	// §4.2's architectural argument: per-byte DRAM energy dwarfs per-op
	// compute energy, so total energy is dominated by traffic — the
	// reason PPA (3× less bandwidth, 2.25× more ops) wins.
	tech := Default16nm()
	cpaOps, cpaBytes := 58e6, 318e6
	ppaOps, ppaBytes := 130e6, 100e6
	cpaEnergy := cpaOps*tech.EnergyPerOp + tech.DRAMEnergy(int64(cpaBytes))
	ppaEnergy := ppaOps*tech.EnergyPerOp + tech.DRAMEnergy(int64(ppaBytes))
	if ppaEnergy >= cpaEnergy {
		t.Fatalf("PPA energy %.3g J not below CPA %.3g J", ppaEnergy, cpaEnergy)
	}
	// DRAM must dominate compute in both.
	if tech.DRAMEnergy(int64(ppaBytes)) < 10*ppaOps*tech.EnergyPerOp {
		t.Fatal("DRAM energy does not dominate; the §4.2 argument would not hold")
	}
}

func TestClusterOpsPerPixel(t *testing.T) {
	// 9 distances × 7 ops + 6 sigma adds + 9 min compares.
	if ClusterOpsPerPixel != 78 {
		t.Fatalf("ClusterOpsPerPixel = %d, want 78", ClusterOpsPerPixel)
	}
}

func TestTable3AreaConstantsSumTo996(t *testing.T) {
	total := AreaClusterBase + AreaDist9Delta + AreaMin9Delta + AreaAdd6Delta
	if math.Abs(total-0.0157) > 1e-4 {
		t.Fatalf("9-9-6 component sum %.4f mm², want ~0.0156 (Table 3)", total)
	}
}

func TestScaledDVFS(t *testing.T) {
	base := Default16nm()
	slow := base.Scaled(0.8e9, 0.58)
	if slow.ClockHz != 0.8e9 {
		t.Fatal("clock not applied")
	}
	if slow.EnergyPerOp >= base.EnergyPerOp {
		t.Fatal("lower voltage must lower op energy")
	}
	if slow.DRAMEnergyPerByte != 2500*slow.Add8Energy {
		t.Fatal("DRAM ratio must be preserved under scaling")
	}
	// Nominal scaling is the identity.
	same := base.Scaled(base.ClockHz, NominalVoltage)
	if math.Abs(same.EnergyPerOp-base.EnergyPerOp) > 1e-20 ||
		math.Abs(same.SRAMPowerPerByte-base.SRAMPowerPerByte) > 1e-20 {
		t.Fatal("nominal scaling changed constants")
	}
	// SRAM power scales with both V² and frequency.
	fast := base.Scaled(2*base.ClockHz, NominalVoltage)
	if math.Abs(fast.SRAMPowerPerByte-2*base.SRAMPowerPerByte) > 1e-15 {
		t.Fatal("SRAM power must scale with clock")
	}
}
