// Package energy holds the technology and component models used to
// estimate area, power and energy of the S-SLIC accelerator in a 16nm
// FinFET process at 0.72V (paper §5-§7). The paper obtained these numbers
// from logic synthesis (Design Compiler) and gate-level power analysis
// (Primetime-PX); with no EDA tools available, this package provides a
// component-level model whose constants are calibrated so the published
// data points — the five Cluster Update Unit configurations of Table 3
// and the system totals of Table 4 — are reproduced by the component
// sums. The paper's own energy reasoning (§4.2) is preserved: the average
// arithmetic op costs about an 8-bit add, and an 8-bit DRAM access costs
// 2500× that (Horowitz, ISSCC 2014).
package energy

// Tech bundles the 16nm technology constants. All values are SI
// (joules, watts, meters², seconds).
type Tech struct {
	// ClockHz is the synthesis target frequency (paper: 1.6 GHz at 0.72V).
	ClockHz float64
	// EnergyPerOp is the energy of one average 8-bit datapath operation
	// (add-class, including local register and wiring overhead).
	// Calibrated from Table 3: the 1-1-1 configuration sustains ~8.7
	// ops/cycle at 3.3 mW, the 9-9-6 configuration ~78 ops/cycle at
	// 30.9 mW.
	EnergyPerOp float64
	// Add8Energy is the bare 8-bit integer add energy (Horowitz,
	// ISSCC 2014, scaled to 16nm), the reference unit of the paper's
	// §4.2 energy model.
	Add8Energy float64
	// DRAMEnergyPerByte is the external-memory access energy per byte:
	// 2500× the bare 8-bit add per the paper's §4.2 model.
	DRAMEnergyPerByte float64
	// LeakagePerMM2 is static power per mm² of logic, in watts.
	LeakagePerMM2 float64
	// SRAMAreaPerByte is scratchpad area per byte, calibrated from the
	// Table 4 area difference between the 4 kB and 1 kB buffer builds.
	SRAMAreaPerByte float64
	// SRAMPowerPerByte is scratchpad power per byte at full utilization
	// (the paper assumes scratchpads fully utilized).
	SRAMPowerPerByte float64
	// DRAMEffectiveBandwidth is the sustained external bandwidth in B/s.
	// The on-chip interface peak is 256 b/cycle, but the system-level
	// sustained rate that reproduces §7's 11.1 ms memory time for
	// 93.6 MB of cluster-update traffic is ≈8.5 GB/s — LPDDR-class.
	DRAMEffectiveBandwidth float64
	// DRAMLatencyCycles is the access latency in accelerator cycles
	// (paper §6.3: 50).
	DRAMLatencyCycles int
}

// Default16nm returns the calibrated 16nm FinFET technology model.
func Default16nm() Tech {
	const opEnergy = 0.235e-12 // J; see EnergyPerOp doc comment
	const add8 = 0.03e-12      // J; bare 8-bit add in 16nm
	return Tech{
		ClockHz:                1.6e9,
		EnergyPerOp:            opEnergy,
		Add8Energy:             add8,
		DRAMEnergyPerByte:      2500 * add8,
		LeakagePerMM2:          20e-3,
		SRAMAreaPerByte:        1.3e-6, // mm²/byte
		SRAMPowerPerByte:       1.0e-6, // W/byte at full utilization
		DRAMEffectiveBandwidth: 8.5e9,
		DRAMLatencyCycles:      50,
	}
}

// NominalVoltage is the 16nm operating point of the paper (§5).
const NominalVoltage = 0.72

// Scaled returns the technology model at a different clock and supply
// voltage: dynamic energy scales with V², leakage approximately with V,
// memory bandwidth and latency-in-cycles are unchanged. This models the
// §6.3 remark that the design "can scale gracefully down ... ultimately
// reducing the clock rate".
func (t Tech) Scaled(clockHz, voltage float64) Tech {
	v2 := (voltage / NominalVoltage) * (voltage / NominalVoltage)
	out := t
	out.ClockHz = clockHz
	out.EnergyPerOp *= v2
	out.Add8Energy *= v2
	out.DRAMEnergyPerByte = 2500 * out.Add8Energy
	out.LeakagePerMM2 *= voltage / NominalVoltage
	out.SRAMPowerPerByte *= v2 * clockHz / t.ClockHz
	return out
}

// GPUNormalization28to16 is the factor the paper applies to normalize
// 28nm GPU power to the accelerator's 16nm process: 1.25 for voltage²
// (0.81V→0.72V) times 1.75 for capacitance, totalling ≈2.2 (§7).
func GPUNormalization28to16() float64 { return 1.25 * 1.75 }

// Component areas in mm², calibrated against Table 3 and Table 4.
const (
	// AreaClusterBase covers the iterative (1-1-1) Cluster Update Unit:
	// pixel/center registers, one distance calculator, one comparator,
	// one adder and control (Table 3: 0.0020 mm²).
	AreaClusterBase = 0.0020
	// AreaDist9Delta is the area added by the 9-way parallel distance
	// calculators (Table 3: 0.0149 − 0.0020).
	AreaDist9Delta = 0.0129
	// AreaMin9Delta is the area added by the 9:1 comparison tree
	// (Table 3: 0.0023 − 0.0020).
	AreaMin9Delta = 0.0003
	// AreaAdd6Delta is the area added by the 6 parallel sigma adders
	// (Table 3: 0.0025 − 0.0020).
	AreaAdd6Delta = 0.0005
	// AreaColorConv covers the LUT-based color conversion unit including
	// its 256-entry and 8-segment ROMs.
	AreaColorConv = 0.0127
	// AreaCenterUpdate covers the center update unit with its iterative
	// divider.
	AreaCenterUpdate = 0.011
	// AreaFSM covers the host FSM controller.
	AreaFSM = 0.005
)

// ClusterOpsPerPixel is the arithmetic work of one pixel's cluster
// update: 9 distance calculations at 7 ops each (Table 2 model), 6 sigma
// additions and the 9:1 minimum's compares.
const ClusterOpsPerPixel = 9*7 + 6 + 9

// LeakageWatts returns static power for a given logic area in mm².
func (t Tech) LeakageWatts(areaMM2 float64) float64 {
	return t.LeakagePerMM2 * areaMM2
}

// DynamicWatts returns dynamic power for a unit sustaining opsPerCycle
// average operations per cycle.
func (t Tech) DynamicWatts(opsPerCycle float64) float64 {
	return t.EnergyPerOp * opsPerCycle * t.ClockHz
}

// SRAMWatts returns scratchpad power for the given capacity at full
// utilization.
func (t Tech) SRAMWatts(bytes int) float64 {
	return t.SRAMPowerPerByte * float64(bytes)
}

// SRAMAreaMM2 returns scratchpad area for the given capacity.
func (t Tech) SRAMAreaMM2(bytes int) float64 {
	return t.SRAMAreaPerByte * float64(bytes)
}

// DRAMEnergy returns the external-memory access energy for the given
// traffic.
func (t Tech) DRAMEnergy(bytes int64) float64 {
	return t.DRAMEnergyPerByte * float64(bytes)
}
