package quality

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// StreamStatus is one stream's row in the /debug/streams report.
type StreamStatus struct {
	Stream     string  `json:"stream"`
	Frames     uint64  `json:"frames"`
	WarmFrames uint64  `json:"warm_frames"`
	AgeSec     float64 `json:"age_seconds"`
	IdleSec    float64 `json:"idle_seconds"`

	Width  int `json:"width"`
	Height int `json:"height"`
	K      int `json:"k"`

	Level        int     `json:"level"`
	LevelHistory []int32 `json:"level_history"`

	WireFormat  string  `json:"wire_format,omitempty"`
	DeltaHits   uint64  `json:"delta_hits"`
	DeltaMisses uint64  `json:"delta_misses"`
	DeltaRatio  float64 `json:"delta_hit_ratio"`

	LastTraces []string `json:"last_traces,omitempty"`

	Quality StreamQuality `json:"quality"`
}

// StreamQuality is the quality-proxy block of a stream row: the latest
// frame's values plus the recent churn trend.
type StreamQuality struct {
	Churn           float64   `json:"churn"`
	ChurnTrend      []float64 `json:"churn_trend,omitempty"`
	EmptyClusters   int       `json:"empty_clusters"`
	Clusters        int       `json:"clusters"`
	ClusterSizeCV   float64   `json:"cluster_size_cv"`
	BoundaryDensity float64   `json:"boundary_density"`
	Residual        float64   `json:"residual"`
	ResidualDecay   float64   `json:"residual_decay"`
	Converged       bool      `json:"converged"`
	Passes          int       `json:"passes"`
	Collapsed       bool      `json:"collapsed"`
}

// FloorStatus reports the degrade controller's quality floor.
type FloorStatus struct {
	Pinned bool `json:"pinned"`
	Level  int  `json:"level"`
}

// Status is the whole /debug/streams document.
type Status struct {
	Streams []StreamStatus `json:"streams"`
	// Floor is present when a degrade controller is wired in.
	Floor *FloorStatus `json:"floor,omitempty"`
	// Totals across all frames ever observed.
	Frames          float64 `json:"frames_total"`
	EmptyFrames     float64 `json:"empty_cluster_frames_total"`
	CollapsedFrames float64 `json:"collapsed_frames_total"`
}

// Snapshot assembles the introspection document: one row per live
// stream (sorted by ID for stable output), the degrade floor, and the
// global counters.
func (t *Tracker) Snapshot() Status {
	now := time.Now()
	t.mu.Lock()
	rows := make([]StreamStatus, 0, len(t.streams))
	for _, st := range t.streams {
		row := StreamStatus{
			Stream:     st.stream,
			Frames:     st.frames,
			WarmFrames: st.warmFrames,
			AgeSec:     now.Sub(st.firstSeen).Seconds(),
			IdleSec:    now.Sub(st.lastSeen).Seconds(),
			Width:      st.w,
			Height:     st.h,
			K:          st.k,
			Level:      st.level,
			WireFormat: st.wireFormat,
		}
		row.DeltaHits, row.DeltaMisses = st.deltaHits, st.deltaMisses
		if n := st.deltaHits + st.deltaMisses; n > 0 {
			row.DeltaRatio = float64(st.deltaHits) / float64(n)
		}
		// Rings hold observations [max(0, n-ringLen), n), oldest first.
		start := 0
		if st.nChurn > ringLen {
			start = st.nChurn - ringLen
		}
		for i := start; i < st.nChurn; i++ {
			row.LevelHistory = append(row.LevelHistory, st.levels[i%ringLen])
			row.Quality.ChurnTrend = append(row.Quality.ChurnTrend, st.churn[i%ringLen])
		}
		tStart := 0
		if st.nTraces > len(st.traces) {
			tStart = st.nTraces - len(st.traces)
		}
		for i := tStart; i < st.nTraces; i++ {
			row.LastTraces = append(row.LastTraces, st.traces[i%len(st.traces)])
		}
		s := st.last
		row.Quality.Churn = s.Churn
		row.Quality.EmptyClusters = s.EmptyClusters
		row.Quality.Clusters = s.Clusters
		row.Quality.ClusterSizeCV = s.ClusterSizeCV
		row.Quality.BoundaryDensity = s.BoundaryDensity
		row.Quality.Residual = s.Residual
		row.Quality.ResidualDecay = s.ResidualDecay
		row.Quality.Converged = s.Converged
		row.Quality.Passes = s.Passes
		row.Quality.Collapsed = st.collapsed
		rows = append(rows, row)
	}
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Stream < rows[j].Stream })

	out := Status{
		Streams:         rows,
		Frames:          t.frames.Value(),
		EmptyFrames:     t.emptyFr.Value(),
		CollapsedFrames: t.collapsed.Value(),
	}
	if t.cfg.FloorFunc != nil {
		level, pinned := t.cfg.FloorFunc()
		out.Floor = &FloorStatus{Pinned: pinned, Level: level}
	}
	return out
}

// Handler serves the introspection document as JSON at /debug/streams.
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Snapshot())
	})
}
