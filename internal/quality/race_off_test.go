//go:build !race

package quality

// raceEnabled reports whether the binary was built with -race; tests
// that assert exact allocation counts skip under the detector, whose
// instrumentation allocates on its own.
const raceEnabled = false
