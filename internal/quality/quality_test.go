package quality

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"sslic/internal/imgio"
	"sslic/internal/telemetry"
)

func labelMap(w, h int, labels ...int32) *imgio.LabelMap {
	lm := &imgio.LabelMap{W: w, H: h, Labels: make([]int32, w*h)}
	copy(lm.Labels, labels)
	return lm
}

func TestLabelChurn(t *testing.T) {
	a := labelMap(2, 2, 0, 0, 1, 1)
	b := labelMap(2, 2, 0, 0, 1, 1)
	if changed, ok := LabelChurn(a, b); !ok || changed != 0 {
		t.Fatalf("identical maps: changed=%d ok=%v, want 0 true", changed, ok)
	}
	b.Labels[3] = 2
	if changed, ok := LabelChurn(a, b); !ok || changed != 1 {
		t.Fatalf("one differing pixel: changed=%d ok=%v, want 1 true", changed, ok)
	}
	if _, ok := LabelChurn(a, nil); ok {
		t.Fatal("nil prev must report ok=false")
	}
	if _, ok := LabelChurn(a, labelMap(2, 3)); ok {
		t.Fatal("geometry mismatch must report ok=false")
	}
}

func TestBoundaryDensity(t *testing.T) {
	// A 2x2 map split into two vertical superpixels: every pixel touches
	// a horizontal neighbor with a different label.
	lm := labelMap(2, 2, 0, 1, 0, 1)
	if got := BoundaryDensity(lm); got != 1 {
		t.Fatalf("BoundaryDensity = %g, want 1", got)
	}
	// Uniform labels: no boundary at all.
	if got := BoundaryDensity(labelMap(3, 3)); got != 0 {
		t.Fatalf("uniform BoundaryDensity = %g, want 0", got)
	}
	if got := BoundaryDensity(nil); got != 0 {
		t.Fatalf("nil BoundaryDensity = %g, want 0", got)
	}
}

func sampleFor(stream string, churn float64) Sample {
	return Sample{
		Stream: stream, TraceID: "t-" + stream,
		W: 8, H: 8, K: 4, Level: 1, Warm: true,
		WireFormat: "slbl-delta", DeltaBase: churn >= 0,
		Churn: churn, EmptyClusters: 1, Clusters: 4,
		ClusterSizeCV: 0.25, BoundaryDensity: 0.5,
		Residual: 0.01, ResidualDecay: 0.1,
		Converged: true, Passes: 6,
	}
}

func TestTrackerSnapshot(t *testing.T) {
	tr := NewTracker(Config{
		FloorFunc: func() (int, bool) { return 2, true },
	})
	tr.Observe(sampleFor("b", 0.125))
	tr.Observe(sampleFor("a", -1))
	tr.Observe(sampleFor("a", 0.5))

	st := tr.Snapshot()
	if len(st.Streams) != 2 {
		t.Fatalf("got %d stream rows, want 2", len(st.Streams))
	}
	if st.Streams[0].Stream != "a" || st.Streams[1].Stream != "b" {
		t.Fatalf("rows not sorted by stream: %q, %q", st.Streams[0].Stream, st.Streams[1].Stream)
	}
	a := st.Streams[0]
	if a.Frames != 2 || a.WarmFrames != 2 {
		t.Fatalf("stream a frames=%d warm=%d, want 2/2", a.Frames, a.WarmFrames)
	}
	if a.DeltaHits != 1 || a.DeltaMisses != 1 || a.DeltaRatio != 0.5 {
		t.Fatalf("stream a delta hits=%d misses=%d ratio=%g, want 1/1/0.5",
			a.DeltaHits, a.DeltaMisses, a.DeltaRatio)
	}
	// Churn trend is oldest-first: unknown (-1) then 0.5.
	if len(a.Quality.ChurnTrend) != 2 || a.Quality.ChurnTrend[0] != -1 || a.Quality.ChurnTrend[1] != 0.5 {
		t.Fatalf("churn trend = %v, want [-1 0.5]", a.Quality.ChurnTrend)
	}
	if len(a.LevelHistory) != 2 {
		t.Fatalf("level history = %v, want 2 entries", a.LevelHistory)
	}
	if len(a.LastTraces) != 2 || a.LastTraces[0] != "t-a" {
		t.Fatalf("traces = %v", a.LastTraces)
	}
	if a.Quality.Churn != 0.5 || a.Quality.EmptyClusters != 1 || a.Quality.Passes != 6 {
		t.Fatalf("last-sample block wrong: %+v", a.Quality)
	}
	if st.Floor == nil || !st.Floor.Pinned || st.Floor.Level != 2 {
		t.Fatalf("floor = %+v, want pinned at 2", st.Floor)
	}
	if st.Frames != 3 {
		t.Fatalf("frames total = %g, want 3", st.Frames)
	}

	// The handler serves the same document as JSON.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/streams", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("handler body not JSON: %v", err)
	}
	for _, key := range []string{"streams", "floor", "frames_total", "empty_cluster_frames_total", "collapsed_frames_total"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("handler JSON missing %q: %s", key, rec.Body.String())
		}
	}
}

func TestTrackerEviction(t *testing.T) {
	tr := NewTracker(Config{MaxStreams: 2})
	tr.Observe(sampleFor("s1", 0.1))
	tr.Observe(sampleFor("s2", 0.1))
	tr.Observe(sampleFor("s3", 0.1)) // evicts the least-recently-seen (s1)
	st := tr.Snapshot()
	if len(st.Streams) != 2 {
		t.Fatalf("got %d rows, want 2 after eviction", len(st.Streams))
	}
	for _, row := range st.Streams {
		if row.Stream == "s1" {
			t.Fatal("s1 should have been evicted")
		}
	}
	if st.Frames != 3 {
		t.Fatalf("global frame counter = %g, want 3 (eviction must not reset totals)", st.Frames)
	}
}

func TestTrackerTickSignal(t *testing.T) {
	tr := NewTracker(Config{MaxEmptyFrac: 0.1})
	if collapsed, observed := tr.TickSignal(); collapsed || observed {
		t.Fatal("idle tick must report (false, false)")
	}
	// sampleFor has 1 empty of 4 clusters = 0.25 > 0.1: bad.
	tr.Observe(sampleFor("s", 0.1))
	tr.Observe(sampleFor("s", 0.1))
	good := sampleFor("s", 0.1)
	good.EmptyClusters = 0
	tr.Observe(good)
	collapsed, observed := tr.TickSignal()
	if !observed || !collapsed {
		t.Fatalf("2 bad of 3: collapsed=%v observed=%v, want true true", collapsed, observed)
	}
	// The window resets per tick.
	tr.Observe(good)
	collapsed, observed = tr.TickSignal()
	if !observed || collapsed {
		t.Fatalf("0 bad of 1: collapsed=%v observed=%v, want false true", collapsed, observed)
	}
}

func TestTrackerFloorChecks(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		mut  func(*Sample)
		bad  bool
	}{
		{"churn over", Config{MaxChurn: 0.2}, func(s *Sample) { s.Churn = 0.3 }, true},
		{"churn under", Config{MaxChurn: 0.2}, func(s *Sample) { s.Churn = 0.1 }, false},
		{"churn unknown exempt", Config{MaxChurn: 0.2}, func(s *Sample) { s.Churn = -1 }, false},
		{"empty over", Config{MaxEmptyFrac: 0.1}, func(s *Sample) { s.EmptyClusters = 1 }, true},
		{"empty under", Config{MaxEmptyFrac: 0.5}, func(s *Sample) { s.EmptyClusters = 1 }, false},
		{"decay over", Config{MaxResidualDecay: 0.5}, func(s *Sample) {
			s.Warm = false
			s.ResidualDecay = 0.9
		}, true},
		{"decay warm exempt", Config{MaxResidualDecay: 0.5}, func(s *Sample) {
			s.Warm = true
			s.ResidualDecay = 0.9
		}, false},
		{"all disabled", Config{}, func(s *Sample) { s.Churn = 0.99; s.EmptyClusters = 4 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracker(tc.cfg)
			s := sampleFor("s", 0.0)
			s.EmptyClusters = 0
			tc.mut(&s)
			tr.Observe(s)
			collapsed, observed := tr.TickSignal()
			if !observed {
				t.Fatal("frame not observed")
			}
			if collapsed != tc.bad {
				t.Fatalf("collapsed = %v, want %v", collapsed, tc.bad)
			}
		})
	}
}

// TestObserveSteadyStateAllocs gates the tentpole's zero-alloc claim:
// once a stream's state and gauges exist, folding a frame in allocates
// nothing.
func TestObserveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	tr := NewTracker(Config{MaxChurn: 0.5, Registry: telemetry.NewRegistry()})
	s := sampleFor("steady", 0.1)
	tr.Observe(s) // mint the stream state and gauges
	allocs := testing.AllocsPerRun(100, func() { tr.Observe(s) })
	if allocs != 0 {
		t.Fatalf("steady-state Observe allocates %.1f objects/op, want 0", allocs)
	}
}

func TestStreamLabelCapping(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := NewTracker(Config{Registry: reg, MaxStreams: 2})
	tr.Observe(sampleFor("", 0.1))   // anonymous → _anon (not counted against the mint cap)
	tr.Observe(sampleFor("s1", 0.1)) // minted
	tr.Observe(sampleFor("s2", 0.1)) // minted (second of two)
	tr.Observe(sampleFor("s3", 0.1)) // past the mint cap → _other
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `sslic_quality_stream_churn{stream="_anon"}`) {
		t.Fatal("anonymous stream series missing")
	}
	if !strings.Contains(text, `sslic_quality_stream_churn{stream="_other"}`) {
		t.Fatal("overflow stream series missing")
	}
	if !strings.Contains(text, `sslic_quality_stream_churn{stream="s1"}`) {
		t.Fatal("stream s1 should have minted its own series under the cap")
	}
	if strings.Contains(text, `sslic_quality_stream_churn{stream="s3"}`) {
		t.Fatal("stream s3 minted its own series past the cap")
	}
}

// TestStreamLabelTenantSliced: with TenantSlice set, each tenant gets
// its own fair slice of the minted-series budget — one greedy tenant
// overflows into its own <tenant>/_other, never into another tenant's
// slice or the global pool.
func TestStreamLabelTenantSliced(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := NewTracker(Config{Registry: reg, MaxStreams: 8, TenantSlice: 2})
	// Mirror the server contract: Sample.Stream arrives already
	// tenant-namespaced; Sample.Tenant only selects the budget slice.
	post := func(tenant, stream string) {
		scoped := stream
		if stream != "" {
			scoped = tenant + "/" + stream
		}
		s := sampleFor(scoped, 0.1)
		s.Tenant = tenant
		tr.Observe(s)
	}
	post("acme", "s0") // minted: acme/s0
	post("acme", "s1") // minted: acme/s1 (slice of 2 exhausted)
	post("acme", "s2") // over acme's slice → acme/_other
	post("beta", "s2") // beta's slice untouched by acme → beta/s2
	post("acme", "")   // keyless stream under a tenant → acme/_anon

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`sslic_quality_stream_churn{stream="acme/s0"}`,
		`sslic_quality_stream_churn{stream="acme/s1"}`,
		`sslic_quality_stream_churn{stream="acme/_other"}`,
		`sslic_quality_stream_churn{stream="beta/s2"}`,
		`sslic_quality_stream_churn{stream="acme/_anon"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing series %s", want)
		}
	}
	if strings.Contains(text, `sslic_quality_stream_churn{stream="acme/s2"}`) {
		t.Fatal("acme/s2 minted past acme's tenant slice")
	}
}
