// Package quality turns data the segmentation hot path already
// produces into live quality observability. The paper's value claim is
// a quality/speed/energy trade-off (boundary recall at real-time frame
// rates), and the serving layer actively spends quality at runtime —
// the degrade ladder halves iterations and coarsens subsampling under
// load — so the quality axis must be observable per stream while the
// service runs, not only in offline benchmarks.
//
// The proxies are deliberately cheap, deterministic and alloc-free in
// the steady-state request path:
//
//   - residual convergence (final residual and first→last decay) from
//     sslic.Stats.MoveHistory — the run already records it per pass;
//   - inter-frame label churn, the fraction of pixels whose label
//     changed against the previous frame, read off the slbl-delta base
//     cache the wire layer already keeps;
//   - empty-cluster count and cluster-size coefficient of variation
//     from the final label scan (under-segmentation collapse);
//   - boundary density (boundary pixels / frame pixels), the live
//     stand-in for the paper's boundary-recall axis.
//
// A Tracker folds per-frame Samples into registry series (global
// histograms plus capped per-stream gauges, mirroring the cost
// accountant's cardinality rules), serves the /debug/streams
// introspection JSON, and distills a two-sided control signal for the
// degrade controller: TickSignal reports whether quality has collapsed
// below configured floors, so a blown latency budget cannot walk the
// ladder past the point where segmentations stop being worth serving.
package quality

import (
	"sync"
	"time"

	"sslic/internal/imgio"
	"sslic/internal/telemetry"
)

// LabelChurn counts pixels whose label differs between cur and prev —
// the same comparison the delta wire format encodes as skip/run
// records, evaluated without allocating. ok is false (and changed 0)
// when the maps are missing or their geometries disagree, which is
// exactly when the delta encoder would fall back to a full keyframe.
func LabelChurn(cur, prev *imgio.LabelMap) (changed int, ok bool) {
	if cur == nil || prev == nil || cur.W != prev.W || cur.H != prev.H {
		return 0, false
	}
	a, b := cur.Labels, prev.Labels
	if len(a) != len(b) {
		return 0, false
	}
	for i, v := range a {
		if v != b[i] {
			changed++
		}
	}
	return changed, true
}

// BoundaryDensity recomputes the boundary-pixel fraction of a label
// map — the same 4-neighbor scan the segmentation core folds into
// Stats.BoundaryPixels — for offline tools that only hold labels, and
// as the tests' reference implementation for the in-core scan.
func BoundaryDensity(lm *imgio.LabelMap) float64 {
	if lm == nil || lm.W <= 0 || lm.H <= 0 {
		return 0
	}
	w, h := lm.W, lm.H
	lb := lm.Labels
	boundary := 0
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			v := lb[i]
			if (x > 0 && lb[i-1] != v) || (x < w-1 && lb[i+1] != v) ||
				(y > 0 && lb[i-w] != v) || (y < h-1 && lb[i+w] != v) {
				boundary++
			}
		}
	}
	return float64(boundary) / float64(w*h)
}

// maxStreams caps both the introspection states and the per-stream
// registry series, matching the cost accountant's cardinality rule:
// registry series are never evicted, so minted stream labels must stay
// bounded. Introspection states ARE evicted (least-recently-seen) so
// /debug/streams always shows the live working set.
const maxStreams = 32

// ringLen is the per-stream history depth for churn trend, level
// history and trace IDs.
const ringLen = 16

// Config tunes a Tracker.
type Config struct {
	// Registry receives the quality series; nil selects a private one.
	Registry *telemetry.Registry
	// MaxStreams caps per-stream introspection states and minted
	// per-stream series; <= 0 selects 32.
	MaxStreams int
	// TenantSlice, when > 0, makes the minted-series cap tenant-fair:
	// each tenant (Sample.Tenant) may mint at most TenantSlice
	// per-stream label sets, overflowing into its own
	// "<tenant>/_other" series — so one tenant churning stream IDs
	// cannot exhaust the label budget for everyone. 0 keeps the
	// single global MaxStreams cap.
	TenantSlice int

	// Floor thresholds: a frame trips the quality floor when any
	// enabled check fails. <= 0 disables a check.
	//
	// MaxChurn is the inter-frame label churn ratio (changed pixels /
	// frame pixels) above which a frame counts as collapsed.
	MaxChurn float64
	// MaxEmptyFrac is the empty-cluster fraction (empty / effective K)
	// above which a frame counts as collapsed.
	MaxEmptyFrac float64
	// MaxResidualDecay flags non-convergence: a cold run whose final
	// residual is above MaxResidualDecay × its first residual counts as
	// collapsed (warm runs with fewer than two passes are exempt).
	MaxResidualDecay float64

	// FloorFunc, when set, lets /debug/streams report the degrade
	// controller's current quality floor (level, pinned).
	FloorFunc func() (level int, pinned bool)
}

// Sample is one successfully segmented frame's quality observation.
// Everything in it is already computed by the hot path; the Tracker
// only folds it into series and rings.
type Sample struct {
	Stream string
	// Tenant is the owning tenant's ID ("" in single-tenant mode).
	// Stream is expected to already be tenant-scoped by the caller;
	// Tenant only drives the per-tenant metric label budget.
	Tenant  string
	TraceID string
	W, H, K int
	// Level is the degrade level the frame was served at.
	Level int
	Warm  bool
	// WireFormat is the response label framing (labels, slbl-rle,
	// slbl-delta, overlay, ...).
	WireFormat string
	// DeltaBase reports whether a delta base was found in the wire
	// cache for this frame (a hit); only meaningful for streams.
	DeltaBase bool
	// Churn is the changed-pixel fraction vs the previous frame; < 0
	// means unknown (no base to compare against).
	Churn         float64
	EmptyClusters int
	// Clusters is the effective superpixel count (the tiling's K).
	Clusters        int
	ClusterSizeCV   float64
	BoundaryDensity float64
	// Residual is the final pass's mean center movement;
	// ResidualDecay is final/first (1 = no convergence progress).
	Residual      float64
	ResidualDecay float64
	Converged     bool
	Passes        int
}

// streamState is one stream's introspection record. Gauges are cached
// here so a steady-state Observe does no registry lookups (and so no
// allocations).
type streamState struct {
	stream      string
	firstSeen   time.Time
	lastSeen    time.Time
	frames      uint64
	warmFrames  uint64
	w, h, k     int
	level       int
	wireFormat  string
	deltaHits   uint64
	deltaMisses uint64
	collapsed   bool // last frame tripped a floor check

	churn   [ringLen]float64 // most recent last; -1 = unknown
	levels  [ringLen]int32
	traces  [4]string
	nChurn  int // total observations, rings are [max(0,n-ringLen), n)
	nTraces int

	last Sample

	churnG, emptyG, residualG, boundaryG *telemetry.Gauge
}

// Tracker folds frame Samples into live quality series and keeps the
// per-stream introspection states behind /debug/streams.
type Tracker struct {
	cfg Config
	reg *telemetry.Registry

	churnHist *telemetry.Histogram
	frames    *telemetry.Counter
	emptyFr   *telemetry.Counter
	collapsed *telemetry.Counter

	mu       sync.Mutex
	streams  map[string]*streamState
	minted   int            // per-stream series label sets created so far
	mintedBy map[string]int // label sets minted per tenant (tenancy mode)

	// Tick window counters for the degrade floor signal.
	tickFrames int
	tickBad    int
}

// NewTracker builds a Tracker and registers its series.
func NewTracker(cfg Config) *Tracker {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = maxStreams
	}
	t := &Tracker{
		cfg:      cfg,
		reg:      cfg.Registry,
		streams:  make(map[string]*streamState),
		mintedBy: make(map[string]int),
	}
	t.churnHist = cfg.Registry.Histogram("sslic_quality_churn_ratio",
		"Inter-frame label churn: changed pixels / frame pixels, per delta-capable frame.",
		[]float64{.001, .0025, .005, .01, .025, .05, .1, .2, .35, .5, .75})
	t.frames = cfg.Registry.Counter("sslic_quality_frames_total",
		"Frames with a quality observation.")
	t.emptyFr = cfg.Registry.Counter("sslic_quality_empty_cluster_frames_total",
		"Frames with at least one empty cluster.")
	t.collapsed = cfg.Registry.Counter("sslic_quality_collapsed_frames_total",
		"Frames that tripped a quality-floor threshold.")
	return t
}

// bad evaluates the floor thresholds against one sample.
func (t *Tracker) bad(s Sample) bool {
	if t.cfg.MaxChurn > 0 && s.Churn >= 0 && s.Churn > t.cfg.MaxChurn {
		return true
	}
	if t.cfg.MaxEmptyFrac > 0 && s.Clusters > 0 &&
		float64(s.EmptyClusters)/float64(s.Clusters) > t.cfg.MaxEmptyFrac {
		return true
	}
	if t.cfg.MaxResidualDecay > 0 && s.Passes >= 2 && !s.Warm &&
		s.ResidualDecay > t.cfg.MaxResidualDecay {
		return true
	}
	return false
}

// Observe folds one frame into the tracker. Steady-state calls for an
// already-known stream are allocation-free: rings and cached gauges
// only.
func (t *Tracker) Observe(s Sample) {
	t.frames.Inc()
	if s.EmptyClusters > 0 {
		t.emptyFr.Inc()
	}
	if s.Churn >= 0 {
		t.churnHist.Observe(s.Churn)
	}
	bad := t.bad(s)
	if bad {
		t.collapsed.Inc()
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.tickFrames++
	if bad {
		t.tickBad++
	}
	st := t.streams[s.Stream]
	if st == nil {
		st = t.newStreamLocked(s.Stream, s.Tenant)
	}
	now := time.Now()
	st.lastSeen = now
	st.frames++
	if s.Warm {
		st.warmFrames++
	}
	st.w, st.h, st.k = s.W, s.H, s.K
	st.level = s.Level
	st.wireFormat = s.WireFormat
	if s.Stream != "" {
		if s.DeltaBase {
			st.deltaHits++
		} else {
			st.deltaMisses++
		}
	}
	st.churn[st.nChurn%ringLen] = s.Churn
	st.levels[st.nChurn%ringLen] = int32(s.Level)
	st.nChurn++
	if s.TraceID != "" {
		st.traces[st.nTraces%len(st.traces)] = s.TraceID
		st.nTraces++
	}
	st.collapsed = bad
	st.last = s

	if s.Churn >= 0 {
		st.churnG.Set(s.Churn)
	}
	st.emptyG.Set(float64(s.EmptyClusters))
	st.residualG.Set(s.Residual)
	st.boundaryG.Set(s.BoundaryDensity)
}

// newStreamLocked creates (and possibly evicts for) a stream state,
// minting its per-stream gauges under the cardinality cap. tenant
// selects the per-tenant budget slice when TenantSlice is configured.
func (t *Tracker) newStreamLocked(stream, tenant string) *streamState {
	if len(t.streams) >= t.cfg.MaxStreams {
		var victim string
		var oldest time.Time
		for id, st := range t.streams {
			if victim == "" || st.lastSeen.Before(oldest) {
				victim, oldest = id, st.lastSeen
			}
		}
		delete(t.streams, victim)
	}
	label := stream
	switch {
	case stream == "" && tenant == "":
		label = "_anon"
	case stream == "":
		label = tenant + "/_anon"
	case tenant != "" && t.cfg.TenantSlice > 0:
		// Tenant-fair budget: each tenant mints from its own slice and
		// overflows into its own series, never the shared pool's.
		if t.mintedBy[tenant] >= t.cfg.TenantSlice {
			label = tenant + "/_other"
		} else {
			t.mintedBy[tenant]++
		}
	case t.minted >= t.cfg.MaxStreams:
		// Past the cap, recreated streams share the overflow series
		// (their introspection state stays individual).
		label = "_other"
	default:
		t.minted++
	}
	lbl := telemetry.Label{Name: "stream", Value: label}
	st := &streamState{
		stream:    stream,
		firstSeen: time.Now(),
		churnG: t.reg.Gauge("sslic_quality_stream_churn",
			"Latest inter-frame label churn ratio, by stream.", lbl),
		emptyG: t.reg.Gauge("sslic_quality_stream_empty_clusters",
			"Latest empty-cluster count, by stream.", lbl),
		residualG: t.reg.Gauge("sslic_quality_stream_residual",
			"Latest final center residual, by stream.", lbl),
		boundaryG: t.reg.Gauge("sslic_quality_stream_boundary_density",
			"Latest boundary-pixel density, by stream.", lbl),
	}
	for i := range st.churn {
		st.churn[i] = -1
	}
	t.streams[stream] = st
	return st
}

// TickSignal is the degrade controller's quality-floor input, called
// once per controller tick. observed reports whether any frame landed
// since the previous tick; collapsed reports whether a majority of
// those frames tripped a floor threshold. Ticks with no traffic return
// (false, false) so an idle service neither pins nor releases the
// floor.
func (t *Tracker) TickSignal() (collapsed, observed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	frames, bad := t.tickFrames, t.tickBad
	t.tickFrames, t.tickBad = 0, 0
	if frames == 0 {
		return false, false
	}
	return bad*2 > frames, true
}

// ChurnSnapshot exposes the churn histogram for SLO windowing
// (quality.churn p95 objectives).
func (t *Tracker) ChurnSnapshot() telemetry.HistogramSnapshot {
	return t.churnHist.Snapshot()
}

// FrameCounts is the SLO engine's cumulative empty-cluster
// availability source: total observed frames and frames with at least
// one empty cluster.
func (t *Tracker) FrameCounts() (frames, emptyFrames float64) {
	return t.frames.Value(), t.emptyFr.Value()
}
