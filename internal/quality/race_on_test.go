//go:build race

package quality

// raceEnabled reports whether the binary was built with -race; see
// race_off_test.go.
const raceEnabled = true
