package dram

import (
	"strings"
	"testing"

	"sslic/internal/telemetry"
)

func TestInstrumentMirrorsTraffic(t *testing.T) {
	m, err := NewModel(Config{BandwidthBytesPerSec: 1e9, LatencyCycles: 50, ClockHz: 1e9})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	// Pre-instrument traffic must be credited when the counters attach.
	m.Record(StreamPixels, 100)

	reg := telemetry.NewRegistry()
	m.Instrument(reg)

	m.Record(StreamLabels, 50)
	m.RecordBurst(30, 20, 10)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`sslic_dram_bytes_total{stream="pixels"} 130`,
		`sslic_dram_bytes_total{stream="labels"} 70`,
		`sslic_dram_bytes_total{stream="centers"} 10`,
		`sslic_dram_transfers_total 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// The model's own accounting is unchanged by instrumentation.
	if m.TotalBytes() != 210 || m.Transfers() != 3 {
		t.Fatalf("model accounting drifted: %d bytes, %d transfers",
			m.TotalBytes(), m.Transfers())
	}

	// Reset clears the model but the stream-total counters keep counting.
	m.Reset()
	m.Record(StreamPixels, 5)
	if m.TotalBytes() != 5 {
		t.Fatalf("reset model bytes = %d", m.TotalBytes())
	}
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if !strings.Contains(b.String(), `sslic_dram_bytes_total{stream="pixels"} 135`) {
		t.Fatalf("counter did not survive Reset:\n%s", b.String())
	}
}

func TestInstrumentLabels(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, _ := NewModel(Config{BandwidthBytesPerSec: 1, LatencyCycles: 0, ClockHz: 1})
	b, _ := NewModel(Config{BandwidthBytesPerSec: 1, LatencyCycles: 0, ClockHz: 1})
	a.Instrument(reg, telemetry.Label{Name: "model", Value: "cc"})
	b.Instrument(reg, telemetry.Label{Name: "model", Value: "cluster"})
	a.Record(StreamPixels, 7)
	b.Record(StreamPixels, 9)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, `sslic_dram_bytes_total{model="cc",stream="pixels"} 7`) ||
		!strings.Contains(out, `sslic_dram_bytes_total{model="cluster",stream="pixels"} 9`) {
		t.Fatalf("labeled models not distinct:\n%s", out)
	}
}
