package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{BandwidthBytesPerSec: 8.5e9, LatencyCycles: 50, ClockHz: 1.6e9}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{BandwidthBytesPerSec: 0, LatencyCycles: 50, ClockHz: 1.6e9},
		{BandwidthBytesPerSec: 1e9, LatencyCycles: -1, ClockHz: 1.6e9},
		{BandwidthBytesPerSec: 1e9, LatencyCycles: 50, ClockHz: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := NewModel(c); err == nil {
			t.Errorf("bad config %d constructed", i)
		}
	}
}

func TestRecordAccounting(t *testing.T) {
	m, err := NewModel(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Record(StreamPixels, 1000)
	m.Record(StreamLabels, 500)
	m.Record(StreamCenters, 100)
	if m.TotalBytes() != 1600 {
		t.Fatalf("total %d", m.TotalBytes())
	}
	if m.StreamBytes(StreamPixels) != 1000 || m.StreamBytes(StreamLabels) != 500 {
		t.Fatal("per-stream accounting wrong")
	}
	if m.Transfers() != 3 {
		t.Fatalf("transfers %d", m.Transfers())
	}
}

func TestRecordIgnoresNonPositive(t *testing.T) {
	m, _ := NewModel(testConfig())
	m.Record(StreamPixels, 0)
	m.Record(StreamPixels, -5)
	if m.TotalBytes() != 0 || m.Transfers() != 0 {
		t.Fatal("non-positive bytes recorded")
	}
}

func TestRecordBurstSingleTransfer(t *testing.T) {
	m, _ := NewModel(testConfig())
	m.RecordBurst(3000, 2000, 500)
	if m.Transfers() != 1 {
		t.Fatalf("burst counted as %d transfers", m.Transfers())
	}
	if m.TotalBytes() != 5500 {
		t.Fatalf("burst total %d", m.TotalBytes())
	}
}

func TestTransferTime(t *testing.T) {
	m, _ := NewModel(testConfig())
	m.RecordBurst(8.5e9, 0, 0) // exactly one second of streaming
	want := 1.0 + 50/1.6e9
	if math.Abs(m.TransferTime()-want) > 1e-9 {
		t.Fatalf("transfer time %g, want %g", m.TransferTime(), want)
	}
}

func TestTransferTimeLatencyPerBurst(t *testing.T) {
	// Same bytes in more bursts must take longer (latency exposure is
	// the Fig 6 mechanism).
	one, _ := NewModel(testConfig())
	one.RecordBurst(1<<20, 0, 0)
	many, _ := NewModel(testConfig())
	for i := 0; i < 1024; i++ {
		many.RecordBurst(1024, 0, 0)
	}
	if many.TransferTime() <= one.TransferTime() {
		t.Fatal("more bursts must expose more latency")
	}
	// Streaming component identical.
	diff := many.TransferTime() - one.TransferTime()
	wantDiff := 1023 * 50 / 1.6e9
	if math.Abs(diff-wantDiff) > 1e-9 {
		t.Fatalf("latency delta %g, want %g", diff, wantDiff)
	}
}

func TestTransferTimeMonotoneInBytes(t *testing.T) {
	prop := func(a, b uint32) bool {
		small, big := int64(a%1e6), int64(b%1e6)
		if small > big {
			small, big = big, small
		}
		m1, _ := NewModel(testConfig())
		m1.RecordBurst(small, 0, 0)
		m2, _ := NewModel(testConfig())
		m2.RecordBurst(big, 0, 0)
		return m1.TransferTime() <= m2.TransferTime()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	m, _ := NewModel(testConfig())
	m.RecordBurst(100, 100, 100)
	m.Reset()
	if m.TotalBytes() != 0 || m.Transfers() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestStreamStrings(t *testing.T) {
	if StreamPixels.String() != "pixels" || StreamLabels.String() != "labels" || StreamCenters.String() != "centers" {
		t.Fatal("stream names")
	}
	if Stream(99).String() == "" {
		t.Fatal("unknown stream must still render")
	}
}
