// Package dram models the accelerator's external memory: sustained
// bandwidth, per-transfer latency, and per-stream traffic accounting.
// The paper's buffer-size exploration (§6.3, Figure 6) assumes a peak
// interface width of 256 bits/cycle and a 50-cycle access latency; the
// number of scratchpad (tile) fills determines how often that latency is
// exposed, which is why small channel buffers miss the real-time target.
package dram

import (
	"fmt"

	"sslic/internal/faults"
	"sslic/internal/telemetry"
)

// Stream identifies a traffic class for accounting.
type Stream int

const (
	// StreamPixels is input pixel / Lab plane traffic.
	StreamPixels Stream = iota
	// StreamLabels is superpixel index buffer traffic.
	StreamLabels
	// StreamCenters is center and sigma accumulator traffic.
	StreamCenters
	numStreams
)

// String names the stream.
func (s Stream) String() string {
	switch s {
	case StreamPixels:
		return "pixels"
	case StreamLabels:
		return "labels"
	case StreamCenters:
		return "centers"
	default:
		return fmt.Sprintf("stream(%d)", int(s))
	}
}

// Config describes the external memory system.
type Config struct {
	// BandwidthBytesPerSec is the sustained transfer rate.
	BandwidthBytesPerSec float64
	// LatencyCycles is the first-access latency per transfer, in
	// accelerator cycles.
	LatencyCycles int
	// ClockHz converts latency cycles to time.
	ClockHz float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("dram: bandwidth %g B/s", c.BandwidthBytesPerSec)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("dram: negative latency")
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("dram: clock %g Hz", c.ClockHz)
	}
	return nil
}

// Model accumulates traffic and computes transfer times.
type Model struct {
	cfg       Config
	bytes     [numStreams]int64
	transfers int64

	// Telemetry mirrors, nil until Instrument is called.
	byteMetrics     [numStreams]*telemetry.Counter
	transferMetrics *telemetry.Counter
}

// Instrument mirrors the model's accounting onto registry counters:
// sslic_dram_bytes_total{stream=...} and sslic_dram_transfers_total,
// carrying any extra labels given (e.g. a model instance name). Traffic
// recorded before Instrument is credited immediately, so attaching late
// never loses bytes. The counters accumulate across Reset calls — they
// are stream totals, not per-frame snapshots.
func (m *Model) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	for s := Stream(0); s < numStreams; s++ {
		lbls := append([]telemetry.Label{{Name: "stream", Value: s.String()}}, labels...)
		c := reg.Counter("sslic_dram_bytes_total",
			"External memory traffic by stream.", lbls...)
		c.Add(float64(m.bytes[s]))
		m.byteMetrics[s] = c
	}
	m.transferMetrics = reg.Counter("sslic_dram_transfers_total",
		"External memory burst transfers.", labels...)
	m.transferMetrics.Add(float64(m.transfers))
}

// NewModel returns a model for the given configuration.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// Record accounts bytes moved on a stream as part of one transfer burst
// (one scratchpad fill or drain).
func (m *Model) Record(s Stream, bytes int64) {
	if bytes <= 0 {
		return
	}
	// Fault hook: Record returns no error, so only the latency and panic
	// actions apply — a slow or crashing memory interface under the
	// functional simulator.
	_ = faults.Fire(faults.PointDRAM)
	m.bytes[s] += bytes
	m.transfers++
	if m.byteMetrics[s] != nil {
		m.byteMetrics[s].Add(float64(bytes))
		m.transferMetrics.Inc()
	}
}

// RecordBurst accounts a multi-stream burst as a single transfer (e.g.
// one tile fill moving pixel and label planes together).
func (m *Model) RecordBurst(pixelBytes, labelBytes, centerBytes int64) {
	_ = faults.Fire(faults.PointDRAM)
	m.bytes[StreamPixels] += pixelBytes
	m.bytes[StreamLabels] += labelBytes
	m.bytes[StreamCenters] += centerBytes
	m.transfers++
	if m.transferMetrics != nil {
		m.byteMetrics[StreamPixels].Add(float64(max64(pixelBytes, 0)))
		m.byteMetrics[StreamLabels].Add(float64(max64(labelBytes, 0)))
		m.byteMetrics[StreamCenters].Add(float64(max64(centerBytes, 0)))
		m.transferMetrics.Inc()
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TotalBytes returns the accumulated traffic across all streams.
func (m *Model) TotalBytes() int64 {
	var t int64
	for _, b := range m.bytes {
		t += b
	}
	return t
}

// StreamBytes returns the traffic of one stream.
func (m *Model) StreamBytes(s Stream) int64 { return m.bytes[s] }

// Transfers returns the number of recorded bursts.
func (m *Model) Transfers() int64 { return m.transfers }

// TransferTime returns the total time spent in external transfers: the
// bandwidth-limited streaming time plus one access latency per burst.
func (m *Model) TransferTime() float64 {
	stream := float64(m.TotalBytes()) / m.cfg.BandwidthBytesPerSec
	lat := float64(m.transfers) * float64(m.cfg.LatencyCycles) / m.cfg.ClockHz
	return stream + lat
}

// Reset clears the accounting.
func (m *Model) Reset() {
	m.bytes = [numStreams]int64{}
	m.transfers = 0
}
