package slic

import (
	"math"

	"sslic/internal/fixed"
)

// Datapath models the reduced-precision hardware datapath for the
// bit-width exploration of §6.1. When Enabled, the Lab planes are
// quantized to ColorBits through the scratchpad encoding (the channel
// memories hold fixed-point color codes), and every Equation 5 distance
// is quantized to a DistBits-wide code with saturation — the paper's
// Color Distance Calculator "returns the 8-bit distance", and the 9:1
// minimum compares those codes.
//
// The paper's key observation — accuracy depends on *relative* distance
// comparisons, not absolute values — is exactly what this model stresses:
// coarse distance codes introduce ties and coarse color codes move the
// comparison outcomes, and §6.1 finds 8 bits of each is enough.
type Datapath struct {
	Enabled   bool
	ColorBits int
	DistBits  int
}

// Lab channel dynamic ranges used for quantization scaling: L ∈ [0, 100],
// a and b in [-128, 128) for 8-bit sRGB inputs.
const (
	labLRange  = 100.0
	labABRange = 256.0

	// maxDistCode is the full-scale (non-squared) distance the hardware
	// code range covers: the CIELAB space diagonal sqrt(100²+255²+255²)
	// ≈ 374 plus headroom for the spatial term at large m. Distances are
	// scaled against this before quantization, so an 8-bit code has a
	// resolution of about 1.75 Lab units — coarse codes at narrow widths
	// collapse nearby distances into ties, which is what degrades quality
	// below 7 bits in §6.1.
	maxDistCode = 448.0
)

// NewDatapath returns a datapath model with the same width for color and
// distance codes, the configuration §6.1 sweeps.
func NewDatapath(bits int) Datapath {
	return Datapath{Enabled: true, ColorBits: bits, DistBits: bits}
}

// QuantizeLab applies the color-code quantization in place. Disabled
// datapaths are a no-op, keeping the float64 reference path intact.
func (dp Datapath) QuantizeLab(lab *LabImage) {
	if !dp.Enabled {
		return
	}
	f := fixed.MustNew(dp.ColorBits, 0, false, fixed.Nearest)
	steps := float64(f.MaxRaw())
	for i := range lab.L {
		// Scale each channel to the code range, quantize, scale back.
		lab.L[i] = f.RoundTrip(lab.L[i]/labLRange*steps) / steps * labLRange
		lab.A[i] = f.RoundTrip((lab.A[i]+128)/labABRange*steps)/steps*labABRange - 128
		lab.B[i] = f.RoundTrip((lab.B[i]+128)/labABRange*steps)/steps*labABRange - 128
	}
}

// DistQuantizer returns the function applied to every squared Equation 5
// distance, or nil when the datapath is disabled. The quantizer maps the
// root-domain distance to its DistBits code and back, returning the
// squared value so callers keep comparing in the squared domain
// (monotone-equivalent).
func (dp Datapath) DistQuantizer() func(float64) float64 {
	if !dp.Enabled {
		return nil
	}
	f := fixed.MustNew(dp.DistBits, 0, false, fixed.Nearest)
	steps := float64(f.MaxRaw())
	return func(d2 float64) float64 {
		d := math.Sqrt(d2) / maxDistCode * steps
		dq := f.RoundTrip(d) / steps * maxDistCode
		return dq * dq
	}
}
