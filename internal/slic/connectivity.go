package slic

import "sslic/internal/imgio"

// EnforceConnectivity implements the final SLIC pass of §2: after k-means
// convergence some pixels may form small disjoint islands with the label
// of a distant superpixel. The pass relabels every 4-connected component;
// components smaller than minSize are absorbed into the adjacent
// component discovered immediately before them in scan order (the
// original SLIC heuristic). Labels are renumbered densely from 0.
//
// It returns the number of connected components after merging, i.e. the
// final superpixel count.
func EnforceConnectivity(labels *imgio.LabelMap, minSize int) int {
	w, h := labels.W, labels.H
	n := w * h
	newLabels := make([]int32, n)
	for i := range newLabels {
		newLabels[i] = -1
	}

	dx4 := [4]int{-1, 1, 0, 0}
	dy4 := [4]int{0, 0, -1, 1}

	stack := make([]int, 0, 1024)
	component := make([]int, 0, 1024)
	next := int32(0)
	adjacent := int32(0) // label of the component seen just before, per SLIC

	for seed := 0; seed < n; seed++ {
		if newLabels[seed] >= 0 {
			continue
		}
		lbl := labels.Labels[seed]
		// Find a previously finalized neighbor to absorb into if this
		// component turns out to be too small.
		sx, sy := seed%w, seed/w
		for k := 0; k < 4; k++ {
			nx, ny := sx+dx4[k], sy+dy4[k]
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			if v := newLabels[ny*w+nx]; v >= 0 {
				adjacent = v
			}
		}

		// Flood fill the 4-connected component of equal old labels.
		stack = append(stack[:0], seed)
		component = append(component[:0], seed)
		newLabels[seed] = next
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cx, cy := cur%w, cur/w
			for k := 0; k < 4; k++ {
				nx, ny := cx+dx4[k], cy+dy4[k]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				ni := ny*w + nx
				if newLabels[ni] < 0 && labels.Labels[ni] == lbl {
					newLabels[ni] = next
					stack = append(stack, ni)
					component = append(component, ni)
				}
			}
		}

		if len(component) < minSize && next > 0 {
			// Too small: absorb into the adjacent component.
			for _, i := range component {
				newLabels[i] = adjacent
			}
		} else {
			next++
		}
	}

	// Renumber densely (absorption may have left gaps only if every
	// component was merged, but a remap keeps the invariant simple).
	remap := make(map[int32]int32)
	for i, v := range newLabels {
		nv, ok := remap[v]
		if !ok {
			nv = int32(len(remap))
			remap[v] = nv
		}
		labels.Labels[i] = nv
	}
	return len(remap)
}
