package slic

import (
	"testing"
	"testing/quick"

	"sslic/internal/imgio"
)

// componentCount returns the number of 4-connected components in lm.
func componentCount(lm *imgio.LabelMap) int {
	w, h := lm.W, lm.H
	seen := make([]bool, w*h)
	count := 0
	var stack []int
	for seed := range seen {
		if seen[seed] {
			continue
		}
		count++
		lbl := lm.Labels[seed]
		stack = append(stack[:0], seed)
		seen[seed] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := cur%w, cur/w
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				ni := ny*w + nx
				if !seen[ni] && lm.Labels[ni] == lbl {
					seen[ni] = true
					stack = append(stack, ni)
				}
			}
		}
	}
	return count
}

func TestEnforceConnectivityMergesStrayPixel(t *testing.T) {
	// A single stray pixel of label 1 inside a sea of label 0.
	lm := imgio.NewLabelMap(8, 8)
	for i := range lm.Labels {
		lm.Labels[i] = 0
	}
	lm.Set(4, 4, 1)
	n := EnforceConnectivity(lm, 4)
	if n != 1 {
		t.Fatalf("regions after merge = %d, want 1", n)
	}
	if lm.At(4, 4) != lm.At(0, 0) {
		t.Fatal("stray pixel not absorbed")
	}
}

func TestEnforceConnectivityKeepsLargeRegions(t *testing.T) {
	// Two large halves must both survive.
	lm := imgio.NewLabelMap(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if x < 5 {
				lm.Set(x, y, 0)
			} else {
				lm.Set(x, y, 1)
			}
		}
	}
	n := EnforceConnectivity(lm, 10)
	if n != 2 {
		t.Fatalf("regions = %d, want 2", n)
	}
	if lm.At(0, 0) == lm.At(9, 9) {
		t.Fatal("halves merged incorrectly")
	}
}

func TestEnforceConnectivitySplitsDisjointSameLabel(t *testing.T) {
	// Label 0 appears in two disconnected blobs, both large: they must
	// get distinct labels afterwards (each label = one component).
	lm := imgio.NewLabelMap(12, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 12; x++ {
			switch {
			case x < 4:
				lm.Set(x, y, 0)
			case x < 8:
				lm.Set(x, y, 1)
			default:
				lm.Set(x, y, 0)
			}
		}
	}
	n := EnforceConnectivity(lm, 4)
	if n != 3 {
		t.Fatalf("regions = %d, want 3", n)
	}
	if lm.At(0, 0) == lm.At(11, 0) {
		t.Fatal("disjoint blobs share a label")
	}
}

func TestEnforceConnectivityDenseLabels(t *testing.T) {
	lm := imgio.NewLabelMap(9, 9)
	for i := range lm.Labels {
		lm.Labels[i] = int32((i * 7) % 5)
	}
	n := EnforceConnectivity(lm, 2)
	// Labels must be dense 0..n-1.
	maxLbl := lm.MaxLabel()
	if int(maxLbl)+1 != n {
		t.Fatalf("labels not dense: max %d for %d regions", maxLbl, n)
	}
	if lm.NumRegions() != n {
		t.Fatalf("NumRegions %d != returned %d", lm.NumRegions(), n)
	}
}

func TestEnforceConnectivityInvariantProperty(t *testing.T) {
	// For random label maps: after the pass, every label is 4-connected
	// (component count equals distinct label count) and every pixel is
	// assigned.
	prop := func(seed int64) bool {
		rng := newRand(seed)
		w := 6 + int(rng()%10)
		h := 6 + int(rng()%10)
		lm := imgio.NewLabelMap(w, h)
		for i := range lm.Labels {
			lm.Labels[i] = int32(rng() % 4)
		}
		n := EnforceConnectivity(lm, 3)
		if lm.NumRegions() != n {
			return false
		}
		return componentCount(lm) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEnforceConnectivityMinSizeSweep(t *testing.T) {
	// Larger minSize can only reduce (or keep) the region count.
	build := func() *imgio.LabelMap {
		lm := imgio.NewLabelMap(16, 16)
		for i := range lm.Labels {
			lm.Labels[i] = int32((i / 3) % 6)
		}
		return lm
	}
	prev := 1 << 30
	for _, minSize := range []int{1, 4, 16, 64} {
		lm := build()
		n := EnforceConnectivity(lm, minSize)
		if n > prev {
			t.Fatalf("region count increased with minSize %d: %d > %d", minSize, n, prev)
		}
		prev = n
	}
}

// newRand is a tiny deterministic generator for property tests.
func newRand(seed int64) func() uint32 {
	s := uint64(seed)*2862933555777941757 + 3037000493
	return func() uint32 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return uint32(s >> 32)
	}
}
