package slic

import (
	"math"
	"testing"

	"sslic/internal/imgio"
)

// testImage builds a w×h image split into vertical color bands, a shape
// SLIC must segment cleanly.
func testImage(w, h, bands int) *imgio.Image {
	im := imgio.NewImage(w, h)
	colors := [][3]uint8{
		{220, 40, 40}, {40, 220, 40}, {40, 40, 220},
		{220, 220, 40}, {40, 220, 220}, {220, 40, 220},
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := colors[(x*bands/w)%len(colors)]
			im.Set(x, y, c[0], c[1], c[2])
		}
	}
	return im
}

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams(100)
	if err := p.Validate(64, 64); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		w, h int
	}{
		{"zero K", Params{K: 0, Compactness: 10, MaxIters: 10}, 64, 64},
		{"K > N", Params{K: 10000, Compactness: 10, MaxIters: 10}, 16, 16},
		{"zero m", Params{K: 10, Compactness: 0, MaxIters: 10}, 64, 64},
		{"zero iters", Params{K: 10, Compactness: 10, MaxIters: 0}, 64, 64},
		{"bad size", Params{K: 10, Compactness: 10, MaxIters: 10}, 0, 64},
	}
	for _, c := range cases {
		if err := c.p.Validate(c.w, c.h); err == nil {
			t.Errorf("%s: Validate passed, want error", c.name)
		}
	}
}

func TestGridInterval(t *testing.T) {
	if s := GridInterval(100, 100, 100); math.Abs(s-10) > 1e-9 {
		t.Fatalf("S = %g, want 10", s)
	}
}

func TestInitCentersCountAndPlacement(t *testing.T) {
	im := testImage(60, 60, 3)
	lab := ToLab(im)
	centers := InitCenters(lab, 36, false)
	if len(centers) != 36 {
		t.Fatalf("got %d centers, want 36", len(centers))
	}
	for i, c := range centers {
		if c.X < 0 || c.X >= 60 || c.Y < 0 || c.Y >= 60 {
			t.Fatalf("center %d at (%g,%g) outside image", i, c.X, c.Y)
		}
	}
	// Centers must be spread: no two share a position.
	seen := map[[2]float64]bool{}
	for _, c := range centers {
		key := [2]float64{c.X, c.Y}
		if seen[key] {
			t.Fatalf("duplicate center position %v", key)
		}
		seen[key] = true
	}
}

func TestCenterGridDims(t *testing.T) {
	nx, ny := CenterGridDims(100, 100, 100)
	if nx != 10 || ny != 10 {
		t.Fatalf("grid %dx%d, want 10x10", nx, ny)
	}
	nx, ny = CenterGridDims(200, 100, 50)
	if nx*ny < 40 || nx*ny > 60 {
		t.Fatalf("effective K %d too far from 50", nx*ny)
	}
	if nx <= ny {
		t.Fatalf("wide image should have nx > ny, got %dx%d", nx, ny)
	}
}

func TestGradientPerturbationAvoidsEdges(t *testing.T) {
	// A sharp vertical edge down the middle: the gradient there is huge,
	// so a center initialized on the edge must move off it.
	im := imgio.NewImage(21, 21)
	for y := 0; y < 21; y++ {
		for x := 0; x < 21; x++ {
			if x >= 10 {
				im.Set(x, y, 255, 255, 255)
			}
		}
	}
	lab := ToLab(im)
	grad := GradientMap(lab)
	// Gradient at the edge column must exceed gradient in flat areas.
	if grad[10*21+10] <= grad[10*21+5] {
		t.Fatal("edge gradient not larger than flat gradient")
	}
	x, y := lowestGradient3x3(grad, 21, 21, 10, 10)
	if x == 10 {
		t.Fatalf("perturbation kept center on the edge column (%d,%d)", x, y)
	}
}

func TestGradientMapBordersInf(t *testing.T) {
	im := testImage(8, 8, 2)
	grad := GradientMap(ToLab(im))
	for x := 0; x < 8; x++ {
		if !math.IsInf(grad[x], 1) || !math.IsInf(grad[7*8+x], 1) {
			t.Fatal("top/bottom border gradient must be +Inf")
		}
	}
	for y := 0; y < 8; y++ {
		if !math.IsInf(grad[y*8], 1) || !math.IsInf(grad[y*8+7], 1) {
			t.Fatal("left/right border gradient must be +Inf")
		}
	}
}

func TestDistance5(t *testing.T) {
	c := &Center{L: 0, A: 0, B: 0, X: 0, Y: 0}
	// Pure color distance.
	if d := Distance5(3, 4, 0, 0, 0, c, 1); d != 25 {
		t.Fatalf("color distance = %g, want 25", d)
	}
	// Pure spatial distance with invS2 = m²/S² = 4.
	if d := Distance5(0, 0, 0, 3, 4, c, 4); d != 100 {
		t.Fatalf("spatial distance = %g, want 100", d)
	}
	// Distance to self is zero.
	if d := Distance5(0, 0, 0, 0, 0, c, 1); d != 0 {
		t.Fatalf("self distance = %g", d)
	}
}

func TestDistance5SymmetricInColor(t *testing.T) {
	c1 := &Center{L: 10, A: 5, B: -5}
	c2 := &Center{L: 20, A: -5, B: 5}
	d12 := Distance5(c2.L, c2.A, c2.B, 0, 0, c1, 1)
	d21 := Distance5(c1.L, c1.A, c1.B, 0, 0, c2, 1)
	if d12 != d21 {
		t.Fatalf("asymmetric: %g vs %g", d12, d21)
	}
}

func TestSegmentBasic(t *testing.T) {
	im := testImage(60, 40, 3)
	res, err := Segment(im, DefaultParams(24))
	if err != nil {
		t.Fatal(err)
	}
	// Every pixel labeled.
	for i, v := range res.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned", i)
		}
	}
	n := res.Labels.NumRegions()
	if n < 12 || n > 48 {
		t.Fatalf("region count %d too far from requested 24", n)
	}
	if res.Stats.Iterations != 10 {
		t.Fatalf("iterations = %d, want 10", res.Stats.Iterations)
	}
	if res.Stats.DistanceCalcs == 0 {
		t.Fatal("distance calcs not counted")
	}
}

func TestSegmentRespectsColorBoundaries(t *testing.T) {
	// Two halves of very different color: no superpixel may straddle the
	// boundary by much. Check label purity against the two halves.
	w, h := 64, 32
	im := imgio.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				im.Set(x, y, 250, 20, 20)
			} else {
				im.Set(x, y, 20, 20, 250)
			}
		}
	}
	res, err := Segment(im, DefaultParams(16))
	if err != nil {
		t.Fatal(err)
	}
	// For each label, count pixels on each side; impurity must be tiny.
	left := map[int32]int{}
	right := map[int32]int{}
	for i, v := range res.Labels.Labels {
		if (i % w) < w/2 {
			left[v]++
		} else {
			right[v]++
		}
	}
	var impure int
	for lbl, lc := range left {
		if rc := right[lbl]; rc > 0 && lc > 0 {
			if lc < rc {
				impure += lc
			} else {
				impure += rc
			}
		}
	}
	if impure > w*h/50 {
		t.Fatalf("%d pixels in straddling superpixels (>2%%)", impure)
	}
}

func TestSegmentConvergesWithThreshold(t *testing.T) {
	im := testImage(48, 48, 2)
	p := DefaultParams(16)
	p.Threshold = 0.5
	p.MaxIters = 50
	res, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge in 50 iterations on a trivial image")
	}
	if res.Stats.Iterations >= 50 {
		t.Fatal("threshold did not shorten the run")
	}
}

func TestSegmentDeterministic(t *testing.T) {
	im := testImage(40, 30, 3)
	a, err := Segment(im, DefaultParams(12))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Segment(im, DefaultParams(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels.Labels {
		if a.Labels.Labels[i] != b.Labels.Labels[i] {
			t.Fatal("segmentation not deterministic")
		}
	}
}

func TestSegmentErrorOnBadParams(t *testing.T) {
	im := testImage(16, 16, 2)
	if _, err := Segment(im, Params{}); err == nil {
		t.Fatal("want error for zero params")
	}
}

func TestUpdateCentersMovesToMean(t *testing.T) {
	// Single center, all pixels labeled 0: center must move to the image
	// centroid and mean color.
	im := testImage(10, 10, 1)
	lab := ToLab(im)
	labels := imgio.NewLabelMap(10, 10)
	for i := range labels.Labels {
		labels.Labels[i] = 0
	}
	centers := []Center{{X: 0, Y: 0}}
	move := UpdateCenters(lab, labels, centers)
	if math.Abs(centers[0].X-4.5) > 1e-9 || math.Abs(centers[0].Y-4.5) > 1e-9 {
		t.Fatalf("center at (%g,%g), want (4.5,4.5)", centers[0].X, centers[0].Y)
	}
	if move != 9 { // |4.5-0| + |4.5-0|
		t.Fatalf("move = %g, want 9", move)
	}
}

func TestUpdateCentersKeepsEmptyCenters(t *testing.T) {
	im := testImage(10, 10, 1)
	lab := ToLab(im)
	labels := imgio.NewLabelMap(10, 10)
	for i := range labels.Labels {
		labels.Labels[i] = 0
	}
	centers := []Center{{X: 1, Y: 1}, {X: 7, Y: 7, L: 42}}
	UpdateCenters(lab, labels, centers)
	if centers[1].X != 7 || centers[1].Y != 7 || centers[1].L != 42 {
		t.Fatal("empty center must keep its state")
	}
}

func TestSegmentWithDatapathStillSegments(t *testing.T) {
	im := testImage(48, 48, 3)
	p := DefaultParams(16)
	p.Datapath = NewDatapath(8)
	res, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned under 8-bit datapath", i)
		}
	}
	n := res.Labels.NumRegions()
	if n < 8 || n > 32 {
		t.Fatalf("region count %d unreasonable under 8-bit datapath", n)
	}
}

func TestDatapathNarrowWidthChangesMoreThanWide(t *testing.T) {
	im := testImage(48, 48, 4)
	ref, err := Segment(im, DefaultParams(16))
	if err != nil {
		t.Fatal(err)
	}
	diff := func(bits int) int {
		p := DefaultParams(16)
		p.Datapath = NewDatapath(bits)
		res, err := Segment(im, p)
		if err != nil {
			t.Fatal(err)
		}
		// Count boundary-mask disagreements as a label-permutation-proof
		// proxy for segmentation difference.
		bm0 := ref.Labels.BoundaryMask()
		bm1 := res.Labels.BoundaryMask()
		var d int
		for i := range bm0 {
			if bm0[i] != bm1[i] {
				d++
			}
		}
		return d
	}
	d4 := diff(4)
	d12 := diff(12)
	if d4 < d12 {
		t.Fatalf("4-bit datapath (%d boundary diffs) closer to reference than 12-bit (%d)", d4, d12)
	}
}
