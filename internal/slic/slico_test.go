package slic

import (
	"testing"

	"sslic/internal/imgio"
)

// texturedImage has a smooth half and a strongly textured half —
// the scenario SLICO's adaptive compactness exists for.
func texturedImage(w, h int) *imgio.Image {
	im := imgio.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				im.Set(x, y, 120, 120, 120) // smooth
			} else {
				// High-contrast checkerboard texture.
				if (x+y)%2 == 0 {
					im.Set(x, y, 40, 160, 220)
				} else {
					im.Set(x, y, 220, 100, 40)
				}
			}
		}
	}
	return im
}

func TestSLICOSegments(t *testing.T) {
	im := texturedImage(64, 48)
	p := DefaultParams(24)
	p.AdaptiveCompactness = true
	res, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned", i)
		}
	}
	n := res.Labels.NumRegions()
	if n < 12 || n > 48 {
		t.Fatalf("region count %d", n)
	}
}

func TestSLICODeterministic(t *testing.T) {
	im := texturedImage(48, 48)
	p := DefaultParams(16)
	p.AdaptiveCompactness = true
	a, _ := Segment(im, p)
	b, _ := Segment(im, p)
	for i := range a.Labels.Labels {
		if a.Labels.Labels[i] != b.Labels.Labels[i] {
			t.Fatal("SLICO not deterministic")
		}
	}
}

// TestSLICOEqualizesCompactness is the variant's reason to exist: with a
// single global m, superpixels in the textured half become far less
// compact than in the smooth half; SLICO's per-cluster normalization
// narrows that gap.
func TestSLICOEqualizesCompactness(t *testing.T) {
	im := texturedImage(96, 64)
	gap := func(adaptive bool) float64 {
		p := DefaultParams(24)
		p.Compactness = 5 // weak global m exaggerates the texture effect
		p.AdaptiveCompactness = adaptive
		res, err := Segment(im, p)
		if err != nil {
			t.Fatal(err)
		}
		// Mean region width of the boundary mask per half as a cheap
		// shape-raggedness proxy: count boundary pixels per half.
		mask := res.Labels.BoundaryMask()
		var left, right int
		for i, b := range mask {
			if !b {
				continue
			}
			if i%96 < 48 {
				left++
			} else {
				right++
			}
		}
		if left == 0 {
			return 1e9
		}
		return float64(right) / float64(left)
	}
	imbalance := func(ratio float64) float64 {
		if ratio > 1 {
			return ratio - 1
		}
		return 1 - ratio
	}
	plain := imbalance(gap(false))
	slico := imbalance(gap(true))
	if slico > plain {
		t.Fatalf("SLICO boundary-density imbalance %.2f not below plain %.2f", slico, plain)
	}
}
