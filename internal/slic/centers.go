package slic

import "math"

// InitCenters places superpixel centers on a regular grid with spacing
// S = sqrt(N/K) and optionally perturbs each to the lowest-gradient pixel
// in its 3×3 neighborhood (paper §2: "to avoid initialization on an edge
// or a noisy pixel"). The returned slice length is the effective K — the
// grid point count nearest to the requested K.
func InitCenters(lab *LabImage, k int, perturb bool) []Center {
	c, _ := InitCentersInto(lab, k, perturb, nil, nil)
	return c
}

// InitCentersInto is InitCenters with caller-owned scratch: the centers
// slice and the gradient buffer (only consulted when perturb is set)
// are reused when their capacity suffices. It returns the filled center
// slice and the gradient buffer so the caller can hand both back on the
// next frame.
func InitCentersInto(lab *LabImage, k int, perturb bool, centers []Center, grad []float64) ([]Center, []float64) {
	w, h := lab.W, lab.H
	s := GridInterval(w, h, k)
	nx := max(1, int(float64(w)/s+0.5))
	ny := max(1, int(float64(h)/s+0.5))

	if perturb {
		grad = GradientMapInto(lab, grad)
	}

	if cap(centers) < nx*ny {
		centers = make([]Center, 0, nx*ny)
	}
	centers = centers[:0]
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			// Cell-centered placement.
			x := min(w-1, int((float64(gx)+0.5)*float64(w)/float64(nx)))
			y := min(h-1, int((float64(gy)+0.5)*float64(h)/float64(ny)))
			if perturb {
				x, y = lowestGradient3x3(grad, w, h, x, y)
			}
			i := y*w + x
			centers = append(centers, Center{
				L: lab.L[i], A: lab.A[i], B: lab.B[i],
				X: float64(x), Y: float64(y),
			})
		}
	}
	return centers, grad
}

// CenterGridDims returns the (nx, ny) grid used by InitCenters for a w×h
// image and requested K; the effective superpixel count is nx*ny.
func CenterGridDims(w, h, k int) (nx, ny int) {
	s := GridInterval(w, h, k)
	return max(1, int(float64(w)/s+0.5)), max(1, int(float64(h)/s+0.5))
}

// GradientMap computes the squared gradient magnitude of §2's
// initialization step on all three Lab channels:
//
//	G(x,y) = ‖I(x+1,y) − I(x−1,y)‖² + ‖I(x,y+1) − I(x,y−1)‖²
//
// Border pixels get +Inf so perturbation never moves a center onto the
// image edge.
func GradientMap(lab *LabImage) []float64 {
	return GradientMapInto(lab, nil)
}

// GradientMapInto is GradientMap writing into a caller-owned buffer,
// reallocating only when its capacity is below W*H. Every element is
// overwritten, so a recycled buffer never leaks stale gradients.
func GradientMapInto(lab *LabImage, grad []float64) []float64 {
	w, h := lab.W, lab.H
	grad = growFloats(grad, w*h)
	for i := range grad {
		grad[i] = math.Inf(1)
	}
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			gx := sq(lab.L[i+1]-lab.L[i-1]) + sq(lab.A[i+1]-lab.A[i-1]) + sq(lab.B[i+1]-lab.B[i-1])
			gy := sq(lab.L[i+w]-lab.L[i-w]) + sq(lab.A[i+w]-lab.A[i-w]) + sq(lab.B[i+w]-lab.B[i-w])
			grad[i] = gx + gy
		}
	}
	return grad
}

// lowestGradient3x3 returns the coordinates of the minimum-gradient pixel
// in the 3×3 neighborhood of (x, y), ties resolved in favor of the
// original position first, then scan order.
func lowestGradient3x3(grad []float64, w, h, x, y int) (int, int) {
	bestX, bestY := x, y
	best := grad[y*w+x]
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := x+dx, y+dy
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			if g := grad[ny*w+nx]; g < best {
				best = g
				bestX, bestY = nx, ny
			}
		}
	}
	return bestX, bestY
}

func sq(v float64) float64 { return v * v }
