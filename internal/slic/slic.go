// Package slic implements the reference SLIC superpixel algorithm of
// Achanta et al. (TPAMI 2012) as described in §2 of the paper: CIELAB
// conversion, grid initialization with gradient-based perturbation,
// iterative assignment within a 2S×2S window per center, center updates
// until the residual drops below a threshold, and a final connectivity
// enforcement pass.
//
// The package also exports the primitives shared with the subsampled
// variant in internal/sslic: Lab image planes, center bookkeeping,
// the distance function of Equation 5, the connectivity pass, and the
// optional fixed-point datapath model used by the bit-width exploration.
package slic

import (
	"fmt"
	"math"
	"time"

	"sslic/internal/colorspace"
	"sslic/internal/imgio"
)

// Params configures a SLIC run. The zero value is not valid; use
// DefaultParams and adjust.
type Params struct {
	// K is the requested number of superpixels. The effective count is
	// the nearest regular grid (paper: S = sqrt(N/K) spacing).
	K int
	// Compactness is m in Equation 5, balancing color vs spatial distance.
	// The paper states m is generally set between 1 and 40.
	Compactness float64
	// MaxIters bounds the number of full assignment/update iterations.
	MaxIters int
	// Threshold stops iterating when the summed center movement (L1, in
	// pixels) per center falls below it. Zero keeps iterating to MaxIters.
	Threshold float64
	// PerturbCenters moves each initial center to the lowest-gradient
	// position in its 3×3 neighborhood (paper §2).
	PerturbCenters bool
	// EnforceConnectivity runs the final stray-pixel reassignment pass.
	EnforceConnectivity bool
	// MinRegionDivisor sets the minimum connected-region size to
	// S*S/MinRegionDivisor during connectivity enforcement (default 4).
	MinRegionDivisor int
	// Datapath optionally models a reduced-precision hardware datapath;
	// see the Datapath type. Zero value = full float64.
	Datapath Datapath
	// AdaptiveCompactness enables the SLICO variant of the original
	// authors' release: instead of one global m, every superpixel
	// normalizes its color distance by the largest color distance
	// observed in the cluster during the previous iteration, making the
	// compactness parameter-free and the superpixel shapes uniform
	// across textured and smooth regions.
	AdaptiveCompactness bool
}

// DefaultParams returns the parameter set used throughout the paper's
// evaluation: m=10, 10 iterations, gradient perturbation and
// connectivity enforcement on.
func DefaultParams(k int) Params {
	return Params{
		K:                   k,
		Compactness:         10,
		MaxIters:            10,
		Threshold:           0,
		PerturbCenters:      true,
		EnforceConnectivity: true,
		MinRegionDivisor:    4,
	}
}

// Validate reports whether the parameters are usable for a w×h image.
func (p Params) Validate(w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("slic: invalid image size %dx%d", w, h)
	}
	if p.K < 1 {
		return fmt.Errorf("slic: K = %d, want >= 1", p.K)
	}
	if p.K > w*h {
		return fmt.Errorf("slic: K = %d exceeds pixel count %d", p.K, w*h)
	}
	if p.Compactness <= 0 {
		return fmt.Errorf("slic: compactness %g, want > 0", p.Compactness)
	}
	if p.MaxIters < 1 {
		return fmt.Errorf("slic: MaxIters = %d, want >= 1", p.MaxIters)
	}
	return nil
}

// Center is the 5-dimensional superpixel descriptor [L, a, b, x, y] of §2.
type Center struct {
	L, A, B float64
	X, Y    float64
}

// LabImage holds the CIELAB planes of an image in float64.
type LabImage struct {
	W, H    int
	L, A, B []float64
}

// Pixels returns W*H.
func (li *LabImage) Pixels() int { return li.W * li.H }

// Stats accumulates per-phase timings and operation counts, feeding the
// Table 1 breakdown and the Table 2 op-count analysis.
type Stats struct {
	ColorConvTime time.Duration
	InitTime      time.Duration
	AssignTime    time.Duration // distance + min phase
	UpdateTime    time.Duration // center update phase
	OtherTime     time.Duration // connectivity + misc

	DistanceCalcs int64 // number of Equation 5 evaluations
	CenterUpdates int64 // number of center recomputations
	Iterations    int
	Converged     bool
	// MoveHistory records the mean per-center L1 movement after every
	// iteration — the residual the convergence test watches (Figure 1's
	// "center movement > threshold?" loop).
	MoveHistory []float64
}

// Total returns the summed phase time.
func (s Stats) Total() time.Duration {
	return s.ColorConvTime + s.InitTime + s.AssignTime + s.UpdateTime + s.OtherTime
}

// Result is the output of a segmentation run.
type Result struct {
	Labels  *imgio.LabelMap
	Centers []Center
	Stats   Stats
}

// GridInterval returns S = sqrt(N/K), the center grid spacing of §2.
func GridInterval(w, h, k int) float64 {
	return math.Sqrt(float64(w*h) / float64(k))
}

// ToLab converts an 8-bit RGB image to float64 CIELAB planes through the
// reference Equations 1-4.
func ToLab(im *imgio.Image) *LabImage {
	l, a, b := colorspace.ConvertImageToLab(im.C0, im.C1, im.C2)
	return &LabImage{W: im.W, H: im.H, L: l, A: a, B: b}
}

// ToLabInto is ToLab writing into dst, growing its planes only when the
// frame outgrows their capacity. A stream of same-geometry frames
// therefore converts with zero allocations after the first — the planes
// are the largest per-frame buffers (24 bytes/pixel) the CPU pipeline
// otherwise reallocates.
func ToLabInto(dst *LabImage, im *imgio.Image) {
	n := im.W * im.H
	dst.W, dst.H = im.W, im.H
	dst.L = growFloats(dst.L, n)
	dst.A = growFloats(dst.A, n)
	dst.B = growFloats(dst.B, n)
	colorspace.ConvertImageToLabInto(im.C0, im.C1, im.C2, dst.L, dst.A, dst.B)
}

// growFloats returns s resliced to length n, reallocating only when the
// capacity is insufficient.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Segment runs the full SLIC pipeline of Figure 1a on an RGB image.
func Segment(im *imgio.Image, p Params) (*Result, error) {
	if err := p.Validate(im.W, im.H); err != nil {
		return nil, err
	}
	var st Stats

	t0 := time.Now()
	lab := ToLab(im)
	p.Datapath.QuantizeLab(lab)
	st.ColorConvTime = time.Since(t0)

	t0 = time.Now()
	centers := InitCenters(lab, p.K, p.PerturbCenters)
	st.InitTime = time.Since(t0)

	labels := imgio.NewLabelMap(im.W, im.H)
	s := GridInterval(im.W, im.H, p.K)
	invS2 := p.Compactness * p.Compactness / (s * s)

	dist := make([]float64, lab.Pixels())
	quant := p.Datapath.DistQuantizer()
	// SLICO state: per-center maximum squared color distance from the
	// previous iteration, seeded with m².
	var maxDc2 []float64
	if p.AdaptiveCompactness {
		maxDc2 = make([]float64, len(centers))
		for i := range maxDc2 {
			maxDc2[i] = p.Compactness * p.Compactness
		}
	}
	for it := 0; it < p.MaxIters; it++ {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		t0 = time.Now()
		st.DistanceCalcs += assignWindowed(lab, centers, labels, dist, s, invS2, quant, maxDc2)
		st.AssignTime += time.Since(t0)

		t0 = time.Now()
		move := UpdateCenters(lab, labels, centers)
		st.CenterUpdates += int64(len(centers))
		st.UpdateTime += time.Since(t0)
		st.Iterations = it + 1
		st.MoveHistory = append(st.MoveHistory, move/float64(len(centers)))

		if p.Threshold > 0 && move/float64(len(centers)) < p.Threshold {
			st.Converged = true
			break
		}
	}

	t0 = time.Now()
	if p.EnforceConnectivity {
		minSize := int(s*s) / max(1, p.MinRegionDivisor)
		EnforceConnectivity(labels, minSize)
	}
	st.OtherTime = time.Since(t0)

	return &Result{Labels: labels, Centers: centers, Stats: st}, nil
}

// assignWindowed performs one CPA-style assignment sweep: for each center,
// every pixel inside the 2S×2S window centered on it is tested against
// Equation 5 and claims the center if the distance beats the pixel's
// current minimum. Returns the number of distance evaluations.
func assignWindowed(lab *LabImage, centers []Center, labels *imgio.LabelMap, dist []float64, s, invS2 float64, quant func(float64) float64, maxDc2 []float64) int64 {
	var calcs int64
	w, h := lab.W, lab.H
	invS2spatial := 1 / (s * s)
	var newMax []float64
	if maxDc2 != nil {
		newMax = make([]float64, len(centers))
	}
	for ci := range centers {
		c := &centers[ci]
		x0 := max(0, int(c.X-s))
		x1 := min(w-1, int(c.X+s))
		y0 := max(0, int(c.Y-s))
		y1 := min(h-1, int(c.Y+s))
		for y := y0; y <= y1; y++ {
			row := y * w
			for x := x0; x <= x1; x++ {
				i := row + x
				var d float64
				var dc2 float64
				if maxDc2 != nil {
					var ds2 float64
					dc2, ds2 = DistanceParts(lab.L[i], lab.A[i], lab.B[i], float64(x), float64(y), c)
					// SLICO: normalize color by the cluster's own scale
					// and space by S².
					d = dc2/maxDc2[ci] + ds2*invS2spatial
				} else {
					d = Distance5(lab.L[i], lab.A[i], lab.B[i], float64(x), float64(y), c, invS2)
				}
				if quant != nil {
					d = quant(d)
				}
				calcs++
				if d < dist[i] {
					dist[i] = d
					labels.Labels[i] = int32(ci)
					if newMax != nil && dc2 > newMax[ci] {
						newMax[ci] = dc2
					}
				}
			}
		}
	}
	if maxDc2 != nil {
		for i, v := range newMax {
			if v > 1 { // keep a floor so the normalization never explodes
				maxDc2[i] = v
			}
		}
	}
	return calcs
}

// DistanceParts returns the squared color and spatial components of
// Equation 5 separately, for compactness-normalizing variants (SLICO).
func DistanceParts(l, a, b, x, y float64, c *Center) (dc2, ds2 float64) {
	dl := l - c.L
	da := a - c.A
	db := b - c.B
	dx := x - c.X
	dy := y - c.Y
	return dl*dl + da*da + db*db, dx*dx + dy*dy
}

// Distance5 evaluates the squared form of Equation 5:
//
//	d² = dc² + m²·ds²/S²
//
// where dc is the CIELAB Euclidean distance between the pixel and the
// center and ds the spatial Euclidean distance. invS2 carries the
// precomputed m²/S². Comparing d² instead of d is monotone-equivalent and
// is what the hardware does — it avoids the square root entirely.
func Distance5(l, a, b, x, y float64, c *Center, invS2 float64) float64 {
	dl := l - c.L
	da := a - c.A
	db := b - c.B
	dx := x - c.X
	dy := y - c.Y
	return dl*dl + da*da + db*db + (dx*dx+dy*dy)*invS2
}

// UpdateCenters recomputes every center as the mean of its member pixels
// and returns the total L1 movement in the (x, y) plane — the residual the
// convergence test uses. Centers that lost all members keep their
// position.
func UpdateCenters(lab *LabImage, labels *imgio.LabelMap, centers []Center) float64 {
	type sigma struct {
		l, a, b, x, y float64
		n             int
	}
	acc := make([]sigma, len(centers))
	w := lab.W
	for i, lbl := range labels.Labels {
		if lbl < 0 {
			continue
		}
		sg := &acc[lbl]
		sg.l += lab.L[i]
		sg.a += lab.A[i]
		sg.b += lab.B[i]
		sg.x += float64(i % w)
		sg.y += float64(i / w)
		sg.n++
	}
	var move float64
	for ci := range centers {
		sg := acc[ci]
		if sg.n == 0 {
			continue
		}
		n := float64(sg.n)
		c := &centers[ci]
		nx, ny := sg.x/n, sg.y/n
		move += math.Abs(nx-c.X) + math.Abs(ny-c.Y)
		c.L, c.A, c.B, c.X, c.Y = sg.l/n, sg.a/n, sg.b/n, nx, ny
	}
	return move
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
