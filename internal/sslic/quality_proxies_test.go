package sslic

import (
	"math"
	"testing"

	"sslic/internal/quality"
	"sslic/internal/slic"
)

// proxyStats is the subset of Stats the quality tracker consumes. The
// observability layer promises these are deterministic: they derive
// from the final labeling, which is identical across TileWorkers on
// both datapaths.
type proxyStats struct {
	empty    int
	boundary int
	sizeCV   float64
}

func proxiesOf(r *Result) proxyStats {
	return proxyStats{
		empty:    r.Stats.EmptyClusters,
		boundary: r.Stats.BoundaryPixels,
		sizeCV:   r.Stats.ClusterSizeCV,
	}
}

// TestQualityProxiesDeterministicAcrossWorkers: the proxies exported to
// /debug/streams must not depend on the parallelism the frame happened
// to run with, on either datapath.
func TestQualityProxiesDeterministicAcrossWorkers(t *testing.T) {
	im := testImage(128, 96)
	for _, tc := range []struct {
		name  string
		fixed bool
	}{
		{"float64", false},
		{"fixed", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) *Result {
				p := DefaultParams(48, 0.5)
				p.TileWorkers = workers
				if tc.fixed {
					p.Quantization = slic.NewDatapath(8)
				}
				r, err := Segment(im, p)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return r
			}
			serial := run(1)
			want := proxiesOf(serial)
			if want.boundary == 0 {
				t.Fatal("test frame produced no boundary pixels; proxies would be vacuous")
			}
			for _, workers := range []int{2, 8} {
				r := run(workers)
				for i := range serial.Labels.Labels {
					if serial.Labels.Labels[i] != r.Labels.Labels[i] {
						t.Fatalf("workers=%d: label mismatch at %d", workers, i)
					}
				}
				if got := proxiesOf(r); got != want {
					t.Fatalf("workers=%d: proxies %+v, want %+v", workers, got, want)
				}
			}
		})
	}
}

// TestQualityProxiesScratchIdentity: supplying reusable working memory
// must not perturb the labeling or the proxies, including when the
// scratch is warm from a previous (different) frame.
func TestQualityProxiesScratchIdentity(t *testing.T) {
	im := testImage(96, 64)
	params := func() Params {
		p := DefaultParams(32, 0.5)
		p.TileWorkers = 4
		return p
	}

	p := params()
	fresh, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}

	scratch := &Scratch{}
	// Warm the scratch on a different geometry first, then run the
	// frame under test with it.
	warmup := testImage(64, 48)
	pw := params()
	pw.Scratch = scratch
	if _, err := Segment(warmup, pw); err != nil {
		t.Fatal(err)
	}
	ps := params()
	ps.Scratch = scratch
	reused, err := Segment(im, ps)
	if err != nil {
		t.Fatal(err)
	}

	for i := range fresh.Labels.Labels {
		if fresh.Labels.Labels[i] != reused.Labels.Labels[i] {
			t.Fatalf("label mismatch at %d with reused scratch", i)
		}
	}
	if proxiesOf(fresh) != proxiesOf(reused) {
		t.Fatalf("proxies drifted with reused scratch: %+v vs %+v",
			proxiesOf(reused), proxiesOf(fresh))
	}
}

// TestBoundaryPixelsMatchesStandaloneScan: the in-core counter (folded
// into the connectivity sweep) and the quality package's standalone
// 4-neighbor scan are two implementations of the same definition.
func TestBoundaryPixelsMatchesStandaloneScan(t *testing.T) {
	im := testImage(96, 64)
	r, err := Segment(im, DefaultParams(32, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	n := im.W * im.H
	density := quality.BoundaryDensity(r.Labels)
	got := int(math.Round(density * float64(n)))
	if got != r.Stats.BoundaryPixels {
		t.Fatalf("standalone scan counts %d boundary pixels, core counted %d",
			got, r.Stats.BoundaryPixels)
	}
}
