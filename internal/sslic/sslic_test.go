package sslic

import (
	"math"
	"testing"

	"sslic/internal/imgio"
	"sslic/internal/slic"
)

// testImage builds a w×h image split into colored quadrants plus a smooth
// gradient so subsampled passes have structure to converge on.
func testImage(w, h int) *imgio.Image {
	im := imgio.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b uint8
			switch {
			case x < w/2 && y < h/2:
				r, g, b = 230, 50, 50
			case x >= w/2 && y < h/2:
				r, g, b = 50, 230, 50
			case x < w/2:
				r, g, b = 50, 50, 230
			default:
				r, g, b = 230, 230, 50
			}
			// Mild gradient so pixels are not perfectly uniform.
			r += uint8(x % 16)
			g += uint8(y % 16)
			im.Set(x, y, r, g, b)
		}
	}
	return im
}

func TestParamsSubsets(t *testing.T) {
	cases := []struct {
		ratio float64
		want  int
	}{{1, 1}, {0.5, 2}, {0.25, 4}, {0.125, 8}, {0.33, 3}}
	for _, c := range cases {
		p := DefaultParams(100, c.ratio)
		if got := p.Subsets(); got != c.want {
			t.Errorf("Subsets(%g) = %d, want %d", c.ratio, got, c.want)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DefaultParams(16, 0.5)
	bad := []func(*Params){
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.K = 1 << 30 },
		func(p *Params) { p.Compactness = 0 },
		func(p *Params) { p.FullIters = 0 },
		func(p *Params) { p.SubsampleRatio = 0 },
		func(p *Params) { p.SubsampleRatio = 1.5 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if err := p.Validate(64, 64); err == nil {
			t.Errorf("case %d: Validate passed, want error", i)
		}
	}
	if err := base.Validate(0, 64); err == nil {
		t.Error("zero width accepted")
	}
}

func TestTilingCandidates(t *testing.T) {
	tl := NewTiling(100, 100, 100) // 10×10 grid
	if tl.NX != 10 || tl.NY != 10 {
		t.Fatalf("grid %dx%d", tl.NX, tl.NY)
	}
	// Interior tile has 9 candidates.
	if n := len(tl.Candidates[5*10+5]); n != 9 {
		t.Fatalf("interior candidates = %d, want 9", n)
	}
	// Corner tile has 4.
	if n := len(tl.Candidates[0]); n != 4 {
		t.Fatalf("corner candidates = %d, want 4", n)
	}
	// Edge tile has 6.
	if n := len(tl.Candidates[5]); n != 6 {
		t.Fatalf("edge candidates = %d, want 6", n)
	}
}

func TestTilingCandidatesContainOwnCell(t *testing.T) {
	tl := NewTiling(64, 48, 48)
	for ti, cand := range tl.Candidates {
		found := false
		for _, ci := range cand {
			if ci == int32(ti) {
				found = true
			}
		}
		if !found {
			t.Fatalf("tile %d candidate list lacks its own center", ti)
		}
	}
}

func TestTileOfCoversAllTiles(t *testing.T) {
	tl := NewTiling(60, 40, 24)
	seen := make([]bool, tl.NumTiles())
	for y := 0; y < 40; y++ {
		for x := 0; x < 60; x++ {
			ti := tl.TileOf(x, y)
			if ti < 0 || ti >= tl.NumTiles() {
				t.Fatalf("TileOf(%d,%d) = %d out of range", x, y, ti)
			}
			seen[ti] = true
		}
	}
	for ti, s := range seen {
		if !s {
			t.Fatalf("tile %d has no pixels", ti)
		}
	}
}

func TestSubsetSchemesPartitionPixels(t *testing.T) {
	// Every scheme must assign each pixel to exactly one subset in [0, k)
	// and split the image into roughly equal parts.
	w, h := 64, 48
	for _, scheme := range []Scheme{Interleaved, Rows, Blocks, Hashed} {
		for _, k := range []int{2, 3, 4} {
			counts := make([]int, k)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					s := subsetOf(scheme, x, y, w, h, k)
					if s < 0 || s >= k {
						t.Fatalf("%v: subset %d out of [0,%d)", scheme, s, k)
					}
					counts[s]++
				}
			}
			total := w * h
			for s, c := range counts {
				if c < total/k/2 || c > total/k*2 {
					t.Errorf("%v k=%d: subset %d has %d of %d pixels — too skewed", scheme, k, s, c, total)
				}
			}
		}
	}
}

func TestSegmentPPAFullRatioBasic(t *testing.T) {
	im := testImage(60, 40)
	res, err := Segment(im, DefaultParams(24, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned", i)
		}
	}
	if res.Stats.SubsetPasses != 10 {
		t.Fatalf("passes = %d, want 10", res.Stats.SubsetPasses)
	}
	if res.Stats.Iterations != 10 {
		t.Fatalf("iterations = %d, want 10", res.Stats.Iterations)
	}
}

func TestSegmentSubsampledVisitsFewerPixelsPerPass(t *testing.T) {
	im := testImage(64, 48)
	full, err := Segment(im, DefaultParams(24, 1))
	if err != nil {
		t.Fatal(err)
	}
	half, err := Segment(im, DefaultParams(24, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// Equal FullIters → equal total pixel visits → similar total distance
	// calcs (within 5%), but twice the passes.
	if half.Stats.SubsetPasses != 2*full.Stats.SubsetPasses {
		t.Fatalf("passes: half=%d full=%d", half.Stats.SubsetPasses, full.Stats.SubsetPasses)
	}
	ratio := float64(half.Stats.DistanceCalcs) / float64(full.Stats.DistanceCalcs)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("distance calc ratio %g, want ~1 for equal full iterations", ratio)
	}
	// And twice the center updates.
	if half.Stats.CenterUpdates != 2*full.Stats.CenterUpdates {
		t.Fatalf("center updates: half=%d full=%d", half.Stats.CenterUpdates, full.Stats.CenterUpdates)
	}
}

func TestSegmentSubsampledQualityClose(t *testing.T) {
	// S-SLIC(0.5) must produce a segmentation close to full-ratio PPA on
	// a structured image: the quadrant boundaries must be respected.
	im := testImage(64, 64)
	res, err := Segment(im, DefaultParams(16, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// No superpixel may straddle the vertical midline by much.
	w := 64
	left := map[int32]int{}
	right := map[int32]int{}
	for i, v := range res.Labels.Labels {
		if (i % w) < w/2 {
			left[v]++
		} else {
			right[v]++
		}
	}
	var impure int
	for lbl, lc := range left {
		if rc := right[lbl]; rc > 0 && lc > 0 {
			impure += minInt(lc, rc)
		}
	}
	if impure > 64*64/25 {
		t.Fatalf("%d pixels straddle the color boundary (>4%%)", impure)
	}
}

func TestSegmentAllSchemes(t *testing.T) {
	im := testImage(48, 48)
	for _, scheme := range []Scheme{Interleaved, Rows, Blocks, Hashed} {
		p := DefaultParams(16, 0.25)
		p.Scheme = scheme
		res, err := Segment(im, p)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for i, v := range res.Labels.Labels {
			if v < 0 {
				t.Fatalf("%v: pixel %d unassigned", scheme, i)
			}
		}
	}
}

func TestSegmentCPA(t *testing.T) {
	im := testImage(60, 40)
	p := DefaultParams(24, 0.5)
	p.Arch = CPA
	res, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned", i)
		}
	}
	if res.Stats.DistanceCalcs == 0 {
		t.Fatal("CPA counted no distance calcs")
	}
	n := res.Labels.NumRegions()
	if n < 12 || n > 48 {
		t.Fatalf("CPA region count %d too far from 24", n)
	}
}

func TestCPAvsPPAQualitySimilar(t *testing.T) {
	// §4.2: "The PPA shows almost same but slightly better SLIC accuracy
	// than the CPA". Check both respect the quadrant boundaries about
	// equally on a clean image.
	im := testImage(64, 64)
	impurity := func(arch Arch) int {
		p := DefaultParams(16, 1)
		p.Arch = arch
		res, err := Segment(im, p)
		if err != nil {
			t.Fatal(err)
		}
		w := 64
		left := map[int32]int{}
		right := map[int32]int{}
		for i, v := range res.Labels.Labels {
			if (i % w) < w/2 {
				left[v]++
			} else {
				right[v]++
			}
		}
		var imp int
		for lbl, lc := range left {
			if rc := right[lbl]; rc > 0 && lc > 0 {
				imp += minInt(lc, rc)
			}
		}
		return imp
	}
	ppa := impurity(PPA)
	cpa := impurity(CPA)
	if ppa > 64*64/25 || cpa > 64*64/25 {
		t.Fatalf("impurity too high: PPA=%d CPA=%d", ppa, cpa)
	}
}

func TestSegmentDeterministic(t *testing.T) {
	im := testImage(48, 36)
	a, _ := Segment(im, DefaultParams(12, 0.5))
	b, _ := Segment(im, DefaultParams(12, 0.5))
	for i := range a.Labels.Labels {
		if a.Labels.Labels[i] != b.Labels.Labels[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestSegmentThresholdConverges(t *testing.T) {
	im := testImage(48, 48)
	p := DefaultParams(16, 0.5)
	p.Threshold = 0.5
	p.FullIters = 50
	res, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge")
	}
	if res.Stats.SubsetPasses >= 100 {
		t.Fatal("threshold did not stop the run early")
	}
}

func TestPreemptiveSavesWork(t *testing.T) {
	im := testImage(96, 96)
	base := DefaultParams(36, 0.5)
	base.FullIters = 12
	pre := base
	pre.Preemptive = true
	r0, err := Segment(im, base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Segment(im, pre)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.SkippedTiles == 0 {
		t.Fatal("preemptive run skipped no tiles on a convergent image")
	}
	if r1.Stats.DistanceCalcs >= r0.Stats.DistanceCalcs {
		t.Fatalf("preemption saved nothing: %d vs %d calcs",
			r1.Stats.DistanceCalcs, r0.Stats.DistanceCalcs)
	}
	// Quality must stay close: region counts within 30%.
	n0, n1 := r0.Labels.NumRegions(), r1.Labels.NumRegions()
	if math.Abs(float64(n0-n1)) > 0.3*float64(n0) {
		t.Fatalf("preemption changed region count too much: %d vs %d", n0, n1)
	}
}

func TestSegmentWithDatapath(t *testing.T) {
	im := testImage(48, 48)
	p := DefaultParams(16, 0.5)
	p.Quantization = slic.NewDatapath(8)
	res, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned", i)
		}
	}
}

func TestArchAndSchemeStrings(t *testing.T) {
	if PPA.String() != "PPA" || CPA.String() != "CPA" {
		t.Fatal("Arch strings")
	}
	names := map[Scheme]string{Interleaved: "interleaved", Rows: "rows", Blocks: "blocks", Hashed: "hashed"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
