package sslic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sslic/internal/slic"

	"sslic/internal/imgio"
)

// randomImage fills an image with uniform noise — the adversarial input
// for a clustering algorithm.
func randomImage(rng *rand.Rand, w, h int) *imgio.Image {
	im := imgio.NewImage(w, h)
	rng.Read(im.C0)
	rng.Read(im.C1)
	rng.Read(im.C2)
	return im
}

// TestSegmentInvariantsOnRandomImages drives Segment with random sizes,
// K values, ratios and architectures and checks the structural
// invariants that must hold regardless of content:
//
//  1. every pixel carries a label,
//  2. labels are dense in [0, NumRegions) after connectivity,
//  3. every label is 4-connected,
//  4. final centers lie inside the image.
func TestSegmentInvariantsOnRandomImages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 16 + r.Intn(60)
		h := 16 + r.Intn(60)
		k := 2 + r.Intn(20)
		ratios := []float64{1, 0.5, 0.25}
		archs := []Arch{PPA, CPA}
		p := DefaultParams(k, ratios[r.Intn(len(ratios))])
		p.Arch = archs[r.Intn(len(archs))]
		p.FullIters = 1 + r.Intn(4)
		im := randomImage(rng, w, h)
		res, err := Segment(im, p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		n := res.Labels.NumRegions()
		maxLbl := res.Labels.MaxLabel()
		if int(maxLbl)+1 != n {
			t.Logf("seed %d: labels not dense: max %d for %d regions", seed, maxLbl, n)
			return false
		}
		for _, v := range res.Labels.Labels {
			if v < 0 || int(v) >= n {
				t.Logf("seed %d: label %d out of range", seed, v)
				return false
			}
		}
		if !allConnected(res.Labels) {
			t.Logf("seed %d: disconnected label after connectivity pass", seed)
			return false
		}
		for _, c := range res.Centers {
			if c.X < 0 || c.X >= float64(w) || c.Y < 0 || c.Y >= float64(h) {
				t.Logf("seed %d: center (%g,%g) outside %dx%d", seed, c.X, c.Y, w, h)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// allConnected verifies every label forms one 4-connected component.
func allConnected(lm *imgio.LabelMap) bool {
	w, h := lm.W, lm.H
	seen := make([]bool, w*h)
	comps := map[int32]int{}
	var stack []int
	for seed := range seen {
		if seen[seed] {
			continue
		}
		lbl := lm.Labels[seed]
		comps[lbl]++
		if comps[lbl] > 1 {
			return false
		}
		stack = append(stack[:0], seed)
		seen[seed] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := cur%w, cur/w
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				ni := ny*w + nx
				if !seen[ni] && lm.Labels[ni] == lbl {
					seen[ni] = true
					stack = append(stack, ni)
				}
			}
		}
	}
	return true
}

// TestSegmentExtremeParameters exercises the parameter edges: K=1, K
// close to the pixel count, very small images, extreme compactness.
func TestSegmentExtremeParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name string
		w, h int
		p    Params
	}{
		{"K1", 24, 24, DefaultParams(1, 0.5)},
		{"huge compactness", 24, 24, func() Params { p := DefaultParams(8, 0.5); p.Compactness = 40; return p }()},
		{"tiny compactness", 24, 24, func() Params { p := DefaultParams(8, 0.5); p.Compactness = 1; return p }()},
		{"tiny image", 4, 4, DefaultParams(2, 1)},
		{"one-pixel rows", 32, 2, DefaultParams(4, 0.5)},
		{"deep subsampling", 32, 32, DefaultParams(8, 0.125)},
	}
	for _, c := range cases {
		im := randomImage(rng, c.w, c.h)
		res, err := Segment(im, c.p)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		for i, v := range res.Labels.Labels {
			if v < 0 {
				t.Errorf("%s: pixel %d unassigned", c.name, i)
				break
			}
		}
	}
}

// TestSegmentWithDatapathNeverPanics sweeps the datapath widths against
// random noise — the quantization paths must saturate, never wrap or
// crash.
func TestSegmentWithDatapathNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	im := randomImage(rng, 40, 40)
	for bits := 2; bits <= 16; bits++ {
		p := DefaultParams(8, 0.5)
		p.FullIters = 2
		p.Quantization = slic.NewDatapath(bits)
		if _, err := Segment(im, p); err != nil {
			t.Errorf("bits=%d: %v", bits, err)
		}
	}
}
