package sslic

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sslic/internal/dataset"
	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/metrics"
	"sslic/internal/slic"
	"sslic/internal/telemetry"
)

// bestMatchDisagreement maps each label of got onto the label of want it
// overlaps most, then counts the pixels outside that majority mapping.
// Raw label comparison between independent runs is meaningless — the
// connectivity sweep renumbers components — so parity between the fixed
// and float datapaths is measured on matched regions.
func bestMatchDisagreement(got, want *imgio.LabelMap) float64 {
	overlap := map[[2]int32]int{}
	for i := range got.Labels {
		overlap[[2]int32{got.Labels[i], want.Labels[i]}]++
	}
	best := map[int32]int32{}
	bestN := map[int32]int{}
	for k, n := range overlap {
		if n > bestN[k[0]] {
			bestN[k[0]] = n
			best[k[0]] = k[1]
		}
	}
	bad := 0
	for i := range got.Labels {
		if best[got.Labels[i]] != want.Labels[i] {
			bad++
		}
	}
	return float64(bad) / float64(len(got.Labels))
}

// fixedParams is the common fixed-datapath configuration of this file.
func fixedParams(k int, ratio float64) Params {
	p := DefaultParams(k, ratio)
	p.Datapath = Fixed
	return p
}

func TestFixedDatapathValidation(t *testing.T) {
	im := testImage(32, 32)
	cases := []struct {
		name string
		mod  func(*Params)
	}{
		{"unknown datapath", func(p *Params) { p.Datapath = DatapathKind(9) }},
		{"fixed on CPA", func(p *Params) { p.Arch = CPA }},
		{"fixed with quantization", func(p *Params) { p.Quantization = slic.NewDatapath(8) }},
		{"fixed with software center update", func(p *Params) { p.SoftwareCenterUpdate = true }},
	}
	for _, c := range cases {
		p := fixedParams(9, 0.5)
		c.mod(&p)
		if _, err := Segment(im, p); err == nil {
			t.Errorf("%s: Segment succeeded, want validation error", c.name)
		}
	}
	if _, err := Segment(im, fixedParams(9, 0.5)); err != nil {
		t.Fatalf("valid fixed config rejected: %v", err)
	}
}

// TestFixedTiledMatchesSerialExact is the tiled determinism contract on
// the fixed datapath: the integer sigma accumulators make the band merge
// exactly associative, so every TileWorkers value must reproduce the
// serial run bit for bit — labels, centers, and work counters alike.
func TestFixedTiledMatchesSerialExact(t *testing.T) {
	im := testImage(128, 96)
	serial, err := Segment(im, fixedParams(48, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, -1} {
		p := fixedParams(48, 0.5)
		p.TileWorkers = workers
		r, err := Segment(im, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial.Labels.Labels {
			if serial.Labels.Labels[i] != r.Labels.Labels[i] {
				t.Fatalf("workers=%d: label mismatch at pixel %d", workers, i)
			}
		}
		if serial.Stats.DistanceCalcs != r.Stats.DistanceCalcs {
			t.Fatalf("workers=%d: calcs %d vs serial %d", workers,
				r.Stats.DistanceCalcs, serial.Stats.DistanceCalcs)
		}
		// Centers come out of integer accumulators: equality is exact,
		// no floating-point tolerance.
		for ci := range serial.Centers {
			if serial.Centers[ci] != r.Centers[ci] {
				t.Fatalf("workers=%d: center %d differs from serial", workers, ci)
			}
		}
		for pi := range serial.Stats.MoveHistory {
			if serial.Stats.MoveHistory[pi] != r.Stats.MoveHistory[pi] {
				t.Fatalf("workers=%d: residual history differs at pass %d", workers, pi)
			}
		}
	}
}

// TestFloatWorkersOneMatchesSerial pins the trivial end of the contract
// on the float64 datapath too: TileWorkers 0 and 1 are the same serial
// code path and must agree exactly (larger counts are covered by
// parallel_test.go up to FP summation order).
func TestFloatWorkersOneMatchesSerial(t *testing.T) {
	im := testImage(96, 64)
	a, err := Segment(im, DefaultParams(24, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(24, 0.5)
	p.TileWorkers = 1
	b, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels.Labels {
		if a.Labels.Labels[i] != b.Labels.Labels[i] {
			t.Fatalf("label mismatch at %d", i)
		}
	}
	for ci := range a.Centers {
		if a.Centers[ci] != b.Centers[ci] {
			t.Fatalf("center %d differs", ci)
		}
	}
}

// TestFixedParityWithFloat is the property-based parity suite: over
// seeded random scenes, the tiled fixed datapath must stay within a
// pinned label-disagreement budget of the serial float64 oracle, and its
// boundary recall against the scene ground truth must not trail the
// oracle's by more than a pinned margin. The budgets are deliberately
// tight enough that a broken distance scale or a mis-merged band blows
// straight through them.
func TestFixedParityWithFloat(t *testing.T) {
	// The disagreement sits on superpixel boundaries (8-bit color codes
	// and Q8 coordinates round the tie zone), so the budget scales with
	// the boundary fraction: ~6% on a 240×160 frame, more on the small
	// frames here. 0.15 is loose enough for that and far too tight for a
	// broken distance scale, which lands above 0.5.
	const (
		disagreementBudget = 0.15 // fraction of pixels outside the matched mapping
		brMargin           = 0.05 // boundary-recall points the fixed path may trail by
	)
	for _, seed := range []int64{1, 2, 3, 4} {
		cfg := dataset.DefaultConfig()
		cfg.W, cfg.H = 120, 90
		cfg.Regions = 10
		s, err := dataset.Generate(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := Segment(s.Image, DefaultParams(48, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		p := fixedParams(48, 0.5)
		p.TileWorkers = 3
		fixed, err := Segment(s.Image, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := bestMatchDisagreement(fixed.Labels, oracle.Labels); d > disagreementBudget {
			t.Errorf("seed %d: matched disagreement %.4f exceeds budget %.2f", seed, d, disagreementBudget)
		}
		brFloat, err := metrics.BoundaryRecall(oracle.Labels, s.GT, 2)
		if err != nil {
			t.Fatal(err)
		}
		brFixed, err := metrics.BoundaryRecall(fixed.Labels, s.GT, 2)
		if err != nil {
			t.Fatal(err)
		}
		if brFixed < brFloat-brMargin {
			t.Errorf("seed %d: fixed BR %.4f trails float BR %.4f by more than %.2f",
				seed, brFixed, brFloat, brMargin)
		}
	}
}

// TestFixedInvariantsOnRandomImages sweeps the fixed datapath across
// random sizes, K values, ratios, schemes and worker counts; the
// structural label invariants must hold regardless of content.
func TestFixedInvariantsOnRandomImages(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 16 + r.Intn(60)
		h := 16 + r.Intn(60)
		k := 2 + r.Intn(20)
		ratios := []float64{1, 0.5, 0.25}
		schemes := []Scheme{Interleaved, Rows, Blocks, Hashed}
		p := fixedParams(k, ratios[r.Intn(len(ratios))])
		p.Scheme = schemes[r.Intn(len(schemes))]
		p.FullIters = 1 + r.Intn(4)
		p.TileWorkers = r.Intn(5)
		im := randomImage(rng, w, h)
		res, err := Segment(im, p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		n := res.Labels.NumRegions()
		if int(res.Labels.MaxLabel())+1 != n {
			t.Logf("seed %d: labels not dense", seed)
			return false
		}
		for _, v := range res.Labels.Labels {
			if v < 0 || int(v) >= n {
				t.Logf("seed %d: label %d out of range", seed, v)
				return false
			}
		}
		if !allConnected(res.Labels) {
			t.Logf("seed %d: disconnected label after connectivity pass", seed)
			return false
		}
		for _, c := range res.Centers {
			if c.X < 0 || c.X >= float64(w) || c.Y < 0 || c.Y >= float64(h) {
				t.Logf("seed %d: center (%g,%g) outside %dx%d", seed, c.X, c.Y, w, h)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFixedWarmStart drives the float→fixed center quantization path:
// a warm-started fixed run must accept the previous frame's centers and
// still satisfy the label invariants.
func TestFixedWarmStart(t *testing.T) {
	im := testImage(96, 72)
	first, err := Segment(im, fixedParams(24, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	p := fixedParams(24, 0.5)
	p.InitialCenters = first.Centers
	p.FullIters = 2
	second, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range second.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned after warm start", i)
		}
	}
}

// TestFixedPreemptive composes the settled-tile early halt with the
// fixed datapath; skips must register and the result stays valid. On
// the fixed path the settled flags derive from integer movement, so the
// combination is deterministic for every worker count — assert that too.
func TestFixedPreemptive(t *testing.T) {
	im := testImage(96, 96)
	run := func(workers int) *Result {
		p := fixedParams(36, 0.5)
		p.Preemptive = true
		p.FullIters = 12
		p.TileWorkers = workers
		r, err := Segment(im, p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial, par := run(0), run(4)
	if serial.Labels.NumRegions() == 0 {
		t.Fatal("no regions")
	}
	for i := range serial.Labels.Labels {
		if serial.Labels.Labels[i] != par.Labels.Labels[i] {
			t.Fatalf("preemptive fixed run not worker-invariant at pixel %d", i)
		}
	}
	if serial.Stats.SkippedTiles != par.Stats.SkippedTiles {
		t.Fatalf("skip counts differ: %d vs %d", serial.Stats.SkippedTiles, par.Stats.SkippedTiles)
	}
}

// TestFixedCancelStress hammers concurrent tiled fixed runs under
// randomized cancellation — the workload the -race CI job locks down.
// Every run must either complete with a fully labeled map or fail with
// the context's error; a torn result is a bug either way.
func TestFixedCancelStress(t *testing.T) {
	im := testImage(80, 60)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	results := make([]*Result, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if g%2 == 1 {
				// Cancel at a pseudo-random point mid-run.
				timer := time.AfterFunc(time.Duration(1+g*37%11)*time.Millisecond, cancel)
				defer timer.Stop()
			}
			p := fixedParams(24, 0.5)
			p.TileWorkers = 3
			results[g], errs[g] = SegmentContext(ctx, im, p)
		}(g)
	}
	wg.Wait()
	var done *Result
	for g := range errs {
		switch {
		case errs[g] == nil:
			for i, v := range results[g].Labels.Labels {
				if v < 0 {
					t.Fatalf("goroutine %d: pixel %d unassigned in successful run", g, i)
				}
			}
			if done == nil {
				done = results[g]
			} else {
				// Completed runs are bit-identical regardless of the
				// cancellation churn around them.
				for i := range done.Labels.Labels {
					if done.Labels.Labels[i] != results[g].Labels.Labels[i] {
						t.Fatalf("completed runs disagree at pixel %d", i)
					}
				}
			}
		case errors.Is(errs[g], context.Canceled):
			// Expected for the canceled half.
		default:
			t.Fatalf("goroutine %d: unexpected error %v", g, errs[g])
		}
	}
	if done == nil {
		t.Fatal("every run was canceled; stress test proved nothing")
	}
}

// TestTileFaultInjection covers the sslic.tile injection point: a fault
// in any band must fail the whole run, and with every band firing the
// reported band is deterministically the lowest index.
func TestTileFaultInjection(t *testing.T) {
	defer faults.Disable()
	im := testImage(64, 48)
	for _, workers := range []int{0, 3} {
		inj := faults.New(1)
		inj.Set(faults.PointTile, faults.PointConfig{Every: 1, ErrMsg: "tile dead"})
		faults.Enable(inj)
		p := fixedParams(16, 0.5)
		p.TileWorkers = workers
		_, err := Segment(im, p)
		if err == nil {
			t.Fatalf("workers=%d: injected tile fault did not surface", workers)
		}
		if !faults.IsTransient(err) {
			t.Fatalf("workers=%d: error %v does not unwrap to ErrInjected", workers, err)
		}
		faults.Disable()
	}
	// The float64 path shares the band plumbing; one spot check.
	inj := faults.New(1)
	inj.Set(faults.PointTile, faults.PointConfig{Every: 1, ErrMsg: "tile dead"})
	faults.Enable(inj)
	p := DefaultParams(16, 0.5)
	p.TileWorkers = 2
	if _, err := Segment(im, p); err == nil {
		t.Fatal("float64 path: injected tile fault did not surface")
	}
}

// TestFixedTelemetryGauges: a tiled run must report its band count and
// a sane imbalance ratio on the registry.
func TestFixedTelemetryGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := fixedParams(24, 0.5)
	p.TileWorkers = 3
	p.Metrics = NewMetrics(reg)
	if _, err := Segment(testImage(96, 96), p); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.TileBands.Value(); got != 3 {
		t.Fatalf("TileBands = %v, want 3", got)
	}
	if got := p.Metrics.TileImbalance.Value(); got < 1.0 {
		t.Fatalf("TileImbalance = %v, want >= 1.0", got)
	}
}
