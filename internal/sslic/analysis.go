package sslic

// Analytic operation-count and DRAM-traffic models behind Table 2 of the
// paper ("Analysis of CPA and PPA implementations"): at 1080p the CPA
// moves 318 MB per iteration against the PPA's 100 MB, while the PPA
// spends 2.25× more distance operations (130M vs 58M).

// Bytes per value in the external-memory image of the algorithm state,
// matching the profiled software implementations the paper measures
// (double-precision Lab planes, double minimum-distance buffer, 32-bit
// label buffer — the "two memory buffers as large as the image" of §2).
const (
	bytesLabPixel = 3 * 8 // L, a, b doubles
	bytesMinDist  = 8     // minimum-distance buffer entry
	bytesLabel    = 4     // superpixel index buffer entry
	// cpaOverlapReads is the average number of times each pixel is read
	// per CPA iteration: 2S×2S windows stepped S apart cover every pixel
	// 2× horizontally and 2× vertically.
	cpaOverlapReads = 4
	// opsPerDistance is the arithmetic cost of one Equation 5 evaluation
	// plus its comparison: 3 color multiply-accumulates, 2 spatial
	// multiply-accumulates, 1 scale-and-add, 1 compare.
	opsPerDistance = 7
	// ppaCandidates is the fixed fan-in of the PPA minimum (§4.2: "9 is
	// the minimum number of nearest centers ... to cover all possible
	// pairs of center and pixel in the original CPA SLIC").
	ppaCandidates = 9
)

// Analysis reports the per-iteration cost model of one architecture.
type Analysis struct {
	Arch Arch
	// TrafficBytes is the modeled DRAM traffic per full iteration.
	TrafficBytes int64
	// Ops is the modeled arithmetic operation count per full iteration.
	Ops int64
	// DistanceCalcs is the modeled Equation 5 evaluation count.
	DistanceCalcs int64
}

// Analyze returns the Table 2 model for a w×h image. The subsample ratio
// scales both traffic and ops (a ratio-r pass touches r·N pixels).
func Analyze(arch Arch, w, h int, ratio float64) Analysis {
	n := float64(w * h)
	var a Analysis
	a.Arch = arch
	switch arch {
	case CPA:
		// Every pixel is read with its patch overlap; the minimum-distance
		// and label buffers are read at each visit and written once on the
		// winning update.
		perPixel := float64(cpaOverlapReads*(bytesLabPixel+bytesMinDist+bytesLabel) + bytesMinDist + bytesLabel)
		a.TrafficBytes = int64(n * ratio * perPixel)
		a.DistanceCalcs = int64(n * ratio * cpaOverlapReads)
	default: // PPA
		// The image streams through once; the label buffer is read and
		// written once per pixel; no minimum-distance buffer exists (the
		// 9:1 minimum is computed in place), but the accounting keeps the
		// software-equivalent read/write of the per-pixel minimum that the
		// profiled implementation performs.
		perPixel := float64(bytesLabPixel + 2*bytesMinDist + 2*bytesLabel)
		a.TrafficBytes = int64(n * ratio * perPixel)
		a.DistanceCalcs = int64(n * ratio * ppaCandidates)
	}
	a.Ops = a.DistanceCalcs * opsPerDistance
	return a
}

// TrafficMB returns the traffic in decimal megabytes, the unit Table 2
// reports.
func (a Analysis) TrafficMB() float64 { return float64(a.TrafficBytes) / 1e6 }

// OpsM returns the operation count in millions.
func (a Analysis) OpsM() float64 { return float64(a.Ops) / 1e6 }
