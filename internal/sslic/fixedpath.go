package sslic

// The Fixed datapath: the paper's integer hardware arithmetic (§4.3,
// §6.1) substituted for the float64 reference in the PPA hot loop.
//
//   - Color conversion goes through internal/lut's Color Conversion Unit
//     model — the 256-entry sRGB gamma LUT and 8-segment PWL cube root —
//     producing the 8-bit Lab encoding the accelerator scratchpads hold
//     (L scaled to [0,255], a/b offset by +128). No math.Pow or
//     math.Cbrt per pixel.
//   - Distances are evaluated on the 8-bit codes with integer multiplies
//     and shifts. The L channel is re-weighted by (100/255)² in Q0.16 so
//     the code-space distance matches the float path's Lab-unit metric
//     (a/b codes are already 1:1 with Lab units); the spatial term
//     carries m²/S² in Q0.16 against Q8.8 sub-pixel center coordinates.
//   - The Cluster Update Unit's sigma accumulators are plain int64 sums
//     of codes and pixel coordinates. Integer addition is exactly
//     associative, so the per-band partial sums of a tiled pass merge to
//     the serial result bit-for-bit — the property that makes the tiled
//     fixed path byte-identical for every TileWorkers value (the float
//     path only guarantees identical labels; its center coordinates may
//     differ in the last FP bits across worker counts).
//
// The float64 path in sslic.go is the reference oracle; the parity and
// golden tests pin this implementation against it.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/lut"
	"sslic/internal/slic"
	"sslic/internal/telemetry"
)

// Fixed-point formats of the software datapath.
const (
	// coordFrac is the sub-pixel precision of center coordinates (Q8):
	// the Center Update Unit's division keeps 8 fractional bits so
	// convergence is not limited to whole-pixel steps.
	coordFrac = 8
	coordOne  = 1 << coordFrac
	// colorFrac is the sub-code precision of center colors (Q8.8 codes),
	// for the same reason on the color axes.
	colorFrac = 8
	colorOne  = 1 << colorFrac
	// weightFrac is the Q0.16 scale of the distance weights (the L
	// re-weighting and the spatial m²/S² term).
	weightFrac = 16
	// distFrac keeps 4 fractional bits in the accumulated distance so
	// near-minimum candidates are not collapsed into ties by integer
	// truncation.
	distFrac = 4
	// spatShift brings (Q8 dx)² × Q0.16 weight down to Q4 distance units.
	spatShift = 2*coordFrac + weightFrac - distFrac
	// spatSaturated stands in for a spatial term whose exact product
	// would overflow (degenerate compactness/geometry): large enough to
	// dominate any color distance, small enough never to overflow the
	// total. Saturation is what the hardware's bounded registers do.
	spatSaturated = int64(1) << 60
)

// fixedLWeight is (100/255)² in Q0.16: the factor that converts the L
// code difference (L scaled by 255/100) back into Lab units squared.
var fixedLWeight = int64(math.Round(math.Pow(100.0/255, 2) * (1 << weightFrac)))

var (
	fixedConvOnce sync.Once
	fixedConv     *lut.Converter
)

// fixedConverter returns the process-wide Color Conversion Unit model.
// The tables are deterministic, so sharing one converter across all runs
// is safe and keeps the per-run setup free.
func fixedConverter() *lut.Converter {
	fixedConvOnce.Do(func() { fixedConv = lut.MustNewConverter(lut.DefaultSegments) })
	return fixedConv
}

// fxCenter is a superpixel center in the fixed register format: Lab
// codes in Q8.8, coordinates in Q.8 pixels.
type fxCenter struct {
	l, a, b int32
	x, y    int64
}

// fxSigma is the integer accumulator register file of the Cluster Update
// Unit: sums of 8-bit codes and integer pixel coordinates plus the count.
type fxSigma struct {
	l, a, b, x, y, n int64
}

// fxWeights carries the precomputed distance weights of one run.
type fxWeights struct {
	wL    int64 // Q0.16 L-code re-weighting
	wS    int64 // Q0.16 spatial weight m²/S²
	spCap int64 // largest (dx²+dy²) whose product with wS fits int64
}

func newFxWeights(invS2 float64) fxWeights {
	const wSMax = int64(1) << 56
	w := fxWeights{wL: fixedLWeight, wS: wSMax}
	if f := invS2 * (1 << weightFrac); f < float64(wSMax) {
		w.wS = int64(math.Round(f))
	}
	if w.wS > 0 {
		w.spCap = math.MaxInt64 / w.wS
	} else {
		// A vanishing spatial weight (compactness ≪ grid interval) turns
		// every spatial product into 0; the cap just needs to admit any
		// squared offset.
		w.spCap = math.MaxInt64
	}
	return w
}

// convertLabCodes runs the LUT color conversion into int32 planes, the
// width the distance loop multiplies without conversions.
func convertLabCodes(conv *lut.Converter, im *imgio.Image, scr *Scratch) (l, a, b []int32) {
	n := im.Pixels()
	l, a, b = scr.codesFor(n)
	for i := 0; i < n; i++ {
		l8, a8, b8 := conv.Convert(im.C0[i], im.C1[i], im.C2[i])
		l[i], a[i], b[i] = int32(l8), int32(a8), int32(b8)
	}
	return l, a, b
}

// initCentersFixed mirrors slic.InitCenters on the integer planes:
// cell-centered grid placement with the optional 3×3 lowest-gradient
// perturbation, evaluated on code-space gradients.
func initCentersFixed(lp, ap, bp []int32, w, h int, tiling *Tiling, perturb bool, centers []fxCenter, scr *Scratch) {
	var grad []int64
	if perturb {
		grad = gradientMapFixed(lp, ap, bp, w, h, scr)
	}
	for gy := 0; gy < tiling.NY; gy++ {
		for gx := 0; gx < tiling.NX; gx++ {
			x := min(w-1, int((float64(gx)+0.5)*float64(w)/float64(tiling.NX)))
			y := min(h-1, int((float64(gy)+0.5)*float64(h)/float64(tiling.NY)))
			if perturb {
				x, y = lowestGradient3x3Fixed(grad, w, h, x, y)
			}
			i := y*w + x
			centers[gy*tiling.NX+gx] = fxCenter{
				l: lp[i] << colorFrac, a: ap[i] << colorFrac, b: bp[i] << colorFrac,
				x: int64(x) << coordFrac, y: int64(y) << coordFrac,
			}
		}
	}
}

// gradientMapFixed is slic.GradientMap on the 8-bit code planes; border
// pixels get MaxInt64 so perturbation never lands on the image edge.
func gradientMapFixed(lp, ap, bp []int32, w, h int, scr *Scratch) []int64 {
	grad := scr.fxGradFor(w * h)
	for i := range grad {
		grad[i] = math.MaxInt64
	}
	sq := func(d int32) int64 { return int64(d) * int64(d) }
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			gx := sq(lp[i+1]-lp[i-1]) + sq(ap[i+1]-ap[i-1]) + sq(bp[i+1]-bp[i-1])
			gy := sq(lp[i+w]-lp[i-w]) + sq(ap[i+w]-ap[i-w]) + sq(bp[i+w]-bp[i-w])
			grad[i] = gx + gy
		}
	}
	return grad
}

func lowestGradient3x3Fixed(grad []int64, w, h, x, y int) (int, int) {
	bestX, bestY := x, y
	best := grad[y*w+x]
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := x+dx, y+dy
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			if g := grad[ny*w+nx]; g < best {
				best = g
				bestX, bestY = nx, ny
			}
		}
	}
	return bestX, bestY
}

// quantizeCenters converts warm-start float64 centers into the fixed
// register format — the entry point of a warm frame whose previous
// segmentation ran on either datapath.
func quantizeCenters(src []slic.Center, dst []fxCenter, w, h int) {
	for i, c := range src {
		dst[i] = fxCenter{
			l: clampI32(math.Round(c.L*255/100*colorOne), 0, 255*colorOne),
			a: clampI32(math.Round((c.A+128)*colorOne), 0, 255*colorOne),
			b: clampI32(math.Round((c.B+128)*colorOne), 0, 255*colorOne),
			x: clampI64(math.Round(c.X*coordOne), 0, int64(w-1)*coordOne),
			y: clampI64(math.Round(c.Y*coordOne), 0, int64(h-1)*coordOne),
		}
	}
}

// floatCenters converts the fixed registers back to the public
// slic.Center form (Lab units, pixel coordinates).
func floatCenters(fx []fxCenter) []slic.Center {
	out := make([]slic.Center, len(fx))
	for i, c := range fx {
		out[i] = slic.Center{
			L: float64(c.l) / colorOne * 100 / 255,
			A: float64(c.a)/colorOne - 128,
			B: float64(c.b)/colorOne - 128,
			X: float64(c.x) / coordOne,
			Y: float64(c.y) / coordOne,
		}
	}
	return out
}

func clampI32(v float64, lo, hi int32) int32 {
	if !(v > float64(lo)) { // also catches NaN
		return lo
	}
	if v > float64(hi) {
		return hi
	}
	return int32(v)
}

func clampI64(v float64, lo, hi int64) int64 {
	if !(v > float64(lo)) {
		return lo
	}
	if v > float64(hi) {
		return hi
	}
	return int64(v)
}

// segmentPPAFixed is segmentPPA on the fixed datapath: same control flow
// (cancellation between passes, fault hooks, metrics, preemption,
// connectivity), integer state throughout.
func segmentPPAFixed(ctx context.Context, im *imgio.Image, p Params) (*Result, error) {
	var st Stats
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := telemetry.TraceFrom(ctx)

	t0 := time.Now()
	lp, ap, bp := convertLabCodes(fixedConverter(), im, p.Scratch)
	st.ColorConvTime = time.Since(t0)
	tr.Emit("colorconv", "sslic", t0, st.ColorConvTime, map[string]any{"datapath": "fixed"})

	t0 = time.Now()
	tiling := NewTiling(im.W, im.H, p.K)
	centers := p.Scratch.fxCentersFor(tiling.NumTiles())
	if p.InitialCenters != nil {
		if len(p.InitialCenters) != tiling.NumTiles() {
			return nil, fmt.Errorf("sslic: %d initial centers, want %d", len(p.InitialCenters), tiling.NumTiles())
		}
		quantizeCenters(p.InitialCenters, centers, im.W, im.H)
	} else {
		initCentersFixed(lp, ap, bp, im.W, im.H, tiling, p.PerturbCenters, centers, p.Scratch)
	}
	labels := labelBufOrNew(p.LabelBuf, im.W, im.H, false)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			labels.Set(x, y, tiling.OwnCenter(x, y))
		}
	}
	st.InitTime = time.Since(t0)
	tr.Emit("init", "sslic", t0, st.InitTime, nil)

	s := slic.GridInterval(im.W, im.H, p.K)
	dw := newFxWeights(p.Compactness * p.Compactness / (s * s))

	k := p.Subsets()
	totalPasses := p.FullIters * k
	preemptThresh := p.PreemptThreshold
	if preemptThresh == 0 {
		preemptThresh = 0.5
	}
	preemptQ8 := int64(math.Round(preemptThresh * coordOne))
	settled := p.Scratch.boolsFor(len(centers))

	acc := p.Scratch.fxSigmasFor(len(centers))
	scr := p.Scratch.passFixed()
	for pass := 0; pass < totalPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faults.Fire(faults.PointSubsetPass); err != nil {
			return nil, fmt.Errorf("sslic: pass %d: %w", pass, err)
		}
		subset := pass % k
		passStart := time.Now()

		t0 = time.Now()
		for i := range acc {
			acc[i] = fxSigma{}
		}
		calcs, skipped, saved, err := runPPAPassFixed(lp, ap, bp, im.W, im.H, tiling, centers, labels, acc, subset, k, dw, &p, settled, tr, pass, scr)
		if err != nil {
			return nil, err
		}
		st.DistanceCalcs += calcs
		st.SkippedTiles += skipped
		st.SavedDistanceCalcs += saved
		st.AssignTime += time.Since(t0)

		t0 = time.Now()
		move := applySigmaFixed(centers, acc, settled, preemptQ8, p.Preemptive)
		st.CenterUpdates += int64(len(centers))
		st.UpdateTime += time.Since(t0)
		st.SubsetPasses = pass + 1
		st.Iterations = (pass + k) / k
		residual := move / float64(len(centers))
		st.MoveHistory = append(st.MoveHistory, residual)
		passDur := time.Since(passStart)
		p.Metrics.observePass(passDur, pass, totalPasses, residual)
		if tr != nil {
			tr.Emit("pass", "sslic", passStart, passDur, map[string]any{
				"pass": pass, "subset": subset, "arch": "PPA", "datapath": "fixed",
				"distance_calcs": calcs, "residual": residual,
				"skipped_tiles": skipped,
			})
		}

		if p.Threshold > 0 && residual < p.Threshold {
			st.Converged = true
			break
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	if p.EnforceConnectivity {
		minSize := int(s*s) / maxInt(1, p.MinRegionDivisor)
		slic.EnforceConnectivity(labels, minSize)
		tr.Emit("connectivity", "sslic", t0, time.Since(t0), nil)
	}
	qualityScan(labels, len(centers), p.Scratch, &st)
	st.OtherTime = time.Since(t0)

	return &Result{Labels: labels, Centers: floatCenters(centers), Tiling: tiling, Stats: st}, nil
}

// runPPAPassFixed is runPPAPass with integer accumulators: same band
// decomposition, same fixed-order merge, same sslic.tile fault hook. The
// merge is exact (integer adds), so output does not depend on the band
// count at all.
func runPPAPassFixed(lp, ap, bp []int32, w, h int, tiling *Tiling, centers []fxCenter, labels *imgio.LabelMap,
	acc []fxSigma, subset, k int, dw fxWeights, p *Params, settled []bool,
	tr *telemetry.Trace, pass int, scr *passScratch[fxSigma]) (calcs, skippedTiles, saved int64, err error) {

	workers := tileBands(p.TileWorkers, tiling.NY)
	if workers <= 1 {
		band := scr.bandsFor(1)
		band[0].start = time.Now()
		if err := faults.Fire(faults.PointTile); err != nil {
			band[0].err = err
			return 0, 0, 0, bandError(pass, band)
		}
		calcs, skippedTiles, saved = ppaPassRangeFixed(lp, ap, bp, w, h, tiling, centers, labels, acc, 0, tiling.NY, subset, k, dw, *p, settled)
		band[0].calcs, band[0].skipped, band[0].saved = calcs, skippedTiles, saved
		band[0].dur = time.Since(band[0].start)
		observeBands(tr, p.Metrics, pass, band)
		return calcs, skippedTiles, saved, nil
	}

	parts := scr.bandsFor(workers)
	accs := scr.accsFor(workers, len(centers))
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wkr := wkr
		ty0 := wkr * tiling.NY / workers
		ty1 := (wkr + 1) * tiling.NY / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[wkr].start = time.Now()
			if err := faults.Fire(faults.PointTile); err != nil {
				parts[wkr].err = err
			} else {
				parts[wkr].calcs, parts[wkr].skipped, parts[wkr].saved =
					ppaPassRangeFixed(lp, ap, bp, w, h, tiling, centers, labels, accs[wkr], ty0, ty1, subset, k, dw, *p, settled)
			}
			parts[wkr].dur = time.Since(parts[wkr].start)
		}()
	}
	wg.Wait()
	if err := bandError(pass, parts); err != nil {
		return 0, 0, 0, err
	}
	for i := range parts {
		for ci := range acc {
			a := &acc[ci]
			b := &accs[i][ci]
			a.l += b.l
			a.a += b.a
			a.b += b.b
			a.x += b.x
			a.y += b.y
			a.n += b.n
		}
		calcs += parts[i].calcs
		skippedTiles += parts[i].skipped
		saved += parts[i].saved
	}
	observeBands(tr, p.Metrics, pass, parts)
	return calcs, skippedTiles, saved, nil
}

// ppaPassRangeFixed is the integer hot loop: per tile, the (up to) 9
// candidate centers are rounded once into 8-bit code registers and Q8
// coordinates; per subset pixel, up to 9 integer distances and a running
// minimum, then the sigma update — the Cluster Update Unit's adders.
//
// Two exact optimizations keep the software loop close to the
// accelerator's throughput without changing a single label:
//
//   - The y-component of every candidate's spatial term is constant
//     along a row, so it is hoisted into sy[] once per row per tile.
//   - Candidates are pruned against a running best seeded with the own
//     cell center's full distance: a candidate whose partial distance
//     (spatial components alone) already reaches the seed cannot win, so
//     its color arithmetic is skipped. Pruning only ever discards
//     provable losers and candidate order is unchanged, so the argmin —
//     including first-candidate tie-breaks — is bit-identical to the
//     exhaustive loop. (The hardware evaluates all 9 in parallel lanes;
//     DistanceCalcs counts candidates considered, matching it and the
//     float64 oracle.)
func ppaPassRangeFixed(lp, ap, bp []int32, w, h int, tiling *Tiling, centers []fxCenter, labels *imgio.LabelMap,
	acc []fxSigma, tyFrom, tyTo, subset, k int, dw fxWeights, p Params, settled []bool) (calcs, skippedTiles, saved int64) {

	wL, wS, spCap := dw.wL, dw.wS, dw.spCap
	var clA, caA, cbA [9]int32
	var cxA, cyA, syA [9]int64
	for ty := tyFrom; ty < tyTo; ty++ {
		y0 := ty * h / tiling.NY
		y1 := (ty + 1) * h / tiling.NY
		for tx := 0; tx < tiling.NX; tx++ {
			tileIdx := ty*tiling.NX + tx
			cand := tiling.Candidates[tileIdx]

			if p.Preemptive && allSettled(cand, settled) {
				skippedTiles++
				x0 := tx * w / tiling.NX
				x1 := (tx + 1) * w / tiling.NX
				saved += int64((x1 - x0) * (y1 - y0) / k * len(cand))
				continue
			}

			// Hoist the candidate registers: they are constant over the
			// whole tile, and rounding the Q8.8 center colors to 8-bit
			// codes here is the hardware's register-file read. Slicing to
			// nc elides the bounds checks in the pixel loop.
			nc := len(cand)
			cl, ca, cb := clA[:nc], caA[:nc], cbA[:nc]
			cx, cy, sy := cxA[:nc], cyA[:nc], syA[:nc]
			oi := 0
			for j := 0; j < nc; j++ {
				ci := cand[j]
				if int(ci) == tileIdx {
					oi = j
				}
				c := &centers[ci]
				cl[j] = (c.l + colorOne/2) >> colorFrac
				ca[j] = (c.a + colorOne/2) >> colorFrac
				cb[j] = (c.b + colorOne/2) >> colorFrac
				cx[j] = c.x
				cy[j] = c.y
			}

			x0 := tx * w / tiling.NX
			x1 := (tx + 1) * w / tiling.NX
			for y := y0; y < y1; y++ {
				row := y * w
				yQ := int64(y) << coordFrac
				startX, stepX := x0, 1
				if k > 1 {
					switch p.Scheme {
					case Interleaved:
						startX = x0 + mod(subset-(x0+y), k)
						stepX = k
					case Rows:
						if y%k != subset {
							continue
						}
					case Blocks:
						if y*k/h != subset {
							continue
						}
					}
				}
				if startX >= x1 {
					continue
				}
				for j := 0; j < nc; j++ {
					dy := yQ - cy[j]
					if sp := dy * dy; sp <= spCap {
						sy[j] = (sp * wS) >> spatShift
					} else {
						sy[j] = spatSaturated
					}
				}
				for x := startX; x < x1; x += stepX {
					if k > 1 && p.Scheme == Hashed && subsetOf(p.Scheme, x, y, w, h, k) != subset {
						continue
					}
					i := row + x
					pl, pa, pb := lp[i], ap[i], bp[i]
					xQ := int64(x) << coordFrac
					best := cand[oi]
					bestD := int64(math.MaxInt64)
					for j := 0; j < nc; j++ {
						dl := pl - cl[j]
						da := pa - ca[j]
						db := pb - cb[j]
						d := sy[j] + (int64(dl*dl)*wL)>>(weightFrac-distFrac) + int64(da*da+db*db)<<distFrac
						dx := xQ - cx[j]
						if sp := dx * dx; sp <= spCap {
							d += (sp * wS) >> spatShift
						} else {
							d += spatSaturated
						}
						if d < bestD {
							bestD = d
							best = cand[j]
						}
					}
					calcs += int64(nc)
					labels.Labels[i] = best
					sg := &acc[best]
					sg.l += int64(pl)
					sg.a += int64(pa)
					sg.b += int64(pb)
					sg.x += int64(x)
					sg.y += int64(y)
					sg.n++
				}
			}
		}
	}
	return calcs, skippedTiles, saved
}

// applySigmaFixed is the Center Update Unit: one rounded integer
// division per register. Returns the summed L1 center movement in the
// (x, y) plane, in pixels, and updates the settled flags when preemption
// is active.
func applySigmaFixed(centers []fxCenter, acc []fxSigma, settled []bool, preemptQ8 int64, preemptive bool) float64 {
	var moveQ8 int64
	for ci := range centers {
		sg := &acc[ci]
		if sg.n == 0 {
			continue
		}
		n := sg.n
		c := &centers[ci]
		nx := ((sg.x << coordFrac) + n/2) / n
		ny := ((sg.y << coordFrac) + n/2) / n
		m := absI64(nx-c.x) + absI64(ny-c.y)
		moveQ8 += m
		c.l = int32(((sg.l << colorFrac) + n/2) / n)
		c.a = int32(((sg.a << colorFrac) + n/2) / n)
		c.b = int32(((sg.b << colorFrac) + n/2) / n)
		c.x, c.y = nx, ny
		if preemptive {
			settled[ci] = m < preemptQ8
		}
	}
	return float64(moveQ8) / coordOne
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
