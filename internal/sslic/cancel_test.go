package sslic

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"sslic/internal/telemetry"
)

// countingCtx is a context whose Err flips to Canceled after limit
// calls. It makes cancellation-latency tests deterministic: the number
// of subset passes a run completes before noticing the cancel is
// exactly the number of Err checks the implementation performs, with no
// timing involved.
type countingCtx struct {
	context.Context
	calls atomic.Int64
	limit int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// TestSegmentContextCancelWithinOneRound proves SegmentContext checks
// the context between subset passes, not just once per run: with the
// context canceling after a fixed number of Err calls, the run must
// stop after at most that many passes — far short of its iteration
// budget — for both architectures.
func TestSegmentContextCancelWithinOneRound(t *testing.T) {
	im := testImage(64, 48)
	for _, arch := range []Arch{PPA, CPA} {
		reg := telemetry.NewRegistry()
		p := DefaultParams(24, 0.5)
		p.FullIters = 10 // 20 subset passes at ratio 0.5
		p.Arch = arch
		p.Metrics = NewMetrics(reg)

		// Err call schedule: 1 at entry, then 1 per pass. limit=4 allows
		// entry + 3 clean pass checks, so at most 3 passes complete.
		ctx := &countingCtx{Context: context.Background(), limit: 4}
		r, err := SegmentContext(ctx, im, p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: got (%v, %v), want context.Canceled", arch, r, err)
		}
		passes := p.Metrics.SubsetPasses.Value()
		if passes > 3 {
			t.Fatalf("%v: %v passes completed after cancel, want <= 3 (one check per pass)", arch, passes)
		}
		if p.Metrics.Segmentations.Value() != 0 {
			t.Fatalf("%v: canceled run recorded as completed segmentation", arch)
		}
	}
}

// TestSegmentContextPreCanceled: an already-canceled context must
// return before any pass runs.
func TestSegmentContextPreCanceled(t *testing.T) {
	im := testImage(32, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, arch := range []Arch{PPA, CPA} {
		reg := telemetry.NewRegistry()
		p := DefaultParams(9, 0.5)
		p.Arch = arch
		p.Metrics = NewMetrics(reg)
		if _, err := SegmentContext(ctx, im, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", arch, err)
		}
		if n := p.Metrics.SubsetPasses.Value(); n != 0 {
			t.Fatalf("%v: %v passes ran under a pre-canceled context", arch, n)
		}
	}
}

// TestSegmentContextBackground: a background context must not change
// behaviour — Segment delegates to SegmentContext, so the golden tests
// elsewhere already pin the results; here we just confirm success.
func TestSegmentContextBackground(t *testing.T) {
	im := testImage(32, 32)
	r1, err := Segment(im, DefaultParams(9, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SegmentContext(context.Background(), im, DefaultParams(9, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Labels.Labels {
		if r1.Labels.Labels[i] != r2.Labels.Labels[i] {
			t.Fatalf("label %d differs between Segment and SegmentContext", i)
		}
	}
}
