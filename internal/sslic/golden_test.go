package sslic

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
)

// goldenLabelsSHA256 is the SHA-256 of the label map produced by the
// golden configuration below. It pins the exact segmentation output:
// any refactor that changes labels — intentionally or not — must update
// this constant, making silent output drift impossible. The hash is
// identical for every Workers value per the determinism contract of
// parallel_test.go (float64 arithmetic in Go is IEEE-754-exact, so the
// value is stable across conforming platforms).
const goldenLabelsSHA256 = "1623e5d1261982a00ed6875c811bd33ba109245c9ac70e9fbf4a8dbc44468d30"

// goldenSegment runs the pinned configuration: a fixed-seed synthetic
// scene through DefaultParams at the given worker count.
func goldenSegment(t *testing.T, workers int) *imgio.LabelMap {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 160, 120
	cfg.Regions = 12
	s, err := dataset.Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(64, 0.5)
	p.TileWorkers = workers
	r, err := Segment(s.Image, p)
	if err != nil {
		t.Fatal(err)
	}
	return r.Labels
}

func labelsSHA256(lm *imgio.LabelMap) string {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(lm.W))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(lm.H))
	h.Write(hdr[:])
	buf := make([]byte, 4*len(lm.Labels))
	for i, v := range lm.Labels {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenDeterminism is the output-pinning regression test: the
// fixed-seed scene must hash to the checked-in constant at every worker
// count, serial and parallel alike.
func TestGoldenDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4, -1} {
		got := labelsSHA256(goldenSegment(t, workers))
		if got != goldenLabelsSHA256 {
			t.Errorf("workers=%d: label hash %s, want %s (if the change is intentional, update goldenLabelsSHA256)",
				workers, got, goldenLabelsSHA256)
		}
	}
}

// goldenFixedLabelsSHA256 pins the fixed-datapath output of the same
// scene. The integer hot loop makes the run bit-identical for every
// worker count by construction (exact sigma merge), so a single
// constant covers the whole TileWorkers sweep; it is also
// platform-independent, carrying no floating-point arithmetic at all
// past the LUT construction.
const goldenFixedLabelsSHA256 = "7ece6671d83c89cf3b66f3af52226f4061287851c9373f5d59c19f681ed512a9"

// goldenSegmentFixed is goldenSegment on the fixed LUT datapath.
func goldenSegmentFixed(t *testing.T, workers int) *imgio.LabelMap {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 160, 120
	cfg.Regions = 12
	s, err := dataset.Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(64, 0.5)
	p.Datapath = Fixed
	p.TileWorkers = workers
	r, err := Segment(s.Image, p)
	if err != nil {
		t.Fatal(err)
	}
	return r.Labels
}

// TestGoldenDeterminismFixed pins the fixed-datapath output across the
// worker sweep: one hash, every TileWorkers value, byte-identical.
func TestGoldenDeterminismFixed(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		got := labelsSHA256(goldenSegmentFixed(t, workers))
		if got != goldenFixedLabelsSHA256 {
			t.Errorf("workers=%d: label hash %s, want %s (if the change is intentional, update goldenFixedLabelsSHA256)",
				workers, got, goldenFixedLabelsSHA256)
		}
	}
}

// TestGoldenLabelBufReuse: routing the result through a dirty reused
// buffer must not change the output for either architecture.
func TestGoldenLabelBufReuse(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 96, 64
	cfg.Regions = 8
	s, err := dataset.Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []Arch{PPA, CPA} {
		p := DefaultParams(24, 0.5)
		p.Arch = arch
		base, err := Segment(s.Image, p)
		if err != nil {
			t.Fatal(err)
		}
		dirty := imgio.NewLabelMap(96, 64)
		for i := range dirty.Labels {
			dirty.Labels[i] = int32(i % 7)
		}
		p.LabelBuf = dirty
		reused, err := Segment(s.Image, p)
		if err != nil {
			t.Fatal(err)
		}
		if reused.Labels != dirty {
			t.Fatalf("%v: result does not alias the provided buffer", arch)
		}
		if labelsSHA256(base.Labels) != labelsSHA256(reused.Labels) {
			t.Fatalf("%v: reused label buffer changed the output", arch)
		}
		// A mismatched buffer is ignored, not an error.
		p.LabelBuf = imgio.NewLabelMap(10, 10)
		r3, err := Segment(s.Image, p)
		if err != nil {
			t.Fatal(err)
		}
		if r3.Labels == p.LabelBuf {
			t.Fatalf("%v: mismatched buffer was used", arch)
		}
	}
}
