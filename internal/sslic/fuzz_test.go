package sslic

import (
	"testing"

	"sslic/internal/imgio"
)

// FuzzTileGeometry drives Segment through adversarial tile geometry:
// dimensions that do not divide into the candidate grid, one-pixel-tall
// bands, K larger than the pixel supply, degenerate 1×N strips, and
// worker counts past the row count — on both datapaths. The invariants
// are crash-freedom and, on success, a dense fully-assigned label map.
func FuzzTileGeometry(f *testing.F) {
	f.Add(uint8(7), uint8(3), uint8(5), int8(2), uint8(0), uint8(0))
	f.Add(uint8(1), uint8(64), uint8(4), int8(-1), uint8(1), uint8(1))
	f.Add(uint8(64), uint8(1), uint8(9), int8(8), uint8(1), uint8(2))
	f.Add(uint8(13), uint8(11), uint8(200), int8(64), uint8(0), uint8(3))
	f.Add(uint8(2), uint8(2), uint8(1), int8(0), uint8(1), uint8(0))
	f.Add(uint8(31), uint8(17), uint8(16), int8(3), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, w8, h8, k8 uint8, workers int8, datapath, scheme uint8) {
		w := 1 + int(w8)%72
		h := 1 + int(h8)%72
		k := 1 + int(k8)
		im := imgio.NewImage(w, h)
		// Deterministic but spatially varying content keeps the centers
		// moving so the merge path actually runs.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := uint64(x*2654435761 + y*40503 + int(k8)*97)
				im.Set(x, y, uint8(v), uint8(v>>8), uint8(v>>16))
			}
		}
		p := DefaultParams(k, 0.5)
		p.FullIters = 2
		p.TileWorkers = int(workers)
		p.Scheme = Scheme(int(scheme) % 4)
		if datapath%2 == 1 {
			p.Datapath = Fixed
		}
		r, err := Segment(im, p)
		if err != nil {
			// Rejected configurations are fine; torn results are not.
			return
		}
		n := r.Labels.NumRegions()
		if int(r.Labels.MaxLabel())+1 != n {
			t.Fatalf("%dx%d k=%d workers=%d dp=%v: labels not dense (max %d, regions %d)",
				w, h, k, workers, p.Datapath, r.Labels.MaxLabel(), n)
		}
		for i, v := range r.Labels.Labels {
			if v < 0 || int(v) >= n {
				t.Fatalf("%dx%d k=%d workers=%d dp=%v: label %d out of range at pixel %d",
					w, h, k, workers, p.Datapath, v, i)
			}
		}
		for _, c := range r.Centers {
			if c.X < 0 || c.X >= float64(w) || c.Y < 0 || c.Y >= float64(h) {
				t.Fatalf("%dx%d k=%d: center (%g,%g) out of bounds", w, h, k, c.X, c.Y)
			}
		}
	})
}
