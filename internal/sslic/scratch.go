package sslic

import (
	"math"

	"sslic/internal/imgio"
	"sslic/internal/slic"
)

// Scratch is the reusable working memory of a Segment run: the Lab
// planes (~24 bytes/pixel, the largest per-frame buffer the CPU
// pipeline otherwise reallocates every frame), the gradient map, the
// preemption and accumulator slices, and the quality-scan counts. Give
// each worker its own Scratch and set Params.Scratch to it across
// frames; a Scratch must never be shared by concurrent runs. Buffers
// grow to the largest frame seen and are fully overwritten each run, so
// one Scratch serves streams of changing geometry. The zero value is
// ready to use.
type Scratch struct {
	lab  slic.LabImage
	grad []float64

	settled []bool
	acc     []sigma
	dist    []float64 // CPA persistent minimum-distance buffer
	counts  []int32   // quality-scan per-cluster pixel counts

	// Fixed-datapath state: the int32 Lab code planes, the int64
	// code-space gradient, and the integer register file.
	fxL, fxA, fxB []int32
	fxGrad        []int64
	fxCenters     []fxCenter
	fxAcc         []fxSigma

	pass   passScratch[sigma]
	fxPass passScratch[fxSigma]
}

// passFloat returns the float datapath's per-pass scratch, local when s
// is nil.
func (s *Scratch) passFloat() *passScratch[sigma] {
	if s == nil {
		return &passScratch[sigma]{}
	}
	return &s.pass
}

// passFixed returns the fixed datapath's per-pass scratch.
func (s *Scratch) passFixed() *passScratch[fxSigma] {
	if s == nil {
		return &passScratch[fxSigma]{}
	}
	return &s.fxPass
}

// NewScratch returns an empty Scratch; buffers are grown on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Bytes reports the resident size of every held buffer, for pool
// accounting gauges.
func (s *Scratch) Bytes() int64 {
	if s == nil {
		return 0
	}
	n := 8 * int64(cap(s.lab.L)+cap(s.lab.A)+cap(s.lab.B)+cap(s.grad)+cap(s.dist))
	n += int64(cap(s.settled)) + 4*int64(cap(s.counts))
	n += 4 * int64(cap(s.fxL)+cap(s.fxA)+cap(s.fxB))
	n += 8 * int64(cap(s.fxGrad))
	n += int64(cap(s.fxCenters))*40 + int64(cap(s.fxAcc))*48
	return n
}

// labFor returns the Lab conversion of im, scratch-backed when s is
// non-nil.
func (s *Scratch) labFor(im *imgio.Image) *slic.LabImage {
	if s == nil {
		return slic.ToLab(im)
	}
	slic.ToLabInto(&s.lab, im)
	return &s.lab
}

// initCenters runs grid initialization, routing the gradient buffer
// through the scratch when available. The centers slice is always
// freshly allocated: Result.Centers escapes to the caller (warm-start
// states hold it across frames), so it must not alias reused memory.
func (s *Scratch) initCenters(lab *slic.LabImage, k int, perturb bool) []slic.Center {
	if s == nil {
		return slic.InitCenters(lab, k, perturb)
	}
	centers, grad := slic.InitCentersInto(lab, k, perturb, nil, s.grad)
	s.grad = grad
	return centers
}

// boolsFor returns a false-initialized bool slice of length n.
func (s *Scratch) boolsFor(n int) []bool {
	if s == nil {
		return make([]bool, n)
	}
	if cap(s.settled) < n {
		s.settled = make([]bool, n)
	}
	b := s.settled[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// sigmasFor returns a sigma accumulator slice of length n; the pass
// loop zeroes it before every use, so no reset happens here.
func (s *Scratch) sigmasFor(n int) []sigma {
	if s == nil {
		return make([]sigma, n)
	}
	if cap(s.acc) < n {
		s.acc = make([]sigma, n)
	}
	return s.acc[:n]
}

// distFor returns a float64 buffer of length n for the CPA
// minimum-distance state; the caller re-initializes it to +Inf.
func (s *Scratch) distFor(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
	}
	return s.dist[:n]
}

// countsFor returns a zeroed int32 count slice of length n.
func (s *Scratch) countsFor(n int) []int32 {
	var c []int32
	if s == nil || cap(s.counts) < n {
		c = make([]int32, n)
		if s != nil {
			s.counts = c
		}
	} else {
		c = s.counts[:n]
	}
	for i := range c {
		c[i] = 0
	}
	return c
}

// codesFor returns the three int32 Lab code planes of length n for the
// fixed datapath's LUT conversion, which overwrites every element.
func (s *Scratch) codesFor(n int) (l, a, b []int32) {
	if s == nil {
		return make([]int32, n), make([]int32, n), make([]int32, n)
	}
	if cap(s.fxL) < n {
		s.fxL = make([]int32, n)
		s.fxA = make([]int32, n)
		s.fxB = make([]int32, n)
	}
	return s.fxL[:n], s.fxA[:n], s.fxB[:n]
}

// fxGradFor returns an int64 gradient buffer of length n; the fixed
// gradient map overwrites every element.
func (s *Scratch) fxGradFor(n int) []int64 {
	if s == nil {
		return make([]int64, n)
	}
	if cap(s.fxGrad) < n {
		s.fxGrad = make([]int64, n)
	}
	return s.fxGrad[:n]
}

// fxCentersFor returns a fixed register file of length n; every entry
// is written by quantizeCenters or initCentersFixed before use.
func (s *Scratch) fxCentersFor(n int) []fxCenter {
	if s == nil {
		return make([]fxCenter, n)
	}
	if cap(s.fxCenters) < n {
		s.fxCenters = make([]fxCenter, n)
	}
	return s.fxCenters[:n]
}

// fxSigmasFor returns a fixed accumulator slice of length n; the pass
// loop zeroes it before every use.
func (s *Scratch) fxSigmasFor(n int) []fxSigma {
	if s == nil {
		return make([]fxSigma, n)
	}
	if cap(s.fxAcc) < n {
		s.fxAcc = make([]fxSigma, n)
	}
	return s.fxAcc[:n]
}

// qualityScan fills the Stats quality proxies from the final labels in
// one deterministic O(N) pass: per-cluster pixel counts (empty-cluster
// count and size coefficient of variation) and the 4-neighbor boundary
// pixel count. Labels are identical across worker counts on both
// datapaths, so every derived value is too — the property the live
// quality proxies inherit and the determinism tests pin. The counts
// buffer comes from the scratch, keeping the steady-state request path
// allocation-free.
func qualityScan(labels *imgio.LabelMap, k int, scr *Scratch, st *Stats) {
	counts := scr.countsFor(k)
	w, h := labels.W, labels.H
	lb := labels.Labels
	boundary := 0
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			v := lb[i]
			if v >= 0 && int(v) < len(counts) {
				counts[v]++
			}
			if (x > 0 && lb[i-1] != v) || (x < w-1 && lb[i+1] != v) ||
				(y > 0 && lb[i-w] != v) || (y < h-1 && lb[i+w] != v) {
				boundary++
			}
		}
	}
	empty := 0
	var sum, sum2 float64
	for _, c := range counts {
		if c == 0 {
			empty++
		}
		f := float64(c)
		sum += f
		sum2 += f * f
	}
	st.EmptyClusters = empty
	st.BoundaryPixels = boundary
	if n := float64(len(counts)); n > 0 && sum > 0 {
		mean := sum / n
		variance := sum2/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		st.ClusterSizeCV = math.Sqrt(variance) / mean
	}
}
