// Package sslic implements Subsampled SLIC (S-SLIC), the paper's primary
// contribution (§3): at each iteration only a subset of the image pixels
// (or of the superpixel centers) is used to update the cluster state, in
// round-robin order over equal-size subsets — an ordered-subsets /
// stochastic-gradient style acceleration that cuts distance computations
// and memory bandwidth while preserving convergence.
//
// Two dataflow architectures are provided (§4.2):
//
//   - PPA (pixel perspective): each visited pixel evaluates the 9
//     spatially closest initial centers from a precomputed static tiling
//     and claims the nearest; superpixel sigma accumulators are updated
//     on the fly. Reads the image once per pass.
//   - CPA (center perspective): each updated center scans its 2S×2S patch
//     like original SLIC; overlapping patches re-read pixels ~4×.
//
// The package also exposes the operation-count and DRAM-traffic analysis
// behind Table 2 and the preemptive per-cluster early-halt extension the
// paper cites as composable future work (§8).
package sslic

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/slic"
	"sslic/internal/telemetry"
)

// Arch selects the dataflow architecture of §4.2.
type Arch int

const (
	// PPA is the pixel perspective architecture, the paper's choice.
	PPA Arch = iota
	// CPA is the center perspective architecture baseline.
	CPA
)

// String returns the paper's name for the architecture.
func (a Arch) String() string {
	if a == CPA {
		return "CPA"
	}
	return "PPA"
}

// Scheme selects how pixels (PPA) or centers (CPA) are split into
// subsets — the "different subsampling mechanisms" the paper explores.
type Scheme int

const (
	// Interleaved assigns pixel (x, y) to subset (x+y) mod k: diagonal
	// stripes, a checkerboard for k=2. Spatially uniform, the default.
	Interleaved Scheme = iota
	// Rows assigns by y mod k: horizontal stripe interleave, the most
	// DRAM-friendly streaming pattern.
	Rows
	// Blocks splits the image into k contiguous horizontal bands. The
	// spatially worst choice — included to show why subset design matters
	// for convergence (cf. the OS-EM subset balance requirement).
	Blocks
	// Hashed assigns by a pixel-position hash: an unstructured
	// stochastic-gradient-like subset.
	Hashed
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Rows:
		return "rows"
	case Blocks:
		return "blocks"
	case Hashed:
		return "hashed"
	default:
		return "interleaved"
	}
}

// DatapathKind selects the arithmetic of the PPA hot loop.
type DatapathKind int

const (
	// Float64 is the reference datapath: float64 CIELAB conversion and
	// Equation-5 distances, the oracle the fixed path is tested against.
	Float64 DatapathKind = iota
	// Fixed is the paper's hardware datapath (§4.3, §6.1): 8-bit Lab codes
	// from the internal/lut Color Conversion Unit (gamma LUT + PWL cube
	// root) and integer distance/accumulator arithmetic. Center sums use
	// exact integer accumulators, so tiled runs are bit-identical for
	// every TileWorkers value, not just per worker count.
	Fixed
)

// String names the datapath.
func (d DatapathKind) String() string {
	if d == Fixed {
		return "fixed"
	}
	return "float64"
}

// Params configures an S-SLIC run.
type Params struct {
	// K is the requested superpixel count.
	K int
	// Compactness is m in Equation 5.
	Compactness float64
	// FullIters is the number of full-image-equivalent iterations; the
	// run performs FullIters × Subsets subset passes so every
	// configuration visits each pixel the same number of times.
	FullIters int
	// Threshold stops early when the mean per-center movement in a pass
	// falls below it (0 disables).
	Threshold float64
	// SubsampleRatio is 1/Subsets: 1 disables subsampling, 0.5 and 0.25
	// are the paper's S-SLIC(0.5) and S-SLIC(0.25).
	SubsampleRatio float64
	// Arch selects PPA or CPA.
	Arch Arch
	// Scheme selects the subset construction.
	Scheme Scheme
	// PerturbCenters applies the 3×3 gradient perturbation at init.
	PerturbCenters bool
	// EnforceConnectivity runs the final stray-pixel pass.
	EnforceConnectivity bool
	// MinRegionDivisor sets the connectivity minimum size S²/divisor.
	MinRegionDivisor int
	// Datapath selects the hot-loop arithmetic: Float64 (default) is the
	// reference implementation, Fixed runs the paper's integer LUT
	// datapath (PPA only; see DatapathKind).
	Datapath DatapathKind
	// Quantization optionally models the reduced-precision hardware
	// datapath by quantizing the float64 path's Lab values and distances
	// (the §6.1 bit-width exploration). Mutually exclusive with
	// Datapath == Fixed, which replaces the arithmetic outright.
	Quantization slic.Datapath
	// Preemptive enables the per-cluster early halt of Preemptive SLIC
	// (Neubert & Protzel, ICPR 2014) composed with subsampling: tiles
	// whose 9 candidate centers have all stopped moving are skipped.
	Preemptive bool
	// PreemptThreshold is the per-center movement (pixels, L1) below
	// which a center counts as settled. Zero selects 0.5.
	PreemptThreshold float64
	// InitialCenters seeds the superpixel centers instead of grid
	// initialization — the warm-start path video pipelines use to carry
	// centers across frames. Length must equal the effective K (the
	// center grid size for the image and K).
	InitialCenters []slic.Center
	// TileWorkers sets the number of goroutines for the PPA cluster-update
	// pass: 0 or 1 runs serially, n > 1 uses n workers, -1 uses
	// runtime.GOMAXPROCS(0). Tile rows are partitioned into contiguous
	// bands with per-band sigma accumulators merged in fixed band order,
	// so labels are deterministic for a given worker count. On the
	// Float64 datapath center coordinates can differ from the serial path
	// in the last floating-point bits because summation order changes; on
	// the Fixed datapath the integer accumulators are exactly
	// associative, so output is bit-identical for EVERY worker count.
	TileWorkers int
	// LabelBuf optionally supplies a preallocated label map that the run
	// writes its result into instead of allocating a fresh one — the
	// buffer-reuse hook streaming pipelines use to keep the per-frame hot
	// loop allocation-free. It must match the image dimensions (a
	// mismatched buffer is ignored and a new map is allocated); prior
	// contents are overwritten. The returned Result.Labels aliases it.
	LabelBuf *imgio.LabelMap
	// Metrics, when non-nil, records the run into a telemetry registry:
	// per-pass latency and residual, distance-computation counters, and
	// whole-run latency. See NewMetrics. nil disables recording.
	Metrics *Metrics
	// Scratch optionally supplies reusable working memory — Lab planes,
	// gradient map, accumulators, quality-scan counts — so steady-state
	// streams segment without per-frame buffer allocations (the Lab
	// planes alone are 24 bytes/pixel). A Scratch must not be shared by
	// concurrent runs: give each worker its own and reuse it across
	// frames. nil allocates fresh buffers per run (the one-shot path).
	Scratch *Scratch
	// SoftwareCenterUpdate selects the paper's CPU software organization
	// for the center update phase: after every subset pass, a separate
	// full-image accumulation recomputes all centers from the current
	// labels (this is what Table 1 profiles — its cost grows with the
	// subset count, 10.2%→17.9%). The default (false) is the
	// hardware-faithful fused path, where sigma accumulators are updated
	// inside the cluster-update pass and only the averages are computed
	// afterwards.
	SoftwareCenterUpdate bool
}

// DefaultParams mirrors the paper's evaluation setup: m=10, 10 full
// iterations, PPA with interleaved subsets at the given ratio.
func DefaultParams(k int, ratio float64) Params {
	return Params{
		K:                   k,
		Compactness:         10,
		FullIters:           10,
		SubsampleRatio:      ratio,
		Arch:                PPA,
		Scheme:              Interleaved,
		PerturbCenters:      true,
		EnforceConnectivity: true,
		MinRegionDivisor:    4,
	}
}

// Subsets returns the subset count k = round(1/ratio).
func (p Params) Subsets() int {
	if p.SubsampleRatio >= 1 {
		return 1
	}
	return int(math.Round(1 / p.SubsampleRatio))
}

// Validate reports whether the parameters are usable for a w×h image.
func (p Params) Validate(w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("sslic: invalid image size %dx%d", w, h)
	}
	if p.K < 1 || p.K > w*h {
		return fmt.Errorf("sslic: K = %d out of range [1, %d]", p.K, w*h)
	}
	if p.Compactness <= 0 {
		return fmt.Errorf("sslic: compactness %g, want > 0", p.Compactness)
	}
	if p.FullIters < 1 {
		return fmt.Errorf("sslic: FullIters = %d, want >= 1", p.FullIters)
	}
	if p.SubsampleRatio <= 0 || p.SubsampleRatio > 1 {
		return fmt.Errorf("sslic: subsample ratio %g out of (0, 1]", p.SubsampleRatio)
	}
	if p.Datapath != Float64 && p.Datapath != Fixed {
		return fmt.Errorf("sslic: unknown datapath %d", p.Datapath)
	}
	if p.Datapath == Fixed {
		if p.Arch == CPA {
			return fmt.Errorf("sslic: the fixed datapath requires the PPA architecture")
		}
		if p.Quantization.Enabled {
			return fmt.Errorf("sslic: the fixed datapath replaces the arithmetic; Quantization does not apply")
		}
		if p.SoftwareCenterUpdate {
			return fmt.Errorf("sslic: the fixed datapath uses the fused hardware center update; SoftwareCenterUpdate does not apply")
		}
	}
	return nil
}

// Stats extends the SLIC phase accounting with subsampling counters.
type Stats struct {
	slic.Stats
	SubsetPasses int
	// SkippedTiles counts tiles the preemptive extension skipped.
	SkippedTiles int64
	// SavedDistanceCalcs counts Equation 5 evaluations avoided by
	// preemption.
	SavedDistanceCalcs int64

	// Quality proxies, filled by a deterministic O(N) scan over the
	// final labels (shared by every architecture and datapath). They
	// are the live stand-ins for the paper's offline quality metrics:
	// EmptyClusters and ClusterSizeCV track under-segmentation
	// collapse, BoundaryPixels tracks boundary density (the BR proxy).
	EmptyClusters int
	// ClusterSizeCV is the coefficient of variation (stddev/mean) of
	// per-cluster pixel counts across the effective K clusters.
	ClusterSizeCV float64
	// BoundaryPixels counts pixels with at least one 4-neighbor of a
	// different label.
	BoundaryPixels int
}

// FinalResidual returns the last pass's mean per-center movement, the
// residual the convergence proxies read (0 before any pass runs).
func (st Stats) FinalResidual() float64 {
	if n := len(st.MoveHistory); n > 0 {
		return st.MoveHistory[n-1]
	}
	return 0
}

// ResidualDecay returns the final residual over the first — the
// convergence rate across the run's subset passes. 1 means no
// improvement; values near 0 mean the centers settled. Returns 1 when
// fewer than two passes ran or the first residual is 0.
func (st Stats) ResidualDecay() float64 {
	if len(st.MoveHistory) < 2 || st.MoveHistory[0] <= 0 {
		return 1
	}
	return st.FinalResidual() / st.MoveHistory[0]
}

// Result is the output of an S-SLIC run.
type Result struct {
	Labels  *imgio.LabelMap
	Centers []slic.Center
	Tiling  *Tiling
	Stats   Stats
}

// Segment runs S-SLIC per Figure 1b (PPA) or the CPA variant.
func Segment(im *imgio.Image, p Params) (*Result, error) {
	return SegmentContext(context.Background(), im, p)
}

// SegmentContext is Segment with cancellation: the context is checked
// before every subset pass (and once more before the connectivity
// sweep), so a canceled or deadline-expired request returns within one
// subset round rather than running its full iteration budget. The
// partial segmentation state is discarded; the returned error is the
// context's error. This is the deadline-propagation hook the serving
// layer uses to stop paying for requests whose clients have given up.
func SegmentContext(ctx context.Context, im *imgio.Image, p Params) (*Result, error) {
	if err := p.Validate(im.W, im.H); err != nil {
		return nil, err
	}
	t0 := time.Now()
	var r *Result
	var err error
	switch {
	case p.Arch == CPA:
		r, err = segmentCPA(ctx, im, p)
	case p.Datapath == Fixed:
		r, err = segmentPPAFixed(ctx, im, p)
	default:
		r, err = segmentPPA(ctx, im, p)
	}
	if err == nil {
		dur := time.Since(t0)
		p.Metrics.observeRun(dur, r.Stats, r.Stats.Converged)
		// Charge the request's cost ledger: segmentation wall time,
		// compute time (the summed phase times — on the serial path
		// these equal the trace's per-phase event durations), and the
		// label-map buffer when this run allocated one rather than
		// reusing the caller's.
		if c := telemetry.CostFrom(ctx); c != nil {
			c.AddSegment(dur)
			c.AddCPU(r.Stats.Total())
			if p.LabelBuf == nil {
				c.AddAlloc(int64(4 * im.W * im.H))
			}
		}
	}
	return r, err
}

// subsetOf reports the subset index of pixel (x, y) under the scheme.
func subsetOf(scheme Scheme, x, y, w, h, k int) int {
	switch scheme {
	case Rows:
		return y % k
	case Blocks:
		return y * k / h
	case Hashed:
		hsh := uint32(x)*0x9E3779B9 + uint32(y)*0x85EBCA6B
		hsh ^= hsh >> 16
		return int(hsh % uint32(k))
	default: // Interleaved
		return (x + y) % k
	}
}

// sigma is the accumulator register file of the Cluster Update Unit: the
// six fields (L, a, b, x, y, count) the hardware updates with six adders.
type sigma struct {
	l, a, b, x, y float64
	n             int
}

func segmentPPA(ctx context.Context, im *imgio.Image, p Params) (*Result, error) {
	var st Stats
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The request trace rides the context: each phase below lands one
	// event on the frame's timeline. A nil trace (the untraced hot path)
	// costs one pointer check per phase.
	tr := telemetry.TraceFrom(ctx)

	t0 := time.Now()
	lab := p.Scratch.labFor(im)
	p.Quantization.QuantizeLab(lab)
	st.ColorConvTime = time.Since(t0)
	tr.Emit("colorconv", "sslic", t0, st.ColorConvTime, nil)

	t0 = time.Now()
	tiling := NewTiling(im.W, im.H, p.K)
	var centers []slic.Center
	if p.InitialCenters != nil {
		if len(p.InitialCenters) != tiling.NumTiles() {
			return nil, fmt.Errorf("sslic: %d initial centers, want %d", len(p.InitialCenters), tiling.NumTiles())
		}
		centers = append([]slic.Center(nil), p.InitialCenters...)
	} else {
		centers = p.Scratch.initCenters(lab, p.K, p.PerturbCenters)
	}
	if len(centers) != tiling.NumTiles() {
		return nil, fmt.Errorf("sslic: internal: %d centers vs %d tiles", len(centers), tiling.NumTiles())
	}
	// Static initial assignment: every pixel starts labeled with its own
	// cell center (the paper initializes the external-memory copy of the
	// assignments before the first pass). The loop writes every pixel, so
	// a reused buffer needs no separate reset.
	labels := labelBufOrNew(p.LabelBuf, im.W, im.H, false)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			labels.Set(x, y, tiling.OwnCenter(x, y))
		}
	}
	st.InitTime = time.Since(t0)
	tr.Emit("init", "sslic", t0, st.InitTime, nil)

	s := slic.GridInterval(im.W, im.H, p.K)
	invS2 := p.Compactness * p.Compactness / (s * s)
	quant := p.Quantization.DistQuantizer()

	k := p.Subsets()
	totalPasses := p.FullIters * k
	preemptThresh := p.PreemptThreshold
	if preemptThresh == 0 {
		preemptThresh = 0.5
	}
	settled := p.Scratch.boolsFor(len(centers))

	acc := p.Scratch.sigmasFor(len(centers))
	scr := p.Scratch.passFloat()
	for pass := 0; pass < totalPasses; pass++ {
		// Checked once per subset pass: a pass touches ~1/k of the image,
		// so cancellation latency is bounded by one subset round. The
		// fault hook rides the same granularity — an injected failure
		// surfaces between passes, exactly where cancellation would.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faults.Fire(faults.PointSubsetPass); err != nil {
			return nil, fmt.Errorf("sslic: pass %d: %w", pass, err)
		}
		subset := pass % k
		passStart := time.Now()

		t0 = time.Now()
		for i := range acc {
			acc[i] = sigma{}
		}
		calcs, skipped, saved, err := runPPAPass(lab, tiling, centers, labels, acc, subset, k, invS2, quant, &p, settled, tr, pass, scr)
		if err != nil {
			return nil, err
		}
		st.DistanceCalcs += calcs
		st.SkippedTiles += skipped
		st.SavedDistanceCalcs += saved
		st.AssignTime += time.Since(t0)

		t0 = time.Now()
		var move float64
		if p.SoftwareCenterUpdate {
			var prev []slic.Center
			if p.Preemptive {
				prev = append([]slic.Center(nil), centers...)
			}
			move = slic.UpdateCenters(lab, labels, centers)
			for ci := range prev {
				m := math.Abs(centers[ci].X-prev[ci].X) + math.Abs(centers[ci].Y-prev[ci].Y)
				settled[ci] = m < preemptThresh
			}
		} else {
			move = applySigma(centers, acc, settled, preemptThresh, p.Preemptive)
		}
		st.CenterUpdates += int64(len(centers))
		st.UpdateTime += time.Since(t0)
		st.SubsetPasses = pass + 1
		st.Iterations = (pass + k) / k
		residual := move / float64(len(centers))
		st.MoveHistory = append(st.MoveHistory, residual)
		passDur := time.Since(passStart)
		p.Metrics.observePass(passDur, pass, totalPasses, residual)
		if tr != nil {
			tr.Emit("pass", "sslic", passStart, passDur, map[string]any{
				"pass": pass, "subset": subset, "arch": "PPA",
				"distance_calcs": calcs, "residual": residual,
				"skipped_tiles": skipped,
			})
		}

		if p.Threshold > 0 && residual < p.Threshold {
			st.Converged = true
			break
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	if p.EnforceConnectivity {
		minSize := int(s*s) / maxInt(1, p.MinRegionDivisor)
		slic.EnforceConnectivity(labels, minSize)
		tr.Emit("connectivity", "sslic", t0, time.Since(t0), nil)
	}
	qualityScan(labels, len(centers), p.Scratch, &st)
	st.OtherTime = time.Since(t0)

	return &Result{Labels: labels, Centers: centers, Tiling: tiling, Stats: st}, nil
}

// tileBands splits the NY tile rows into min(workers, NY) contiguous
// bands, resolving the TileWorkers conventions (-1 = all CPUs, <=1 =
// serial). The [i*NY/n, (i+1)*NY/n) split is the fixed decomposition
// both datapaths and the determinism tests rely on.
func tileBands(workers, ny int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ny {
		workers = ny
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// bandStat is one band's share of a pass, recorded for the per-tile
// trace events and the imbalance gauge.
type bandStat struct {
	calcs, skipped, saved int64
	start                 time.Time
	dur                   time.Duration
	err                   error
}

// passScratch is the per-pass working state — band stats plus one sigma
// accumulator slice per worker — hoisted out of the pass loop so a
// request allocates it once instead of once per subset pass. S is the
// datapath's accumulator type (sigma or fxSigma).
type passScratch[S any] struct {
	bands []bandStat
	accs  [][]S
}

// bandsFor returns a zeroed band-stat slice for the given worker count.
func (s *passScratch[S]) bandsFor(workers int) []bandStat {
	if cap(s.bands) < workers {
		s.bands = make([]bandStat, workers)
	}
	b := s.bands[:workers]
	for i := range b {
		b[i] = bandStat{}
	}
	return b
}

// accsFor returns zeroed per-worker accumulator slices of the given
// center count.
func (s *passScratch[S]) accsFor(workers, centers int) [][]S {
	if cap(s.accs) < workers {
		s.accs = make([][]S, workers)
	}
	a := s.accs[:workers]
	var zero S
	for i := range a {
		if cap(a[i]) < centers {
			a[i] = make([]S, centers)
			continue
		}
		a[i] = a[i][:centers]
		for j := range a[i] {
			a[i][j] = zero
		}
	}
	return a
}

// observeBands lands the band timings on the trace (one "tile" span per
// band, emitted in band order from the merging goroutine so traces stay
// single-writer) and on the tile gauges. Serial passes skip the trace
// spans — the "pass" event already covers the single band.
func observeBands(tr *telemetry.Trace, m *Metrics, pass int, bands []bandStat) {
	if tr != nil && len(bands) > 1 {
		for i := range bands {
			tr.Emit("tile", "sslic", bands[i].start, bands[i].dur, map[string]any{
				"pass": pass, "band": i, "distance_calcs": bands[i].calcs,
			})
		}
	}
	var maxDur, sumDur time.Duration
	for i := range bands {
		sumDur += bands[i].dur
		if bands[i].dur > maxDur {
			maxDur = bands[i].dur
		}
	}
	m.observeTiles(len(bands), maxDur, sumDur)
}

// bandError returns the lowest-band failure, so a multi-band pass fails
// deterministically regardless of goroutine scheduling.
func bandError(pass int, bands []bandStat) error {
	for i := range bands {
		if bands[i].err != nil {
			return fmt.Errorf("sslic: pass %d band %d: %w", pass, i, bands[i].err)
		}
	}
	return nil
}

// runPPAPass executes one subset pass, serially or across worker
// goroutines per Params.TileWorkers. Parallel runs partition the tile
// rows into bands; each band accumulates into its own sigma slice,
// merged afterwards in band order so results match the serial path
// exactly. Every band passes through the sslic.tile fault point.
func runPPAPass(lab *slic.LabImage, tiling *Tiling, centers []slic.Center, labels *imgio.LabelMap,
	acc []sigma, subset, k int, invS2 float64, quant func(float64) float64, p *Params, settled []bool,
	tr *telemetry.Trace, pass int, scr *passScratch[sigma]) (calcs, skippedTiles, saved int64, err error) {

	workers := tileBands(p.TileWorkers, tiling.NY)
	if workers <= 1 {
		band := scr.bandsFor(1)
		band[0].start = time.Now()
		if err := faults.Fire(faults.PointTile); err != nil {
			band[0].err = err
			return 0, 0, 0, bandError(pass, band)
		}
		calcs, skippedTiles, saved = ppaPassRange(lab, tiling, centers, labels, acc, 0, tiling.NY, subset, k, invS2, quant, *p, settled)
		band[0].calcs, band[0].skipped, band[0].saved = calcs, skippedTiles, saved
		band[0].dur = time.Since(band[0].start)
		observeBands(tr, p.Metrics, pass, band)
		return calcs, skippedTiles, saved, nil
	}

	parts := scr.bandsFor(workers)
	accs := scr.accsFor(workers, len(centers))
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wkr := wkr
		ty0 := wkr * tiling.NY / workers
		ty1 := (wkr + 1) * tiling.NY / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[wkr].start = time.Now()
			if err := faults.Fire(faults.PointTile); err != nil {
				parts[wkr].err = err
			} else {
				parts[wkr].calcs, parts[wkr].skipped, parts[wkr].saved =
					ppaPassRange(lab, tiling, centers, labels, accs[wkr], ty0, ty1, subset, k, invS2, quant, *p, settled)
			}
			parts[wkr].dur = time.Since(parts[wkr].start)
		}()
	}
	wg.Wait()
	if err := bandError(pass, parts); err != nil {
		return 0, 0, 0, err
	}
	for i := range parts {
		for ci := range acc {
			a := &acc[ci]
			b := &accs[i][ci]
			a.l += b.l
			a.a += b.a
			a.b += b.b
			a.x += b.x
			a.y += b.y
			a.n += b.n
		}
		calcs += parts[i].calcs
		skippedTiles += parts[i].skipped
		saved += parts[i].saved
	}
	observeBands(tr, p.Metrics, pass, parts)
	return calcs, skippedTiles, saved, nil
}

// ppaPassRange visits every pixel of the given subset within tile rows
// [tyFrom, tyTo), performing the 9-candidate distance + minimum + sigma
// accumulation of the Cluster Update Unit. Returns (distance calcs,
// skipped tiles, saved calcs).
func ppaPassRange(lab *slic.LabImage, tiling *Tiling, centers []slic.Center, labels *imgio.LabelMap,
	acc []sigma, tyFrom, tyTo, subset, k int, invS2 float64, quant func(float64) float64, p Params, settled []bool) (calcs, skippedTiles, saved int64) {

	w, h := lab.W, lab.H
	for ty := tyFrom; ty < tyTo; ty++ {
		y0 := ty * h / tiling.NY
		y1 := (ty + 1) * h / tiling.NY
		for tx := 0; tx < tiling.NX; tx++ {
			tileIdx := ty*tiling.NX + tx
			cand := tiling.Candidates[tileIdx]

			if p.Preemptive && allSettled(cand, settled) {
				skippedTiles++
				// Estimate saved work: subset pixels in tile × candidates.
				x0 := tx * w / tiling.NX
				x1 := (tx + 1) * w / tiling.NX
				saved += int64((x1 - x0) * (y1 - y0) / k * len(cand))
				continue
			}

			x0 := tx * w / tiling.NX
			x1 := (tx + 1) * w / tiling.NX
			for y := y0; y < y1; y++ {
				row := y * w
				// The Interleaved and Rows schemes admit strided iteration,
				// so a ratio-1/k pass visits (and pays for) only ~1/k of the
				// pixels — the bandwidth/compute saving S-SLIC exists for.
				startX, stepX := x0, 1
				if k > 1 {
					switch p.Scheme {
					case Interleaved:
						startX = x0 + mod(subset-(x0+y), k)
						stepX = k
					case Rows:
						if y%k != subset {
							continue
						}
					case Blocks:
						if y*k/h != subset {
							continue
						}
					}
				}
				for x := startX; x < x1; x += stepX {
					if k > 1 && p.Scheme == Hashed && subsetOf(p.Scheme, x, y, w, h, k) != subset {
						continue
					}
					i := row + x
					l, a, b := lab.L[i], lab.A[i], lab.B[i]
					best := int32(-1)
					bestD := math.Inf(1)
					for _, ci := range cand {
						d := slic.Distance5(l, a, b, float64(x), float64(y), &centers[ci], invS2)
						if quant != nil {
							d = quant(d)
						}
						calcs++
						if d < bestD {
							bestD = d
							best = ci
						}
					}
					labels.Labels[i] = best
					if !p.SoftwareCenterUpdate {
						sg := &acc[best]
						sg.l += l
						sg.a += a
						sg.b += b
						sg.x += float64(x)
						sg.y += float64(y)
						sg.n++
					}
				}
			}
		}
	}
	return calcs, skippedTiles, saved
}

// applySigma is the Center Update Unit: each superpixel's new 5-D center
// is the average of its sigma accumulator. It returns the summed L1
// center movement in the (x, y) plane and updates the settled flags when
// preemption is active.
func applySigma(centers []slic.Center, acc []sigma, settled []bool, preemptThresh float64, preemptive bool) float64 {
	var move float64
	for ci := range centers {
		sg := acc[ci]
		if sg.n == 0 {
			continue
		}
		n := float64(sg.n)
		c := &centers[ci]
		nx, ny := sg.x/n, sg.y/n
		m := math.Abs(nx-c.X) + math.Abs(ny-c.Y)
		move += m
		c.L, c.A, c.B, c.X, c.Y = sg.l/n, sg.a/n, sg.b/n, nx, ny
		if preemptive {
			settled[ci] = m < preemptThresh
		}
	}
	return move
}

func allSettled(cand []int32, settled []bool) bool {
	for _, ci := range cand {
		if !settled[ci] {
			return false
		}
	}
	return true
}

// labelBufOrNew returns buf when it matches w×h, else a fresh label map.
// CPA assigns pixels through a running minimum rather than visiting every
// pixel each pass, so a reused buffer must be reset to Unassigned first.
func labelBufOrNew(buf *imgio.LabelMap, w, h int, reset bool) *imgio.LabelMap {
	if buf == nil || buf.W != w || buf.H != h {
		return imgio.NewLabelMap(w, h)
	}
	if reset {
		for i := range buf.Labels {
			buf.Labels[i] = imgio.Unassigned
		}
	}
	return buf
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mod returns a mod k in [0, k), also for negative a.
func mod(a, k int) int {
	m := a % k
	if m < 0 {
		m += k
	}
	return m
}
