package sslic

import "sslic/internal/slic"

// Tiling is the static pixel→candidate-centers structure of the PPA
// (paper §4.3): the image is split into grid cells matching the initial
// center grid, and every pixel of a cell shares the same list of (up to)
// 9 spatially closest initial centers — the cell's own center plus its 8
// neighbors. The paper precomputes these lists offline and stores them in
// external memory; "statically assigning these values has minimal effect
// on the accuracy".
type Tiling struct {
	W, H   int
	NX, NY int
	// Candidates[t] holds the center indices for tile t (gy*NX+gx).
	// Interior tiles have 9; border tiles fewer.
	Candidates [][]int32
}

// NewTiling builds the static tiling for a w×h image and k requested
// superpixels, matching the center grid produced by slic.InitCenters.
func NewTiling(w, h, k int) *Tiling {
	nx, ny := slic.CenterGridDims(w, h, k)
	t := &Tiling{W: w, H: h, NX: nx, NY: ny, Candidates: make([][]int32, nx*ny)}
	// All tile lists share one flat backing array: one allocation instead
	// of nx*ny, matching the paper's single static candidate table in
	// external memory. Lists never grow past their 9-slot reservation.
	backing := make([]int32, 0, 9*nx*ny)
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			start := len(backing)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					cx, cy := gx+dx, gy+dy
					if cx < 0 || cx >= nx || cy < 0 || cy >= ny {
						continue
					}
					backing = append(backing, int32(cy*nx+cx))
				}
			}
			t.Candidates[gy*nx+gx] = backing[start:len(backing):len(backing)]
		}
	}
	return t
}

// TileOf returns the tile index of pixel (x, y).
func (t *Tiling) TileOf(x, y int) int {
	gx := x * t.NX / t.W
	if gx >= t.NX {
		gx = t.NX - 1
	}
	gy := y * t.NY / t.H
	if gy >= t.NY {
		gy = t.NY - 1
	}
	return gy*t.NX + gx
}

// OwnCenter returns the index of the pixel's own cell center, the static
// initial assignment (the paper initializes the external-memory label copy
// before the first cluster-update pass).
func (t *Tiling) OwnCenter(x, y int) int32 {
	return int32(t.TileOf(x, y))
}

// NumTiles returns NX*NY, which equals the effective superpixel count.
func (t *Tiling) NumTiles() int { return t.NX * t.NY }
