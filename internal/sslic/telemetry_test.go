package sslic

import (
	"strings"
	"testing"

	"sslic/internal/telemetry"
)

// TestMetricsRecordRun checks that an instrumented Segment call feeds
// the registry: run/pass latencies, distance-calc counters matching the
// returned Stats, round progress reaching 1, and a residual gauge.
func TestMetricsRecordRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)

	im := testImage(64, 48)
	p := DefaultParams(12, 0.5)
	p.Metrics = m
	r, err := Segment(im, p)
	if err != nil {
		t.Fatalf("Segment: %v", err)
	}

	if got := m.Segmentations.Value(); got != 1 {
		t.Fatalf("segmentations = %g, want 1", got)
	}
	if got := m.DistanceCalcs.Value(); got != float64(r.Stats.DistanceCalcs) {
		t.Fatalf("distance calcs metric %g != stats %d", got, r.Stats.DistanceCalcs)
	}
	if got := m.SubsetPasses.Value(); got != float64(r.Stats.SubsetPasses) {
		t.Fatalf("subset passes metric %g != stats %d", got, r.Stats.SubsetPasses)
	}
	if got := m.RoundProgress.Value(); got != 1 {
		t.Fatalf("round progress = %g, want 1 after a full run", got)
	}
	if snap := m.SegLatency.Snapshot(); snap.Count != 1 || snap.Sum <= 0 {
		t.Fatalf("segment latency histogram count=%d sum=%g", snap.Count, snap.Sum)
	}
	if snap := m.PassLatency.Snapshot(); snap.Count != uint64(r.Stats.SubsetPasses) {
		t.Fatalf("pass latency count = %d, want %d", snap.Count, r.Stats.SubsetPasses)
	}

	// Residual matches the last MoveHistory entry.
	last := r.Stats.MoveHistory[len(r.Stats.MoveHistory)-1]
	if got := m.Residual.Value(); got != last {
		t.Fatalf("residual gauge %g != last move %g", got, last)
	}

	// The series surface under their exported names.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	for _, name := range []string{
		"sslic_distance_calcs_total",
		"sslic_subset_round_progress",
		"sslic_center_residual",
		"sslic_pass_seconds_bucket",
	} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("exposition missing %s:\n%s", name, b.String())
		}
	}
}

// TestMetricsNilIsNoop: a nil Metrics must not panic anywhere — the
// zero-cost default for uninstrumented runs.
func TestMetricsNilIsNoop(t *testing.T) {
	im := testImage(32, 32)
	p := DefaultParams(8, 0.5)
	p.Metrics = nil
	if _, err := Segment(im, p); err != nil {
		t.Fatalf("Segment without metrics: %v", err)
	}
}

// TestMetricsAccumulateAcrossRuns: one Metrics shared by several runs
// accumulates counters, the way a video stream shares one handle.
func TestMetricsAccumulateAcrossRuns(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	im := testImage(32, 32)
	p := DefaultParams(8, 0.5)
	p.Metrics = m
	var calcs int64
	for i := 0; i < 3; i++ {
		r, err := Segment(im, p)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		calcs += r.Stats.DistanceCalcs
	}
	if got := m.Segmentations.Value(); got != 3 {
		t.Fatalf("segmentations = %g, want 3", got)
	}
	if got := m.DistanceCalcs.Value(); got != float64(calcs) {
		t.Fatalf("distance calcs %g, want %d", got, calcs)
	}
}
