package sslic

import (
	"math"
	"testing"
)

func TestAnalyzeTable2Shape(t *testing.T) {
	// Table 2 at 1080p, full ratio: CPA ≈ 318 MB and 58 M ops; PPA ≈ 100
	// MB and 130 M ops. The model must land within 5% of the published
	// values and preserve the headline ratios (~3× bandwidth, ~2.25× ops).
	cpa := Analyze(CPA, 1920, 1080, 1)
	ppa := Analyze(PPA, 1920, 1080, 1)

	if math.Abs(cpa.TrafficMB()-318)/318 > 0.05 {
		t.Errorf("CPA traffic %.1f MB, want ~318", cpa.TrafficMB())
	}
	if math.Abs(ppa.TrafficMB()-100)/100 > 0.05 {
		t.Errorf("PPA traffic %.1f MB, want ~100", ppa.TrafficMB())
	}
	if math.Abs(cpa.OpsM()-58)/58 > 0.05 {
		t.Errorf("CPA ops %.1f M, want ~58", cpa.OpsM())
	}
	if math.Abs(ppa.OpsM()-130)/130 > 0.05 {
		t.Errorf("PPA ops %.1f M, want ~130", ppa.OpsM())
	}

	bwRatio := cpa.TrafficMB() / ppa.TrafficMB()
	if bwRatio < 2.8 || bwRatio > 3.5 {
		t.Errorf("bandwidth ratio %.2f, want ~3", bwRatio)
	}
	opRatio := ppa.OpsM() / cpa.OpsM()
	if math.Abs(opRatio-2.25) > 0.1 {
		t.Errorf("op ratio %.2f, want 2.25", opRatio)
	}
}

func TestAnalyzeSubsamplingScalesLinearly(t *testing.T) {
	full := Analyze(PPA, 1920, 1080, 1)
	half := Analyze(PPA, 1920, 1080, 0.5)
	if math.Abs(float64(half.TrafficBytes)*2-float64(full.TrafficBytes)) > 1 {
		t.Errorf("half-ratio traffic %d not half of %d", half.TrafficBytes, full.TrafficBytes)
	}
	if half.Ops*2 != full.Ops {
		t.Errorf("half-ratio ops %d not half of %d", half.Ops, full.Ops)
	}
}

func TestAnalyzeHeadlineBandwidthReduction(t *testing.T) {
	// The abstract's claim: subsampling reduces memory bandwidth by 1.8×
	// (S-SLIC(0.5) vs full SLIC per unit of convergence progress). Per
	// pass, ratio 0.5 halves traffic; the effective 1.8× accounts for the
	// extra center updates — verify the per-pass factor brackets it.
	full := Analyze(PPA, 1920, 1080, 1)
	half := Analyze(PPA, 1920, 1080, 0.5)
	factor := float64(full.TrafficBytes) / float64(half.TrafficBytes)
	if factor < 1.8 {
		t.Errorf("bandwidth reduction %.2f, want >= 1.8", factor)
	}
}

func TestAnalyzeScalesWithResolution(t *testing.T) {
	hd := Analyze(PPA, 1920, 1080, 1)
	vga := Analyze(PPA, 640, 480, 1)
	wantRatio := float64(1920*1080) / float64(640*480)
	gotRatio := float64(hd.TrafficBytes) / float64(vga.TrafficBytes)
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.01 {
		t.Errorf("resolution scaling %.2f, want %.2f", gotRatio, wantRatio)
	}
}

func TestMeasuredDistanceCalcsMatchModel(t *testing.T) {
	// The analytic PPA distance-calc model (9 per pixel per full
	// iteration) must agree with the instrumented implementation within
	// the border-tile allowance (border tiles have < 9 candidates).
	im := testImage(96, 96)
	p := DefaultParams(36, 1)
	p.FullIters = 1
	res, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	model := Analyze(PPA, 96, 96, 1)
	got := float64(res.Stats.DistanceCalcs)
	want := float64(model.DistanceCalcs)
	if got > want {
		t.Fatalf("measured %v calcs exceeds model %v", got, want)
	}
	// Border effects shave at most ~40% on a tiny 6×6 grid.
	if got < want*0.6 {
		t.Fatalf("measured %v calcs far below model %v", got, want)
	}
}
