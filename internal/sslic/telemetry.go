package sslic

import (
	"time"

	"sslic/internal/telemetry"
)

// Metrics is the S-SLIC core's telemetry handle: the paper's Table-2
// quantities (distance computations, i.e. Equation-5 evaluations) plus
// convergence observability (per-pass latency, subsample-round progress,
// residual center movement), live on a registry instead of only in the
// one-shot Stats struct a run returns.
//
// A nil *Metrics disables all recording at the cost of one pointer
// check per pass, so the hot loops need no conditional wiring. Create
// one per registry with NewMetrics and share it across runs: counters
// accumulate over the stream, gauges track the most recent pass.
type Metrics struct {
	// SegLatency is the whole-run latency histogram (seconds), labeled
	// by architecture.
	SegLatency *telemetry.Histogram
	// PassLatency is the per-subset-pass latency histogram (seconds).
	PassLatency *telemetry.Histogram
	// Segmentations counts completed Segment calls.
	Segmentations *telemetry.Counter
	// DistanceCalcs counts Equation-5 evaluations, the paper's
	// ops-per-iteration driver (Table 2).
	DistanceCalcs *telemetry.Counter
	// SubsetPasses counts completed subset passes across all runs.
	SubsetPasses *telemetry.Counter
	// RoundProgress is the current run's position in its subsample
	// round schedule, in [0, 1]: pass (i+1) of FullIters×Subsets.
	RoundProgress *telemetry.Gauge
	// Residual is the mean per-center movement of the latest pass — the
	// convergence gauge the Threshold stop tests against.
	Residual *telemetry.Gauge
	// Converged counts runs that stopped early via Threshold.
	Converged *telemetry.Counter
	// SkippedTiles and SavedDistanceCalcs count the preemptive
	// extension's effect.
	SkippedTiles       *telemetry.Counter
	SavedDistanceCalcs *telemetry.Counter
	// TileBands is the band count of the latest cluster-update pass (1 on
	// the serial path); TileImbalance is that pass's max/mean band
	// duration — 1.0 is a perfectly balanced split, higher means some
	// cores idled at the merge barrier.
	TileBands     *telemetry.Gauge
	TileImbalance *telemetry.Gauge
}

// NewMetrics registers the S-SLIC core metrics on the registry.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		SegLatency: reg.Histogram("sslic_segment_seconds",
			"Whole-run S-SLIC segmentation latency.", nil),
		PassLatency: reg.Histogram("sslic_pass_seconds",
			"Per-subset-pass latency (cluster update + center update).",
			[]float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5}),
		Segmentations: reg.Counter("sslic_segmentations_total",
			"Completed Segment calls."),
		DistanceCalcs: reg.Counter("sslic_distance_calcs_total",
			"Equation-5 distance evaluations (the Table-2 ops driver)."),
		SubsetPasses: reg.Counter("sslic_subset_passes_total",
			"Completed subset passes."),
		RoundProgress: reg.Gauge("sslic_subset_round_progress",
			"Current run's position in its subsample round schedule, 0 to 1."),
		Residual: reg.Gauge("sslic_center_residual",
			"Mean per-center movement of the latest pass, in pixels (L1)."),
		Converged: reg.Counter("sslic_converged_total",
			"Runs that stopped early on the movement threshold."),
		SkippedTiles: reg.Counter("sslic_preempt_skipped_tiles_total",
			"Tiles skipped by the preemptive early-halt extension."),
		SavedDistanceCalcs: reg.Counter("sslic_preempt_saved_calcs_total",
			"Distance evaluations avoided by preemption."),
		TileBands: reg.Gauge("sslic_tile_bands",
			"Row bands of the latest cluster-update pass (1 = serial)."),
		TileImbalance: reg.Gauge("sslic_tile_imbalance",
			"Max/mean band duration of the latest pass (1.0 = balanced)."),
	}
}

// observeTiles records one pass's band decomposition: how many bands ran
// and how unevenly their durations split.
func (m *Metrics) observeTiles(bands int, maxDur, sumDur time.Duration) {
	if m == nil {
		return
	}
	m.TileBands.Set(float64(bands))
	imbalance := 1.0
	if bands > 0 && sumDur > 0 {
		imbalance = float64(maxDur) * float64(bands) / float64(sumDur)
	}
	m.TileImbalance.Set(imbalance)
}

// observePass records one subset pass: its latency, the run's position
// in the round schedule, and the residual center movement.
func (m *Metrics) observePass(lat time.Duration, pass, totalPasses int, residual float64) {
	if m == nil {
		return
	}
	m.PassLatency.Observe(lat.Seconds())
	m.SubsetPasses.Inc()
	if totalPasses > 0 {
		m.RoundProgress.Set(float64(pass+1) / float64(totalPasses))
	}
	m.Residual.Set(residual)
}

// observeRun records a completed Segment call from its latency and
// accumulated Stats.
func (m *Metrics) observeRun(lat time.Duration, st Stats, converged bool) {
	if m == nil {
		return
	}
	m.SegLatency.Observe(lat.Seconds())
	m.Segmentations.Inc()
	m.DistanceCalcs.Add(float64(st.DistanceCalcs))
	m.SkippedTiles.Add(float64(st.SkippedTiles))
	m.SavedDistanceCalcs.Add(float64(st.SavedDistanceCalcs))
	if converged {
		m.Converged.Inc()
	}
}
