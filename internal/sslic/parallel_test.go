package sslic

import (
	"testing"
)

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestParallelMatchesSerial is the determinism contract of the Workers
// knob: any worker count must produce the serial labeling, the same
// work counters, and centers equal up to floating-point summation order.
func TestParallelMatchesSerial(t *testing.T) {
	im := testImage(128, 96)
	serial := func() *Result {
		p := DefaultParams(48, 0.5)
		r, err := Segment(im, p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	for _, workers := range []int{2, 3, 8, -1} {
		p := DefaultParams(48, 0.5)
		p.TileWorkers = workers
		r, err := Segment(im, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial.Labels.Labels {
			if serial.Labels.Labels[i] != r.Labels.Labels[i] {
				t.Fatalf("workers=%d: label mismatch at %d", workers, i)
			}
		}
		if serial.Stats.DistanceCalcs != r.Stats.DistanceCalcs {
			t.Fatalf("workers=%d: calcs %d vs %d", workers,
				r.Stats.DistanceCalcs, serial.Stats.DistanceCalcs)
		}
		for ci := range serial.Centers {
			a, b := serial.Centers[ci], r.Centers[ci]
			if abs(a.X-b.X) > 1e-6 || abs(a.Y-b.Y) > 1e-6 || abs(a.L-b.L) > 1e-6 {
				t.Fatalf("workers=%d: center %d differs beyond FP tolerance", workers, ci)
			}
		}
	}
}

// TestParallelMoreWorkersThanRows clamps gracefully.
func TestParallelMoreWorkersThanRows(t *testing.T) {
	im := testImage(40, 24)
	p := DefaultParams(4, 1) // 2 tile rows
	p.TileWorkers = 64
	r, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.Labels.Labels {
		if v < 0 {
			t.Fatalf("pixel %d unassigned", i)
		}
	}
}

// TestParallelWithPreemption exercises the settled-flag read path under
// concurrency (flags are only written between passes).
func TestParallelWithPreemption(t *testing.T) {
	im := testImage(96, 96)
	p := DefaultParams(36, 0.5)
	p.TileWorkers = 4
	p.Preemptive = true
	p.FullIters = 12
	r, err := Segment(im, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Labels.NumRegions() == 0 {
		t.Fatal("no regions")
	}
}

// TestParallelRepeatable: the same worker count twice gives bit-identical
// results.
func TestParallelRepeatable(t *testing.T) {
	im := testImage(96, 64)
	run := func() *Result {
		p := DefaultParams(24, 0.5)
		p.TileWorkers = 4
		r, err := Segment(im, p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for i := range a.Labels.Labels {
		if a.Labels.Labels[i] != b.Labels.Labels[i] {
			t.Fatal("parallel run not repeatable")
		}
	}
	for ci := range a.Centers {
		if a.Centers[ci] != b.Centers[ci] {
			t.Fatal("parallel centers not repeatable")
		}
	}
}
