package sslic

import (
	"context"
	"fmt"
	"math"
	"time"

	"sslic/internal/faults"
	"sslic/internal/imgio"
	"sslic/internal/slic"
	"sslic/internal/telemetry"
)

// segmentCPA runs the center perspective architecture of §4.2: the
// superpixel centers are split into equal subsets traversed round-robin;
// each pass updates one subset of centers by scanning the 2S×2S patch
// around each of them, exactly like original SLIC restricted to that
// subset. Persistent minimum-distance and label buffers carry state
// between passes (the two image-sized memory buffers of §2).
func segmentCPA(ctx context.Context, im *imgio.Image, p Params) (*Result, error) {
	var st Stats
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := telemetry.TraceFrom(ctx)

	t0 := time.Now()
	lab := p.Scratch.labFor(im)
	p.Quantization.QuantizeLab(lab)
	st.ColorConvTime = time.Since(t0)
	tr.Emit("colorconv", "sslic", t0, st.ColorConvTime, nil)

	t0 = time.Now()
	centers := p.Scratch.initCenters(lab, p.K, p.PerturbCenters)
	labels := labelBufOrNew(p.LabelBuf, im.W, im.H, true)
	st.InitTime = time.Since(t0)

	s := slic.GridInterval(im.W, im.H, p.K)
	invS2 := p.Compactness * p.Compactness / (s * s)
	quant := p.Quantization.DistQuantizer()

	k := p.Subsets()
	totalPasses := p.FullIters * k
	w, h := im.W, im.H

	dist := p.Scratch.distFor(lab.Pixels())
	for i := range dist {
		dist[i] = math.Inf(1)
	}

	for pass := 0; pass < totalPasses; pass++ {
		// Same cancellation granularity as the PPA path: one check per
		// subset pass bounds cancel latency to a subset round.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faults.Fire(faults.PointSubsetPass); err != nil {
			return nil, fmt.Errorf("sslic: pass %d: %w", pass, err)
		}
		subset := pass % k
		passStart := time.Now()
		calcsBefore := st.DistanceCalcs

		// Distance decay: because centers move between passes, retained
		// minima go slightly stale; original SLIC resets the buffer every
		// iteration. Reset at the start of each full round so every pixel
		// is re-contested once per full iteration.
		if subset == 0 {
			for i := range dist {
				dist[i] = math.Inf(1)
			}
		}

		t0 = time.Now()
		for ci := range centers {
			if ci%k != subset {
				continue
			}
			c := &centers[ci]
			x0 := maxInt(0, int(c.X-s))
			x1 := minInt(w-1, int(c.X+s))
			y0 := maxInt(0, int(c.Y-s))
			y1 := minInt(h-1, int(c.Y+s))
			for y := y0; y <= y1; y++ {
				row := y * w
				for x := x0; x <= x1; x++ {
					i := row + x
					d := slic.Distance5(lab.L[i], lab.A[i], lab.B[i], float64(x), float64(y), c, invS2)
					if quant != nil {
						d = quant(d)
					}
					st.DistanceCalcs++
					if d < dist[i] {
						dist[i] = d
						labels.Labels[i] = int32(ci)
					}
				}
			}
		}
		st.AssignTime += time.Since(t0)

		// Update the subset's centers from their current members inside
		// their (enlarged) windows.
		t0 = time.Now()
		move := updateCPASubset(lab, labels, centers, subset, k, s)
		st.CenterUpdates += int64(len(centers) / k)
		st.UpdateTime += time.Since(t0)
		st.SubsetPasses = pass + 1
		st.Iterations = (pass + k) / k
		residual := move / float64(maxInt(1, len(centers)/k))
		st.MoveHistory = append(st.MoveHistory, residual)
		passDur := time.Since(passStart)
		p.Metrics.observePass(passDur, pass, totalPasses, residual)
		if tr != nil {
			tr.Emit("pass", "sslic", passStart, passDur, map[string]any{
				"pass": pass, "subset": subset, "arch": "CPA",
				"distance_calcs": st.DistanceCalcs - calcsBefore, "residual": residual,
			})
		}

		if p.Threshold > 0 && residual < p.Threshold {
			st.Converged = true
			break
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	// Pixels never claimed (possible off-grid corners) fall back to the
	// nearest center by position.
	tiling := NewTiling(im.W, im.H, p.K)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if labels.At(x, y) < 0 {
				labels.Set(x, y, tiling.OwnCenter(x, y))
			}
		}
	}
	if p.EnforceConnectivity {
		minSize := int(s*s) / maxInt(1, p.MinRegionDivisor)
		slic.EnforceConnectivity(labels, minSize)
		tr.Emit("connectivity", "sslic", t0, time.Since(t0), nil)
	}
	qualityScan(labels, len(centers), p.Scratch, &st)
	st.OtherTime = time.Since(t0)

	return &Result{Labels: labels, Centers: centers, Tiling: tiling, Stats: st}, nil
}

// updateCPASubset recomputes the centers of one subset as the mean of the
// pixels currently labeled to them within a 2S-radius window (members
// further out are vanishingly rare for converging SLIC). Returns the
// summed L1 movement of the updated centers.
func updateCPASubset(lab *slic.LabImage, labels *imgio.LabelMap, centers []slic.Center, subset, k int, s float64) float64 {
	w, h := lab.W, lab.H
	var move float64
	for ci := range centers {
		if ci%k != subset {
			continue
		}
		c := &centers[ci]
		x0 := maxInt(0, int(c.X-2*s))
		x1 := minInt(w-1, int(c.X+2*s))
		y0 := maxInt(0, int(c.Y-2*s))
		y1 := minInt(h-1, int(c.Y+2*s))
		var sg sigma
		for y := y0; y <= y1; y++ {
			row := y * w
			for x := x0; x <= x1; x++ {
				i := row + x
				if labels.Labels[i] != int32(ci) {
					continue
				}
				sg.l += lab.L[i]
				sg.a += lab.A[i]
				sg.b += lab.B[i]
				sg.x += float64(x)
				sg.y += float64(y)
				sg.n++
			}
		}
		if sg.n == 0 {
			continue
		}
		n := float64(sg.n)
		nx, ny := sg.x/n, sg.y/n
		move += math.Abs(nx-c.X) + math.Abs(ny-c.Y)
		c.L, c.A, c.B, c.X, c.Y = sg.l/n, sg.a/n, sg.b/n, nx, ny
	}
	return move
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
