package fixed

import (
	"testing"
	"testing/quick"
)

func TestSerialDivideBasic(t *testing.T) {
	cases := []struct {
		a, b, q, r int64
	}{
		{10, 3, 3, 1},
		{100, 10, 10, 0},
		{-10, 3, -3, -1},
		{10, -3, -3, 1},
		{-10, -3, 3, -1}, // remainder keeps the dividend's sign, as in Go

		{0, 5, 0, 0},
	}
	for _, c := range cases {
		got := SerialDivide(c.a, c.b, 24)
		if got.Quotient != c.q || got.Remainder != c.r {
			t.Errorf("SerialDivide(%d, %d) = %d r %d, want %d r %d",
				c.a, c.b, got.Quotient, got.Remainder, c.q, c.r)
		}
		if got.Cycles != 26 {
			t.Errorf("cycles = %d, want width+2 = 26", got.Cycles)
		}
	}
}

func TestSerialDivideByZeroSaturates(t *testing.T) {
	got := SerialDivide(42, 0, 8)
	if got.Quotient != 255 {
		t.Fatalf("quotient = %d, want saturated 255", got.Quotient)
	}
	if got.Remainder != 42 {
		t.Fatalf("remainder = %d", got.Remainder)
	}
}

func TestSerialDivideWidthClamps(t *testing.T) {
	if SerialDivide(7, 2, 0).Cycles != 64 {
		t.Fatal("invalid width must clamp to 62 (+2 cycles)")
	}
	if SerialDivide(7, 2, 100).Cycles != 64 {
		t.Fatal("oversized width must clamp")
	}
}

func TestSerialDivideMatchesGoDivision(t *testing.T) {
	prop := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		got := SerialDivide(int64(a), int64(b), 32)
		return got.Quotient == int64(a)/int64(b) && got.Remainder == int64(a)%int64(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsqrtExact(t *testing.T) {
	cases := map[int64]int64{
		0: 0, 1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3, 15: 3, 16: 4,
		1 << 40: 1 << 20, (1 << 30) - 1: 32767,
	}
	for v, want := range cases {
		if got, _ := Isqrt(v); got != want {
			t.Errorf("Isqrt(%d) = %d, want %d", v, got, want)
		}
	}
	if got, _ := Isqrt(-9); got != 0 {
		t.Error("negative input must yield 0")
	}
}

func TestIsqrtFloorProperty(t *testing.T) {
	prop := func(raw uint32) bool {
		v := int64(raw)
		r, _ := Isqrt(v)
		return r*r <= v && (r+1)*(r+1) > v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsqrtMonotone(t *testing.T) {
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		rx, _ := Isqrt(x)
		ry, _ := Isqrt(y)
		return rx <= ry
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsqrtCyclesConstant(t *testing.T) {
	_, c1 := Isqrt(1)
	_, c2 := Isqrt(1 << 40)
	if c1 != c2 || c1 <= 0 {
		t.Fatalf("serial sqrt cycles must be data-independent: %d vs %d", c1, c2)
	}
}
