package fixed

import (
	"math"
	"testing"
)

// The quick.Check properties in fixed_test.go sample the space; the
// tests here close it. Every format narrow enough to enumerate gets its
// full raw domain (and, for Mul, its full operand square) checked
// against first-principles references, so the arithmetic the bit-width
// exploration trusts carries no untested input.

// exhaustiveFormats are the formats whose raw domains are enumerated.
var exhaustiveFormats = []Format{
	U8,
	S8,
	MustNew(8, 4, true, Truncate),
	MustNew(8, 4, true, Nearest),
	MustNew(8, 8, false, Nearest),
	MustNew(12, 6, true, Truncate),
	MustNew(12, 6, true, Nearest),
}

// TestRoundTripIdentityExhaustive: every representable value must
// survive ToFloat→Quantize unchanged, for both rounding modes — the
// zero-ULP anchor of the representation.
func TestRoundTripIdentityExhaustive(t *testing.T) {
	for _, f := range exhaustiveFormats {
		for raw := f.MinRaw(); raw <= f.MaxRaw(); raw++ {
			if got := f.Quantize(f.ToFloat(raw)); got != raw {
				t.Fatalf("%v: raw %d round-trips to %d", f, raw, got)
			}
		}
	}
}

// TestQuantizeErrorBoundExhaustive sweeps a grid finer than one LSB
// across each format's entire representable range and checks Quantize
// against an independent float64 reference, including the ErrorBound
// contract: at most one LSB for truncation, half for nearest.
func TestQuantizeErrorBoundExhaustive(t *testing.T) {
	for _, f := range exhaustiveFormats {
		step := f.Resolution() / 7
		for x := f.MinFloat(); x <= f.MaxFloat(); x += step {
			raw := f.Quantize(x)
			if raw < f.MinRaw() || raw > f.MaxRaw() {
				t.Fatalf("%v: Quantize(%g) = %d outside raw range", f, x, raw)
			}
			if err := math.Abs(f.ToFloat(raw) - x); err > f.ErrorBound()+1e-12 {
				t.Fatalf("%v: |RoundTrip(%g)-x| = %g > bound %g", f, x, err, f.ErrorBound())
			}
			// Independent reference for the chosen rounding rule.
			scaled := x * float64(int64(1)<<f.Frac)
			var want int64
			if f.Round == Nearest {
				want = int64(math.Round(scaled)) // ties away from zero, as documented
			} else {
				want = int64(math.Floor(scaled))
			}
			if want >= f.MinRaw() && want <= f.MaxRaw() && raw != want {
				t.Fatalf("%v: Quantize(%g) = %d, reference %d", f, x, raw, want)
			}
		}
	}
}

// TestSaturateExhaustive: Saturate must be the identity inside the raw
// range and clamp hard just outside it.
func TestSaturateExhaustive(t *testing.T) {
	for _, f := range exhaustiveFormats {
		for raw := f.MinRaw(); raw <= f.MaxRaw(); raw++ {
			if f.Saturate(raw) != raw {
				t.Fatalf("%v: Saturate(%d) altered an in-range value", f, raw)
			}
		}
		if f.Saturate(f.MaxRaw()+1) != f.MaxRaw() || f.Saturate(f.MinRaw()-1) != f.MinRaw() {
			t.Fatalf("%v: boundary saturation broken", f)
		}
	}
}

// TestMulExhaustivePairs enumerates every operand pair of a small
// signed format in both rounding modes and checks Mul against an exact
// integer reference: full-precision product, reference rescale, then
// saturation.
func TestMulExhaustivePairs(t *testing.T) {
	for _, round := range []Rounding{Truncate, Nearest} {
		f := MustNew(6, 2, true, round)
		for a := f.MinRaw(); a <= f.MaxRaw(); a++ {
			for b := f.MinRaw(); b <= f.MaxRaw(); b++ {
				prod := a * b
				var want int64
				if round == Nearest {
					// math.Round rounds half away from zero — the
					// documented tie rule of Nearest.
					want = int64(math.Round(float64(prod) / float64(int64(1)<<f.Frac)))
				} else {
					want = prod >> f.Frac // arithmetic shift: floor
				}
				if got := f.Mul(a, b); got != f.Saturate(want) {
					t.Fatalf("%v: Mul(%d,%d) = %d, want %d", f, a, b, got, f.Saturate(want))
				}
			}
		}
	}
}

// TestSqDiffExhaustivePairs: the distance calculator's inner op over
// every pair of U8 color codes — the exact domain the accelerator's
// color distance sees — must equal the saturated square of the
// difference.
func TestSqDiffExhaustivePairs(t *testing.T) {
	// Wide enough that (255-0)² never saturates: the real datapath's
	// accumulator width choice.
	f := MustNew(18, 0, true, Truncate)
	for a := int64(0); a <= 255; a++ {
		for b := int64(0); b <= 255; b++ {
			d := a - b
			if got := f.SqDiff(a, b); got != d*d {
				t.Fatalf("SqDiff(%d,%d) = %d, want %d", a, b, got, d*d)
			}
		}
	}
	// And on U8 itself, saturation caps at MaxRaw instead of wrapping.
	if got := U8.SqDiff(255, 0); got != U8.MaxRaw() {
		t.Fatalf("U8.SqDiff(255,0) = %d, want saturation at %d", got, U8.MaxRaw())
	}
}
