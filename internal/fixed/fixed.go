// Package fixed implements the parameterizable fixed-point arithmetic used
// to model the accelerator datapath. The paper's design space exploration
// (§6.1) sweeps the datapath width from 64-bit floating point down to
// 4-bit fixed point and selects 8 bits; this package provides Q-format
// quantization, saturating arithmetic, and rounding so the software model
// is bit-accurate with the hardware at any width.
package fixed

import (
	"fmt"
	"math"
)

// Rounding selects how Quantize and Mul map discarded fraction bits.
type Rounding int

const (
	// Truncate drops the fraction (round toward negative infinity for the
	// raw integer), the cheapest hardware option.
	Truncate Rounding = iota
	// Nearest rounds to the nearest representable value, ties away from
	// zero — one extra adder in hardware.
	Nearest
)

// Format describes a fixed-point representation: Width total bits
// (including the sign bit when Signed), of which Frac are fraction bits.
type Format struct {
	Width  int
	Frac   int
	Signed bool
	Round  Rounding
}

// U8 is the unsigned 8-bit integer format of the accelerator's color
// channels (Q8.0).
var U8 = Format{Width: 8, Frac: 0, Signed: false}

// S8 is the signed 8-bit format used for center deltas.
var S8 = Format{Width: 8, Frac: 0, Signed: true}

// New returns a validated format. Width must be in [2, 62] and Frac in
// [0, Width) (one bit is reserved for the sign when Signed).
func New(width, frac int, signed bool, round Rounding) (Format, error) {
	f := Format{Width: width, Frac: frac, Signed: signed, Round: round}
	if err := f.validate(); err != nil {
		return Format{}, err
	}
	return f, nil
}

// MustNew is New but panics on invalid parameters; for package-level
// constants and tests.
func MustNew(width, frac int, signed bool, round Rounding) Format {
	f, err := New(width, frac, signed, round)
	if err != nil {
		panic(err)
	}
	return f
}

func (f Format) validate() error {
	if f.Width < 2 || f.Width > 62 {
		return fmt.Errorf("fixed: width %d out of range [2, 62]", f.Width)
	}
	magBits := f.Width
	if f.Signed {
		magBits--
	}
	if f.Frac < 0 || f.Frac > magBits {
		return fmt.Errorf("fixed: frac %d out of range [0, %d]", f.Frac, magBits)
	}
	return nil
}

// MaxRaw returns the largest representable raw value.
func (f Format) MaxRaw() int64 {
	if f.Signed {
		return (int64(1) << (f.Width - 1)) - 1
	}
	return (int64(1) << f.Width) - 1
}

// MinRaw returns the smallest representable raw value.
func (f Format) MinRaw() int64 {
	if f.Signed {
		return -(int64(1) << (f.Width - 1))
	}
	return 0
}

// MaxFloat returns the largest representable real value.
func (f Format) MaxFloat() float64 { return f.ToFloat(f.MaxRaw()) }

// MinFloat returns the smallest representable real value.
func (f Format) MinFloat() float64 { return f.ToFloat(f.MinRaw()) }

// Resolution returns the value of one LSB.
func (f Format) Resolution() float64 { return 1 / float64(int64(1)<<f.Frac) }

// Saturate clamps a raw value into the representable range.
func (f Format) Saturate(raw int64) int64 {
	if raw > f.MaxRaw() {
		return f.MaxRaw()
	}
	if raw < f.MinRaw() {
		return f.MinRaw()
	}
	return raw
}

// Quantize converts a real value to the nearest (per f.Round) raw
// fixed-point value, saturating at the ends of the range. NaN quantizes
// to zero.
func (f Format) Quantize(x float64) int64 {
	if math.IsNaN(x) {
		return 0
	}
	scaled := x * float64(int64(1)<<f.Frac)
	var raw int64
	switch f.Round {
	case Nearest:
		if scaled >= 0 {
			scaled += 0.5
		} else {
			scaled -= 0.5
		}
		raw = int64(scaled)
	default: // Truncate
		raw = int64(math.Floor(scaled))
	}
	return f.Saturate(raw)
}

// ToFloat converts a raw fixed-point value back to a real value.
func (f Format) ToFloat(raw int64) float64 {
	return float64(raw) / float64(int64(1)<<f.Frac)
}

// RoundTrip quantizes x and converts it back, i.e. applies the
// representation error of the format to a real value. This is the
// primitive the bit-width exploration uses to inject datapath
// quantization into the algorithm.
func (f Format) RoundTrip(x float64) float64 { return f.ToFloat(f.Quantize(x)) }

// Add returns a+b with saturation. Both operands must already be raw
// values of this format.
func (f Format) Add(a, b int64) int64 { return f.Saturate(a + b) }

// Sub returns a-b with saturation.
func (f Format) Sub(a, b int64) int64 { return f.Saturate(a - b) }

// Mul returns a*b, rescaled by the fraction width with the format's
// rounding mode, then saturated.
func (f Format) Mul(a, b int64) int64 {
	prod := a * b
	if f.Frac > 0 {
		switch f.Round {
		case Nearest:
			// Round half away from zero: bias by half an LSB in the
			// operand's own direction, then shift the magnitude. Shifting
			// the biased two's-complement value directly instead would
			// floor negative results one LSB too low (-1.25 → -2).
			half := int64(1) << (f.Frac - 1)
			if prod >= 0 {
				prod = (prod + half) >> f.Frac
			} else {
				prod = -((-prod + half) >> f.Frac)
			}
		default:
			prod >>= f.Frac // arithmetic shift truncates toward -inf
		}
	}
	return f.Saturate(prod)
}

// SqDiff returns the saturated squared difference (a-b)², the inner
// operation of the accelerator's color distance calculator.
func (f Format) SqDiff(a, b int64) int64 {
	d := a - b
	return f.Mul(d, d)
}

// Abs returns |a| with saturation (MinRaw saturates to MaxRaw for signed
// formats, as in saturating hardware).
func (f Format) Abs(a int64) int64 {
	if a < 0 {
		return f.Saturate(-a)
	}
	return f.Saturate(a)
}

// String renders the format in Q-notation, e.g. "Q4.4" or "UQ8.0".
func (f Format) String() string {
	prefix := "UQ"
	intBits := f.Width - f.Frac
	if f.Signed {
		prefix = "Q"
		intBits--
	}
	return fmt.Sprintf("%s%d.%d", prefix, intBits, f.Frac)
}

// QuantizeSlice applies RoundTrip to every element of xs, returning a new
// slice. It is the bulk entry point used when quantizing whole image
// planes for the bit-width exploration.
func (f Format) QuantizeSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.RoundTrip(x)
	}
	return out
}

// ErrorBound returns the worst-case absolute representation error for
// in-range values: one LSB for truncation, half an LSB for nearest.
func (f Format) ErrorBound() float64 {
	if f.Round == Nearest {
		return f.Resolution() / 2
	}
	return f.Resolution()
}
