package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		w, fr  int
		signed bool
		ok     bool
	}{
		{8, 0, false, true},
		{8, 4, true, true},
		{8, 7, true, true},
		{8, 8, true, false}, // sign bit leaves only 7 magnitude bits
		{8, 8, false, true},
		{1, 0, false, false},
		{63, 0, false, false},
		{2, 0, true, true},
		{16, -1, false, false},
	}
	for _, c := range cases {
		_, err := New(c.w, c.fr, c.signed, Truncate)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%v): err=%v, want ok=%v", c.w, c.fr, c.signed, err, c.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad params did not panic")
		}
	}()
	MustNew(0, 0, false, Truncate)
}

func TestRanges(t *testing.T) {
	u8 := MustNew(8, 0, false, Truncate)
	if u8.MinRaw() != 0 || u8.MaxRaw() != 255 {
		t.Fatalf("u8 range [%d,%d]", u8.MinRaw(), u8.MaxRaw())
	}
	s8 := MustNew(8, 0, true, Truncate)
	if s8.MinRaw() != -128 || s8.MaxRaw() != 127 {
		t.Fatalf("s8 range [%d,%d]", s8.MinRaw(), s8.MaxRaw())
	}
	q44 := MustNew(8, 4, true, Truncate)
	if q44.Resolution() != 1.0/16 {
		t.Fatalf("Q4.4 resolution %g", q44.Resolution())
	}
	if q44.MaxFloat() != 127.0/16 || q44.MinFloat() != -8 {
		t.Fatalf("Q4.4 float range [%g,%g]", q44.MinFloat(), q44.MaxFloat())
	}
}

func TestQuantizeSaturates(t *testing.T) {
	u8 := MustNew(8, 0, false, Nearest)
	if u8.Quantize(300) != 255 {
		t.Fatal("positive overflow must saturate to max")
	}
	if u8.Quantize(-5) != 0 {
		t.Fatal("negative must saturate to 0 for unsigned")
	}
	s8 := MustNew(8, 0, true, Nearest)
	if s8.Quantize(-1000) != -128 {
		t.Fatal("negative overflow must saturate to min")
	}
	if s8.Quantize(math.NaN()) != 0 {
		t.Fatal("NaN must quantize to 0")
	}
}

func TestQuantizeRoundingModes(t *testing.T) {
	trunc := MustNew(8, 0, true, Truncate)
	near := MustNew(8, 0, true, Nearest)
	if trunc.Quantize(3.9) != 3 {
		t.Fatalf("truncate(3.9) = %d", trunc.Quantize(3.9))
	}
	if near.Quantize(3.9) != 4 {
		t.Fatalf("nearest(3.9) = %d", near.Quantize(3.9))
	}
	if trunc.Quantize(-3.1) != -4 { // floor
		t.Fatalf("truncate(-3.1) = %d", trunc.Quantize(-3.1))
	}
	if near.Quantize(-3.5) != -4 { // ties away from zero
		t.Fatalf("nearest(-3.5) = %d", near.Quantize(-3.5))
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	for _, f := range []Format{
		MustNew(8, 4, true, Nearest),
		MustNew(8, 4, true, Truncate),
		MustNew(12, 6, true, Nearest),
		MustNew(6, 2, false, Truncate),
	} {
		prop := func(v float64) bool {
			// Stay strictly inside the range so saturation can't kick in.
			x := math.Mod(math.Abs(v), f.MaxFloat()*0.9)
			if f.Signed && math.Signbit(v) {
				x = -x
			}
			if !f.Signed && x < 0 {
				x = -x
			}
			return math.Abs(f.RoundTrip(x)-x) <= f.ErrorBound()+1e-12
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestQuantizeMonotoneProperty(t *testing.T) {
	f := MustNew(8, 3, true, Nearest)
	prop := func(a, b float64) bool {
		a = math.Mod(a, 20)
		b = math.Mod(b, 20)
		if a > b {
			a, b = b, a
		}
		return f.Quantize(a) <= f.Quantize(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubSaturation(t *testing.T) {
	u8 := MustNew(8, 0, false, Truncate)
	if u8.Add(200, 100) != 255 {
		t.Fatal("unsigned add must saturate")
	}
	if u8.Sub(10, 20) != 0 {
		t.Fatal("unsigned sub must floor at 0")
	}
	s8 := MustNew(8, 0, true, Truncate)
	if s8.Add(100, 100) != 127 {
		t.Fatal("signed add must saturate at 127")
	}
	if s8.Sub(-100, 100) != -128 {
		t.Fatal("signed sub must saturate at -128")
	}
}

func TestMulRescaling(t *testing.T) {
	q44 := MustNew(8, 4, true, Nearest)
	// 1.5 * 2.0 = 3.0 → raw 24*32 >> 4 = 48.
	a := q44.Quantize(1.5)
	b := q44.Quantize(2.0)
	if got := q44.ToFloat(q44.Mul(a, b)); got != 3.0 {
		t.Fatalf("1.5*2.0 = %g", got)
	}
	// Saturation: 7.9 * 7.9 overflows Q4.4.
	big := q44.Quantize(7.9)
	if q44.Mul(big, big) != q44.MaxRaw() {
		t.Fatal("mul overflow must saturate")
	}
}

func TestSqDiffNonNegative(t *testing.T) {
	f := MustNew(10, 2, true, Truncate)
	prop := func(a16, b16 int16) bool {
		a := f.Saturate(int64(a16) % (f.MaxRaw() + 1))
		b := f.Saturate(int64(b16) % (f.MaxRaw() + 1))
		return f.SqDiff(a, b) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSqDiffSymmetric(t *testing.T) {
	f := MustNew(12, 4, true, Truncate)
	prop := func(a16, b16 int16) bool {
		a := f.Saturate(int64(a16))
		b := f.Saturate(int64(b16))
		return f.SqDiff(a, b) == f.SqDiff(b, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAbs(t *testing.T) {
	s8 := MustNew(8, 0, true, Truncate)
	if s8.Abs(-5) != 5 || s8.Abs(5) != 5 || s8.Abs(0) != 0 {
		t.Fatal("basic abs")
	}
	if s8.Abs(-128) != 127 {
		t.Fatal("Abs(MinRaw) must saturate to MaxRaw")
	}
}

func TestString(t *testing.T) {
	if s := MustNew(8, 4, true, Truncate).String(); s != "Q3.4" {
		t.Fatalf("String = %q", s)
	}
	if s := MustNew(8, 0, false, Truncate).String(); s != "UQ8.0" {
		t.Fatalf("String = %q", s)
	}
}

func TestQuantizeSlice(t *testing.T) {
	f := MustNew(8, 0, false, Nearest)
	out := f.QuantizeSlice([]float64{1.4, 2.6, 300, -4})
	want := []float64{1, 3, 255, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestNarrowWidthsLoseInformation(t *testing.T) {
	// Sanity anchor for the bit-width exploration: narrower formats must
	// have coarser resolution, never finer.
	prev := math.Inf(1)
	for w := 16; w >= 4; w-- {
		f := MustNew(w, w/2, false, Nearest)
		if f.Resolution() > prev {
			// resolution = 2^-frac, frac shrinks with width here
			_ = f
		}
		prev = f.Resolution()
	}
	coarse := MustNew(4, 2, false, Nearest)
	fine := MustNew(16, 8, false, Nearest)
	x := 1.37
	if math.Abs(coarse.RoundTrip(x)-x) < math.Abs(fine.RoundTrip(x)-x) {
		t.Fatal("4-bit format cannot be more accurate than 16-bit")
	}
}
