package fixed

// Hardware arithmetic primitives used by the accelerator models: the
// iterative (serial) divider of the Center Update Unit and the integer
// square root of the distance datapath. Both return the result together
// with the cycle count a serial implementation needs, so timing models
// can be driven by the same code that computes values.

// DivResult carries a divider outcome.
type DivResult struct {
	Quotient  int64
	Remainder int64
	Cycles    int
}

// SerialDivide models a non-restoring serial divider: one quotient bit
// per cycle over the dividend width, plus a fixed setup/normalize
// overhead of two cycles. Division by zero returns a saturated quotient
// (all ones over the width), matching hardware that flags but does not
// trap. Negative operands are handled by sign-magnitude pre/post
// processing as hardware does.
func SerialDivide(dividend, divisor int64, width int) DivResult {
	if width < 1 || width > 62 {
		width = 62
	}
	cycles := width + 2
	if divisor == 0 {
		return DivResult{Quotient: (int64(1) << width) - 1, Remainder: dividend, Cycles: cycles}
	}
	negQ := (dividend < 0) != (divisor < 0)
	negR := dividend < 0 // the remainder keeps the dividend's sign
	d, v := dividend, divisor
	if d < 0 {
		d = -d
	}
	if v < 0 {
		v = -v
	}
	q := d / v
	r := d % v
	if negQ {
		q = -q
	}
	if negR {
		r = -r
	}
	return DivResult{Quotient: q, Remainder: r, Cycles: cycles}
}

// Isqrt returns the floor integer square root of v (0 for negative
// inputs) and the cycle count of a bit-serial implementation (one
// result bit per two cycles over half the operand width).
func Isqrt(v int64) (root int64, cycles int) {
	const width = 32 // the distance datapath operands fit in 32 bits
	cycles = width/2*2 + 1
	if v <= 0 {
		return 0, cycles
	}
	// Digit-by-digit (binary restoring) method — the same structure a
	// serial hardware unit uses, and exact for all int64 inputs.
	var res int64
	bit := int64(1) << 62
	for bit > v {
		bit >>= 2
	}
	x := v
	for bit != 0 {
		if x >= res+bit {
			x -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res, cycles
}
