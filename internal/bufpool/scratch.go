package bufpool

import "sslic/internal/sslic"

// Scratch recycling: per-worker segmentation working memory (Lab
// planes, gradient maps, accumulator register files) flows through the
// pool like every other frame-sized buffer, so the held-bytes gauge and
// the hit/miss counters describe ALL resident recycled memory, and
// disabling the pool (-no-buffer-pool) disables scratch reuse too for
// clean allocation A/B runs.
//
// Unlike images and label maps, a Scratch is self-sizing — it grows to
// the largest frame it has seen — so there is a single free list, not
// size classes. Workers typically take one at startup and keep it for
// their lifetime; the list exists so worker restarts and tests recycle
// instead of leak.

// GetScratch returns a reusable segmentation scratch, recycled when one
// is parked. The counters treat it like any other buffer: a recycled
// scratch is a hit, a fresh one a miss (its backing grows lazily inside
// the segmenter, so no fresh bytes are charged here).
func (p *Pool) GetScratch() *sslic.Scratch {
	p.mu.Lock()
	if n := len(p.scratch); n > 0 {
		s := p.scratch[n-1]
		p.scratch[n-1] = nil
		p.scratch = p.scratch[:n-1]
		p.mu.Unlock()
		p.hits.Inc()
		p.held.Add(-1)
		return s
	}
	p.mu.Unlock()
	p.misses.Inc()
	return sslic.NewScratch()
}

// PutScratch parks a scratch for reuse; nil is ignored. Overflow past
// MaxPerClass is dropped to the garbage collector like any other class
// list.
func (p *Pool) PutScratch(s *sslic.Scratch) {
	if s == nil {
		return
	}
	p.mu.Lock()
	if len(p.scratch) >= p.max {
		p.mu.Unlock()
		p.dropped.Inc()
		return
	}
	p.scratch = append(p.scratch, s)
	p.mu.Unlock()
	p.held.Add(1)
}
