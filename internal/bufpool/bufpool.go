// Package bufpool is the arena layer of the zero-copy request path: a
// size-classed pool of the large, short-lived buffers a segmentation
// request needs — decoded image planes, label maps, render targets —
// handed out sized from the frame header and returned after the
// response is written.
//
// The paper's accelerator avoids exactly this traffic in hardware: the
// channel scratchpads and the assignment memory are allocated once and
// every frame streams through them, so steady-state DRAM traffic is
// pixel data, not allocator churn (§4.3). gSLICr makes the same move in
// software with resident GPU buffers. This pool is the service's
// equivalent: at steady state a request borrows every frame-sized
// buffer it needs and allocates (nearly) nothing.
//
// Design points:
//
//   - Size classes are powers of two. Get rounds the request up to a
//     class so a 639×480 frame and a 640×480 frame recycle the same
//     backing; Put files a buffer under the largest class it can fully
//     satisfy, so foreign buffers (plain NewImage allocations) are
//     accepted too.
//   - The free lists are bounded (MaxPerClass buffers per class) and
//     mutex-guarded rather than sync.Pool-based: reuse is deterministic
//     — a Put buffer IS found by the next Get regardless of which
//     goroutine or GC cycle sits between them — which is what lets the
//     alloc-regression tests assert hard ceilings and the cost ledger
//     report measured bytes instead of estimates.
//   - Get returns the bytes freshly allocated (0 on a pool hit). The
//     serving layer charges exactly that to the request's cost ledger,
//     so X-Cost-Alloc-Bytes reports what the request really cost the
//     allocator, not a deterministic 3WH/4WH guess.
//
// Buffers are NOT zeroed on reuse. Every consumer overwrites all pixels
// (decoders fill every plane byte, segmentation writes every label), and
// the server's aliasing tests prove a recycled buffer never leaks a
// prior request's pixels into a response.
package bufpool

import (
	"math/bits"
	"sync"

	"sslic/internal/imgio"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
)

// numClasses covers buffer element counts up to 2^35 — far past the
// decoder's pixel budgets.
const numClasses = 36

// minClassBits floors the class sizes at 256 elements: recycling
// tiny buffers costs more bookkeeping than it saves.
const minClassBits = 8

// Config tunes a Pool.
type Config struct {
	// MaxPerClass bounds the buffers retained per size class (for each
	// of the image and label-map lists); overflow on Put is dropped to
	// the garbage collector. <= 0 selects 16.
	MaxPerClass int
	// Registry receives the pool's hit/miss/byte counters; nil selects
	// a private one.
	Registry *telemetry.Registry
}

// Pool is a size-classed recycler for frame-sized buffers. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Pool struct {
	mu      sync.Mutex
	images  [numClasses][]*imgio.Image
	labels  [numClasses][]*imgio.LabelMap
	scratch []*sslic.Scratch
	max     int

	hits    *telemetry.Counter
	misses  *telemetry.Counter
	fresh   *telemetry.Counter
	dropped *telemetry.Counter
	held    *telemetry.Gauge
}

// New builds an empty pool.
func New(cfg Config) *Pool {
	if cfg.MaxPerClass <= 0 {
		cfg.MaxPerClass = 16
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	p := &Pool{max: cfg.MaxPerClass}
	p.hits = reg.Counter("sslic_bufpool_hits_total",
		"Buffer requests served from a free list.")
	p.misses = reg.Counter("sslic_bufpool_misses_total",
		"Buffer requests that had to allocate fresh backing.")
	p.fresh = reg.Counter("sslic_bufpool_fresh_bytes_total",
		"Bytes freshly allocated on pool misses.")
	p.dropped = reg.Counter("sslic_bufpool_dropped_total",
		"Buffers dropped on Put because their class list was full.")
	p.held = reg.Gauge("sslic_bufpool_held",
		"Buffers currently parked on the free lists.")
	return p
}

// classFor returns the smallest class whose capacity covers n elements.
func classFor(n int) int {
	if n <= 0 {
		return minClassBits
	}
	c := bits.Len(uint(n - 1))
	if c < minClassBits {
		c = minClassBits
	}
	return c
}

// floorClass returns the largest class a capacity of n elements fully
// satisfies, or -1 when it is below the smallest class.
func floorClass(n int) int {
	if n < 1<<minClassBits {
		return -1
	}
	c := bits.Len(uint(n)) - 1
	if 1<<c > n { // defensive; cannot happen
		c--
	}
	return c
}

// classSize is the element capacity of class c.
func classSize(c int) int { return 1 << c }

// GetImage returns a W×H planar image whose planes are either recycled
// or freshly allocated, plus the bytes freshly allocated (0 on a pool
// hit) — the number the caller charges to the request's cost ledger.
// The planes are NOT zeroed; the caller must overwrite every pixel.
func (p *Pool) GetImage(w, h int) (*imgio.Image, int64) {
	n := w * h
	c := classFor(n)
	p.mu.Lock()
	if l := p.images[c]; len(l) > 0 {
		im := l[len(l)-1]
		p.images[c] = l[:len(l)-1]
		p.mu.Unlock()
		p.hits.Inc()
		p.held.Add(-1)
		im.W, im.H = w, h
		im.C0 = im.C0[:n]
		im.C1 = im.C1[:n]
		im.C2 = im.C2[:n]
		return im, 0
	}
	p.mu.Unlock()
	p.misses.Inc()
	cs := classSize(c)
	im := &imgio.Image{
		W: w, H: h,
		C0: make([]uint8, n, cs),
		C1: make([]uint8, n, cs),
		C2: make([]uint8, n, cs),
	}
	fresh := int64(3 * cs)
	p.fresh.Add(float64(fresh))
	return im, fresh
}

// PutImage parks an image for reuse. Safe for images from any source;
// nil and degenerate images are ignored. The caller must not retain any
// reference to the image or its planes afterwards.
func (p *Pool) PutImage(im *imgio.Image) {
	if im == nil {
		return
	}
	cp := cap(im.C0)
	if cap(im.C1) < cp {
		cp = cap(im.C1)
	}
	if cap(im.C2) < cp {
		cp = cap(im.C2)
	}
	c := floorClass(cp)
	if c < 0 {
		return
	}
	p.mu.Lock()
	if len(p.images[c]) >= p.max {
		p.mu.Unlock()
		p.dropped.Inc()
		return
	}
	p.images[c] = append(p.images[c], im)
	p.mu.Unlock()
	p.held.Add(1)
}

// GetLabelMap returns a W×H label map (recycled or fresh) plus the
// bytes freshly allocated (0 on a pool hit). Labels are NOT reset; the
// PPA assignment loop writes every pixel, and callers that need the
// Unassigned sentinel must reset explicitly (sslic's CPA path does).
func (p *Pool) GetLabelMap(w, h int) (*imgio.LabelMap, int64) {
	n := w * h
	c := classFor(n)
	p.mu.Lock()
	if l := p.labels[c]; len(l) > 0 {
		lm := l[len(l)-1]
		p.labels[c] = l[:len(l)-1]
		p.mu.Unlock()
		p.hits.Inc()
		p.held.Add(-1)
		lm.W, lm.H = w, h
		lm.Labels = lm.Labels[:n]
		return lm, 0
	}
	p.mu.Unlock()
	p.misses.Inc()
	cs := classSize(c)
	lm := &imgio.LabelMap{W: w, H: h, Labels: make([]int32, n, cs)}
	fresh := int64(4 * cs)
	p.fresh.Add(float64(fresh))
	return lm, fresh
}

// PutLabelMap parks a label map for reuse; nil and tiny maps are
// ignored. The caller must not retain any reference afterwards.
func (p *Pool) PutLabelMap(lm *imgio.LabelMap) {
	if lm == nil {
		return
	}
	c := floorClass(cap(lm.Labels))
	if c < 0 {
		return
	}
	p.mu.Lock()
	if len(p.labels[c]) >= p.max {
		p.mu.Unlock()
		p.dropped.Inc()
		return
	}
	p.labels[c] = append(p.labels[c], lm)
	p.mu.Unlock()
	p.held.Add(1)
}

// ImageAlloc adapts the pool to imgio's decode-target hook, charging
// fresh allocations to the given ledger (nil ledger skips charging).
// The decoder calls it once, after validating the frame header, so the
// target is sized from trusted dimensions.
func (p *Pool) ImageAlloc(cost *telemetry.Cost) imgio.ImageAlloc {
	return func(w, h int) *imgio.Image {
		im, fresh := p.GetImage(w, h)
		cost.AddAlloc(fresh)
		return im
	}
}

// Held reports the buffers currently parked, for tests and introspection.
func (p *Pool) Held() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for c := range p.images {
		n += len(p.images[c]) + len(p.labels[c])
	}
	return n
}
