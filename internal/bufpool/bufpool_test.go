package bufpool

import (
	"sync"
	"testing"

	"sslic/internal/imgio"
	"sslic/internal/telemetry"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, minClassBits},
		{1, minClassBits},
		{256, 8},
		{257, 9},
		{512, 9},
		{513, 10},
		{640 * 480, 19}, // 307200 -> 2^19 = 524288
		{1 << 20, 20},
		{1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
		if cs := classSize(classFor(c.n)); c.n > 0 && cs < c.n {
			t.Errorf("classSize(classFor(%d)) = %d < n", c.n, cs)
		}
	}
}

func TestFloorClass(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, -1},
		{255, -1},
		{256, 8},
		{511, 8},
		{512, 9},
		{1<<19 - 1, 18},
		{1 << 19, 19},
	}
	for _, c := range cases {
		if got := floorClass(c.n); got != c.want {
			t.Errorf("floorClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestImageReuseAndFreshAccounting(t *testing.T) {
	p := New(Config{})
	im, fresh := p.GetImage(640, 480)
	if fresh == 0 {
		t.Fatal("first GetImage reported 0 fresh bytes")
	}
	wantFresh := int64(3 * classSize(classFor(640*480)))
	if fresh != wantFresh {
		t.Fatalf("fresh = %d, want %d", fresh, wantFresh)
	}
	if im.W != 640 || im.H != 480 || len(im.C0) != 640*480 {
		t.Fatalf("bad image geometry: %dx%d len %d", im.W, im.H, len(im.C0))
	}
	c0 := &im.C0[0]
	p.PutImage(im)
	if p.Held() != 1 {
		t.Fatalf("Held = %d after Put, want 1", p.Held())
	}

	// Different dims, same class: must reuse the same backing, zero fresh.
	im2, fresh2 := p.GetImage(639, 479)
	if fresh2 != 0 {
		t.Fatalf("same-class GetImage allocated %d fresh bytes", fresh2)
	}
	if &im2.C0[0] != c0 {
		t.Fatal("same-class GetImage did not reuse pooled backing")
	}
	if im2.W != 639 || im2.H != 479 || len(im2.C0) != 639*479 {
		t.Fatalf("recycled image not resliced: %dx%d len %d", im2.W, im2.H, len(im2.C0))
	}
	if p.Held() != 0 {
		t.Fatalf("Held = %d after reuse, want 0", p.Held())
	}
}

func TestLabelMapReuseAndFreshAccounting(t *testing.T) {
	p := New(Config{})
	lm, fresh := p.GetLabelMap(320, 240)
	wantFresh := int64(4 * classSize(classFor(320*240)))
	if fresh != wantFresh {
		t.Fatalf("fresh = %d, want %d", fresh, wantFresh)
	}
	base := &lm.Labels[0]
	p.PutLabelMap(lm)
	lm2, fresh2 := p.GetLabelMap(300, 240)
	if fresh2 != 0 {
		t.Fatalf("same-class GetLabelMap allocated %d fresh bytes", fresh2)
	}
	if &lm2.Labels[0] != base {
		t.Fatal("same-class GetLabelMap did not reuse pooled backing")
	}
	if lm2.W != 300 || lm2.H != 240 || len(lm2.Labels) != 300*240 {
		t.Fatalf("recycled label map not resliced: %dx%d len %d",
			lm2.W, lm2.H, len(lm2.Labels))
	}
}

func TestPutAcceptsForeignBuffers(t *testing.T) {
	// A plain NewImage allocation has exact-sized planes; Put must file
	// it under the floor class and a smaller request must find it.
	p := New(Config{})
	im := imgio.NewImage(300, 200) // 60000 cap -> floor class 15 (32768)
	p.PutImage(im)
	if p.Held() != 1 {
		t.Fatalf("Held = %d after foreign Put, want 1", p.Held())
	}
	got, fresh := p.GetImage(181, 181) // 32761 <= 32768 -> class 15
	if fresh != 0 {
		t.Fatalf("GetImage after foreign Put allocated %d fresh bytes", fresh)
	}
	if &got.C0[0] != &im.C0[0] {
		t.Fatal("foreign buffer not reused")
	}
}

func TestPutDropsTinyAndOverflow(t *testing.T) {
	p := New(Config{MaxPerClass: 2})
	p.PutImage(nil)
	p.PutImage(imgio.NewImage(4, 4)) // below minClassBits: dropped
	if p.Held() != 0 {
		t.Fatalf("Held = %d after tiny Put, want 0", p.Held())
	}
	for i := 0; i < 4; i++ {
		lm, _ := p.GetLabelMap(100, 100)
		defer p.PutLabelMap(lm)
	}
	// The deferred Puts run at test end; exercise overflow inline instead.
	a, _ := p.GetLabelMap(64, 64)
	b, _ := p.GetLabelMap(64, 64)
	c, _ := p.GetLabelMap(64, 64)
	p.PutLabelMap(a)
	p.PutLabelMap(b)
	p.PutLabelMap(c) // third exceeds MaxPerClass=2: dropped
	if got := len(p.labels[classFor(64*64)]); got != 2 {
		t.Fatalf("class list len = %d, want 2 (overflow dropped)", got)
	}
}

func TestImageAllocChargesLedger(t *testing.T) {
	p := New(Config{})
	cost := telemetry.NewCost()
	alloc := p.ImageAlloc(cost)
	im := alloc(128, 128)
	if im == nil || im.W != 128 {
		t.Fatal("ImageAlloc returned bad image")
	}
	if got := cost.Snapshot().AllocBytes; got != int64(3*classSize(classFor(128*128))) {
		t.Fatalf("ledger charged %d bytes", got)
	}
	p.PutImage(im)
	im2 := alloc(128, 128)
	if got := cost.Snapshot().AllocBytes; got != int64(3*classSize(classFor(128*128))) {
		t.Fatalf("pooled hit charged extra bytes: %d", got)
	}
	p.PutImage(im2)

	// nil ledger must not panic.
	p.ImageAlloc(nil)(64, 64)
}

func TestConcurrentGetPut(t *testing.T) {
	p := New(Config{MaxPerClass: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				im, _ := p.GetImage(320, 240)
				lm, _ := p.GetLabelMap(320, 240)
				im.C0[0] = byte(i)
				lm.Labels[0] = int32(i)
				p.PutImage(im)
				p.PutLabelMap(lm)
			}
		}()
	}
	wg.Wait()
	if p.Held() == 0 {
		t.Fatal("expected some buffers parked after concurrent churn")
	}
}
