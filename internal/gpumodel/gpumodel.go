// Package gpumodel provides the GPU baselines of Table 5: the NVIDIA
// Tesla K20 (server class) and Tegra K1 (mobile SoC) running the SLIC
// algorithm on 1920×1080 frames with K=5000 superpixels.
//
// Substitution note (see DESIGN.md): the paper measured real hardware.
// With none available, each device is an analytic model — published
// device parameters (cores, clock, on-chip storage, process) plus an
// operation-count-driven runtime scaled by an efficiency constant
// calibrated so the paper's measured 1080p latencies are reproduced.
// Energy follows as average power × latency, and the paper's 28nm→16nm
// normalization (×1/2.2) converts to the accelerator's process for the
// efficiency comparison.
package gpumodel

import (
	"fmt"

	"sslic/internal/energy"
	"sslic/internal/sslic"
)

// Device describes a GPU baseline.
type Device struct {
	Name     string
	TechNM   int
	VoltageV float64
	Cores    int
	ClockHz  float64
	OnChipKB int
	// AvgPowerW is the measured average power while running SLIC
	// (paper Table 5).
	AvgPowerW float64
	// MeasuredLatency1080p is the paper's measured SLIC latency for one
	// 1920×1080 frame with K=5000; the calibration anchor.
	MeasuredLatency1080p float64
	// efficiency is the derived sustained fraction of peak throughput
	// SLIC achieves on the device (memory-bound kernels run far below
	// peak); set by calibrate.
	efficiency float64
}

// slicIterations is the iteration count of the Table 5 workload,
// matching the accelerator's §7 analysis.
const slicIterations = 9

// opsPerFrame returns the arithmetic work of a full SLIC frame: the
// Table 2 CPA operation model per iteration (GPU SLIC implementations
// follow the original windowed algorithm) plus a color-conversion term.
func opsPerFrame(w, h, iters int) float64 {
	perIter := sslic.Analyze(sslic.CPA, w, h, 1).Ops
	colorConv := int64(w*h) * 50 // gamma + matrix + cube roots per pixel
	return float64(perIter*int64(iters) + colorConv)
}

// peakOpsPerSec is cores × clock × 2 (FMA).
func (d Device) peakOpsPerSec() float64 {
	return float64(d.Cores) * d.ClockHz * 2
}

// calibrate derives the efficiency from the measured 1080p latency.
func (d Device) calibrate() Device {
	need := opsPerFrame(1920, 1080, slicIterations)
	achieved := need / d.MeasuredLatency1080p
	d.efficiency = achieved / d.peakOpsPerSec()
	return d
}

// TeslaK20 returns the server GPU baseline of Table 5.
func TeslaK20() Device {
	return Device{
		Name:                 "Tesla K20",
		TechNM:               28,
		VoltageV:             0.81,
		Cores:                2496,
		ClockHz:              706e6,
		OnChipKB:             6320,
		AvgPowerW:            86,
		MeasuredLatency1080p: 22.3e-3,
	}.calibrate()
}

// TegraK1 returns the mobile GPU baseline of Table 5.
func TegraK1() Device {
	return Device{
		Name:                 "Tegra K1",
		TechNM:               28,
		VoltageV:             0.81,
		Cores:                192,
		ClockHz:              852e6,
		OnChipKB:             368,
		AvgPowerW:            332e-3,
		MeasuredLatency1080p: 2713e-3,
	}.calibrate()
}

// Efficiency returns the derived sustained fraction of peak throughput.
func (d Device) Efficiency() float64 { return d.efficiency }

// Latency returns the modeled SLIC frame latency for an arbitrary
// resolution, scaling the calibrated model by operation count.
func (d Device) Latency(w, h int) (float64, error) {
	if w <= 0 || h <= 0 {
		return 0, fmt.Errorf("gpumodel: invalid resolution %dx%d", w, h)
	}
	if d.efficiency <= 0 {
		return 0, fmt.Errorf("gpumodel: device %q not calibrated", d.Name)
	}
	return opsPerFrame(w, h, slicIterations) / (d.peakOpsPerSec() * d.efficiency), nil
}

// EnergyPerFrame returns average power × latency at the device's native
// process.
func (d Device) EnergyPerFrame(w, h int) (float64, error) {
	lat, err := d.Latency(w, h)
	if err != nil {
		return 0, err
	}
	return d.AvgPowerW * lat, nil
}

// NormalizedPower returns the paper's process-normalized power: the
// measured 28nm power divided by the 2.2× voltage²/capacitance factor.
func (d Device) NormalizedPower() float64 {
	return d.AvgPowerW / energy.GPUNormalization28to16()
}

// NormalizedEnergyPerFrame returns the process-normalized energy per
// frame (Table 5's last row).
func (d Device) NormalizedEnergyPerFrame(w, h int) (float64, error) {
	lat, err := d.Latency(w, h)
	if err != nil {
		return 0, err
	}
	return d.NormalizedPower() * lat, nil
}

// RealTime reports whether the device sustains 30 fps at the resolution.
func (d Device) RealTime(w, h int) bool {
	lat, err := d.Latency(w, h)
	return err == nil && lat <= 1.0/30
}
