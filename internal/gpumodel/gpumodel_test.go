package gpumodel

import (
	"math"
	"testing"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

func TestCalibrationReproducesMeasuredLatency(t *testing.T) {
	for _, d := range []Device{TeslaK20(), TegraK1()} {
		lat, err := d.Latency(1920, 1080)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(lat, d.MeasuredLatency1080p) > 1e-9 {
			t.Errorf("%s: latency %g, want measured %g", d.Name, lat, d.MeasuredLatency1080p)
		}
	}
}

func TestTable5DeviceParameters(t *testing.T) {
	k20 := TeslaK20()
	if k20.Cores != 2496 || k20.OnChipKB != 6320 || k20.TechNM != 28 {
		t.Error("K20 parameters diverge from Table 5")
	}
	tk1 := TegraK1()
	if tk1.Cores != 192 || tk1.OnChipKB != 368 {
		t.Error("TK1 parameters diverge from Table 5")
	}
}

func TestNormalizedPower(t *testing.T) {
	// Table 5: 86 W → 39 W; 332 mW → 150 mW.
	if relErr(TeslaK20().NormalizedPower(), 39) > 0.02 {
		t.Errorf("K20 normalized power %.1f W, want ~39", TeslaK20().NormalizedPower())
	}
	if relErr(TegraK1().NormalizedPower(), 150e-3) > 0.02 {
		t.Errorf("TK1 normalized power %.0f mW, want ~150", TegraK1().NormalizedPower()*1e3)
	}
}

func TestTable5NormalizedEnergy(t *testing.T) {
	// Table 5: 867 mJ/frame (K20), 407 mJ/frame (TK1).
	e20, err := TeslaK20().NormalizedEnergyPerFrame(1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(e20, 867e-3) > 0.02 {
		t.Errorf("K20 normalized energy %.0f mJ, want ~867", e20*1e3)
	}
	e1, err := TegraK1().NormalizedEnergyPerFrame(1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(e1, 407e-3) > 0.02 {
		t.Errorf("TK1 normalized energy %.0f mJ, want ~407", e1*1e3)
	}
}

func TestRealTimeStatus(t *testing.T) {
	// §7: K20 exceeds 30 fps; TK1 misses it by a factor of ~80.
	if !TeslaK20().RealTime(1920, 1080) {
		t.Error("K20 must be real-time at 1080p")
	}
	if TegraK1().RealTime(1920, 1080) {
		t.Error("TK1 must miss real time at 1080p")
	}
	lat, _ := TegraK1().Latency(1920, 1080)
	factor := lat / (1.0 / 30)
	if factor < 60 || factor > 100 {
		t.Errorf("TK1 misses real time by %.0f×, paper says ~80×", factor)
	}
}

func TestLatencyScalesWithResolution(t *testing.T) {
	d := TeslaK20()
	hd, _ := d.Latency(1920, 1080)
	vga, _ := d.Latency(640, 480)
	if vga >= hd {
		t.Error("VGA latency must be below HD")
	}
	ratio := hd / vga
	// Ops scale ~linearly with pixel count (1080p/VGA ≈ 6.75).
	if ratio < 5 || ratio > 8 {
		t.Errorf("HD/VGA latency ratio %.1f, want ~6.75", ratio)
	}
}

func TestLatencyErrors(t *testing.T) {
	if _, err := TeslaK20().Latency(0, 100); err == nil {
		t.Error("invalid resolution accepted")
	}
	var uncalibrated Device
	uncalibrated.Name = "raw"
	if _, err := uncalibrated.Latency(100, 100); err == nil {
		t.Error("uncalibrated device accepted")
	}
}

func TestEfficiencyBelowPeak(t *testing.T) {
	// Memory-bound SLIC must run far below peak on both devices; if the
	// derived efficiency exceeded ~10% the model would be implausible.
	for _, d := range []Device{TeslaK20(), TegraK1()} {
		if e := d.Efficiency(); e <= 0 || e > 0.1 {
			t.Errorf("%s efficiency %.4f outside plausible (0, 0.1]", d.Name, e)
		}
	}
}

func TestEnergyPerFrameConsistent(t *testing.T) {
	d := TeslaK20()
	lat, _ := d.Latency(1920, 1080)
	e, _ := d.EnergyPerFrame(1920, 1080)
	if relErr(e, d.AvgPowerW*lat) > 1e-12 {
		t.Error("energy != power × latency")
	}
}
