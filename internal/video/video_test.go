package video

import (
	"testing"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
)

func smallStream(t *testing.T, motion Motion, speed int) *Stream {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 96, 64
	cfg.Regions = 8
	s, err := NewStream(cfg, 3, motion, speed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStreamValidation(t *testing.T) {
	cfg := dataset.DefaultConfig()
	if _, err := NewStream(cfg, 1, Pan, -1); err == nil {
		t.Error("negative speed accepted")
	}
	cfg.W = 0
	if _, err := NewStream(cfg, 1, Pan, 1); err == nil {
		t.Error("invalid dataset config accepted")
	}
}

func TestFrameZeroIsMaster(t *testing.T) {
	s := smallStream(t, Pan, 3)
	img, gt, err := s.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	if dx, dy := s.Displacement(0); dx != 0 || dy != 0 {
		t.Fatalf("frame 0 displaced (%d,%d)", dx, dy)
	}
	w, h := s.Size()
	if img.W != w || img.H != h || gt.W != w || gt.H != h {
		t.Fatal("frame size mismatch")
	}
}

func TestFrameMotionShiftsContent(t *testing.T) {
	s := smallStream(t, Pan, 3)
	img0, gt0, _ := s.Frame(0)
	img1, gt1, err := s.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 1 at (x, y) must equal frame 0 at (x+3, y) with wraparound.
	w, _ := s.Size()
	for _, probe := range [][2]int{{0, 0}, {10, 20}, {90, 63}} {
		x, y := probe[0], probe[1]
		sx := (x + 3) % w
		c0a, c1a, c2a := img1.At(x, y)
		c0b, c1b, c2b := img0.At(sx, y)
		if c0a != c0b || c1a != c1b || c2a != c2b {
			t.Fatalf("pixel (%d,%d) not shifted copy", x, y)
		}
		if gt1.At(x, y) != gt0.At(sx, y) {
			t.Fatalf("gt (%d,%d) not shifted copy", x, y)
		}
	}
}

func TestFrameIntoMatchesFrame(t *testing.T) {
	s := smallStream(t, Drift, 2)
	img0, gt0, err := s.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	w, h := s.Size()
	// Dirty buffers must be fully overwritten.
	img := imgio.NewImage(w, h)
	gt := imgio.NewLabelMap(w, h)
	for i := range img.C0 {
		img.C0[i], img.C1[i], img.C2[i] = 0xAA, 0xBB, 0xCC
		gt.Labels[i] = 999
	}
	if err := s.FrameInto(3, img, gt); err != nil {
		t.Fatal(err)
	}
	for i := range img.C0 {
		if img.C0[i] != img0.C0[i] || img.C1[i] != img0.C1[i] || img.C2[i] != img0.C2[i] {
			t.Fatalf("pixel %d differs from Frame output", i)
		}
		if gt.Labels[i] != gt0.Labels[i] {
			t.Fatalf("gt %d differs from Frame output", i)
		}
	}
}

func TestFrameIntoValidation(t *testing.T) {
	s := smallStream(t, Pan, 1)
	w, h := s.Size()
	img := imgio.NewImage(w, h)
	gt := imgio.NewLabelMap(w, h)
	if err := s.FrameInto(-1, img, gt); err == nil {
		t.Error("negative frame accepted")
	}
	if err := s.FrameInto(0, imgio.NewImage(w+1, h), gt); err == nil {
		t.Error("mismatched image buffer accepted")
	}
	if err := s.FrameInto(0, img, imgio.NewLabelMap(w, h+1)); err == nil {
		t.Error("mismatched label buffer accepted")
	}
}

func TestFrameNegativeIndex(t *testing.T) {
	s := smallStream(t, Pan, 1)
	if _, _, err := s.Frame(-1); err == nil {
		t.Error("negative frame accepted")
	}
}

func TestDisplacementModes(t *testing.T) {
	pan := smallStream(t, Pan, 2)
	if dx, dy := pan.Displacement(3); dx != 6 || dy != 0 {
		t.Errorf("pan displacement (%d,%d)", dx, dy)
	}
	drift := smallStream(t, Drift, 2)
	if dx, dy := drift.Displacement(3); dx != 6 || dy != 3 {
		t.Errorf("drift displacement (%d,%d)", dx, dy)
	}
	shake := smallStream(t, Shake, 2)
	if dx, _ := shake.Displacement(1); dx != 2 {
		t.Errorf("shake odd displacement %d", dx)
	}
	if dx, _ := shake.Displacement(2); dx != 0 {
		t.Errorf("shake even displacement %d", dx)
	}
}

func TestMotionStrings(t *testing.T) {
	if Pan.String() != "pan" || Drift.String() != "drift" || Shake.String() != "shake" {
		t.Fatal("motion names")
	}
}

func TestTemporalConsistencyPerfectForShiftedLabels(t *testing.T) {
	s := smallStream(t, Pan, 4)
	_, gt0, _ := s.Frame(0)
	_, gt1, _ := s.Frame(1)
	// The ground truth moves rigidly with the content, so consistency
	// against it must be perfect.
	tc, err := TemporalConsistency(gt0, gt1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tc != 1 {
		t.Fatalf("rigid ground truth consistency %g, want 1", tc)
	}
}

func TestTemporalConsistencyDetectsScramble(t *testing.T) {
	s := smallStream(t, Pan, 4)
	_, gt0, _ := s.Frame(0)
	// A checkerboard bears no relation to the scene.
	scramble := imgio.NewLabelMap(gt0.W, gt0.H)
	for y := 0; y < gt0.H; y++ {
		for x := 0; x < gt0.W; x++ {
			scramble.Set(x, y, int32((x/2+y/2)%2))
		}
	}
	tc, err := TemporalConsistency(gt0, scramble, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	perfect, _ := TemporalConsistency(gt0, gt0, 0, 0)
	if perfect != 1 {
		t.Fatalf("self consistency %g", perfect)
	}
	if tc >= perfect {
		t.Fatalf("scramble consistency %g not below self consistency", tc)
	}
}

func TestTemporalConsistencyErrors(t *testing.T) {
	a := imgio.NewLabelMap(8, 8)
	b := imgio.NewLabelMap(9, 8)
	if _, err := TemporalConsistency(a, b, 0, 0); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := TemporalConsistency(a, a, 1000, 1000); err == nil {
		t.Error("out-of-range motion accepted")
	}
}
