// Package video provides the frame-stream substrate for the paper's
// real-time use case: 30 fps camera streams segmented frame by frame
// (§1: autonomous vehicles, augmented reality, mobile robotics). Streams
// are derived from one synthetic master scene under rigid motion with
// wrap-around, so every frame carries exact ground truth, and the
// package adds the temporal quality measure a video pipeline cares
// about: label consistency across frames.
package video

import (
	"fmt"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
)

// Motion selects the camera trajectory.
type Motion int

const (
	// Pan moves horizontally at the configured speed.
	Pan Motion = iota
	// Drift moves diagonally.
	Drift
	// Shake alternates direction every frame (worst case for warm
	// starting).
	Shake
)

// String names the motion.
func (m Motion) String() string {
	switch m {
	case Drift:
		return "drift"
	case Shake:
		return "shake"
	default:
		return "pan"
	}
}

// Stream is a deterministic frame source with exact per-frame ground
// truth.
type Stream struct {
	master  *dataset.Sample
	motion  Motion
	speedPx int
}

// NewStream generates the master scene and wraps it in a motion model.
// speedPx is the per-frame displacement in pixels.
func NewStream(cfg dataset.Config, seed int64, motion Motion, speedPx int) (*Stream, error) {
	if speedPx < 0 {
		return nil, fmt.Errorf("video: negative speed %d", speedPx)
	}
	s, err := dataset.Generate(cfg, seed)
	if err != nil {
		return nil, err
	}
	return &Stream{master: s, motion: motion, speedPx: speedPx}, nil
}

// Size returns the frame dimensions.
func (s *Stream) Size() (int, int) { return s.master.Image.W, s.master.Image.H }

// Displacement returns the cumulative (dx, dy) of frame t relative to
// frame 0.
func (s *Stream) Displacement(t int) (int, int) {
	switch s.motion {
	case Drift:
		return s.speedPx * t, s.speedPx * t / 2
	case Shake:
		if t%2 == 1 {
			return s.speedPx, 0
		}
		return 0, 0
	default: // Pan
		return s.speedPx * t, 0
	}
}

// Frame renders frame t and its ground truth into fresh buffers.
func (s *Stream) Frame(t int) (*imgio.Image, *imgio.LabelMap, error) {
	w, h := s.Size()
	img := imgio.NewImage(w, h)
	gt := imgio.NewLabelMap(w, h)
	if err := s.FrameInto(t, img, gt); err != nil {
		return nil, nil, err
	}
	return img, gt, nil
}

// FrameInto renders frame t and its ground truth into caller-owned
// buffers — the allocation-free source path for streaming pipelines that
// recycle frame buffers through a pool. Both buffers must match the
// stream dimensions; prior contents are overwritten.
func (s *Stream) FrameInto(t int, img *imgio.Image, gt *imgio.LabelMap) error {
	if t < 0 {
		return fmt.Errorf("video: negative frame index %d", t)
	}
	w, h := s.Size()
	if img.W != w || img.H != h || gt.W != w || gt.H != h {
		return fmt.Errorf("video: buffer size %dx%d/%dx%d, want %dx%d",
			img.W, img.H, gt.W, gt.H, w, h)
	}
	dx, dy := s.Displacement(t)
	for y := 0; y < h; y++ {
		sy := mod(y+dy, h)
		for x := 0; x < w; x++ {
			sx := mod(x+dx, w)
			c0, c1, c2 := s.master.Image.At(sx, sy)
			img.Set(x, y, c0, c1, c2)
			gt.Set(x, y, s.master.GT.At(sx, sy))
		}
	}
	return nil
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// TemporalConsistency measures how stably a segmentation tracks content
// across two frames related by the known motion (dx, dy): it samples
// pixel pairs on a deterministic grid and reports the fraction whose
// same-superpixel relationship is preserved after motion compensation —
// a Rand-index-style agreement that is invariant to label permutation.
// 1 means the segmentation moved rigidly with the content.
func TemporalConsistency(prev, cur *imgio.LabelMap, dx, dy int) (float64, error) {
	if prev.W != cur.W || prev.H != cur.H {
		return 0, fmt.Errorf("video: size mismatch %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H)
	}
	w, h := cur.W, cur.H
	// Sampled pairs: each grid point with its offset partner a few pixels
	// away; both ends must stay in bounds in both frames.
	const stride = 5
	const pairOff = 4
	var total, agree int
	for y := 0; y < h-pairOff; y += stride {
		for x := 0; x < w-pairOff; x += stride {
			// Motion-compensated source positions in the previous frame.
			px, py := x+dx, y+dy
			qx, qy := px+pairOff, py+pairOff
			if px < 0 || py < 0 || qx >= w || qy >= h {
				continue
			}
			samePrev := prev.At(px, py) == prev.At(qx, qy)
			sameCur := cur.At(x, y) == cur.At(x+pairOff, y+pairOff)
			total++
			if samePrev == sameCur {
				agree++
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("video: no valid sample pairs for motion (%d,%d)", dx, dy)
	}
	return float64(agree) / float64(total), nil
}
