package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFireDisabledIsNil(t *testing.T) {
	Disable()
	if err := Fire(PointDecode); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
}

func TestEveryScheduleIsDeterministic(t *testing.T) {
	in := New(1)
	in.Set(PointSubsetPass, PointConfig{Every: 3, ErrMsg: "boom"})
	var fires []int
	for i := 1; i <= 9; i++ {
		if err := in.Fire(PointSubsetPass); err != nil {
			fires = append(fires, i)
			if !IsTransient(err) {
				t.Fatalf("injected error not transient: %v", err)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
		}
	}
	want := []int{3, 6, 9}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

func TestProbabilityScheduleReplaysPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed)
		in.Set(PointPoolRun, PointConfig{Probability: 0.5, ErrMsg: "x"})
		out := make([]bool, 100)
		for i := range out {
			out[i] = in.Fire(PointPoolRun) != nil
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Fatal("same seed produced different schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical 100-call schedules (suspicious)")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires < 20 || fires > 80 {
		t.Fatalf("p=0.5 fired %d/100 times", fires)
	}
}

func TestMaxFiresBoundsTheSchedule(t *testing.T) {
	in := New(1)
	in.Set(PointDecode, PointConfig{Every: 1, MaxFires: 2, ErrMsg: "x"})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Fire(PointDecode) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (MaxFires)", fired)
	}
	if st := in.Stats()[PointDecode]; st.Calls != 10 || st.Fires != 2 {
		t.Fatalf("stats = %+v, want Calls=10 Fires=2", st)
	}
}

func TestPanicAction(t *testing.T) {
	in := New(1)
	in.Set(PointPoolRun, PointConfig{Every: 1, Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	in.Fire(PointPoolRun)
}

func TestLatencyAction(t *testing.T) {
	in := New(1)
	in.Set(PointDRAM, PointConfig{Every: 1, Latency: 20 * time.Millisecond})
	t0 := time.Now()
	if err := in.Fire(PointDRAM); err != nil {
		t.Fatalf("latency-only point returned error %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("latency action slept %v, want >= 20ms", d)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	in := New(3)
	in.Set(PointPoolSubmit, PointConfig{Probability: 0.3, ErrMsg: "x"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				in.Fire(PointPoolSubmit)
			}
		}()
	}
	wg.Wait()
	if st := in.Stats()[PointPoolSubmit]; st.Calls != 4000 {
		t.Fatalf("calls = %d, want 4000", st.Calls)
	}
}

func TestParseSpec(t *testing.T) {
	cfgs, err := Parse("sslic.pass:error=boom,prob=0.2; pool.submit:latency=50ms,every=10,max=3")
	if err != nil {
		t.Fatal(err)
	}
	p := cfgs[PointSubsetPass]
	if p.Probability != 0.2 || p.ErrMsg != "boom" {
		t.Fatalf("sslic.pass cfg = %+v", p)
	}
	q := cfgs[PointPoolSubmit]
	if q.Every != 10 || q.Latency != 50*time.Millisecond || q.MaxFires != 3 {
		t.Fatalf("pool.submit cfg = %+v", q)
	}

	bad := []string{
		"",                           // empty
		"nosuch.point:error,every=1", // unknown point
		"sslic.pass:error",           // no schedule
		"sslic.pass:every=2",         // no action
		"sslic.pass:prob=1.5,error",  // probability out of range
		"sslic.pass:every=0,error",   // every < 1
		"sslic.pass:frobnicate=1",    // unknown action
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestNewFromSpecEnableDisable(t *testing.T) {
	in, err := NewFromSpec(42, "imgio.decode:error=decode down,every=2")
	if err != nil {
		t.Fatal(err)
	}
	Enable(in)
	defer Disable()
	if Active() != in {
		t.Fatal("Active() did not return the enabled injector")
	}
	if err := Fire(PointDecode); err != nil {
		t.Fatalf("call 1 fired: %v", err)
	}
	if err := Fire(PointDecode); err == nil {
		t.Fatal("call 2 did not fire")
	}
	Disable()
	if err := Fire(PointDecode); err != nil {
		t.Fatalf("disabled injector fired: %v", err)
	}
}
